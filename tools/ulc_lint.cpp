// ulc_lint — repository-specific semantic linter (thin CLI).
//
// All analysis lives in the library under tools/lint/: a token-aware lexer
// (lint/lexer.h) that understands comments, string/char literals including
// raw strings, and preprocessor lines; a per-TU symbol scanner
// (lint/symbols.h) for enums, declared variable types and function bodies;
// fourteen rules (lint/rules.h); and the suppression/baseline/output engine
// (lint/engine.h). See docs/linting.md for the rule catalog.
//
// Usage:
//   ulc_lint [options] <dir|file>...
//     --root=DIR        display/baseline paths relative to DIR
//     --layers=FILE     module DAG for include-layering (off when absent)
//     --baseline=FILE   suppress findings listed as path:line:rule
//     --warn=RULE       demote RULE to a warning (repeatable)
//     --json[=FILE]     machine-readable findings (stdout or FILE)
//     --list-rules      print the rule catalog and exit
//
// Suppress a single finding with `// ulc-lint: allow(rule)` on the flagged
// line or alone on the line above it.
//
// Exit codes: 0 clean (warnings allowed), 1 findings at error severity,
// 2 usage or I/O error.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "lint/engine.h"

namespace {

int list_rules() {
  for (const ulc::lint::RuleInfo& r : ulc::lint::all_rules())
    std::printf("%-24s %s\n", r.name, r.summary);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ulc::lint::Options opts;
  bool json = false;
  std::string json_file;
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) {
      return arg.substr(std::string(prefix).size());
    };
    if (arg == "--list-rules") return list_rules();
    if (arg.rfind("--root=", 0) == 0) {
      opts.root = value("--root=");
    } else if (arg.rfind("--layers=", 0) == 0) {
      opts.layers_file = value("--layers=");
    } else if (arg.rfind("--baseline=", 0) == 0) {
      opts.baseline_file = value("--baseline=");
    } else if (arg.rfind("--warn=", 0) == 0) {
      const std::string rule = value("--warn=");
      if (!ulc::lint::is_known_rule(rule)) {
        std::fprintf(stderr, "ulc_lint: unknown rule '%s'\n", rule.c_str());
        return 2;
      }
      opts.warn_rules.insert(rule);
    } else if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json = true;
      json_file = value("--json=");
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "ulc_lint: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "usage: ulc_lint [options] <dir|file>...\n");
    return 2;
  }

  ulc::lint::Engine engine(opts);
  for (const std::string& in : inputs) {
    std::error_code ec;
    if (std::filesystem::is_directory(in, ec))
      engine.add_directory(in);
    else
      engine.add_file(in);
  }

  const ulc::lint::Report report = engine.run();
  const std::string text = ulc::lint::Engine::render_text(report);
  std::fputs(text.c_str(), stdout);
  if (json) {
    const std::string doc = ulc::lint::Engine::render_json(report);
    if (json_file.empty()) {
      std::fputs(doc.c_str(), stdout);
    } else {
      std::ofstream out(json_file, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "ulc_lint: cannot write %s\n", json_file.c_str());
        return 2;
      }
      out << doc;
    }
  }
  if (!report.errors.empty()) return 2;
  return report.error_count == 0 ? 0 : 1;
}
