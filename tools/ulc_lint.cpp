// ulc_lint — repository-specific style and determinism linter.
//
// The generic compiler warnings cannot see repo-level contracts: simulator
// output must be bit-reproducible (no wall-clock or libc randomness, no
// hash-order leaking into emitted sequences), every invariant failure must
// say *which* invariant broke, and headers must stay include-clean. This
// tool enforces those contracts textually, comment- and string-aware, and
// runs as a ctest case so CI fails on regressions.
//
// Usage: ulc_lint <dir> [<dir>...]
//
// Rules (suppress a line with `// ulc-lint: allow(<rule>)`):
//   determinism          rand()/srand()/time()/std::random_device anywhere
//   unordered-iteration  range-for over a variable declared as an unordered
//                        container in the same translation unit (file plus
//                        its same-stem sibling header/source) — hash order
//                        must never feed output
//   ensure-msg           ULC_ENSURE/ULC_REQUIRE with an empty message
//   pragma-once          header file without #pragma once
//   using-namespace      `using namespace` in a header
//   float-eq             ==/!= against a floating-point literal
//   unbounded-retry      an infinite loop (`while (true)` / `for (;;)`) whose
//                        body issues protocol sends (send/deliver_at/transfer)
//                        with no attempts counter in sight — retries must be
//                        bounded (proto/reliable.h) so a dead level cannot
//                        spin the simulator forever
//   wall-clock           std::chrono machine clocks (system_clock,
//                        steady_clock, high_resolution_clock) anywhere in the
//                        linted tree — simulated quantities are keyed to sim
//                        time or access index; the only sanctioned stopwatch
//                        is util/wallclock.h, whose lines carry allow markers
//   hot-container        std::unordered_map/std::unordered_set/std::list in
//                        the hot directories (src/ulc, src/replacement,
//                        src/hierarchy) — per-block state there lives in the
//                        arena cores (util/flat_hash.h + util/slab.h); node
//                        heaps and hashed buckets reintroduce the allocation
//                        traffic the port removed. Offline/reference paths
//                        (OPT, layout analysis) carry allow markers.
//   count-capacity       a `.size() <= cap`-style comparison (entry count
//                        against something named cap*/budget*) in
//                        src/replacement or src/hierarchy — capacities are
//                        byte budgets in SizeUnits, so admission/eviction
//                        decisions must compare occupied bytes, not entry
//                        counts. Structures that are genuinely count-bounded
//                        (ghost lists, per-block metadata directories) carry
//                        allow markers.
//
// Exit status: 0 clean, 1 findings, 2 usage/IO error.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string path;
  std::size_t line;
  std::string rule;
  std::string message;
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Replaces comment bodies and string/char-literal contents with spaces,
// preserving offsets and newlines, so textual rules never fire inside
// comments or literals. Quote characters themselves are kept.
std::string strip(const std::string& text) {
  std::string out = text;
  enum class State { kCode, kLine, kBlock, kString, kChar } state = State::kCode;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLine:
        if (c == '\n')
          state = State::kCode;
        else
          out[i] = ' ';
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == quote) {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

// Per-line suppression markers: `// ulc-lint: allow(rule1, rule2)`.
bool allowed(const std::string& original_line, const std::string& rule) {
  static const std::string kMarker = "ulc-lint: allow(";
  std::size_t at = 0;
  while ((at = original_line.find(kMarker, at)) != std::string::npos) {
    const std::size_t open = at + kMarker.size();
    const std::size_t close = original_line.find(')', open);
    if (close == std::string::npos) break;
    std::stringstream list(original_line.substr(open, close - open));
    std::string item;
    while (std::getline(list, item, ',')) {
      item.erase(std::remove_if(item.begin(), item.end(),
                                [](char c) { return std::isspace(
                                    static_cast<unsigned char>(c)) != 0; }),
                 item.end());
      if (item == rule) return true;
    }
    at = close;
  }
  return false;
}

// Names of variables declared as std::unordered_{map,set}<...> in the given
// stripped text. Walks past the balanced template argument list and records
// the declarator identifier that follows.
void collect_unordered_names(const std::string& stripped,
                             std::set<std::string>& names) {
  static const std::regex kDecl("unordered_(?:map|set)\\s*<");
  for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(), kDecl);
       it != std::sregex_iterator(); ++it) {
    std::size_t i = static_cast<std::size_t>(it->position()) + it->length();
    int depth = 1;
    while (i < stripped.size() && depth > 0) {
      if (stripped[i] == '<') ++depth;
      if (stripped[i] == '>') --depth;
      ++i;
    }
    while (i < stripped.size() &&
           std::isspace(static_cast<unsigned char>(stripped[i])) != 0)
      ++i;
    std::string name;
    while (i < stripped.size() && ident_char(stripped[i])) name.push_back(stripped[i++]);
    while (i < stripped.size() &&
           std::isspace(static_cast<unsigned char>(stripped[i])) != 0)
      ++i;
    const char after = i < stripped.size() ? stripped[i] : '\0';
    if (!name.empty() && (after == ';' || after == '{' || after == '=' || after == ','))
      names.insert(name);
  }
}

// Parses an ULC_ENSURE/ULC_REQUIRE invocation starting at the macro name in
// `text` and returns its final argument (the message), or nullopt when the
// call is malformed. String-aware so commas inside the message don't split.
std::string last_macro_argument(const std::string& text, std::size_t name_end) {
  std::size_t i = name_end;
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) != 0)
    ++i;
  if (i >= text.size() || text[i] != '(') return {};
  ++i;
  int depth = 1;
  bool in_string = false;
  std::size_t arg_start = i;
  std::string last;
  for (; i < text.size() && depth > 0; ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\')
        ++i;
      else if (c == '"')
        in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') --depth;
    if ((c == ',' && depth == 1) || (depth == 0)) {
      last = text.substr(arg_start, i - arg_start);
      arg_start = i + 1;
    }
  }
  const auto first = last.find_first_not_of(" \t\n\r");
  if (first == std::string::npos) return {};
  const auto end = last.find_last_not_of(" \t\n\r");
  return last.substr(first, end - first + 1);
}

std::size_t line_of(const std::string& text, std::size_t offset) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.begin() + static_cast<long>(offset),
                            '\n'));
}

class Linter {
 public:
  void lint_file(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "ulc_lint: cannot read %s\n", path.c_str());
      io_error_ = true;
      return;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string original = buf.str();
    const std::string stripped = strip(original);
    const auto orig_lines = split_lines(original);
    const auto strip_lines = split_lines(stripped);
    const bool is_header = path.extension() == ".h";

    auto report = [&](std::size_t line, const std::string& rule,
                      const std::string& message) {
      const std::string& src =
          line >= 1 && line <= orig_lines.size() ? orig_lines[line - 1] : original;
      if (!allowed(src, rule))
        findings_.push_back({path.generic_string(), line, rule, message});
    };

    // determinism --------------------------------------------------------
    static const std::regex kNonDet(
        "(^|[^A-Za-z0-9_])(rand\\s*\\(|srand\\s*\\(|time\\s*\\(|random_device)");
    for (std::size_t n = 0; n < strip_lines.size(); ++n) {
      if (std::regex_search(strip_lines[n], kNonDet))
        report(n + 1, "determinism",
               "wall-clock or libc randomness breaks reproducible runs; use "
               "util/prng.h with an explicit seed");
    }

    // wall-clock ---------------------------------------------------------
    static const std::regex kWallClock(
        "\\b(?:system_clock|steady_clock|high_resolution_clock)\\b");
    for (std::size_t n = 0; n < strip_lines.size(); ++n) {
      if (std::regex_search(strip_lines[n], kWallClock))
        report(n + 1, "wall-clock",
               "machine clocks break replay determinism; key measurements to "
               "sim time or access index, or go through util/wallclock.h "
               "(the allow-listed stopwatch shim)");
    }

    // unordered-iteration ------------------------------------------------
    std::set<std::string> unordered;
    collect_unordered_names(stripped, unordered);
    for (const fs::path& sib : siblings(path)) {
      std::ifstream sin(sib, std::ios::binary);
      if (!sin) continue;
      std::stringstream sbuf;
      sbuf << sin.rdbuf();
      collect_unordered_names(strip(sbuf.str()), unordered);
    }
    static const std::regex kRangeFor(
        "for\\s*\\([^;()]*:\\s*([A-Za-z_][A-Za-z0-9_]*)\\s*\\)");
    for (std::size_t n = 0; n < strip_lines.size(); ++n) {
      std::smatch m;
      if (std::regex_search(strip_lines[n], m, kRangeFor) &&
          unordered.count(m[1].str()) != 0)
        report(n + 1, "unordered-iteration",
               "hash-order iteration over '" + m[1].str() +
                   "' may leak into output; iterate a sorted copy");
    }

    // ensure-msg ---------------------------------------------------------
    static const std::regex kEnsure("ULC_(?:ENSURE|REQUIRE)\\b");
    for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(), kEnsure);
         it != std::sregex_iterator(); ++it) {
      const std::size_t at = static_cast<std::size_t>(it->position());
      const std::size_t name_end = at + it->length();
      const std::size_t line = line_of(original, at);
      // Skip the macro definitions themselves (util/ensure.h).
      if (strip_lines[line - 1].find("#define") != std::string::npos) continue;
      const std::string msg = last_macro_argument(original, name_end);
      if (msg.empty() || msg == "\"\"")
        report(line, "ensure-msg", "invariant check without a diagnostic message");
    }

    // pragma-once / using-namespace (headers only) -----------------------
    if (is_header) {
      if (stripped.find("#pragma once") == std::string::npos)
        report(1, "pragma-once", "header lacks #pragma once");
      for (std::size_t n = 0; n < strip_lines.size(); ++n) {
        if (std::regex_search(strip_lines[n], std::regex("\\busing\\s+namespace\\b")))
          report(n + 1, "using-namespace",
                 "headers must not inject namespaces into every includer");
      }
    }

    // float-eq -----------------------------------------------------------
    static const std::regex kFloatEq(
        "((^|[^<>=!&|])(==|!=)\\s*([0-9]+\\.[0-9]*|\\.[0-9]+)f?)"
        "|(([0-9]+\\.[0-9]*|\\.[0-9]+)f?\\s*(==|!=)([^=]|$))");
    for (std::size_t n = 0; n < strip_lines.size(); ++n) {
      if (std::regex_search(strip_lines[n], kFloatEq))
        report(n + 1, "float-eq",
               "exact comparison against a floating-point literal; compare "
               "with a tolerance or justify with an allow marker");
    }

    // hot-container -------------------------------------------------------
    const std::string generic = path.generic_string();
    const bool hot_dir = generic.find("src/ulc/") != std::string::npos ||
                         generic.find("src/replacement/") != std::string::npos ||
                         generic.find("src/hierarchy/") != std::string::npos;
    if (hot_dir) {
      static const std::regex kHotContainer(
          "\\bunordered_(?:map|set)\\s*<|\\bstd::list\\s*<");
      for (std::size_t n = 0; n < strip_lines.size(); ++n) {
        if (std::regex_search(strip_lines[n], kHotContainer))
          report(n + 1, "hot-container",
                 "node-based container in a hot path; use FlatMap "
                 "(util/flat_hash.h) and Slab/SlabList (util/slab.h), or "
                 "allow-mark an offline/reference path");
      }
    }

    // count-capacity -------------------------------------------------------
    const bool budget_dir = generic.find("src/replacement/") != std::string::npos ||
                            generic.find("src/hierarchy/") != std::string::npos;
    if (budget_dir) {
      // Either operand order: `x.size() < cap_` or `capacity > q.size()`.
      // "cap"/"budget" anywhere in the other operand's identifier is enough
      // (cap_, caps[i], server_capacity, byte_budget...).
      static const std::regex kCountCapacity(
          "\\.size\\(\\)\\s*(?:<=|>=|<|>|==|!=)[^;{]*\\b(?:[A-Za-z_0-9]*cap|"
          "[A-Za-z_0-9]*budget)|\\b(?:[A-Za-z_0-9]*cap|[A-Za-z_0-9]*budget)"
          "[A-Za-z0-9_]*(?:\\[[^\\]]*\\])?\\s*(?:<=|>=|<|>|==|!=)[^;{]*"
          "\\.size\\(\\)");
      for (std::size_t n = 0; n < strip_lines.size(); ++n) {
        if (std::regex_search(strip_lines[n], kCountCapacity))
          report(n + 1, "count-capacity",
                 "entry count compared against a capacity; budgets are bytes "
                 "(SizeUnits), so compare occupied bytes, or allow-mark a "
                 "genuinely count-bounded structure (ghost/metadata lists)");
      }
    }

    // unbounded-retry -----------------------------------------------------
    static const std::regex kInfLoop(
        "while\\s*\\(\\s*(?:true|1)\\s*\\)|for\\s*\\(\\s*;\\s*;\\s*\\)");
    static const std::regex kSendCall("\\b(?:send|deliver_at|transfer)\\s*\\(");
    static const std::regex kAttemptsBound("attempt|retr(?:y|ies)|tries");
    for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(), kInfLoop);
         it != std::sregex_iterator(); ++it) {
      const std::size_t at = static_cast<std::size_t>(it->position());
      // Loop body: the balanced brace block after the header, or the single
      // statement up to `;` when unbraced.
      std::size_t i = at + static_cast<std::size_t>(it->length());
      while (i < stripped.size() &&
             std::isspace(static_cast<unsigned char>(stripped[i])) != 0)
        ++i;
      std::size_t body_start = i;
      std::size_t body_end = i;
      if (i < stripped.size() && stripped[i] == '{') {
        body_start = ++i;
        int depth = 1;
        while (i < stripped.size() && depth > 0) {
          if (stripped[i] == '{') ++depth;
          if (stripped[i] == '}') --depth;
          ++i;
        }
        body_end = i;
      } else {
        while (i < stripped.size() && stripped[i] != ';') ++i;
        body_end = i;
      }
      const std::string body = stripped.substr(body_start, body_end - body_start);
      if (std::regex_search(body, kSendCall) &&
          !std::regex_search(body, kAttemptsBound))
        report(line_of(stripped, at), "unbounded-retry",
               "infinite loop around a protocol send with no attempts bound; "
               "retries must be counted against RetryPolicy::max_attempts "
               "(proto/reliable.h)");
    }
  }

  bool io_error() const { return io_error_; }

  int emit() const {
    auto sorted = findings_;
    std::sort(sorted.begin(), sorted.end(), [](const Finding& a, const Finding& b) {
      if (a.path != b.path) return a.path < b.path;
      if (a.line != b.line) return a.line < b.line;
      return a.rule < b.rule;
    });
    for (const Finding& f : sorted)
      std::printf("%s:%zu: [%s] %s\n", f.path.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    if (sorted.empty()) {
      std::printf("ulc_lint: clean\n");
      return 0;
    }
    std::printf("ulc_lint: %zu issue(s)\n", sorted.size());
    return 1;
  }

 private:
  // The same-stem .h/.cpp sibling completes the translation unit for
  // member-variable declarations.
  static std::vector<fs::path> siblings(const fs::path& path) {
    std::vector<fs::path> out;
    for (const char* ext : {".h", ".cpp"}) {
      fs::path sib = path;
      sib.replace_extension(ext);
      if (sib != path && fs::exists(sib)) out.push_back(sib);
    }
    return out;
  }

  std::vector<Finding> findings_;
  bool io_error_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: ulc_lint <dir> [<dir>...]\n");
    return 2;
  }
  std::vector<fs::path> files;
  for (int i = 1; i < argc; ++i) {
    const fs::path root(argv[i]);
    if (!fs::exists(root)) {
      std::fprintf(stderr, "ulc_lint: no such path: %s\n", argv[i]);
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      if (ext == ".h" || ext == ".cpp") files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  Linter linter;
  for (const fs::path& f : files) linter.lint_file(f);
  if (linter.io_error()) return 2;
  return linter.emit();
}
