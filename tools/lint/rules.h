// Rule engine for ulc_lint: structured findings over the token stream.
//
// Each rule inspects one file's tokens plus the symbol tables (its own TU,
// the same-stem sibling header/source, and the repo-wide enum table) and
// appends Findings. Suppression, baseline filtering and output formatting
// live in engine.h; the rules themselves only decide "is this a violation".
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.h"
#include "lint/symbols.h"

namespace ulc::lint {

enum class Severity { kError, kWarning };

struct Finding {
  std::string path;
  std::size_t line = 0;
  std::size_t col = 0;
  std::string rule;
  Severity severity = Severity::kError;
  std::string message;
};

struct RuleInfo {
  const char* name;
  Severity default_severity;
  const char* summary;  // one-liner for --list-rules and docs
};

// Every rule the engine knows, in display order. The first ten are ports of
// the old regex linter; the last four are the semantic rules the token
// stream makes possible.
const std::vector<RuleInfo>& all_rules();
bool is_known_rule(const std::string& name);

// One lexed + scanned file.
struct FileUnit {
  LexedFile lexed;
  TuSymbols symbols;
};

// Cross-file context shared by every rule invocation.
struct GlobalContext {
  // Enum name -> every definition of that name across the linted set (the
  // same unqualified name may be defined in several TUs).
  std::map<std::string, std::vector<const EnumDef*>> enums;
  // Same-stem sibling (foo.cpp <-> foo.h), nullptr when absent.
  std::map<const FileUnit*, const FileUnit*> sibling;
  // Module layering DAG from layers.txt: module -> allowed include targets.
  // The special target "*" leaves a module unconstrained. Empty map (not
  // loaded) disables the include-layering rule.
  std::map<std::string, std::set<std::string>> layers;

  const FileUnit* sibling_of(const FileUnit& unit) const {
    auto it = sibling.find(&unit);
    return it == sibling.end() ? nullptr : it->second;
  }
};

// Runs every rule over `unit`, appending raw findings (suppression and
// baseline filtering happen in the engine).
void run_rules(const FileUnit& unit, const GlobalContext& ctx,
               std::vector<Finding>& out);

// Module of a path for the layering rule: the directory component after
// "src", or "bench"/"tools"/"tests" for those trees; empty when unknown.
std::string module_of(const std::string& path);

}  // namespace ulc::lint
