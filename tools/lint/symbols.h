// Lightweight per-translation-unit symbol tracking for ulc_lint.
//
// The semantic rules need three things no regex can answer: which enums
// exist and what their enumerators are (enum-switch exhaustiveness), what
// type a name was declared with (is `entries_` a FlatMap? is `stack_` a
// SlabList?), and where function bodies begin and end (so pointer lifetimes
// and narration obligations can be scoped to one function). This scanner
// extracts exactly that from a token stream — a recognizer for the
// declaration shapes this repository uses, not a general C++ parser. It is
// deliberately conservative: when a construct does not match, it records
// nothing, and rules treat "unknown" as "make no claim".
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.h"

namespace ulc::lint {

struct EnumDef {
  std::string name;                       // unqualified (nested enums too)
  std::vector<std::string> enumerators;
  std::size_t line = 0;
  std::string path;                       // defining file
};

struct FunctionDef {
  std::string name;        // last identifier before the parameter list
  std::string qualifier;   // `Class` in `Class::name`, empty otherwise
  bool is_const = false;   // const member function
  std::size_t header_begin = 0;  // token index of the name
  std::size_t body_begin = 0;    // token index of `{`
  std::size_t body_end = 0;      // token index one past the matching `}`
  std::size_t line = 0;
};

struct ClassDef {
  std::string name;
  std::vector<std::string> bases;  // base-class identifiers (last component)
  std::size_t body_begin = 0;      // token index of `{`
  std::size_t body_end = 0;        // one past the matching `}`
};

struct TuSymbols {
  std::vector<EnumDef> enums;
  std::vector<FunctionDef> functions;
  std::vector<ClassDef> classes;
  // Declared-variable name -> set of type heads it was declared with in this
  // TU ("FlatMap", "Slab", "SlabList", "unordered_map", ...). The head is
  // the last identifier of the type's leading name (std::vector -> vector).
  std::map<std::string, std::set<std::string>> var_types;
  // Receivers that are reserve()d somewhere in this TU (`x.reserve(...)`):
  // their FlatMap insertions cannot rehash mid-run.
  std::set<std::string> reserved_receivers;

  const std::set<std::string>* types_of(const std::string& name) const {
    auto it = var_types.find(name);
    return it == var_types.end() ? nullptr : &it->second;
  }
  bool declared_as(const std::string& name, const std::string& head) const {
    const std::set<std::string>* t = types_of(name);
    return t != nullptr && t->count(head) != 0;
  }
};

TuSymbols scan(const LexedFile& file);

// Index one past the token matching the opener at `open` ('(' '[' '{' '<'),
// or tokens.size() when unbalanced. `open` must point at the opener.
std::size_t skip_balanced(const std::vector<Token>& tokens, std::size_t open);

}  // namespace ulc::lint
