#include "lint/rules.h"

#include <algorithm>

namespace ulc::lint {

namespace {

bool is_ident(const Token& t) { return t.kind == TokKind::kIdent; }
bool is_punct(const Token& t, const char* s) {
  return t.kind == TokKind::kPunct && t.text == s;
}
bool is_word(const Token& t, const char* s) {
  return t.kind == TokKind::kIdent && t.text == s;
}
bool path_has(const FileUnit& u, const char* frag) {
  return u.lexed.path.find(frag) != std::string::npos;
}
bool is_header(const FileUnit& u) {
  const std::string& p = u.lexed.path;
  return p.size() > 2 && p.compare(p.size() - 2, 2, ".h") == 0;
}

const Token& tok(const FileUnit& u, std::size_t i) {
  static const Token kEof{TokKind::kPunct, "", 0, 0};
  return i < u.lexed.tokens.size() ? u.lexed.tokens[i] : kEof;
}

void add(std::vector<Finding>& out, const FileUnit& u, const Token& at,
         const char* rule, std::string message) {
  out.push_back(Finding{u.lexed.path, at.line, at.col, rule, Severity::kError,
                        std::move(message)});
}

// ---- determinism -----------------------------------------------------------

void rule_determinism(const FileUnit& u, std::vector<Finding>& out) {
  const auto& toks = u.lexed.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (!is_ident(t)) continue;
    const bool libc_call =
        (t.text == "rand" || t.text == "srand" || t.text == "time") &&
        is_punct(tok(u, i + 1), "(");
    if (libc_call || t.text == "random_device")
      add(out, u, t, "determinism",
          "wall-clock or libc randomness breaks reproducible runs; use "
          "util/prng.h with an explicit seed");
  }
}

// ---- wall-clock ------------------------------------------------------------

void rule_wall_clock(const FileUnit& u, std::vector<Finding>& out) {
  for (const Token& t : u.lexed.tokens) {
    if (is_ident(t) && (t.text == "system_clock" || t.text == "steady_clock" ||
                        t.text == "high_resolution_clock"))
      add(out, u, t, "wall-clock",
          "machine clocks break replay determinism; key measurements to sim "
          "time or access index, or go through util/wallclock.h (the "
          "allow-listed stopwatch shim)");
  }
}

// ---- unordered-iteration ---------------------------------------------------

void collect_unordered_names(const TuSymbols& sym, std::set<std::string>& names) {
  for (const auto& [name, heads] : sym.var_types) {
    if (heads.count("unordered_map") != 0 || heads.count("unordered_set") != 0)
      names.insert(name);
  }
}

void rule_unordered_iteration(const FileUnit& u, const GlobalContext& ctx,
                              std::vector<Finding>& out) {
  std::set<std::string> unordered;
  collect_unordered_names(u.symbols, unordered);
  if (const FileUnit* sib = ctx.sibling_of(u))
    collect_unordered_names(sib->symbols, unordered);
  if (unordered.empty()) return;
  const auto& toks = u.lexed.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_word(toks[i], "for") || !is_punct(tok(u, i + 1), "(")) continue;
    const std::size_t close = skip_balanced(toks, i + 1);
    // Range-for: a top-level `:` inside the parens, then the range expr.
    int depth = 0;
    for (std::size_t j = i + 1; j + 1 < close; ++j) {
      const Token& t = toks[j];
      if (is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "{")) ++depth;
      if (is_punct(t, ")") || is_punct(t, "]") || is_punct(t, "}")) --depth;
      if (depth == 1 && is_punct(t, ":")) {
        // Flag only when the whole range expression is one identifier: an
        // adapter call like sorted(m) is exactly the sanctioned fix.
        if (j + 2 + 1 == close && is_ident(toks[j + 1]) &&
            unordered.count(toks[j + 1].text) != 0)
          add(out, u, toks[i], "unordered-iteration",
              "hash-order iteration over '" + toks[j + 1].text +
                  "' may leak into output; iterate a sorted copy");
        break;
      }
    }
  }
}

// ---- ensure-msg ------------------------------------------------------------

void rule_ensure_msg(const FileUnit& u, std::vector<Finding>& out) {
  const auto& toks = u.lexed.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (!is_ident(t) || (t.text != "ULC_ENSURE" && t.text != "ULC_REQUIRE"))
      continue;
    if (!is_punct(tok(u, i + 1), "(")) continue;
    const std::size_t close = skip_balanced(toks, i + 1);
    // Last top-level comma-separated argument.
    std::size_t last_start = i + 2;
    int depth = 1;
    for (std::size_t j = i + 2; j + 1 < close; ++j) {
      const Token& a = toks[j];
      if (is_punct(a, "(") || is_punct(a, "[") || is_punct(a, "{")) ++depth;
      if (is_punct(a, ")") || is_punct(a, "]") || is_punct(a, "}")) --depth;
      if (depth == 1 && is_punct(a, ",")) last_start = j + 1;
    }
    const std::size_t last_end = close >= 1 ? close - 1 : close;  // before )
    bool empty = last_start >= last_end;
    if (last_end == last_start + 1 && toks[last_start].kind == TokKind::kString &&
        toks[last_start].text == "\"\"")
      empty = true;
    if (empty)
      add(out, u, t, "ensure-msg", "invariant check without a diagnostic message");
  }
}

// ---- pragma-once / using-namespace ----------------------------------------

std::string squeeze(const std::string& s) {
  std::string out;
  for (char c : s)
    if (c != ' ' && c != '\t') out.push_back(c);
  return out;
}

void rule_header_hygiene(const FileUnit& u, std::vector<Finding>& out) {
  if (!is_header(u)) return;
  bool has_pragma = false;
  for (const Token& t : u.lexed.tokens) {
    if (t.kind == TokKind::kPreprocessor && squeeze(t.text) == "#pragmaonce")
      has_pragma = true;
  }
  if (!has_pragma) {
    Token at{TokKind::kPunct, "", 1, 1};
    add(out, u, at, "pragma-once", "header lacks #pragma once");
  }
  const auto& toks = u.lexed.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (is_word(toks[i], "using") && is_word(toks[i + 1], "namespace"))
      add(out, u, toks[i], "using-namespace",
          "headers must not inject namespaces into every includer");
  }
}

// ---- float-eq --------------------------------------------------------------

void rule_float_eq(const FileUnit& u, std::vector<Finding>& out) {
  const auto& toks = u.lexed.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (!is_punct(t, "==") && !is_punct(t, "!=")) continue;
    const bool lhs = i > 0 && is_float_literal(toks[i - 1]);
    const bool rhs = i + 1 < toks.size() && is_float_literal(toks[i + 1]);
    if (lhs || rhs)
      add(out, u, t, "float-eq",
          "exact comparison against a floating-point literal; compare with a "
          "tolerance or justify with an allow marker");
  }
}

// ---- unbounded-retry -------------------------------------------------------

void rule_unbounded_retry(const FileUnit& u, std::vector<Finding>& out) {
  const auto& toks = u.lexed.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    std::size_t after_header = 0;
    if (is_word(toks[i], "while") && is_punct(tok(u, i + 1), "(") &&
        (is_word(tok(u, i + 2), "true") || tok(u, i + 2).text == "1") &&
        is_punct(tok(u, i + 3), ")")) {
      after_header = i + 4;
    } else if (is_word(toks[i], "for") && is_punct(tok(u, i + 1), "(") &&
               is_punct(tok(u, i + 2), ";") && is_punct(tok(u, i + 3), ";") &&
               is_punct(tok(u, i + 4), ")")) {
      after_header = i + 5;
    } else {
      continue;
    }
    std::size_t body_begin = after_header, body_end = after_header;
    if (is_punct(tok(u, after_header), "{")) {
      body_end = skip_balanced(toks, after_header);
    } else {
      while (body_end < toks.size() && !is_punct(toks[body_end], ";")) ++body_end;
    }
    bool sends = false, bounded = false;
    for (std::size_t j = body_begin; j < body_end; ++j) {
      const Token& b = toks[j];
      if (!is_ident(b)) continue;
      if ((b.text == "send" || b.text == "deliver_at" || b.text == "transfer") &&
          is_punct(tok(u, j + 1), "("))
        sends = true;
      if (b.text.find("attempt") != std::string::npos ||
          b.text.find("retry") != std::string::npos ||
          b.text.find("retries") != std::string::npos ||
          b.text.find("tries") != std::string::npos)
        bounded = true;
    }
    if (sends && !bounded)
      add(out, u, toks[i], "unbounded-retry",
          "infinite loop around a protocol send with no attempts bound; "
          "retries must be counted against RetryPolicy::max_attempts "
          "(proto/reliable.h)");
  }
}

// ---- hot-container ---------------------------------------------------------

void rule_hot_container(const FileUnit& u, std::vector<Finding>& out) {
  if (!path_has(u, "src/ulc/") && !path_has(u, "src/replacement/") &&
      !path_has(u, "src/hierarchy/"))
    return;
  const auto& toks = u.lexed.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (!is_ident(t)) continue;
    const bool unordered =
        (t.text == "unordered_map" || t.text == "unordered_set") &&
        is_punct(tok(u, i + 1), "<");
    const bool std_list = t.text == "list" && is_punct(tok(u, i + 1), "<") &&
                          i >= 2 && is_punct(toks[i - 1], "::") &&
                          is_word(toks[i - 2], "std");
    if (unordered || std_list)
      add(out, u, t, "hot-container",
          "node-based container in a hot path; use FlatMap (util/flat_hash.h) "
          "and Slab/SlabList (util/slab.h), or allow-mark an offline/"
          "reference path");
  }
}

// ---- count-capacity --------------------------------------------------------

bool capacity_ident(const Token& t) {
  return is_ident(t) && (t.text.find("cap") != std::string::npos ||
                         t.text.find("budget") != std::string::npos);
}

bool comparison(const Token& t) {
  return t.kind == TokKind::kPunct &&
         (t.text == "<" || t.text == ">" || t.text == "<=" || t.text == ">=" ||
          t.text == "==" || t.text == "!=");
}

void rule_count_capacity(const FileUnit& u, std::vector<Finding>& out) {
  if (!path_has(u, "src/replacement/") && !path_has(u, "src/hierarchy/")) return;
  const auto& toks = u.lexed.tokens;
  auto same_stmt = [&](std::size_t from, auto&& pred) {
    for (std::size_t j = from;
         j < toks.size() && toks[j].line == toks[from == 0 ? 0 : from - 1].line;
         ++j) {
      if (is_punct(toks[j], ";") || is_punct(toks[j], "{")) return false;
      if (pred(j)) return true;
    }
    return false;
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!comparison(toks[i])) continue;
    // `x.size() <op> ...cap...` — size() immediately left of the operator.
    if (i >= 4 && is_punct(toks[i - 1], ")") && is_punct(toks[i - 2], "(") &&
        is_word(toks[i - 3], "size") && is_punct(toks[i - 4], ".")) {
      if (same_stmt(i + 1, [&](std::size_t j) { return capacity_ident(toks[j]); })) {
        add(out, u, toks[i], "count-capacity",
            "entry count compared against a capacity; budgets are bytes "
            "(SizeUnits), so compare occupied bytes, or allow-mark a genuinely "
            "count-bounded structure (ghost/metadata lists)");
        continue;
      }
    }
    // `...cap... <op> x.size()` — capacity identifier (optionally indexed)
    // immediately left of the operator.
    std::size_t left = i;
    if (left >= 1 && is_punct(toks[left - 1], "]")) {
      std::size_t k = left - 1;
      int depth = 0;
      while (k > 0) {
        if (is_punct(toks[k], "]")) ++depth;
        if (is_punct(toks[k], "[")) {
          if (--depth == 0) break;
        }
        --k;
      }
      left = k;
    }
    if (left >= 1 && capacity_ident(toks[left - 1])) {
      const bool rhs_size = same_stmt(i + 1, [&](std::size_t j) {
        return j >= 3 && is_punct(toks[j], ")") && is_punct(toks[j - 1], "(") &&
               is_word(toks[j - 2], "size") && is_punct(toks[j - 3], ".");
      });
      if (rhs_size)
        add(out, u, toks[i], "count-capacity",
            "entry count compared against a capacity; budgets are bytes "
            "(SizeUnits), so compare occupied bytes, or allow-mark a genuinely "
            "count-bounded structure (ghost/metadata lists)");
    }
  }
}

// ---- dangling-slab-handle --------------------------------------------------
//
// A pointer handed out by FlatMap::find or Slab's node accessors stays valid
// only until the container mutates: FlatMap rehashes on un-reserved inserts
// and tombstones on erase; a Slab slot is recycled the moment it is freed.
// The rule tracks pointer/reference locals whose initializer is one of those
// accessors and reports any use after a call that can invalidate them —
// either a direct mutation of the same container or a call to a same-TU
// function that (transitively) performs one. This is exactly the bug class
// behind the LIRS ghost-trim dangling handle fixed in the arena-core PR.

struct TrackedPtr {
  std::string name;
  std::string source;      // receiver the pointer came from
  bool from_slab = false;  // else FlatMap
  bool invalidated = false;
  std::string invalidator;
  std::size_t invalidated_line = 0;
  bool reported = false;
};

// Does the call at ident index `i` (receiver.method form) invalidate
// pointers from `source`? `sym` supplies receiver types.
enum class CallEffect { kNone, kFlatMapMutate, kSlabMutate };

CallEffect method_effect(const FileUnit& u, std::size_t i) {
  const auto& toks = u.lexed.tokens;
  if (!is_ident(toks[i])) return CallEffect::kNone;
  if (i + 2 >= toks.size()) return CallEffect::kNone;
  if (!is_punct(toks[i + 1], ".") && !is_punct(toks[i + 1], "->"))
    return CallEffect::kNone;
  if (!is_ident(toks[i + 2]) || !is_punct(tok(u, i + 3), "("))
    return CallEffect::kNone;
  const std::string& recv = toks[i].text;
  const std::string& method = toks[i + 2].text;
  const TuSymbols& sym = u.symbols;
  if (sym.declared_as(recv, "FlatMap")) {
    if (method == "erase" || method == "clear") return CallEffect::kFlatMapMutate;
    const bool insertion =
        method == "put" || method == "insert" || method == "insert_new";
    // A reserve()d map never rehashes, so insertions cannot move slots.
    if (insertion && sym.reserved_receivers.count(recv) == 0)
      return CallEffect::kFlatMapMutate;
  }
  if (sym.declared_as(recv, "Slab")) {
    if (method == "free" || method == "clear") return CallEffect::kSlabMutate;
  }
  return CallEffect::kNone;
}

// Same-TU functions that (transitively) contain an invalidating mutation.
std::set<std::string> may_invalidate_functions(const FileUnit& u) {
  std::set<std::string> unsafe;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FunctionDef& f : u.symbols.functions) {
      if (unsafe.count(f.name) != 0) continue;
      for (std::size_t i = f.body_begin; i < f.body_end; ++i) {
        const Token& t = u.lexed.tokens[i];
        if (!is_ident(t)) continue;
        if (method_effect(u, i) != CallEffect::kNone) {
          unsafe.insert(f.name);
          changed = true;
          break;
        }
        // Bare call to an already-unsafe function.
        const bool bare_call =
            is_punct(tok(u, i + 1), "(") &&
            (i == 0 || (!is_punct(u.lexed.tokens[i - 1], ".") &&
                        !is_punct(u.lexed.tokens[i - 1], "->") &&
                        !is_punct(u.lexed.tokens[i - 1], "::")));
        if (bare_call && unsafe.count(t.text) != 0) {
          unsafe.insert(f.name);
          changed = true;
          break;
        }
      }
    }
  }
  return unsafe;
}

void rule_dangling_slab_handle(const FileUnit& u, std::vector<Finding>& out) {
  const auto& toks = u.lexed.tokens;
  const std::set<std::string> unsafe_fns = may_invalidate_functions(u);
  for (const FunctionDef& f : u.symbols.functions) {
    std::vector<TrackedPtr> tracked;
    bool pending_path_clear = false;
    for (std::size_t i = f.body_begin; i < f.body_end; ++i) {
      const Token& t = toks[i];
      // The scan is path-insensitive, so an invalidation followed by a
      // completed `return` statement before the next use means the two sit
      // on mutually exclusive paths (the common early-exit branch shape):
      // forget the invalidation once the return statement ends. Uses inside
      // the return expression itself are still checked.
      if (pending_path_clear && is_punct(t, ";")) {
        for (TrackedPtr& p : tracked) p.invalidated = false;
        pending_path_clear = false;
        continue;
      }
      if (!is_ident(t)) continue;
      if (is_word(t, "return")) {
        pending_path_clear = true;
        continue;
      }

      // New tracked pointer?  <*|&|auto> name = recv.find( / recv.get( /
      // recv[ ...  (a plain value copy is safe and is not tracked).
      if (is_punct(tok(u, i + 1), "=") && i > f.body_begin) {
        const Token& before = toks[i - 1];
        const bool ptr_decl = is_punct(before, "*") || is_punct(before, "&");
        const bool auto_decl = is_word(before, "auto");
        std::size_t j = i + 2;
        if (is_punct(tok(u, j), "&") || is_punct(tok(u, j), "*")) ++j;
        if (is_ident(tok(u, j))) {
          const std::string recv = tok(u, j).text;
          const bool map_find = u.symbols.declared_as(recv, "FlatMap") &&
                                (is_punct(tok(u, j + 1), ".") ||
                                 is_punct(tok(u, j + 1), "->")) &&
                                is_word(tok(u, j + 2), "find") &&
                                is_punct(tok(u, j + 3), "(");
          const bool slab_get = u.symbols.declared_as(recv, "Slab") &&
                                (is_punct(tok(u, j + 1), ".") ||
                                 is_punct(tok(u, j + 1), "->")) &&
                                is_word(tok(u, j + 2), "get") &&
                                is_punct(tok(u, j + 3), "(");
          const bool slab_index = u.symbols.declared_as(recv, "Slab") &&
                                  is_punct(tok(u, j + 1), "[");
          const bool track = (map_find && (ptr_decl || auto_decl)) ||
                             (slab_get && (ptr_decl || auto_decl)) ||
                             (slab_index && ptr_decl);
          // Reassignment of a name always supersedes earlier tracking.
          for (TrackedPtr& p : tracked)
            if (p.name == t.text) p.invalidated = false;
          tracked.erase(std::remove_if(tracked.begin(), tracked.end(),
                                       [&](const TrackedPtr& p) {
                                         return p.name == t.text;
                                       }),
                        tracked.end());
          if (track) {
            TrackedPtr p;
            p.name = t.text;
            p.source = recv;
            p.from_slab = slab_get || slab_index;
            tracked.push_back(std::move(p));
            i = j + 1;
            continue;
          }
        }
        continue;
      }

      if (tracked.empty()) continue;

      // Invalidating events.
      const CallEffect eff = method_effect(u, i);
      if (eff != CallEffect::kNone) {
        for (TrackedPtr& p : tracked) {
          const bool hits = p.source == t.text &&
                            ((eff == CallEffect::kFlatMapMutate && !p.from_slab) ||
                             (eff == CallEffect::kSlabMutate && p.from_slab));
          if (hits && !p.invalidated) {
            p.invalidated = true;
            p.invalidator = t.text + "." + toks[i + 2].text + "()";
            p.invalidated_line = t.line;
          }
        }
        i += 3;  // past recv . method (
        continue;
      }
      const bool bare_call =
          is_punct(tok(u, i + 1), "(") &&
          (i == 0 || (!is_punct(toks[i - 1], ".") && !is_punct(toks[i - 1], "->") &&
                      !is_punct(toks[i - 1], "::")));
      if (bare_call && unsafe_fns.count(t.text) != 0 && t.text != f.name) {
        for (TrackedPtr& p : tracked) {
          if (!p.invalidated) {
            p.invalidated = true;
            p.invalidator = t.text + "()";
            p.invalidated_line = t.line;
          }
        }
        continue;
      }

      // Use of a tracked pointer. Field accesses named like the pointer
      // (x.f) do not count; the identifier itself does.
      if (i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->") ||
                    is_punct(toks[i - 1], "::")))
        continue;
      for (TrackedPtr& p : tracked) {
        if (p.name != t.text || !p.invalidated || p.reported) continue;
        p.reported = true;
        add(out, u, t, "dangling-slab-handle",
            "'" + p.name + "' (from " + p.source +
                (p.from_slab ? " slab node access" : "::find") +
                ") is used after " + p.invalidator + " (line " +
                std::to_string(p.invalidated_line) +
                "), which may invalidate it; re-acquire the pointer after "
                "the mutation");
      }
    }
  }
}

// ---- narration-completeness ------------------------------------------------
//
// Every MultiLevelScheme narrates its block movements into the audit sink so
// the shadow auditor (src/check) can replay them. A scheme method that
// mutates level contents without ever reaching audit_emit silently drifts
// the shadow model — the exact failure mode the mutation tests seed. The
// rule applies to classes deriving from MultiLevelScheme in src/hierarchy
// and src/ulc that narrate at all (schemes that opt out of auditing
// entirely, like the OPT reference layout, fall back to the auditor's
// statistics-conservation checks and are exempt).

bool body_mentions(const FileUnit& u, const FunctionDef& f, const char* name) {
  for (std::size_t i = f.body_begin; i < f.body_end; ++i) {
    if (is_word(u.lexed.tokens[i], name)) return true;
  }
  return false;
}

void rule_narration_completeness(const FileUnit& u, std::vector<Finding>& out) {
  if (!path_has(u, "src/hierarchy/") && !path_has(u, "src/ulc/")) return;
  static const char* const kMutators[] = {"insert",    "insert_new", "erase",
                                          "evict_one", "evict",      "remove"};
  for (const ClassDef& cls : u.symbols.classes) {
    if (std::find(cls.bases.begin(), cls.bases.end(), "MultiLevelScheme") ==
        cls.bases.end())
      continue;
    // Member functions: inside the class body, or out-of-line Class::name.
    std::vector<const FunctionDef*> members;
    for (const FunctionDef& f : u.symbols.functions) {
      const bool inside =
          f.header_begin > cls.body_begin && f.body_end <= cls.body_end;
      if (inside || f.qualifier == cls.name) members.push_back(&f);
    }
    // narrates: direct audit_emit/auditing use, then closed over bare calls
    // to sibling members.
    std::set<std::string> narrating;
    for (const FunctionDef* f : members) {
      // journal_write_back is the base-class write-back choke point and
      // narrates the kWriteback event itself.
      if (body_mentions(u, *f, "audit_emit") || body_mentions(u, *f, "auditing") ||
          body_mentions(u, *f, "journal_write_back"))
        narrating.insert(f->name);
    }
    if (narrating.empty()) continue;  // scheme opted out of auditing
    bool changed = true;
    while (changed) {
      changed = false;
      for (const FunctionDef* f : members) {
        if (narrating.count(f->name) != 0) continue;
        for (std::size_t i = f->body_begin; i < f->body_end; ++i) {
          const Token& t = u.lexed.tokens[i];
          const bool bare_call =
              is_ident(t) && is_punct(tok(u, i + 1), "(") &&
              (i == 0 || (!is_punct(u.lexed.tokens[i - 1], ".") &&
                          !is_punct(u.lexed.tokens[i - 1], "->") &&
                          !is_punct(u.lexed.tokens[i - 1], "::")));
          if (bare_call && narrating.count(t.text) != 0) {
            narrating.insert(f->name);
            changed = true;
            break;
          }
        }
      }
    }
    for (const FunctionDef* f : members) {
      if (f->is_const || f->name == cls.name || f->name == "reset_stats")
        continue;
      if (narrating.count(f->name) != 0) continue;
      bool mutates = false;
      std::string mutator;
      for (std::size_t i = f->body_begin; i < f->body_end && !mutates; ++i) {
        const Token& t = u.lexed.tokens[i];
        if (!is_ident(t) || !is_punct(tok(u, i + 1), "(")) continue;
        if (i == 0 || (!is_punct(u.lexed.tokens[i - 1], ".") &&
                       !is_punct(u.lexed.tokens[i - 1], "->")))
          continue;  // only receiver.method(...) forms mutate contents
        for (const char* m : kMutators) {
          if (t.text == m) {
            mutates = true;
            mutator = t.text;
            break;
          }
        }
      }
      if (!mutates) continue;
      Token at{TokKind::kIdent, f->name, f->line, 1};
      add(out, u, at, "narration-completeness",
          "'" + cls.name + "::" + f->name + "' mutates level contents (" +
              mutator +
              ") but never reaches audit_emit; narrate the movement or "
              "allow-mark a metadata-only mutation");
    }
  }
}

// ---- dirty-drop ------------------------------------------------------------
//
// The bug class the write-back pipeline exists to kill: a scheme dropping a
// dirty marking (`dirty_.erase(...)`) without routing the data through the
// write-back/journal machinery silently loses a write. Any member in
// src/hierarchy or src/ulc that erases from `dirty_` must either *be* part
// of that machinery (its name says write_back/writeback/journal) or call
// into it from the same body (an identifier containing one of those
// fragments used as a call or receiver — journal_write_back(...),
// journal_record_loss(...), journal_->append(...)). A mere mention in a
// comment or counter (`stats_.writebacks`) does not count.

bool name_is_writeback_machinery(const std::string& name) {
  return name.find("write_back") != std::string::npos ||
         name.find("writeback") != std::string::npos ||
         name.find("journal") != std::string::npos;
}

void rule_dirty_drop(const FileUnit& u, std::vector<Finding>& out) {
  if (!path_has(u, "src/hierarchy/") && !path_has(u, "src/ulc/")) return;
  const auto& toks = u.lexed.tokens;
  for (const FunctionDef& f : u.symbols.functions) {
    if (name_is_writeback_machinery(f.name)) continue;
    bool reaches_writeback = false;
    for (std::size_t i = f.body_begin; i < f.body_end; ++i) {
      const Token& t = toks[i];
      if (!is_ident(t) || !name_is_writeback_machinery(t.text)) continue;
      // Only a *used* identifier counts: a call, or a receiver whose member
      // is reached — not a counter field like stats_.writebacks.
      const Token& next = tok(u, i + 1);
      if (is_punct(next, "(") || is_punct(next, ".") || is_punct(next, "->")) {
        reaches_writeback = true;
        break;
      }
    }
    if (reaches_writeback) continue;
    for (std::size_t i = f.body_begin; i + 3 < f.body_end; ++i) {
      if (!is_word(toks[i], "dirty_")) continue;
      if (!is_punct(toks[i + 1], ".") && !is_punct(toks[i + 1], "->")) continue;
      if (!is_word(toks[i + 2], "erase") || !is_punct(toks[i + 3], "(")) continue;
      add(out, u, toks[i], "dirty-drop",
          "'" + f.name +
              "' drops a dirty marking without reaching the write-back/"
              "journal machinery; write the block back (write_back_if_dirty) "
              "or record the loss (journal_record_loss), or allow-mark a "
              "provably clean drop");
      break;  // one finding per member is enough
    }
  }
}

// ---- enum-switch -----------------------------------------------------------

struct SwitchInfo {
  std::size_t kw = 0;          // token index of `switch`
  std::size_t body_begin = 0;  // `{`
  std::size_t body_end = 0;    // one past `}`
};

void find_switches(const FileUnit& u, std::vector<SwitchInfo>& out) {
  const auto& toks = u.lexed.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_word(toks[i], "switch") || !is_punct(tok(u, i + 1), "(")) continue;
    const std::size_t cond_end = skip_balanced(toks, i + 1);
    if (!is_punct(tok(u, cond_end), "{")) continue;
    SwitchInfo s;
    s.kw = i;
    s.body_begin = cond_end;
    s.body_end = skip_balanced(toks, cond_end);
    out.push_back(s);
  }
}

void rule_enum_switch(const FileUnit& u, const GlobalContext& ctx,
                      std::vector<Finding>& out) {
  std::vector<SwitchInfo> switches;
  find_switches(u, switches);
  const auto& toks = u.lexed.tokens;
  for (const SwitchInfo& s : switches) {
    bool has_default = false;
    std::set<std::string> labels;     // enumerator names
    std::set<std::string> enum_names; // qualifier directly before them
    bool unqualified_label = false;
    for (std::size_t i = s.body_begin + 1; i + 1 < s.body_end; ++i) {
      // Skip nested switch bodies: their cases belong to them.
      for (const SwitchInfo& n : switches) {
        if (n.kw > s.kw && n.kw == i) i = n.body_end;
      }
      if (i >= s.body_end) break;
      const Token& t = toks[i];
      if (is_word(t, "default") && is_punct(tok(u, i + 1), ":")) {
        has_default = true;
        continue;
      }
      if (!is_word(t, "case")) continue;
      // Label tokens up to the `:`.
      std::size_t j = i + 1;
      std::vector<const Token*> label;
      while (j < s.body_end && !is_punct(toks[j], ":")) {
        label.push_back(&toks[j]);
        ++j;
      }
      i = j;
      if (label.size() >= 3 && is_ident(*label[label.size() - 1]) &&
          label[label.size() - 2]->text == "::" &&
          is_ident(*label[label.size() - 3])) {
        labels.insert(label.back()->text);
        enum_names.insert(label[label.size() - 3]->text);
      } else {
        unqualified_label = true;
      }
    }
    if (has_default || unqualified_label || enum_names.size() != 1 ||
        labels.empty())
      continue;
    const std::string& ename = *enum_names.begin();
    auto it = ctx.enums.find(ename);
    if (it == ctx.enums.end()) continue;  // not a repo-defined enum
    // Candidate defs that explain every label; pick the tightest.
    const EnumDef* best = nullptr;
    for (const EnumDef* def : it->second) {
      const std::set<std::string> all(def->enumerators.begin(),
                                      def->enumerators.end());
      if (!std::includes(all.begin(), all.end(), labels.begin(), labels.end()))
        continue;
      if (best == nullptr || def->enumerators.size() < best->enumerators.size())
        best = def;
    }
    if (best == nullptr) continue;
    std::vector<std::string> missing;
    for (const std::string& e : best->enumerators)
      if (labels.count(e) == 0) missing.push_back(e);
    if (missing.empty()) continue;
    std::string list;
    for (const std::string& m : missing) {
      if (!list.empty()) list += ", ";
      list += m;
    }
    add(out, u, toks[s.kw], "enum-switch",
        "switch over enum '" + ename + "' (" + best->path +
            ") has no default and misses: " + list);
  }
}

// ---- include-layering ------------------------------------------------------

void rule_include_layering(const FileUnit& u, const GlobalContext& ctx,
                           std::vector<Finding>& out) {
  if (ctx.layers.empty()) return;
  const std::string self = module_of(u.lexed.path);
  if (self.empty()) return;
  auto it = ctx.layers.find(self);
  if (it == ctx.layers.end()) {
    Token at{TokKind::kPunct, "", 1, 1};
    add(out, u, at, "include-layering",
        "module '" + self +
            "' is not declared in layers.txt; add it to the layering DAG");
    return;
  }
  const std::set<std::string>& allowed = it->second;
  if (allowed.count("*") != 0) return;
  for (const Token& t : u.lexed.tokens) {
    if (t.kind != TokKind::kPreprocessor) continue;
    const std::string sq = squeeze(t.text);
    if (sq.compare(0, 9, "#include\"") != 0) continue;
    const std::size_t open = t.text.find('"');
    const std::size_t close = t.text.find('"', open + 1);
    if (open == std::string::npos || close == std::string::npos) continue;
    const std::string inc = t.text.substr(open + 1, close - open - 1);
    const std::size_t slash = inc.find('/');
    if (slash == std::string::npos) continue;  // same-directory include
    const std::string target = inc.substr(0, slash);
    if (target == self || allowed.count(target) != 0) continue;
    add(out, u, t, "include-layering",
        "module '" + self + "' must not include '" + inc + "': '" + target +
            "' is not among its declared dependencies in layers.txt");
  }
}

// ---- lock-order ------------------------------------------------------------

// The serving runtime is deadlock-free by construction: every function takes
// at most one guard (shard locks are leaves; cross-shard work goes through
// the MPSC queues instead of nesting). A second guard construction in one
// function body therefore either needs a documented lock order or a
// restructure — flag it, allow-markable with the ordering comment.
void rule_lock_order(const FileUnit& u, std::vector<Finding>& out) {
  if (!path_has(u, "src/runtime/")) return;
  const auto& toks = u.lexed.tokens;
  for (const FunctionDef& fn : u.symbols.functions) {
    std::size_t guards = 0;
    for (std::size_t i = fn.body_begin; i < fn.body_end && i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (!is_ident(t)) continue;
      const bool guard_type = t.text == "lock_guard" || t.text == "unique_lock" ||
                              t.text == "scoped_lock" || t.text == "shared_lock";
      if (!guard_type) continue;
      if (!is_punct(tok(u, i + 1), "<") && !is_punct(tok(u, i + 1), "("))
        continue;  // mention, not a construction
      if (++guards == 2) {
        add(out, u, t, "lock-order",
            "second lock guard in '" + fn.name +
                "': nested shard-lock acquisition risks deadlock; route "
                "cross-shard work through the MPSC queues, or document the "
                "global lock order with an allow marker");
        break;  // one finding per function
      }
    }
  }
}

// ---- raw-intrinsic ---------------------------------------------------------
//
// util/simd.h is the single place raw SSE/NEON intrinsics (and the bare
// prefetch builtin) are allowed: it owns the per-ISA group-probe policies and
// the scalar fallback that the differential fuzz pins against them. An
// intrinsic anywhere else forks the portability surface — the scalar build
// stops covering it, and determinism between ISAs is no longer tested. The
// rule is pattern-based (x86 `_mm*_` / `__m128`-family types /
// `__builtin_ia32_*`, NEON `v*_<lane-type>` calls and `uint8x16_t`-style
// vector types, and `__builtin_prefetch`) so new intrinsics are caught
// without a list update; a genuinely unrelated identifier that trips the
// NEON heuristic can be allow-marked.

bool neon_lane_suffix(const std::string& s) {
  static const char* const kSuffixes[] = {"u8",  "u16", "u32", "u64", "s8",
                                          "s16", "s32", "s64", "f16", "f32",
                                          "f64", "p8",  "p16", "p64"};
  const std::size_t us = s.rfind('_');
  if (us == std::string::npos || us + 1 >= s.size()) return false;
  const std::string tail = s.substr(us + 1);
  for (const char* suf : kSuffixes)
    if (tail == suf) return true;
  return false;
}

bool neon_vector_type(const std::string& s) {
  // uint8x16_t, int16x8_t, float32x4_t, poly8x8_t, uint8x8x2_t ...
  if (s.size() < 7 || s.compare(s.size() - 2, 2, "_t") != 0) return false;
  std::size_t i = 0;
  if (s.compare(0, 4, "uint") == 0) i = 4;
  else if (s.compare(0, 3, "int") == 0) i = 3;
  else if (s.compare(0, 5, "float") == 0) i = 5;
  else if (s.compare(0, 4, "poly") == 0) i = 4;
  else return false;
  bool saw_x = false;
  for (; i + 2 < s.size(); ++i) {
    const char c = s[i];
    if (c == 'x') saw_x = true;
    else if (c < '0' || c > '9') return false;
  }
  return saw_x;
}

bool raw_intrinsic_ident(const std::string& s) {
  if (s.compare(0, 4, "_mm_") == 0 || s.compare(0, 7, "_mm256_") == 0 ||
      s.compare(0, 7, "_mm512_") == 0)
    return true;
  if (s.compare(0, 4, "__m1") == 0 || s.compare(0, 4, "__m2") == 0 ||
      s.compare(0, 4, "__m5") == 0)
    return true;
  if (s.compare(0, 14, "__builtin_ia32") == 0) return true;
  if (s == "__builtin_prefetch") return true;
  if (s.size() > 4 && s[0] == 'v' && neon_lane_suffix(s)) return true;
  return neon_vector_type(s);
}

void rule_raw_intrinsic(const FileUnit& u, std::vector<Finding>& out) {
  const std::string& p = u.lexed.path;
  if (p.size() >= 11 && p.compare(p.size() - 11, 11, "util/simd.h") == 0)
    return;
  for (const Token& t : u.lexed.tokens) {
    if (is_ident(t) && raw_intrinsic_ident(t.text))
      add(out, u, t, "raw-intrinsic",
          "raw SIMD/prefetch intrinsic '" + t.text +
              "' outside util/simd.h; go through the Group16 policies and "
              "prefetch_read/prefetch_write so the scalar fallback and the "
              "differential fuzz keep covering this code");
  }
}

}  // namespace

const std::vector<RuleInfo>& all_rules() {
  static const std::vector<RuleInfo> kRules = {
      {"determinism", Severity::kError,
       "libc randomness / time() calls break bit-reproducible runs"},
      {"wall-clock", Severity::kError,
       "std::chrono machine clocks outside util/wallclock.h"},
      {"unordered-iteration", Severity::kError,
       "range-for over an unordered container leaks hash order"},
      {"ensure-msg", Severity::kError,
       "ULC_ENSURE/ULC_REQUIRE with an empty diagnostic message"},
      {"pragma-once", Severity::kError, "header without #pragma once"},
      {"using-namespace", Severity::kError, "`using namespace` in a header"},
      {"float-eq", Severity::kError,
       "exact ==/!= against a floating-point literal"},
      {"unbounded-retry", Severity::kError,
       "infinite loop around protocol sends with no attempts bound"},
      {"hot-container", Severity::kError,
       "node-based std container in an arena-core hot directory"},
      {"count-capacity", Severity::kError,
       "entry count compared against a byte budget"},
      {"dangling-slab-handle", Severity::kError,
       "FlatMap/Slab pointer used after a call that can invalidate it"},
      {"narration-completeness", Severity::kError,
       "scheme mutates level contents without narrating to the audit sink"},
      {"dirty-drop", Severity::kError,
       "dirty marking erased without reaching the write-back/journal machinery"},
      {"enum-switch", Severity::kError,
       "switch over a repo enum without default misses enumerators"},
      {"include-layering", Severity::kError,
       "include edge not in the declared module DAG (tools/lint/layers.txt)"},
      {"lock-order", Severity::kError,
       "nested lock-guard acquisition in src/runtime without an ordering "
       "comment"},
      {"raw-intrinsic", Severity::kError,
       "SSE/NEON/prefetch intrinsic used outside util/simd.h"},
  };
  return kRules;
}

bool is_known_rule(const std::string& name) {
  for (const RuleInfo& r : all_rules())
    if (name == r.name) return true;
  return false;
}

std::string module_of(const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : path) {
    if (c == '/') {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  parts.push_back(cur);
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    if (parts[i] == "src") return parts[i + 1];
    if (parts[i] == "bench" || parts[i] == "tools" || parts[i] == "tests")
      return parts[i];
  }
  return {};
}

void run_rules(const FileUnit& unit, const GlobalContext& ctx,
               std::vector<Finding>& out) {
  rule_determinism(unit, out);
  rule_wall_clock(unit, out);
  rule_unordered_iteration(unit, ctx, out);
  rule_ensure_msg(unit, out);
  rule_header_hygiene(unit, out);
  rule_float_eq(unit, out);
  rule_unbounded_retry(unit, out);
  rule_hot_container(unit, out);
  rule_count_capacity(unit, out);
  rule_dangling_slab_handle(unit, out);
  rule_narration_completeness(unit, out);
  rule_dirty_drop(unit, out);
  rule_enum_switch(unit, ctx, out);
  rule_include_layering(unit, ctx, out);
  rule_lock_order(unit, out);
  rule_raw_intrinsic(unit, out);
}

}  // namespace ulc::lint
