#include "lint/engine.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace ulc::lint {

namespace {

namespace fs = std::filesystem;

bool cpp_extension(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  if (dot == std::string::npos) return false;
  const std::string ext = path.substr(dot);
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

std::string stem_of(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  return dot == std::string::npos ? path : path.substr(0, dot);
}

Severity severity_for(const Options& opts, const std::string& rule) {
  if (opts.warn_rules.count(rule) != 0) return Severity::kWarning;
  for (const RuleInfo& r : all_rules())
    if (rule == r.name) return r.default_severity;
  return Severity::kError;
}

void json_escape(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

Engine::Engine(Options opts) : opts_(std::move(opts)) {}

void Engine::add_source(const std::string& path, std::string text) {
  auto unit = std::make_unique<FileUnit>();
  unit->lexed = lex(path, std::move(text));
  unit->symbols = scan(unit->lexed);
  units_.push_back(std::move(unit));
}

void Engine::add_file(const std::string& path) {
  if (!cpp_extension(path)) return;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    io_errors_.push_back("cannot read " + path);
    return;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  add_source(path, buf.str());
}

void Engine::add_directory(const std::string& dir) {
  std::error_code ec;
  std::vector<std::string> paths;
  for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (it->is_regular_file(ec) && cpp_extension(it->path().string()))
      paths.push_back(it->path().string());
  }
  if (ec) {
    io_errors_.push_back("cannot walk " + dir + ": " + ec.message());
    return;
  }
  std::sort(paths.begin(), paths.end());
  for (const std::string& p : paths) add_file(p);
}

std::string Engine::display_path(const std::string& path) const {
  if (opts_.root.empty()) return path;
  std::string root = opts_.root;
  if (!root.empty() && root.back() != '/') root.push_back('/');
  if (path.compare(0, root.size(), root) == 0) return path.substr(root.size());
  return path;
}

bool allow_marker_covers(const std::string& line_text,
                         const std::string& rule) {
  const std::size_t at = line_text.find("ulc-lint:");
  if (at == std::string::npos) return false;
  std::size_t open = line_text.find("allow(", at);
  if (open == std::string::npos) return false;
  const std::size_t close = line_text.find(')', open);
  if (close == std::string::npos) return false;
  std::string list = line_text.substr(open + 6, close - open - 6);
  std::string name;
  std::vector<std::string> names;
  for (char c : list) {
    if (c == ',' || c == ' ' || c == '\t') {
      if (!name.empty()) names.push_back(name);
      name.clear();
    } else {
      name.push_back(c);
    }
  }
  if (!name.empty()) names.push_back(name);
  return std::find(names.begin(), names.end(), rule) != names.end();
}

std::map<std::string, std::set<std::string>> parse_layers(
    const std::string& text, std::vector<std::string>& errors) {
  std::map<std::string, std::set<std::string>> layers;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string module;
    if (!(fields >> module)) continue;  // blank line
    if (module.back() != ':') {
      errors.push_back("layers.txt:" + std::to_string(lineno) +
                       ": expected 'module:' at line start");
      continue;
    }
    module.pop_back();
    std::set<std::string>& deps = layers[module];
    std::string dep;
    while (fields >> dep) deps.insert(dep);
  }
  return layers;
}

std::set<std::string> parse_baseline(const std::string& text) {
  std::set<std::string> keys;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() && (line.back() == ' ' || line.back() == '\r'))
      line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    keys.insert(line);
  }
  return keys;
}

Report Engine::run() {
  Report report;
  report.errors = io_errors_;

  // Cross-file context.
  GlobalContext ctx;
  for (const auto& u : units_)
    for (const EnumDef& e : u->symbols.enums) ctx.enums[e.name].push_back(&e);
  // Sibling pairs: every other unit sharing a path stem (foo.cpp <-> foo.h).
  std::map<std::string, std::vector<const FileUnit*>> stem_groups;
  for (const auto& u : units_)
    stem_groups[stem_of(u->lexed.path)].push_back(u.get());
  for (const auto& [stem, group] : stem_groups) {
    if (group.size() < 2) continue;
    for (const FileUnit* a : group)
      for (const FileUnit* b : group)
        if (a != b) ctx.sibling[a] = b;
  }

  if (!opts_.layers_file.empty()) {
    std::ifstream in(opts_.layers_file, std::ios::binary);
    if (!in) {
      report.errors.push_back("cannot read layers file " + opts_.layers_file);
    } else {
      std::ostringstream buf;
      buf << in.rdbuf();
      ctx.layers = parse_layers(buf.str(), report.errors);
    }
  }

  std::set<std::string> baseline;
  if (!opts_.baseline_file.empty()) {
    std::ifstream in(opts_.baseline_file, std::ios::binary);
    if (!in) {
      report.errors.push_back("cannot read baseline file " +
                              opts_.baseline_file);
    } else {
      std::ostringstream buf;
      buf << in.rdbuf();
      baseline = parse_baseline(buf.str());
    }
  }

  std::vector<Finding> raw;
  for (const auto& u : units_) run_rules(*u, ctx, raw);

  std::map<std::string, const FileUnit*> path_map;
  for (const auto& u : units_) path_map[u->lexed.path] = u.get();

  std::set<std::string> used_baseline;
  for (Finding& f : raw) {
    f.severity = severity_for(opts_, f.rule);
    const FileUnit* u = path_map[f.path];
    // Same-line marker, or a marker-only line directly above.
    const std::string& here = u->lexed.line_text(f.line);
    const std::string& above = f.line > 1 ? u->lexed.line_text(f.line - 1) : here;
    const bool above_is_marker_line =
        f.line > 1 &&
        above.find_first_not_of(" \t") != std::string::npos &&
        above[above.find_first_not_of(" \t")] == '/' &&
        above.find("ulc-lint:") != std::string::npos;
    if (allow_marker_covers(here, f.rule) ||
        (above_is_marker_line && allow_marker_covers(above, f.rule))) {
      ++report.suppressed_count;
      continue;
    }
    const std::string key = display_path(f.path) + ":" +
                            std::to_string(f.line) + ":" + f.rule;
    if (baseline.count(key) != 0) {
      used_baseline.insert(key);
      ++report.baselined_count;
      continue;
    }
    report.findings.push_back(std::move(f));
  }
  for (const std::string& k : baseline)
    if (used_baseline.count(k) == 0) report.unused_baseline.push_back(k);

  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.path != b.path) return a.path < b.path;
                     if (a.line != b.line) return a.line < b.line;
                     return a.col < b.col;
                   });
  for (Finding& f : report.findings) {
    f.path = display_path(f.path);
    if (f.severity == Severity::kError)
      ++report.error_count;
    else
      ++report.warning_count;
  }
  return report;
}

std::string Engine::render_text(const Report& report) {
  std::ostringstream os;
  for (const std::string& e : report.errors) os << "ulc_lint: error: " << e << "\n";
  for (const Finding& f : report.findings) {
    os << f.path << ":" << f.line << ":" << f.col << ": "
       << (f.severity == Severity::kError ? "error" : "warning") << " ["
       << f.rule << "] " << f.message << "\n";
  }
  for (const std::string& k : report.unused_baseline)
    os << "ulc_lint: note: stale baseline entry (no longer fires): " << k
       << "\n";
  os << "ulc_lint: " << report.error_count << " error(s), "
     << report.warning_count << " warning(s), " << report.suppressed_count
     << " allow-marked, " << report.baselined_count << " baselined\n";
  return os.str();
}

std::string Engine::render_json(const Report& report) {
  std::ostringstream os;
  os << "{\n  \"findings\": [";
  bool first = true;
  for (const Finding& f : report.findings) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"path\": \"";
    json_escape(os, f.path);
    os << "\", \"line\": " << f.line << ", \"col\": " << f.col
       << ", \"rule\": \"";
    json_escape(os, f.rule);
    os << "\", \"severity\": \""
       << (f.severity == Severity::kError ? "error" : "warning")
       << "\", \"message\": \"";
    json_escape(os, f.message);
    os << "\"}";
  }
  os << (first ? "" : "\n  ") << "],\n";
  os << "  \"stale_baseline\": [";
  first = true;
  for (const std::string& k : report.unused_baseline) {
    os << (first ? "" : ", ");
    first = false;
    os << "\"";
    json_escape(os, k);
    os << "\"";
  }
  os << "],\n";
  os << "  \"errors\": " << report.error_count
     << ",\n  \"warnings\": " << report.warning_count
     << ",\n  \"suppressed\": " << report.suppressed_count
     << ",\n  \"baselined\": " << report.baselined_count << "\n}\n";
  return os.str();
}

}  // namespace ulc::lint
