#include "lint/symbols.h"

#include <algorithm>

namespace ulc::lint {

namespace {

bool is_ident(const Token& t) { return t.kind == TokKind::kIdent; }
bool is_punct(const Token& t, const char* s) {
  return t.kind == TokKind::kPunct && t.text == s;
}
bool is_word(const Token& t, const char* s) {
  return t.kind == TokKind::kIdent && t.text == s;
}

bool is_statement_keyword(const std::string& s) {
  return s == "return" || s == "delete" || s == "new" || s == "case" ||
         s == "goto" || s == "else" || s == "throw" || s == "using" ||
         s == "typedef" || s == "typename" || s == "template" ||
         s == "operator" || s == "sizeof" || s == "static_assert" ||
         s == "public" || s == "private" || s == "protected" || s == "break" ||
         s == "continue" || s == "do" || s == "namespace" || s == "friend";
}

bool is_control_keyword(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "catch" || s == "return" || s == "sizeof" || s == "alignof" ||
         s == "decltype" || s == "noexcept" || s == "static_assert" ||
         s == "alignas" || s == "throw" || s == "new" || s == "delete";
}

bool is_decl_qualifier(const std::string& s) {
  return s == "const" || s == "constexpr" || s == "static" || s == "inline" ||
         s == "mutable" || s == "volatile" || s == "explicit" ||
         s == "virtual" || s == "extern" || s == "thread_local";
}

// Skips a template argument list starting at the `<` token. Returns one past
// the matching `>`, or npos when this `<` is better explained as a
// comparison (a `;`, `{` or end of file arrives first).
constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

std::size_t skip_template_args(const std::vector<Token>& toks, std::size_t at) {
  int depth = 0;
  for (std::size_t i = at; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "<") ++depth;
    if (t.text == "<<") depth += 2;
    if (t.text == ">") --depth;
    if (t.text == ">>") depth -= 2;
    if (depth <= 0) return i + 1;
    if (t.text == ";" || t.text == "{") return kNpos;
    if (t.text == "(") {
      i = skip_balanced(toks, i);
      if (i == toks.size()) return kNpos;
      --i;
    }
  }
  return kNpos;
}

class Scanner {
 public:
  explicit Scanner(const LexedFile& file) : file_(file), toks_(file.tokens) {}

  TuSymbols run() {
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      scan_enum(i);
      scan_class(i);
      scan_reserved(i);
      scan_var_decl(i);
      scan_function(i);
    }
    drop_nested_functions();
    return std::move(out_);
  }

 private:
  const Token& tok(std::size_t i) const {
    static const Token kEof{TokKind::kPunct, "", 0, 0};
    return i < toks_.size() ? toks_[i] : kEof;
  }

  void scan_enum(std::size_t i) {
    if (!is_word(tok(i), "enum")) return;
    std::size_t j = i + 1;
    if (is_word(tok(j), "class") || is_word(tok(j), "struct")) ++j;
    if (!is_ident(tok(j))) return;  // unnamed enum: nothing to switch over
    EnumDef def;
    def.name = tok(j).text;
    def.line = tok(j).line;
    def.path = file_.path;
    ++j;
    if (is_punct(tok(j), ":")) {  // underlying type
      ++j;
      while (j < toks_.size() && !is_punct(tok(j), "{") && !is_punct(tok(j), ";"))
        ++j;
    }
    if (!is_punct(tok(j), "{")) return;  // forward declaration
    ++j;
    bool expect_name = true;
    int depth = 1;
    while (j < toks_.size() && depth > 0) {
      const Token& t = tok(j);
      if (is_punct(t, "{")) ++depth;
      if (is_punct(t, "}")) --depth;
      if (depth == 1) {
        if (expect_name && is_ident(t)) {
          def.enumerators.push_back(t.text);
          expect_name = false;
        } else if (is_punct(t, ",")) {
          expect_name = true;
        } else if (is_punct(t, "(") || is_punct(t, "[")) {
          j = skip_balanced(toks_, j);
          continue;
        }
      }
      ++j;
    }
    if (!def.enumerators.empty()) out_.enums.push_back(std::move(def));
  }

  void scan_class(std::size_t i) {
    if (!is_word(tok(i), "class") && !is_word(tok(i), "struct")) return;
    std::size_t j = i + 1;
    if (!is_ident(tok(j))) return;
    ClassDef def;
    def.name = tok(j).text;
    ++j;
    if (is_word(tok(j), "final")) ++j;
    if (is_punct(tok(j), ":")) {
      ++j;
      std::string last_ident;
      while (j < toks_.size() && !is_punct(tok(j), "{") && !is_punct(tok(j), ";")) {
        const Token& t = tok(j);
        if (is_ident(t) && !is_decl_qualifier(t.text) && t.text != "public" &&
            t.text != "private" && t.text != "protected")
          last_ident = t.text;
        if (is_punct(t, "<")) {
          const std::size_t past = skip_template_args(toks_, j);
          if (past == kNpos) return;
          j = past;
          continue;
        }
        if (is_punct(t, ",")) {
          if (!last_ident.empty()) def.bases.push_back(last_ident);
          last_ident.clear();
        }
        ++j;
      }
      if (!last_ident.empty()) def.bases.push_back(last_ident);
    }
    if (!is_punct(tok(j), "{")) return;  // forward decl or variable
    def.body_begin = j;
    def.body_end = skip_balanced(toks_, j);
    out_.classes.push_back(std::move(def));
  }

  void scan_reserved(std::size_t i) {
    if (!is_ident(tok(i))) return;
    if (!is_punct(tok(i + 1), ".") && !is_punct(tok(i + 1), "->")) return;
    if (!is_word(tok(i + 2), "reserve") || !is_punct(tok(i + 3), "(")) return;
    out_.reserved_receivers.insert(tok(i).text);
  }

  // Declarations of the shape:  [qualifiers] Head[::Chain][<args>] [*&]*
  // name (; = { , ))   — records name -> Head (last chain component).
  void scan_var_decl(std::size_t i) {
    if (!is_ident(tok(i)) || is_statement_keyword(tok(i).text) ||
        is_control_keyword(tok(i).text) || is_decl_qualifier(tok(i).text))
      return;
    // Only start at the head of the type: the previous token must not make
    // this identifier part of a larger expression or qualified name.
    const Token& prev = tok(i == 0 ? toks_.size() : i - 1);
    if (i > 0 && (is_ident(prev) || is_punct(prev, "::") || is_punct(prev, ".") ||
                  is_punct(prev, "->")))
      return;
    std::size_t j = i;
    std::string head = tok(j).text;
    ++j;
    while (is_punct(tok(j), "::") && is_ident(tok(j + 1))) {
      head = tok(j + 1).text;
      j += 2;
    }
    if (is_punct(tok(j), "<")) {
      const std::size_t past = skip_template_args(toks_, j);
      if (past == kNpos) return;
      j = past;
    }
    while (is_punct(tok(j), "*") || is_punct(tok(j), "&") ||
           is_punct(tok(j), "&&") || is_word(tok(j), "const"))
      ++j;
    if (!is_ident(tok(j)) || is_statement_keyword(tok(j).text) ||
        is_decl_qualifier(tok(j).text))
      return;
    const std::string name = tok(j).text;
    const Token& after = tok(j + 1);
    if (is_punct(after, ";") || is_punct(after, "=") || is_punct(after, "{") ||
        is_punct(after, ",") || is_punct(after, ")"))
      out_.var_types[name].insert(head);
  }

  void scan_function(std::size_t i) {
    if (!is_ident(tok(i)) || !is_punct(tok(i + 1), "(")) return;
    if (is_control_keyword(tok(i).text) || is_statement_keyword(tok(i).text))
      return;
    const std::size_t params_end = skip_balanced(toks_, i + 1);
    if (params_end >= toks_.size()) return;
    FunctionDef def;
    def.name = tok(i).text;
    def.header_begin = i;
    def.line = tok(i).line;
    if (is_punct(tok(i - 1), "::") && is_ident(tok(i - 2)) && i >= 2)
      def.qualifier = tok(i - 2).text;
    std::size_t j = params_end;
    // Specifier run between the parameter list and the body.
    while (j < toks_.size()) {
      const Token& t = tok(j);
      if (is_word(t, "const")) {
        def.is_const = true;
        ++j;
        continue;
      }
      if (is_word(t, "override") || is_word(t, "final") ||
          is_word(t, "noexcept") || is_punct(t, "&") || is_punct(t, "&&")) {
        ++j;
        if (is_word(t, "noexcept") && is_punct(tok(j), "(")) {
          j = skip_balanced(toks_, j);
        }
        continue;
      }
      if (is_punct(t, "->")) {  // trailing return type
        ++j;
        while (j < toks_.size() && !is_punct(tok(j), "{") && !is_punct(tok(j), ";"))
          ++j;
        continue;
      }
      if (is_punct(t, ":")) {  // constructor initializer list
        ++j;
        while (j < toks_.size()) {
          while (j < toks_.size() && (is_ident(tok(j)) || is_punct(tok(j), "::")))
            ++j;
          if (is_punct(tok(j), "<")) {
            const std::size_t past = skip_template_args(toks_, j);
            if (past == kNpos) return;
            j = past;
          }
          if (!is_punct(tok(j), "(") && !is_punct(tok(j), "{")) return;
          j = skip_balanced(toks_, j);
          if (!is_punct(tok(j), ",")) break;
          ++j;
        }
        continue;
      }
      break;
    }
    if (!is_punct(tok(j), "{")) return;  // declaration, not a definition
    def.body_begin = j;
    def.body_end = skip_balanced(toks_, j);
    out_.functions.push_back(std::move(def));
  }

  // A lambda or block expression can occasionally be mis-read as a nested
  // function definition; the enclosing function's range already covers those
  // tokens, so keep only the outermost definitions.
  void drop_nested_functions() {
    auto& fns = out_.functions;
    std::vector<FunctionDef> kept;
    for (const FunctionDef& f : fns) {
      bool nested = false;
      for (const FunctionDef& g : fns) {
        if (g.body_begin < f.header_begin && f.body_end <= g.body_end &&
            (g.body_begin != f.body_begin || g.body_end != f.body_end)) {
          nested = true;
          break;
        }
      }
      if (!nested) kept.push_back(f);
    }
    fns = std::move(kept);
  }

  const LexedFile& file_;
  const std::vector<Token>& toks_;
  TuSymbols out_;
};

}  // namespace

std::size_t skip_balanced(const std::vector<Token>& tokens, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
    if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
    if (depth == 0) return i + 1;
  }
  return tokens.size();
}

TuSymbols scan(const LexedFile& file) { return Scanner(file).run(); }

}  // namespace ulc::lint
