#include "lint/lexer.h"

#include <algorithm>
#include <cctype>

namespace ulc::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

// Multi-character punctuation, longest first within each leading char.
const char* const kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "<<", ">>", "<=",
    ">=",  "==",  "!=",  "&&",  "||", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=",  "^=",  ".*",
};

class Lexer {
 public:
  Lexer(std::string path, std::string text) {
    out_.path = std::move(path);
    out_.text = std::move(text);
  }

  LexedFile run() {
    split_lines();
    const std::string& s = out_.text;
    while (i_ < s.size()) {
      const char c = s[i_];
      if (c == '\n') {
        advance_line();
        ++i_;
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++i_;
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        lex_line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        lex_block_comment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        lex_directive();
        continue;
      }
      at_line_start_ = false;
      if (raw_string_start()) {
        lex_raw_string();
        continue;
      }
      if (c == '"' || (string_prefix() && s[after_prefix()] == '"')) {
        lex_quoted(TokKind::kString, '"');
        continue;
      }
      if (c == '\'' || (string_prefix() && s[after_prefix()] == '\'')) {
        lex_quoted(TokKind::kChar, '\'');
        continue;
      }
      if (ident_start(c)) {
        lex_ident();
        continue;
      }
      if (digit(c) || (c == '.' && digit(peek(1)))) {
        lex_number();
        continue;
      }
      lex_punct();
    }
    return std::move(out_);
  }

 private:
  char peek(std::size_t ahead) const {
    return i_ + ahead < out_.text.size() ? out_.text[i_ + ahead] : '\0';
  }

  void split_lines() {
    std::string cur;
    for (char c : out_.text) {
      if (c == '\n') {
        out_.lines.push_back(cur);
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    if (!cur.empty()) out_.lines.push_back(cur);
  }

  void advance_line() {
    ++line_;
    line_begin_ = i_ + 1;
  }

  std::size_t col() const { return i_ - line_begin_ + 1; }

  void push(TokKind kind, std::size_t begin, std::size_t begin_line,
            std::size_t begin_col) {
    Token t;
    t.kind = kind;
    t.text = out_.text.substr(begin, i_ - begin);
    t.line = begin_line;
    t.col = begin_col;
    out_.tokens.push_back(std::move(t));
  }

  void lex_line_comment() {
    const std::size_t begin = i_, bl = line_, bc = col();
    while (i_ < out_.text.size() && out_.text[i_] != '\n') ++i_;
    Token t{TokKind::kPunct, out_.text.substr(begin, i_ - begin), bl, bc};
    out_.comments.push_back(std::move(t));
  }

  void lex_block_comment() {
    const std::size_t begin = i_, bl = line_, bc = col();
    i_ += 2;
    while (i_ < out_.text.size()) {
      if (out_.text[i_] == '\n') advance_line();
      if (out_.text[i_] == '*' && peek(1) == '/') {
        i_ += 2;
        break;
      }
      ++i_;
    }
    Token t{TokKind::kPunct, out_.text.substr(begin, i_ - begin), bl, bc};
    out_.comments.push_back(std::move(t));
  }

  // Captures a whole `#` directive as one token: through end of line, with
  // backslash-newline continuations joined. A `//` tail is dropped from the
  // token text (it is still recorded as a comment).
  void lex_directive() {
    const std::size_t bl = line_, bc = col();
    std::string body;
    while (i_ < out_.text.size()) {
      const char c = out_.text[i_];
      if (c == '\\' && peek(1) == '\n') {
        body.push_back(' ');
        ++i_;        // the backslash
        advance_line();
        ++i_;        // the newline
        continue;
      }
      if (c == '\n') break;  // newline handled by the main loop
      if (c == '/' && peek(1) == '/') {
        lex_line_comment();
        break;
      }
      if (c == '/' && peek(1) == '*') {
        lex_block_comment();
        body.push_back(' ');
        continue;
      }
      body.push_back(c);
      ++i_;
    }
    while (!body.empty() && (body.back() == ' ' || body.back() == '\t' ||
                             body.back() == '\r'))
      body.pop_back();
    out_.tokens.push_back(Token{TokKind::kPreprocessor, std::move(body), bl, bc});
    at_line_start_ = true;
  }

  // Length of an encoding prefix (u8, u, U, L) at i_, or 0.
  std::size_t prefix_len() const {
    const char c = out_.text[i_];
    if (c == 'u' && peek(1) == '8') return 2;
    if (c == 'u' || c == 'U' || c == 'L') return 1;
    return 0;
  }
  bool string_prefix() const {
    const std::size_t n = prefix_len();
    return n > 0 && !prev_ident_char();
  }
  std::size_t after_prefix() const { return i_ + prefix_len(); }

  // True when the character before i_ would glue onto an identifier — then
  // an `R"` here is the tail of a longer name, not a raw-string prefix.
  bool prev_ident_char() const {
    return i_ > 0 && ident_char(out_.text[i_ - 1]);
  }

  // Raw strings: R"delim( ... )delim", optionally with an encoding prefix.
  // The critical near-miss this must NOT match is a quote-R sequence inside
  // an ordinary literal such as "LLD-R" — the leading `"` is consumed by
  // lex_quoted first, so the R there is literal content, and an `R` glued to
  // a preceding identifier (e.g. FOO_R"x") is not a prefix either.
  bool raw_string_start() const {
    if (prev_ident_char()) return false;
    std::size_t j = i_ + prefix_len();
    return j + 1 < out_.text.size() && out_.text[j] == 'R' &&
           out_.text[j + 1] == '"';
  }

  void lex_raw_string() {
    const std::size_t begin = i_, bl = line_, bc = col();
    i_ = i_ + prefix_len() + 2;  // past R"
    std::string delim;
    while (i_ < out_.text.size() && out_.text[i_] != '(') {
      delim.push_back(out_.text[i_]);
      ++i_;
    }
    if (i_ < out_.text.size()) ++i_;  // past (
    const std::string close = ")" + delim + "\"";
    const std::size_t end = out_.text.find(close, i_);
    const std::size_t stop =
        end == std::string::npos ? out_.text.size() : end + close.size();
    while (i_ < stop) {
      if (out_.text[i_] == '\n') advance_line();
      ++i_;
    }
    push(TokKind::kRawString, begin, bl, bc);
  }

  void lex_quoted(TokKind kind, char quote) {
    const std::size_t begin = i_, bl = line_, bc = col();
    i_ = begin + prefix_len() + 1;  // past the opening quote
    while (i_ < out_.text.size()) {
      const char c = out_.text[i_];
      if (c == '\\' && i_ + 1 < out_.text.size()) {
        if (out_.text[i_ + 1] == '\n') advance_line();
        i_ += 2;
        continue;
      }
      if (c == '\n') break;  // unterminated: stop at end of line
      ++i_;
      if (c == quote) break;
    }
    push(kind, begin, bl, bc);
  }

  void lex_ident() {
    const std::size_t begin = i_, bl = line_, bc = col();
    while (i_ < out_.text.size() && ident_char(out_.text[i_])) ++i_;
    push(TokKind::kIdent, begin, bl, bc);
  }

  // pp-number: digits, idents chars, dots, and sign chars after e/E/p/P.
  // Digit separators (') are consumed so 1'000'000 is one token.
  void lex_number() {
    const std::size_t begin = i_, bl = line_, bc = col();
    ++i_;
    while (i_ < out_.text.size()) {
      const char c = out_.text[i_];
      if (ident_char(c) || c == '.') {
        ++i_;
        continue;
      }
      if (c == '\'' && ident_char(peek(1))) {
        i_ += 2;
        continue;
      }
      if ((c == '+' || c == '-') && i_ > begin) {
        const char prev = out_.text[i_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++i_;
          continue;
        }
      }
      break;
    }
    push(TokKind::kNumber, begin, bl, bc);
  }

  void lex_punct() {
    const std::size_t begin = i_, bl = line_, bc = col();
    for (const char* p : kPuncts) {
      const std::size_t n = std::char_traits<char>::length(p);
      if (out_.text.compare(i_, n, p) == 0) {
        i_ += n;
        push(TokKind::kPunct, begin, bl, bc);
        return;
      }
    }
    ++i_;
    push(TokKind::kPunct, begin, bl, bc);
  }

  LexedFile out_;
  std::size_t i_ = 0;
  std::size_t line_ = 1;
  std::size_t line_begin_ = 0;
  bool at_line_start_ = true;
};

}  // namespace

const std::string& LexedFile::line_text(std::size_t line) const {
  static const std::string kEmpty;
  if (line == 0 || line > lines.size()) return kEmpty;
  return lines[line - 1];
}

LexedFile lex(std::string path, std::string text) {
  return Lexer(std::move(path), std::move(text)).run();
}

bool is_float_literal(const Token& tok) {
  if (tok.kind != TokKind::kNumber) return false;
  const std::string& t = tok.text;
  if (t.size() > 1 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X')) return false;
  if (t.find('.') != std::string::npos) return true;
  return t.find('e') != std::string::npos || t.find('E') != std::string::npos;
}

}  // namespace ulc::lint
