// Token-level C++ lexer for ulc_lint.
//
// The old linter ran regexes over a "stripped" copy of each file produced by
// a five-state character machine. That machine could not lex raw string
// literals — `R"(...)"` was treated as an ordinary string, so any `)"` inside
// the raw body re-entered code state and leaked literal content into rule
// matching — and it threw the token structure away, so rules could not ask
// "what declared this identifier" or "which call does this paren close".
// This lexer produces a real token stream (identifiers, numbers, string /
// char literals including raw strings, punctuation, preprocessor directives,
// comments) with line/column positions, which the symbol tracker
// (symbols.h) and the rule engine (rules.h) consume.
//
// Scope: this is a lexer for the dialect of C++ this repository is written
// in, not a standards-complete front end. Trigraphs, digraphs and splices
// inside tokens are not handled; preprocessor directives are captured as
// single tokens (with backslash continuations joined) rather than expanded.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ulc::lint {

enum class TokKind {
  kIdent,         // identifiers and keywords
  kNumber,        // pp-number: integer / float literal
  kString,        // "..."; text is the full literal including quotes
  kRawString,     // R"delim(...)delim" (and u8R/uR/UR/LR variants)
  kChar,          // '...'
  kPunct,         // operators and punctuation, longest-match
  kPreprocessor,  // a full # directive line (continuations joined)
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;      // source spelling (directives: logical line)
  std::size_t line = 1;  // 1-based
  std::size_t col = 1;   // 1-based, in the physical source line
};

struct LexedFile {
  std::string path;
  std::string text;                 // original bytes
  std::vector<std::string> lines;   // original lines, newline-free
  std::vector<Token> tokens;        // code tokens, comments excluded
  std::vector<Token> comments;      // // and /* */ bodies, in order

  // Original text of `line` (1-based), or an empty string out of range.
  const std::string& line_text(std::size_t line) const;
};

// Lexes `text` into tokens. Never fails: unterminated literals consume the
// rest of the file, unknown bytes become single-char kPunct tokens.
LexedFile lex(std::string path, std::string text);

// True when a number token spells a floating-point literal (contains a '.'
// or a decimal exponent; hex literals never qualify).
bool is_float_literal(const Token& tok);

}  // namespace ulc::lint
