// Lint engine: file loading, suppression, baseline filtering and output.
//
// The engine owns everything around the rules: it lexes and scans each
// input, builds the cross-file context (enum table, sibling TUs, layering
// DAG), runs the rules, then filters findings through `// ulc-lint:
// allow(rule)` markers and the checked-in baseline before rendering them as
// text or JSON. Exit-code policy: errors gate, warnings inform.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "lint/rules.h"

namespace ulc::lint {

struct Options {
  // Paths whose display (and baseline keys) should be relative to this root.
  std::string root;
  // layers.txt path; empty disables the include-layering rule.
  std::string layers_file;
  // Baseline of known findings to suppress; empty means no baseline.
  std::string baseline_file;
  // Rules demoted from error to warning (reported, never gate the exit).
  std::set<std::string> warn_rules;
};

struct Report {
  std::vector<Finding> findings;        // post-filter, in file/line order
  std::size_t error_count = 0;
  std::size_t warning_count = 0;
  std::size_t suppressed_count = 0;     // silenced by allow markers
  std::size_t baselined_count = 0;      // silenced by the baseline
  // Baseline entries that no longer match any finding — stale debt that
  // should be deleted from the file.
  std::vector<std::string> unused_baseline;
  // I/O or config problems (unreadable file, malformed layers.txt line).
  std::vector<std::string> errors;

  bool ok() const { return error_count == 0 && errors.empty(); }
};

class Engine {
 public:
  explicit Engine(Options opts);

  // Adds one file (lexes + scans immediately). Non-C++ extensions are
  // ignored so directories can be added wholesale.
  void add_file(const std::string& path);
  // Recursively adds every .h/.cpp/.cc/.hpp under `dir`, sorted for
  // deterministic ordering.
  void add_directory(const std::string& dir);
  // Adds an in-memory file (unit tests).
  void add_source(const std::string& path, std::string text);

  Report run();

  // Renders `report` as human-readable text (one line per finding plus a
  // summary) or as a JSON document for CI artifacts.
  static std::string render_text(const Report& report);
  static std::string render_json(const Report& report);

  // Path shown to users / used in baseline keys: relative to opts.root when
  // it lies underneath, unchanged otherwise.
  std::string display_path(const std::string& path) const;

 private:
  Options opts_;
  std::vector<std::unique_ptr<FileUnit>> units_;
  std::vector<std::string> io_errors_;
};

// Parses a layers file: `module: dep dep ...` lines, `#` comments, `*`
// meaning unconstrained. Malformed lines are reported via `errors`.
std::map<std::string, std::set<std::string>> parse_layers(
    const std::string& text, std::vector<std::string>& errors);

// Parses a baseline file: `path:line:rule` lines, `#` comments.
std::set<std::string> parse_baseline(const std::string& text);

// True when `line_text` (or the previous line, for whole-line markers)
// carries `// ulc-lint: allow(rule[, rule...])` naming `rule`.
bool allow_marker_covers(const std::string& line_text, const std::string& rule);

}  // namespace ulc::lint
