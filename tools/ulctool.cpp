// ulctool — command-line front end to the library.
//
//   ulctool presets
//       List the built-in paper workload presets.
//   ulctool gen --preset=<name> [--scale=<f>] [--seed=<n>] --out=<file> [--binary]
//       Synthesize a preset trace and write it to a file.
//   ulctool stats (--preset=<name> [--scale] [--seed] | --trace=<file>)
//       Reference counts, footprint, client/sharing structure of a trace.
//   ulctool analyze (--preset=... | --trace=<file>)
//       Section-2 locality-measure analysis (ND/R/NLD/LLD-R).
//   ulctool sim --scheme=<ulc|unilru|indlru|mq|reload> --caps=<a,b,...>
//               (--preset=... | --trace=<file>) [--clients=<n>] [--warmup=<f>]
//               [--links=<ms,ms,...>] [--json=<path>]
//       Run a trace through a hierarchy scheme and report hit rates,
//       demotion rates and the average access time breakdown.
//   ulctool compare --caps=<a,b,...> (--preset=... | --trace=<file>)
//                   [--clients=<n>] [--warmup=<f>] [--threads=<n>]
//                   [--json=<path>]
//       Run every applicable scheme on the trace and print one ranked
//       table (total hits, demotion rate, T_ave).
//   ulctool trace --out=<file.json> (--preset=... | --trace=<file>)
//                 [--scheme=<ulc|unilru|indlru>] [--caps=<a,b,...>]
//                 [--warmup=<f>] [--max-events=<n>]
//       Replay the trace through the message-level protocol simulator with
//       the observability recorder attached and write the event timeline
//       (reference spans on the client track, Demote transfers on the level
//       tracks) as Chrome trace_event JSON — load it in chrome://tracing or
//       https://ui.perfetto.dev. Timestamps are simulated milliseconds.
//   ulctool serve [--workload=<zipf|streaming>] [--requests=<n>] [--threads=<n>]
//                 [--shards=<n>] [--server-shards=<n>] [--write-frac=<f>]
//                 [--rate=<r>] [--memory-blocks=<n>] [--near-blocks=<n>]
//                 [--block-size=<n>] [--seed=<n>] [--json=<path>]
//       Drive the concurrent serving runtime (sharded BlockCache + gLRU
//       directory over MPSC queues) with the multi-threaded load generator
//       and report requests/sec, latency percentiles and cache/directory
//       counters. --rate=0 is closed-loop saturation; --rate=<r> paces each
//       thread open-loop at r requests/sec. --server-shards=0 disables the
//       directory.
//
// sim and compare run their cells on the shared experiment engine
// (src/exp/experiment.h); --json writes the engine's structured result
// array. Trace files use the text format of trace_io.h ("<client> <block>"
// per line) or the ULCTRC binary format (by extension ".bin"/"--binary").
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exp/experiment.h"
#include "hierarchy/hierarchy.h"
#include "hierarchy/runner.h"
#include "measures/analyzers.h"
#include "obs/trace_recorder.h"
#include "proto/protocol_sim.h"
#include "runtime/loadgen.h"
#include "trace/trace_io.h"
#include "util/json.h"
#include "util/table.h"
#include "workloads/paper_presets.h"

namespace {

using namespace ulc;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "ulctool: %s\n\n", msg);
  std::fprintf(stderr,
               "usage:\n"
               "  ulctool presets\n"
               "  ulctool gen --preset=<name> [--scale=<f>] [--seed=<n>] "
               "--out=<file> [--binary]\n"
               "  ulctool stats   (--preset=<name> | --trace=<file>) [--scale] "
               "[--seed]\n"
               "  ulctool analyze (--preset=<name> | --trace=<file>) [--scale] "
               "[--seed]\n"
               "  ulctool sim --scheme=<ulc|unilru|indlru|mq|reload> "
               "--caps=<a,b,...>\n"
               "              (--preset=<name> | --trace=<file>) "
               "[--clients=<n>] [--warmup=<f>] [--links=<ms,...>] "
               "[--json=<path>]\n"
               "  ulctool compare --caps=<a,b,...> "
               "(--preset=<name> | --trace=<file>)\n"
               "              [--clients=<n>] [--warmup=<f>] [--threads=<n>] "
               "[--json=<path>]\n"
               "  ulctool trace --out=<file.json> "
               "(--preset=<name> | --trace=<file>)\n"
               "              [--scheme=<ulc|unilru|indlru>] "
               "[--caps=<a,b,...>] [--warmup=<f>] [--max-events=<n>]\n"
               "  ulctool serve [--workload=<zipf|streaming>] "
               "[--requests=<n>] [--threads=<n>]\n"
               "              [--shards=<n>] [--server-shards=<n>] "
               "[--write-frac=<f>] [--rate=<r>]\n"
               "              [--memory-blocks=<n>] [--near-blocks=<n>] "
               "[--block-size=<n>] [--seed=<n>] [--json=<path>]\n");
  std::exit(2);
}

struct Args {
  std::map<std::string, std::string> kv;
  bool has(const std::string& k) const { return kv.count(k) != 0; }
  std::string get(const std::string& k, const std::string& dflt = "") const {
    auto it = kv.find(k);
    return it == kv.end() ? dflt : it->second;
  }
  double get_double(const std::string& k, double dflt) const {
    auto it = kv.find(k);
    if (it == kv.end()) return dflt;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (it->second.empty() || end == nullptr || *end != '\0') {
      std::fprintf(stderr, "ulctool: invalid --%s value: '%s'\n", k.c_str(),
                   it->second.c_str());
      std::exit(2);
    }
    return v;
  }
  std::uint64_t get_u64(const std::string& k, std::uint64_t dflt) const {
    auto it = kv.find(k);
    if (it == kv.end()) return dflt;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
    if (it->second.empty() || it->second[0] == '-' || end == nullptr ||
        *end != '\0') {
      std::fprintf(stderr, "ulctool: invalid --%s value: '%s'\n", k.c_str(),
                   it->second.c_str());
      std::exit(2);
    }
    return static_cast<std::uint64_t>(v);
  }
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--", 2) != 0) usage(("unexpected argument: " + std::string(a)).c_str());
    const char* eq = std::strchr(a, '=');
    if (eq) {
      args.kv[std::string(a + 2, eq)] = std::string(eq + 1);
    } else {
      args.kv[std::string(a + 2)] = "1";
    }
  }
  return args;
}

std::vector<std::size_t> parse_sizes(const std::string& s) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find(',', pos);
    if (next == std::string::npos) next = s.size();
    out.push_back(static_cast<std::size_t>(
        std::strtoull(s.substr(pos, next - pos).c_str(), nullptr, 10)));
    pos = next + 1;
  }
  return out;
}

std::vector<double> parse_doubles(const std::string& s) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find(',', pos);
    if (next == std::string::npos) next = s.size();
    out.push_back(std::atof(s.substr(pos, next - pos).c_str()));
    pos = next + 1;
  }
  return out;
}

Trace load_input(const Args& args) {
  if (args.has("preset")) {
    return make_preset(args.get("preset"), args.get_double("scale", 0.1),
                       args.get_u64("seed", 1));
  }
  if (args.has("trace")) {
    const std::string path = args.get("trace");
    std::string error;
    auto loaded = path.size() > 4 && path.substr(path.size() - 4) == ".bin"
                      ? load_trace_binary(path, &error)
                      : load_trace_text(path, &error);
    if (!loaded) {
      std::fprintf(stderr, "ulctool: %s\n", error.c_str());
      std::exit(1);
    }
    return std::move(*loaded);
  }
  usage("need --preset or --trace");
}

int cmd_presets() {
  for (const std::string& name : preset_names()) std::printf("%s\n", name.c_str());
  return 0;
}

int cmd_gen(const Args& args) {
  if (!args.has("out")) usage("gen needs --out=<file>");
  const Trace t = load_input(args);
  std::string error;
  const bool ok = args.has("binary")
                      ? save_trace_binary(t, args.get("out"), &error)
                      : save_trace_text(t, args.get("out"), &error);
  if (!ok) {
    std::fprintf(stderr, "ulctool: %s\n", error.c_str());
    return 1;
  }
  std::printf("wrote %zu references to %s\n", t.size(), args.get("out").c_str());
  return 0;
}

int cmd_stats(const Args& args) {
  const Trace t = load_input(args);
  const TraceStats s = compute_stats(t);
  std::printf("trace:          %s\n", t.name().c_str());
  std::printf("references:     %zu\n", s.references);
  std::printf("distinct blocks: %zu (%.1f MB at 8KB/block)\n", s.unique_blocks,
              static_cast<double>(s.unique_blocks) * 8.0 / 1024.0);
  std::printf("clients:        %zu\n", s.clients);
  std::printf("shared blocks:  %zu\n", s.shared_blocks);
  std::printf("max block id:   %llu\n",
              static_cast<unsigned long long>(s.max_block));
  return 0;
}

int cmd_analyze(const Args& args) {
  const Trace t = load_input(args);
  std::printf("analyzing %zu references...\n\n", t.size());
  TablePrinter table({"measure", "cum seg1-2", "cum seg1-5", "movement/ref",
                      "on-line"});
  for (const MeasureReport& rep : analyze_all_measures(t)) {
    double movement = 0.0;
    for (double m : rep.movement_ratio) movement += m;
    const bool online =
        rep.measure == Measure::kR || rep.measure == Measure::kLLD_R;
    table.add_row({measure_name(rep.measure),
                   fmt_percent(rep.cumulative_ratio[1], 1),
                   fmt_percent(rep.cumulative_ratio[4], 1),
                   fmt_double(movement, 3), online ? "yes" : "no"});
  }
  table.print();
  return 0;
}

// Writes the engine's structured result array when --json=<path> was given.
void maybe_write_json(const Args& args, const std::string& command,
                      const std::vector<exp::CellResult>& cells) {
  if (!args.has("json")) return;
  Json doc = Json::object();
  doc.set("benchmark", "ulctool " + command);
  doc.set("warmup", args.get_double("warmup", 0.1));
  doc.set("results", exp::results_to_json(cells));
  std::string error;
  if (!save_json(doc, args.get("json"), 2, &error)) {
    std::fprintf(stderr, "ulctool: %s\n", error.c_str());
    std::exit(1);
  }
  std::fprintf(stderr, "wrote %s\n", args.get("json").c_str());
}

CostModel model_for(const Args& args, const std::vector<std::size_t>& caps) {
  CostModel model;
  if (args.has("links")) {
    model.link_ms = parse_doubles(args.get("links"));
    if (model.link_ms.size() != caps.size())
      usage("--links needs one entry per level (last one is the disk link)");
  } else if (caps.size() == 3) {
    model = CostModel::paper_three_level();
  } else if (caps.size() == 2) {
    model = CostModel::paper_two_level();
  } else {
    for (std::size_t i = 0; i + 1 < caps.size(); ++i) model.link_ms.push_back(1.0);
    model.link_ms.push_back(10.0);
  }
  return model;
}

int cmd_sim(const Args& args) {
  auto t = std::make_shared<const Trace>(load_input(args));
  const std::vector<std::size_t> caps = parse_sizes(args.get("caps"));
  if (caps.empty()) usage("sim needs --caps=<a,b,...>");
  const std::size_t clients = args.get_u64("clients", 1);
  const std::string kind = args.get("scheme", "ulc");

  exp::SchemeFactory factory;
  if (kind == "ulc") {
    factory = [caps, clients](const Trace&) {
      return clients > 1 ? make_ulc_multi(caps[0],
                                          caps.size() > 1 ? caps[1] : 0, clients)
                         : make_ulc(caps);
    };
  } else if (kind == "unilru") {
    factory = [caps, clients](const Trace&) {
      return clients > 1
                 ? make_uni_lru_multi(caps[0], caps.size() > 1 ? caps[1] : 0,
                                      clients, UniLruInsertion::kMru)
                 : make_uni_lru(caps);
    };
  } else if (kind == "indlru") {
    factory = [caps, clients](const Trace&) { return make_ind_lru(caps, clients); };
  } else if (kind == "mq") {
    if (caps.size() != 2) usage("mq needs exactly two levels");
    factory = [caps, clients](const Trace&) {
      return make_mq_hierarchy(caps[0], caps[1], clients);
    };
  } else if (kind == "reload") {
    factory = [caps](const Trace&) { return make_reload_uni_lru(caps); };
  } else {
    usage("unknown --scheme");
  }

  exp::ExperimentSpec spec;
  spec.factory = std::move(factory);
  spec.trace_override = t;
  spec.model = model_for(args, caps);
  spec.warmup_fraction = args.get_double("warmup", 0.1);

  const std::vector<exp::CellResult> cells = exp::run_matrix({std::move(spec)});
  const RunResult& r = cells[0].run;
  std::printf("scheme: %s on %s (%zu references, %.0f%% warm-up)\n\n",
              r.scheme.c_str(), r.trace.c_str(), t->size(),
              100 * args.get_double("warmup", 0.1));
  for (std::size_t l = 0; l < caps.size(); ++l)
    std::printf("L%zu hits:      %6.2f%%  (capacity %zu blocks)\n", l + 1,
                100 * r.stats.hit_ratio(l), caps[l]);
  std::printf("misses:       %6.2f%%\n", 100 * r.stats.miss_ratio());
  for (std::size_t b = 0; b + 1 < caps.size(); ++b)
    std::printf("demotions %zu->%zu: %.2f per 100 refs\n", b + 1, b + 2,
                100 * r.stats.demotion_ratio(b));
  std::printf("\nT_ave = %.3f ms (hit %.3f + miss %.3f + demotion %.3f)\n",
              r.t_ave_ms, r.time.hit_component, r.time.miss_component,
              r.time.demotion_component);
  std::printf("wall %.3f s (%.0f refs/s)\n", cells[0].wall_seconds,
              cells[0].refs_per_sec);
  maybe_write_json(args, "sim", cells);
  return 0;
}

int cmd_compare(const Args& args) {
  auto t = std::make_shared<const Trace>(load_input(args));
  const std::vector<std::size_t> caps = parse_sizes(args.get("caps"));
  if (caps.empty()) usage("compare needs --caps=<a,b,...>");
  const std::size_t clients = args.get_u64("clients", 1);
  const double warmup = args.get_double("warmup", 0.1);
  const CostModel model = model_for(args, caps);

  std::vector<exp::SchemeFactory> factories;
  factories.push_back(
      [caps, clients](const Trace&) { return make_ind_lru(caps, clients); });
  if (clients == 1) {
    factories.push_back([caps](const Trace&) { return make_uni_lru(caps); });
    factories.push_back(
        [caps](const Trace&) { return make_reload_uni_lru(caps); });
    factories.push_back([caps](const Trace&) { return make_ulc(caps); });
    if (caps.size() == 2)
      factories.push_back([caps](const Trace&) {
        return make_policy_hierarchy(caps[0],
                                     make_lirs(LirsConfig{caps[1], 0.02}), 1);
      });
  } else if (caps.size() == 2) {
    for (auto ins : {UniLruInsertion::kMru, UniLruInsertion::kMiddle,
                     UniLruInsertion::kLru})
      factories.push_back([caps, clients, ins](const Trace&) {
        return make_uni_lru_multi(caps[0], caps[1], clients, ins);
      });
    factories.push_back([caps, clients](const Trace&) {
      return make_ulc_multi(caps[0], caps[1], clients);
    });
  } else if (caps.size() == 3) {
    factories.push_back([caps, clients](const Trace&) {
      return make_ulc_multi_three(caps[0], caps[1], caps[2], clients);
    });
  }
  if (caps.size() == 2)
    factories.push_back([caps, clients](const Trace&) {
      return make_mq_hierarchy(caps[0], caps[1], clients);
    });

  std::vector<exp::ExperimentSpec> specs;
  for (exp::SchemeFactory& factory : factories) {
    exp::ExperimentSpec spec;
    spec.factory = std::move(factory);
    spec.trace_override = t;
    spec.model = model;
    spec.warmup_fraction = warmup;
    specs.push_back(std::move(spec));
  }

  exp::MatrixOptions mopt;
  mopt.threads = static_cast<std::size_t>(args.get_u64("threads", 1));
  std::fprintf(stderr, "running %zu schemes on %zu thread(s)...\n", specs.size(),
               mopt.threads);
  std::vector<exp::CellResult> cells = exp::run_matrix(specs, mopt);
  maybe_write_json(args, "compare", cells);  // engine (spec) order, pre-sort

  std::sort(cells.begin(), cells.end(),
            [](const exp::CellResult& a, const exp::CellResult& b) {
              return a.run.t_ave_ms < b.run.t_ave_ms;
            });

  TablePrinter table({"scheme", "total hit", "L1 hit", "demote/ref",
                      "writebacks/ref", "T_ave (ms)"});
  for (const exp::CellResult& cell : cells) {
    const RunResult& r = cell.run;
    const double n = static_cast<double>(r.stats.references);
    table.add_row(
        {r.scheme, fmt_percent(r.stats.total_hit_ratio(), 1),
         fmt_percent(r.stats.hit_ratio(0), 1),
         fmt_double(r.stats.demotion_ratio(0), 3),
         fmt_double(n > 0 ? static_cast<double>(r.stats.writebacks) / n : 0.0, 3),
         fmt_double(r.t_ave_ms, 3)});
  }
  table.print();
  return 0;
}

int cmd_trace(const Args& args) {
  if (!args.has("out")) usage("trace needs --out=<file.json>");
  if (!obs::enabled()) {
    std::fprintf(stderr,
                 "ulctool: this binary was built with ULC_ENABLE_OBS=0; "
                 "the trace recorder is compiled out\n");
    return 1;
  }
  const Trace t = load_input(args);
  const std::vector<std::size_t> caps =
      parse_sizes(args.get("caps", "400,400,400"));
  if (caps.empty()) usage("trace needs --caps=<a,b,...>");

  const std::string kind = args.get("scheme", "ulc");
  ProtocolScheme scheme;
  if (kind == "ulc") {
    scheme = ProtocolScheme::kUlc;
  } else if (kind == "unilru") {
    scheme = ProtocolScheme::kUniLru;
  } else if (kind == "indlru") {
    scheme = ProtocolScheme::kIndLru;
  } else {
    usage("trace needs --scheme=<ulc|unilru|indlru>");
  }

  ProtocolConfig cfg;
  if (caps.size() == 3) {
    cfg = ProtocolConfig::paper_three_level(caps);
  } else {
    cfg.caps = caps;
    cfg.links.assign(caps.size() - 1, LinkConfig{});
  }
  cfg.warmup_fraction = args.get_double("warmup", 0.1);

  obs::TraceRecorder recorder(args.get_u64("max-events", 0));
  recorder.name_track(obs::TraceRecorder::kClientTrack, "client");
  for (std::size_t l = 0; l < caps.size(); ++l)
    recorder.name_track(obs::TraceRecorder::level_track(l),
                        "level L" + std::to_string(l));

  const ProtocolResult r = run_protocol_sim(scheme, cfg, t, &recorder);

  std::string error;
  if (!save_json(recorder.to_chrome_json(), args.get("out"), 1, &error)) {
    std::fprintf(stderr, "ulctool: %s\n", error.c_str());
    return 1;
  }

  std::printf("scheme %s on %s: %zu references -> %zu events",
              protocol_scheme_name(scheme), t.name().c_str(), t.size(),
              recorder.size());
  if (recorder.dropped() > 0)
    std::printf(" (%llu dropped at --max-events)",
                static_cast<unsigned long long>(recorder.dropped()));
  std::printf("\n");
  const obs::LatencyHistogram& h = r.response_hist;
  if (!h.empty())
    std::printf("measured response ms: mean %.3f  p50 %.3f  p95 %.3f  "
                "p99 %.3f  max %.3f\n",
                h.mean(), h.percentile(50.0), h.percentile(95.0),
                h.percentile(99.0), h.max());
  std::printf("wrote %s — open in chrome://tracing or ui.perfetto.dev\n",
              args.get("out").c_str());
  return 0;
}

int cmd_serve(const Args& args) {
  LoadGenConfig cfg;
  cfg.workload = args.get("workload", "zipf");
  if (cfg.workload != "zipf" && cfg.workload != "streaming")
    usage("serve needs --workload=<zipf|streaming>");
  cfg.requests = args.get_u64("requests", 100000);
  cfg.threads = static_cast<std::size_t>(args.get_u64("threads", 2));
  cfg.write_frac = args.get_double("write-frac", 0.1);
  cfg.rate = args.get_double("rate", 0.0);
  cfg.seed = args.get_u64("seed", 1);
  cfg.serving.cache_shards =
      static_cast<std::size_t>(args.get_u64("shards", 4));
  cfg.serving.per_shard.block_size =
      static_cast<std::size_t>(args.get_u64("block-size", 4096));
  cfg.serving.per_shard.memory_blocks =
      static_cast<std::size_t>(args.get_u64("memory-blocks", 512));
  cfg.serving.near_blocks_per_shard =
      static_cast<std::size_t>(args.get_u64("near-blocks", 2048));
  const std::uint64_t server_shards = args.get_u64("server-shards", 4);
  cfg.serving.enable_directory = server_shards > 0;
  if (server_shards > 0)
    cfg.serving.directory.shards = static_cast<std::size_t>(server_shards);
  if (cfg.requests == 0) usage("serve needs --requests >= 1");
  if (cfg.threads == 0) usage("serve needs --threads >= 1");
  if (cfg.serving.cache_shards == 0) usage("serve needs --shards >= 1");
  if (cfg.write_frac < 0.0 || cfg.write_frac > 1.0)
    usage("serve needs --write-frac in [0, 1]");
  if (cfg.rate < 0.0) usage("serve needs --rate >= 0");

  const LoadGenResult r = run_serving_load(cfg);

  std::printf("served %llu requests (%llu reads, %llu writes) on %zu threads "
              "over %zu cache shards\n",
              static_cast<unsigned long long>(r.requests),
              static_cast<unsigned long long>(r.reads),
              static_cast<unsigned long long>(r.writes), cfg.threads,
              cfg.serving.cache_shards);
  std::printf("throughput: %.0f req/s (%.3f s wall)\n", r.requests_per_sec,
              r.wall_seconds);
  if (!r.latency_ms.empty())
    std::printf("latency ms: mean %.4f  p50 %.4f  p95 %.4f  p99 %.4f  "
                "max %.4f\n",
                r.latency_ms.mean(), r.latency_ms.percentile(50.0),
                r.latency_ms.percentile(95.0), r.latency_ms.percentile(99.0),
                r.latency_ms.max());
  const double refs = static_cast<double>(r.cache.reads + r.cache.writes);
  if (refs > 0)
    std::printf("cache: %.1f%% memory hits, %.1f%% near hits, "
                "%llu demotions, %llu writebacks\n",
                100.0 * static_cast<double>(r.cache.memory_hits) / refs,
                100.0 * static_cast<double>(r.cache.near_hits) / refs,
                static_cast<unsigned long long>(r.cache.demotions),
                static_cast<unsigned long long>(r.cache.writebacks));
  if (!r.directory.shards.empty())
    std::printf("directory: %llu events applied over %zu shards, "
                "%llu blocks tracked\n",
                static_cast<unsigned long long>(r.directory.applied()),
                r.directory.shards.size(),
                static_cast<unsigned long long>(r.directory.resident()));

  if (args.has("json")) {
    std::string error;
    if (!save_json(load_result_to_json(cfg, r), args.get("json"), 2, &error)) {
      std::fprintf(stderr, "ulctool: %s\n", error.c_str());
      return 1;
    }
    std::printf("wrote %s\n", args.get("json").c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  const Args args = parse_args(argc, argv, 2);
  if (cmd == "presets") return cmd_presets();
  if (cmd == "gen") return cmd_gen(args);
  if (cmd == "stats") return cmd_stats(args);
  if (cmd == "analyze") return cmd_analyze(args);
  if (cmd == "sim") return cmd_sim(args);
  if (cmd == "compare") return cmd_compare(args);
  if (cmd == "trace") return cmd_trace(args);
  if (cmd == "serve") return cmd_serve(args);
  usage(("unknown command: " + cmd).c_str());
}
