// Message-level validation of the paper's cost analysis (§4.1) and of the
// [15] contention argument.
//
// The analytic T_ave charges each demotion one fixed link cost. Here the
// same workloads run through the store-and-forward protocol simulator, where
// demotion transfers queue on the same links as the reads. Two questions:
//
//  1. Does the analytic model hold when links are fast? (It should: measured
//     ~= analytic for every scheme.)
//  2. What happens as the client/server link slows down? uniLRU's demotion
//     per reference congests the downlink and its measured time diverges
//     above the analytic value; ULC barely moves.
#include <cstdio>

#include "bench_common.h"
#include "proto/multi_protocol_sim.h"
#include "proto/protocol_sim.h"
#include "util/table.h"
#include "workloads/paper_presets.h"

using namespace ulc;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv, 0.05);

  std::printf("Protocol-level simulation vs the analytic Section 4.1 model\n\n");

  {
    std::printf("(1) paper link speeds, three traces\n");
    TablePrinter table({"trace", "scheme", "measured ms", "analytic ms",
                        "queueing ms", "down-link util"});
    for (const char* name : {"tpcc1", "zipf", "httpd"}) {
      const Trace t = make_preset(name, opt.scale, opt.seed);
      const std::size_t cap = std::string(name) == "tpcc1" ? 6400 : 12800;
      const ProtocolConfig cfg = ProtocolConfig::paper_three_level({cap, cap, cap});
      std::fprintf(stderr, "running %s (%zu refs)...\n", name, t.size());
      for (ProtocolScheme scheme : {ProtocolScheme::kIndLru,
                                    ProtocolScheme::kUniLru, ProtocolScheme::kUlc}) {
        const ProtocolResult r = run_protocol_sim(scheme, cfg, t);
        table.add_row({name, protocol_scheme_name(scheme),
                       fmt_double(r.response_ms.mean(), 3),
                       fmt_double(r.analytic_t_ave_ms, 3),
                       fmt_double(r.response_ms.mean() - r.analytic_t_ave_ms, 3),
                       fmt_percent(r.link_down_utilization[0], 1)});
      }
    }
    bench::emit(table, opt);
  }

  {
    std::printf("(2) slowing the client/server link, tpcc1\n");
    TablePrinter table({"LAN MB/s", "uniLRU measured", "uniLRU analytic",
                        "ULC measured", "ULC analytic"});
    const Trace t = make_preset("tpcc1", opt.scale, opt.seed);
    for (double mbs : {32.0, 16.0, 8.0, 4.0, 2.0}) {
      ProtocolConfig cfg = ProtocolConfig::paper_three_level({6400, 6400, 6400});
      cfg.links[0] = LinkConfig{0.5, mbs};
      const ProtocolResult uni = run_protocol_sim(ProtocolScheme::kUniLru, cfg, t);
      const ProtocolResult ulc = run_protocol_sim(ProtocolScheme::kUlc, cfg, t);
      table.add_row({fmt_double(mbs, 0), fmt_double(uni.response_ms.mean(), 3),
                     fmt_double(uni.analytic_t_ave_ms, 3),
                     fmt_double(ulc.response_ms.mean(), 3),
                     fmt_double(ulc.analytic_t_ave_ms, 3)});
    }
    bench::emit(table, opt);
    std::printf(
        "uniLRU's measured time runs away from its own analytic value as the\n"
        "link saturates with demotions; ULC stays on the model.\n\n");
  }

  {
    std::printf("(3) six closed-loop clients on one shared LAN segment\n");
    std::printf("    (per-client loops beyond the client cache; the [15] "
                "scenario)\n");
    TablePrinter table({"scheme", "measured ms", "analytic ms", "down util",
                        "up util", "refs/s"});
    auto make_sources = [] {
      std::vector<PatternPtr> sources;
      for (std::size_t c = 0; c < 6; ++c)
        sources.push_back(make_loop_source(100000ull * c, 160));
      return sources;
    };
    MultiProtocolConfig mcfg;
    mcfg.refs_per_client = static_cast<std::uint64_t>(100000 * opt.scale);
    if (mcfg.refs_per_client < 4000) mcfg.refs_per_client = 4000;
    mcfg.shared_lan = LinkConfig{0.3, 16.0};
    mcfg.seed = opt.seed;

    std::vector<SchemePtr> schemes;
    schemes.push_back(make_ind_lru({64, 1024}, 6));
    schemes.push_back(make_uni_lru_multi(64, 1024, 6, UniLruInsertion::kMru));
    schemes.push_back(make_mq_hierarchy(64, 1024, 6));
    schemes.push_back(make_ulc_multi(64, 1024, 6));
    for (SchemePtr& scheme : schemes) {
      const MultiProtocolResult r =
          run_multi_protocol_sim(*scheme, make_sources(), mcfg);
      table.add_row({r.scheme, fmt_double(r.response_ms.mean(), 3),
                     fmt_double(r.analytic_t_ave_ms, 3),
                     fmt_percent(r.lan_down_utilization, 1),
                     fmt_percent(r.lan_up_utilization, 1),
                     fmt_double(r.throughput_per_s, 0)});
    }
    bench::emit(table, opt);
    std::printf(
        "With six clients demoting on a shared segment, uniLRU's queueing\n"
        "delay dwarfs its analytic estimate; ULC's stable placement keeps\n"
        "the segment free for reads.\n");
  }
  return 0;
}
