// Message-level validation of the paper's cost analysis (§4.1) and of the
// [15] contention argument.
//
// The analytic T_ave charges each demotion one fixed link cost. Here the
// same workloads run through the store-and-forward protocol simulator, where
// demotion transfers queue on the same links as the reads. Two questions:
//
//  1. Does the analytic model hold when links are fast? (It should: measured
//     ~= analytic for every scheme.)
//  2. What happens as the client/server link slows down? uniLRU's demotion
//     per reference congests the downlink and its measured time diverges
//     above the analytic value; ULC barely moves.
//
// Every (trace, scheme) and (link speed, scheme) simulation is an
// independent cell on the engine pool; traces come from the shared cache.
#include <cstdio>

#include "bench_common.h"
#include "exp/experiment.h"
#include "hierarchy/hierarchy.h"
#include "proto/multi_protocol_sim.h"
#include "proto/protocol_sim.h"
#include "util/table.h"

using namespace ulc;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv, 0.05);
  exp::TraceCache cache;
  Json json_rows = Json::array();

  std::printf("Protocol-level simulation vs the analytic Section 4.1 model\n\n");

  {
    std::printf("(1) paper link speeds, three traces\n");
    const std::vector<const char*> traces = {"tpcc1", "zipf", "httpd"};
    const ProtocolScheme schemes[] = {ProtocolScheme::kIndLru,
                                      ProtocolScheme::kUniLru,
                                      ProtocolScheme::kUlc};
    std::vector<ProtocolResult> results(traces.size() * 3);
    exp::parallel_for(results.size(), opt.threads, [&](std::size_t i) {
      const char* name = traces[i / 3];
      const Trace& t = cache.get({name, opt.scale, opt.seed});
      const std::size_t cap = std::string(name) == "tpcc1" ? 6400 : 12800;
      const ProtocolConfig cfg = ProtocolConfig::paper_three_level({cap, cap, cap});
      results[i] = run_protocol_sim(schemes[i % 3], cfg, t);
    });

    TablePrinter table({"trace", "scheme", "measured ms", "analytic ms",
                        "queueing ms", "down-link util"});
    for (std::size_t i = 0; i < results.size(); ++i) {
      const ProtocolResult& r = results[i];
      table.add_row({traces[i / 3], protocol_scheme_name(schemes[i % 3]),
                     fmt_double(r.response_ms.mean(), 3),
                     fmt_double(r.analytic_t_ave_ms, 3),
                     fmt_double(r.response_ms.mean() - r.analytic_t_ave_ms, 3),
                     fmt_percent(r.link_down_utilization[0], 1)});
      Json jr = Json::object();
      jr.set("section", 1);
      jr.set("trace", traces[i / 3]);
      jr.set("scheme", protocol_scheme_name(schemes[i % 3]));
      jr.set("measured_ms", r.response_ms.mean());
      jr.set("response_ms", r.response_hist.to_json());
      jr.set("counters", counters_to_json(r.stats));
      jr.set("analytic_ms", r.analytic_t_ave_ms);
      jr.set("down_link_utilization", r.link_down_utilization[0]);
      json_rows.push(std::move(jr));
    }
    bench::emit(table, opt);
  }

  {
    std::printf("(2) slowing the client/server link, tpcc1\n");
    const std::vector<double> speeds = {32.0, 16.0, 8.0, 4.0, 2.0};
    const ProtocolScheme schemes[] = {ProtocolScheme::kUniLru,
                                      ProtocolScheme::kUlc};
    std::vector<ProtocolResult> results(speeds.size() * 2);
    exp::parallel_for(results.size(), opt.threads, [&](std::size_t i) {
      const Trace& t = cache.get({"tpcc1", opt.scale, opt.seed});
      ProtocolConfig cfg = ProtocolConfig::paper_three_level({6400, 6400, 6400});
      cfg.links[0] = LinkConfig{0.5, speeds[i / 2]};
      results[i] = run_protocol_sim(schemes[i % 2], cfg, t);
    });

    TablePrinter table({"LAN MB/s", "uniLRU measured", "uniLRU analytic",
                        "ULC measured", "ULC analytic"});
    for (std::size_t s = 0; s < speeds.size(); ++s) {
      const ProtocolResult& uni = results[2 * s];
      const ProtocolResult& ulc = results[2 * s + 1];
      table.add_row({fmt_double(speeds[s], 0), fmt_double(uni.response_ms.mean(), 3),
                     fmt_double(uni.analytic_t_ave_ms, 3),
                     fmt_double(ulc.response_ms.mean(), 3),
                     fmt_double(ulc.analytic_t_ave_ms, 3)});
      for (std::size_t k = 0; k < 2; ++k) {
        const ProtocolResult& r = results[2 * s + k];
        Json jr = Json::object();
        jr.set("section", 2);
        jr.set("trace", "tpcc1");
        jr.set("scheme", protocol_scheme_name(schemes[k]));
        jr.set("lan_mb_per_s", speeds[s]);
        jr.set("measured_ms", r.response_ms.mean());
        jr.set("response_ms", r.response_hist.to_json());
        jr.set("counters", counters_to_json(r.stats));
        jr.set("analytic_ms", r.analytic_t_ave_ms);
        json_rows.push(std::move(jr));
      }
    }
    bench::emit(table, opt);
    std::printf(
        "uniLRU's measured time runs away from its own analytic value as the\n"
        "link saturates with demotions; ULC stays on the model.\n\n");
  }

  {
    std::printf("(3) six closed-loop clients on one shared LAN segment\n");
    std::printf("    (per-client loops beyond the client cache; the [15] "
                "scenario)\n");
    auto make_sources = [] {
      std::vector<PatternPtr> sources;
      for (std::size_t c = 0; c < 6; ++c)
        sources.push_back(make_loop_source(100000ull * c, 160));
      return sources;
    };
    MultiProtocolConfig mcfg;
    mcfg.refs_per_client = static_cast<std::uint64_t>(100000 * opt.scale);
    if (mcfg.refs_per_client < 4000) mcfg.refs_per_client = 4000;
    mcfg.shared_lan = LinkConfig{0.3, 16.0};
    mcfg.seed = opt.seed;

    using MultiFactory = std::function<SchemePtr()>;
    const std::vector<MultiFactory> factories = {
        [] { return make_ind_lru({64, 1024}, 6); },
        [] { return make_uni_lru_multi(64, 1024, 6, UniLruInsertion::kMru); },
        [] { return make_mq_hierarchy(64, 1024, 6); },
        [] { return make_ulc_multi(64, 1024, 6); },
    };
    std::vector<MultiProtocolResult> results(factories.size());
    exp::parallel_for(factories.size(), opt.threads, [&](std::size_t i) {
      SchemePtr scheme = factories[i]();
      results[i] = run_multi_protocol_sim(*scheme, make_sources(), mcfg);
    });

    TablePrinter table({"scheme", "measured ms", "analytic ms", "down util",
                        "up util", "refs/s"});
    for (const MultiProtocolResult& r : results) {
      table.add_row({r.scheme, fmt_double(r.response_ms.mean(), 3),
                     fmt_double(r.analytic_t_ave_ms, 3),
                     fmt_percent(r.lan_down_utilization, 1),
                     fmt_percent(r.lan_up_utilization, 1),
                     fmt_double(r.throughput_per_s, 0)});
      Json jr = Json::object();
      jr.set("section", 3);
      jr.set("scheme", r.scheme);
      jr.set("measured_ms", r.response_ms.mean());
      jr.set("response_ms", r.response_hist.to_json());
      jr.set("counters", counters_to_json(r.stats));
      jr.set("analytic_ms", r.analytic_t_ave_ms);
      jr.set("lan_down_utilization", r.lan_down_utilization);
      jr.set("lan_up_utilization", r.lan_up_utilization);
      jr.set("refs_per_sec", r.throughput_per_s);
      json_rows.push(std::move(jr));
    }
    bench::emit(table, opt);
    std::printf(
        "With six clients demoting on a shared segment, uniLRU's queueing\n"
        "delay dwarfs its analytic estimate; ULC's stable placement keeps\n"
        "the segment free for reads.\n");
  }
  bench::write_json(opt, "protocol_contention", std::move(json_rows));
  return 0;
}
