// Ablation C — demotion-cost (bandwidth) sensitivity.
//
// The paper's introduction cites [15]: uniLRU's benefit over independent
// caching is nullified once the I/O bandwidth drops below a threshold,
// because every reference may carry a demotion. This harness scales the
// client/server link cost (emulating lower bandwidth for 8KB transfers) and
// reports T_ave for indLRU / uniLRU / ULC on the looping tpcc1 workload —
// locating the crossover where uniLRU loses to indLRU while ULC, with its
// ~1% demotion rate, stays flat. All 18 (link, scheme) cells share one
// cached tpcc1 trace.
#include <cstdio>

#include "bench_common.h"
#include "exp/experiment.h"
#include "hierarchy/hierarchy.h"
#include "util/table.h"

using namespace ulc;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv, 0.1);
  const std::vector<std::size_t> caps(3, 6400);
  const double lans[] = {0.5, 1.0, 2.0, 4.0, 8.0, 16.0};

  std::vector<exp::ExperimentSpec> specs;
  for (double lan : lans) {
    struct Factory {
      const char* label;
      exp::SchemeFactory make;
    };
    const Factory factories[] = {
        {"indLRU", [caps](const Trace&) { return make_ind_lru(caps); }},
        {"uniLRU", [caps](const Trace&) { return make_uni_lru(caps); }},
        {"ULC", [caps](const Trace&) { return make_ulc(caps); }},
    };
    for (const Factory& f : factories) {
      exp::ExperimentSpec spec;
      spec.factory = f.make;
      spec.trace = {"tpcc1", opt.scale, opt.seed};
      spec.model = CostModel{{lan, 0.2, 10.0}};
      spec.warmup_fraction = opt.warmup;
      spec.params["lan_ms"] = lan;
      specs.push_back(std::move(spec));
    }
  }

  const std::vector<exp::CellResult> cells = exp::run_matrix(specs, opt.matrix());

  std::printf("Ablation C: T_ave (ms) vs client<->server link cost, tpcc1\n\n");
  TablePrinter table({"link ms (LAN)", "indLRU", "uniLRU", "ULC",
                      "uniLRU demotion part"});
  for (std::size_t i = 0; i < cells.size(); i += 3) {
    const exp::CellResult& ri = cells[i];
    const exp::CellResult& ru = cells[i + 1];
    const exp::CellResult& rc = cells[i + 2];
    table.add_row({fmt_double(ri.params.at("lan_ms"), 1),
                   fmt_double(ri.run.t_ave_ms, 3), fmt_double(ru.run.t_ave_ms, 3),
                   fmt_double(rc.run.t_ave_ms, 3),
                   fmt_double(ru.run.time.demotion_component, 3)});
  }
  bench::emit(table, opt);
  std::printf(
      "uniLRU's demotion bill grows linearly with the link cost (one demotion\n"
      "per reference on this looping workload); ULC's does not.\n");
  bench::write_json(opt, "ablation_bandwidth", exp::results_to_json(cells));
  return 0;
}
