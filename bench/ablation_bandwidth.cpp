// Ablation C — demotion-cost (bandwidth) sensitivity.
//
// The paper's introduction cites [15]: uniLRU's benefit over independent
// caching is nullified once the I/O bandwidth drops below a threshold,
// because every reference may carry a demotion. This harness scales the
// client/server link cost (emulating lower bandwidth for 8KB transfers) and
// reports T_ave for indLRU / uniLRU / ULC on the looping tpcc1 workload —
// locating the crossover where uniLRU loses to indLRU while ULC, with its
// ~1% demotion rate, stays flat.
#include <cstdio>

#include "bench_common.h"
#include "hierarchy/hierarchy.h"
#include "hierarchy/runner.h"
#include "util/table.h"
#include "workloads/paper_presets.h"

using namespace ulc;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv, 0.1);
  const Trace t = preset_tpcc1(opt.scale, opt.seed);
  const std::vector<std::size_t> caps(3, 6400);

  std::printf("Ablation C: T_ave (ms) vs client<->server link cost, tpcc1\n\n");
  TablePrinter table({"link ms (LAN)", "indLRU", "uniLRU", "ULC",
                      "uniLRU demotion part"});
  for (double lan : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    const CostModel model{{lan, 0.2, 10.0}};
    auto ind = make_ind_lru(caps);
    auto uni = make_uni_lru(caps);
    auto ulc = make_ulc(caps);
    const RunResult ri = run_scheme(*ind, t, model);
    const RunResult ru = run_scheme(*uni, t, model);
    const RunResult rc = run_scheme(*ulc, t, model);
    table.add_row({fmt_double(lan, 1), fmt_double(ri.t_ave_ms, 3),
                   fmt_double(ru.t_ave_ms, 3), fmt_double(rc.t_ave_ms, 3),
                   fmt_double(ru.time.demotion_component, 3)});
  }
  bench::emit(table, opt);
  std::printf(
      "uniLRU's demotion bill grows linearly with the link cost (one demotion\n"
      "per reference on this looping workload); ULC's does not.\n");
  return 0;
}
