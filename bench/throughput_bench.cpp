// Throughput gate for the slab/FlatMap hot-path storage (DESIGN.md §8).
//
// Replays the large Zipf preset through the main schemes one at a time
// (serially, so memory attribution is clean) and reports, per scheme:
//   * accesses/sec over the measured region (wall clock — explicitly the
//     nondeterministic fields of this harness, like the experiment engine's
//     wall_seconds/refs_per_sec),
//   * peak and delta resident set size read from /proc/self/status
//     (Linux-only; zeros elsewhere),
//   * slab arena traffic (allocs/frees/pages carved+released) from the
//     scheme's uniLRUstacks — steady-state should carve no pages after
//     warm-up, which is the point of the arena,
//   * FlatMap probe-length statistics (mean/max groups examined per lookup)
//     in debug builds only — the counters compile out under NDEBUG, so
//     Release rows simply omit the "probe" object and the measured numbers
//     stay free of instrumentation overhead.
//
// CI runs this at a smoke scale and validates the JSON schema; the numbers
// tracked over time live in BENCH_throughput.json at the repo root.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "exp/experiment.h"
#include "hierarchy/hierarchy.h"
#include "hierarchy/runner.h"
#include "obs/metrics.h"
#include "ulc/uni_lru_stack.h"
#include "util/flat_hash.h"
#include "util/table.h"
#include "util/wallclock.h"

#if defined(__linux__)
#include <cstdlib>
#endif

using namespace ulc;

namespace {

// Reads a "VmRSS:  1234 kB"-style field from /proc/self/status; 0 when the
// field (or the file) is unavailable (non-Linux).
std::uint64_t read_status_kb(const char* field) {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t value = 0;
  const std::size_t field_len = std::strlen(field);
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0 && line[field_len] == ':') {
      value = std::strtoull(line + field_len + 1, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return value;
#else
  (void)field;
  return 0;
#endif
}

struct SchemeSpec {
  const char* label;
  exp::SchemeFactory make;
  std::size_t levels = 3;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv, 0.02);
  const CostModel model3 = CostModel::paper_three_level();
  const CostModel model2 = CostModel::paper_two_level();

  // Fixed-size caches against the paper's large Zipf footprint (98304
  // blocks at full scale): the stacks churn hard enough that allocation
  // behaviour, not hash luck, dominates.
  const std::size_t cap = 12800;
  const std::vector<std::size_t> caps3(3, cap);
  const SchemeSpec schemes[] = {
      {"indLRU", [&](const Trace&) { return make_ind_lru(caps3); }},
      {"uniLRU", [&](const Trace&) { return make_uni_lru(caps3); }},
      {"LRU+MQ", [&](const Trace&) { return make_mq_hierarchy(cap, cap, 1); },
       2},
      {"ULC", [&](const Trace&) { return make_ulc(caps3); }},
  };

  std::fprintf(stderr, "synthesizing zipf trace (scale=%g)...\n", opt.scale);
  exp::TraceCache cache;
  const exp::TraceSpec trace_spec{"zipf", opt.scale, opt.seed};
  const Trace& trace = cache.get(trace_spec);

  TablePrinter table({"scheme", "refs", "accesses/sec", "t_ave (ms)",
                      "rss delta (kB)", "peak rss (kB)", "slab allocs",
                      "pages carved"});
  Json results = Json::array();

  for (const SchemeSpec& s : schemes) {
    const std::uint64_t rss_before_kb = read_status_kb("VmRSS");
    reset_flat_probe_stats();
    SchemePtr scheme = s.make(trace);
    // No RunObservation: the throughput number is the zero-instrumentation
    // hot path, matching BM_RunScheme's obs_off configuration.
    const WallTimer timer;
    const RunResult run = run_scheme(*scheme, trace,
                                     s.levels == 2 ? model2 : model3,
                                     opt.warmup);
    const double wall_seconds = timer.elapsed_seconds();
    const std::uint64_t rss_after_kb = read_status_kb("VmRSS");
    const std::uint64_t peak_rss_kb = read_status_kb("VmHWM");

    // Arena traffic over every uniLRUstack the scheme exposes (non-ULC
    // schemes expose none and report zeros), published as obs counters so
    // the JSON rows come from the same registry the engine benches use.
    obs::MetricsRegistry metrics;
    for (std::size_t i = 0; i < scheme->audit_stack_count(); ++i) {
      const UniLruStack* stack = scheme->audit_stack(i);
      if (stack == nullptr) continue;
      const auto st = stack->slab_stats();
      metrics.add_counter("slab.allocs", st.allocs);
      metrics.add_counter("slab.frees", st.frees);
      metrics.add_counter("slab.pages_carved", st.pages_carved);
      metrics.add_counter("slab.pages_released", st.pages_released);
    }

    const std::uint64_t refs = run.stats.references;
    const double accesses_per_sec =
        wall_seconds > 0 ? static_cast<double>(refs) / wall_seconds : 0.0;
    const std::uint64_t rss_delta_kb =
        rss_after_kb > rss_before_kb ? rss_after_kb - rss_before_kb : 0;

    table.add_row({s.label, std::to_string(refs),
                   fmt_double(accesses_per_sec / 1e6, 2) + "M",
                   fmt_double(run.t_ave_ms, 3), std::to_string(rss_delta_kb),
                   std::to_string(peak_rss_kb),
                   std::to_string(metrics.counter("slab.allocs")),
                   std::to_string(metrics.counter("slab.pages_carved"))});

    Json row = Json::object();
    row.set("scheme", s.label);
    row.set("trace", run.trace);
    row.set("references", refs);
    row.set("miss_ratio", run.stats.miss_ratio());
    row.set("t_ave_ms", run.t_ave_ms);
    row.set("wall_seconds", wall_seconds);          // nondeterministic
    row.set("accesses_per_sec", accesses_per_sec);  // nondeterministic
    Json memory = Json::object();
    memory.set("rss_before_kb", rss_before_kb);  // nondeterministic
    memory.set("rss_delta_kb", rss_delta_kb);    // nondeterministic
    memory.set("peak_rss_kb", peak_rss_kb);      // nondeterministic
    row.set("memory", std::move(memory));
    Json slab_json = Json::object();
    slab_json.set("allocs", metrics.counter("slab.allocs"));
    slab_json.set("frees", metrics.counter("slab.frees"));
    slab_json.set("pages_carved", metrics.counter("slab.pages_carved"));
    slab_json.set("pages_released", metrics.counter("slab.pages_released"));
    row.set("slab", std::move(slab_json));
    // Probe-length shape of the whole replay (ctor warm-up included): with
    // the 7/8 load factor the mean should sit barely above 1 group per
    // lookup. Debug builds only — under NDEBUG the per-lookup accounting is
    // compiled out of FlatMap and this object is omitted.
    if (flat_probe_stats_enabled()) {
      const FlatProbeStats probe = flat_probe_stats();
      Json probe_json = Json::object();
      probe_json.set("lookups", probe.lookups);
      probe_json.set("mean_groups",
                     probe.lookups > 0
                         ? static_cast<double>(probe.groups_probed) /
                               static_cast<double>(probe.lookups)
                         : 0.0);
      probe_json.set("max_groups", probe.max_groups);
      row.set("probe", std::move(probe_json));
    }
    results.push(std::move(row));
  }

  std::printf("Throughput: large Zipf preset, serial per-scheme runs\n\n");
  bench::emit(table, opt);
  bench::write_json(opt, "throughput", std::move(results));
  return 0;
}
