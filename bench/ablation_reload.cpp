// Ablation A — demote vs reload-from-disk vs ULC (paper §5 Related Work,
// Chen et al. 2003).
//
// Eviction-based placement keeps uniLRU's exclusive layout but replaces
// every network demotion with a disk re-read by the lower level. This
// harness shows, per workload: identical hit rates for uniLRU and reload,
// the critical-path time each pays, and the extra disk work the reload
// scheme buys that with — and that ULC needs neither.
#include <cstdio>

#include "bench_common.h"
#include "exp/experiment.h"
#include "hierarchy/hierarchy.h"
#include "util/table.h"

using namespace ulc;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv, 0.1);
  const CostModel model = CostModel::paper_three_level();
  const char* traces[] = {"tpcc1", "zipf", "random"};

  std::vector<exp::ExperimentSpec> specs;
  for (const char* name : traces) {
    const std::size_t cap = std::string(name) == "tpcc1" ? 6400 : 12800;
    const std::vector<std::size_t> caps(3, cap);
    struct Factory {
      const char* label;
      exp::SchemeFactory make;
    };
    const Factory factories[] = {
        {"uniLRU", [caps](const Trace&) { return make_uni_lru(caps); }},
        {"reloadLRU", [caps](const Trace&) { return make_reload_uni_lru(caps); }},
        {"ULC", [caps](const Trace&) { return make_ulc(caps); }},
    };
    for (const Factory& f : factories) {
      exp::ExperimentSpec spec;
      spec.factory = f.make;
      spec.trace = {name, opt.scale, opt.seed};
      spec.model = model;
      spec.warmup_fraction = opt.warmup;
      spec.params["cap_blocks"] = static_cast<double>(cap);
      specs.push_back(std::move(spec));
    }
  }

  const std::vector<exp::CellResult> cells = exp::run_matrix(specs, opt.matrix());

  std::printf("Ablation A: demotion vs eviction-based reload vs ULC\n\n");
  TablePrinter table({"trace", "scheme", "total hit", "T_ave (ms)",
                      "demotion part", "reload disk ms/ref"});
  for (const exp::CellResult& cell : cells) {
    const RunResult& r = cell.run;
    table.add_row({r.trace, r.scheme, fmt_percent(r.stats.total_hit_ratio(), 1),
                   fmt_double(r.t_ave_ms, 3),
                   fmt_double(r.time.demotion_component, 3),
                   fmt_double(r.time.reload_disk_ms, 3)});
  }
  bench::emit(table, opt);
  std::printf(
      "reloadLRU matches uniLRU's hit rates with no demotion cost on the\n"
      "critical path, but pays in background disk reads; ULC avoids both.\n");
  bench::write_json(opt, "ablation_reload", exp::results_to_json(cells));
  return 0;
}
