// Table 1 — qualitative comparison of the four measures:
//
//                              ND      R      NLD     LLD-R
//   distinguishes locality     strong  weak   strong  strong
//   stability of distinction   weak    weak   strong  strong
//   on-line                    no      yes    no      yes
//
// The paper derives the strong/weak verdicts from Figures 2 and 3; this
// harness computes the quantitative scores behind them across all six §2
// traces (analyzed in parallel on the engine pool) and prints both the
// numbers and the derived verdicts:
//   * distinction score = mean cumulative reference rate of the first five
//     segments (higher = references concentrate at the strong-locality end);
//   * stability score   = mean total movement ratio across the nine
//     boundaries (lower = cheaper to run a hierarchy on this measure).
#include <array>
#include <cstdio>

#include "bench_common.h"
#include "exp/experiment.h"
#include "measures/analyzers.h"
#include "util/table.h"

using namespace ulc;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv, 1.0);
  const std::vector<const char*> traces = {"cs",     "glimpse", "zipf-small",
                                           "random-small", "sprite", "multi"};

  exp::TraceCache cache;
  std::vector<std::array<MeasureReport, 4>> reports(traces.size());
  exp::parallel_for(traces.size(), opt.threads, [&](std::size_t i) {
    reports[i] = analyze_all_measures(cache.get({traces[i], opt.scale, opt.seed}));
  });

  double distinction[4] = {0, 0, 0, 0};
  double movement[4] = {0, 0, 0, 0};
  for (const auto& trace_reports : reports) {
    for (std::size_t m = 0; m < trace_reports.size(); ++m) {
      distinction[m] += trace_reports[m].cumulative_ratio[4];
      double total = 0.0;
      for (double v : trace_reports[m].movement_ratio) total += v;
      movement[m] += total;
    }
  }
  for (int m = 0; m < 4; ++m) {
    distinction[m] /= static_cast<double>(traces.size());
    movement[m] /= static_cast<double>(traces.size());
  }

  // Verdicts: thresholds placed between the observed clusters — R's head
  // concentration collapses on looping traces (distinction scores cluster
  // ~55% vs ~67-95%), and ND/R's movement (~4 crossings/ref) sits far above
  // NLD/LLD-R's (~0.8-1.2).
  auto strength = [](double v, double threshold, bool higher_is_strong) {
    return (higher_is_strong ? v >= threshold : v <= threshold) ? "strong" : "weak";
  };

  const char* names[] = {"ND", "R", "NLD", "LLD-R"};
  const bool online[] = {false, true, false, true};

  std::printf("Table 1: comparison of the four measures (means over 6 traces)\n\n");
  TablePrinter table({"property", "ND", "R", "NLD", "LLD-R"});
  {
    std::vector<std::string> row{"distinction score (cum. ref. rate, segs 1-5)"};
    for (int m = 0; m < 4; ++m) row.push_back(fmt_percent(distinction[m], 1));
    table.add_row(std::move(row));
  }
  {
    std::vector<std::string> row{"ability to distinguish locality strengths"};
    for (int m = 0; m < 4; ++m)
      row.push_back(strength(distinction[m], 0.55, /*higher=*/true));
    table.add_row(std::move(row));
  }
  {
    std::vector<std::string> row{"movement score (total movement ratio)"};
    for (int m = 0; m < 4; ++m) row.push_back(fmt_double(movement[m], 3));
    table.add_row(std::move(row));
  }
  {
    std::vector<std::string> row{"stability of distinctions"};
    for (int m = 0; m < 4; ++m)
      row.push_back(strength(movement[m], 2.0, /*higher=*/false));
    table.add_row(std::move(row));
  }
  {
    std::vector<std::string> row{"on-line measure"};
    for (int m = 0; m < 4; ++m) row.push_back(online[m] ? "yes" : "no");
    table.add_row(std::move(row));
  }
  bench::emit(table, opt);
  std::printf(
      "Paper's Table 1: ND strong/weak/no, R weak/weak/yes, NLD strong/strong/no, "
      "LLD-R strong/strong/yes.\n");

  Json json_rows = Json::array();
  for (int m = 0; m < 4; ++m) {
    Json jr = Json::object();
    jr.set("measure", names[m]);
    jr.set("distinction_score", distinction[m]);
    jr.set("movement_score", movement[m]);
    jr.set("distinguishes", std::string(strength(distinction[m], 0.55, true)));
    jr.set("stable", std::string(strength(movement[m], 2.0, false)));
    jr.set("online", online[m]);
    json_rows.push(std::move(jr));
  }
  bench::write_json(opt, "table1_measure_summary", std::move(json_rows));
  return 0;
}
