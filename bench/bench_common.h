// Shared command-line plumbing for the per-figure bench harnesses.
//
// Every harness accepts:
//   --scale=<f>   fraction of the paper's reference counts (default varies)
//   --full        paper-scale reference counts (scale = 1.0)
//   --seed=<n>    workload seed (default 1)
//   --csv         emit CSV instead of aligned text
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/table.h"

namespace ulc::bench {

struct Options {
  double scale = 0.1;
  std::uint64_t seed = 1;
  bool csv = false;
};

inline Options parse_options(int argc, char** argv, double default_scale) {
  Options opt;
  opt.scale = default_scale;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      opt.scale = std::atof(arg + 8);
      if (opt.scale <= 0.0) {
        std::fprintf(stderr, "invalid --scale\n");
        std::exit(2);
      }
    } else if (std::strcmp(arg, "--full") == 0) {
      opt.scale = 1.0;
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      opt.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strcmp(arg, "--csv") == 0) {
      opt.csv = true;
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf("usage: %s [--scale=<f> | --full] [--seed=<n>] [--csv]\n", argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument: %s (try --help)\n", arg);
      std::exit(2);
    }
  }
  return opt;
}

inline void emit(const TablePrinter& table, const Options& opt) {
  if (opt.csv) {
    const std::string csv = table.to_csv();
    std::fwrite(csv.data(), 1, csv.size(), stdout);
  } else {
    table.print();
  }
  std::printf("\n");
}

}  // namespace ulc::bench
