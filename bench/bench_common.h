// Shared command-line plumbing for the per-figure bench harnesses.
//
// Every harness accepts:
//   --scale=<f>    fraction of the paper's reference counts (default varies)
//   --full         paper-scale reference counts (scale = 1.0)
//   --seed=<n>     workload seed (default 1)
//   --warmup=<f>   warm-up fraction fed to run_scheme (default 0.1)
//   --threads=<n>  worker threads for the experiment engine (default 1)
//   --json=<path>  write the structured result array as JSON
//   --csv          emit CSV instead of aligned text
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "exp/experiment.h"
#include "util/json.h"
#include "util/table.h"

namespace ulc::bench {

struct Options {
  double scale = 0.1;
  std::uint64_t seed = 1;
  bool csv = false;
  double warmup = 0.1;
  std::size_t threads = 1;
  std::string json_path;

  exp::MatrixOptions matrix(exp::TraceCache* cache = nullptr) const {
    exp::MatrixOptions m;
    m.threads = threads;
    m.cache = cache;
    return m;
  }
};

// Strict numeric parsing: the whole value must be consumed, no empty values,
// no silent "garbage parses as 0".
inline double parse_double_arg(const char* text, const char* flag) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text, &end);
  if (*text == '\0' || end == nullptr || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "invalid %s value: '%s'\n", flag, text);
    std::exit(2);
  }
  return v;
}

inline std::uint64_t parse_u64_arg(const char* text, const char* flag) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (*text == '\0' || *text == '-' || end == nullptr || *end != '\0' ||
      errno == ERANGE) {
    std::fprintf(stderr, "invalid %s value: '%s'\n", flag, text);
    std::exit(2);
  }
  return static_cast<std::uint64_t>(v);
}

inline Options parse_options(int argc, char** argv, double default_scale) {
  Options opt;
  opt.scale = default_scale;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      opt.scale = parse_double_arg(arg + 8, "--scale");
      if (opt.scale <= 0.0) {
        std::fprintf(stderr, "invalid --scale\n");
        std::exit(2);
      }
    } else if (std::strcmp(arg, "--full") == 0) {
      opt.scale = 1.0;
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      opt.seed = parse_u64_arg(arg + 7, "--seed");
    } else if (std::strncmp(arg, "--warmup=", 9) == 0) {
      opt.warmup = parse_double_arg(arg + 9, "--warmup");
      if (opt.warmup < 0.0 || opt.warmup >= 1.0) {
        std::fprintf(stderr, "--warmup must be in [0, 1)\n");
        std::exit(2);
      }
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      opt.threads = static_cast<std::size_t>(parse_u64_arg(arg + 10, "--threads"));
      if (opt.threads == 0) {
        std::fprintf(stderr, "--threads must be >= 1\n");
        std::exit(2);
      }
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      opt.json_path = arg + 7;
      if (opt.json_path.empty()) {
        std::fprintf(stderr, "--json needs a path\n");
        std::exit(2);
      }
    } else if (std::strcmp(arg, "--csv") == 0) {
      opt.csv = true;
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf(
          "usage: %s [--scale=<f> | --full] [--seed=<n>] [--warmup=<f>]\n"
          "          [--threads=<n>] [--json=<path>] [--csv]\n",
          argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument: %s (try --help)\n", arg);
      std::exit(2);
    }
  }
  return opt;
}

inline void emit(const TablePrinter& table, const Options& opt) {
  if (opt.csv) {
    const std::string csv = table.to_csv();
    std::fwrite(csv.data(), 1, csv.size(), stdout);
  } else {
    table.print();
  }
  std::printf("\n");
}

// Writes {"benchmark", run options, "results": <results>} to opt.json_path
// when --json was given. `results` is usually exp::results_to_json(cells),
// but measure/protocol harnesses build their own row arrays.
inline void write_json(const Options& opt, const std::string& benchmark,
                       Json results) {
  if (opt.json_path.empty()) return;
  Json doc = Json::object();
  doc.set("benchmark", benchmark);
  doc.set("scale", opt.scale);
  doc.set("seed", opt.seed);
  doc.set("warmup", opt.warmup);
  doc.set("threads", opt.threads);
  doc.set("results", std::move(results));
  std::string error;
  if (!save_json(doc, opt.json_path, 2, &error)) {
    std::fprintf(stderr, "--json: %s\n", error.c_str());
    std::exit(1);
  }
  std::fprintf(stderr, "wrote %s\n", opt.json_path.c_str());
}

}  // namespace ulc::bench
