// Figure 2 — reference-rate distribution over the 10 segments of each
// measure's ordered list (ND, R, NLD, LLD-R), plus the cumulative reference
// rate of the first N segments, for the six small-scale traces of §2
// (cs, glimpse, zipf, random, sprite, multi).
//
// Expected shapes (paper §2.2): ND concentrates everything in the head
// segments (optimal); R collapses on looping traces (cs, glimpse: references
// land in the tail); NLD is consistently good; LLD-R tracks NLD everywhere
// except pure-random.
#include <cstdio>

#include "bench_common.h"
#include "measures/analyzers.h"
#include "util/table.h"
#include "workloads/paper_presets.h"

using namespace ulc;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv, 1.0);
  const char* traces[] = {"cs", "glimpse", "zipf-small", "random-small",
                          "sprite", "multi"};

  std::printf("Figure 2: reference ratio per list segment (and cumulative)\n\n");
  for (const char* name : traces) {
    const Trace t = make_preset(name, opt.scale, opt.seed);
    std::printf("-- trace %s: %zu references --\n", name, t.size());
    TablePrinter table({"measure", "seg1", "seg2", "seg3", "seg4", "seg5", "seg6",
                        "seg7", "seg8", "seg9", "seg10", "cum5", "cold"});
    for (const MeasureReport& rep : analyze_all_measures(t)) {
      std::vector<std::string> row{measure_name(rep.measure)};
      for (std::size_t s = 0; s < kSegments; ++s)
        row.push_back(fmt_percent(rep.segment_ratio[s], 1));
      row.push_back(fmt_percent(rep.cumulative_ratio[4], 1));
      row.push_back(fmt_percent(
          static_cast<double>(rep.cold_references) /
              static_cast<double>(rep.references),
          1));
      table.add_row(std::move(row));
    }
    bench::emit(table, opt);
  }
  return 0;
}
