// Figure 2 — reference-rate distribution over the 10 segments of each
// measure's ordered list (ND, R, NLD, LLD-R), plus the cumulative reference
// rate of the first N segments, for the six small-scale traces of §2
// (cs, glimpse, zipf, random, sprite, multi).
//
// Expected shapes (paper §2.2): ND concentrates everything in the head
// segments (optimal); R collapses on looping traces (cs, glimpse: references
// land in the tail); NLD is consistently good; LLD-R tracks NLD everywhere
// except pure-random.
//
// The per-trace analyses are independent, so they run through the engine's
// worker pool (--threads=<n>); output order stays fixed.
#include <array>
#include <cstdio>

#include "bench_common.h"
#include "exp/experiment.h"
#include "measures/analyzers.h"
#include "util/table.h"

using namespace ulc;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv, 1.0);
  const std::vector<const char*> traces = {"cs",     "glimpse", "zipf-small",
                                           "random-small", "sprite", "multi"};

  exp::TraceCache cache;
  std::vector<std::array<MeasureReport, 4>> reports(traces.size());
  std::vector<std::size_t> sizes(traces.size());
  exp::parallel_for(traces.size(), opt.threads, [&](std::size_t i) {
    const Trace& t = cache.get({traces[i], opt.scale, opt.seed});
    sizes[i] = t.size();
    reports[i] = analyze_all_measures(t);
  });

  Json json_rows = Json::array();
  std::printf("Figure 2: reference ratio per list segment (and cumulative)\n\n");
  for (std::size_t i = 0; i < traces.size(); ++i) {
    std::printf("-- trace %s: %zu references --\n", traces[i], sizes[i]);
    TablePrinter table({"measure", "seg1", "seg2", "seg3", "seg4", "seg5", "seg6",
                        "seg7", "seg8", "seg9", "seg10", "cum5", "cold"});
    for (const MeasureReport& rep : reports[i]) {
      std::vector<std::string> row{measure_name(rep.measure)};
      for (std::size_t s = 0; s < kSegments; ++s)
        row.push_back(fmt_percent(rep.segment_ratio[s], 1));
      const double cold = static_cast<double>(rep.cold_references) /
                          static_cast<double>(rep.references);
      row.push_back(fmt_percent(rep.cumulative_ratio[4], 1));
      row.push_back(fmt_percent(cold, 1));
      table.add_row(std::move(row));

      Json jr = Json::object();
      jr.set("trace", traces[i]);
      jr.set("measure", measure_name(rep.measure));
      Json segs = Json::array();
      for (std::size_t s = 0; s < kSegments; ++s) segs.push(rep.segment_ratio[s]);
      jr.set("segment_ratios", std::move(segs));
      jr.set("cum5", rep.cumulative_ratio[4]);
      jr.set("cold_ratio", cold);
      json_rows.push(std::move(jr));
    }
    bench::emit(table, opt);
  }
  bench::write_json(opt, "fig2_reference_distribution", std::move(json_rows));
  return 0;
}
