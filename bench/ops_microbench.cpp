// Section 5 cost claims, measured: "The operation costs associated with the
// stacks are O(1) time with each reference request" and the ~17-byte
// metadata budget per block.
//
// google-benchmark micro-benchmarks of the per-reference cost of every
// engine in the repository, across cache sizes — a flat per-reference cost
// as the footprint grows is the O(1) evidence.
#include <benchmark/benchmark.h>

#include "hierarchy/hierarchy.h"
#include "hierarchy/runner.h"
#include "obs/metrics.h"
#include "order/order_statistic_list.h"
#include "order/segmented_list.h"
#include "replacement/cache_policy.h"
#include "ulc/ulc_client.h"
#include "util/prng.h"
#include "workloads/synthetic.h"

namespace ulc {
namespace {

Trace bench_trace(std::uint64_t blocks, std::uint64_t refs) {
  std::vector<PatternPtr> sources;
  sources.push_back(make_zipf_source(0, blocks, 0.9, true, 3));
  sources.push_back(make_loop_source(blocks, blocks / 2));
  auto src = make_mixture_source(std::move(sources), {0.7, 0.3});
  return generate(*src, refs, 11, "bench");
}

void BM_UlcAccess(benchmark::State& state) {
  const auto blocks = static_cast<std::uint64_t>(state.range(0));
  const Trace t = bench_trace(blocks, 200000);
  UlcConfig cfg;
  cfg.capacities = {blocks / 8, blocks / 4, blocks / 2};
  UlcClient client(cfg);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.access(t[i].block).hit_level);
    if (++i == t.size()) i = 0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_UlcAccess)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 18);

void BM_UniLruSegmentedAccess(benchmark::State& state) {
  const auto blocks = static_cast<std::uint64_t>(state.range(0));
  const Trace t = bench_trace(blocks, 200000);
  SegmentedList list({blocks / 8, blocks / 4, blocks / 2});
  SegmentedList::AccessResult r;
  std::size_t i = 0;
  for (auto _ : state) {
    list.access(t[i].block, r);
    benchmark::DoNotOptimize(r.hit);
    if (++i == t.size()) i = 0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_UniLruSegmentedAccess)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 18);

void BM_PolicyAccess(benchmark::State& state, const char* kind) {
  const auto blocks = static_cast<std::uint64_t>(state.range(0));
  const Trace t = bench_trace(blocks, 200000);
  PolicyPtr policy;
  const std::size_t cap = blocks / 2;
  if (std::string(kind) == "lru") policy = make_lru(cap);
  if (std::string(kind) == "mq") policy = make_mq(MqConfig{cap});
  if (std::string(kind) == "lirs") policy = make_lirs(LirsConfig{cap, 0.02});
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->access(t[i].block, {}));
    if (++i == t.size()) i = 0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK_CAPTURE(BM_PolicyAccess, lru, "lru")->Arg(1 << 12)->Arg(1 << 18);
BENCHMARK_CAPTURE(BM_PolicyAccess, mq, "mq")->Arg(1 << 12)->Arg(1 << 18);
BENCHMARK_CAPTURE(BM_PolicyAccess, lirs, "lirs")->Arg(1 << 12)->Arg(1 << 18);

void BM_OrderStatisticMove(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  OrderStatisticList list;
  std::vector<OrderStatisticList::Handle> handles;
  for (std::size_t i = 0; i < n; ++i)
    handles.push_back(list.insert_back(static_cast<std::uint64_t>(i)));
  Rng rng(5);
  for (auto _ : state) {
    const std::size_t idx = static_cast<std::size_t>(rng.next_below(n));
    const std::size_t pos = static_cast<std::size_t>(rng.next_below(n));
    list.move(handles[idx], pos);
    benchmark::DoNotOptimize(list.rank(handles[idx]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OrderStatisticMove)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

// The observability gate: run_scheme with observation disabled must cost the
// same as it did before src/obs existed (the only addition is one null-check
// per run, not per reference). Compare obs_off with obs_on to see the actual
// instrumentation cost, and obs_off across commits to confirm the disabled
// path stays free.
void BM_RunScheme(benchmark::State& state, bool observed) {
  const auto blocks = static_cast<std::uint64_t>(state.range(0));
  const Trace t = bench_trace(blocks, 50000);
  const CostModel model = CostModel::paper_three_level();
  for (auto _ : state) {
    auto scheme = make_ulc({blocks / 8, blocks / 4, blocks / 2});
    RunObservation obs;
    obs::MetricsRegistry metrics;
    if (observed) obs.metrics = &metrics;
    const RunResult r = run_scheme(*scheme, t, model, 0.1, obs);
    benchmark::DoNotOptimize(r.t_ave_ms);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * t.size()));
}
BENCHMARK_CAPTURE(BM_RunScheme, obs_off, false)->Arg(1 << 12)->Arg(1 << 16);
BENCHMARK_CAPTURE(BM_RunScheme, obs_on, true)->Arg(1 << 12)->Arg(1 << 16);

// Raw cost of one histogram sample (bucket index + Welford update).
void BM_HistogramRecord(benchmark::State& state) {
  obs::LatencyHistogram hist;
  Rng rng(7);
  for (auto _ : state) {
    hist.record(static_cast<double>(rng.next_below(1 << 20)) * 0.001);
    benchmark::DoNotOptimize(hist.count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HistogramRecord);

void BM_MultiClientUlcAccess(benchmark::State& state) {
  const auto blocks = static_cast<std::uint64_t>(state.range(0));
  std::vector<PatternPtr> clients;
  std::vector<double> rates;
  for (int c = 0; c < 4; ++c) {
    clients.push_back(make_zipf_source(blocks * c, blocks, 0.9, true, 3 + c));
    rates.push_back(1.0);
  }
  const Trace t = generate_multi(std::move(clients), rates, 200000, 17, "m");
  auto scheme = make_ulc_multi(blocks / 8, blocks, 4);
  std::size_t i = 0;
  for (auto _ : state) {
    scheme->access(t[i]);
    if (++i == t.size()) i = 0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MultiClientUlcAccess)->Arg(1 << 12)->Arg(1 << 16);

}  // namespace
}  // namespace ulc

BENCHMARK_MAIN();
