// Extension — the multi-client protocol generalized to two shared levels
// (clients + server + disk-array cache). Not in the paper (its multi-client
// evaluation is two-level); this measures what the generalization buys on a
// db2-like partitioned-loop workload as the array cache grows: indLRU wastes
// both shared levels, 2-level ULC can only use the server, 3-level ULC
// spreads the looping scopes across both shared levels.
#include <cstdio>

#include "bench_common.h"
#include "hierarchy/hierarchy.h"
#include "hierarchy/runner.h"
#include "util/table.h"
#include "workloads/paper_presets.h"

using namespace ulc;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv, 0.05);
  const CostModel model3 = CostModel::paper_three_level();
  const CostModel model2 = CostModel::paper_two_level();

  const Trace t = make_preset("db2", opt.scale, opt.seed);
  const std::size_t client_cap = 8192;
  const std::size_t server_cap = 32768;
  const std::size_t n = 8;
  std::fprintf(stderr, "running db2 (%zu refs)...\n", t.size());

  std::printf("Extension: three-level multi-client ULC on db2-like load\n");
  std::printf("8 clients x 64MB, 256MB shared server, growing array cache\n\n");

  TablePrinter table({"array blocks", "scheme", "L1", "L2", "L3", "miss",
                      "T_ave (ms)"});
  for (std::size_t array_cap : {65536, 131072, 262144}) {
    auto ulc3 = make_ulc_multi_three(client_cap, server_cap, array_cap, n);
    const RunResult r3 = run_scheme(*ulc3, t, model3);
    auto ind = make_ind_lru({client_cap, server_cap, array_cap}, n);
    const RunResult ri = run_scheme(*ind, t, model3);
    for (const RunResult* r : {&r3, &ri}) {
      table.add_row({std::to_string(array_cap), r->scheme,
                     fmt_percent(r->stats.hit_ratio(0), 1),
                     fmt_percent(r->stats.hit_ratio(1), 1),
                     fmt_percent(r->stats.hit_ratio(2), 1),
                     fmt_percent(r->stats.miss_ratio(), 1),
                     fmt_double(r->t_ave_ms, 3)});
    }
  }
  bench::emit(table, opt);

  // Two-level reference point: the same server without an array behind it.
  auto ulc2 = make_ulc_multi(client_cap, server_cap, n);
  const RunResult r2 = run_scheme(*ulc2, t, model2);
  std::printf("two-level ULC reference (no array): T_ave %.3f ms, total hit %s\n",
              r2.t_ave_ms, fmt_percent(r2.stats.total_hit_ratio(), 1).c_str());
  return 0;
}
