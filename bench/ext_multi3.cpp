// Extension — the multi-client protocol generalized to two shared levels
// (clients + server + disk-array cache). Not in the paper (its multi-client
// evaluation is two-level); this measures what the generalization buys on a
// db2-like partitioned-loop workload as the array cache grows: indLRU wastes
// both shared levels, 2-level ULC can only use the server, 3-level ULC
// spreads the looping scopes across both shared levels.
#include <cstdio>

#include "bench_common.h"
#include "exp/experiment.h"
#include "hierarchy/hierarchy.h"
#include "util/table.h"

using namespace ulc;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv, 0.05);
  const CostModel model3 = CostModel::paper_three_level();
  const CostModel model2 = CostModel::paper_two_level();

  const std::size_t client_cap = 8192;
  const std::size_t server_cap = 32768;
  const std::size_t n = 8;
  const exp::TraceSpec db2{"db2", opt.scale, opt.seed};

  std::vector<exp::ExperimentSpec> specs;
  for (std::size_t array_cap : {65536, 131072, 262144}) {
    exp::ExperimentSpec ulc3;
    ulc3.factory = [=](const Trace&) {
      return make_ulc_multi_three(client_cap, server_cap, array_cap, n);
    };
    ulc3.trace = db2;
    ulc3.model = model3;
    ulc3.warmup_fraction = opt.warmup;
    ulc3.params["array_blocks"] = static_cast<double>(array_cap);
    specs.push_back(std::move(ulc3));

    exp::ExperimentSpec ind;
    ind.factory = [=](const Trace&) {
      return make_ind_lru({client_cap, server_cap, array_cap}, n);
    };
    ind.trace = db2;
    ind.model = model3;
    ind.warmup_fraction = opt.warmup;
    ind.params["array_blocks"] = static_cast<double>(array_cap);
    specs.push_back(std::move(ind));
  }
  // Two-level reference point: the same server without an array behind it.
  {
    exp::ExperimentSpec ulc2;
    ulc2.factory = [=](const Trace&) {
      return make_ulc_multi(client_cap, server_cap, n);
    };
    ulc2.trace = db2;
    ulc2.model = model2;
    ulc2.warmup_fraction = opt.warmup;
    ulc2.params["array_blocks"] = 0;
    specs.push_back(std::move(ulc2));
  }

  const std::vector<exp::CellResult> cells = exp::run_matrix(specs, opt.matrix());

  std::printf("Extension: three-level multi-client ULC on db2-like load\n");
  std::printf("8 clients x 64MB, 256MB shared server, growing array cache\n\n");

  TablePrinter table({"array blocks", "scheme", "L1", "L2", "L3", "miss",
                      "T_ave (ms)"});
  for (std::size_t i = 0; i + 1 < cells.size(); ++i) {
    const exp::CellResult& cell = cells[i];
    const RunResult& r = cell.run;
    table.add_row({fmt_double(cell.params.at("array_blocks"), 0), r.scheme,
                   fmt_percent(r.stats.hit_ratio(0), 1),
                   fmt_percent(r.stats.hit_ratio(1), 1),
                   fmt_percent(r.stats.hit_ratio(2), 1),
                   fmt_percent(r.stats.miss_ratio(), 1),
                   fmt_double(r.t_ave_ms, 3)});
  }
  bench::emit(table, opt);

  const RunResult& r2 = cells.back().run;
  std::printf("two-level ULC reference (no array): T_ave %.3f ms, total hit %s\n",
              r2.t_ave_ms, fmt_percent(r2.stats.total_hit_ratio(), 1).c_str());
  bench::write_json(opt, "ext_multi3", exp::results_to_json(cells));
  return 0;
}
