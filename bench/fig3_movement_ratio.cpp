// Figure 3 — block-movement ratio at each of the nine segment boundaries
// for ND, R, NLD and LLD-R. A movement at a boundary is one block crossing
// downward per reference; when segments are mapped onto cache levels this is
// exactly the communication (demotion) overhead a unified caching scheme
// built on that measure would pay.
//
// Expected shapes (paper §2.2): ND and R are volatile (high ratios,
// especially on looping glimpse); NLD and LLD-R are stable; LLD-R is often
// the most stable of all.
//
// The paper plots glimpse, sprite and zipf and notes the rest are in its
// technical-report companion; we print all six. Per-trace analyses run on
// the engine's worker pool.
#include <array>
#include <cstdio>

#include "bench_common.h"
#include "exp/experiment.h"
#include "measures/analyzers.h"
#include "util/table.h"

using namespace ulc;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv, 1.0);
  const std::vector<const char*> traces = {"glimpse", "sprite",       "zipf-small",
                                           "cs",      "random-small", "multi"};

  exp::TraceCache cache;
  std::vector<std::array<MeasureReport, 4>> reports(traces.size());
  std::vector<std::size_t> sizes(traces.size());
  exp::parallel_for(traces.size(), opt.threads, [&](std::size_t i) {
    const Trace& t = cache.get({traces[i], opt.scale, opt.seed});
    sizes[i] = t.size();
    reports[i] = analyze_all_measures(t);
  });

  Json json_rows = Json::array();
  std::printf("Figure 3: block movement ratio per segment boundary\n\n");
  for (std::size_t i = 0; i < traces.size(); ++i) {
    std::printf("-- trace %s: %zu references --\n", traces[i], sizes[i]);
    TablePrinter table({"measure", "b1", "b2", "b3", "b4", "b5", "b6", "b7", "b8",
                        "b9", "total"});
    for (const MeasureReport& rep : reports[i]) {
      std::vector<std::string> row{measure_name(rep.measure)};
      double total = 0.0;
      Json boundaries = Json::array();
      for (std::size_t b = 0; b + 1 < kSegments; ++b) {
        row.push_back(fmt_percent(rep.movement_ratio[b], 1));
        boundaries.push(rep.movement_ratio[b]);
        total += rep.movement_ratio[b];
      }
      row.push_back(fmt_double(total, 3));
      table.add_row(std::move(row));

      Json jr = Json::object();
      jr.set("trace", traces[i]);
      jr.set("measure", measure_name(rep.measure));
      jr.set("movement_ratios", std::move(boundaries));
      jr.set("total_movement", total);
      json_rows.push(std::move(jr));
    }
    bench::emit(table, opt);
  }
  bench::write_json(opt, "fig3_movement_ratio", std::move(json_rows));
  return 0;
}
