// Figure 3 — block-movement ratio at each of the nine segment boundaries
// for ND, R, NLD and LLD-R. A movement at a boundary is one block crossing
// downward per reference; when segments are mapped onto cache levels this is
// exactly the communication (demotion) overhead a unified caching scheme
// built on that measure would pay.
//
// Expected shapes (paper §2.2): ND and R are volatile (high ratios,
// especially on looping glimpse); NLD and LLD-R are stable; LLD-R is often
// the most stable of all.
//
// The paper plots glimpse, sprite and zipf and notes the rest are in its
// technical-report companion; we print all six.
#include <cstdio>

#include "bench_common.h"
#include "measures/analyzers.h"
#include "util/table.h"
#include "workloads/paper_presets.h"

using namespace ulc;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv, 1.0);
  const char* traces[] = {"glimpse", "sprite", "zipf-small",
                          "cs",      "random-small", "multi"};

  std::printf("Figure 3: block movement ratio per segment boundary\n\n");
  for (const char* name : traces) {
    const Trace t = make_preset(name, opt.scale, opt.seed);
    std::printf("-- trace %s: %zu references --\n", name, t.size());
    TablePrinter table({"measure", "b1", "b2", "b3", "b4", "b5", "b6", "b7", "b8",
                        "b9", "total"});
    for (const MeasureReport& rep : analyze_all_measures(t)) {
      std::vector<std::string> row{measure_name(rep.measure)};
      double total = 0.0;
      for (std::size_t b = 0; b + 1 < kSegments; ++b) {
        row.push_back(fmt_percent(rep.movement_ratio[b], 1));
        total += rep.movement_ratio[b];
      }
      row.push_back(fmt_double(total, 3));
      table.add_row(std::move(row));
    }
    bench::emit(table, opt);
  }
  return 0;
}
