// Ablation D — how close does ULC get to the clairvoyant bound?
//
// OPT-layout caches the Belady-optimal content and keeps it ND-ordered
// across the levels: no scheme can beat its hit rate, and it serves every
// hit from L1 — but only by shuffling blocks across boundaries incessantly
// (the paper's Figure 2/3 trade-off between ND's distinction and its
// instability, now at hierarchy scale). ULC concedes some hits and some L1
// concentration to an online measure, and buys near-zero movement.
//
// The OPT-layout factory is the reason engine factories receive the cell's
// trace: the clairvoyant scheme must replay exactly the trace it was built
// from, which the shared TraceCache keeps alive for the whole matrix.
#include <cstdio>

#include "bench_common.h"
#include "exp/experiment.h"
#include "hierarchy/hierarchy.h"
#include "util/table.h"

using namespace ulc;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv, 0.05);
  const CostModel model = CostModel::paper_three_level();

  std::vector<exp::ExperimentSpec> specs;
  for (const char* name : {"zipf", "tpcc1", "httpd", "random"}) {
    const std::size_t cap = std::string(name) == "tpcc1" ? 6400 : 12800;
    const std::vector<std::size_t> caps(3, cap);
    struct Factory {
      const char* label;
      exp::SchemeFactory make;
    };
    const Factory factories[] = {
        {"OPT-layout",
         [caps](const Trace& t) { return make_opt_layout(caps, t); }},
        {"ULC", [caps](const Trace&) { return make_ulc(caps); }},
    };
    for (const Factory& f : factories) {
      exp::ExperimentSpec spec;
      spec.factory = f.make;
      spec.trace = {name, opt.scale, opt.seed};
      spec.model = model;
      spec.warmup_fraction = opt.warmup;
      spec.params["cap_blocks"] = static_cast<double>(cap);
      specs.push_back(std::move(spec));
    }
  }

  const std::vector<exp::CellResult> cells = exp::run_matrix(specs, opt.matrix());

  std::printf("Ablation D: ULC vs the offline OPT-layout bound\n\n");
  TablePrinter table({"trace", "scheme", "total hit", "L1 hit",
                      "movement L1->L2 /ref", "T_ave (ms)"});
  for (const exp::CellResult& cell : cells) {
    const RunResult& r = cell.run;
    table.add_row({r.trace, r.scheme, fmt_percent(r.stats.total_hit_ratio(), 1),
                   fmt_percent(r.stats.hit_ratio(0), 1),
                   fmt_double(r.stats.demotion_ratio(0), 3),
                   fmt_double(r.t_ave_ms, 3)});
  }
  bench::emit(table, opt);
  std::printf(
      "OPT-layout's T_ave is a lower bound that no protocol could realize:\n"
      "its per-boundary movement is block traffic a real hierarchy would pay\n"
      "for. ULC's hit rates trail the bound while its movement is near zero.\n");
  bench::write_json(opt, "ablation_optimal", exp::results_to_json(cells));
  return 0;
}
