// Ablation D — how close does ULC get to the clairvoyant bound?
//
// OPT-layout caches the Belady-optimal content and keeps it ND-ordered
// across the levels: no scheme can beat its hit rate, and it serves every
// hit from L1 — but only by shuffling blocks across boundaries incessantly
// (the paper's Figure 2/3 trade-off between ND's distinction and its
// instability, now at hierarchy scale). ULC concedes some hits and some L1
// concentration to an online measure, and buys near-zero movement.
#include <cstdio>

#include "bench_common.h"
#include "hierarchy/hierarchy.h"
#include "hierarchy/runner.h"
#include "util/table.h"
#include "workloads/paper_presets.h"

using namespace ulc;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv, 0.05);
  const CostModel model = CostModel::paper_three_level();

  std::printf("Ablation D: ULC vs the offline OPT-layout bound\n\n");
  TablePrinter table({"trace", "scheme", "total hit", "L1 hit",
                      "movement L1->L2 /ref", "T_ave (ms)"});
  for (const char* name : {"zipf", "tpcc1", "httpd", "random"}) {
    const Trace t = make_preset(name, opt.scale, opt.seed);
    const std::size_t cap = std::string(name) == "tpcc1" ? 6400 : 12800;
    const std::vector<std::size_t> caps(3, cap);
    std::fprintf(stderr, "running %s (%zu refs)...\n", name, t.size());

    auto layout = make_opt_layout(caps, t);
    const RunResult ro = run_scheme(*layout, t, model);
    auto ulc = make_ulc(caps);
    const RunResult ru = run_scheme(*ulc, t, model);

    for (const RunResult* r : {&ro, &ru}) {
      table.add_row({name, r->scheme, fmt_percent(r->stats.total_hit_ratio(), 1),
                     fmt_percent(r->stats.hit_ratio(0), 1),
                     fmt_double(r->stats.demotion_ratio(0), 3),
                     fmt_double(r->t_ave_ms, 3)});
    }
  }
  bench::emit(table, opt);
  std::printf(
      "OPT-layout's T_ave is a lower bound that no protocol could realize:\n"
      "its per-boundary movement is block traffic a real hierarchy would pay\n"
      "for. ULC's hit rates trail the bound while its movement is near zero.\n");
  return 0;
}
