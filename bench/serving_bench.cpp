// Serving-path throughput/latency gate (ROADMAP item 1, DESIGN.md §10).
//
// Drives the concurrent ServingRuntime (sharded BlockCache + gLRU directory
// over MPSC queues) with the multi-threaded load generator and reports, per
// workload × thread count: sustained requests/sec and p50/p95/p99 request
// latency from the obs histograms, plus the cache and directory counters.
//
// Closed-loop saturation (--rate=0, the default) produces the throughput
// numbers tracked in BENCH_serving.json; --rate=<r> switches to open-loop
// pacing at r requests/sec per thread, where latency is measured from the
// scheduled start so coordinated omission cannot hide server lag.
//
// CI runs a 1- and 4-thread smoke with schema validation; the numbers
// tracked over time live in BENCH_serving.json at the repo root.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "runtime/loadgen.h"
#include "util/table.h"

using namespace ulc;

namespace {

struct ServingOptions {
  std::uint64_t requests = 200000;
  std::vector<std::size_t> threads = {1, 4, 16};
  std::vector<std::string> workloads = {"zipf", "streaming"};
  std::size_t shards = 4;
  std::size_t server_shards = 4;
  double write_frac = 0.1;
  double rate = 0.0;
  std::uint64_t seed = 1;
  std::size_t memory_blocks = 512;  // RAM pool per cache shard
  std::size_t near_blocks = 2048;   // near tier per cache shard
  std::size_t block_size = 4096;
  bool csv = false;
  std::string json_path;
};

std::vector<std::string> split_csv(const char* text) {
  std::vector<std::string> out;
  std::string cur;
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p == ',') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(*p);
    }
  }
  out.push_back(cur);
  return out;
}

ServingOptions parse(int argc, char** argv) {
  ServingOptions opt;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--requests=", 11) == 0) {
      opt.requests = bench::parse_u64_arg(arg + 11, "--requests");
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      opt.threads.clear();
      for (const std::string& t : split_csv(arg + 10))
        opt.threads.push_back(static_cast<std::size_t>(
            bench::parse_u64_arg(t.c_str(), "--threads")));
    } else if (std::strncmp(arg, "--workloads=", 12) == 0) {
      opt.workloads = split_csv(arg + 12);
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      opt.shards = static_cast<std::size_t>(bench::parse_u64_arg(arg + 9, "--shards"));
    } else if (std::strncmp(arg, "--server-shards=", 16) == 0) {
      opt.server_shards =
          static_cast<std::size_t>(bench::parse_u64_arg(arg + 16, "--server-shards"));
    } else if (std::strncmp(arg, "--write-frac=", 13) == 0) {
      opt.write_frac = bench::parse_double_arg(arg + 13, "--write-frac");
    } else if (std::strncmp(arg, "--rate=", 7) == 0) {
      opt.rate = bench::parse_double_arg(arg + 7, "--rate");
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      opt.seed = bench::parse_u64_arg(arg + 7, "--seed");
    } else if (std::strncmp(arg, "--memory-blocks=", 16) == 0) {
      opt.memory_blocks =
          static_cast<std::size_t>(bench::parse_u64_arg(arg + 16, "--memory-blocks"));
    } else if (std::strncmp(arg, "--near-blocks=", 14) == 0) {
      opt.near_blocks =
          static_cast<std::size_t>(bench::parse_u64_arg(arg + 14, "--near-blocks"));
    } else if (std::strncmp(arg, "--block-size=", 13) == 0) {
      opt.block_size =
          static_cast<std::size_t>(bench::parse_u64_arg(arg + 13, "--block-size"));
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      opt.json_path = arg + 7;
    } else if (std::strcmp(arg, "--csv") == 0) {
      opt.csv = true;
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf(
          "usage: %s [--requests=<n>] [--threads=<a,b,...>]\n"
          "          [--workloads=zipf,streaming] [--shards=<n>]\n"
          "          [--server-shards=<n>] [--write-frac=<f>] [--rate=<r>]\n"
          "          [--memory-blocks=<n>] [--near-blocks=<n>]\n"
          "          [--block-size=<n>] [--seed=<n>] [--json=<path>] [--csv]\n",
          argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument: %s (try --help)\n", arg);
      std::exit(2);
    }
  }
  if (opt.requests == 0 || opt.threads.empty() || opt.workloads.empty() ||
      opt.shards == 0 || opt.block_size == 0 || opt.write_frac < 0.0 ||
      opt.write_frac > 1.0 || opt.rate < 0.0) {
    std::fprintf(stderr, "invalid options (try --help)\n");
    std::exit(2);
  }
  return opt;
}

LoadGenConfig make_config(const ServingOptions& opt, const std::string& workload,
                          std::size_t threads) {
  LoadGenConfig cfg;
  cfg.workload = workload;
  cfg.requests = opt.requests;
  cfg.threads = threads;
  cfg.write_frac = opt.write_frac;
  cfg.rate = opt.rate;
  cfg.seed = opt.seed;
  cfg.footprint_blocks = 1 << 16;
  cfg.zipf_theta = 0.9;
  cfg.streaming.n_titles = 2000;
  cfg.streaming.churn_period = 500;
  cfg.serving.per_shard.block_size = opt.block_size;
  cfg.serving.per_shard.memory_blocks = opt.memory_blocks;
  cfg.serving.cache_shards = opt.shards;
  cfg.serving.near_blocks_per_shard = opt.near_blocks;
  cfg.serving.enable_directory = opt.server_shards > 0;
  if (opt.server_shards > 0) cfg.serving.directory.shards = opt.server_shards;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const ServingOptions opt = parse(argc, argv);

  TablePrinter table({"workload", "threads", "requests", "req/s", "p50 (ms)",
                      "p95 (ms)", "p99 (ms)", "mem hit%", "near hit%"});
  Json results = Json::array();

  for (const std::string& workload : opt.workloads) {
    for (std::size_t threads : opt.threads) {
      std::fprintf(stderr, "serving %s x%zu threads (%llu requests)...\n",
                   workload.c_str(), threads,
                   static_cast<unsigned long long>(opt.requests));
      const LoadGenConfig cfg = make_config(opt, workload, threads);
      const LoadGenResult r = run_serving_load(cfg);

      const double refs = static_cast<double>(r.cache.reads + r.cache.writes);
      table.add_row(
          {workload, std::to_string(threads), std::to_string(r.requests),
           fmt_double(r.requests_per_sec, 0),
           fmt_double(r.latency_ms.percentile(50), 4),
           fmt_double(r.latency_ms.percentile(95), 4),
           fmt_double(r.latency_ms.percentile(99), 4),
           fmt_double(refs > 0 ? 100.0 * r.cache.memory_hits / refs : 0.0, 1),
           fmt_double(refs > 0 ? 100.0 * r.cache.near_hits / refs : 0.0, 1)});
      results.push(load_result_to_json(cfg, r));
    }
  }

  if (opt.csv) {
    const std::string csv = table.to_csv();
    std::fwrite(csv.data(), 1, csv.size(), stdout);
  } else {
    table.print();
  }
  std::printf("\n");

  if (!opt.json_path.empty()) {
    Json doc = Json::object();
    doc.set("benchmark", "serving_bench");
    doc.set("requests", opt.requests);
    doc.set("seed", opt.seed);
    doc.set("results", std::move(results));
    std::string error;
    if (!save_json(doc, opt.json_path, 2, &error)) {
      std::fprintf(stderr, "--json: %s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", opt.json_path.c_str());
  }
  return 0;
}
