// Ablation E — could uniLRU's demotions be delayed instead of avoided?
//
// Section 4.1 refuses to move demotions off the critical path, for two
// reasons: (1) demotions arrive in bursts that small dedicated buffers
// cannot absorb, and (2) reserving many buffers for them shrinks the cache
// and costs hit rate. This harness quantifies the trade on uniLRU: reserve
// B client buffers for a demotion staging area (the cache keeps C1-B
// blocks) and bracket the outcome between two bounds —
//   pessimistic: every demotion still charged on the critical path;
//   optimistic:  every demotion hidden entirely (free background transfer).
// Even under the optimistic bound, uniLRU only converges to reload-style
// behaviour, which ULC beats without reserving anything; and the burstiness
// column shows how large the staging area must be to absorb real bursts.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "exp/experiment.h"
#include "hierarchy/hierarchy.h"
#include "util/table.h"

using namespace ulc;

namespace {

// Largest number of demotions in any window of `window` consecutive
// references — the burst a staging buffer must absorb if the drain rate
// matches the average demand.
std::uint64_t peak_burst(const Trace& t, const std::vector<std::size_t>& caps,
                         std::size_t window) {
  auto scheme = make_uni_lru(caps);
  std::vector<std::uint32_t> per_ref(t.size(), 0);
  std::uint64_t last = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    scheme->access(t[i]);
    const std::uint64_t now = scheme->stats().demotions[0];
    per_ref[i] = static_cast<std::uint32_t>(now - last);
    last = now;
  }
  std::uint64_t best = 0, cur = 0;
  for (std::size_t i = 0; i < per_ref.size(); ++i) {
    cur += per_ref[i];
    if (i >= window) cur -= per_ref[i - window];
    best = std::max(best, cur);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv, 0.05);
  const CostModel model = CostModel::paper_three_level();
  const char* traces[] = {"tpcc1", "zipf"};

  exp::TraceCache cache;
  std::vector<exp::ExperimentSpec> specs;
  for (const char* name : traces) {
    const std::size_t cap = std::string(name) == "tpcc1" ? 6400 : 12800;
    for (std::size_t buffers :
         {std::size_t{0}, cap / 64, cap / 16, cap / 4, cap / 2}) {
      exp::ExperimentSpec spec;
      const std::vector<std::size_t> caps{cap - buffers, cap, cap};
      spec.factory = [caps](const Trace&) { return make_uni_lru(caps); };
      spec.trace = {name, opt.scale, opt.seed};
      spec.model = model;
      spec.warmup_fraction = opt.warmup;
      spec.params["demote_buffers"] = static_cast<double>(buffers);
      specs.push_back(std::move(spec));
    }
    exp::ExperimentSpec ulc_spec;
    ulc_spec.factory = [cap](const Trace&) { return make_ulc({cap, cap, cap}); };
    ulc_spec.trace = {name, opt.scale, opt.seed};
    ulc_spec.model = model;
    ulc_spec.warmup_fraction = opt.warmup;
    specs.push_back(std::move(ulc_spec));
  }

  const std::vector<exp::CellResult> cells =
      exp::run_matrix(specs, opt.matrix(&cache));

  std::printf("Ablation E: delayed demotions — buffer size vs hit rate\n\n");
  std::size_t at = 0;
  for (const char* name : traces) {
    const std::size_t cap = std::string(name) == "tpcc1" ? 6400 : 12800;
    TablePrinter table({"demote buffers", "total hit", "T_ave on-path",
                        "T_ave hidden (bound)"});
    for (int i = 0; i < 5; ++i, ++at) {
      const exp::CellResult& cell = cells[at];
      const RunResult& r = cell.run;
      // Optimistic bound: zero demotion charge.
      const double hidden = r.time.hit_component + r.time.miss_component;
      table.add_row({fmt_double(cell.params.at("demote_buffers"), 0),
                     fmt_percent(r.stats.total_hit_ratio(), 1),
                     fmt_double(r.t_ave_ms, 3), fmt_double(hidden, 3)});
    }
    std::printf("-- %s (uniLRU; ULC needs no staging buffers) --\n", name);
    bench::emit(table, opt);

    const RunResult& ru = cells[at++].run;
    std::printf("ULC reference point: T_ave %.3f ms at %s total hits\n",
                ru.t_ave_ms, fmt_percent(ru.stats.total_hit_ratio(), 1).c_str());

    // The burst scan needs the per-reference demotion series, so it replays
    // serially — on the same cached trace the matrix used.
    const Trace& t = cache.get({name, opt.scale, opt.seed});
    const std::vector<std::size_t> caps(3, cap);
    std::printf("uniLRU demotion bursts: max %llu demotions per 64 references, "
                "%llu per 1024\n\n",
                static_cast<unsigned long long>(peak_burst(t, caps, 64)),
                static_cast<unsigned long long>(peak_burst(t, caps, 1024)));
  }
  bench::write_json(opt, "ablation_delayed_demotion", exp::results_to_json(cells));
  return 0;
}
