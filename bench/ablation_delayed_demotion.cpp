// Ablation E — could uniLRU's demotions be delayed instead of avoided?
//
// Section 4.1 refuses to move demotions off the critical path, for two
// reasons: (1) demotions arrive in bursts that small dedicated buffers
// cannot absorb, and (2) reserving many buffers for them shrinks the cache
// and costs hit rate. This harness quantifies the trade on uniLRU: reserve
// B client buffers for a demotion staging area (the cache keeps C1-B
// blocks) and bracket the outcome between two bounds —
//   pessimistic: every demotion still charged on the critical path;
//   optimistic:  every demotion hidden entirely (free background transfer).
// Even under the optimistic bound, uniLRU only converges to reload-style
// behaviour, which ULC beats without reserving anything; and the burstiness
// column shows how large the staging area must be to absorb real bursts.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "hierarchy/hierarchy.h"
#include "hierarchy/runner.h"
#include "util/table.h"
#include "workloads/paper_presets.h"

using namespace ulc;

namespace {

// Largest number of demotions in any window of `window` consecutive
// references — the burst a staging buffer must absorb if the drain rate
// matches the average demand.
std::uint64_t peak_burst(const Trace& t, const std::vector<std::size_t>& caps,
                         std::size_t window) {
  auto scheme = make_uni_lru(caps);
  std::vector<std::uint32_t> per_ref(t.size(), 0);
  std::uint64_t last = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    scheme->access(t[i]);
    const std::uint64_t now = scheme->stats().demotions[0];
    per_ref[i] = static_cast<std::uint32_t>(now - last);
    last = now;
  }
  std::uint64_t best = 0, cur = 0;
  for (std::size_t i = 0; i < per_ref.size(); ++i) {
    cur += per_ref[i];
    if (i >= window) cur -= per_ref[i - window];
    best = std::max(best, cur);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv, 0.05);
  const CostModel model = CostModel::paper_three_level();

  std::printf("Ablation E: delayed demotions — buffer size vs hit rate\n\n");
  for (const char* name : {"tpcc1", "zipf"}) {
    const Trace t = make_preset(name, opt.scale, opt.seed);
    const std::size_t cap = std::string(name) == "tpcc1" ? 6400 : 12800;
    std::fprintf(stderr, "running %s (%zu refs)...\n", name, t.size());

    TablePrinter table({"demote buffers", "total hit", "T_ave on-path",
                        "T_ave hidden (bound)"});
    for (std::size_t buffers :
         {std::size_t{0}, cap / 64, cap / 16, cap / 4, cap / 2}) {
      const std::vector<std::size_t> caps{cap - buffers, cap, cap};
      auto uni = make_uni_lru(caps);
      const RunResult r = run_scheme(*uni, t, model);
      // Optimistic bound: zero demotion charge.
      const double hidden = r.time.hit_component + r.time.miss_component;
      table.add_row({std::to_string(buffers),
                     fmt_percent(r.stats.total_hit_ratio(), 1),
                     fmt_double(r.t_ave_ms, 3), fmt_double(hidden, 3)});
    }
    std::printf("-- %s (uniLRU; ULC needs no staging buffers) --\n", name);
    bench::emit(table, opt);

    auto ulc = make_ulc({cap, cap, cap});
    const RunResult ru = run_scheme(*ulc, t, model);
    std::printf("ULC reference point: T_ave %.3f ms at %s total hits\n",
                ru.t_ave_ms, fmt_percent(ru.stats.total_hit_ratio(), 1).c_str());

    const std::vector<std::size_t> caps(3, cap);
    std::printf("uniLRU demotion bursts: max %llu demotions per 64 references, "
                "%llu per 1024\n\n",
                static_cast<unsigned long long>(peak_burst(t, caps, 64)),
                static_cast<unsigned long long>(peak_burst(t, caps, 1024)));
  }
  return 0;
}
