// Figure 7 — multi-client two-level evaluation: average access time of
// indLRU, best-of-three uniLRU insertion variants (the paper reports the
// best of Wong & Wilkes' versions), LRU+MQ, and ULC as the shared server
// cache grows.
//
//   httpd:    7 clients x 8MB  (1024 blocks)   — shared web documents
//   openmail: 6 clients x 1GB  (131072 blocks) — 18.6GB mail store
//   db2:      8 clients x 256MB (32768 blocks) — looping join scans
//
// Expected shapes (paper §4.4): ULC best overall; uniLRU below indLRU on
// db2 until the combined caches cover the looping scopes (crossover as the
// server grows); MQ strong at small servers, overtaken at large ones where
// its slow reaction to pattern changes shows.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "hierarchy/hierarchy.h"
#include "hierarchy/runner.h"
#include "util/table.h"
#include "workloads/paper_presets.h"

using namespace ulc;

namespace {

struct Workload {
  const char* name;
  std::size_t clients;
  std::size_t client_cap;
  std::vector<std::size_t> server_caps;
  double default_scale;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv, 0.1);
  const CostModel model = CostModel::paper_two_level();

  const Workload workloads[] = {
      {"httpd-multi", 7, 1024, {2048, 4096, 8192, 16384, 32768}, 0.1},
      {"openmail", 6, 131072, {131072, 262144, 524288, 1048576}, 1.0},
      {"db2", 8, 32768, {32768, 65536, 131072, 262144}, 0.1},
  };

  std::printf("Figure 7: average access time vs server cache size (ms)\n");
  std::printf("links: client--1ms--server--10ms--disk\n\n");

  for (const Workload& w : workloads) {
    // openmail's huge footprint needs more references to leave warm-up; its
    // own default kicks in unless the user overrode --scale.
    const double scale = std::max(opt.scale, w.default_scale);
    const Trace t = make_preset(w.name, scale, opt.seed);
    std::fprintf(stderr, "running %s (%zu refs, %zu clients x %zu blocks)...\n",
                 w.name, t.size(), w.clients, w.client_cap);

    TablePrinter table({"server blocks", "server MB", "indLRU", "uniLRU(best)",
                        "LRU+MQ", "ULC"});
    for (std::size_t scap : w.server_caps) {
      auto ind = make_ind_lru({w.client_cap, scap}, w.clients);
      const RunResult rind = run_scheme(*ind, t, model);

      double best_uni = 1e18;
      for (auto ins : {UniLruInsertion::kMru, UniLruInsertion::kMiddle,
                       UniLruInsertion::kLru}) {
        auto uni = make_uni_lru_multi(w.client_cap, scap, w.clients, ins);
        best_uni = std::min(best_uni, run_scheme(*uni, t, model).t_ave_ms);
      }

      auto mq = make_mq_hierarchy(w.client_cap, scap, w.clients);
      const RunResult rmq = run_scheme(*mq, t, model);

      auto ulc = make_ulc_multi(w.client_cap, scap, w.clients);
      const RunResult rulc = run_scheme(*ulc, t, model);

      table.add_row({std::to_string(scap), std::to_string(scap * 8 / 1024),
                     fmt_double(rind.t_ave_ms, 3), fmt_double(best_uni, 3),
                     fmt_double(rmq.t_ave_ms, 3), fmt_double(rulc.t_ave_ms, 3)});
    }
    std::printf("-- %s --\n", w.name);
    bench::emit(table, opt);
  }
  return 0;
}
