// Figure 7 — multi-client two-level evaluation: average access time of
// indLRU, best-of-three uniLRU insertion variants (the paper reports the
// best of Wong & Wilkes' versions), LRU+MQ, and ULC as the shared server
// cache grows.
//
//   httpd:    7 clients x 8MB  (1024 blocks)   — shared web documents
//   openmail: 6 clients x 1GB  (131072 blocks) — 18.6GB mail store
//   db2:      8 clients x 256MB (32768 blocks) — looping join scans
//
// Expected shapes (paper §4.4): ULC best overall; uniLRU below indLRU on
// db2 until the combined caches cover the looping scopes (crossover as the
// server grows); MQ strong at small servers, overtaken at large ones where
// its slow reaction to pattern changes shows.
//
// Every (workload, server size, scheme) cell — including each of the three
// uniLRU insertion variants — is an independent experiment-engine cell.
#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "exp/experiment.h"
#include "hierarchy/hierarchy.h"
#include "util/table.h"

using namespace ulc;

namespace {

struct Workload {
  const char* name;
  std::size_t clients;
  std::size_t client_cap;
  std::vector<std::size_t> server_caps;
  double default_scale;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv, 0.1);
  const CostModel model = CostModel::paper_two_level();

  const Workload workloads[] = {
      {"httpd-multi", 7, 1024, {2048, 4096, 8192, 16384, 32768}, 0.1},
      {"openmail", 6, 131072, {131072, 262144, 524288, 1048576}, 1.0},
      {"db2", 8, 32768, {32768, 65536, 131072, 262144}, 0.1},
  };

  std::printf("Figure 7: average access time vs server cache size (ms)\n");
  std::printf("links: client--1ms--server--10ms--disk\n\n");

  std::vector<exp::ExperimentSpec> specs;
  for (const Workload& w : workloads) {
    // openmail's huge footprint needs more references to leave warm-up; its
    // own default kicks in unless the user overrode --scale.
    const double scale = std::max(opt.scale, w.default_scale);
    for (std::size_t scap : w.server_caps) {
      const std::size_t ccap = w.client_cap;
      const std::size_t n = w.clients;
      struct Factory {
        std::string label;
        exp::SchemeFactory make;
      };
      std::vector<Factory> factories;
      factories.push_back(
          {"indLRU", [=](const Trace&) { return make_ind_lru({ccap, scap}, n); }});
      for (auto ins : {UniLruInsertion::kMru, UniLruInsertion::kMiddle,
                       UniLruInsertion::kLru}) {
        factories.push_back({std::string("uniLRU/") + uni_lru_insertion_name(ins),
                             [=](const Trace&) {
                               return make_uni_lru_multi(ccap, scap, n, ins);
                             }});
      }
      factories.push_back(
          {"LRU+MQ", [=](const Trace&) { return make_mq_hierarchy(ccap, scap, n); }});
      factories.push_back(
          {"ULC", [=](const Trace&) { return make_ulc_multi(ccap, scap, n); }});
      for (Factory& f : factories) {
        exp::ExperimentSpec spec;
        spec.scheme = std::move(f.label);
        spec.factory = std::move(f.make);
        spec.trace = {w.name, scale, opt.seed};
        spec.model = model;
        spec.warmup_fraction = opt.warmup;
        spec.params["server_blocks"] = static_cast<double>(scap);
        spec.params["client_blocks"] = static_cast<double>(ccap);
        spec.params["clients"] = static_cast<double>(n);
        specs.push_back(std::move(spec));
      }
    }
  }

  std::fprintf(stderr, "running %zu cells on %zu thread(s)...\n", specs.size(),
               opt.threads);
  const std::vector<exp::CellResult> cells = exp::run_matrix(specs, opt.matrix());

  std::size_t at = 0;
  for (const Workload& w : workloads) {
    TablePrinter table({"server blocks", "server MB", "indLRU", "uniLRU(best)",
                        "LRU+MQ", "ULC"});
    for (std::size_t scap : w.server_caps) {
      std::map<std::string, double> t_ave;
      double best_uni = 1e18;
      for (int s = 0; s < 6; ++s, ++at) {
        const exp::CellResult& cell = cells[at];
        if (cell.run.scheme.rfind("uniLRU/", 0) == 0) {
          best_uni = std::min(best_uni, cell.run.t_ave_ms);
        } else {
          t_ave[cell.run.scheme] = cell.run.t_ave_ms;
        }
      }
      table.add_row({std::to_string(scap), std::to_string(scap * 8 / 1024),
                     fmt_double(t_ave["indLRU"], 3), fmt_double(best_uni, 3),
                     fmt_double(t_ave["LRU+MQ"], 3), fmt_double(t_ave["ULC"], 3)});
    }
    std::printf("-- %s --\n", w.name);
    bench::emit(table, opt);
  }
  bench::write_json(opt, "fig7_multiclient", exp::results_to_json(cells));
  return 0;
}
