// Ablation B — ULC design knobs.
//
// 1. tempLRU size (paper footnote 3): ULC does not cache first-touch blocks
//    at L1, so very quick re-references would miss without the small client
//    buffer pool that holds pass-through blocks. We sweep its size (carved
//    out of the client cache) on an LRU-friendly and on a web-like workload.
//
// 2. Level split: the same aggregate cache sliced into 1-4 levels. ULC's
//    promise is hierarchy-neutral hit rates (the aggregate behaves like one
//    big cache) with hits skewed to the cheap upper levels; the slices show
//    how much of T_ave the level-awareness recovers.
#include <cstdio>

#include "bench_common.h"
#include "hierarchy/hierarchy.h"
#include "hierarchy/runner.h"
#include "util/table.h"
#include "workloads/paper_presets.h"

using namespace ulc;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv, 0.1);
  const CostModel model3 = CostModel::paper_three_level();

  std::printf("Ablation B1: tempLRU size (blocks carved out of the client cache)\n\n");
  {
    TablePrinter table({"trace", "temp", "L1 hit", "total hit", "T_ave (ms)"});
    for (const char* name : {"sprite", "httpd"}) {
      const Trace t = make_preset(name, opt.scale, opt.seed);
      const std::size_t cap = std::string(name) == "sprite" ? 1024 : 12800;
      for (std::size_t temp : {std::size_t{0}, std::size_t{8}, std::size_t{32},
                               std::size_t{128}}) {
        auto ulc = make_ulc({cap, cap, cap}, temp);
        const RunResult r = run_scheme(*ulc, t, model3);
        table.add_row({name, std::to_string(temp),
                       fmt_percent(r.stats.hit_ratio(0), 1),
                       fmt_percent(r.stats.total_hit_ratio(), 1),
                       fmt_double(r.t_ave_ms, 3)});
      }
    }
    bench::emit(table, opt);
  }

  std::printf("Ablation B2: one aggregate cache sliced into N levels\n\n");
  {
    TablePrinter table({"trace", "levels", "split", "total hit", "L1 hit",
                        "T_ave (ms)"});
    struct Split {
      const char* label;
      std::vector<std::size_t> caps;
    };
    const Split splits[] = {
        {"38400", {38400}},
        {"19200+19200", {19200, 19200}},
        {"12800x3", {12800, 12800, 12800}},
        {"9600x4", {9600, 9600, 9600, 9600}},
    };
    for (const char* name : {"zipf", "tpcc1"}) {
      const Trace t = make_preset(name, opt.scale, opt.seed);
      for (const Split& split : splits) {
        // Cost model: slice the 1.2ms path into equal per-level links so the
        // total fetch path stays comparable; disk link unchanged.
        std::vector<double> links(split.caps.size(), 0.0);
        for (std::size_t i = 0; i + 1 < links.size(); ++i)
          links[i] = 1.2 / static_cast<double>(links.size() - 1);
        links.back() = 10.0;
        const CostModel model{links};
        auto ulc = make_ulc(split.caps);
        const RunResult r = run_scheme(*ulc, t, model);
        table.add_row({name, std::to_string(split.caps.size()), split.label,
                       fmt_percent(r.stats.total_hit_ratio(), 1),
                       fmt_percent(r.stats.hit_ratio(0), 1),
                       fmt_double(r.t_ave_ms, 3)});
      }
    }
    bench::emit(table, opt);
  }
  return 0;
}
