// Ablation B — ULC design knobs.
//
// 1. tempLRU size (paper footnote 3): ULC does not cache first-touch blocks
//    at L1, so very quick re-references would miss without the small client
//    buffer pool that holds pass-through blocks. We sweep its size (carved
//    out of the client cache) on an LRU-friendly and on a web-like workload.
//
// 2. Level split: the same aggregate cache sliced into 1-4 levels. ULC's
//    promise is hierarchy-neutral hit rates (the aggregate behaves like one
//    big cache) with hits skewed to the cheap upper levels; the slices show
//    how much of T_ave the level-awareness recovers.
//
// Both sweeps run as one experiment-engine matrix; a "part" param keeps the
// B1/B2 rows apart when rendering and in the JSON.
#include <cstdio>

#include "bench_common.h"
#include "exp/experiment.h"
#include "hierarchy/hierarchy.h"
#include "util/table.h"

using namespace ulc;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv, 0.1);
  const CostModel model3 = CostModel::paper_three_level();

  std::vector<exp::ExperimentSpec> specs;

  // B1: tempLRU sweep.
  for (const char* name : {"sprite", "httpd"}) {
    const std::size_t cap = std::string(name) == "sprite" ? 1024 : 12800;
    for (std::size_t temp : {std::size_t{0}, std::size_t{8}, std::size_t{32},
                             std::size_t{128}}) {
      exp::ExperimentSpec spec;
      spec.factory = [cap, temp](const Trace&) {
        return make_ulc({cap, cap, cap}, temp);
      };
      spec.trace = {name, opt.scale, opt.seed};
      spec.model = model3;
      spec.warmup_fraction = opt.warmup;
      spec.params["part"] = 1;
      spec.params["temp_buffers"] = static_cast<double>(temp);
      specs.push_back(std::move(spec));
    }
  }

  // B2: one aggregate cache sliced into N levels.
  struct Split {
    const char* label;
    std::vector<std::size_t> caps;
  };
  const Split splits[] = {
      {"38400", {38400}},
      {"19200+19200", {19200, 19200}},
      {"12800x3", {12800, 12800, 12800}},
      {"9600x4", {9600, 9600, 9600, 9600}},
  };
  const std::size_t b2_start = specs.size();
  for (const char* name : {"zipf", "tpcc1"}) {
    for (const Split& split : splits) {
      // Cost model: slice the 1.2ms path into equal per-level links so the
      // total fetch path stays comparable; disk link unchanged.
      std::vector<double> links(split.caps.size(), 0.0);
      for (std::size_t i = 0; i + 1 < links.size(); ++i)
        links[i] = 1.2 / static_cast<double>(links.size() - 1);
      links.back() = 10.0;
      exp::ExperimentSpec spec;
      const std::vector<std::size_t> caps = split.caps;
      spec.factory = [caps](const Trace&) { return make_ulc(caps); };
      spec.trace = {name, opt.scale, opt.seed};
      spec.model = CostModel{links};
      spec.warmup_fraction = opt.warmup;
      spec.params["part"] = 2;
      spec.params["levels"] = static_cast<double>(split.caps.size());
      specs.push_back(std::move(spec));
    }
  }

  const std::vector<exp::CellResult> cells = exp::run_matrix(specs, opt.matrix());

  std::printf("Ablation B1: tempLRU size (blocks carved out of the client cache)\n\n");
  {
    TablePrinter table({"trace", "temp", "L1 hit", "total hit", "T_ave (ms)"});
    for (std::size_t i = 0; i < b2_start; ++i) {
      const RunResult& r = cells[i].run;
      table.add_row({r.trace,
                     fmt_double(cells[i].params.at("temp_buffers"), 0),
                     fmt_percent(r.stats.hit_ratio(0), 1),
                     fmt_percent(r.stats.total_hit_ratio(), 1),
                     fmt_double(r.t_ave_ms, 3)});
    }
    bench::emit(table, opt);
  }

  std::printf("Ablation B2: one aggregate cache sliced into N levels\n\n");
  {
    TablePrinter table({"trace", "levels", "split", "total hit", "L1 hit",
                        "T_ave (ms)"});
    std::size_t at = b2_start;
    for (const char* name : {"zipf", "tpcc1"}) {
      (void)name;
      for (const Split& split : splits) {
        const RunResult& r = cells[at++].run;
        table.add_row({r.trace, std::to_string(split.caps.size()), split.label,
                       fmt_percent(r.stats.total_hit_ratio(), 1),
                       fmt_percent(r.stats.hit_ratio(0), 1),
                       fmt_double(r.t_ave_ms, 3)});
      }
    }
    bench::emit(table, opt);
  }
  bench::write_json(opt, "ablation_ulc_design", exp::results_to_json(cells));
  return 0;
}
