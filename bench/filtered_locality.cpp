// Section 1 motivation, quantified: "the access stream seen by low level
// caches has weaker locality than those available to the first level cache"
// (Muntz & Honeyman; Zhou et al.).
//
// For each workload this prints the LRU reuse-distance distribution of the
// original request stream next to that of the stream a second-level cache
// actually sees — the misses of an L1 LRU. Short distances (the food of any
// recency-based policy) are exactly what L1 absorbs; the residue is why an
// independent LRU at the server is nearly useless and why ULC instead ranks
// blocks where the original stream is visible: at the client.
//
// Each workload is one engine cell: synthesize (shared cache), bucketize the
// original stream, replay the L1 filter, bucketize the residue.
#include <array>
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "exp/experiment.h"
#include "measures/next_use.h"
#include "replacement/cache_policy.h"
#include "util/table.h"

using namespace ulc;

namespace {

struct DistanceBuckets {
  // reuse distances: <1K, <4K, <16K, <64K, >=64K, first touch
  std::array<std::uint64_t, 6> counts{};
  std::uint64_t total = 0;

  void add(std::uint64_t d) {
    ++total;
    if (d == kInfiniteDistance) {
      ++counts[5];
    } else if (d < 1024) {
      ++counts[0];
    } else if (d < 4096) {
      ++counts[1];
    } else if (d < 16384) {
      ++counts[2];
    } else if (d < 65536) {
      ++counts[3];
    } else {
      ++counts[4];
    }
  }

  double fraction(std::size_t i) const {
    return total ? static_cast<double>(counts[i]) / static_cast<double>(total)
                 : 0.0;
  }
  std::string ratio(std::size_t i) const { return fmt_percent(fraction(i), 1); }
};

DistanceBuckets bucketize(const Trace& t) {
  DistanceBuckets out;
  for (std::uint64_t d : compute_stack_distances(t)) out.add(d);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv, 0.05);
  const std::vector<const char*> traces = {"zipf", "httpd", "tpcc1", "dev1"};

  exp::TraceCache cache;
  std::vector<DistanceBuckets> original(traces.size());
  std::vector<DistanceBuckets> residue(traces.size());
  exp::parallel_for(traces.size(), opt.threads, [&](std::size_t i) {
    const Trace& t = cache.get({traces[i], opt.scale, opt.seed});
    original[i] = bucketize(t);

    auto l1 = make_lru(std::string(traces[i]) == "tpcc1" ? 6400 : 12800);
    Trace filtered("l2-stream");
    for (const Request& r : t) {
      if (!l1->access(r.block, {})) filtered.add(r);
    }
    residue[i] = bucketize(filtered);
  });

  std::printf("Reuse-distance distributions: original stream vs what an L2\n");
  std::printf("cache sees after the Figure-6 L1 LRU filter (100MB; 50MB for\n");
  std::printf("tpcc1)\n\n");

  static const char* kBucketNames[] = {"lt_1k",  "lt_4k",   "lt_16k",
                                       "lt_64k", "ge_64k", "first_touch"};
  Json json_rows = Json::array();
  TablePrinter table({"trace", "stream", "<1K", "<4K", "<16K", "<64K", ">=64K",
                      "first touch"});
  for (std::size_t i = 0; i < traces.size(); ++i) {
    for (int which = 0; which < 2; ++which) {
      const DistanceBuckets& b = which == 0 ? original[i] : residue[i];
      const char* stream = which == 0 ? "original" : "L1 misses";
      std::vector<std::string> row{traces[i], stream};
      Json jr = Json::object();
      jr.set("trace", traces[i]);
      jr.set("stream", stream);
      for (std::size_t k = 0; k < 6; ++k) {
        row.push_back(b.ratio(k));
        jr.set(kBucketNames[k], b.fraction(k));
      }
      table.add_row(std::move(row));
      json_rows.push(std::move(jr));
    }
  }
  bench::emit(table, opt);
  std::printf(
      "The L1 filter eats the short-distance mass; the second level is left\n"
      "with long distances and first touches — recency information that LRU\n"
      "cannot use, which is the case for client-directed placement.\n");
  bench::write_json(opt, "filtered_locality", std::move(json_rows));
  return 0;
}
