// Fault-injection sweep: how gracefully does each placement protocol degrade
// when the fabric starts failing?
//
// Every cell replays the same zipf workload through the faulted protocol
// simulator (proto/fault_sim.h) with the real schemes wrapped in the
// CheckedHierarchy auditor — a run only counts if the recovery protocol kept
// every invariant while messages were being lost and levels were crashing.
//
//  (1) message-loss sweep: loss rate 0 .. 5%, all three schemes. Loss = 0 is
//      the control: it must match the fault-free simulator exactly.
//  (2) level-crash cells: the mid-level cache restarts mid-measurement (the
//      crash instant is placed from the control run's timeline), with and
//      without background loss. Degraded/recovered phases, retry counts and
//      resync work become visible here.
//
// Each (fault plan, scheme) simulation is an independent cell on the engine
// pool; traces come from the shared cache.
#include <cstdio>

#include "bench_common.h"
#include "exp/experiment.h"
#include "proto/fault_sim.h"
#include "util/table.h"

using namespace ulc;

namespace {

const ProtocolScheme kSchemes[] = {ProtocolScheme::kIndLru,
                                   ProtocolScheme::kUniLru, ProtocolScheme::kUlc};

Json row_json(const FaultedProtocolResult& r, ProtocolScheme scheme,
              const FaultSimConfig& cfg, int section) {
  Json jr = Json::object();
  jr.set("section", section);
  jr.set("scheme", protocol_scheme_name(scheme));
  jr.set("loss", cfg.faults.loss);
  jr.set("crashes", cfg.crashes.size());
  if (!cfg.crashes.empty()) {
    jr.set("crash_level", cfg.crashes.front().level);
    jr.set("crash_at_ms", cfg.crashes.front().at_ms);
    jr.set("crash_outage_ms", cfg.crashes.front().outage_ms);
  }
  jr.set("measured_ms", r.base.response_ms.mean());
  // Full distribution of the same samples: count/mean/min/max/p50/p95/p99
  // (null fields when the measured window is empty).
  jr.set("response_ms", r.base.response_hist.to_json());
  jr.set("analytic_ms", r.base.analytic_t_ave_ms);
  jr.set("hit_ratio", r.base.stats.total_hit_ratio());
  jr.set("miss_ratio", r.base.stats.miss_ratio());
  jr.set("counters", counters_to_json(r.base.stats));
  const ReliabilityStats& rs = r.reliability;
  jr.set("messages_lost", rs.messages_lost);
  jr.set("timeouts", rs.timeouts);
  jr.set("retries", rs.retries);
  jr.set("nacks", rs.nacks);
  jr.set("breaker_trips", rs.breaker_trips);
  jr.set("probes", rs.probes);
  jr.set("recoveries", rs.recoveries);
  jr.set("resync_drops", rs.resync_drops);
  jr.set("resync_level_purges", rs.resync_level_purges);
  jr.set("resync_purged_entries", rs.resync_purged_entries);
  jr.set("stale_copies_reclaimed", rs.stale_copies_reclaimed);
  jr.set("bypassed_reads", rs.bypassed_reads);
  jr.set("stale_reads", rs.stale_reads);
  jr.set("failed_reads", rs.failed_reads);
  jr.set("demote_drops", rs.demote_drops);
  jr.set("cross_epoch_drops", rs.cross_epoch_drops);
  jr.set("post_recovery_stale_reads", rs.post_recovery_stale_reads);
  // Data-loss accounting from the write-back journal. lost_acked must stay
  // zero under every fault plan — an acknowledged write that vanishes is a
  // durability-law violation, not a measurement.
  const JournalStats& js = r.journal;
  Json jj = Json::object();
  jj.set("appended", js.appended);
  jj.set("appended_bytes", js.appended_bytes);
  jj.set("acked", js.acked);
  jj.set("acked_bytes", js.acked_bytes);
  jj.set("lost_unacked", js.lost_unacked);
  jj.set("lost_unacked_bytes", js.lost_unacked_bytes);
  jj.set("lost_acked", js.lost_acked);
  jj.set("dirty_lost", js.dirty_lost);
  jj.set("dirty_lost_bytes", js.dirty_lost_bytes);
  jr.set("writeback_journal", std::move(jj));
  Json phases = Json::array();
  for (std::size_t p = 0; p < kFaultPhases; ++p) {
    Json jp = Json::object();
    jp.set("phase", fault_phase_name(static_cast<FaultPhase>(p)));
    jp.set("references", r.phase_references[p]);
    // null, not 0.0, when the phase saw no references — a crash-free run's
    // degraded phase has no mean response time, and 0.0 would poison
    // cross-run aggregation (the empty-Welford bug).
    jp.set("mean_response_ms", r.phase_references[p] > 0
                                   ? Json(r.phase_response_ms[p].mean())
                                   : Json(nullptr));
    jp.set("response_ms", r.phase_hist[p].to_json());
    phases.push(std::move(jp));
  }
  jr.set("phases", std::move(phases));
  return jr;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv, 0.05);
  exp::TraceCache cache;
  Json json_rows = Json::array();

  const std::size_t cap = 400;
  auto base_config = [&] {
    FaultSimConfig cfg;
    cfg.protocol = ProtocolConfig::paper_three_level({cap, cap, cap});
    cfg.protocol.warmup_fraction = opt.warmup;
    cfg.faults.seed = opt.seed;
    cfg.checked = true;
    cfg.abort_on_violation = true;  // a violation must fail the smoke run
    return cfg;
  };

  std::printf("Fault-injection sweep: ULC recovery under message loss and "
              "level crashes\n\n");

  std::vector<FaultedProtocolResult> control(3);  // loss=0 cells, per scheme

  {
    std::printf("(1) message-loss sweep, zipf-small\n");
    const std::vector<double> losses = {0.0, 0.005, 0.01, 0.02, 0.05};
    std::vector<FaultedProtocolResult> results(losses.size() * 3);
    exp::parallel_for(results.size(), opt.threads, [&](std::size_t i) {
      const Trace& t = cache.get({"zipf-small", opt.scale, opt.seed});
      FaultSimConfig cfg = base_config();
      cfg.faults.loss = losses[i / 3];
      cfg.context = std::string("fault_sweep loss=") + fmt_double(cfg.faults.loss, 3);
      results[i] = run_faulted_protocol_sim(kSchemes[i % 3], cfg, t);
    });

    TablePrinter table({"loss", "scheme", "measured ms", "hit ratio", "retries",
                        "nacks", "stale reads", "resync drops"});
    for (std::size_t i = 0; i < results.size(); ++i) {
      const FaultedProtocolResult& r = results[i];
      const ReliabilityStats& rs = r.reliability;
      table.add_row({fmt_percent(losses[i / 3], 1),
                     protocol_scheme_name(kSchemes[i % 3]),
                     fmt_double(r.base.response_ms.mean(), 3),
                     fmt_percent(r.base.stats.total_hit_ratio(), 1),
                     fmt_double(static_cast<double>(rs.retries), 0),
                     fmt_double(static_cast<double>(rs.nacks), 0),
                     fmt_double(static_cast<double>(rs.stale_reads), 0),
                     fmt_double(static_cast<double>(rs.resync_drops), 0)});
      FaultSimConfig cfg = base_config();
      cfg.faults.loss = losses[i / 3];
      json_rows.push(row_json(r, kSchemes[i % 3], cfg, 1));
      if (i / 3 == 0) control[i % 3] = r;
    }
    bench::emit(table, opt);
    std::printf(
        "Retries absorb isolated losses; sustained loss surfaces as stale\n"
        "reads the directory resync has to repair.\n\n");
  }

  {
    std::printf("(2) mid-level crash at the measurement midpoint\n");
    // Place the crash from each scheme's own control timeline so every
    // scheme is hit at the same point of its measured window.
    const std::vector<double> losses = {0.0, 0.01};
    std::vector<FaultedProtocolResult> results(losses.size() * 3);
    std::vector<FaultSimConfig> cfgs(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      const FaultedProtocolResult& c = control[i % 3];
      FaultSimConfig cfg = base_config();
      cfg.faults.loss = losses[i / 3];
      CrashEvent crash;
      crash.level = 1;
      crash.at_ms = c.measure_start_ms + 0.5 * (c.end_ms - c.measure_start_ms);
      // Long enough that a read hitting the dead level exhausts its retry
      // budget (~90ms) well inside the outage and trips the breaker.
      crash.outage_ms = 1000.0;
      cfg.crashes.push_back(crash);
      cfg.context = std::string("fault_sweep crash loss=") +
                    fmt_double(cfg.faults.loss, 3);
      cfgs[i] = cfg;
    }
    exp::parallel_for(results.size(), opt.threads, [&](std::size_t i) {
      const Trace& t = cache.get({"zipf-small", opt.scale, opt.seed});
      results[i] = run_faulted_protocol_sim(kSchemes[i % 3], cfgs[i], t);
    });

    TablePrinter table({"loss", "scheme", "measured ms", "trips",
                        "degraded refs", "degraded ms", "recovered refs",
                        "recovered ms", "purged", "reclaimed"});
    for (std::size_t i = 0; i < results.size(); ++i) {
      const FaultedProtocolResult& r = results[i];
      const ReliabilityStats& rs = r.reliability;
      const std::size_t deg = static_cast<std::size_t>(FaultPhase::kDegraded);
      const std::size_t rec = static_cast<std::size_t>(FaultPhase::kRecovered);
      table.add_row(
          {fmt_percent(losses[i / 3], 1), protocol_scheme_name(kSchemes[i % 3]),
           fmt_double(r.base.response_ms.mean(), 3),
           fmt_double(static_cast<double>(rs.breaker_trips), 0),
           fmt_double(static_cast<double>(r.phase_references[deg]), 0),
           fmt_double(r.phase_references[deg] > 0 ? r.phase_response_ms[deg].mean()
                                                  : 0.0,
                      3),
           fmt_double(static_cast<double>(r.phase_references[rec]), 0),
           fmt_double(r.phase_references[rec] > 0 ? r.phase_response_ms[rec].mean()
                                                  : 0.0,
                      3),
           fmt_double(static_cast<double>(rs.resync_purged_entries), 0),
           fmt_double(static_cast<double>(rs.stale_copies_reclaimed), 0)});
      json_rows.push(row_json(r, kSchemes[i % 3], cfgs[i], 2));
    }
    bench::emit(table, opt);
    std::printf(
        "The crash trips the breaker (degraded reads bypass the dead level),\n"
        "a probe closes it, and the epoch mismatch triggers a directory\n"
        "purge; ULC's resync counters show the repair the stateless schemes\n"
        "don't need — and the hit ratio it buys back afterwards.\n");
  }

  bench::write_json(opt, "fault_sweep", std::move(json_rows));
  return 0;
}
