// Figure 6 — the three-level single-client evaluation (client / server /
// disk-array RAM, 1ms / 0.2ms / 10ms links, 8KB blocks).
//
// For each of the five traces (random, zipf, httpd, dev1, tpcc1) and each
// scheme (indLRU, uniLRU, ULC) this prints the paper's three graphs as rows:
//   1. hit rate at each of the three levels,
//   2. demotion rate at each of the two boundaries,
//   3. average access time and its hit/miss/demotion breakdown.
//
// Cache sizes follow the paper: 100MB per level (12800 blocks), 50MB for
// tpcc1 (6400 blocks). Warm-up = first tenth of the trace. The default
// --scale=0.1 preserves every footprint/cache ratio; --full reproduces the
// paper's reference counts (65M-98M for random/zipf). The 3x5 grid runs as
// independent cells on the experiment engine (--threads=<n>).
#include <cstdio>

#include "bench_common.h"
#include "exp/experiment.h"
#include "hierarchy/hierarchy.h"
#include "util/table.h"

using namespace ulc;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv, 0.1);
  const CostModel model = CostModel::paper_three_level();
  const char* traces[] = {"random", "zipf", "httpd", "dev1", "tpcc1"};

  std::printf("Figure 6: three-level hierarchy, single client\n");
  std::printf("links: client--1ms--server--0.2ms--array--10ms--disk\n\n");

  std::vector<exp::ExperimentSpec> specs;
  for (const char* name : traces) {
    const std::size_t cap = std::string(name) == "tpcc1" ? 6400 : 12800;
    const std::vector<std::size_t> caps(3, cap);
    struct Factory {
      const char* label;
      exp::SchemeFactory make;
    };
    const Factory factories[] = {
        {"indLRU", [caps](const Trace&) { return make_ind_lru(caps); }},
        {"uniLRU", [caps](const Trace&) { return make_uni_lru(caps); }},
        {"ULC", [caps](const Trace&) { return make_ulc(caps); }},
    };
    for (const Factory& f : factories) {
      exp::ExperimentSpec spec;
      spec.factory = f.make;
      spec.trace = {name, opt.scale, opt.seed};
      spec.model = model;
      spec.warmup_fraction = opt.warmup;
      spec.params["cap_blocks"] = static_cast<double>(cap);
      specs.push_back(std::move(spec));
    }
  }

  std::fprintf(stderr, "running %zu cells on %zu thread(s)...\n", specs.size(),
               opt.threads);
  const std::vector<exp::CellResult> cells = exp::run_matrix(specs, opt.matrix());

  TablePrinter hits({"trace", "scheme", "L1 hit", "L2 hit", "L3 hit", "miss"});
  TablePrinter demotions({"trace", "scheme", "demotion L1->L2", "demotion L2->L3"});
  TablePrinter times({"trace", "scheme", "T_ave (ms)", "hit part", "miss part",
                      "demotion part", "demotion share"});
  for (const exp::CellResult& cell : cells) {
    const RunResult& r = cell.run;
    hits.add_row({r.trace, r.scheme, fmt_percent(r.stats.hit_ratio(0), 1),
                  fmt_percent(r.stats.hit_ratio(1), 1),
                  fmt_percent(r.stats.hit_ratio(2), 1),
                  fmt_percent(r.stats.miss_ratio(), 1)});
    demotions.add_row({r.trace, r.scheme, fmt_percent(r.stats.demotion_ratio(0), 1),
                       fmt_percent(r.stats.demotion_ratio(1), 1)});
    const double share =
        r.t_ave_ms > 0 ? r.time.demotion_component / r.t_ave_ms : 0.0;
    times.add_row({r.trace, r.scheme, fmt_double(r.t_ave_ms, 3),
                   fmt_double(r.time.hit_component, 3),
                   fmt_double(r.time.miss_component, 3),
                   fmt_double(r.time.demotion_component, 3),
                   fmt_percent(share, 1)});
  }

  std::printf("(a) hit rates per level\n");
  bench::emit(hits, opt);
  std::printf("(b) demotion rates per boundary\n");
  bench::emit(demotions, opt);
  std::printf("(c) average access time breakdown\n");
  bench::emit(times, opt);
  bench::write_json(opt, "fig6_three_level", exp::results_to_json(cells));
  return 0;
}
