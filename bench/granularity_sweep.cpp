// Granularity sweep — byte-budget caching across block-size distributions.
//
// The paper evaluates unit-size blocks; this harness asks how the schemes
// rank once block size is a first-class dimension. The same two-level
// client/server hierarchy (Figure 7's setting, which all four schemes
// support) runs under four per-block size distributions:
//
//   unit       every block 1 unit — the paper's setting, the regression
//              anchor (byte budgets reduce exactly to block counts)
//   bimodal    metadata vs data: most blocks small, a fraction 8 units
//   heavytail  bounded-Pareto sizes — a few blocks dominate the bytes
//   streaming  manifest + sequential media segments with per-title
//              popularity churn (workloads/streaming.h)
//
// Capacities are byte budgets in SizeUnits, identical across distributions,
// so the same budget holds fewer blocks as blocks grow: the sweep shows each
// scheme's hit ratio (by reference and by byte) and its size-proportional
// T_ave as granularity shifts. Schemes: ULC vs indLRU, uniLRU, MQ.
//
// Cells run on the experiment engine; everything except wall_seconds /
// refs_per_sec is bit-identical across --threads values.
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "exp/experiment.h"
#include "hierarchy/hierarchy.h"
#include "trace/size_table.h"
#include "util/table.h"
#include "workloads/streaming.h"
#include "workloads/synthetic.h"

using namespace ulc;

namespace {

constexpr std::size_t kClientBudget = 2000;   // SizeUnits
constexpr std::size_t kServerBudget = 8000;   // SizeUnits
constexpr std::uint64_t kZipfBlocks = 20000;  // footprint of the zipf family

struct Distribution {
  const char* name;
  std::shared_ptr<const Trace> trace;
};

std::shared_ptr<const Trace> sized_zipf_trace(const char* name, std::uint64_t n_refs,
                                              std::uint64_t seed,
                                              const SizeTable* sizes) {
  auto src = make_zipf_source(0, kZipfBlocks, 0.9, /*scramble=*/true, 11);
  Trace t = generate(*src, n_refs, seed, name);
  if (sizes != nullptr) stamp_sizes(t, *sizes);
  return std::make_shared<const Trace>(std::move(t));
}

double mean_block_size(const Trace& t) {
  std::uint64_t total = 0;
  for (const Request& r : t) total += r.size;
  return t.empty() ? 0.0 : static_cast<double>(total) / static_cast<double>(t.size());
}

double byte_hit_ratio(const HierarchyStats& s) {
  std::uint64_t hit = 0;
  for (std::uint64_t b : s.level_hit_bytes) hit += b;
  const std::uint64_t total = hit + s.miss_bytes;
  return total == 0 ? 0.0 : static_cast<double>(hit) / static_cast<double>(total);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv, 0.1);
  const std::uint64_t n_refs =
      std::max<std::uint64_t>(static_cast<std::uint64_t>(2e6 * opt.scale), 10000);
  // Per-unit link cost = 0.25 * the link's per-message cost, so a mean-4-unit
  // block doubles the per-block transfer time.
  const CostModel model = CostModel::sized(CostModel::paper_two_level(), 0.25);

  const SizeTable bimodal = assign_bimodal_sizes(0, kZipfBlocks, 1, 8, 0.2, 5);
  const SizeTable heavy = assign_heavy_tail_sizes(0, kZipfBlocks, 1.2, 32, 5);

  StreamingConfig scfg;
  scfg.n_titles = 400;
  scfg.min_segments = 8;
  scfg.max_segments = 48;
  scfg.zipf_theta = 1.0;
  scfg.abandon_prob = 0.04;
  scfg.churn_period = 200;
  scfg.churn_step = 17;
  scfg.segment_size = 4;
  const SizeTable streaming_table = streaming_sizes(scfg);
  auto streaming_src = make_streaming_source(scfg);
  Trace streaming_trace = generate(*streaming_src, n_refs, opt.seed, "streaming");
  stamp_sizes(streaming_trace, streaming_table);

  const Distribution distributions[] = {
      {"unit", sized_zipf_trace("unit", n_refs, opt.seed, nullptr)},
      {"bimodal", sized_zipf_trace("bimodal", n_refs, opt.seed, &bimodal)},
      {"heavytail", sized_zipf_trace("heavytail", n_refs, opt.seed, &heavy)},
      {"streaming", std::make_shared<const Trace>(std::move(streaming_trace))},
  };

  std::printf("Granularity sweep: two-level client/server, byte budgets\n");
  std::printf("budgets: client %zu, server %zu SizeUnits; links 1ms/10ms "
              "+ 0.25x per unit\n\n",
              kClientBudget, kServerBudget);

  std::vector<exp::ExperimentSpec> specs;
  for (const Distribution& dist : distributions) {
    const std::vector<std::size_t> caps{kClientBudget, kServerBudget};
    struct Factory {
      const char* label;
      exp::SchemeFactory make;
    };
    const Factory factories[] = {
        {"indLRU", [caps](const Trace&) { return make_ind_lru(caps); }},
        {"uniLRU", [caps](const Trace&) { return make_uni_lru(caps); }},
        {"MQ",
         [](const Trace&) {
           return make_mq_hierarchy(kClientBudget, kServerBudget, 1);
         }},
        {"ULC", [caps](const Trace&) { return make_ulc(caps); }},
    };
    for (const Factory& f : factories) {
      exp::ExperimentSpec spec;
      spec.factory = f.make;
      spec.trace_override = dist.trace;
      spec.model = model;
      spec.warmup_fraction = opt.warmup;
      spec.params["client_budget"] = static_cast<double>(kClientBudget);
      spec.params["server_budget"] = static_cast<double>(kServerBudget);
      spec.params["mean_block_size"] = mean_block_size(*dist.trace);
      specs.push_back(std::move(spec));
    }
  }

  std::fprintf(stderr, "running %zu cells on %zu thread(s)...\n", specs.size(),
               opt.threads);
  const std::vector<exp::CellResult> cells = exp::run_matrix(specs, opt.matrix());

  TablePrinter table({"sizes", "scheme", "mean size", "L1 hit", "L2 hit", "miss",
                      "byte hit", "demotion L1->L2", "T_ave (ms)"});
  for (const exp::CellResult& cell : cells) {
    const RunResult& r = cell.run;
    table.add_row({r.trace, r.scheme, fmt_double(cell.params.at("mean_block_size"), 2),
                   fmt_percent(r.stats.hit_ratio(0), 1),
                   fmt_percent(r.stats.hit_ratio(1), 1),
                   fmt_percent(r.stats.miss_ratio(), 1),
                   fmt_percent(byte_hit_ratio(r.stats), 1),
                   fmt_percent(r.stats.demotion_ratio(0), 1),
                   fmt_double(r.t_ave_ms, 3)});
  }
  bench::emit(table, opt);
  bench::write_json(opt, "granularity_sweep", exp::results_to_json(cells));
  return 0;
}
