// The embeddable runtime: data integrity through the two-tier cache under
// every placement path, against a plain map reference — plus file-backed
// tiers and a multi-threaded stress run.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include <algorithm>
#include <atomic>

#include "proto/journal.h"
#include "runtime/block_cache.h"
#include "runtime/sharded_cache.h"
#include "runtime/tier.h"
#include "util/prng.h"
#include "workloads/streaming.h"
#include "workloads/synthetic.h"

namespace ulc {
namespace {

constexpr std::size_t kBlock = 512;  // small blocks keep tests quick

std::vector<std::byte> pattern(BlockId block, std::uint64_t version) {
  std::vector<std::byte> out(kBlock);
  SplitMix64 sm(block * 1000003 + version);
  for (std::size_t i = 0; i < kBlock; i += 8) {
    const std::uint64_t v = sm.next();
    std::memcpy(&out[i], &v, std::min<std::size_t>(8, kBlock - i));
  }
  return out;
}

TEST(Tiers, MemoryNearTierStoresAndEvicts) {
  auto tier = make_memory_near_tier(4, kBlock);
  const auto data = pattern(7, 1);
  tier->store(7, data);
  std::vector<std::byte> out(kBlock);
  ASSERT_TRUE(tier->fetch(7, out));
  EXPECT_EQ(std::memcmp(out.data(), data.data(), kBlock), 0);
  tier->evict(7);
  EXPECT_FALSE(tier->fetch(7, out));
}

TEST(Tiers, PinsAreRefcountedAndGateEviction) {
  auto tier = make_memory_near_tier(4, kBlock);
  tier->store(9, pattern(9, 1));
  tier->pin(9);
  tier->pin(9);  // pins nest: two writers may hold the block at once
  EXPECT_EQ(tier->pin_count(9), 2u);
  tier->unpin(9);
  EXPECT_EQ(tier->pin_count(9), 1u);
  tier->unpin(9);
  EXPECT_EQ(tier->pin_count(9), 0u);
  tier->evict(9);  // every pin released: eviction proceeds
  std::vector<std::byte> out(kBlock);
  EXPECT_FALSE(tier->fetch(9, out));
}

TEST(TierPinDeathTest, EvictingAPinnedBlockAborts) {
  auto tier = make_memory_near_tier(4, kBlock);
  tier->store(7, pattern(7, 1));
  tier->pin(7);
  EXPECT_DEATH(tier->evict(7), "pinned");
}

TEST(TierPinDeathTest, UnpinWithoutPinAborts) {
  auto tier = make_memory_near_tier(4, kBlock);
  EXPECT_DEATH(tier->unpin(3), "no pin");
}

TEST(Tiers, MemoryOriginZeroFills) {
  auto origin = make_memory_origin(kBlock);
  std::vector<std::byte> out(kBlock, std::byte{0xff});
  origin->read(42, out);
  for (std::byte b : out) EXPECT_EQ(b, std::byte{0});
}

TEST(Tiers, FileTiersRoundTrip) {
  const std::string near_path = ::testing::TempDir() + "/ulc_near.img";
  const std::string origin_path = ::testing::TempDir() + "/ulc_origin.img";
  std::remove(near_path.c_str());
  std::remove(origin_path.c_str());
  {
    auto near = make_file_near_tier(near_path, 8, kBlock);
    auto origin = make_file_origin(origin_path, kBlock);
    const auto a = pattern(1, 1);
    const auto b = pattern(2, 1);
    near->store(1, a);
    near->store(2, b);
    origin->write(5, a);
    std::vector<std::byte> out(kBlock);
    ASSERT_TRUE(near->fetch(1, out));
    EXPECT_EQ(std::memcmp(out.data(), a.data(), kBlock), 0);
    ASSERT_TRUE(near->fetch(2, out));
    EXPECT_EQ(std::memcmp(out.data(), b.data(), kBlock), 0);
    near->evict(1);
    EXPECT_FALSE(near->fetch(1, out));
    near->store(3, a);  // reuses the freed slot
    ASSERT_TRUE(near->fetch(3, out));
    origin->read(5, out);
    EXPECT_EQ(std::memcmp(out.data(), a.data(), kBlock), 0);
    origin->read(999, out);
    for (std::byte byte : out) EXPECT_EQ(byte, std::byte{0});
  }
  std::remove(near_path.c_str());
  std::remove(origin_path.c_str());
}

TEST(BlockCache, ReadThroughAndPromotion) {
  auto near = make_memory_near_tier(16, kBlock);
  auto origin = make_memory_origin(kBlock);
  const auto seed = pattern(3, 9);
  origin->write(3, seed);
  BlockCache cache(BlockCacheConfig{kBlock, 8}, *near, *origin);
  std::vector<std::byte> out(kBlock);
  cache.read(3, out);
  EXPECT_EQ(std::memcmp(out.data(), seed.data(), kBlock), 0);
  EXPECT_EQ(cache.stats().origin_reads, 1u);
  cache.read(3, out);  // now cached somewhere
  EXPECT_EQ(cache.stats().origin_reads, 1u);
  EXPECT_EQ(std::memcmp(out.data(), seed.data(), kBlock), 0);
}

TEST(BlockCache, WritesSurviveFlushToOrigin) {
  auto near = make_memory_near_tier(16, kBlock);
  auto origin = make_memory_origin(kBlock);
  {
    BlockCache cache(BlockCacheConfig{kBlock, 8}, *near, *origin);
    for (BlockId b = 0; b < 40; ++b) cache.write(b, pattern(b, 5));
    cache.flush();
  }
  std::vector<std::byte> out(kBlock);
  for (BlockId b = 0; b < 40; ++b) {
    origin->read(b, out);
    const auto want = pattern(b, 5);
    ASSERT_EQ(std::memcmp(out.data(), want.data(), kBlock), 0) << "block " << b;
  }
}

TEST(BlockCache, DestructorFlushes) {
  auto near = make_memory_near_tier(4, kBlock);
  auto origin = make_memory_origin(kBlock);
  {
    BlockCache cache(BlockCacheConfig{kBlock, 4}, *near, *origin);
    cache.write(1, pattern(1, 2));
  }  // ~BlockCache flushes
  std::vector<std::byte> out(kBlock);
  origin->read(1, out);
  const auto want = pattern(1, 2);
  EXPECT_EQ(std::memcmp(out.data(), want.data(), kBlock), 0);
}

// Integrity under churn: every read must observe the latest write, across
// promotions, demotions, discards and write-backs.
class BlockCacheIntegrityTest : public ::testing::TestWithParam<int> {};

TEST_P(BlockCacheIntegrityTest, ReadsAlwaysSeeLatestWrite) {
  auto near = make_memory_near_tier(24, kBlock);
  auto origin = make_memory_origin(kBlock);
  BlockCache cache(BlockCacheConfig{kBlock, 12}, *near, *origin);

  PatternPtr src;
  switch (GetParam()) {
    case 0:
      src = make_uniform_source(0, 200);
      break;
    case 1:
      src = make_zipf_source(0, 200, 1.0, true, 5);
      break;
    default:
      src = make_loop_source(0, 60);
      break;
  }
  Rng rng(77);
  std::map<BlockId, std::uint64_t> version;  // reference model
  std::vector<std::byte> out(kBlock);
  for (int i = 0; i < 8000; ++i) {
    const BlockId b = src->next(rng);
    if (rng.next_bool(0.35)) {
      const std::uint64_t v = ++version[b];
      cache.write(b, pattern(b, v));
    } else {
      cache.read(b, out);
      const auto want = pattern(b, version.count(b) ? version[b] : 0);
      // Version 0 = never written: origin zero-fills; pattern(b, 0) is not
      // zeroes, so handle that case separately.
      if (version.count(b)) {
        ASSERT_EQ(std::memcmp(out.data(), want.data(), kBlock), 0)
            << "step " << i << " block " << b;
      } else {
        for (std::byte byte : out) ASSERT_EQ(byte, std::byte{0});
      }
    }
  }
  // Everything dirty reaches the origin on flush.
  cache.flush();
  for (const auto& [b, v] : version) {
    origin->read(b, out);
    const auto want = pattern(b, v);
    ASSERT_EQ(std::memcmp(out.data(), want.data(), kBlock), 0) << "block " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, BlockCacheIntegrityTest,
                         ::testing::Values(0, 1, 2));

TEST(BlockCache, StatsAccounting) {
  auto near = make_memory_near_tier(8, kBlock);
  auto origin = make_memory_origin(kBlock);
  BlockCache cache(BlockCacheConfig{kBlock, 4}, *near, *origin);
  std::vector<std::byte> out(kBlock);
  for (BlockId b = 0; b < 4; ++b) cache.read(b, out);  // fill RAM tier
  for (BlockId b = 0; b < 4; ++b) cache.read(b, out);  // RAM hits
  const BlockCacheStats s = cache.stats();
  EXPECT_EQ(s.reads, 8u);
  EXPECT_EQ(s.origin_reads, 4u);
  EXPECT_EQ(s.memory_hits, 4u);
}

TEST(BlockCache, ConcurrentDisjointWriters) {
  auto near = make_memory_near_tier(64, kBlock);
  auto origin = make_memory_origin(kBlock);
  BlockCache cache(BlockCacheConfig{kBlock, 32}, *near, *origin);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 3000;
  constexpr BlockId kRange = 100;  // per-thread block range

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      Rng rng(1000 + t);
      std::vector<std::byte> out(kBlock);
      std::map<BlockId, std::uint64_t> version;
      const BlockId base = static_cast<BlockId>(t) * 10000;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const BlockId b = base + rng.next_below(kRange);
        if (rng.next_bool(0.4)) {
          cache.write(b, pattern(b, ++version[b]));
        } else {
          cache.read(b, out);
          if (version.count(b)) {
            const auto want = pattern(b, version[b]);
            ASSERT_EQ(std::memcmp(out.data(), want.data(), kBlock), 0);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const BlockCacheStats s = cache.stats();
  EXPECT_EQ(s.reads + s.writes,
            static_cast<std::uint64_t>(kThreads * kOpsPerThread));
}

TEST(BlockCache, FileBackedEndToEnd) {
  const std::string near_path = ::testing::TempDir() + "/ulc_bc_near.img";
  const std::string origin_path = ::testing::TempDir() + "/ulc_bc_origin.img";
  std::remove(near_path.c_str());
  std::remove(origin_path.c_str());
  {
    auto near = make_file_near_tier(near_path, 16, kBlock);
    auto origin = make_file_origin(origin_path, kBlock);
    BlockCache cache(BlockCacheConfig{kBlock, 8}, *near, *origin);
    std::vector<std::byte> out(kBlock);
    for (BlockId b = 0; b < 60; ++b) cache.write(b, pattern(b, 3));
    for (BlockId b = 0; b < 60; ++b) {
      cache.read(b, out);
      const auto want = pattern(b, 3);
      ASSERT_EQ(std::memcmp(out.data(), want.data(), kBlock), 0) << b;
    }
  }
  // Data persisted through the file origin.
  auto origin = make_file_origin(origin_path, kBlock);
  std::vector<std::byte> out(kBlock);
  for (BlockId b = 0; b < 60; ++b) {
    origin->read(b, out);
    const auto want = pattern(b, 3);
    ASSERT_EQ(std::memcmp(out.data(), want.data(), kBlock), 0) << b;
  }
  std::remove(near_path.c_str());
  std::remove(origin_path.c_str());
}

TEST(BlockCache, FlushIsIdempotent) {
  auto near = make_memory_near_tier(8, kBlock);
  auto origin = make_memory_origin(kBlock);
  BlockCache cache(BlockCacheConfig{kBlock, 4}, *near, *origin);
  cache.write(1, pattern(1, 1));
  cache.flush();
  const std::uint64_t after_first = cache.stats().writebacks;
  cache.flush();  // nothing dirty: no additional write-backs
  EXPECT_EQ(cache.stats().writebacks, after_first);
  // Re-dirty and flush again.
  cache.write(1, pattern(1, 2));
  cache.flush();
  EXPECT_EQ(cache.stats().writebacks, after_first + 1);
  std::vector<std::byte> out(kBlock);
  origin->read(1, out);
  const auto want = pattern(1, 2);
  EXPECT_EQ(std::memcmp(out.data(), want.data(), kBlock), 0);
}

TEST(BlockCache, JournalRecordsTheFullWritebackPipeline) {
  auto near = make_memory_near_tier(16, kBlock);
  auto origin = make_memory_origin(kBlock);
  // Declared before the cache so ~BlockCache's flush still finds it.
  WritebackJournal journal(WritebackJournal::Mode::kManual);
  BlockCache cache(BlockCacheConfig{kBlock, 8}, *near, *origin);
  cache.set_writeback_journal(&journal);
  // 60 blocks through 8 RAM buffers + 16 near slots: demotions, discards
  // and straight-through writes all reach the origin via the journal.
  for (BlockId b = 0; b < 60; ++b) cache.write(b, pattern(b, 5));
  cache.flush();
  const JournalStats js = journal.stats();
  EXPECT_GT(js.appended, 0u);
  EXPECT_EQ(js.appended, cache.stats().writebacks);
  EXPECT_EQ(js.acked, js.appended);
  EXPECT_EQ(js.lost_unacked, 0u);
  std::string why;
  EXPECT_TRUE(journal.laws_hold(why)) << why;
}

TEST(ShardedCache, IntegrityAcrossShards) {
  auto origin = make_memory_origin(kBlock);
  auto sync_origin = make_synchronized_origin(*origin);
  BlockCacheConfig cfg{kBlock, 8};
  ShardedBlockCache cache(
      cfg, 4, [](std::size_t) { return make_memory_near_tier(16, kBlock); },
      *sync_origin);
  std::vector<std::byte> out(kBlock);
  for (BlockId b = 0; b < 120; ++b) cache.write(b, pattern(b, 4));
  for (BlockId b = 0; b < 120; ++b) {
    cache.read(b, out);
    const auto want = pattern(b, 4);
    ASSERT_EQ(std::memcmp(out.data(), want.data(), kBlock), 0) << b;
  }
  cache.flush();
  for (BlockId b = 0; b < 120; ++b) {
    origin->read(b, out);
    const auto want = pattern(b, 4);
    ASSERT_EQ(std::memcmp(out.data(), want.data(), kBlock), 0) << b;
  }
  const BlockCacheStats s = cache.stats();
  EXPECT_EQ(s.reads + s.writes, 240u);
}

TEST(ShardedCache, ConcurrentMixedTraffic) {
  auto origin = make_memory_origin(kBlock);
  auto sync_origin = make_synchronized_origin(*origin);
  BlockCacheConfig cfg{kBlock, 16};
  ShardedBlockCache cache(
      cfg, 4, [](std::size_t) { return make_memory_near_tier(32, kBlock); },
      *sync_origin);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      Rng rng(500 + t);
      std::vector<std::byte> out(kBlock);
      std::map<BlockId, std::uint64_t> version;
      const BlockId base = static_cast<BlockId>(t) * 100000;
      for (int i = 0; i < 2500; ++i) {
        const BlockId b = base + rng.next_below(80);
        if (rng.next_bool(0.4)) {
          cache.write(b, pattern(b, ++version[b]));
        } else {
          cache.read(b, out);
          if (version.count(b)) {
            const auto want = pattern(b, version[b]);
            ASSERT_EQ(std::memcmp(out.data(), want.data(), kBlock), 0);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(cache.stats().reads + cache.stats().writes, 4u * 2500u);
}

TEST(ShardedCache, HitRateParityWithSingleShardOnUncorrelatedLoad) {
  // Zipf ids are uncorrelated with the shard hash, so 4 shards of 1/4 the
  // capacity should hit within a few points of one big shard.
  auto src = make_zipf_source(0, 400, 1.0, true, 9);
  Rng rng(3);
  std::vector<BlockId> refs;
  for (int i = 0; i < 20000; ++i) refs.push_back(src->next(rng));

  auto run = [&](std::size_t shards, std::size_t mem_per, std::size_t near_per) {
    auto origin = make_memory_origin(kBlock);
    auto sync = make_synchronized_origin(*origin);
    ShardedBlockCache cache(
        BlockCacheConfig{kBlock, mem_per}, shards,
        [&](std::size_t) { return make_memory_near_tier(near_per, kBlock); },
        *sync);
    std::vector<std::byte> out(kBlock);
    for (BlockId b : refs) cache.read(b, out);
    const BlockCacheStats s = cache.stats();
    return 1.0 - static_cast<double>(s.origin_reads) / static_cast<double>(s.reads);
  };
  const double one = run(1, 64, 128);
  const double four = run(4, 16, 32);
  EXPECT_NEAR(four, one, 0.05);
}

// Regression for the stats() torn-read bug: aggregating per-shard counters
// while reader/writer threads mutate them. The counters are now relaxed
// atomics, so a concurrent stats() poller must be race-free (this test is in
// the TSan CI job) and each counter must be monotone between polls.
TEST(ShardedCache, StatsAreTearFreeUnderConcurrentTraffic) {
  auto origin = make_memory_origin(kBlock);
  auto sync_origin = make_synchronized_origin(*origin);
  ShardedBlockCache cache(
      BlockCacheConfig{kBlock, 16}, 4,
      [](std::size_t) { return make_memory_near_tier(32, kBlock); },
      *sync_origin);

  std::atomic<bool> done{false};
  std::thread poller([&] {
    std::uint64_t last_ops = 0;
    while (!done.load(std::memory_order_relaxed)) {
      const BlockCacheStats s = cache.stats();
      const std::uint64_t ops = s.reads + s.writes;
      ASSERT_GE(ops, last_ops);
      ASSERT_LE(s.memory_hits + s.near_hits + s.origin_reads, ops);
      last_ops = ops;
    }
  });

  constexpr int kThreads = 3;
  constexpr int kOps = 4000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {
      Rng rng(77 + t);
      std::vector<std::byte> out(kBlock);
      for (int i = 0; i < kOps; ++i) {
        const BlockId b = rng.next_below(300);
        if (rng.next_bool(0.3)) {
          cache.write(b, pattern(b, 1));
        } else {
          cache.read(b, out);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  done.store(true, std::memory_order_relaxed);
  poller.join();
  EXPECT_EQ(cache.stats().reads + cache.stats().writes,
            static_cast<std::uint64_t>(kThreads * kOps));
}

// Regression for the raw-bit shard routing bug: the streaming catalogue is
// laid out as sequential runs of segment ids, exactly the structured id
// space that piled onto a few shards before routing went through the
// splitmix64 finalizer. Pin the balance over the whole catalogue footprint
// and over a generated reference stream, at several shard counts.
TEST(ShardedCache, StreamingWorkloadBalancesAcrossShards) {
  StreamingConfig wl;
  wl.n_titles = 400;
  wl.layout_seed = 11;
  const std::uint64_t footprint = streaming_footprint(wl);
  ASSERT_GT(footprint, 4000u);

  for (std::size_t shards : {2u, 4u, 8u}) {
    auto origin = make_memory_origin(kBlock);
    auto sync_origin = make_synchronized_origin(*origin);
    ShardedBlockCache cache(
        BlockCacheConfig{kBlock, 1}, shards,
        [](std::size_t) { return make_memory_near_tier(1, kBlock); },
        *sync_origin);

    // Footprint balance: every catalogue block, weighted once.
    std::vector<std::uint64_t> per_shard(shards, 0);
    for (BlockId b = 0; b < footprint; ++b) ++per_shard[cache.shard_of(b)];
    const double mean =
        static_cast<double>(footprint) / static_cast<double>(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      EXPECT_NEAR(static_cast<double>(per_shard[s]), mean, 0.15 * mean)
          << "footprint imbalance at " << shards << " shards, shard " << s;
    }

    // Reference balance: Zipf popularity concentrates on hot titles, but a
    // title's segments spread over all shards, so no shard may dominate.
    auto src = make_streaming_source(wl);
    Rng rng(5);
    std::vector<std::uint64_t> per_shard_refs(shards, 0);
    constexpr int kRefs = 30000;
    for (int i = 0; i < kRefs; ++i) ++per_shard_refs[cache.shard_of(src->next(rng))];
    const double ref_mean = static_cast<double>(kRefs) / static_cast<double>(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      EXPECT_LT(static_cast<double>(per_shard_refs[s]), 2.0 * ref_mean)
          << "reference pile-up at " << shards << " shards, shard " << s;
    }
  }
}

class RecordingOrigin final : public Origin {
 public:
  explicit RecordingOrigin(Origin& inner) : inner_(inner) {}
  void read(BlockId block, std::span<std::byte> out) override {
    inner_.read(block, out);
  }
  void write(BlockId block, std::span<const std::byte> data) override {
    writes.push_back(block);
    inner_.write(block, data);
  }
  std::vector<BlockId> writes;

 private:
  Origin& inner_;
};

// Regression for the flush-ordering bug: flushing shard 0's dirty set, then
// shard 1's, interleaves origin write-back by shard index, so the origin's
// write sequence depended on the shard count. A quiescent flush must write
// strictly in ascending global block order (matching BlockCache::flush),
// whatever the sharding.
TEST(ShardedCache, FlushWritesBackInGlobalBlockOrder) {
  for (std::size_t shards : {1u, 3u, 4u}) {
    auto origin = make_memory_origin(kBlock);
    RecordingOrigin recording(*origin);
    auto sync_origin = make_synchronized_origin(recording);
    ShardedBlockCache cache(
        BlockCacheConfig{kBlock, 8}, shards,
        [](std::size_t) { return make_memory_near_tier(16, kBlock); },
        *sync_origin);

    // Dirty a scrambled id space (eviction write-backs during the fill are
    // not part of the contract; drop them before flushing).
    Rng rng(21);
    for (int i = 0; i < 200; ++i)
      cache.write(1 + rng.next_below(150), pattern(i, 9));
    recording.writes.clear();

    cache.flush();
    ASSERT_GT(recording.writes.size(), 10u) << shards << " shards";
    EXPECT_TRUE(std::is_sorted(recording.writes.begin(), recording.writes.end()))
        << "out-of-order flush at " << shards << " shards";
    EXPECT_EQ(std::adjacent_find(recording.writes.begin(), recording.writes.end()),
              recording.writes.end())
        << "duplicate write-back at " << shards << " shards";

    // Idempotence: everything dirty was flushed.
    recording.writes.clear();
    cache.flush();
    EXPECT_TRUE(recording.writes.empty());
  }
}

// Versioned pattern with the identity embedded in the first 16 bytes, so a
// reader that races writers can recover which write it observed and verify
// the block arrived whole (no torn interleaving of two versions).
std::vector<std::byte> versioned_pattern(BlockId block, std::uint64_t version) {
  std::vector<std::byte> out(kBlock);
  std::memcpy(out.data(), &block, 8);
  std::memcpy(out.data() + 8, &version, 8);
  SplitMix64 gen(block * 0x10001ULL + version * 0x9e3779b9ULL);
  for (std::size_t i = 16; i < kBlock; i += 8) {
    const std::uint64_t v = gen.next();
    std::memcpy(&out[i], &v, std::min<std::size_t>(8, kBlock - i));
  }
  return out;
}

// The serving stress suite: N writers + M readers + a flush/stats thread over
// a shared block range. Readers must always observe a complete version some
// writer produced; after the threads quiesce, a final flush must leave the
// origin holding exactly each block's last version (single-shard semantics:
// one writer owns each block, so "last" is well defined).
TEST(ShardedCache, ConcurrentStressAgainstReference) {
  auto origin = make_memory_origin(kBlock);
  auto sync_origin = make_synchronized_origin(*origin);
  ShardedBlockCache cache(
      BlockCacheConfig{kBlock, 16}, 4,
      [](std::size_t) { return make_memory_near_tier(32, kBlock); },
      *sync_origin);

  constexpr int kWriters = 3;
  constexpr int kReaders = 2;
  constexpr int kOps = 2500;
  constexpr BlockId kPerWriter = 120;
  constexpr BlockId kRange = kWriters * kPerWriter;

  std::vector<std::vector<std::uint64_t>> last_version(
      kWriters, std::vector<std::uint64_t>(kPerWriter, 0));
  std::atomic<bool> done{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&cache, &last_version, w] {
      Rng rng(900 + w);
      const BlockId base = static_cast<BlockId>(w) * kPerWriter;
      for (int i = 0; i < kOps; ++i) {
        const BlockId off = rng.next_below(kPerWriter);
        const std::uint64_t v = ++last_version[w][off];
        cache.write(base + off, versioned_pattern(base + off, v));
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&cache, r, &done] {
      Rng rng(7000 + r);
      std::vector<std::byte> out(kBlock);
      while (!done.load(std::memory_order_relaxed)) {
        const BlockId b = rng.next_below(kRange);
        cache.read(b, out);
        BlockId got_block = 0;
        std::uint64_t got_version = 0;
        std::memcpy(&got_block, out.data(), 8);
        std::memcpy(&got_version, out.data() + 8, 8);
        if (got_block == 0 && got_version == 0) continue;  // not yet written
        ASSERT_EQ(got_block, b);
        const auto want = versioned_pattern(b, got_version);
        ASSERT_EQ(std::memcmp(out.data(), want.data(), kBlock), 0)
            << "torn read of block " << b << " version " << got_version;
      }
    });
  }
  std::thread maintainer([&cache, &done] {
    while (!done.load(std::memory_order_relaxed)) {
      cache.flush();
      (void)cache.stats();
    }
  });

  for (int w = 0; w < kWriters; ++w) threads[w].join();
  done.store(true, std::memory_order_relaxed);
  for (int t = kWriters; t < kWriters + kReaders; ++t) threads[t].join();
  maintainer.join();

  // Quiescent flush, then the origin must hold every block's final version.
  cache.flush();
  std::vector<std::byte> out(kBlock);
  for (int w = 0; w < kWriters; ++w) {
    for (BlockId off = 0; off < kPerWriter; ++off) {
      const std::uint64_t v = last_version[w][off];
      if (v == 0) continue;
      const BlockId b = static_cast<BlockId>(w) * kPerWriter + off;
      origin->read(b, out);
      const auto want = versioned_pattern(b, v);
      ASSERT_EQ(std::memcmp(out.data(), want.data(), kBlock), 0)
          << "origin lost block " << b << " final version " << v;
    }
  }
}

// Single-shard reference equivalence: the same deterministic operation
// sequence through four shards and through one BlockCache must leave the
// two origins byte-identical after a flush (per-block caching decisions
// differ; durable contents must not).
TEST(ShardedCache, MatchesSingleShardReferenceOnSameSequence) {
  constexpr BlockId kRange = 300;
  struct Op {
    bool write;
    BlockId block;
    std::uint64_t version;
  };
  Rng rng(13);
  std::vector<Op> ops;
  std::uint64_t next_version = 0;
  for (int i = 0; i < 4000; ++i)
    ops.push_back(Op{rng.next_bool(0.5), rng.next_below(kRange), ++next_version});

  auto run_sharded = [&](std::size_t shards) {
    auto origin = make_memory_origin(kBlock);
    auto sync = make_synchronized_origin(*origin);
    ShardedBlockCache cache(
        BlockCacheConfig{kBlock, 8}, shards,
        [](std::size_t) { return make_memory_near_tier(16, kBlock); }, *sync);
    std::vector<std::byte> out(kBlock);
    for (const Op& op : ops) {
      if (op.write) {
        cache.write(op.block, versioned_pattern(op.block, op.version));
      } else {
        cache.read(op.block, out);
      }
    }
    cache.flush();
    std::vector<std::byte> image;
    for (BlockId b = 0; b < kRange; ++b) {
      origin->read(b, out);
      image.insert(image.end(), out.begin(), out.end());
    }
    return image;
  };

  EXPECT_EQ(run_sharded(4), run_sharded(1));
}

}  // namespace
}  // namespace ulc
