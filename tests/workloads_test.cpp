#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "workloads/paper_presets.h"
#include "workloads/streaming.h"
#include "workloads/synthetic.h"

namespace ulc {
namespace {

TEST(Synthetic, UniformCoversRange) {
  auto src = make_uniform_source(100, 50);
  Trace t = generate(*src, 20000, 1, "u");
  std::unordered_set<BlockId> seen;
  for (const Request& r : t) {
    ASSERT_GE(r.block, 100u);
    ASSERT_LT(r.block, 150u);
    seen.insert(r.block);
  }
  EXPECT_EQ(seen.size(), 50u);
}

TEST(Synthetic, LoopIsExactCycle) {
  auto src = make_loop_source(10, 5);
  Trace t = generate(*src, 12, 1, "loop");
  const BlockId expect[] = {10, 11, 12, 13, 14, 10, 11, 12, 13, 14, 10, 11};
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i].block, expect[i]);
}

TEST(Synthetic, NestedLoopScansWholeScopes) {
  std::vector<LoopScope> scopes{{0, 4, 1.0}, {100, 3, 1.0}};
  auto src = make_nested_loop_source(std::move(scopes));
  Trace t = generate(*src, 300, 3, "nl");
  // Every maximal run from a scope must be a full in-order scan.
  std::size_t i = 0;
  while (i < t.size()) {
    const std::uint64_t base = t[i].block < 100 ? 0 : 100;
    const std::uint64_t len = base == 0 ? 4 : 3;
    if (i + len > t.size()) break;
    for (std::uint64_t k = 0; k < len; ++k)
      ASSERT_EQ(t[i + k].block, base + k) << "at " << i + k;
    i += len;
  }
}

TEST(Synthetic, ZipfIsSkewed) {
  auto src = make_zipf_source(0, 1000, 1.0, /*scramble=*/false, 1);
  Trace t = generate(*src, 50000, 5, "z");
  std::unordered_map<BlockId, int> counts;
  for (const Request& r : t) ++counts[r.block];
  // Rank 0 should dominate rank 100 roughly 100:1 under theta=1.
  EXPECT_GT(counts[0], counts[100] * 20);
}

TEST(Synthetic, ZipfScrambleDecorrelatesIds) {
  auto plain = make_zipf_source(0, 1000, 1.0, false, 1);
  auto scrambled = make_zipf_source(0, 1000, 1.0, true, 9);
  Trace tp = generate(*plain, 20000, 5, "p");
  Trace ts = generate(*scrambled, 20000, 5, "s");
  std::unordered_map<BlockId, int> cs;
  for (const Request& r : ts) ++cs[r.block];
  // The most popular scrambled block is almost surely not id 0.
  BlockId hottest = 0;
  int best = -1;
  // Argmax over counts: order-insensitive, nothing emitted.
  for (auto& [b, n] : cs) {  // ulc-lint: allow(unordered-iteration)
    if (n > best) {
      best = n;
      hottest = b;
    }
  }
  EXPECT_NE(hottest, 0u);
}

TEST(Synthetic, TemporalIsLruFriendly) {
  auto src = make_temporal_source(0, 2000, 0.1, 5.0);
  Trace t = generate(*src, 30000, 7, "t");
  // Count re-references that land within a short LRU window.
  std::vector<BlockId> stack;
  std::uint64_t rerefs = 0, near = 0;
  for (const Request& r : t) {
    auto it = std::find(stack.begin(), stack.end(), r.block);
    if (it != stack.end()) {
      ++rerefs;
      if (static_cast<std::size_t>(it - stack.begin()) < 200) ++near;
      stack.erase(it);
    }
    stack.insert(stack.begin(), r.block);
  }
  ASSERT_GT(rerefs, 10000u);
  EXPECT_GT(static_cast<double>(near) / static_cast<double>(rerefs), 0.5);
}

TEST(Synthetic, FileServerReadsWholeFiles) {
  FileServerConfig cfg;
  cfg.n_files = 50;
  cfg.mean_file_blocks = 4.0;
  cfg.max_file_blocks = 16;
  cfg.layout_seed = 3;
  auto src = make_file_server_source(cfg);
  Trace t = generate(*src, 5000, 11, "fs");
  const std::uint64_t footprint = file_server_footprint(cfg);
  EXPECT_GT(footprint, 50u);
  // Block ids stay inside the layout, and consecutive blocks within a file
  // request ascend by one.
  std::uint64_t ascending = 0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    ASSERT_LT(t[i].block, footprint);
    if (t[i].block == t[i - 1].block + 1) ++ascending;
  }
  EXPECT_GT(ascending, t.size() / 2);  // mean file length 4 => ~3/4 ascending
}

TEST(Synthetic, MixtureUsesAllSources) {
  std::vector<PatternPtr> sources;
  sources.push_back(make_loop_source(0, 10));
  sources.push_back(make_uniform_source(1000, 10));
  auto src = make_mixture_source(std::move(sources), {0.5, 0.5});
  Trace t = generate(*src, 4000, 13, "mix");
  std::size_t low = 0, high = 0;
  for (const Request& r : t) (r.block < 1000 ? low : high) += 1;
  EXPECT_NEAR(static_cast<double>(low) / 4000.0, 0.5, 0.05);
  EXPECT_NEAR(static_cast<double>(high) / 4000.0, 0.5, 0.05);
}

TEST(Synthetic, PhasesCycleInOrder) {
  std::vector<PatternPtr> sources;
  sources.push_back(make_loop_source(0, 5));
  sources.push_back(make_loop_source(100, 5));
  auto src = make_phase_source(std::move(sources), {10, 20});
  Trace t = generate(*src, 60, 17, "ph");
  for (std::size_t i = 0; i < 10; ++i) ASSERT_LT(t[i].block, 100u);
  for (std::size_t i = 10; i < 30; ++i) ASSERT_GE(t[i].block, 100u);
  for (std::size_t i = 30; i < 40; ++i) ASSERT_LT(t[i].block, 100u);
}

TEST(Synthetic, MultiClientRatesRespected) {
  std::vector<PatternPtr> sources;
  sources.push_back(make_uniform_source(0, 10));
  sources.push_back(make_uniform_source(0, 10));
  Trace t = generate_multi(std::move(sources), {3.0, 1.0}, 20000, 19, "mc");
  std::size_t c0 = 0;
  for (const Request& r : t) c0 += r.client == 0 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(c0) / 20000.0, 0.75, 0.02);
}

TEST(Streaming, SeededDeterminismAndLayoutCoverage) {
  StreamingConfig cfg;
  cfg.n_titles = 40;
  cfg.min_segments = 4;
  cfg.max_segments = 12;
  cfg.manifest_size = 2;
  cfg.segment_size = 5;
  auto a = make_streaming_source(cfg);
  auto b = make_streaming_source(cfg);
  const Trace ta = generate(*a, 8000, 21, "sa");
  const Trace tb = generate(*b, 8000, 21, "sb");
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) ASSERT_EQ(ta[i].block, tb[i].block);
  // A different reference seed picks different sessions.
  auto c = make_streaming_source(cfg);
  const Trace tc = generate(*c, 8000, 22, "sc");
  std::size_t differ = 0;
  for (std::size_t i = 0; i < tc.size(); ++i) differ += tc[i].block != ta[i].block;
  EXPECT_GT(differ, 0u);

  // The size table covers the whole catalogue layout, nothing else, and every
  // block is either a manifest or a segment.
  const std::uint64_t footprint = streaming_footprint(cfg);
  const SizeTable sizes = streaming_sizes(cfg);
  EXPECT_EQ(sizes.entries(), footprint);
  std::uint64_t manifests = 0;
  for (std::uint64_t id = 0; id < footprint; ++id) {
    const SizeUnits s = sizes.size_of(cfg.base + id);
    ASSERT_TRUE(s == cfg.manifest_size || s == cfg.segment_size);
    manifests += s == cfg.manifest_size;
  }
  EXPECT_EQ(manifests, cfg.n_titles);
  for (const Request& r : ta) ASSERT_LT(r.block - cfg.base, footprint);
}

TEST(Streaming, SessionsAreSequentialSegmentRuns) {
  StreamingConfig cfg;
  cfg.n_titles = 30;
  cfg.min_segments = 3;
  cfg.max_segments = 10;
  cfg.abandon_prob = 0.15;
  cfg.manifest_size = 2;  // distinguishes manifests from segments below
  cfg.segment_size = 5;
  auto src = make_streaming_source(cfg);
  const Trace t = generate(*src, 6000, 31, "seq");
  const SizeTable sizes = streaming_sizes(cfg);
  for (std::size_t i = 0; i < t.size(); ++i) {
    const bool manifest = sizes.size_of(t[i].block) == cfg.manifest_size;
    if (i > 0 && !manifest) {
      // Segments only ever continue the run their manifest started.
      ASSERT_EQ(t[i].block, t[i - 1].block + 1) << "at " << i;
    }
    if (manifest && i + 1 < t.size()) {
      // The viewer never quits on the manifest alone: at least one segment.
      ASSERT_EQ(t[i + 1].block, t[i].block + 1) << "at " << i;
    }
  }
}

TEST(Streaming, PopularityChurnMovesTheHotTitle) {
  StreamingConfig cfg;
  cfg.n_titles = 50;
  cfg.min_segments = 3;
  cfg.max_segments = 6;
  cfg.zipf_theta = 1.2;
  cfg.manifest_size = 2;
  cfg.segment_size = 4;
  cfg.churn_period = 60;  // rotate the ranking every 60 sessions
  cfg.churn_step = 11;
  auto src = make_streaming_source(cfg);
  const Trace t = generate(*src, 40000, 41, "churn");
  const SizeTable sizes = streaming_sizes(cfg);
  // Hottest manifest over the first vs last tenth of the trace.
  auto hottest = [&](std::size_t lo, std::size_t hi) {
    std::unordered_map<BlockId, int> counts;
    for (std::size_t i = lo; i < hi; ++i)
      if (sizes.size_of(t[i].block) == cfg.manifest_size) ++counts[t[i].block];
    BlockId best = 0;
    int best_n = -1;
    // Argmax over counts: order-insensitive, nothing emitted.
    for (auto& [b, n] : counts)  // ulc-lint: allow(unordered-iteration)
      if (n > best_n) best_n = n, best = b;
    return best;
  };
  EXPECT_NE(hottest(0, t.size() / 10), hottest(9 * t.size() / 10, t.size()));

  // Without churn the same config keeps its hot title end to end.
  cfg.churn_period = 0;
  auto stable = make_streaming_source(cfg);
  const Trace s = generate(*stable, 40000, 41, "stable");
  auto hottest_s = [&](std::size_t lo, std::size_t hi) {
    std::unordered_map<BlockId, int> counts;
    for (std::size_t i = lo; i < hi; ++i)
      if (sizes.size_of(s[i].block) == cfg.manifest_size) ++counts[s[i].block];
    BlockId best = 0;
    int best_n = -1;
    // Argmax over counts: order-insensitive, nothing emitted.
    for (auto& [b, n] : counts)  // ulc-lint: allow(unordered-iteration)
      if (n > best_n) best_n = n, best = b;
    return best;
  };
  EXPECT_EQ(hottest_s(0, s.size() / 10), hottest_s(9 * s.size() / 10, s.size()));
}

TEST(Presets, Deterministic) {
  const Trace a = preset_cs(1);
  const Trace b = preset_cs(1);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 1000) ASSERT_EQ(a[i], b[i]);
}

TEST(Presets, SmallTraceShapes) {
  const TraceStats cs = compute_stats(preset_cs());
  EXPECT_EQ(cs.unique_blocks, 1300u);
  EXPECT_EQ(cs.references, 130000u);

  const TraceStats glimpse = compute_stats(preset_glimpse());
  EXPECT_LE(glimpse.unique_blocks, 3000u);
  EXPECT_GE(glimpse.unique_blocks, 2000u);

  const TraceStats sprite = compute_stats(preset_sprite());
  EXPECT_GT(sprite.unique_blocks, 3000u);
  EXPECT_LE(sprite.unique_blocks, 7000u);
}

TEST(Presets, ScaledLargeTraces) {
  const Trace r = preset_random_large(0.01, 1);
  const TraceStats rs = compute_stats(r);
  EXPECT_EQ(rs.references, 650000u);
  EXPECT_GT(rs.unique_blocks, 60000u);  // nearly all of 65536 touched
  EXPECT_LE(rs.max_block, 65535u);

  const Trace z = preset_zipf_large(0.01, 1);
  EXPECT_EQ(z.size(), 980000u);
}

TEST(Presets, Tpcc1IsLoopDominated) {
  const Trace t = preset_tpcc1(0.03, 1);
  std::size_t in_loop = 0;
  for (const Request& r : t) in_loop += r.block < 12000 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(in_loop) / static_cast<double>(t.size()), 0.98,
              0.01);
}

TEST(Presets, MultiClientClientCounts) {
  const TraceStats h = compute_stats(preset_httpd_multi(0.02, 1));
  EXPECT_EQ(h.clients, 7u);
  EXPECT_GT(h.shared_blocks, 1000u);  // web workload shares hot files

  const TraceStats m = compute_stats(preset_openmail(0.02, 1));
  EXPECT_EQ(m.clients, 6u);
  EXPECT_EQ(m.shared_blocks, 0u);  // per-user mail stores: no sharing

  const TraceStats d = compute_stats(preset_db2(0.02, 1));
  EXPECT_EQ(d.clients, 8u);
  EXPECT_GT(d.shared_blocks, 0u);  // shared catalog
}

TEST(Presets, RegistryCoversAllNames) {
  for (const std::string& name : preset_names()) {
    const Trace t = make_preset(name, 0.01, 1);
    EXPECT_FALSE(t.empty()) << name;
  }
}

}  // namespace
}  // namespace ulc
