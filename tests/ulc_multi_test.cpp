#include <gtest/gtest.h>

#include "hierarchy/hierarchy.h"
#include "hierarchy/runner.h"
#include "ulc/glru_server.h"
#include "ulc/ulc_client.h"
#include "workloads/synthetic.h"

namespace ulc {
namespace {

TEST(GlruServer, PlaceEvictsGlobalLruBottomWithOwner) {
  GlruServer s(2);
  EXPECT_FALSE(s.place(1, 0).evicted);
  EXPECT_FALSE(s.place(2, 1).evicted);
  const auto r = s.place(3, 0);
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.victim, 1u);
  EXPECT_EQ(r.victim_owner, 0u);
  EXPECT_TRUE(s.contains(2));
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.check_consistency());
}

TEST(GlruServer, RefreshUpdatesRecencyAndOwner) {
  GlruServer s(2);
  s.place(1, 0);
  s.place(2, 1);
  EXPECT_TRUE(s.refresh(1, 1));  // block 1 now most recent, owned by client 1
  EXPECT_EQ(s.owner_of(1), 1u);
  const auto r = s.place(3, 0);
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.victim, 2u);  // 1 was refreshed, so 2 is the bottom
  EXPECT_FALSE(s.refresh(99, 0));
}

TEST(GlruServer, PlaceOfSharedBlockTransfersOwnership) {
  GlruServer s(4);
  s.place(7, 0);
  const auto r = s.place(7, 1);
  EXPECT_FALSE(r.evicted);
  EXPECT_EQ(s.owner_of(7), 1u);
  EXPECT_EQ(s.size(), 1u);  // single copy
}

TEST(GlruServer, TakeRemovesExclusively) {
  GlruServer s(2);
  s.place(1, 0);
  EXPECT_TRUE(s.take(1));
  EXPECT_FALSE(s.contains(1));
  EXPECT_FALSE(s.take(1));
  EXPECT_EQ(s.size(), 0u);
}

TEST(GlruServer, OwnedByCounts) {
  GlruServer s(4);
  s.place(1, 0);
  s.place(2, 0);
  s.place(3, 1);
  EXPECT_EQ(s.owned_by(0), 2u);
  EXPECT_EQ(s.owned_by(1), 1u);
  EXPECT_EQ(s.owned_by(9), 0u);
}

TEST(UlcClientElastic, ExternalEvictShrinksServerView) {
  UlcConfig cfg;
  cfg.capacities = {1, 0};
  cfg.last_level_elastic = true;
  UlcClient c(cfg);
  c.access(1);  // L0
  c.access(2);  // elastic level 1 (server has room)
  c.access(3);  // elastic level 1
  EXPECT_EQ(c.level_size(1), 2u);
  c.external_evict(2);
  EXPECT_EQ(c.level_size(1), 1u);
  EXPECT_FALSE(c.is_cached(2));
  EXPECT_EQ(c.stats().external_evictions, 1u);
  EXPECT_TRUE(c.check_consistency());
}

TEST(UlcClientElastic, FullServerMakesColdBlocksUncached) {
  UlcConfig cfg;
  cfg.capacities = {1, 0};
  cfg.last_level_elastic = true;
  UlcClient c(cfg);
  c.access(1);
  c.access(2);
  c.set_elastic_full(true);
  const UlcAccess& a = c.access(3);
  EXPECT_EQ(a.placed_level, kLevelOut);
  EXPECT_FALSE(c.is_cached(3));
}

// Full multi-client scheme: correctness of the driver + server wiring.
TEST(UlcMulti, SingleClientApproximatesTwoLevelUlc) {
  // With one client, multi-client ULC is the single-client two-level engine
  // with one deliberate difference: the server victim comes from gLRU
  // (ordered by cache-request times) rather than being exactly the client's
  // yardstick Y2 — the orders diverge slightly for demoted blocks. Hit and
  // demotion counts must agree to within a small tolerance.
  auto src = make_zipf_source(0, 500, 0.9, true, 3);
  const Trace t = generate(*src, 30000, 7, "z");
  auto multi = make_ulc_multi(/*client_cap=*/64, /*server_cap=*/128, 1);
  auto single = make_ulc({64, 128});
  for (const Request& r : t) {
    multi->access(r);
    single->access(r);
  }
  // L1 is driven purely by the client engine: identical by construction.
  EXPECT_EQ(multi->stats().level_hits[0], single->stats().level_hits[0]);
  const double n = static_cast<double>(t.size());
  EXPECT_NEAR(static_cast<double>(multi->stats().level_hits[1]) / n,
              static_cast<double>(single->stats().level_hits[1]) / n, 0.01);
  EXPECT_NEAR(static_cast<double>(multi->stats().misses) / n,
              static_cast<double>(single->stats().misses) / n, 0.01);
  EXPECT_NEAR(static_cast<double>(multi->stats().demotions[0]) / n,
              static_cast<double>(single->stats().demotions[0]) / n, 0.02);
}

TEST(UlcMulti, DynamicPartitionFollowsWorkingSets) {
  // Client 0 re-uses a large set (needs server space); client 1 re-uses a
  // set that fits its own cache (needs none). gLRU should give most of the
  // server to client 0.
  std::vector<PatternPtr> sources;
  sources.push_back(make_loop_source(0, 300));     // client 0: large loop
  sources.push_back(make_zipf_source(10000, 64, 1.2, true, 5));  // client 1: tiny hot set
  const Trace t =
      generate_multi(std::move(sources), {1.0, 1.0}, 40000, 9, "parts");
  auto scheme = make_ulc_multi(/*client_cap=*/64, /*server_cap=*/256, 2);
  for (const Request& r : t) scheme->access(r);
  // Inspect the server partition through a second run with direct access to
  // the objects (the factory hides them), via stats instead: client 1's
  // traffic should be nearly all L1 hits, client 0 should own the server.
  const HierarchyStats& s = scheme->stats();
  EXPECT_GT(s.level_hits[1], 0u);
  // Most references hit somewhere: client 1 in its cache, client 0 via the
  // server-backed loop.
  const double total_hit = s.total_hit_ratio();
  EXPECT_GT(total_hit, 0.8);
}

TEST(UlcMulti, SharedBlocksServedFromServer) {
  // Two clients alternate over the same set, sized to fit the server but
  // not a client cache: the second client's requests should find the
  // blocks the first client placed at the server.
  std::vector<PatternPtr> sources;
  sources.push_back(make_loop_source(0, 100));
  sources.push_back(make_loop_source(0, 100));
  const Trace t =
      generate_multi(std::move(sources), {1.0, 1.0}, 30000, 11, "shared");
  auto scheme = make_ulc_multi(/*client_cap=*/16, /*server_cap=*/512, 2);
  for (const Request& r : t) scheme->access(r);
  const HierarchyStats& s = scheme->stats();
  EXPECT_GT(s.hit_ratio(1), 0.3);  // the shared loop lives at the server
  EXPECT_GT(s.total_hit_ratio(), 0.7);
}

TEST(UlcMulti, EvictionNoticesAreCounted) {
  // Server far smaller than the combined demand, with churning placements
  // (zipf re-references at many distances): placements displace other
  // clients' blocks, generating delayed owner notices.
  std::vector<PatternPtr> sources;
  sources.push_back(make_zipf_source(0, 2000, 0.8, true, 5));
  sources.push_back(make_zipf_source(10000, 2000, 0.8, true, 9));
  const Trace t =
      generate_multi(std::move(sources), {1.0, 1.0}, 30000, 13, "contend");
  auto scheme = make_ulc_multi(/*client_cap=*/32, /*server_cap=*/128, 2);
  for (const Request& r : t) scheme->access(r);
  EXPECT_GT(scheme->stats().eviction_notices, 100u);
}

TEST(UlcMulti, TempLruServesQuickReuseAtClientSpeed) {
  // With per-client tempLRU buffers, a block re-touched immediately after a
  // pass-through is served at L1 speed (counted as an L1 hit) even though
  // ULC declined to cache it there.
  std::vector<PatternPtr> sources;
  // Alternating double-touches of fresh blocks: b, b, b', b', ...
  struct DoubleTouch final : public PatternSource {
    BlockId next(Rng&) override {
      const BlockId b = 1000 + counter_ / 2;
      ++counter_;
      return b;
    }
    std::uint64_t counter_ = 0;
  };
  sources.push_back(std::make_unique<DoubleTouch>());
  const Trace t = generate_multi(std::move(sources), {1.0}, 4000, 3, "dt");

  auto with_temp = make_ulc_multi(/*client_cap=*/32, /*server_cap=*/64, 1,
                                  /*temp_capacity=*/8);
  auto without = make_ulc_multi(32, 64, 1, 0);
  for (const Request& r : t) {
    with_temp->access(r);
    without->access(r);
  }
  // Every second touch lands in the tempLRU; without it those are misses
  // (the hierarchy is full of once-touched blocks).
  EXPECT_GT(with_temp->stats().hit_ratio(0), 0.4);
  EXPECT_LT(without->stats().hit_ratio(0), 0.1);
}

TEST(UlcMulti, WarmupFillsServerBeforeDeclaringFull) {
  // Cold blocks go to the client first, then the server, then become L_out:
  // the server ends exactly full, never over.
  auto src = make_scan_source(0, 10000);
  const Trace t = generate(*src, 400, 1, "scan");
  auto scheme = make_ulc_multi(64, 128, 1);
  for (const Request& r : t) scheme->access(r);
  // 400 distinct cold blocks > 64 + 128: everything was a miss...
  EXPECT_EQ(scheme->stats().misses, 400u);
  // ...and a second pass hits exactly the cached 192.
  auto src2 = make_scan_source(0, 10000);
  Rng rng(1);
  std::uint64_t hits = 0;
  for (int i = 0; i < 400; ++i) {
    const std::uint64_t before =
        scheme->stats().level_hits[0] + scheme->stats().level_hits[1];
    scheme->access(Request{src2->next(rng), 0});
    const std::uint64_t after =
        scheme->stats().level_hits[0] + scheme->stats().level_hits[1];
    hits += after - before;
  }
  EXPECT_EQ(hits, 192u);
}

}  // namespace
}  // namespace ulc
