// Cross-cutting randomized sweep: every single-client scheme run side by
// side over randomized workloads, seeds and cache shapes, checking the
// global accounting and structural sanity properties that must hold for
// *any* correct multi-level caching scheme — plus the cross-scheme
// relations this library guarantees by construction.
#include <gtest/gtest.h>

#include "hierarchy/hierarchy.h"
#include "hierarchy/runner.h"
#include "replacement/cache_policy.h"
#include "util/prng.h"
#include "workloads/synthetic.h"

namespace ulc {
namespace {

struct SweepCase {
  std::uint64_t seed;
  int workload;
  std::vector<std::size_t> caps;
  double write_fraction;
};

PatternPtr make_workload(int kind, std::uint64_t seed) {
  switch (kind) {
    case 0:
      return make_uniform_source(0, 500);
    case 1:
      return make_zipf_source(0, 500, 1.0, true, seed);
    case 2:
      return make_loop_source(0, 200);
    case 3:
      return make_temporal_source(0, 500, 0.12, 3.5);
    default: {
      std::vector<PatternPtr> sources;
      sources.push_back(make_loop_source(0, 120));
      sources.push_back(make_zipf_source(1000, 300, 0.9, true, seed + 1));
      sources.push_back(make_scan_source(5000, 2000));
      return make_mixture_source(std::move(sources), {0.4, 0.4, 0.2});
    }
  }
}

class SchemeSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(SchemeSweepTest, GlobalAccountingHoldsForEveryScheme) {
  const SweepCase& sc = GetParam();
  auto src = make_workload(sc.workload, sc.seed);
  Trace t = generate(*src, 12000, sc.seed, "sweep");
  if (sc.write_fraction > 0) t = with_writes(t, sc.write_fraction, sc.seed + 7);
  const std::size_t writes = compute_stats(t).writes;

  std::vector<SchemePtr> schemes;
  schemes.push_back(make_ind_lru(sc.caps));
  schemes.push_back(make_uni_lru(sc.caps));
  schemes.push_back(make_reload_uni_lru(sc.caps));
  schemes.push_back(make_ulc(sc.caps));
  schemes.push_back(make_opt_layout(sc.caps, t));

  std::size_t aggregate = 0;
  for (std::size_t c : sc.caps) aggregate += c;

  double best_online_hits = 0.0;
  double opt_hits = 0.0;
  std::uint64_t uni_hits = 0, reload_hits = 0;
  for (SchemePtr& scheme : schemes) {
    for (const Request& r : t) scheme->access(r);
    const HierarchyStats& s = scheme->stats();

    // Accounting: every reference is a hit at exactly one level or a miss.
    std::uint64_t total = s.misses;
    for (auto h : s.level_hits) total += h;
    ASSERT_EQ(total, s.references) << scheme->name();
    ASSERT_EQ(s.references, t.size()) << scheme->name();

    // Write-backs can never exceed writes.
    ASSERT_LE(s.writebacks, writes) << scheme->name();

    // Demotion counters only exist on interior boundaries.
    for (std::size_t b = 0; b + 1 < sc.caps.size(); ++b)
      ASSERT_LE(s.demotions[b], 3 * s.references) << scheme->name();

    const double hit = s.total_hit_ratio();
    if (std::string(scheme->name()) == "OPT-layout") {
      opt_hits = hit;
    } else {
      best_online_hits = std::max(best_online_hits, hit);
    }
    if (std::string(scheme->name()) == "uniLRU") uni_hits = total - s.misses;
    if (std::string(scheme->name()) == "reloadLRU") reload_hits = total - s.misses;
  }

  // Belady dominance over every on-line scheme.
  EXPECT_GE(opt_hits + 1e-9, best_online_hits);
  // reloadLRU is uniLRU with a different cost structure: identical hits.
  EXPECT_EQ(uni_hits, reload_hits);
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  const std::vector<std::vector<std::size_t>> shapes = {
      {40, 40}, {20, 60, 120}, {64, 16, 16}, {10, 10, 10, 10}};
  Rng rng(2026);
  for (int w = 0; w < 5; ++w) {
    for (const auto& caps : shapes) {
      cases.push_back(SweepCase{rng.next_u64() % 1000 + 1, w, caps,
                                (w % 2 == 0) ? 0.0 : 0.3});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Shapes, SchemeSweepTest,
                         ::testing::ValuesIn(sweep_cases()));

}  // namespace
}  // namespace ulc
