// Write-request handling: placement is identical to reads (paper §5), but
// dirty blocks leaving the hierarchy must be written back to disk.
#include <gtest/gtest.h>

#include "hierarchy/hierarchy.h"
#include "hierarchy/runner.h"
#include "proto/journal.h"
#include "trace/trace.h"
#include "trace/trace_io.h"
#include "util/prng.h"
#include "workloads/synthetic.h"

namespace ulc {
namespace {

TEST(Writes, WithWritesMarksRequestedFraction) {
  auto src = make_uniform_source(0, 100);
  const Trace t = with_writes(generate(*src, 20000, 1, "u"), 0.3, 7);
  const TraceStats s = compute_stats(t);
  EXPECT_NEAR(static_cast<double>(s.writes) / 20000.0, 0.3, 0.02);
  // Deterministic.
  const Trace t2 = with_writes(generate(*src, 20000, 1, "u"), 0.3, 7);
  for (std::size_t i = 0; i < t.size(); i += 333) EXPECT_EQ(t[i], t2[i]);
}

TEST(Writes, TraceIoRoundTripsOps) {
  Trace t("ops");
  t.add(1, 0, Op::kRead);
  t.add(2, 1, Op::kWrite);
  t.add(3, 0, Op::kWrite);
  const std::string text = ::testing::TempDir() + "/ulc_ops.txt";
  const std::string bin = ::testing::TempDir() + "/ulc_ops.bin";
  std::string err;
  ASSERT_TRUE(save_trace_text(t, text, &err)) << err;
  ASSERT_TRUE(save_trace_binary(t, bin, &err)) << err;
  for (const std::string& path : {text, bin}) {
    auto loaded = path == text ? load_trace_text(path, &err)
                               : load_trace_binary(path, &err);
    ASSERT_TRUE(loaded.has_value()) << err;
    ASSERT_EQ(loaded->size(), 3u);
    EXPECT_EQ((*loaded)[0].op, Op::kRead);
    EXPECT_EQ((*loaded)[1].op, Op::kWrite);
    EXPECT_EQ((*loaded)[1].client, 1u);
    EXPECT_EQ((*loaded)[2].op, Op::kWrite);
  }
  std::remove(text.c_str());
  std::remove(bin.c_str());
}

TEST(Writeback, UniLruWritesBackDirtyEvictions) {
  // All-write loop larger than the aggregate: every eviction is dirty.
  auto src = make_loop_source(0, 300);
  const Trace t = with_writes(generate(*src, 10000, 1, "loop"), 1.0, 3);
  auto uni = make_uni_lru({100, 100});
  for (const Request& r : t) uni->access(r);
  const HierarchyStats& s = uni->stats();
  // Once warm, each miss evicts one dirty block.
  EXPECT_GT(s.writebacks, s.misses - 400);
  EXPECT_LE(s.writebacks, s.misses);
}

TEST(Writeback, CleanTrafficWritesNothing) {
  auto src = make_loop_source(0, 300);
  const Trace t = generate(*src, 10000, 1, "loop");  // all reads
  auto uni = make_uni_lru({100, 100});
  auto ulc = make_ulc({100, 100});
  for (const Request& r : t) {
    uni->access(r);
    ulc->access(r);
  }
  EXPECT_EQ(uni->stats().writebacks, 0u);
  EXPECT_EQ(ulc->stats().writebacks, 0u);
}

TEST(Writeback, UlcUncachedWritesGoStraightToDisk) {
  // Fill the hierarchy, then write to fresh (never-cached) blocks: ULC gives
  // them L_out status, so every such write is an immediate write-through.
  auto warm = make_loop_source(0, 20);
  Trace t("w");
  {
    Rng rng(1);
    for (int i = 0; i < 40; ++i) t.add(warm->next(rng), 0, Op::kRead);
    for (BlockId b = 1000; b < 1050; ++b) t.add(b, 0, Op::kWrite);
  }
  auto ulc = make_ulc({10, 10});
  for (const Request& r : t) ulc->access(r);
  EXPECT_EQ(ulc->stats().writebacks, 50u);
}

TEST(Writeback, UlcDirtyDiscardIsWrittenBack) {
  // Mixed load with writes over a churning working set: discarded-dirty
  // blocks must be written back; total writebacks never exceed writes.
  auto src = make_zipf_source(0, 400, 0.8, true, 5);
  const Trace t = with_writes(generate(*src, 30000, 7, "z"), 0.4, 9);
  auto ulc = make_ulc({40, 40});
  for (const Request& r : t) ulc->access(r);
  const HierarchyStats& s = ulc->stats();
  EXPECT_GT(s.writebacks, 0u);
  EXPECT_LE(s.writebacks, compute_stats(t).writes);
}

TEST(Writeback, ReloadSchemeWritesBackBeforeDroppingDirty) {
  // Under eviction-based placement a dirty block cannot be silently dropped
  // and reloaded (the disk copy is stale): crossings of dirty blocks add
  // writebacks on top of uniLRU's.
  auto src = make_loop_source(0, 150);
  const Trace t = with_writes(generate(*src, 20000, 1, "loop"), 1.0, 11);
  auto reload = make_reload_uni_lru({100, 100});
  auto uni = make_uni_lru({100, 100});
  for (const Request& r : t) {
    reload->access(r);
    uni->access(r);
  }
  EXPECT_GT(reload->stats().writebacks, uni->stats().writebacks);
}

TEST(Writeback, CostModelReportsWritebackDiskTime) {
  HierarchyStats s;
  s.resize(2);
  s.references = 100;
  s.level_hits = {60, 20};
  s.misses = 20;
  s.writebacks = 10;
  const CostModel m{{1.0, 10.0}};
  const AccessTimeBreakdown b = compute_access_time(s, m);
  EXPECT_DOUBLE_EQ(b.writeback_disk_ms, 0.1 * 10.0);
  // Off the critical path: not part of total().
  EXPECT_DOUBLE_EQ(b.total(),
                   b.hit_component + b.miss_component + b.demotion_component);
}

TEST(Writeback, MultiClientUlcServerEvictions) {
  // Two clients writing over sets larger than client+server: gLRU evictions
  // of dirty blocks must be written back.
  std::vector<PatternPtr> sources;
  sources.push_back(make_zipf_source(0, 800, 0.7, true, 3));
  sources.push_back(make_zipf_source(10000, 800, 0.7, true, 5));
  Trace t = generate_multi(std::move(sources), {1.0, 1.0}, 30000, 13, "mw");
  t = with_writes(t, 0.5, 15);
  auto scheme = make_ulc_multi(32, 128, 2);
  for (const Request& r : t) scheme->access(r);
  EXPECT_GT(scheme->stats().writebacks, 0u);
}

// ---- Write-back journal: epoch-stamped append/write/ack lifecycle ----

TEST(Journal, SynchronousModeAcksInAppendOrder) {
  WritebackJournal j;  // synchronous: append implies written + acked
  const std::uint64_t s1 = j.append(7, 0, 4);
  const std::uint64_t s2 = j.append(9, 1, 1);
  EXPECT_EQ(s1, 1u);
  EXPECT_EQ(s2, 2u);
  EXPECT_EQ(j.state_of(s1), JournalEntryState::kAcked);
  EXPECT_EQ(j.state_of(s2), JournalEntryState::kAcked);
  EXPECT_EQ(j.stats().appended, 2u);
  EXPECT_EQ(j.stats().appended_bytes, 5u);
  EXPECT_EQ(j.stats().acked, 2u);
  EXPECT_EQ(j.pending(), 0u);
  std::string why;
  EXPECT_TRUE(j.laws_hold(why)) << why;
  const auto replay = j.replay();
  ASSERT_EQ(replay.size(), 2u);
  EXPECT_EQ(replay[0].seq, s1);
  EXPECT_EQ(replay[1].seq, s2);
}

TEST(Journal, ManualModeTracksTheAckPipeline) {
  WritebackJournal j(WritebackJournal::Mode::kManual);
  const std::uint64_t s1 = j.append(7, 0, 2);
  EXPECT_EQ(j.state_of(s1), JournalEntryState::kPending);
  EXPECT_EQ(j.pending(), 1u);
  j.mark_written(s1);
  EXPECT_EQ(j.state_of(s1), JournalEntryState::kWritten);
  j.ack(s1);
  EXPECT_EQ(j.state_of(s1), JournalEntryState::kAcked);
  EXPECT_EQ(j.pending(), 0u);
  std::string why;
  EXPECT_TRUE(j.laws_hold(why)) << why;
}

TEST(Journal, AckOfAnUnwrittenEntryViolatesTheLaw) {
  WritebackJournal j(WritebackJournal::Mode::kManual);
  const std::uint64_t s1 = j.append(7, 0, 1);
  j.ack(s1);  // never marked written
  EXPECT_EQ(j.stats().ack_before_write, 1u);
  std::string why;
  EXPECT_FALSE(j.laws_hold(why));
  EXPECT_NE(why.find("before"), std::string::npos);
}

TEST(Journal, OutOfOrderAcksViolateThePrefixLaw) {
  WritebackJournal j(WritebackJournal::Mode::kManual);
  const std::uint64_t s1 = j.append(7, 0, 1);
  const std::uint64_t s2 = j.append(9, 0, 1);
  j.mark_written(s1);
  j.mark_written(s2);
  j.ack(s2);
  j.ack(s1);  // acked behind an already-acked later entry
  EXPECT_EQ(j.stats().replay_reorders, 1u);
  std::string why;
  EXPECT_FALSE(j.laws_hold(why));
}

TEST(Journal, CrashWipesUnackedEntriesAndBumpsTheEpoch) {
  WritebackJournal j(WritebackJournal::Mode::kManual);
  const std::uint64_t s1 = j.append(7, 1, 3);
  const std::uint64_t s2 = j.append(9, 1, 2);
  const std::uint64_t s3 = j.append(11, 0, 1);  // another level: survives
  j.mark_written(s1);
  j.ack(s1);
  EXPECT_EQ(j.epoch(), 0u);
  const auto wiped = j.crash_wipe(1);
  EXPECT_EQ(wiped.entries, 1u);  // s2 only: s1 was already acked
  EXPECT_EQ(wiped.bytes, 2u);
  EXPECT_EQ(j.epoch(), 1u);
  EXPECT_EQ(j.state_of(s1), JournalEntryState::kAcked);
  EXPECT_EQ(j.state_of(s2), JournalEntryState::kLost);
  EXPECT_EQ(j.state_of(s3), JournalEntryState::kPending);
  EXPECT_EQ(j.stats().lost_unacked, 1u);
  EXPECT_EQ(j.stats().lost_unacked_bytes, 2u);
  EXPECT_EQ(j.stats().lost_acked, 0u);
  // An acknowledged write is never lost: the laws still hold after a crash.
  std::string why;
  EXPECT_TRUE(j.laws_hold(why)) << why;
  // Replay returns exactly the acknowledged prefix, in ack order.
  const auto replay = j.replay();
  ASSERT_EQ(replay.size(), 1u);
  EXPECT_EQ(replay[0].seq, s1);
  // New appends carry the post-crash epoch.
  const std::uint64_t s4 = j.append(13, 1, 1);
  EXPECT_EQ(j.entries()[s4 - 1].epoch, 1u);
}

TEST(Journal, RecordLossCountsDirtyDataLostOutsideThePipeline) {
  WritebackJournal j(WritebackJournal::Mode::kManual);
  j.record_loss(5, 0, 3);
  EXPECT_EQ(j.stats().dirty_lost, 1u);
  EXPECT_EQ(j.stats().dirty_lost_bytes, 3u);
  std::string why;
  EXPECT_TRUE(j.laws_hold(why)) << why;  // a narrated loss is not a law break
}

TEST(Journal, SchemeWritebacksAllReachTheJournal) {
  // Every scheme's write-back counter must equal its journal appends, with
  // byte-accurate sizes, across the whole family.
  auto src = make_zipf_source(0, 400, 0.8, true, 5);
  const Trace t = with_writes(generate(*src, 20000, 7, "z"), 0.4, 9);
  std::vector<SchemePtr> schemes;
  schemes.push_back(make_uni_lru({40, 40}));
  schemes.push_back(make_ulc({40, 40}));
  schemes.push_back(make_ind_lru({40, 40}));
  schemes.push_back(make_reload_uni_lru({40, 40}));
  schemes.push_back(make_uni_lru_multi(40, 80, 1, UniLruInsertion::kMru));
  schemes.push_back(make_ulc_multi(40, 80, 1));
  schemes.push_back(make_ulc_multi_three(32, 48, 64, 1));
  schemes.push_back(make_mq_hierarchy(40, 80, 1));
  for (SchemePtr& s : schemes) {
    WritebackJournal j;
    s->set_writeback_journal(&j);
    for (const Request& r : t) s->access(r);
    EXPECT_EQ(j.stats().appended, s->stats().writebacks) << s->name();
    EXPECT_EQ(j.stats().acked, j.stats().appended) << s->name();
    EXPECT_GT(j.stats().appended, 0u) << s->name();
    std::string why;
    EXPECT_TRUE(j.laws_hold(why)) << s->name() << ": " << why;
  }
}

}  // namespace
}  // namespace ulc

