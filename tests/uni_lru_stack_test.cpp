#include <gtest/gtest.h>

#include "ulc/uni_lru_stack.h"

namespace ulc {
namespace {

TEST(UniLruStack, PushAndFind) {
  UniLruStack s(2);
  auto* a = s.push_top(1, 0);
  auto* b = s.push_top(2, 0);
  EXPECT_EQ(s.find(1), a);
  EXPECT_EQ(s.find(2), b);
  EXPECT_EQ(s.find(3), nullptr);
  EXPECT_EQ(s.head(), b);
  EXPECT_EQ(s.tail(), a);
  EXPECT_EQ(s.level_size(0), 2u);
  EXPECT_TRUE(s.check_consistency());
}

TEST(UniLruStack, YardstickIsDeepestOfLevel) {
  UniLruStack s(2);
  auto* a = s.push_top(1, 0);
  s.push_top(2, 1);
  auto* c = s.push_top(3, 0);
  EXPECT_EQ(s.yard(0), a);  // deepest level-0 block
  EXPECT_EQ(s.yard(1), s.find(2));
  // Re-reference a (the yardstick): departure walks up to c.
  s.yardstick_departure(a);
  s.move_to_top(a);
  EXPECT_EQ(s.yard(0), c);
  EXPECT_TRUE(s.check_consistency());
}

TEST(UniLruStack, SingleBlockLevelKeepsYardstickOnMove) {
  UniLruStack s(2);
  auto* a = s.push_top(1, 0);
  s.push_top(2, 1);
  // a is the only level-0 block; moving it to the top keeps it yardstick.
  s.move_to_top(a);
  EXPECT_EQ(s.yard(0), a);
  EXPECT_TRUE(s.check_consistency());
}

TEST(UniLruStack, SetLevelUpdatesCountsAndYardstick) {
  UniLruStack s(3);
  auto* a = s.push_top(1, 0);
  auto* b = s.push_top(2, 0);
  // Demote the deepest (a) to level 1.
  s.yardstick_departure(a);
  s.set_level(a, 1);
  EXPECT_EQ(s.level_size(0), 1u);
  EXPECT_EQ(s.level_size(1), 1u);
  EXPECT_EQ(s.yard(0), b);
  EXPECT_EQ(s.yard(1), a);  // DemotionSearching: a is deepest level-1 block
  // Demote b too: it is shallower than a, so a stays yardstick of level 1.
  s.yardstick_departure(b);
  s.set_level(b, 1);
  EXPECT_EQ(s.yard(1), a);
  EXPECT_EQ(s.yard(0), nullptr);
  EXPECT_TRUE(s.check_consistency());
}

TEST(UniLruStack, RecencyStatusFromYardsticks) {
  UniLruStack s(2);
  auto* a = s.push_top(1, 0);   // will be deepest
  auto* b = s.push_top(2, 1);
  auto* c = s.push_top(3, 0);
  auto* d = s.push_top(4, 1);
  // Stack (top->bottom): d c b a. Y0 = a (bottom), Y1 = b.
  EXPECT_EQ(s.recency_status(d), 0u);  // above Y1? d.seq >= Y1.seq -> wait:
  // recency_status = smallest level whose yardstick is at/below the node.
  // Y0 = a is below everything, so every node has status 0 here.
  EXPECT_EQ(s.recency_status(c), 0u);
  EXPECT_EQ(s.recency_status(b), 0u);
  EXPECT_EQ(s.recency_status(a), 0u);
  // Demote a to level 1: now Y0 = c, Y1 = a.
  s.yardstick_departure(a);
  s.set_level(a, 1);
  EXPECT_EQ(s.recency_status(d), 0u);  // above Y0=c
  EXPECT_EQ(s.recency_status(c), 0u);  // is Y0
  EXPECT_EQ(s.recency_status(b), 1u);  // below Y0, above Y1
  EXPECT_EQ(s.recency_status(a), 1u);  // is Y1
  EXPECT_TRUE(s.check_consistency());
}

TEST(UniLruStack, RecencyStatusOutBelowAllYardsticks) {
  UniLruStack s(1);
  auto* a = s.push_top(1, kLevelOut);
  s.push_top(2, 0);
  // a (uncached) is below the only yardstick -> status out... but the
  // yardstick (block 2) is ABOVE a, so a's status is out.
  EXPECT_EQ(s.recency_status(a), kLevelOut);
}

TEST(UniLruStack, PruneDropsUncachedTail) {
  UniLruStack s(1);
  auto* a = s.push_top(1, kLevelOut);
  auto* b = s.push_top(2, 0);
  s.push_top(3, kLevelOut);
  // Tail is a (uncached, below yardstick b): prune removes it; block 3 is
  // above the yardstick and stays.
  EXPECT_EQ(s.prune(), 1u);
  EXPECT_EQ(s.find(1), nullptr);
  EXPECT_NE(s.find(3), nullptr);
  EXPECT_EQ(s.tail(), b);
  EXPECT_TRUE(s.check_consistency());
  (void)a;
}

TEST(UniLruStack, PruneStopsAtCachedBlock) {
  UniLruStack s(2);
  s.push_top(1, kLevelOut);
  s.push_top(2, 0);  // cached block above the uncached tail... wait: deeper
  // Stack: 2(top, L0), 1(bottom, out). Yardstick Y0 = 2.
  // Tail (1) is uncached and below Y0: pruned.
  EXPECT_EQ(s.prune(), 1u);
  // Now make an uncached block sit ABOVE the deepest yardstick:
  auto* c = s.push_top(3, kLevelOut);
  EXPECT_EQ(s.prune(), 0u);  // tail is the yardstick itself, nothing to drop
  EXPECT_NE(s.find(3), nullptr);
  (void)c;
}

TEST(UniLruStack, RemoveRequiresUncached) {
  UniLruStack s(1);
  auto* a = s.push_top(1, 0);
  s.yardstick_departure(a);
  s.set_level(a, kLevelOut);
  s.remove(a);
  EXPECT_EQ(s.find(1), nullptr);
  EXPECT_EQ(s.stack_size(), 0u);
  EXPECT_TRUE(s.check_consistency());
}

// The prune loop's stop boundary is exact: a node is dropped only when its
// seq is *strictly* below the deepest yardstick's. tail_->seq == min_seq
// means the tail is that yardstick itself (sequence numbers are unique) and
// it must survive. With no yardsticks left there is no boundary at all and
// the whole stack drains.
TEST(UniLruStack, PruneTailBoundaryAtDeepestYardstickSeq) {
  UniLruStack s(2);
  auto* y1 = s.push_top(1, 1);  // deepest yardstick (minimal yardstick seq)
  s.push_top(2, kLevelOut);     // uncached, above y1: must survive
  auto* y0 = s.push_top(3, 0);  // shallower yardstick (larger seq)
  ASSERT_EQ(s.tail(), y1);
  EXPECT_EQ(s.prune(), 0u);  // tail seq == min yardstick seq: kept
  EXPECT_EQ(s.tail(), y1);
  EXPECT_NE(s.find(2), nullptr);

  // Evict the deepest yardstick out of the hierarchy: the ex-yardstick now
  // sits at the tail strictly below the remaining yardstick, so prune
  // drains it together with block 2 (also below y0).
  s.yardstick_departure(y1);
  s.set_level(y1, kLevelOut);
  EXPECT_EQ(s.prune(), 2u);
  EXPECT_EQ(s.find(1), nullptr);
  EXPECT_EQ(s.find(2), nullptr);
  EXPECT_EQ(s.tail(), y0);
  EXPECT_TRUE(s.check_consistency());

  // No yardsticks at all: every uncached node is unreachable and drains.
  s.yardstick_departure(y0);
  s.set_level(y0, kLevelOut);
  EXPECT_EQ(s.prune(), 1u);
  EXPECT_EQ(s.stack_size(), 0u);
  EXPECT_TRUE(s.check_consistency());
}

// I4 (per-level occupancy <= capacity) is a *between-cascades* invariant:
// mid-cascade the level that just received a block transiently holds
// capacity+1 entries and check_consistency(&caps) must report it, while the
// structural invariants (no capacities argument) hold at every step. Each
// cascade stage hands the overflow one level down until the bottom victim
// leaves the hierarchy, which restores I4.
TEST(UniLruStack, ConsistencyCapacitiesDuringDemotionCascade) {
  UniLruStack s(2);
  const std::vector<std::size_t> caps{1, 1};
  auto* a = s.push_top(1, 1);  // L1 resident (and its yardstick)
  auto* b = s.push_top(2, 0);  // L0 resident (and its yardstick)
  EXPECT_TRUE(s.check_consistency(&caps));

  s.push_top(3, 0);  // new block placed at L0: transient L0 overflow
  EXPECT_FALSE(s.check_consistency(&caps));
  EXPECT_TRUE(s.check_consistency());

  // Cascade stage 1: demote L0's victim into L1 — the overflow moves down.
  s.yardstick_departure(b);
  s.set_level(b, 1);
  EXPECT_FALSE(s.check_consistency(&caps));
  EXPECT_TRUE(s.check_consistency());

  // Cascade stage 2: L1's victim leaves the hierarchy; I4 is restored.
  s.yardstick_departure(a);
  s.set_level(a, kLevelOut);
  EXPECT_TRUE(s.check_consistency(&caps));
  EXPECT_EQ(s.level_size(0), 1u);
  EXPECT_EQ(s.level_size(1), 1u);
}

// Slab-backing regression: Node* values handed out by push_top()/find()
// must stay valid across arbitrary later growth (pages never move). This
// pins the no-iterator/pointer-invalidation contract the Node*-shaped API
// depends on.
TEST(UniLruStack, NodePointersStableAcrossGrowth) {
  UniLruStack s(1);
  auto* first = s.push_top(0, 0);
  const BlockId first_block = first->block;
  // Push far past several slab pages (default page = 1024 nodes).
  for (BlockId b = 1; b <= 5000; ++b) s.push_top(b, kLevelOut);
  EXPECT_EQ(s.find(0), first);  // same address, not just same block
  EXPECT_EQ(first->block, first_block);
  EXPECT_EQ(first->level, 0u);
  EXPECT_GT(s.slab_pages(), 1u);
  EXPECT_TRUE(s.check_consistency());
}

// Shrink path: grow the stack across many pages, shrink the working set
// back to a handful of early-allocated blocks, and check that (a) the
// logical invariants (stack_size, level counts, yardstick) hold across the
// shrink and (b) the slab returns its emptied trailing pages.
TEST(UniLruStack, PruneReleasesSlabPagesAfterMassEviction) {
  UniLruStack s(1);
  const BlockId n = 8192;
  for (BlockId b = 0; b < n; ++b) s.push_top(b, 0);
  EXPECT_EQ(s.stack_size(), n);
  EXPECT_EQ(s.level_size(0), n);
  const std::size_t grown_pages = s.slab_pages();
  EXPECT_GE(grown_pages, 8u);

  // Evict every block except the 16 oldest (which occupy the slab's first
  // page) out of the hierarchy.
  for (BlockId b = 16; b < n; ++b) {
    auto* v = s.find(b);
    ASSERT_NE(v, nullptr);
    s.yardstick_departure(v);
    s.set_level(v, kLevelOut);
  }
  // The uncached nodes are above the yardstick (still re-rankable), so they
  // are not prunable yet.
  EXPECT_EQ(s.prune(), 0u);
  EXPECT_EQ(s.stack_size(), n);

  // Re-reference the survivors: the yardstick walks above the uncached
  // nodes, which now lie below it and drain on the next prune.
  for (BlockId b = 0; b < 16; ++b) {
    auto* v = s.find(b);
    ASSERT_NE(v, nullptr);
    s.yardstick_departure(v);
    s.move_to_top(v);
  }
  const std::size_t removed = s.prune();
  EXPECT_EQ(removed, static_cast<std::size_t>(n - 16));
  EXPECT_EQ(s.stack_size(), 16u);
  EXPECT_EQ(s.level_size(0), 16u);
  EXPECT_LT(s.slab_pages(), grown_pages);  // trailing pages released
  EXPECT_GT(s.slab_stats().pages_released, 0u);
  EXPECT_TRUE(s.check_consistency());

  // The survivors are fully functional after the shrink.
  for (BlockId b = 0; b < 16; ++b) ASSERT_NE(s.find(b), nullptr);
  auto* y = s.yard(0);
  ASSERT_NE(y, nullptr);
  EXPECT_EQ(y->block, 0u);
  s.push_top(n + 1, 0);
  EXPECT_TRUE(s.check_consistency());
}

TEST(UniLruStack, ConsistencyWithCapacities) {
  UniLruStack s(2);
  s.push_top(1, 0);
  s.push_top(2, 0);
  s.push_top(3, 1);
  std::vector<std::size_t> caps{2, 1};
  EXPECT_TRUE(s.check_consistency(&caps));
  std::vector<std::size_t> tight{1, 1};
  EXPECT_FALSE(s.check_consistency(&tight));  // level 0 over capacity
}

}  // namespace
}  // namespace ulc
