#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "order/order_statistic_list.h"
#include "order/segmented_list.h"
#include "trace/types.h"
#include "util/prng.h"

namespace ulc {
namespace {

TEST(OrderStatisticList, InsertFrontBackAndAt) {
  OrderStatisticList list;
  auto a = list.insert_back(10);
  auto b = list.insert_back(20);
  auto c = list.insert_front(5);
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.value(list.at(0)), 5u);
  EXPECT_EQ(list.value(list.at(1)), 10u);
  EXPECT_EQ(list.value(list.at(2)), 20u);
  EXPECT_EQ(list.rank(a), 1u);
  EXPECT_EQ(list.rank(b), 2u);
  EXPECT_EQ(list.rank(c), 0u);
  EXPECT_TRUE(list.check_consistency());
}

TEST(OrderStatisticList, InsertAtMiddle) {
  OrderStatisticList list;
  list.insert_back(1);
  list.insert_back(3);
  auto h = list.insert_at(1, 2);
  EXPECT_EQ(list.rank(h), 1u);
  EXPECT_EQ(list.value(list.at(1)), 2u);
  EXPECT_TRUE(list.check_consistency());
}

TEST(OrderStatisticList, EraseMaintainsRanks) {
  OrderStatisticList list;
  std::vector<OrderStatisticList::Handle> hs;
  for (std::uint64_t i = 0; i < 10; ++i) hs.push_back(list.insert_back(i));
  list.erase(hs[4]);
  EXPECT_EQ(list.size(), 9u);
  EXPECT_EQ(list.rank(hs[5]), 4u);
  EXPECT_EQ(list.value(list.at(4)), 5u);
  EXPECT_TRUE(list.check_consistency());
}

TEST(OrderStatisticList, MoveRepositions) {
  OrderStatisticList list;
  std::vector<OrderStatisticList::Handle> hs;
  for (std::uint64_t i = 0; i < 6; ++i) hs.push_back(list.insert_back(i));
  list.move(hs[5], 0);  // 5 0 1 2 3 4
  EXPECT_EQ(list.rank(hs[5]), 0u);
  EXPECT_EQ(list.rank(hs[0]), 1u);
  list.move(hs[5], 5);  // back to the end
  EXPECT_EQ(list.rank(hs[5]), 5u);
  EXPECT_EQ(list.rank(hs[0]), 0u);
  list.move(hs[2], 3);
  EXPECT_EQ(list.value(list.at(3)), 2u);
  EXPECT_TRUE(list.check_consistency());
}

// Property sweep: random ops mirrored against a std::vector reference.
class OrderStatisticRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OrderStatisticRandomTest, MatchesVectorReference) {
  Rng rng(GetParam());
  OrderStatisticList list;
  std::vector<std::uint64_t> ref;
  std::vector<OrderStatisticList::Handle> handles;  // parallel to values
  std::vector<std::uint64_t> values;
  std::uint64_t next_value = 0;

  for (int step = 0; step < 2000; ++step) {
    const std::uint64_t op = rng.next_below(4);
    if (op == 0 || ref.empty()) {  // insert
      const std::size_t pos =
          static_cast<std::size_t>(rng.next_below(ref.size() + 1));
      const std::uint64_t v = next_value++;
      ref.insert(ref.begin() + static_cast<std::ptrdiff_t>(pos), v);
      handles.push_back(list.insert_at(pos, v));
      values.push_back(v);
    } else if (op == 1) {  // erase
      const std::size_t idx =
          static_cast<std::size_t>(rng.next_below(values.size()));
      const std::uint64_t v = values[idx];
      const auto it = std::find(ref.begin(), ref.end(), v);
      ASSERT_NE(it, ref.end());
      ref.erase(it);
      list.erase(handles[idx]);
      handles[idx] = handles.back();
      values[idx] = values.back();
      handles.pop_back();
      values.pop_back();
    } else if (op == 2) {  // move
      const std::size_t idx =
          static_cast<std::size_t>(rng.next_below(values.size()));
      const std::size_t pos = static_cast<std::size_t>(rng.next_below(ref.size()));
      const std::uint64_t v = values[idx];
      const auto it = std::find(ref.begin(), ref.end(), v);
      ref.erase(it);
      ref.insert(ref.begin() + static_cast<std::ptrdiff_t>(pos), v);
      list.move(handles[idx], pos);
    } else {  // verify ranks
      const std::size_t idx =
          static_cast<std::size_t>(rng.next_below(values.size()));
      const auto it = std::find(ref.begin(), ref.end(), values[idx]);
      ASSERT_EQ(list.rank(handles[idx]),
                static_cast<std::size_t>(it - ref.begin()));
    }
    ASSERT_EQ(list.size(), ref.size());
  }
  ASSERT_TRUE(list.check_consistency());
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_EQ(list.value(list.at(i)), ref[i]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderStatisticRandomTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---- SegmentedList ----

TEST(SegmentedList, FillsSegmentsInOrder) {
  SegmentedList list({2, 2});
  SegmentedList::AccessResult r;
  list.access(1, r);
  EXPECT_FALSE(r.hit);
  list.access(2, r);
  list.access(3, r);
  ASSERT_EQ(r.crossed.size(), 1u);  // block 1 slid into segment 1
  EXPECT_EQ(r.crossed[0].from, 0u);
  EXPECT_EQ(r.crossed[0].key, 1u);
  list.access(4, r);
  EXPECT_EQ(list.segment_size(0), 2u);
  EXPECT_EQ(list.segment_size(1), 2u);
  EXPECT_EQ(list.segment_of(4), 0u);
  EXPECT_EQ(list.segment_of(3), 0u);
  EXPECT_EQ(list.segment_of(2), 1u);
  EXPECT_EQ(list.segment_of(1), 1u);
  EXPECT_TRUE(list.check_consistency());
}

TEST(SegmentedList, EvictsFromGlobalLruPosition) {
  SegmentedList list({1, 1});
  SegmentedList::AccessResult r;
  list.access(1, r);
  list.access(2, r);
  list.access(3, r);
  ASSERT_EQ(r.evicted.size(), 1u);
  EXPECT_EQ(r.evicted[0], 1u);
  EXPECT_FALSE(list.contains(1));
  EXPECT_TRUE(list.contains(2));
  EXPECT_TRUE(list.contains(3));
}

TEST(SegmentedList, HitReportsOldSegmentAndDemotesAboveIt) {
  SegmentedList list({2, 2, 2});
  SegmentedList::AccessResult r;
  for (BlockId b = 1; b <= 6; ++b) list.access(b, r);
  // Stack (MRU->LRU): 6 5 | 4 3 | 2 1
  list.access(1, r);  // hit in segment 2
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.old_segment, 2u);
  ASSERT_EQ(r.crossed.size(), 2u);  // one slide at each boundary above
  EXPECT_EQ(r.crossed[0].from, 0u);
  EXPECT_EQ(r.crossed[0].key, 5u);
  EXPECT_EQ(r.crossed[1].from, 1u);
  EXPECT_EQ(r.crossed[1].key, 3u);
  EXPECT_TRUE(r.evicted.empty());
  // Hit at the top causes no movement.
  list.access(1, r);
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.old_segment, 0u);
  EXPECT_TRUE(r.crossed.empty());
  EXPECT_TRUE(list.check_consistency());
}

// ---- sized blocks ----

TEST(SegmentedList, SizedBlocksCrossAndEvictInBatches) {
  SegmentedList list({4, 4});
  SegmentedList::AccessResult r;
  list.access(1, r, 2);
  list.access(2, r, 2);  // segment 0 exactly full: [2, 1]
  EXPECT_TRUE(r.crossed.empty());
  list.access(3, r, 4);  // 3 displaces both resident blocks at once
  ASSERT_EQ(r.crossed.size(), 2u);
  EXPECT_EQ(r.crossed[0].key, 1u);  // LRU-most slides first
  EXPECT_EQ(r.crossed[1].key, 2u);
  EXPECT_TRUE(r.evicted.empty());
  EXPECT_EQ(list.segment_bytes(0), 4u);
  EXPECT_EQ(list.segment_bytes(1), 4u);
  list.access(4, r, 4);  // pushes 3 down, which pushes 1 and 2 out
  ASSERT_EQ(r.crossed.size(), 1u);
  EXPECT_EQ(r.crossed[0].key, 3u);
  ASSERT_EQ(r.evicted.size(), 2u);
  EXPECT_EQ(r.evicted[0], 1u);
  EXPECT_EQ(r.evicted[1], 2u);
  EXPECT_TRUE(list.check_consistency());
}

TEST(SegmentedList, OversizedBlockPassesStraightThrough) {
  SegmentedList list({2, 2});
  SegmentedList::AccessResult r;
  list.access(1, r, 1);
  list.access(9, r, 8);  // larger than the whole budget: slides off the end
  EXPECT_FALSE(r.hit);
  ASSERT_EQ(r.evicted.size(), 2u);
  EXPECT_EQ(r.evicted[0], 1u);
  EXPECT_EQ(r.evicted[1], 9u);
  EXPECT_FALSE(list.contains(9));
  EXPECT_EQ(list.size(), 0u);
  EXPECT_TRUE(list.check_consistency());
}

TEST(SegmentedList, SizedHitCanEvictThroughTheBottom) {
  SegmentedList list({4, 3});
  SegmentedList::AccessResult r;
  list.access(10, r, 1);
  list.access(20, r, 2);
  list.access(30, r, 1);
  list.access(40, r, 3);  // layout: seg0 = [40(3), 30(1)], seg1 = [20(2), 10(1)]
  EXPECT_EQ(list.segment_bytes(0), 4u);
  EXPECT_EQ(list.segment_bytes(1), 3u);
  // A hit moves no net bytes, but block granularity can overshoot a
  // boundary and squeeze blocks off the bottom.
  list.access(20, r);  // resident: keeps its stored size of 2
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.old_segment, 1u);
  ASSERT_EQ(r.crossed.size(), 2u);
  EXPECT_EQ(r.crossed[0].key, 30u);
  EXPECT_EQ(r.crossed[1].key, 40u);
  ASSERT_EQ(r.evicted.size(), 2u);
  EXPECT_EQ(r.evicted[0], 10u);
  EXPECT_EQ(r.evicted[1], 30u);  // demoted and evicted in the same access
  EXPECT_TRUE(list.check_consistency());
}

TEST(SegmentedList, RemoveKeepsStructure) {
  SegmentedList list({2, 2});
  SegmentedList::AccessResult r;
  for (BlockId b = 1; b <= 4; ++b) list.access(b, r);
  EXPECT_TRUE(list.remove(2, r));
  EXPECT_EQ(r.old_segment, 1u);
  EXPECT_FALSE(list.contains(2));
  EXPECT_EQ(list.size(), 3u);
  EXPECT_FALSE(list.remove(2, r));
  EXPECT_TRUE(list.check_consistency());
}

// Property: SegmentedList behaves exactly like an LRU vector reference with
// fixed segment boundaries.
class SegmentedListRandomTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {};

TEST_P(SegmentedListRandomTest, MatchesLruReference) {
  const auto [seed, segments] = GetParam();
  Rng rng(seed);
  std::vector<std::size_t> caps;
  std::size_t total = 0;
  for (std::size_t s = 0; s < segments; ++s) {
    caps.push_back(1 + static_cast<std::size_t>(rng.next_below(4)));
    total += caps.back();
  }
  SegmentedList list(caps);
  SegmentedList::AccessResult r;
  std::vector<BlockId> ref;  // front = MRU

  auto ref_segment = [&](std::size_t pos) {
    std::size_t acc = 0;
    for (std::size_t s = 0; s < caps.size(); ++s) {
      acc += caps[s];
      if (pos < acc) return s;
    }
    return caps.size();
  };

  for (int step = 0; step < 3000; ++step) {
    const BlockId b = rng.next_below(static_cast<std::uint64_t>(total * 2));
    const auto it = std::find(ref.begin(), ref.end(), b);
    const bool expect_hit = it != ref.end();
    const std::size_t expect_seg =
        expect_hit ? ref_segment(static_cast<std::size_t>(it - ref.begin())) : 0;
    if (expect_hit) ref.erase(std::find(ref.begin(), ref.end(), b));
    ref.insert(ref.begin(), b);
    bool expect_evict = false;
    BlockId expect_victim = 0;
    if (ref.size() > total) {
      expect_evict = true;
      expect_victim = ref.back();
      ref.pop_back();
    }

    list.access(b, r);
    ASSERT_EQ(r.hit, expect_hit);
    if (expect_hit) {
      ASSERT_EQ(r.old_segment, expect_seg);
    }
    ASSERT_EQ(!r.evicted.empty(), expect_evict);
    if (expect_evict) {
      ASSERT_EQ(r.evicted.size(), 1u);
      ASSERT_EQ(r.evicted[0], expect_victim);
    }
    // Segment assignment must match positional segmentation.
    if (step % 100 == 0) {
      ASSERT_TRUE(list.check_consistency());
      for (std::size_t pos = 0; pos < ref.size(); ++pos)
        ASSERT_EQ(list.segment_of(ref[pos]), ref_segment(pos));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SegmentedListRandomTest,
    ::testing::Combine(::testing::Values(3, 7, 11, 19),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{3}, std::size_t{5})));

}  // namespace
}  // namespace ulc
