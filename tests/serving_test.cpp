// The serving runtime: bounded MPSC queue semantics, the sharded gLRU
// directory fed over those queues, the composed ServingRuntime, and the
// multi-threaded load generator (closed- and open-loop).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "runtime/loadgen.h"
#include "runtime/serving.h"
#include "util/mpsc.h"

namespace ulc {
namespace {

// ---------- BoundedMpsc -----------------------------------------------------

TEST(BoundedMpsc, SingleProducerFifoOrder) {
  BoundedMpsc<int> q(64);
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(q.push(i));
  std::vector<int> got, batch;
  while (got.size() < 40) {
    ASSERT_GT(q.pop_wait(batch), 0u);
    got.insert(got.end(), batch.begin(), batch.end());
  }
  for (int i = 0; i < 40; ++i) EXPECT_EQ(got[i], i);
}

TEST(BoundedMpsc, MultiProducerCompleteAndPerProducerOrdered) {
  BoundedMpsc<std::uint64_t> q(16);  // smaller than the item count: must block
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 5000;

  std::vector<std::uint64_t> got;
  std::thread consumer([&] {
    std::vector<std::uint64_t> batch;
    while (q.pop_wait(batch) > 0)
      got.insert(got.end(), batch.begin(), batch.end());
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i)
        ASSERT_TRUE(q.push((static_cast<std::uint64_t>(p) << 32) | i));
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  consumer.join();

  ASSERT_EQ(got.size(), kProducers * kPerProducer);
  // Each producer's subsequence arrives in its program order.
  std::vector<std::uint64_t> next(kProducers, 0);
  for (std::uint64_t v : got) {
    const std::size_t p = v >> 32;
    EXPECT_EQ(v & 0xffffffffULL, next[p]);
    ++next[p];
  }
  const MpscStats s = q.stats();
  EXPECT_EQ(s.enqueued, kProducers * kPerProducer);
  EXPECT_EQ(s.dequeued, kProducers * kPerProducer);
  EXPECT_LE(s.max_depth, 16u);
}

TEST(BoundedMpsc, BoundBlocksProducersUntilConsumed) {
  BoundedMpsc<int> q(2);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  EXPECT_FALSE(q.try_push(3));  // full
  EXPECT_EQ(q.stats().rejected, 1u);

  std::atomic<bool> unblocked{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.push(3));  // blocks until the consumer drains
    unblocked.store(true);
  });
  std::vector<int> batch;
  while (q.stats().producer_waits == 0) std::this_thread::yield();
  EXPECT_FALSE(unblocked.load());
  ASSERT_GT(q.pop_wait(batch), 0u);
  producer.join();
  EXPECT_TRUE(unblocked.load());
  ASSERT_GT(q.pop_wait(batch), 0u);
  EXPECT_EQ(batch[0], 3);
  EXPECT_GE(q.stats().producer_waits, 1u);
}

TEST(BoundedMpsc, CloseDrainsThenSignalsExit) {
  BoundedMpsc<int> q(8);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  q.close();
  EXPECT_FALSE(q.push(3));  // post-close pushes are dropped
  std::vector<int> batch;
  ASSERT_EQ(q.pop_wait(batch), 2u);  // queued items still delivered
  EXPECT_EQ(q.pop_wait(batch), 0u);  // then the exit signal
  EXPECT_TRUE(q.closed());
}

// ---------- DirectoryServer -------------------------------------------------

PlacementEvent ev(BlockId block, std::uint32_t shard, PlacementEventKind kind) {
  return PlacementEvent{block, shard, kind};
}

TEST(DirectoryServer, AppliesEventsAndTracksOwnership) {
  DirectoryConfig cfg;
  cfg.shards = 2;
  DirectoryServer dir(cfg);
  for (BlockId b = 0; b < 100; ++b)
    dir.on_placement(ev(b, static_cast<std::uint32_t>(b % 4), PlacementEventKind::kStore));
  dir.drain();

  const DirectoryStats s = dir.stats();
  EXPECT_EQ(s.applied(), 100u);
  EXPECT_EQ(s.resident(), 100u);
  for (BlockId b = 0; b < 100; ++b) {
    ASSERT_TRUE(dir.tracks(b)) << b;
    EXPECT_EQ(dir.owner_of(b), b % 4);
  }

  // A demotion refreshes ownership; a discard removes the entry.
  dir.on_placement(ev(7, 3, PlacementEventKind::kDemote));
  dir.on_placement(ev(8, 1, PlacementEventKind::kDiscard));
  dir.drain();
  EXPECT_EQ(dir.owner_of(7), 3u);
  EXPECT_FALSE(dir.tracks(8));
  EXPECT_EQ(dir.stats().resident(), 99u);
}

TEST(DirectoryServer, CapacityBoundEvictsColdEntries) {
  DirectoryConfig cfg;
  cfg.shards = 1;
  cfg.capacity = 16;
  DirectoryServer dir(cfg);
  for (BlockId b = 0; b < 64; ++b)
    dir.on_placement(ev(b, 0, PlacementEventKind::kStore));
  dir.drain();
  const DirectoryStats s = dir.stats();
  EXPECT_EQ(s.resident(), 16u);
  EXPECT_EQ(s.shards[0].evictions, 48u);
  // The most recently directed blocks survive (gLRU order).
  for (BlockId b = 48; b < 64; ++b) EXPECT_TRUE(dir.tracks(b)) << b;
}

TEST(DirectoryServer, ConcurrentProducersLoseNothing) {
  DirectoryConfig cfg;
  cfg.shards = 4;
  cfg.queue_capacity = 32;  // force backpressure
  DirectoryServer dir(cfg);
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 8000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&dir, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i)
        dir.on_placement(ev(i * kProducers + p, static_cast<std::uint32_t>(p),
                            PlacementEventKind::kStore));
    });
  }
  for (auto& t : producers) t.join();
  dir.drain();
  EXPECT_EQ(dir.stats().applied(), kProducers * kPerProducer);
}

// ---------- ServingRuntime --------------------------------------------------

std::vector<std::byte> filled(std::size_t n, BlockId block) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = static_cast<std::byte>((block + i) & 0xff);
  return out;
}

TEST(ServingRuntime, DirectoryShadowsTheCachePopulation) {
  ServingConfig cfg;
  cfg.per_shard.block_size = 256;
  cfg.per_shard.memory_blocks = 8;
  cfg.cache_shards = 2;
  cfg.near_blocks_per_shard = 16;
  cfg.directory.shards = 2;
  auto backing = make_memory_origin(256);
  ServingRuntime runtime(cfg, *backing);

  std::vector<std::byte> out(256);
  for (BlockId b = 0; b < 200; ++b)
    runtime.write(b, filled(256, b));
  for (BlockId b = 190; b < 200; ++b) runtime.read(b, out);
  runtime.drain();

  ASSERT_NE(runtime.directory(), nullptr);
  const DirectoryStats ds = runtime.directory()->stats();
  // Every cache movement produced exactly one directory event, none lost.
  std::uint64_t enqueued = 0;
  for (const DirectoryShardStats& s : ds.shards) enqueued += s.queue.enqueued;
  EXPECT_EQ(ds.applied(), enqueued);
  EXPECT_GT(ds.applied(), 0u);
  // The hot tail was just written/read: the directory must be tracking it,
  // owned by the cache shard the router names.
  for (BlockId b = 190; b < 200; ++b) {
    ASSERT_TRUE(runtime.directory()->tracks(b)) << b;
    EXPECT_EQ(runtime.directory()->owner_of(b), runtime.cache().shard_of(b));
  }
  // Data integrity through the serving path.
  for (BlockId b = 0; b < 200; ++b) {
    runtime.read(b, out);
    const auto want = filled(256, b);
    ASSERT_EQ(std::memcmp(out.data(), want.data(), 256), 0) << b;
  }
}

TEST(ServingRuntime, DisabledDirectoryStillServes) {
  ServingConfig cfg;
  cfg.per_shard.block_size = 256;
  cfg.per_shard.memory_blocks = 4;
  cfg.cache_shards = 2;
  cfg.near_blocks_per_shard = 8;
  cfg.enable_directory = false;
  auto backing = make_memory_origin(256);
  ServingRuntime runtime(cfg, *backing);
  EXPECT_EQ(runtime.directory(), nullptr);
  std::vector<std::byte> out(256);
  for (BlockId b = 0; b < 50; ++b) runtime.write(b, filled(256, b));
  runtime.drain();  // no-op
  for (BlockId b = 0; b < 50; ++b) {
    runtime.read(b, out);
    const auto want = filled(256, b);
    ASSERT_EQ(std::memcmp(out.data(), want.data(), 256), 0) << b;
  }
}

// ---------- load generator --------------------------------------------------

LoadGenConfig small_load(const std::string& workload) {
  LoadGenConfig cfg;
  cfg.workload = workload;
  cfg.requests = 6000;
  cfg.threads = 2;
  cfg.write_frac = 0.2;
  cfg.seed = 3;
  cfg.footprint_blocks = 2000;
  cfg.streaming.n_titles = 50;
  cfg.serving.per_shard.block_size = 512;
  cfg.serving.per_shard.memory_blocks = 32;
  cfg.serving.cache_shards = 2;
  cfg.serving.near_blocks_per_shard = 64;
  cfg.serving.directory.shards = 2;
  return cfg;
}

TEST(LoadGen, ClosedLoopAccountsEveryRequest) {
  for (const char* workload : {"zipf", "streaming"}) {
    const LoadGenConfig cfg = small_load(workload);
    const LoadGenResult r = run_serving_load(cfg);
    EXPECT_EQ(r.requests, cfg.requests) << workload;
    EXPECT_EQ(r.reads + r.writes, cfg.requests) << workload;
    EXPECT_EQ(r.latency_ms.count(), cfg.requests) << workload;
    EXPECT_EQ(r.cache.reads + r.cache.writes, cfg.requests) << workload;
    EXPECT_GT(r.requests_per_sec, 0.0) << workload;
    EXPECT_GT(r.writes, 0u) << workload;
    // The directory consumed every event the cache emitted.
    std::uint64_t enqueued = 0;
    for (const DirectoryShardStats& s : r.directory.shards)
      enqueued += s.queue.enqueued;
    EXPECT_EQ(r.directory.applied(), enqueued) << workload;
    EXPECT_GT(r.directory.applied(), 0u) << workload;
  }
}

TEST(LoadGen, OpenLoopPacingCompletes) {
  LoadGenConfig cfg = small_load("zipf");
  cfg.requests = 2000;
  cfg.rate = 50000.0;  // fast enough to finish promptly, still paced
  const LoadGenResult r = run_serving_load(cfg);
  EXPECT_EQ(r.requests, cfg.requests);
  EXPECT_EQ(r.latency_ms.count(), cfg.requests);
  // Open-loop runs at least as long as the schedule demands.
  const double per_thread =
      static_cast<double>(cfg.requests) / static_cast<double>(cfg.threads);
  EXPECT_GE(r.wall_seconds, (per_thread - 1.0) / cfg.rate);
}

TEST(LoadGen, ResultJsonCarriesTheServingSchema) {
  const LoadGenConfig cfg = small_load("zipf");
  const LoadGenResult r = run_serving_load(cfg);
  const std::string doc = load_result_to_json(cfg, r).dump();
  for (const char* key :
       {"\"workload\"", "\"threads\"", "\"requests\"", "\"wall_seconds\"",
        "\"requests_per_sec\"", "\"latency_ms\"", "\"p50\"", "\"p95\"",
        "\"p99\"", "\"cache\"", "\"directory\"", "\"shape\"", "\"queue\"",
        "\"producer_waits\""}) {
    EXPECT_NE(doc.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace ulc