// Differential test: UlcClient (the O(1) engine with yardstick pointers and
// sequence numbers) against an independent reference model written straight
// from the paper's prose with O(n) scans and no shared code. Any divergence
// in served level, placement, demotion commands or cached contents fails.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "ulc/ulc_client.h"
#include "util/prng.h"
#include "workloads/synthetic.h"

namespace ulc {
namespace {

// Reference model of the single-client ULC protocol (paper §3.2.1), plus
// the two client-side extensions the engine supports: the tempLRU of
// footnote 3 and elastic (server-granted) levels whose fullness the server
// toggles via set_elastic_full.
class ReferenceUlc {
 public:
  struct Outcome {
    std::size_t hit_level = kLevelOut;
    bool temp_hit = false;
    std::size_t placed_level = kLevelOut;
    std::vector<DemoteCmd> demotions;
  };

  explicit ReferenceUlc(std::vector<std::size_t> caps,
                        std::size_t first_elastic = kLevelOut,
                        std::size_t temp_capacity = 0)
      : caps_(std::move(caps)),
        first_elastic_(first_elastic),
        temp_capacity_(temp_capacity),
        full_(caps_.size(), false) {}

  void set_elastic_full(std::size_t level, bool full) { full_[level] = full; }

  Outcome access(BlockId b) {
    Outcome out;
    if (temp_capacity_ > 0) {
      const auto it = std::find(temp_.begin(), temp_.end(), b);
      if (it != temp_.end()) {
        out.temp_hit = true;
        temp_.erase(it);
      }
    }
    auto pos = find(b);
    if (!pos) {
      // Not in uniLRUstack: cold. Fill the first level with room, else Lout.
      const std::size_t fill = first_level_with_room();
      stack_.insert(stack_.begin(), Entry{b, fill});
      out.placed_level = fill;
      prune();
      touch_temp(b, fill == 0);
      return out;
    }

    const Entry e = stack_[*pos];
    out.hit_level = e.level;

    // Recency status: the smallest level whose yardstick (deepest block of
    // that level) sits at or below this block in the stack.
    std::size_t r = kLevelOut;
    for (std::size_t lvl = 0; lvl < caps_.size(); ++lvl) {
      const auto y = yardstick(lvl);
      if (y && *pos <= *y) {
        r = lvl;
        break;
      }
    }
    std::size_t j = r;
    if (j == kLevelOut) j = first_level_with_room();

    // Move to the stack top.
    stack_.erase(stack_.begin() + static_cast<std::ptrdiff_t>(*pos));
    stack_.insert(stack_.begin(), Entry{b, j});
    out.placed_level = j;

    if (j != e.level && j != kLevelOut) {
      // Demotion cascade with same-block collapsing. An elastic level never
      // overflows from the client's point of view — its server decides.
      std::optional<BlockId> inflight;
      for (std::size_t k = j; k < caps_.size(); ++k) {
        if (!overflowed(k)) break;
        const auto y = yardstick(k);
        const BlockId victim = stack_[*y].block;
        const std::size_t next = k + 1 < caps_.size() ? k + 1 : kLevelOut;
        stack_[*y].level = next;
        if (inflight && *inflight == victim) {
          out.demotions.back().to = next;
        } else {
          out.demotions.push_back(DemoteCmd{victim, k, next});
        }
        inflight = next == kLevelOut ? std::nullopt : std::optional(victim);
      }
    }
    prune();
    touch_temp(b, j == 0);
    return out;
  }

  bool in_temp(BlockId b) const {
    return std::find(temp_.begin(), temp_.end(), b) != temp_.end();
  }

  bool is_cached(BlockId b) const {
    for (const Entry& e : stack_) {
      if (e.block == b) return e.level != kLevelOut;
    }
    return false;
  }

  std::size_t level_of(BlockId b) const {
    for (const Entry& e : stack_) {
      if (e.block == b) return e.level;
    }
    return kLevelOut;
  }

  std::vector<BlockId> cached_at(std::size_t level) const {
    std::vector<BlockId> out;
    for (const Entry& e : stack_) {
      if (e.level == level) out.push_back(e.block);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  struct Entry {
    BlockId block;
    std::size_t level;
  };

  std::optional<std::size_t> find(BlockId b) const {
    for (std::size_t i = 0; i < stack_.size(); ++i) {
      if (stack_[i].block == b) return i;
    }
    return std::nullopt;
  }

  // Index of the deepest block with the given level status.
  std::optional<std::size_t> yardstick(std::size_t level) const {
    for (std::size_t i = stack_.size(); i-- > 0;) {
      if (stack_[i].level == level) return i;
    }
    return std::nullopt;
  }

  std::size_t count(std::size_t level) const {
    std::size_t n = 0;
    for (const Entry& e : stack_) n += e.level == level ? 1 : 0;
    return n;
  }

  bool is_elastic(std::size_t level) const { return level >= first_elastic_; }

  bool has_room(std::size_t level) const {
    if (is_elastic(level)) return !full_[level];
    return count(level) < caps_[level];
  }

  bool overflowed(std::size_t level) const {
    if (is_elastic(level)) return false;
    return count(level) > caps_[level];
  }

  std::size_t first_level_with_room() const {
    for (std::size_t lvl = 0; lvl < caps_.size(); ++lvl) {
      if (has_room(lvl)) return lvl;
    }
    return kLevelOut;
  }

  void touch_temp(BlockId b, bool cached_at_client) {
    if (temp_capacity_ == 0 || cached_at_client) return;
    const auto it = std::find(temp_.begin(), temp_.end(), b);
    if (it != temp_.end()) temp_.erase(it);
    temp_.insert(temp_.begin(), b);
    if (temp_.size() > temp_capacity_) temp_.pop_back();
  }

  void prune() {
    // Drop uncached blocks below every yardstick.
    std::optional<std::size_t> deepest;
    for (std::size_t lvl = 0; lvl < caps_.size(); ++lvl) {
      const auto y = yardstick(lvl);
      if (y && (!deepest || *y > *deepest)) deepest = *y;
    }
    while (!stack_.empty() && stack_.back().level == kLevelOut &&
           (!deepest || stack_.size() - 1 > *deepest)) {
      stack_.pop_back();
    }
  }

  std::vector<std::size_t> caps_;
  std::size_t first_elastic_ = kLevelOut;
  std::size_t temp_capacity_ = 0;
  std::vector<bool> full_;
  std::vector<Entry> stack_;  // front = most recent
  std::vector<BlockId> temp_;  // front = most recent
};

struct DiffCase {
  int workload;
  std::vector<std::size_t> caps;
};

class UlcDifferentialTest : public ::testing::TestWithParam<DiffCase> {};

TEST_P(UlcDifferentialTest, EngineMatchesReferenceModel) {
  const DiffCase& pc = GetParam();
  PatternPtr src;
  switch (pc.workload) {
    case 0:
      src = make_uniform_source(0, 120);
      break;
    case 1:
      src = make_zipf_source(0, 120, 1.0, true, 7);
      break;
    case 2:
      src = make_loop_source(0, 50);
      break;
    case 3:
      src = make_temporal_source(0, 120, 0.15, 3.0);
      break;
    default: {
      std::vector<LoopScope> scopes{{0, 20, 2.0}, {20, 70, 1.0}};
      src = make_nested_loop_source(std::move(scopes));
      break;
    }
  }
  UlcConfig cfg;
  cfg.capacities = pc.caps;
  UlcClient engine(cfg);
  ReferenceUlc reference(pc.caps);

  Rng rng(1234);
  for (int i = 0; i < 4000; ++i) {
    const BlockId b = src->next(rng);
    const UlcAccess& got = engine.access(b);
    const ReferenceUlc::Outcome want = reference.access(b);

    ASSERT_EQ(got.hit_level, want.hit_level) << "step " << i << " block " << b;
    ASSERT_EQ(got.placed_level, want.placed_level) << "step " << i;
    ASSERT_EQ(got.demotions.size(), want.demotions.size()) << "step " << i;
    for (std::size_t d = 0; d < want.demotions.size(); ++d) {
      ASSERT_EQ(got.demotions[d].block, want.demotions[d].block) << "step " << i;
      ASSERT_EQ(got.demotions[d].from, want.demotions[d].from) << "step " << i;
      ASSERT_EQ(got.demotions[d].to, want.demotions[d].to) << "step " << i;
    }
    if (i % 97 == 0) {
      // Full cached-content comparison, level by level.
      for (std::size_t lvl = 0; lvl < pc.caps.size(); ++lvl) {
        for (BlockId blk : reference.cached_at(lvl)) {
          ASSERT_EQ(engine.level_of(blk), lvl) << "step " << i << " blk " << blk;
        }
        ASSERT_EQ(engine.level_size(lvl), reference.cached_at(lvl).size())
            << "step " << i;
      }
      ASSERT_TRUE(engine.check_consistency());
    }
  }
}

std::vector<DiffCase> diff_cases() {
  std::vector<DiffCase> cases;
  const std::vector<std::vector<std::size_t>> configs = {
      {8}, {1, 1}, {4, 8}, {8, 8, 8}, {2, 6, 18}, {12, 4, 2}, {1, 1, 1, 1}};
  for (int w = 0; w < 5; ++w) {
    for (const auto& caps : configs) cases.push_back({w, caps});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, UlcDifferentialTest,
                         ::testing::ValuesIn(diff_cases()));

// Boundary-configuration differential fuzz: capacity-1 levels, extreme
// tempLRU capacities (1 block, and far larger than the footprint) and
// elastic levels whose fullness flips mid-run — the corners the plain sweep
// above never reaches. The engine's structural auditor runs in abort mode
// (every step asserts), and the tempLRU contents themselves are compared.
struct BoundaryCase {
  std::uint64_t seed;
  std::vector<std::size_t> caps;
  std::size_t first_elastic;  // kLevelOut = all levels fixed
  std::size_t temp_capacity;
};

class UlcBoundaryFuzzTest : public ::testing::TestWithParam<BoundaryCase> {};

TEST_P(UlcBoundaryFuzzTest, EngineMatchesReferenceAtBoundaryConfigs) {
  const BoundaryCase& pc = GetParam();
  UlcConfig cfg;
  cfg.capacities = pc.caps;
  cfg.first_elastic_level = pc.first_elastic;
  cfg.temp_capacity = pc.temp_capacity;
  UlcClient engine(cfg);
  ReferenceUlc reference(pc.caps, pc.first_elastic, pc.temp_capacity);

  auto src = make_zipf_source(0, 60, 0.9, true, pc.seed);
  Rng rng(pc.seed * 77 + 1);
  Rng flips(pc.seed);
  for (int i = 0; i < 3000; ++i) {
    if (pc.first_elastic != kLevelOut && i % 101 == 0) {
      // The server toggles fullness of each shared level mid-run.
      for (std::size_t l = pc.first_elastic; l < pc.caps.size(); ++l) {
        const bool full = flips.next_below(2) == 1;
        engine.set_elastic_full(l, full);
        reference.set_elastic_full(l, full);
      }
    }
    const BlockId b = src->next(rng);
    const UlcAccess& got = engine.access(b);
    const ReferenceUlc::Outcome want = reference.access(b);

    ASSERT_EQ(got.hit_level, want.hit_level) << "step " << i << " block " << b;
    ASSERT_EQ(got.temp_hit, want.temp_hit) << "step " << i << " block " << b;
    ASSERT_EQ(got.placed_level, want.placed_level) << "step " << i;
    ASSERT_EQ(got.demotions.size(), want.demotions.size()) << "step " << i;
    for (std::size_t d = 0; d < want.demotions.size(); ++d) {
      ASSERT_EQ(got.demotions[d].block, want.demotions[d].block) << "step " << i;
      ASSERT_EQ(got.demotions[d].from, want.demotions[d].from) << "step " << i;
      ASSERT_EQ(got.demotions[d].to, want.demotions[d].to) << "step " << i;
    }
    ASSERT_EQ(engine.in_temp(b), reference.in_temp(b)) << "step " << i;
    // Auditor in abort mode: any structural violation stops the run here.
    ASSERT_TRUE(engine.check_consistency()) << "step " << i;
  }
  for (std::size_t lvl = 0; lvl < pc.caps.size(); ++lvl) {
    for (BlockId blk : reference.cached_at(lvl))
      ASSERT_EQ(engine.level_of(blk), lvl) << "blk " << blk;
    ASSERT_EQ(engine.level_size(lvl), reference.cached_at(lvl).size());
  }
}

std::vector<BoundaryCase> boundary_cases() {
  return {
      // Capacity-1 boundaries, all levels fixed.
      {11, {1}, kLevelOut, 0},
      {12, {1}, kLevelOut, 1},
      {13, {1, 1, 1}, kLevelOut, 1},
      {14, {1, 1, 1}, kLevelOut, 10000},  // tempLRU swallows the footprint
      {15, {2, 1, 4}, kLevelOut, 3},
      {16, {1, 1, 1, 1, 1}, kLevelOut, 2},
      // Elastic shared levels (capacity entries past first_elastic are
      // server-granted; 0 is legal there) with mid-run fullness flips.
      {21, {1, 0}, 1, 0},
      {22, {1, 0}, 1, 1},
      {23, {1, 0, 0}, 1, 2},
      {24, {2, 4}, 1, 10000},
      {25, {1, 1, 0}, 2, 1},
  };
}

INSTANTIATE_TEST_SUITE_P(Boundary, UlcBoundaryFuzzTest,
                         ::testing::ValuesIn(boundary_cases()));

}  // namespace
}  // namespace ulc
