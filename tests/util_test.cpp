#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/prng.h"
#include "util/stats.h"
#include "util/table.h"

namespace ulc {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NextBoolMatchesProbability) {
  Rng rng(17);
  int yes = 0;
  for (int i = 0; i < 20000; ++i) yes += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(yes / 20000.0, 0.3, 0.02);
  EXPECT_FALSE(rng.next_bool(0.0));
  EXPECT_TRUE(rng.next_bool(1.0));
}

TEST(ZipfSampler, Theta1MatchesHarmonicWeights) {
  const std::uint64_t n = 100;
  ZipfSampler zipf(n, 1.0);
  Rng rng(23);
  std::vector<int> counts(n, 0);
  const int samples = 200000;
  for (int i = 0; i < samples; ++i) ++counts[zipf.sample(rng)];
  double h = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) h += 1.0 / static_cast<double>(i);
  // Check the head of the distribution.
  for (std::uint64_t rank : {0ull, 1ull, 4ull, 9ull}) {
    const double expected = 1.0 / (static_cast<double>(rank + 1) * h);
    const double got = counts[rank] / static_cast<double>(samples);
    EXPECT_NEAR(got, expected, expected * 0.15) << "rank " << rank;
  }
}

TEST(ZipfSampler, ThetaZeroIsUniform) {
  const std::uint64_t n = 50;
  ZipfSampler zipf(n, 0.0);
  Rng rng(29);
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.sample(rng)];
  for (std::uint64_t i = 0; i < n; ++i)
    EXPECT_NEAR(counts[i] / 100000.0, 1.0 / 50.0, 0.006);
}

TEST(OnlineStats, BasicMoments) {
  OnlineStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.variance(), 1.25, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(1.25), 1e-12);
}

// The empty-stats regression: an empty accumulator must say so explicitly.
// mean()/variance()/sum() keep their harmless 0.0-when-empty convention, but
// min()/max() used to silently return 0.0 too — poisoning any aggregation
// that mixed in a zero-sample phase. They now abort; callers check empty().
TEST(OnlineStats, EmptyIsExplicit) {
  OnlineStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DEATH(s.min(), "empty OnlineStats");
  EXPECT_DEATH(s.max(), "empty OnlineStats");
  s.add(-2.0);
  EXPECT_FALSE(s.empty());
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), -2.0);
}

TEST(OnlineStats, MergeMatchesCombinedAccumulation) {
  OnlineStats all, left, right;
  const std::vector<double> xs = {0.5, -1.0, 3.25, 7.0, 2.0, 2.0, -4.5};
  for (std::size_t i = 0; i < xs.size(); ++i) {
    all.add(xs[i]);
    (i < 3 ? left : right).add(xs[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_DOUBLE_EQ(left.sum(), all.sum());
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-12);

  // Merging an empty side (either way) is the identity.
  OnlineStats empty;
  OnlineStats copy = all;
  copy.merge(empty);
  EXPECT_EQ(copy.count(), all.count());
  EXPECT_DOUBLE_EQ(copy.mean(), all.mean());
  empty.merge(all);
  EXPECT_EQ(empty.count(), all.count());
  EXPECT_DOUBLE_EQ(empty.max(), all.max());
}

TEST(Histogram, RatiosAndCumulative) {
  Histogram h(4);
  h.add(0, 1);
  h.add(1, 3);
  h.add(3, 4);
  h.add(9, 2);  // clamped to last bucket
  EXPECT_EQ(h.total(), 10u);
  EXPECT_DOUBLE_EQ(h.ratio(0), 0.1);
  EXPECT_DOUBLE_EQ(h.ratio(1), 0.3);
  EXPECT_DOUBLE_EQ(h.ratio(2), 0.0);
  EXPECT_DOUBLE_EQ(h.ratio(3), 0.6);
  EXPECT_DOUBLE_EQ(h.cumulative_ratio(1), 0.4);
  EXPECT_DOUBLE_EQ(h.cumulative_ratio(3), 1.0);
  h.clear();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.ratio(3), 0.0);
}

TEST(Table, AlignedTextAndCsv) {
  TablePrinter t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22.5"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_EQ(csv, "name,value\nalpha,1\nb,22.5\n");
}

TEST(Table, CsvEscaping) {
  TablePrinter t({"a"});
  t.add_row({"x,y\"z"});
  EXPECT_EQ(t.to_csv(), "a\n\"x,y\"\"z\"\n");
}

TEST(Table, Formatting) {
  EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_percent(0.1234, 1), "12.3%");
}

}  // namespace
}  // namespace ulc
