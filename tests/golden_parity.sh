#!/bin/sh
# Unit-size equivalence regression (DESIGN.md §9): with every block at size 1,
# the byte-budget refactor must be a strict no-op — bench JSON byte-identical
# to the pre-refactor goldens, at every thread count. Timing fields are the
# only permitted difference.
#
# Usage: golden_parity.sh <bench_binary> <golden_json> <threads>...
set -e

bench="$1"
golden="$2"
shift 2
[ -x "$bench" ] || { echo "missing bench binary: $bench" >&2; exit 1; }
[ -f "$golden" ] || { echo "missing golden file: $golden" >&2; exit 1; }

strip_timing() {
  grep -v -E '"(wall_seconds|refs_per_sec|threads)":' "$1"
}

base="golden_parity_$(basename "$golden" .golden.json)"
strip_timing "$golden" > "${base}.want"

status=0
for t in "$@"; do
  out="${base}.t${t}.json"
  "$bench" --threads="$t" --json="$out" > /dev/null
  if strip_timing "$out" | diff -u "${base}.want" - > "${base}.t${t}.diff"; then
    echo "PARITY_OK threads=$t"
  else
    echo "PARITY_DIFF threads=$t ($bench vs $golden):" >&2
    head -40 "${base}.t${t}.diff" >&2
    status=1
  fi
  rm -f "$out" "${base}.t${t}.diff"
done
rm -f "${base}.want"
exit $status
