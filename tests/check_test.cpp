// Shadow-model auditor tests: every real scheme must run clean (and
// transparently) under CheckedHierarchy, and every mutant from
// check/mutations.h must be caught with the expected violation kind.
#include <gtest/gtest.h>

#include <optional>
#include <utility>
#include <vector>

#include "check/checked_hierarchy.h"
#include "check/mutations.h"
#include "hierarchy/hierarchy.h"
#include "proto/journal.h"
#include "hierarchy/runner.h"
#include "proto/protocol_sim.h"
#include "replacement/cache_policy.h"
#include "trace/size_table.h"
#include "trace/trace.h"
#include "workloads/paper_presets.h"
#include "workloads/synthetic.h"

namespace ulc {
namespace {

Trace single_trace() {
  auto src = make_zipf_source(0, 400, 0.9, true, 11);
  return with_writes(generate(*src, 6000, 3, "zipf"), 0.2, 5);
}

Trace loop_trace() {
  auto src = make_loop_source(0, 60);
  return with_writes(generate(*src, 2500, 1, "loop"), 0.25, 7);
}

// Three clients over one block range, so shared blocks exercise the
// multi-client duplication / stale-metadata paths.
Trace multi_trace() {
  std::vector<PatternPtr> sources;
  sources.push_back(make_zipf_source(0, 300, 0.9, true, 21));
  sources.push_back(make_zipf_source(0, 300, 0.8, true, 22));
  sources.push_back(make_loop_source(100, 150));
  return with_writes(
      generate_multi(std::move(sources), {1.0, 1.0, 0.5}, 9000, 13, "multi"),
      0.15, 9);
}

// Mixed-size twins of the traces above: the same reference streams with
// deterministic per-block footprints stamped on (id-stable sizes).
Trace sized_single_trace() {
  Trace t = single_trace();
  stamp_sizes(t, assign_bimodal_sizes(0, 400, 1, 4, 0.25, 17));
  return t;
}

Trace sized_loop_trace() {
  Trace t = loop_trace();
  stamp_sizes(t, assign_bimodal_sizes(0, 60, 1, 4, 0.3, 23));
  return t;
}

Trace sized_multi_trace() {
  Trace t = multi_trace();
  stamp_sizes(t, assign_heavy_tail_sizes(0, 300, 1.1, 12, 19));
  return t;
}

void expect_stats_equal(const HierarchyStats& a, const HierarchyStats& b) {
  EXPECT_EQ(a.references, b.references);
  EXPECT_EQ(a.level_hits, b.level_hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.demotions, b.demotions);
  EXPECT_EQ(a.reloads, b.reloads);
  EXPECT_EQ(a.writebacks, b.writebacks);
  EXPECT_EQ(a.eviction_notices, b.eviction_notices);
  EXPECT_EQ(a.stale_syncs, b.stale_syncs);
  EXPECT_EQ(a.level_hit_bytes, b.level_hit_bytes);
  EXPECT_EQ(a.miss_bytes, b.miss_bytes);
  EXPECT_EQ(a.demotion_bytes, b.demotion_bytes);
  EXPECT_EQ(a.reload_bytes, b.reload_bytes);
  EXPECT_EQ(a.sized, b.sized);
}

// Runs `checked` and `plain` over the trace and requires the auditor to be
// both silent and invisible (statistics identical to the unchecked twin).
void expect_clean(SchemePtr checked_inner, SchemePtr plain, const Trace& t,
                  bool expect_event_checks = true) {
  CheckOptions opt;
  opt.sweep_interval = 32;
  opt.context = t.name();
  CheckedHierarchy checked(std::move(checked_inner), opt);
  EXPECT_EQ(checked.event_checks_active(), expect_event_checks) << checked.name();
  for (const Request& r : t) {
    ASSERT_NO_THROW(checked.access(r)) << checked.name();
    plain->access(r);
  }
  ASSERT_NO_THROW(checked.final_check()) << checked.name();
  expect_stats_equal(checked.stats(), plain->stats());
  EXPECT_EQ(checked.accesses_checked(), t.size());
}

TEST(CheckedHierarchy, IndLruSingleRunsClean) {
  const Trace t = single_trace();
  expect_clean(make_ind_lru({32, 64, 48}), make_ind_lru({32, 64, 48}), t);
}

TEST(CheckedHierarchy, IndLruMultiClientRunsClean) {
  const Trace t = multi_trace();
  expect_clean(make_ind_lru({16, 64}, 3), make_ind_lru({16, 64}, 3), t);
}

TEST(CheckedHierarchy, UniLruRunsClean) {
  const Trace t = single_trace();
  expect_clean(make_uni_lru({24, 40, 36}), make_uni_lru({24, 40, 36}), t);
}

TEST(CheckedHierarchy, UniLruLoopRunsClean) {
  const Trace t = loop_trace();
  expect_clean(make_uni_lru({8, 12, 10}), make_uni_lru({8, 12, 10}), t);
}

TEST(CheckedHierarchy, UniLruMultiInsertionVariantsRunClean) {
  const Trace t = multi_trace();
  for (auto ins : {UniLruInsertion::kMru, UniLruInsertion::kMiddle,
                   UniLruInsertion::kLru}) {
    expect_clean(make_uni_lru_multi(16, 64, 3, ins),
                 make_uni_lru_multi(16, 64, 3, ins), t);
  }
}

TEST(CheckedHierarchy, ReloadUniLruRunsClean) {
  const Trace t = single_trace();
  expect_clean(make_reload_uni_lru({24, 40, 36}), make_reload_uni_lru({24, 40, 36}),
               t);
}

TEST(CheckedHierarchy, MqHierarchyRunsClean) {
  const Trace t = multi_trace();
  expect_clean(make_mq_hierarchy(16, 64, 3), make_mq_hierarchy(16, 64, 3), t);
}

TEST(CheckedHierarchy, UlcSingleRunsClean) {
  const Trace t = single_trace();
  expect_clean(make_ulc({32, 48, 40}), make_ulc({32, 48, 40}), t);
}

TEST(CheckedHierarchy, UlcSingleTwoLevelLoopRunsClean) {
  const Trace t = loop_trace();
  expect_clean(make_ulc({10, 14}), make_ulc({10, 14}), t);
}

TEST(CheckedHierarchy, UlcMultiRunsClean) {
  const Trace t = multi_trace();
  expect_clean(make_ulc_multi(16, 64, 3), make_ulc_multi(16, 64, 3), t);
}

TEST(CheckedHierarchy, UlcMultiThreeRunsClean) {
  const Trace t = multi_trace();
  expect_clean(make_ulc_multi_three(12, 32, 48, 3),
               make_ulc_multi_three(12, 32, 48, 3), t);
}

// The byte laws on traces where they differ from the count laws: every
// scheme must keep its byte twins conserved against the narrated byte flow,
// its byte occupancy under budget at access boundaries, and its internal
// byte accounting in step with the shadow model — on mixed-size traces.
TEST(CheckedHierarchy, MixedSizeSingleClientSchemesRunClean) {
  const Trace t = sized_single_trace();
  expect_clean(make_uni_lru({24, 40, 36}), make_uni_lru({24, 40, 36}), t);
  expect_clean(make_ulc({32, 48, 40}), make_ulc({32, 48, 40}), t);
  expect_clean(make_ind_lru({32, 64, 48}), make_ind_lru({32, 64, 48}), t);
  expect_clean(make_reload_uni_lru({24, 40, 36}), make_reload_uni_lru({24, 40, 36}),
               t);
}

TEST(CheckedHierarchy, MixedSizeMultiClientSchemesRunClean) {
  const Trace t = sized_multi_trace();
  expect_clean(make_ulc_multi(16, 64, 3), make_ulc_multi(16, 64, 3), t);
  expect_clean(make_uni_lru_multi(16, 64, 3, UniLruInsertion::kMru),
               make_uni_lru_multi(16, 64, 3, UniLruInsertion::kMru), t);
  expect_clean(make_mq_hierarchy(16, 64, 3), make_mq_hierarchy(16, 64, 3), t);
  expect_clean(make_ulc_multi_three(12, 32, 48, 3),
               make_ulc_multi_three(12, 32, 48, 3), t);
}

TEST(CheckedHierarchy, JournaledRunsStayCleanAndConserveWritebacks) {
  // With a journal attached through the auditor, every scheme must satisfy
  // the durability laws live (D1–D3 on every access) and its write-back
  // counter must equal the journal's appends.
  const Trace t = sized_single_trace();
  std::vector<SchemePtr> schemes;
  schemes.push_back(make_uni_lru({24, 40, 36}));
  schemes.push_back(make_ulc({32, 48, 40}));
  schemes.push_back(make_ind_lru({32, 64, 48}));
  schemes.push_back(make_reload_uni_lru({24, 40, 36}));
  for (SchemePtr& s : schemes) {
    CheckOptions opt;
    opt.sweep_interval = 32;
    opt.context = t.name();
    CheckedHierarchy checked(std::move(s), opt);
    WritebackJournal journal;
    checked.set_writeback_journal(&journal);
    for (const Request& r : t) ASSERT_NO_THROW(checked.access(r)) << checked.name();
    ASSERT_NO_THROW(checked.final_check()) << checked.name();
    EXPECT_EQ(journal.stats().appended, checked.stats().writebacks)
        << checked.name();
    EXPECT_GT(journal.stats().appended, 0u) << checked.name();
  }
}

TEST(CheckedHierarchy, UnsupportedSchemesFallBackToStatsChecks) {
  const Trace t = single_trace();
  // tempLRU variant and policy-server extensions only get the conservation
  // fallback; they must still run clean and transparently.
  expect_clean(make_ulc({32, 48}, 8), make_ulc({32, 48}, 8), t,
               /*expect_event_checks=*/false);
  expect_clean(make_policy_hierarchy(16, make_arc(64), 1),
               make_policy_hierarchy(16, make_arc(64), 1), t,
               /*expect_event_checks=*/false);
}

TEST(CheckedHierarchy, TransparentUnderRunScheme) {
  // The warmup reset_stats path of the experiment runner must not confuse
  // the auditor, and the checked run must report identical results.
  const Trace t = single_trace();
  auto checked = make_checked(make_ulc({32, 48, 40}), {false, 64, t.name()});
  auto plain = make_ulc({32, 48, 40});
  const CostModel m = CostModel::paper_three_level();
  const RunResult rc = run_scheme(*checked, t, m);
  const RunResult rp = run_scheme(*plain, t, m);
  expect_stats_equal(rc.stats, rp.stats);
  EXPECT_DOUBLE_EQ(rc.t_ave_ms, rp.t_ave_ms);
  EXPECT_STREQ(checked->name(), plain->name());
}

TEST(CheckedHierarchy, PaperPresetsTinyScaleRunClean) {
  // The paper's single-client workload stand-ins, audited end to end for
  // every exclusive scheme (sweeps at a coarser interval — these traces are
  // ~130k references).
  for (const char* name : {"cs", "zipf-small", "sprite"}) {
    const Trace t = make_preset(name);
    CheckOptions opt;
    opt.sweep_interval = 4096;
    opt.context = std::string("preset=") + name;
    std::vector<SchemePtr> schemes;
    schemes.push_back(make_uni_lru({400, 800, 600}));
    schemes.push_back(make_ulc({400, 800, 600}));
    schemes.push_back(make_ind_lru({400, 800, 600}));
    for (SchemePtr& s : schemes) {
      CheckedHierarchy checked(std::move(s), opt);
      for (const Request& r : t) ASSERT_NO_THROW(checked.access(r)) << name;
      ASSERT_NO_THROW(checked.final_check()) << name;
    }
  }
}

TEST(CheckedHierarchy, PaperMultiClientPresetTinyScaleRunsClean) {
  const Trace t = make_preset("httpd-multi", 0.002);  // 7 clients
  CheckOptions opt;
  opt.sweep_interval = 2048;
  opt.context = "preset=httpd-multi scale=0.002";
  std::vector<SchemePtr> schemes;
  schemes.push_back(make_ulc_multi(256, 1024, 7));
  schemes.push_back(make_uni_lru_multi(256, 1024, 7, UniLruInsertion::kMru));
  for (SchemePtr& s : schemes) {
    CheckedHierarchy checked(std::move(s), opt);
    for (const Request& r : t) ASSERT_NO_THROW(checked.access(r));
    ASSERT_NO_THROW(checked.final_check());
  }
}

TEST(CheckedHierarchy, AuditedCountsMatchProtocolMessageCounts) {
  // The narrated demote/reload counters the auditor certifies are the same
  // counts the message-level simulator produces by *playing* the protocol:
  // demotions == Demote messages on the links, per scheme.
  auto src = make_zipf_source(0, 500, 0.9, true, 7);
  const Trace t = generate(*src, 30000, 9, "z");
  const ProtocolConfig cfg = ProtocolConfig::paper_three_level({64, 64, 64});
  for (ProtocolScheme scheme :
       {ProtocolScheme::kUlc, ProtocolScheme::kUniLru, ProtocolScheme::kIndLru}) {
    const ProtocolResult r = run_protocol_sim(scheme, cfg, t);
    SchemePtr ref;
    if (scheme == ProtocolScheme::kUlc) ref = make_ulc(cfg.caps);
    if (scheme == ProtocolScheme::kUniLru) ref = make_uni_lru(cfg.caps);
    if (scheme == ProtocolScheme::kIndLru) ref = make_ind_lru(cfg.caps);
    auto checked = make_checked(std::move(ref), {false, 1024, "proto-xcheck"});
    const RunResult rr = run_scheme(*checked, t, CostModel::paper_three_level(),
                                    cfg.warmup_fraction);
    EXPECT_EQ(r.stats.level_hits, rr.stats.level_hits)
        << protocol_scheme_name(scheme);
    EXPECT_EQ(r.stats.misses, rr.stats.misses) << protocol_scheme_name(scheme);
    EXPECT_EQ(r.stats.demotions, rr.stats.demotions)
        << protocol_scheme_name(scheme);
  }
}

// ---- Mutation tests: the auditor must catch every broken variant ----

std::optional<ViolationKind> violation_of(SchemePtr scheme, const Trace& t,
                                          std::size_t sweep_interval = 8) {
  CheckOptions opt;
  opt.sweep_interval = sweep_interval;
  opt.context = "mutation-test";
  CheckedHierarchy checked(std::move(scheme), opt);
  try {
    for (const Request& r : t) checked.access(r);
    checked.final_check();
  } catch (const AuditViolation& v) {
    return v.kind;
  }
  return std::nullopt;
}

TEST(Mutations, DoublePlaceOnExclusiveSchemeIsExclusivityViolation) {
  const auto kind =
      violation_of(make_mutant(make_uni_lru({8, 12, 10}), Mutation::kDoublePlace),
                   loop_trace());
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(*kind, ViolationKind::kExclusivity);
}

TEST(Mutations, DoublePlaceOnInclusiveSchemeIsDuplicateViolation) {
  const auto kind =
      violation_of(make_mutant(make_ind_lru({8, 16}), Mutation::kDoublePlace),
                   loop_trace());
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(*kind, ViolationKind::kDuplicate);
}

TEST(Mutations, SkippedDemoteOverflowsTargetLevel) {
  // Dropping the deepest boundary slide leaves the next slide's target level
  // one over capacity — the replay check fires before the stats deltas do.
  const auto kind =
      violation_of(make_mutant(make_uni_lru({8, 12, 10}), Mutation::kSkipDemote),
                   loop_trace());
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(*kind, ViolationKind::kCapacity);
}

TEST(Mutations, SkippedDemoteOnUlcIsCaught) {
  // Needs the zipf trace: a pure loop over more blocks than the aggregate
  // cache degenerates ULC to pass-through (no demotions to drop).
  const auto kind =
      violation_of(make_mutant(make_ulc({8, 12, 10}), Mutation::kSkipDemote),
                   single_trace());
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(*kind, ViolationKind::kCapacity);
}

TEST(Mutations, DroppedEvictionOverflowsCapacity) {
  const auto kind =
      violation_of(make_mutant(make_uni_lru({8, 12, 10}), Mutation::kDropEvict),
                   loop_trace());
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(*kind, ViolationKind::kCapacity);
}

TEST(Mutations, SizeLeakOverflowsByteBudgetOnSizedTrace) {
  // "Evict until the newcomer fits" degraded to "evict once": a 4-unit
  // admission pushes several 1-unit victims out but only the first leaves
  // the narration, so the bottom level's byte occupancy exceeds its budget
  // at the end of the access — the byte-capacity law must bite.
  const auto kind =
      violation_of(make_mutant(make_uni_lru({8, 12, 10}), Mutation::kSizeLeak),
                   sized_loop_trace());
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(*kind, ViolationKind::kCapacity);
}

TEST(Mutations, SizeLeakIsInvisibleAtUnitSize) {
  // The same defect never fires on a unit-size trace: one admission needs at
  // most one victim, so the suppressed second eviction never exists. This is
  // exactly the bug class the pre-refactor (count-capacity) auditor could
  // not express.
  const auto kind =
      violation_of(make_mutant(make_uni_lru({8, 12, 10}), Mutation::kSizeLeak),
                   loop_trace());
  EXPECT_FALSE(kind.has_value());
}

TEST(Mutations, GhostDemoteIsCaught) {
  const auto kind =
      violation_of(make_mutant(make_uni_lru({8, 12, 10}), Mutation::kGhostDemote),
                   loop_trace());
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(*kind, ViolationKind::kGhost);
}

TEST(Mutations, GhostDemoteOnUlcMultiIsCaught) {
  const auto kind = violation_of(
      make_mutant(make_ulc_multi(8, 24, 3), Mutation::kGhostDemote), multi_trace());
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(*kind, ViolationKind::kGhost);
}

TEST(Mutations, ServeOfWrongBlockIsSequencingViolation) {
  // Needs the zipf trace: the loop trace thrashes with no lower-level hits,
  // so uniLRU never emits a serve for the mutant to corrupt.
  const auto kind = violation_of(
      make_mutant(make_uni_lru({8, 12, 10}), Mutation::kServeWrongBlock),
      single_trace());
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(*kind, ViolationKind::kSequencing);
}

TEST(Mutations, DroppedMissBreaksConservation) {
  const auto kind =
      violation_of(make_mutant(make_uni_lru({8, 12, 10}), Mutation::kStatsDrop),
                   loop_trace());
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(*kind, ViolationKind::kConservation);
}

TEST(Mutations, LyingResidencyDirectoryDrifts) {
  const auto kind = violation_of(
      make_mutant(make_uni_lru({8, 12, 10}), Mutation::kLyingResidency),
      loop_trace(), /*sweep_interval=*/4);
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(*kind, ViolationKind::kDrift);
}

TEST(Mutations, CorruptedYardstickIsCaught) {
  const auto kind = violation_of(
      make_mutant(make_uni_lru({8, 12, 10}), Mutation::kMisorderYardstick),
      loop_trace(), /*sweep_interval=*/4);
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(*kind, ViolationKind::kYardstick);
}

TEST(Mutations, DroppedDirtyWritebackIsDurabilityViolation) {
  // A dirty victim leaves the hierarchy with its write-back suppressed
  // (narration and counter both): only the durability shadow can see the
  // stale on-disk copy become the sole copy.
  const auto kind =
      violation_of(make_mutant(make_uni_lru({8, 12, 10}), Mutation::kDropDirty),
                   loop_trace());
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(*kind, ViolationKind::kDurability);
}

TEST(Mutations, DroppedDirtyWritebackOnUlcIsCaught) {
  const auto kind =
      violation_of(make_mutant(make_ulc({8, 12, 10}), Mutation::kDropDirty),
                   single_trace());
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(*kind, ViolationKind::kDurability);
}

TEST(Mutations, AckBeforeWriteIsDurabilityViolation) {
  // A clean victim's eviction gains a fabricated write-back (counter bumped
  // to match): acknowledging data that was never dirty.
  const auto kind = violation_of(
      make_mutant(make_uni_lru({8, 12, 10}), Mutation::kAckBeforeWrite),
      loop_trace());
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(*kind, ViolationKind::kDurability);
}

TEST(Mutations, ReplayReorderViolatesJournalLaw) {
  // The mutant completes each access's journal write-backs newest-first; the
  // journal's prefix-order law (D3, checked at every access boundary) fires
  // on the first access that writes back two or more blocks. Needs the sized
  // trace so one big admission evicts several dirty victims at once.
  CheckOptions opt;
  opt.sweep_interval = 8;
  opt.context = "mutation-test";
  CheckedHierarchy checked(
      make_mutant(make_uni_lru({8, 12, 10}), Mutation::kReplayReorder), opt);
  WritebackJournal journal(WritebackJournal::Mode::kManual);
  checked.set_writeback_journal(&journal);
  std::optional<ViolationKind> kind;
  try {
    for (const Request& r : sized_loop_trace()) checked.access(r);
    checked.final_check();
  } catch (const AuditViolation& v) {
    kind = v.kind;
  }
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(*kind, ViolationKind::kDurability);
  EXPECT_GT(journal.stats().replay_reorders, 0u);
}

using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, AbortModeDiesWithReplayContext) {
  const Trace t = loop_trace();
  EXPECT_DEATH(
      {
        CheckOptions opt;
        opt.abort_on_violation = true;
        opt.context = "seed=1 preset=loop";
        CheckedHierarchy checked(
            make_mutant(make_uni_lru({8, 12, 10}), Mutation::kDropEvict), opt);
        for (const Request& r : t) checked.access(r);
      },
      "audit violation.*capacity.*seed=1 preset=loop");
}

}  // namespace
}  // namespace ulc
