// End-to-end checks that the reproduction exhibits the paper's qualitative
// results on (scaled) paper workloads. These are the "shape" assertions of
// Figures 6 and 7 — who wins, by what kind of margin, and where the costs
// come from — run at a scale small enough for CI.
#include <gtest/gtest.h>

#include "hierarchy/hierarchy.h"
#include "hierarchy/runner.h"
#include "workloads/paper_presets.h"

namespace ulc {
namespace {

struct ThreeLevelResults {
  RunResult ind;
  RunResult uni;
  RunResult ulc;
};

ThreeLevelResults run_three_level(const Trace& t, std::size_t per_level_cap) {
  const CostModel m = CostModel::paper_three_level();
  const std::vector<std::size_t> caps(3, per_level_cap);
  ThreeLevelResults out;
  auto ind = make_ind_lru(caps);
  auto uni = make_uni_lru(caps);
  auto ulc = make_ulc(caps);
  out.ind = run_scheme(*ind, t, m);
  out.uni = run_scheme(*uni, t, m);
  out.ulc = run_scheme(*ulc, t, m);
  return out;
}

// tpcc1: looping beyond L1. Paper: uniLRU hits almost entirely at L2 with a
// ~100% first-boundary demotion rate; ULC splits the loop across L1/L2 with
// demotion rates around 1%, beating uniLRU's access time by a wide margin.
TEST(PaperShapes, Tpcc1ThreeLevel) {
  const Trace t = preset_tpcc1(0.05, 1);
  const auto r = run_three_level(t, 6400);  // 50MB per level

  EXPECT_LT(r.uni.stats.hit_ratio(0), 0.05);
  EXPECT_GT(r.uni.stats.hit_ratio(1), 0.8);
  EXPECT_GT(r.uni.stats.demotion_ratio(0), 0.9);

  EXPECT_GT(r.ulc.stats.hit_ratio(0), 0.4);
  EXPECT_LT(r.ulc.stats.demotion_ratio(0), 0.1);
  EXPECT_LT(r.ulc.t_ave_ms, r.uni.t_ave_ms);
  EXPECT_LT(r.uni.t_ave_ms, r.ind.t_ave_ms);
}

// random: every scheme's hit rate is proportional to the cache it really
// exploits. indLRU wastes the lower levels; uniLRU and ULC use the
// aggregate. (Paper: 19.5% per level for uniLRU/ULC.)
TEST(PaperShapes, RandomThreeLevel) {
  const Trace t = preset_random_large(0.02, 1);
  const auto r = run_three_level(t, 12800);  // 100MB per level

  EXPECT_NEAR(r.ind.stats.hit_ratio(0), 0.195, 0.02);
  EXPECT_LT(r.ind.stats.hit_ratio(1) + r.ind.stats.hit_ratio(2), 0.06);

  EXPECT_NEAR(r.uni.stats.total_hit_ratio(), 0.586, 0.03);
  EXPECT_NEAR(r.ulc.stats.total_hit_ratio(), 0.586, 0.06);
  // ULC keeps uniLRU-class hit rates without uniLRU's demotion bill.
  EXPECT_LT(r.ulc.stats.demotion_ratio(0), r.uni.stats.demotion_ratio(0));
  EXPECT_LE(r.ulc.t_ave_ms, r.uni.t_ave_ms * 1.02);
}

// zipf: strong skew is LRU-friendly at the top; all schemes do well at L1,
// and ULC must not be worse than uniLRU overall.
TEST(PaperShapes, ZipfThreeLevel) {
  const Trace t = preset_zipf_large(0.01, 1);
  const auto r = run_three_level(t, 12800);
  EXPECT_GT(r.uni.stats.hit_ratio(0), 0.5);
  EXPECT_GT(r.ulc.stats.hit_ratio(0), 0.5);
  EXPECT_LE(r.ulc.t_ave_ms, r.uni.t_ave_ms + 0.05);
  EXPECT_LT(r.ulc.t_ave_ms, r.ind.t_ave_ms);
}

// Every single-client preset: ULC beats indLRU on access time, and its
// demotion share of access time stays small (paper: 1%-8.3%).
class SingleClientSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(SingleClientSweep, UlcWinsWithCheapDemotions) {
  const Trace t = make_preset(GetParam(), 0.02, 1);
  const std::size_t cap = std::string(GetParam()) == "tpcc1" ? 6400 : 12800;
  const auto r = run_three_level(t, cap);
  EXPECT_LT(r.ulc.t_ave_ms, r.ind.t_ave_ms) << "vs indLRU";
  EXPECT_LE(r.ulc.t_ave_ms, r.uni.t_ave_ms * 1.02) << "vs uniLRU";
  if (r.ulc.t_ave_ms > 0.01) {
    EXPECT_LT(r.ulc.time.demotion_component / r.ulc.t_ave_ms, 0.15);
  }
}

INSTANTIATE_TEST_SUITE_P(Presets, SingleClientSweep,
                         ::testing::Values("random", "zipf", "httpd", "dev1",
                                           "tpcc1"));

// Figure 7 shape: in the multi-client structure ULC achieves the best
// access time of the four schemes.
class MultiClientSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(MultiClientSweep, UlcBestOfFour) {
  const std::string name = GetParam();
  std::size_t client_cap = 1024;  // httpd: 8MB clients (paper-exact)
  std::size_t server_cap = 8192;
  std::size_t n_clients = 7;
  double scale = 0.05;
  // MQ's best case is a stationary frequency-skewed server stream; our
  // synthetic httpd is closer to that than the real 24h trace was, so MQ is
  // allowed a small edge there (see EXPERIMENTS.md).
  double mq_slack = 1.20;
  if (name == "openmail") {
    // Paper-exact sizes: the openmail preset's per-client working sets are
    // tuned against the 1GB clients, so the test runs it at full scale (the
    // suite's slowest test, ~40s).
    client_cap = 131072;  // 1GB
    server_cap = 262144;  // 2GB
    n_clients = 6;
    scale = 1.0;
    mq_slack = 1.0;
  } else if (name == "db2") {
    client_cap = 8192;
    server_cap = 32768;
    n_clients = 8;
    scale = 0.05;
    mq_slack = 1.0;
  }
  const Trace t = make_preset(name, scale, 1);
  const CostModel m = CostModel::paper_two_level();

  auto ulc = make_ulc_multi(client_cap, server_cap, n_clients);
  const RunResult rulc = run_scheme(*ulc, t, m);

  auto ind = make_ind_lru({client_cap, server_cap}, n_clients);
  const RunResult rind = run_scheme(*ind, t, m);

  auto mq = make_mq_hierarchy(client_cap, server_cap, n_clients);
  const RunResult rmq = run_scheme(*mq, t, m);

  double best_uni = 1e18;
  for (auto ins : {UniLruInsertion::kMru, UniLruInsertion::kMiddle,
                   UniLruInsertion::kLru}) {
    auto uni = make_uni_lru_multi(client_cap, server_cap, n_clients, ins);
    best_uni = std::min(best_uni, run_scheme(*uni, t, m).t_ave_ms);
  }

  EXPECT_LE(rulc.t_ave_ms, rind.t_ave_ms * 1.001) << "vs indLRU";
  EXPECT_LE(rulc.t_ave_ms, rmq.t_ave_ms * mq_slack) << "vs MQ";
  EXPECT_LE(rulc.t_ave_ms, best_uni * 1.001) << "vs best uniLRU";
}

INSTANTIATE_TEST_SUITE_P(Presets, MultiClientSweep,
                         ::testing::Values("httpd-multi", "openmail", "db2"));

}  // namespace
}  // namespace ulc
