#include <gtest/gtest.h>

#include "hierarchy/hierarchy.h"
#include "hierarchy/runner.h"
#include "measures/next_use.h"
#include "replacement/cache_policy.h"
#include "workloads/synthetic.h"

namespace ulc {
namespace {

Trace loop_trace(std::uint64_t blocks, std::uint64_t refs) {
  auto src = make_loop_source(0, blocks);
  return generate(*src, refs, 1, "loop");
}

TEST(CostModel, PaperThreeLevelNumbers) {
  const CostModel m = CostModel::paper_three_level();
  EXPECT_DOUBLE_EQ(m.hit_time(0), 0.0);
  EXPECT_DOUBLE_EQ(m.hit_time(1), 1.0);
  EXPECT_DOUBLE_EQ(m.hit_time(2), 1.2);
  EXPECT_DOUBLE_EQ(m.miss_time(), 11.2);
  EXPECT_DOUBLE_EQ(m.demote_cost(0), 1.0);
  EXPECT_DOUBLE_EQ(m.demote_cost(1), 0.2);
}

TEST(CostModel, BreakdownMatchesHandComputation) {
  HierarchyStats s;
  s.resize(3);
  s.references = 100;
  s.level_hits = {50, 20, 10};
  s.misses = 20;
  s.demotions = {30, 10, 0};
  const CostModel m = CostModel::paper_three_level();
  const AccessTimeBreakdown b = compute_access_time(s, m);
  EXPECT_DOUBLE_EQ(b.hit_component, 0.5 * 0 + 0.2 * 1.0 + 0.1 * 1.2);
  EXPECT_DOUBLE_EQ(b.miss_component, 0.2 * 11.2);
  EXPECT_DOUBLE_EQ(b.demotion_component, 0.3 * 1.0 + 0.1 * 0.2);
  EXPECT_DOUBLE_EQ(b.total(),
                   b.hit_component + b.miss_component + b.demotion_component);
}

TEST(IndLru, InclusiveDuplicationWastesLowerLevels) {
  // Zipf working set that fits in one level: indLRU duplicates it at every
  // level, so L2/L3 add nearly nothing.
  auto src = make_zipf_source(0, 256, 1.1, true, 3);
  const Trace t = generate(*src, 30000, 5, "z");
  auto scheme = make_ind_lru({128, 128, 128});
  for (const Request& r : t) scheme->access(r);
  const HierarchyStats& s = scheme->stats();
  EXPECT_GT(s.hit_ratio(0), 0.5);
  EXPECT_LT(s.hit_ratio(1) + s.hit_ratio(2), 0.35);
}

TEST(IndLru, LowerLevelServesClientMissWorkingSet) {
  // Loop larger than L1 but within L1+L2 under *independent* LRU still
  // thrashes both (the filtered stream has no recency left) — the classic
  // multi-level caching failure the paper motivates with.
  const Trace t = loop_trace(192, 20000);
  auto scheme = make_ind_lru({128, 128});
  for (const Request& r : t) scheme->access(r);
  EXPECT_LT(scheme->stats().total_hit_ratio(), 0.05);
}

TEST(UniLru, AggregateHitRateEqualsSingleLru) {
  // uniLRU's defining property (paper goal 1): the hierarchy behaves like
  // one LRU of the aggregate size.
  auto src = make_zipf_source(0, 2000, 0.9, true, 7);
  const Trace t = generate(*src, 60000, 9, "z");
  auto scheme = make_uni_lru({100, 300, 200});
  auto single = make_lru(600);
  std::uint64_t single_hits = 0;
  for (const Request& r : t) {
    scheme->access(r);
    single_hits += single->access(r.block, {}) ? 1 : 0;
  }
  std::uint64_t multi_hits = 0;
  for (auto h : scheme->stats().level_hits) multi_hits += h;
  EXPECT_EQ(multi_hits, single_hits);
}

TEST(UniLru, LoopBeyondL1DemotesEveryReference) {
  // Loop that fits L1+L2 but not L1: every reference hits L2 and pushes a
  // block across the first boundary — the 100% demotion rate the paper
  // reports for tpcc1.
  const Trace t = loop_trace(150, 20000);
  auto scheme = make_uni_lru({100, 100});
  for (const Request& r : t) scheme->access(r);
  scheme->reset_stats();
  for (const Request& r : t) scheme->access(r);
  const HierarchyStats& s = scheme->stats();
  EXPECT_GT(s.hit_ratio(1), 0.99);
  EXPECT_LT(s.hit_ratio(0), 0.01);
  EXPECT_GT(s.demotion_ratio(0), 0.99);
}

TEST(UniLru, LruFriendlyTraceHasFewDemotions) {
  auto src = make_temporal_source(0, 500, 0.05, 6.0);
  const Trace t = generate(*src, 30000, 11, "t");
  auto scheme = make_uni_lru({200, 200});
  for (const Request& r : t) scheme->access(r);
  EXPECT_LT(scheme->stats().demotion_ratio(0), 0.35);
  EXPECT_GT(scheme->stats().hit_ratio(0), 0.6);
}

TEST(Reload, HitRatesIdenticalToUniLruButNoDemotions) {
  auto src = make_zipf_source(0, 1000, 0.8, true, 13);
  const Trace t = generate(*src, 40000, 15, "z");
  auto uni = make_uni_lru({100, 200});
  auto reload = make_reload_uni_lru({100, 200});
  for (const Request& r : t) {
    uni->access(r);
    reload->access(r);
  }
  EXPECT_EQ(uni->stats().level_hits[0], reload->stats().level_hits[0]);
  EXPECT_EQ(uni->stats().level_hits[1], reload->stats().level_hits[1]);
  EXPECT_EQ(uni->stats().misses, reload->stats().misses);
  EXPECT_EQ(uni->stats().demotions[0], reload->stats().reloads[0]);
  EXPECT_EQ(reload->stats().demotions[0], 0u);
  // Cost: reload moves the traffic off the critical path...
  const CostModel m{{1.0, 10.0}};
  const auto bu = compute_access_time(uni->stats(), m);
  const auto br = compute_access_time(reload->stats(), m);
  EXPECT_LT(br.total(), bu.total());
  // ...but pays for it in disk work.
  EXPECT_GT(br.reload_disk_ms, 0.0);
}

TEST(MqHierarchy, ServerProtectsFrequentBlocksFromScans) {
  // Frequent hot set + a flushing loop: an LRU server loses the hot set to
  // the scan, an MQ server keeps it resident in its high queues.
  std::vector<PatternPtr> sources;
  sources.push_back(make_zipf_source(0, 200, 1.1, true, 3));
  sources.push_back(make_loop_source(10000, 600));
  auto src = make_mixture_source(std::move(sources), {0.5, 0.5});
  const Trace t = generate(*src, 50000, 21, "mixed");
  auto mq = make_mq_hierarchy(/*client_cap=*/64, /*server_cap=*/160, 1);
  auto ind = make_ind_lru({64, 160});
  for (const Request& r : t) {
    mq->access(r);
    ind->access(r);
  }
  EXPECT_GT(mq->stats().total_hit_ratio(), ind->stats().total_hit_ratio());
}

TEST(PolicyHierarchy, LirsServerResistsLoopsWhereLruThrashes) {
  // Loop beyond client and server capacities individually: an LRU server
  // thrashes; a LIRS server keeps a resident subset (its single-level
  // LLD-style ranking), so the generic policy-hierarchy factory must beat
  // indLRU here.
  const Trace t = loop_trace(260, 40000);
  auto lirs = make_policy_hierarchy(64, make_lirs(LirsConfig{160, 0.05}), 1);
  auto ind = make_ind_lru({64, 160});
  for (const Request& r : t) {
    lirs->access(r);
    ind->access(r);
  }
  EXPECT_GT(lirs->stats().total_hit_ratio(), ind->stats().total_hit_ratio() + 0.3);
  EXPECT_EQ(std::string(lirs->name()), "LRU+LIRS");
}

TEST(Runner, WarmupResetsStats) {
  const Trace t = loop_trace(50, 10000);
  auto scheme = make_uni_lru({100, 100});
  const RunResult r = run_scheme(*scheme, t, CostModel{{1.0, 10.0}}, 0.1);
  EXPECT_EQ(r.stats.references, 9000u);
  // Loop of 50 fits L1 entirely: after warm-up everything is an L1 hit.
  EXPECT_EQ(r.stats.level_hits[0], 9000u);
  EXPECT_DOUBLE_EQ(r.t_ave_ms, 0.0);
  EXPECT_EQ(r.scheme, std::string("uniLRU"));
}

TEST(UlcScheme, SchemeStatsMatchEngineBehaviour) {
  auto src = make_zipf_source(0, 400, 1.0, true, 17);
  const Trace t = generate(*src, 20000, 19, "z");
  auto scheme = make_ulc({64, 64, 64});
  for (const Request& r : t) scheme->access(r);
  const HierarchyStats& s = scheme->stats();
  std::uint64_t total = s.misses;
  for (auto h : s.level_hits) total += h;
  EXPECT_EQ(total, s.references);
  EXPECT_EQ(s.references, t.size());
}

// ULC vs uniLRU on the tpcc-like loop: same-or-better hit placement with a
// demotion rate lower by orders of magnitude (the paper's headline).
TEST(UlcScheme, LoopPlacementBeatsUniLruOnDemotions) {
  const Trace t = loop_trace(150, 30000);
  auto ulc = make_ulc({100, 100});
  auto uni = make_uni_lru({100, 100});
  const CostModel m{{1.0, 10.0}};
  const RunResult ru = run_scheme(*ulc, t, m);
  const RunResult rn = run_scheme(*uni, t, m);
  EXPECT_LT(ru.stats.demotion_ratio(0), 0.02);
  EXPECT_GT(rn.stats.demotion_ratio(0), 0.99);
  // ULC serves part of the loop from L1 (access-time-aware distribution).
  EXPECT_GT(ru.stats.hit_ratio(0), 0.5);
  EXPECT_LT(ru.t_ave_ms, rn.t_ave_ms);
}

TEST(OptLayout, TotalHitRateEqualsAggregateBelady) {
  auto src = make_zipf_source(0, 800, 0.9, true, 3);
  const Trace t = generate(*src, 40000, 5, "z");
  auto layout = make_opt_layout({50, 150, 100}, t);
  const auto nu = compute_next_use(t);
  auto opt = make_opt(300);
  std::uint64_t opt_hits = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    layout->access(t[i]);
    opt_hits += opt->access(t[i].block, AccessContext{i, nu[i]}) ? 1 : 0;
  }
  std::uint64_t layout_hits = 0;
  for (auto h : layout->stats().level_hits) layout_hits += h;
  EXPECT_EQ(layout_hits, opt_hits);
}

TEST(OptLayout, ServesEveryHitFromTheTopAtAMovementPrice) {
  // The about-to-be-referenced block always has the nearest next use, so a
  // clairvoyant ND layout holds it at L1 by the time it is referenced —
  // Figure 2's "ND puts everything in segment 1". The price is exactly what
  // Figure 3 charges ND with: constant cross-boundary movement.
  auto src = make_zipf_source(0, 800, 1.0, true, 7);
  const Trace t = generate(*src, 40000, 9, "z");
  auto layout = make_opt_layout({100, 100, 100}, t);
  for (const Request& r : t) layout->access(r);
  const HierarchyStats& s = layout->stats();
  EXPECT_GT(s.hit_ratio(0), 0.99 * s.total_hit_ratio());
  EXPECT_GT(s.demotion_ratio(0), 0.2);  // heavy layout movement
}

class OptLayoutDominanceTest : public ::testing::TestWithParam<int> {};

TEST_P(OptLayoutDominanceTest, NoSchemeBeatsIt) {
  PatternPtr src;
  switch (GetParam()) {
    case 0:
      src = make_uniform_source(0, 600);
      break;
    case 1:
      src = make_zipf_source(0, 600, 1.0, true, 5);
      break;
    case 2:
      src = make_loop_source(0, 250);
      break;
    default:
      src = make_temporal_source(0, 600, 0.1, 4.0);
      break;
  }
  const Trace t = generate(*src, 30000, 11, "w");
  const std::vector<std::size_t> caps{64, 64, 64};
  auto layout = make_opt_layout(caps, t);
  auto ulc = make_ulc(caps);
  auto uni = make_uni_lru(caps);
  for (const Request& r : t) {
    layout->access(r);
    ulc->access(r);
    uni->access(r);
  }
  EXPECT_GE(layout->stats().total_hit_ratio() + 1e-9,
            ulc->stats().total_hit_ratio());
  EXPECT_GE(layout->stats().total_hit_ratio() + 1e-9,
            uni->stats().total_hit_ratio());
}

INSTANTIATE_TEST_SUITE_P(Workloads, OptLayoutDominanceTest,
                         ::testing::Values(0, 1, 2, 3));

// access_batch is contractually "access() in a loop"; every scheme that
// overrides it with a devirtualized prefetch pipeline must produce the exact
// counters of the per-access path, including across arbitrary span splits
// (run_scheme splits at the warmup boundary).
TEST(AccessBatch, EveryOverrideMatchesThePerAccessLoop) {
  std::vector<PatternPtr> sources;
  sources.push_back(make_zipf_source(0, 400, 0.9, true, 3));
  sources.push_back(make_loop_source(10000, 300));
  sources.push_back(make_zipf_source(20000, 500, 1.1, true, 7));
  const Trace t = generate_multi(std::move(sources), {0.5, 0.3, 0.2}, 20000,
                                 13, "batch");
  using Factory = SchemePtr (*)();
  const std::pair<const char*, Factory> factories[] = {
      {"indLRU", [] { return make_ind_lru({64, 128, 256}, 3); }},
      {"uniLRU", [] { return make_uni_lru({64, 128, 256}); }},
      {"uniLRU-multi",
       [] { return make_uni_lru_multi(64, 256, 3, UniLruInsertion::kMru); }},
      {"MQ", [] { return make_mq_hierarchy(64, 256, 3); }},
      {"reload", [] { return make_reload_uni_lru({64, 128, 256}); }},
      {"ULC", [] { return make_ulc({64, 128, 256}); }},
      {"ULC-multi", [] { return make_ulc_multi(64, 256, 3); }},
      {"ULC-multi3", [] { return make_ulc_multi_three(64, 128, 256, 3); }},
      {"private",
       [] {
         return make_client_private([] { return make_ulc({64, 128}); }, 3);
       }},
  };
  for (const auto& [name, factory] : factories) {
    SchemePtr looped = factory();
    for (const Request& r : t) looped->access(r);
    SchemePtr batched = factory();
    // Uneven splits, including a 1-request span and an empty tail.
    const std::span<const Request> all(t.requests());
    batched->access_batch(all.first(1));
    batched->access_batch(all.subspan(1, 7777));
    batched->access_batch(all.subspan(7778));
    batched->access_batch(all.subspan(t.size()));
    EXPECT_EQ(counters_to_json(looped->stats()).dump(),
              counters_to_json(batched->stats()).dump())
        << name;
  }
}

}  // namespace
}  // namespace ulc
