#include <gtest/gtest.h>

#include "hierarchy/hierarchy.h"
#include "hierarchy/runner.h"
#include "proto/event_queue.h"
#include "proto/link.h"
#include "proto/multi_protocol_sim.h"
#include "proto/protocol_sim.h"
#include "workloads/synthetic.h"

namespace ulc {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, EqualTimesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) q.schedule(1.0, [&order, i] { order.push_back(i); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] {
    ++fired;
    q.schedule_in(1.0, [&] { ++fired; });
  });
  q.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueue, RunOneAndLimits) {
  EventQueue q;
  int fired = 0;
  for (int i = 0; i < 4; ++i) q.schedule(i, [&] { ++fired; });
  EXPECT_EQ(q.run(2), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(q.run_one());
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_FALSE(q.run_one());
}

TEST(SimLink, LatencyPlusTransmission) {
  SimLink link(LinkConfig{0.5, 8.0});  // 8 MB/s
  // 8192 bytes at 8MB/s = 8192 / (8 * 1048576 / 1000) ms ~= 0.9766ms
  const SimTime arrival = link.deliver_at(0, kBlockBytes, 0.0);
  EXPECT_NEAR(arrival, 0.5 + 0.9766, 0.001);
  EXPECT_NEAR(link.busy_ms(0), 0.9766, 0.001);
  EXPECT_EQ(link.messages(0), 1u);
}

TEST(SimLink, MessagesSerializePerDirection) {
  SimLink link(LinkConfig{0.0, 8.0});
  const SimTime a1 = link.deliver_at(0, kBlockBytes, 0.0);
  const SimTime a2 = link.deliver_at(0, kBlockBytes, 0.0);  // queues behind
  EXPECT_NEAR(a2, 2 * a1, 1e-9);
  // The other direction is independent.
  const SimTime b1 = link.deliver_at(1, kBlockBytes, 0.0);
  EXPECT_NEAR(b1, a1, 1e-9);
}

TEST(SimLink, IdleLinkDoesNotQueue) {
  SimLink link(LinkConfig{0.1, 8.0});
  link.deliver_at(0, kBlockBytes, 0.0);
  // Sent long after the first finished: no queueing delay.
  const SimTime arrival = link.deliver_at(0, kBlockBytes, 100.0);
  EXPECT_NEAR(arrival, 100.0 + 0.1 + 0.9766, 0.001);
}

TEST(SimLink, AsyncSendDeliversViaQueue) {
  EventQueue q;
  SimLink link(q, LinkConfig{1.0, 8.0});
  bool delivered = false;
  link.send(0, kControlBytes, [&] { delivered = true; });
  q.run();
  EXPECT_TRUE(delivered);
  EXPECT_GT(q.now(), 1.0);
}

// --- protocol simulation ---

ProtocolConfig small_config() {
  ProtocolConfig cfg = ProtocolConfig::paper_three_level({64, 64, 64});
  return cfg;
}

TEST(ProtocolSim, AllHitsAtClientCostNothing) {
  auto src = make_loop_source(0, 32);  // fits in L1
  const Trace t = generate(*src, 5000, 1, "tiny");
  const ProtocolResult r =
      run_protocol_sim(ProtocolScheme::kUlc, small_config(), t);
  EXPECT_GT(r.stats.hit_ratio(0), 0.99);
  EXPECT_LT(r.response_ms.mean(), 1e-9);
}

TEST(ProtocolSim, MeasuredMatchesAnalyticWhenUncontended) {
  // Low demotion traffic -> queueing is negligible and the measured mean
  // response must sit close to the paper's analytic T_ave.
  auto src = make_zipf_source(0, 400, 1.0, true, 3);
  const Trace t = generate(*src, 40000, 5, "z");
  const ProtocolResult r =
      run_protocol_sim(ProtocolScheme::kUlc, small_config(), t);
  EXPECT_NEAR(r.response_ms.mean(), r.analytic_t_ave_ms,
              0.1 * r.analytic_t_ave_ms + 0.05);
}

TEST(ProtocolSim, SchemesAgreeWithTraceRunnerCounts) {
  // The protocol simulator must produce the same hit/miss/demotion COUNTS
  // as the pure trace-driven schemes (timing differs, caching must not).
  auto src = make_zipf_source(0, 500, 0.9, true, 7);
  const Trace t = generate(*src, 30000, 9, "z");
  const ProtocolConfig cfg = small_config();
  for (ProtocolScheme scheme :
       {ProtocolScheme::kUlc, ProtocolScheme::kUniLru, ProtocolScheme::kIndLru}) {
    const ProtocolResult r = run_protocol_sim(scheme, cfg, t);
    SchemePtr ref;
    if (scheme == ProtocolScheme::kUlc) ref = make_ulc(cfg.caps);
    if (scheme == ProtocolScheme::kUniLru) ref = make_uni_lru(cfg.caps);
    if (scheme == ProtocolScheme::kIndLru) ref = make_ind_lru(cfg.caps);
    const RunResult rr =
        run_scheme(*ref, t, CostModel::paper_three_level(), cfg.warmup_fraction);
    EXPECT_EQ(r.stats.level_hits, rr.stats.level_hits)
        << protocol_scheme_name(scheme);
    EXPECT_EQ(r.stats.misses, rr.stats.misses) << protocol_scheme_name(scheme);
    EXPECT_EQ(r.stats.demotions, rr.stats.demotions)
        << protocol_scheme_name(scheme);
  }
}

TEST(ProtocolSim, ClosedLoopValidatesCriticalPathCharging) {
  // The paper charges each demotion its full link cost on the critical path
  // (§4.1) rather than assuming it can be hidden. In a closed loop that is
  // exactly what happens: a demoted block occupies the downlink just as the
  // next request needs it, so uniLRU's *measured* time on a demote-every-
  // reference loop lands on its analytic value — and stays far above ULC's.
  auto src = make_loop_source(0, 96);  // beyond L1, inside L1+L2
  const Trace t = generate(*src, 20000, 1, "loop");
  ProtocolConfig cfg = ProtocolConfig::paper_three_level({64, 64, 64});
  cfg.links[0] = LinkConfig{0.5, 4.0};  // slow LAN: ~2.5ms per block

  const ProtocolResult uni = run_protocol_sim(ProtocolScheme::kUniLru, cfg, t);
  const ProtocolResult ulc = run_protocol_sim(ProtocolScheme::kUlc, cfg, t);
  EXPECT_NEAR(uni.response_ms.mean(), uni.analytic_t_ave_ms,
              0.15 * uni.analytic_t_ave_ms);
  EXPECT_LT(ulc.response_ms.mean(), 0.7 * uni.response_ms.mean());
  EXPECT_GT(uni.link_down_utilization[0], ulc.link_down_utilization[0]);
}

TEST(ProtocolSim, DiskSerializesMisses) {
  // Pure cold misses: every reference takes at least the disk service time,
  // and the disk is the bottleneck resource.
  auto src = make_scan_source(0, 100000);
  const Trace t = generate(*src, 5000, 1, "scan");
  const ProtocolResult r =
      run_protocol_sim(ProtocolScheme::kIndLru, small_config(), t);
  EXPECT_GT(r.stats.miss_ratio(), 0.99);
  EXPECT_GE(r.response_ms.min(), 10.0);
  EXPECT_GT(r.disk_utilization, 0.8);
}

// --- multi-client protocol simulation ---

std::vector<PatternPtr> looping_clients(std::size_t n, std::uint64_t loop_blocks) {
  std::vector<PatternPtr> sources;
  for (std::size_t c = 0; c < n; ++c)
    sources.push_back(make_loop_source(100000ull * c, loop_blocks));
  return sources;
}

TEST(MultiProtocolSim, CompletesAllReferences) {
  MultiProtocolConfig cfg;
  cfg.refs_per_client = 2000;
  auto scheme = make_ulc_multi(64, 256, 4);
  const MultiProtocolResult r =
      run_multi_protocol_sim(*scheme, looping_clients(4, 48), cfg);
  // 4 clients x 2000 refs, 10% warmup skipped per client.
  EXPECT_EQ(r.stats.references, 4u * 1800u);
  EXPECT_EQ(r.response_ms.count(), 4u * 1800u);
  EXPECT_GT(r.throughput_per_s, 0.0);
}

TEST(MultiProtocolSim, LocalWorkingSetsAreFast) {
  MultiProtocolConfig cfg;
  cfg.refs_per_client = 2000;
  auto scheme = make_ulc_multi(64, 256, 2);
  const MultiProtocolResult r =
      run_multi_protocol_sim(*scheme, looping_clients(2, 48), cfg);
  EXPECT_GT(r.stats.hit_ratio(0), 0.95);
  EXPECT_LT(r.response_ms.mean(), 0.1);
}

TEST(MultiProtocolSim, SharedLanCongestionPunishesUniLru) {
  // Loops beyond each client cache: uniLRU demotes on every reference from
  // every client; the shared segment saturates and measured response time
  // diverges far above the analytic model. ULC's placement stays stable and
  // its measured time stays near its model.
  MultiProtocolConfig cfg;
  cfg.refs_per_client = 4000;
  cfg.shared_lan = LinkConfig{0.3, 16.0};
  const std::size_t n = 6;

  auto uni = make_uni_lru_multi(64, 1024, n, UniLruInsertion::kMru);
  const MultiProtocolResult ru =
      run_multi_protocol_sim(*uni, looping_clients(n, 160), cfg);

  auto ulc = make_ulc_multi(64, 1024, n);
  const MultiProtocolResult rc =
      run_multi_protocol_sim(*ulc, looping_clients(n, 160), cfg);

  EXPECT_GT(ru.stats.demotion_ratio(0), 0.9);
  EXPECT_LT(rc.stats.demotion_ratio(0), 0.1);
  // Queueing: uniLRU measured >> its own analytic value.
  EXPECT_GT(ru.response_ms.mean(), ru.analytic_t_ave_ms * 1.3);
  // And ULC ends up well faster end to end (both pay for the shared
  // uplink's read traffic; only uniLRU also saturates the downlink).
  EXPECT_LT(rc.response_ms.mean(), ru.response_ms.mean() * 0.7);
  EXPECT_GT(rc.throughput_per_s, ru.throughput_per_s);
}

TEST(MultiProtocolSim, DeltaTrackingMatchesSchemeTotals) {
  // The per-access stat diffs must add back up to the scheme's own counters.
  MultiProtocolConfig cfg;
  cfg.refs_per_client = 1500;
  cfg.warmup_fraction = 0.0;
  auto scheme = make_mq_hierarchy(32, 128, 3);
  std::vector<PatternPtr> sources;
  for (std::size_t c = 0; c < 3; ++c)
    sources.push_back(make_zipf_source(5000ull * c, 300, 0.9, true, c + 1));
  const MultiProtocolResult r =
      run_multi_protocol_sim(*scheme, std::move(sources), cfg);
  EXPECT_EQ(r.stats.level_hits[0], scheme->stats().level_hits[0]);
  EXPECT_EQ(r.stats.level_hits[1], scheme->stats().level_hits[1]);
  EXPECT_EQ(r.stats.misses, scheme->stats().misses);
}

TEST(MultiProtocolSim, DeterministicAcrossRuns) {
  auto run_once = [] {
    MultiProtocolConfig cfg;
    cfg.refs_per_client = 2000;
    cfg.seed = 42;
    auto scheme = make_ulc_multi(64, 512, 3);
    std::vector<PatternPtr> sources;
    for (std::size_t c = 0; c < 3; ++c)
      sources.push_back(make_zipf_source(10000ull * c, 300, 0.9, true, c + 1));
    return run_multi_protocol_sim(*scheme, std::move(sources), cfg);
  };
  const MultiProtocolResult a = run_once();
  const MultiProtocolResult b = run_once();
  EXPECT_EQ(a.stats.level_hits, b.stats.level_hits);
  EXPECT_EQ(a.stats.misses, b.stats.misses);
  EXPECT_DOUBLE_EQ(a.response_ms.mean(), b.response_ms.mean());
  EXPECT_DOUBLE_EQ(a.elapsed_ms, b.elapsed_ms);
}

}  // namespace
}  // namespace ulc
