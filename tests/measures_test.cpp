#include <gtest/gtest.h>

#include <unordered_set>

#include "measures/analyzers.h"
#include "measures/measure_list.h"
#include "measures/next_use.h"
#include "util/prng.h"
#include "workloads/synthetic.h"

namespace ulc {
namespace {

Trace from_blocks(std::initializer_list<BlockId> blocks) {
  Trace t("hand");
  for (BlockId b : blocks) t.add(b);
  return t;
}

TEST(NextUse, HandComputed) {
  const Trace t = from_blocks({1, 2, 1, 3, 2, 1});
  const auto nu = compute_next_use(t);
  EXPECT_EQ(nu[0], 2u);
  EXPECT_EQ(nu[1], 4u);
  EXPECT_EQ(nu[2], 5u);
  EXPECT_EQ(nu[3], kNever);
  EXPECT_EQ(nu[4], kNever);
  EXPECT_EQ(nu[5], kNever);
}

TEST(StackDistance, HandComputed) {
  const Trace t = from_blocks({1, 2, 1, 3, 2, 1});
  const auto d = compute_stack_distances(t);
  EXPECT_EQ(d[0], kInfiniteDistance);
  EXPECT_EQ(d[1], kInfiniteDistance);
  EXPECT_EQ(d[2], 1u);  // block 2 in between
  EXPECT_EQ(d[3], kInfiniteDistance);
  EXPECT_EQ(d[4], 2u);  // blocks 1, 3
  EXPECT_EQ(d[5], 2u);  // blocks 3, 2
}

// Brute-force reference for stack distances.
std::vector<std::uint64_t> brute_stack_distances(const Trace& t) {
  std::vector<std::uint64_t> out(t.size(), kInfiniteDistance);
  for (std::size_t i = 0; i < t.size(); ++i) {
    for (std::size_t j = i; j-- > 0;) {
      if (t[j].block == t[i].block) {
        std::unordered_set<BlockId> distinct;
        for (std::size_t k = j + 1; k < i; ++k) distinct.insert(t[k].block);
        out[i] = distinct.size();
        break;
      }
    }
  }
  return out;
}

TEST(StackDistance, MatchesBruteForceOnRandomTrace) {
  auto src = make_uniform_source(0, 40);
  const Trace t = generate(*src, 800, 23, "r");
  const auto fast = compute_stack_distances(t);
  const auto slow = brute_stack_distances(t);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < fast.size(); ++i) ASSERT_EQ(fast[i], slow[i]) << i;
}

TEST(StackDistance, LoopHasConstantDistance) {
  auto src = make_loop_source(0, 25);
  const Trace t = generate(*src, 200, 1, "loop");
  const auto d = compute_stack_distances(t);
  for (std::size_t i = 25; i < t.size(); ++i) EXPECT_EQ(d[i], 24u) << i;
}

TEST(SegmentAccountant, SegmentsAndBoundaries) {
  SegmentAccountant acct(100);
  EXPECT_EQ(acct.segment_of(0), 0u);
  EXPECT_EQ(acct.segment_of(9), 0u);
  EXPECT_EQ(acct.segment_of(10), 1u);
  EXPECT_EQ(acct.segment_of(99), 9u);
  EXPECT_EQ(acct.segment_of(1000), 9u);
  EXPECT_EQ(acct.boundary_rank(0), 10u);
  EXPECT_EQ(acct.boundary_rank(8), 90u);
}

TEST(SegmentAccountant, MoveCounting) {
  SegmentAccountant acct(100);
  acct.count_move(25, 3);  // crosses boundaries at ranks 10 and 20
  EXPECT_EQ(acct.boundary_crossings(0), 1u);
  EXPECT_EQ(acct.boundary_crossings(1), 1u);
  EXPECT_EQ(acct.boundary_crossings(2), 0u);
  acct.count_move(10, 10);  // no movement
  EXPECT_EQ(acct.boundary_crossings(0), 1u);
  acct.count_move(5, 95);  // crosses all nine boundaries
  for (std::size_t b = 0; b < 9; ++b) EXPECT_GE(acct.boundary_crossings(b), 1u);
}

TEST(SortedMeasureList, OrderingAndRanks) {
  SortedMeasureList list;
  list.insert(1, 50);
  list.insert(2, 10);
  list.insert(3, 30);
  EXPECT_EQ(list.rank_of(2), 0u);
  EXPECT_EQ(list.rank_of(3), 1u);
  EXPECT_EQ(list.rank_of(1), 2u);
  auto [from, to] = list.update(1, 20);
  EXPECT_EQ(from, 2u);
  EXPECT_EQ(to, 1u);
  EXPECT_TRUE(list.check_consistency());
  // Equal keys order by update time (later update goes after).
  list.update(2, 20);
  EXPECT_EQ(list.rank_of(1), 0u);
  EXPECT_EQ(list.rank_of(2), 1u);
  // Unchanged key is a no-op.
  auto [f2, t2] = list.update(3, 30);
  EXPECT_EQ(f2, t2);
  EXPECT_TRUE(list.check_consistency());
}

TEST(Analyzers, ReportRatiosSumWithColdToOne) {
  auto src = make_zipf_source(0, 200, 0.8, true, 3);
  const Trace t = generate(*src, 5000, 31, "z");
  for (const Measure m :
       {Measure::kND, Measure::kR, Measure::kNLD, Measure::kLLD_R}) {
    const MeasureReport rep = analyze_measure(t, m);
    double sum = 0.0;
    for (double r : rep.segment_ratio) sum += r;
    const double cold = static_cast<double>(rep.cold_references) /
                        static_cast<double>(rep.references);
    EXPECT_NEAR(sum + cold, 1.0, 1e-9) << measure_name(m);
    EXPECT_NEAR(rep.cumulative_ratio[9] + cold, 1.0, 1e-9);
    EXPECT_EQ(rep.references, t.size());
  }
}

// On a pure loop: ND always finds the next-referenced block at the list
// head; R always finds it at the tail; NLD and LLD-R see identical values
// for every block and are perfectly stable (no boundary movement).
TEST(Analyzers, LoopSignatures) {
  auto src = make_loop_source(0, 100);
  const Trace t = generate(*src, 5000, 1, "loop");

  const MeasureReport nd = analyze_measure(t, Measure::kND);
  EXPECT_GT(nd.segment_ratio[0], 0.95);

  const MeasureReport r = analyze_measure(t, Measure::kR);
  EXPECT_GT(r.segment_ratio[9], 0.95);
  // R: every re-reference travels the whole list -> movement ratio ~1 at
  // every boundary.
  for (std::size_t b = 0; b < 9; ++b) EXPECT_GT(r.movement_ratio[b], 0.9);

  const MeasureReport lldr = analyze_measure(t, Measure::kLLD_R);
  for (std::size_t b = 0; b < 9; ++b) EXPECT_LT(lldr.movement_ratio[b], 0.05);

  const MeasureReport nld = analyze_measure(t, Measure::kNLD);
  for (std::size_t b = 0; b < 9; ++b) EXPECT_LT(nld.movement_ratio[b], 0.05);
}

// LRU-friendly trace: R concentrates references in the head segments.
TEST(Analyzers, TemporalFavorsRecency) {
  auto src = make_temporal_source(0, 1000, 0.08, 5.0);
  const Trace t = generate(*src, 20000, 5, "t");
  const MeasureReport r = analyze_measure(t, Measure::kR);
  EXPECT_GT(r.cumulative_ratio[2], 0.6);
}

// ND produces the best (most head-concentrated) distribution of all four
// measures, reflecting OPT's optimality (paper observation 1 for Figure 2).
TEST(Analyzers, NdDominatesOnMixedTrace) {
  std::vector<PatternPtr> sources;
  sources.push_back(make_loop_source(0, 150));
  sources.push_back(make_zipf_source(200, 300, 0.9, true, 5));
  auto src = make_mixture_source(std::move(sources), {0.5, 0.5});
  const Trace t = generate(*src, 20000, 7, "mixed");
  const auto reports = analyze_all_measures(t);
  const MeasureReport& nd = reports[0];
  for (std::size_t i = 1; i < reports.size(); ++i) {
    for (std::size_t s = 0; s < 4; ++s) {
      EXPECT_GE(nd.cumulative_ratio[s] + 1e-9, reports[i].cumulative_ratio[s])
          << "segment " << s << " vs " << measure_name(reports[i].measure);
    }
  }
}

// LLD-R must track NLD closely on loop-dominated traces (paper observation 2
// for Figure 2) while R does not.
TEST(Analyzers, LldrApproximatesNldOnLoops) {
  std::vector<LoopScope> scopes{{0, 60, 2.0}, {60, 240, 1.0}};
  auto src = make_nested_loop_source(std::move(scopes));
  const Trace t = generate(*src, 20000, 9, "gl");
  const MeasureReport nld = analyze_measure(t, Measure::kNLD);
  const MeasureReport lldr = analyze_measure(t, Measure::kLLD_R);
  const MeasureReport r = analyze_measure(t, Measure::kR);
  double lldr_gap = 0.0, r_gap = 0.0;
  for (std::size_t s = 0; s < kSegments; ++s) {
    lldr_gap += std::abs(lldr.cumulative_ratio[s] - nld.cumulative_ratio[s]);
    r_gap += std::abs(r.cumulative_ratio[s] - nld.cumulative_ratio[s]);
  }
  EXPECT_LT(lldr_gap, r_gap);
}

// Movement ratios: the stable measures (NLD, LLD-R) move less than the
// volatile ones (ND, R) on every workload class the paper names.
class StabilityTest : public ::testing::TestWithParam<int> {};

TEST_P(StabilityTest, StableMeasuresMoveLess) {
  PatternPtr src;
  switch (GetParam()) {
    case 0:
      src = make_loop_source(0, 120);
      break;
    case 1:
      src = make_zipf_source(0, 400, 1.0, true, 3);
      break;
    case 2:
      src = make_temporal_source(0, 400, 0.08, 4.0);
      break;
    default: {
      std::vector<LoopScope> scopes{{0, 50, 2.0}, {50, 200, 1.0}};
      src = make_nested_loop_source(std::move(scopes));
      break;
    }
  }
  const Trace t = generate(*src, 15000, 41, "w");
  const MeasureReport nd = analyze_measure(t, Measure::kND);
  const MeasureReport r = analyze_measure(t, Measure::kR);
  const MeasureReport nld = analyze_measure(t, Measure::kNLD);
  const MeasureReport lldr = analyze_measure(t, Measure::kLLD_R);
  auto total = [](const MeasureReport& rep) {
    double s = 0.0;
    for (double m : rep.movement_ratio) s += m;
    return s;
  };
  EXPECT_LT(total(nld), total(nd) + 1e-9);
  EXPECT_LT(total(lldr), total(r) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Workloads, StabilityTest, ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace ulc
