// Tests for the experiment engine (src/exp): run_matrix determinism across
// thread counts, synthesize-once TraceCache semantics, run_scheme warmup
// edge cases, and the JSON result schema (golden file).
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "exp/experiment.h"
#include "hierarchy/hierarchy.h"
#include "hierarchy/runner.h"
#include "util/json.h"

namespace ulc {
namespace {

// ---- JSON writer ----

TEST(Json, ScalarsAndContainers) {
  Json doc = Json::object();
  doc.set("s", "hi");
  doc.set("b", true);
  doc.set("n", nullptr);
  doc.set("i", std::int64_t{-3});
  doc.set("u", std::uint64_t{18446744073709551615ull});
  Json arr = Json::array();
  arr.push(1.5);
  arr.push(Json::object());
  doc.set("a", std::move(arr));
  EXPECT_EQ(doc.dump(),
            "{\"s\":\"hi\",\"b\":true,\"n\":null,\"i\":-3,"
            "\"u\":18446744073709551615,\"a\":[1.5,{}]}");
}

TEST(Json, SetReplacesInPlace) {
  Json doc = Json::object();
  doc.set("k", 1);
  doc.set("other", 2);
  doc.set("k", 3);
  EXPECT_EQ(doc.dump(), "{\"k\":3,\"other\":2}");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b\\c\n\t\x01").dump(), "\"a\\\"b\\\\c\\n\\t\\u0001\"");
}

TEST(Json, DoubleFormattingRoundTripsAndIsStable) {
  EXPECT_EQ(Json::format_double(0.0), "0");
  EXPECT_EQ(Json::format_double(-0.0), "0");
  EXPECT_EQ(Json::format_double(0.1), "0.1");
  EXPECT_EQ(Json::format_double(12800.0), "12800");
  EXPECT_EQ(Json::format_double(1.0 / 3.0), "0.3333333333333333");
  for (double v : {1e-9, 3.14159, 2.658, 65536.5, 1e18, -7.25}) {
    EXPECT_EQ(std::strtod(Json::format_double(v).c_str(), nullptr), v) << v;
  }
}

TEST(Json, PrettyPrint) {
  Json doc = Json::object();
  doc.set("a", 1);
  Json arr = Json::array();
  arr.push(2);
  doc.set("b", std::move(arr));
  EXPECT_EQ(doc.dump(2), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

// ---- run_scheme warmup edge cases ----

// Counts accesses and stat resets; "hits" everything at L0.
class CountingScheme : public MultiLevelScheme {
 public:
  CountingScheme() { stats_.resize(2); }
  void access(const Request&) override {
    ++stats_.references;
    ++stats_.level_hits[0];
  }
  const HierarchyStats& stats() const override { return stats_; }
  void reset_stats() override {
    stats_.clear();
    ++resets;
  }
  const char* name() const override { return "counting"; }

  int resets = 0;

 private:
  HierarchyStats stats_;
};

TEST(RunScheme, EmptyTraceReturnsZeroedStats) {
  CountingScheme scheme;
  const Trace empty("empty");
  const RunResult r = run_scheme(scheme, empty, CostModel::paper_two_level());
  EXPECT_EQ(r.stats.references, 0u);
  EXPECT_EQ(r.t_ave_ms, 0.0);
  EXPECT_EQ(r.stats.miss_ratio(), 0.0);
  EXPECT_EQ(r.trace, "empty");
  EXPECT_EQ(scheme.resets, 1);
}

TEST(RunScheme, TinyTraceWarmupResetsExactlyOnce) {
  // 3 references at warmup_fraction 0.1: the warmup rounds down to 0
  // references, but the stats must still be dropped exactly once and every
  // reference measured.
  CountingScheme scheme;
  Trace t("tiny");
  for (int i = 0; i < 3; ++i) t.add(static_cast<BlockId>(i));
  const RunResult r = run_scheme(scheme, t, CostModel::paper_two_level(), 0.1);
  EXPECT_EQ(scheme.resets, 1);
  EXPECT_EQ(r.stats.references, 3u);
}

TEST(RunScheme, WarmupReferencesAreExcluded) {
  CountingScheme scheme;
  Trace t("warm");
  for (int i = 0; i < 100; ++i) t.add(static_cast<BlockId>(i));
  const RunResult r = run_scheme(scheme, t, CostModel::paper_two_level(), 0.25);
  EXPECT_EQ(scheme.resets, 1);
  EXPECT_EQ(r.stats.references, 75u);
}

// ---- TraceCache ----

TEST(TraceCache, SynthesizesOncePerKeyUnderContention) {
  exp::TraceCache cache;
  const exp::TraceSpec spec{"zipf-small", 1.0, 1};
  std::vector<const Trace*> seen(16, nullptr);
  exp::parallel_for(seen.size(), 8,
                    [&](std::size_t i) { seen[i] = &cache.get(spec); });
  EXPECT_EQ(cache.synthesis_count(), 1u);
  for (const Trace* t : seen) EXPECT_EQ(t, seen[0]);
  EXPECT_FALSE(seen[0]->empty());
}

TEST(TraceCache, DistinctKeysGetDistinctTraces) {
  exp::TraceCache cache;
  const Trace& a = cache.get({"zipf-small", 1.0, 1});
  const Trace& b = cache.get({"zipf-small", 1.0, 2});
  const Trace& c = cache.get({"cs", 1.0, 1});
  EXPECT_EQ(cache.synthesis_count(), 3u);
  EXPECT_NE(&a, &b);
  EXPECT_NE(&a, &c);
  // Same key again: no new synthesis.
  cache.get({"cs", 1.0, 1});
  EXPECT_EQ(cache.synthesis_count(), 3u);
}

TEST(TraceCache, PutRegistersAdHocTraces) {
  exp::TraceCache cache;
  Trace t("adhoc");
  t.add(1);
  const Trace& stored = cache.put("my-key", std::move(t));
  EXPECT_EQ(stored.size(), 1u);
  EXPECT_EQ(&cache.put("my-key", Trace("ignored")), &stored);
  EXPECT_EQ(cache.synthesis_count(), 1u);
}

// ---- run_matrix ----

std::vector<exp::ExperimentSpec> small_matrix() {
  std::vector<exp::ExperimentSpec> specs;
  for (const char* preset : {"zipf-small", "random-small"}) {
    for (int kind = 0; kind < 3; ++kind) {
      exp::ExperimentSpec spec;
      const std::vector<std::size_t> caps{64, 128, 256};
      switch (kind) {
        case 0:
          spec.factory = [caps](const Trace&) { return make_ind_lru(caps); };
          break;
        case 1:
          spec.factory = [caps](const Trace&) { return make_uni_lru(caps); };
          break;
        default:
          spec.factory = [caps](const Trace&) { return make_ulc(caps); };
      }
      spec.trace = {preset, 1.0, 7};
      spec.model = CostModel::paper_three_level();
      spec.params["kind"] = kind;
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

// Serializes everything except the wall-clock fields.
std::string deterministic_dump(std::vector<exp::CellResult> cells) {
  for (exp::CellResult& cell : cells) {
    cell.wall_seconds = 0.0;
    cell.refs_per_sec = 0.0;
  }
  return exp::results_to_json(cells).dump(2);
}

TEST(RunMatrix, DeterministicAcrossThreadCounts) {
  const std::vector<exp::ExperimentSpec> specs = small_matrix();

  exp::MatrixOptions serial;
  serial.threads = 1;
  const std::vector<exp::CellResult> one = exp::run_matrix(specs, serial);

  exp::MatrixOptions parallel_opts;
  parallel_opts.threads = 8;
  const std::vector<exp::CellResult> eight = exp::run_matrix(specs, parallel_opts);

  ASSERT_EQ(one.size(), specs.size());
  EXPECT_EQ(deterministic_dump(one), deterministic_dump(eight));
  // Results come back in spec order.
  EXPECT_EQ(one[0].run.scheme, "indLRU");
  EXPECT_EQ(one[2].run.scheme, "ULC");
  EXPECT_EQ(one[0].run.trace, "zipf");
  EXPECT_EQ(one[3].run.trace, "random");
}

TEST(RunMatrix, SharedCacheSynthesizesEachTraceOnce) {
  exp::TraceCache cache;
  exp::MatrixOptions opts;
  opts.threads = 4;
  opts.cache = &cache;
  const auto cells = exp::run_matrix(small_matrix(), opts);
  EXPECT_EQ(cells.size(), 6u);
  EXPECT_EQ(cache.synthesis_count(), 2u);  // two presets, three schemes each
}

TEST(RunMatrix, TraceOverrideAndSchemeRename) {
  auto t = std::make_shared<const Trace>([] {
    Trace tr("override");
    for (int i = 0; i < 200; ++i) tr.add(static_cast<BlockId>(i % 50));
    return tr;
  }());
  exp::ExperimentSpec spec;
  spec.scheme = "renamed";
  spec.factory = [](const Trace&) { return make_uni_lru({16, 32}); };
  spec.trace_override = t;
  spec.model = CostModel::paper_two_level();
  const auto cells = exp::run_matrix({std::move(spec)});
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].run.scheme, "renamed");
  EXPECT_EQ(cells[0].run.trace, "override");
  EXPECT_GT(cells[0].run.stats.references, 0u);
}

// ---- Partitioned replay ----

// A deterministic 4-client trace with per-client locality and writes; long
// enough that the warmup boundary falls mid-stream for every client.
std::shared_ptr<const Trace> multi_client_trace() {
  Trace tr("partitioned");
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 8000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const ClientId client = static_cast<ClientId>((x >> 33) % 4);
    // Disjoint per-client block ranges with a hot set and a cold tail.
    const BlockId base = static_cast<BlockId>(client) * 100000;
    const BlockId block =
        base + ((x >> 17) % ((x & 1) != 0 ? 64 : 600));
    tr.add(block, client, (x >> 5) % 8 == 0 ? Op::kWrite : Op::kRead);
  }
  return std::make_shared<const Trace>(std::move(tr));
}

exp::ExperimentSpec client_private_spec(std::shared_ptr<const Trace> trace) {
  exp::ExperimentSpec spec;
  spec.factory = [](const Trace&) {
    return make_client_private([] { return make_ulc({32, 64, 128}); }, 4);
  };
  spec.trace_override = std::move(trace);
  spec.model = CostModel::paper_three_level();
  return spec;
}

TEST(RunMatrix, PartitionedReplayIsByteIdenticalToSerial) {
  const auto trace = multi_client_trace();
  const std::vector<exp::ExperimentSpec> specs{client_private_spec(trace)};

  // threads=1 never partitions: the serial reference.
  exp::MatrixOptions serial;
  serial.threads = 1;
  serial.observe = false;
  const auto one = exp::run_matrix(specs, serial);

  // threads=8 with the threshold lowered partitions the cell per client.
  exp::MatrixOptions parallel_opts;
  parallel_opts.threads = 8;
  parallel_opts.observe = false;
  parallel_opts.partition_min_references = 1;
  const auto eight = exp::run_matrix(specs, parallel_opts);

  // And with the default (1M-reference) threshold the same 8-thread run
  // replays serially — all three must serialize byte-for-byte.
  exp::MatrixOptions unsplit;
  unsplit.threads = 8;
  unsplit.observe = false;
  const auto eight_unsplit = exp::run_matrix(specs, unsplit);

  EXPECT_EQ(deterministic_dump(one), deterministic_dump(eight));
  EXPECT_EQ(deterministic_dump(one), deterministic_dump(eight_unsplit));
  EXPECT_GT(one[0].run.stats.references, 0u);
  EXPECT_EQ(one[0].run.scheme, "private(ULC)");
}

TEST(RunMatrix, PartitionedReplayNeverEngagesWhileObserving) {
  // With metrics on the cell must take the serial path (the response_ms
  // histogram's simulated clock interleaves all clients); the observed run
  // still matches the unobserved counters exactly.
  const auto trace = multi_client_trace();
  const std::vector<exp::ExperimentSpec> specs{client_private_spec(trace)};
  exp::MatrixOptions observed;
  observed.threads = 8;
  observed.observe = true;
  observed.partition_min_references = 1;
  const auto cells = exp::run_matrix(specs, observed);
  exp::MatrixOptions serial;
  serial.threads = 1;
  serial.observe = false;
  const auto reference = exp::run_matrix(specs, serial);
  EXPECT_EQ(cells[0].run.stats.references, reference[0].run.stats.references);
  EXPECT_EQ(cells[0].run.stats.level_hits, reference[0].run.stats.level_hits);
  EXPECT_EQ(cells[0].run.stats.misses, reference[0].run.stats.misses);
}

TEST(Schemes, OnlyClientPrivateClaimsPartitionedReplay) {
  EXPECT_TRUE(make_client_private([] { return make_ulc({32, 64}); }, 2)
                  ->supports_partitioned_replay());
  EXPECT_FALSE(make_ulc({32, 64})->supports_partitioned_replay());
  EXPECT_FALSE(make_ulc_multi(32, 64, 2)->supports_partitioned_replay());
  EXPECT_FALSE(make_ind_lru({32, 64}, 2)->supports_partitioned_replay());
  EXPECT_FALSE(make_uni_lru({32, 64})->supports_partitioned_replay());
}

// ---- JSON schema golden file ----

TEST(CellJson, MatchesGoldenFile) {
  exp::CellResult cell;
  cell.run.scheme = "ULC";
  cell.run.trace = "golden";
  cell.run.stats.resize(3);
  cell.run.stats.level_hits = {50, 25, 5};
  cell.run.stats.misses = 20;
  cell.run.stats.references = 100;
  cell.run.stats.demotions = {10, 4, 0};
  cell.run.stats.reloads = {2, 1, 0};
  cell.run.stats.writebacks = 3;
  const CostModel model = CostModel::paper_three_level();
  cell.run.time = compute_access_time(cell.run.stats, model);
  cell.run.t_ave_ms = cell.run.time.total();
  cell.wall_seconds = 1.5;
  cell.refs_per_sec = 12345;
  cell.params["cap_blocks"] = 6400;
  // Observability fields: a deterministic response-time histogram, as the
  // engine produces when MatrixOptions.observe is on.
  cell.metrics = std::make_shared<obs::MetricsRegistry>();
  obs::LatencyHistogram& hist = cell.metrics->histogram("response_ms");
  for (double ms : {0.0, 0.2, 0.2, 1.0, 12.4}) hist.record(ms);

  const std::string actual = exp::cell_to_json(cell).dump(2) + "\n";

  std::ifstream golden(std::string(ULC_GOLDEN_DIR) + "/cell_result.golden.json");
  ASSERT_TRUE(golden.is_open()) << "missing golden file";
  std::stringstream expected;
  expected << golden.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "JSON schema changed; update tests/golden/cell_result.golden.json\n"
      << "actual:\n"
      << actual;
}

}  // namespace
}  // namespace ulc
