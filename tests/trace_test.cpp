#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "trace/trace.h"
#include "trace/trace_io.h"

namespace ulc {
namespace {

Trace sample_trace() {
  Trace t("sample");
  t.add(10, 0);
  t.add(20, 1);
  t.add(10, 1);
  t.add(30, 0);
  t.add(20, 0);
  return t;
}

TEST(Trace, BasicAccessors) {
  const Trace t = sample_trace();
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t[0].block, 10u);
  EXPECT_EQ(t[1].client, 1u);
  EXPECT_FALSE(t.empty());
}

TEST(Trace, FilterClient) {
  const Trace t = sample_trace();
  const Trace c1 = t.filter_client(1);
  ASSERT_EQ(c1.size(), 2u);
  EXPECT_EQ(c1[0].block, 20u);
  EXPECT_EQ(c1[1].block, 10u);
  EXPECT_EQ(c1[0].client, 0u);  // renumbered
}

TEST(Trace, FilterClientPreservesOps) {
  Trace t("ops");
  t.add(1, 0, Op::kWrite);
  t.add(2, 1, Op::kWrite);
  t.add(3, 1, Op::kRead);
  const Trace c1 = t.filter_client(1);
  ASSERT_EQ(c1.size(), 2u);
  EXPECT_EQ(c1[0].op, Op::kWrite);
  EXPECT_EQ(c1[1].op, Op::kRead);
}

TEST(Trace, Prefix) {
  const Trace t = sample_trace();
  EXPECT_EQ(t.prefix(3).size(), 3u);
  EXPECT_EQ(t.prefix(99).size(), 5u);
  EXPECT_EQ(t.prefix(0).size(), 0u);
}

TEST(TraceStats, CountsUniqueSharedAndClients) {
  const TraceStats s = compute_stats(sample_trace());
  EXPECT_EQ(s.references, 5u);
  EXPECT_EQ(s.unique_blocks, 3u);
  EXPECT_EQ(s.clients, 2u);
  EXPECT_EQ(s.max_block, 30u);
  EXPECT_EQ(s.shared_blocks, 2u);  // 10 and 20 touched by both clients
}

class TraceIoTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (!path_.empty()) std::remove(path_.c_str());
  }
  std::string path_;
};

TEST_F(TraceIoTest, TextRoundTrip) {
  path_ = ::testing::TempDir() + "/ulc_trace_test.txt";
  const Trace t = sample_trace();
  std::string err;
  ASSERT_TRUE(save_trace_text(t, path_, &err)) << err;
  auto loaded = load_trace_text(path_, &err);
  ASSERT_TRUE(loaded.has_value()) << err;
  ASSERT_EQ(loaded->size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ((*loaded)[i], t[i]);
}

TEST_F(TraceIoTest, BinaryRoundTrip) {
  path_ = ::testing::TempDir() + "/ulc_trace_test.bin";
  Trace t("big");
  for (std::uint64_t i = 0; i < 10000; ++i)
    t.add(i * 2654435761u % 100000, static_cast<ClientId>(i % 7));
  std::string err;
  ASSERT_TRUE(save_trace_binary(t, path_, &err)) << err;
  auto loaded = load_trace_binary(path_, &err);
  ASSERT_TRUE(loaded.has_value()) << err;
  ASSERT_EQ(loaded->size(), t.size());
  for (std::size_t i = 0; i < t.size(); i += 997) EXPECT_EQ((*loaded)[i], t[i]);
}

TEST_F(TraceIoTest, LoadMissingFileFails) {
  std::string err;
  EXPECT_FALSE(load_trace_text("/nonexistent/ulc", &err).has_value());
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(load_trace_binary("/nonexistent/ulc", &err).has_value());
}

TEST_F(TraceIoTest, MalformedTextFails) {
  path_ = ::testing::TempDir() + "/ulc_trace_bad.txt";
  std::FILE* f = std::fopen(path_.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("# comment\n1 2\nnot a line\n", f);
  std::fclose(f);
  std::string err;
  EXPECT_FALSE(load_trace_text(path_, &err).has_value());
  EXPECT_NE(err.find("malformed"), std::string::npos);
}

TEST_F(TraceIoTest, BinaryRejectsWrongMagic) {
  path_ = ::testing::TempDir() + "/ulc_trace_magic.bin";
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("NOTATRACEFILE!!!", f);
  std::fclose(f);
  std::string err;
  EXPECT_FALSE(load_trace_binary(path_, &err).has_value());
}

}  // namespace
}  // namespace ulc
