#include <gtest/gtest.h>

#include "ulc/ulc_client.h"
#include "workloads/synthetic.h"

namespace ulc {
namespace {

UlcConfig config(std::vector<std::size_t> caps, std::size_t temp = 0) {
  UlcConfig cfg;
  cfg.capacities = std::move(caps);
  cfg.temp_capacity = temp;
  return cfg;
}

TEST(UlcClient, WarmupFillsLevelsTopDown) {
  UlcClient c(config({2, 2}));
  EXPECT_EQ(c.access(1).placed_level, 0u);
  EXPECT_EQ(c.access(2).placed_level, 0u);
  EXPECT_EQ(c.access(3).placed_level, 1u);
  EXPECT_EQ(c.access(4).placed_level, 1u);
  EXPECT_EQ(c.level_size(0), 2u);
  EXPECT_EQ(c.level_size(1), 2u);
  // Hierarchy full: a fresh block stays uncached.
  const UlcAccess& a = c.access(5);
  EXPECT_TRUE(a.miss());
  EXPECT_EQ(a.placed_level, kLevelOut);
  EXPECT_TRUE(c.check_consistency());
}

TEST(UlcClient, ColdMissesAreMisses) {
  UlcClient c(config({2, 2}));
  for (BlockId b = 1; b <= 4; ++b) {
    const UlcAccess& a = c.access(b);
    EXPECT_TRUE(a.miss());
    EXPECT_EQ(a.retrieve.from_level, kLevelOut);
  }
  EXPECT_EQ(c.stats().misses, 4u);
}

// The paper's central stability property: on a loop that exactly fits the
// aggregate cache, every block keeps its warm-up level forever — each level
// serves its own share of hits and there are no demotions at all.
TEST(UlcClient, LoopIsPerfectlyStable) {
  UlcClient c(config({2, 2}));
  auto src = make_loop_source(1, 4);
  Rng rng(1);
  for (int i = 0; i < 4; ++i) c.access(src->next(rng));  // warm-up
  for (int i = 0; i < 400; ++i) {
    const BlockId b = src->next(rng);
    const UlcAccess& a = c.access(b);
    ASSERT_FALSE(a.miss()) << "iteration " << i;
    ASSERT_EQ(a.hit_level, b <= 2 ? 0u : 1u) << "block " << b;
    ASSERT_TRUE(a.demotions.empty());
    ASSERT_TRUE(c.check_consistency());
  }
  EXPECT_EQ(c.stats().demotions[0], 0u);
  EXPECT_EQ(c.stats().level_hits[0], 200u);
  EXPECT_EQ(c.stats().level_hits[1], 200u);
}

// A loop one block larger than the aggregate: ULC pins a resident subset
// (OPT-like behaviour) instead of thrashing like LRU would.
TEST(UlcClient, OversizedLoopDoesNotThrash) {
  UlcClient c(config({1, 1}));
  auto src = make_loop_source(1, 3);
  Rng rng(1);
  for (int i = 0; i < 3; ++i) c.access(src->next(rng));
  std::uint64_t hits = 0;
  for (int i = 0; i < 300; ++i) {
    const UlcAccess& a = c.access(src->next(rng));
    hits += a.miss() ? 0 : 1;
    ASSERT_TRUE(c.check_consistency());
  }
  EXPECT_EQ(hits, 200u);  // blocks 1 and 2 always hit; block 3 always misses
  EXPECT_EQ(c.stats().demotions[0], 0u);
}

// Re-referenced-soon blocks land at L1; blocks re-referenced at a recency
// beyond Y1 land lower (LLD-directed placement).
TEST(UlcClient, AlternatingPairServedWithoutDemotions) {
  UlcClient c(config({1, 1}));
  c.access(10);
  c.access(20);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(c.access(10).hit_level, 0u);
    EXPECT_EQ(c.access(20).hit_level, 1u);  // stable at the server level
  }
  EXPECT_EQ(c.stats().demotions[0], 0u);  // uniLRU would demote every access
}

TEST(UlcClient, PromotionDemotesYardstickCascade) {
  UlcClient c(config({1, 1}));
  c.access(1);  // L0
  c.access(2);  // L1
  c.access(3);  // out
  // Stack: 3(out) 2(L1) 1(L0); re-access 3 immediately: its recency beats
  // Y0 (=1), so it is cached at L0. Block 1 (the oldest recency in the
  // stack) is the victim at L0 and, being older than block 2, also the
  // immediate victim at L1 — the two steps collapse into one discard
  // Demote(1, 0, out): no block is actually transferred.
  const UlcAccess& a = c.access(3);
  EXPECT_EQ(a.placed_level, 0u);
  ASSERT_EQ(a.demotions.size(), 1u);
  EXPECT_EQ(a.demotions[0].block, 1u);
  EXPECT_EQ(a.demotions[0].from, 0u);
  EXPECT_EQ(a.demotions[0].to, kLevelOut);
  EXPECT_TRUE(c.is_cached(3));
  EXPECT_TRUE(c.is_cached(2));   // survives at L1 (better recency than 1)
  EXPECT_FALSE(c.is_cached(1));  // discarded without a transfer
  EXPECT_EQ(c.stats().demotions[0], 0u);
  EXPECT_TRUE(c.check_consistency());
}

TEST(UlcClient, RetrieveCommandsCarryLevels) {
  UlcClient c(config({1, 1}));
  c.access(1);
  c.access(2);
  const UlcAccess& hit0 = c.access(1);
  EXPECT_EQ(hit0.retrieve.from_level, 0u);
  EXPECT_EQ(hit0.retrieve.cache_at, 0u);
  const UlcAccess& hit1 = c.access(2);
  EXPECT_EQ(hit1.retrieve.from_level, 1u);
  EXPECT_EQ(hit1.retrieve.cache_at, 1u);
}

TEST(UlcClient, TempLruServesPassThroughBlocks) {
  UlcClient c(config({1, 1}, /*temp=*/2));
  c.access(1);
  c.access(2);
  c.access(3);  // uncached pass-through -> tempLRU
  EXPECT_TRUE(c.in_temp(3));
  const UlcAccess& a = c.access(3);  // still in temp: L1-speed service
  EXPECT_TRUE(a.temp_hit);
  EXPECT_EQ(c.stats().temp_hits, 1u);
}

TEST(UlcClient, TempLruCapacityBounded) {
  UlcClient c(config({1, 1}, /*temp=*/2));
  c.access(1);
  c.access(2);
  c.access(10);
  c.access(11);
  c.access(12);  // pushes 10 out of the 2-entry tempLRU
  EXPECT_FALSE(c.in_temp(10));
  EXPECT_TRUE(c.in_temp(11));
  EXPECT_TRUE(c.in_temp(12));
}

TEST(UlcClient, StatsAddUp) {
  UlcClient c(config({4, 4, 4}));
  auto src = make_zipf_source(0, 64, 1.0, true, 3);
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) c.access(src->next(rng));
  const UlcStats& s = c.stats();
  std::uint64_t total = s.misses;
  for (auto h : s.level_hits) total += h;
  EXPECT_EQ(total, s.references);
  EXPECT_EQ(s.references, 2000u);
}

// Property sweep: the engine maintains every structural invariant on
// arbitrary workloads and configurations.
struct PropertyCase {
  int workload;
  std::vector<std::size_t> caps;
};

class UlcClientPropertyTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(UlcClientPropertyTest, InvariantsHoldThroughout) {
  const PropertyCase& pc = GetParam();
  PatternPtr src;
  switch (pc.workload) {
    case 0:
      src = make_uniform_source(0, 300);
      break;
    case 1:
      src = make_zipf_source(0, 300, 1.0, true, 7);
      break;
    case 2:
      src = make_loop_source(0, 120);
      break;
    case 3:
      src = make_temporal_source(0, 300, 0.1, 4.0);
      break;
    default: {
      std::vector<LoopScope> scopes{{0, 40, 2.0}, {40, 160, 1.0}};
      src = make_nested_loop_source(std::move(scopes));
      break;
    }
  }
  UlcClient c(config(pc.caps));
  Rng rng(99);
  std::size_t total_cap = 0;
  for (std::size_t cap : pc.caps) total_cap += cap;
  for (int i = 0; i < 6000; ++i) {
    const BlockId b = src->next(rng);
    const UlcAccess& a = c.access(b);
    // The served level must match where the block now is only if it stayed;
    // in all cases the block ends up cached at placed_level.
    if (a.placed_level != kLevelOut) {
      ASSERT_TRUE(c.is_cached(b));
      ASSERT_EQ(c.level_of(b), a.placed_level);
    } else {
      ASSERT_FALSE(c.is_cached(b));
    }
    // Demotions go strictly downward (possibly multi-hop when collapsed).
    for (const DemoteCmd& d : a.demotions) {
      ASSERT_TRUE(d.to == kLevelOut || d.to > d.from);
    }
    if (i % 101 == 0) {
      ASSERT_TRUE(c.check_consistency());
      std::size_t cached = 0;
      for (std::size_t l = 0; l < pc.caps.size(); ++l) {
        ASSERT_LE(c.level_size(l), pc.caps[l]);
        cached += c.level_size(l);
      }
      ASSERT_LE(cached, total_cap);
    }
  }
  ASSERT_TRUE(c.check_consistency());
}

// Regression for the constructor's demotion-counter sizing: a single-level
// hierarchy has no Demote(i -> i+1) pairs, so stats().demotions must have
// zero entries (the old code special-cased an impossible empty capacities
// vector — ULC_REQUIRE already rules it out). Every eviction from the only
// level leaves the hierarchy entirely (to == kLevelOut), never through a
// demotion counter.
TEST(UlcClient, SingleLevelHasNoDemotionCountersAndDiscardsOut) {
  UlcClient c(config({2}));
  EXPECT_EQ(c.stats().demotions.size(), 0u);
  EXPECT_EQ(c.access(1).placed_level, 0u);
  EXPECT_EQ(c.access(2).placed_level, 0u);
  std::uint64_t discards = 0;
  // Immediate re-references (b, b, b+1, b+1, ...) give each new block a
  // reuse distance of 1, so it earns placement in the full level and forces
  // the LRU resident out of the hierarchy.
  for (int i = 0; i < 200; ++i) {
    const UlcAccess& a = c.access(static_cast<BlockId>(10 + i / 2));
    for (const DemoteCmd& d : a.demotions) {
      EXPECT_EQ(d.from, 0u);
      EXPECT_EQ(d.to, kLevelOut);
      ++discards;
    }
    EXPECT_EQ(c.stats().demotions.size(), 0u);
  }
  EXPECT_GT(discards, 0u);  // the discard path actually ran
  EXPECT_LE(c.level_size(0), 2u);
  EXPECT_TRUE(c.check_consistency());
}

std::vector<PropertyCase> property_cases() {
  std::vector<PropertyCase> cases;
  const std::vector<std::vector<std::size_t>> configs = {
      {8}, {1, 1}, {4, 8}, {8, 8, 8}, {2, 16, 64}, {16, 4, 2}, {1, 1, 1, 1}};
  for (int w = 0; w < 5; ++w) {
    for (const auto& caps : configs) cases.push_back({w, caps});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, UlcClientPropertyTest,
                         ::testing::ValuesIn(property_cases()));

}  // namespace
}  // namespace ulc
