// Three-level multi-client ULC (clients + shared server + shared array):
// the depth-generalized multi-client protocol.
#include <gtest/gtest.h>

#include "hierarchy/hierarchy.h"
#include "hierarchy/runner.h"
#include "ulc/ulc_client.h"
#include "workloads/synthetic.h"

namespace ulc {
namespace {

TEST(UlcClientElastic3, ExternalDemoteMovesDownOneLevel) {
  UlcConfig cfg;
  cfg.capacities = {1, 0, 0};
  cfg.first_elastic_level = 1;
  UlcClient c(cfg);
  c.access(1);  // L0
  c.access(2);  // elastic L1
  EXPECT_EQ(c.level_of(2), 1u);
  c.external_demote(2);  // server migrated it to the array
  EXPECT_EQ(c.level_of(2), 2u);
  EXPECT_EQ(c.level_size(1), 0u);
  EXPECT_EQ(c.level_size(2), 1u);
  EXPECT_TRUE(c.check_consistency());
  // And the array can evict it outright.
  c.external_evict(2);
  EXPECT_FALSE(c.is_cached(2));
}

TEST(UlcClientElastic3, PerLevelFullFlags) {
  UlcConfig cfg;
  cfg.capacities = {1, 0, 0};
  cfg.first_elastic_level = 1;
  UlcClient c(cfg);
  c.access(1);                  // L0
  c.set_elastic_full(1, true);  // server full, array still open
  const UlcAccess& a = c.access(2);
  EXPECT_EQ(a.placed_level, 2u);  // cold block lands at the array
  c.set_elastic_full(2, true);
  const UlcAccess& b = c.access(3);
  EXPECT_EQ(b.placed_level, kLevelOut);
}

TEST(UlcMulti3, SingleClientApproximatesThreeLevelUlc) {
  // One client: the 3-level multi scheme should track the single-client
  // engine closely (gLRU victims vs yardstick victims differ slightly).
  auto src = make_zipf_source(0, 600, 0.9, true, 3);
  const Trace t = generate(*src, 40000, 7, "z");
  auto multi = make_ulc_multi_three(48, 96, 192, 1);
  auto single = make_ulc({48, 96, 192});
  for (const Request& r : t) {
    multi->access(r);
    single->access(r);
  }
  EXPECT_EQ(multi->stats().level_hits[0], single->stats().level_hits[0]);
  const double n = static_cast<double>(t.size());
  EXPECT_NEAR(multi->stats().total_hit_ratio(), single->stats().total_hit_ratio(),
              0.03);
  EXPECT_NEAR(static_cast<double>(multi->stats().misses) / n,
              static_cast<double>(single->stats().misses) / n, 0.03);
}

TEST(UlcMulti3, ArrayAbsorbsServerOverflow) {
  // Working sets far beyond the server: blocks must flow through to the
  // array level and be served from there (migration demotions counted on
  // the server/array boundary).
  std::vector<PatternPtr> sources;
  sources.push_back(make_loop_source(0, 300));
  sources.push_back(make_loop_source(10000, 300));
  const Trace t = generate_multi(std::move(sources), {1.0, 1.0}, 40000, 9, "m3");
  auto scheme = make_ulc_multi_three(32, 128, 1024, 2);
  const RunResult r =
      run_scheme(*scheme, t, CostModel::paper_three_level(), 0.1);
  EXPECT_GT(r.stats.hit_ratio(2), 0.2);  // the array carries the loops
  EXPECT_GT(r.stats.total_hit_ratio(), 0.8);
}

TEST(UlcMulti3, BeatsThreeLevelIndLruOnLoops) {
  // Four looping clients whose combined footprint (1400 blocks) fits the
  // exclusive aggregate (4x64 + 256 + 1024 = 1536) but exceeds every single
  // inclusive level: indLRU thrashes everywhere, ULC pins the loops.
  std::vector<PatternPtr> sources;
  for (int c = 0; c < 4; ++c)
    sources.push_back(make_loop_source(100000ull * c, 350));
  const Trace t =
      generate_multi(std::move(sources), {1, 1, 1, 1}, 60000, 11, "loops");
  const CostModel m = CostModel::paper_three_level();

  auto ulc = make_ulc_multi_three(64, 256, 1024, 4);
  const RunResult ru = run_scheme(*ulc, t, m);
  auto ind = make_ind_lru({64, 256, 1024}, 4);
  const RunResult ri = run_scheme(*ind, t, m);
  EXPECT_LT(ru.t_ave_ms, ri.t_ave_ms);
  EXPECT_GT(ru.stats.total_hit_ratio(), ri.stats.total_hit_ratio());
}

TEST(UlcMulti3, SharedBlocksStayServable) {
  // Both clients cycle the same mid-size set: it lives in the shared levels
  // and every client keeps hitting it.
  std::vector<PatternPtr> sources;
  sources.push_back(make_loop_source(0, 200));
  sources.push_back(make_loop_source(0, 200));
  const Trace t =
      generate_multi(std::move(sources), {1.0, 1.0}, 30000, 13, "shared3");
  auto scheme = make_ulc_multi_three(16, 128, 256, 2);
  const RunResult r =
      run_scheme(*scheme, t, CostModel::paper_three_level(), 0.1);
  EXPECT_GT(r.stats.total_hit_ratio(), 0.85);
}

TEST(UlcMulti3, StatsAddUp) {
  std::vector<PatternPtr> sources;
  for (int c = 0; c < 3; ++c)
    sources.push_back(make_zipf_source(5000ull * c, 500, 0.9, true, c + 1));
  const Trace t = generate_multi(std::move(sources), {1, 1, 1}, 30000, 17, "z3");
  auto scheme = make_ulc_multi_three(32, 64, 128, 3);
  for (const Request& r : t) scheme->access(r);
  const HierarchyStats& s = scheme->stats();
  std::uint64_t total = s.misses;
  for (auto h : s.level_hits) total += h;
  EXPECT_EQ(total, s.references);
  EXPECT_EQ(s.references, t.size());
}

}  // namespace
}  // namespace ulc
