// Fault-injection and recovery-protocol tests: deterministic fault plans,
// retry/backoff arithmetic, the fault-free byte-parity guarantee of the
// faulted simulator, zero-invariant-violation faulted runs, the directory
// resync hooks, and the kResyncAmnesia mutation that keeps the auditor's
// resync checking honest.
#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <vector>

#include "check/checked_hierarchy.h"
#include "check/mutations.h"
#include "exp/experiment.h"
#include "hierarchy/hierarchy.h"
#include "proto/fault_sim.h"
#include "proto/faults.h"
#include "proto/reliable.h"
#include "trace/size_table.h"
#include "ulc/ulc_client.h"
#include "workloads/synthetic.h"

namespace ulc {
namespace {

Trace proto_trace(std::uint64_t refs = 30000) {
  auto src = make_zipf_source(0, 500, 0.9, true, 7);
  return generate(*src, refs, 9, "z");
}

bool bitwise_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

// ---- FaultPlan ----

TEST(FaultPlan, SameSeedSameFateStream) {
  FaultSpec spec;
  spec.loss = 0.1;
  spec.duplicate = 0.05;
  spec.delay = 0.2;
  spec.delay_ms = 3.0;
  spec.seed = 42;
  FaultPlan a(spec, {});
  FaultPlan b(spec, {});
  for (int i = 0; i < 2000; ++i) {
    const MessageFate fa = a.next_fate();
    const MessageFate fb = b.next_fate();
    EXPECT_EQ(fa.dropped, fb.dropped);
    EXPECT_EQ(fa.duplicated, fb.duplicated);
    EXPECT_TRUE(bitwise_equal(fa.extra_delay_ms, fb.extra_delay_ms));
  }
  EXPECT_TRUE(bitwise_equal(a.jitter01(), b.jitter01()));
}

TEST(FaultPlan, FaultFreePlanMakesNoDraws) {
  FaultPlan plan(FaultSpec{}, {});
  EXPECT_TRUE(plan.fault_free());
  EXPECT_FALSE(plan.message_faults());
  for (int i = 0; i < 100; ++i) {
    const MessageFate f = plan.next_fate();
    EXPECT_FALSE(f.dropped);
    EXPECT_FALSE(f.duplicated);
    EXPECT_EQ(f.extra_delay_ms, 0.0);
  }
  // No draws were consumed above: the first jitter draw equals a fresh
  // plan's first draw.
  FaultPlan fresh(FaultSpec{}, {});
  EXPECT_TRUE(bitwise_equal(plan.jitter01(), fresh.jitter01()));
}

TEST(FaultPlan, CrashScheduleEpochAndOutage) {
  std::vector<CrashEvent> crashes = {{1, 100.0, 50.0}, {1, 400.0, 10.0},
                                     {2, 200.0, 25.0}};
  FaultPlan plan(FaultSpec{}, crashes);
  EXPECT_FALSE(plan.fault_free());
  EXPECT_EQ(plan.epoch_at(1, 99.9), 0u);
  EXPECT_EQ(plan.epoch_at(1, 100.0), 1u);
  EXPECT_EQ(plan.epoch_at(1, 399.0), 1u);
  EXPECT_EQ(plan.epoch_at(1, 400.0), 2u);
  EXPECT_EQ(plan.epoch_at(2, 250.0), 1u);
  EXPECT_EQ(plan.epoch_at(3, 1e9), 0u);  // never-crashing level
  EXPECT_TRUE(plan.down_at(1, 100.0));
  EXPECT_TRUE(plan.down_at(1, 149.9));
  EXPECT_FALSE(plan.down_at(1, 150.0));
  EXPECT_FALSE(plan.down_at(2, 100.0));
  ASSERT_EQ(plan.crash_times(1).size(), 2u);
  EXPECT_EQ(plan.crash_times(1)[0], 100.0);
  EXPECT_EQ(plan.crash_times(1)[1], 400.0);
}

// ---- FaultyLink ----

TEST(FaultyLink, FaultFreeMatchesRawLink) {
  ReliabilityStats stats;
  FaultPlan plan(FaultSpec{}, {});
  const LinkConfig lc{0.5, 16.0};
  FaultyLink faulty(lc, plan, stats);
  SimLink raw(lc);
  SimTime t = 0.0;
  for (int i = 0; i < 50; ++i) {
    const FaultyLink::Delivery d = faulty.transfer(0, kBlockBytes, t);
    const SimTime expect = raw.deliver_at(0, kBlockBytes, t);
    ASSERT_TRUE(d.arrived);
    EXPECT_TRUE(bitwise_equal(d.at, expect));
    t += 0.25;
  }
  EXPECT_EQ(stats.messages_lost, 0u);
}

TEST(FaultyLink, ClampNeverChangesArrivals) {
  // An issue time in the past (a retry computed from an earlier deadline)
  // is clamped up to the link's last send; since the link was still busy
  // then, the arrival is the same as the raw FIFO arrival.
  ReliabilityStats stats;
  FaultPlan plan(FaultSpec{}, {});
  const LinkConfig lc{0.1, 8.0};
  FaultyLink faulty(lc, plan, stats);
  SimLink raw(lc);
  (void)faulty.transfer(0, kBlockBytes, 10.0);
  (void)raw.deliver_at(0, kBlockBytes, 10.0);
  // `when` regressed below the previous send: raw SimLink would abort on
  // the FIFO precondition; the faulty wrapper clamps and still agrees with
  // a FIFO-legal issue at the clamp point.
  const FaultyLink::Delivery d = faulty.transfer(0, kControlBytes, 3.0);
  const SimTime expect = raw.deliver_at(0, kControlBytes, 10.0);
  EXPECT_TRUE(bitwise_equal(d.at, expect));
}

TEST(FaultyLink, AllLossDropsEveryDelivery) {
  ReliabilityStats stats;
  FaultSpec spec;
  spec.loss = 1.0;
  FaultPlan plan(spec, {});
  FaultyLink faulty(LinkConfig{0.1, 8.0}, plan, stats);
  for (int i = 0; i < 20; ++i)
    EXPECT_FALSE(faulty.transfer(0, kControlBytes, static_cast<SimTime>(i)).arrived);
  EXPECT_EQ(stats.messages_lost, 20u);
  // Lost frames still occupied the wire.
  EXPECT_GT(faulty.raw().busy_ms(0), 0.0);
}

// ---- retry_timeout / SequenceWindow / LevelBreaker ----

TEST(RetryTimeout, ExponentialBackoffWithCapAndJitter) {
  RetryPolicy policy;  // x4 initial, x2 backoff, cap 1000ms
  const SimTime rtt = 2.0;
  EXPECT_DOUBLE_EQ(retry_timeout(policy, rtt, 0, 0.0), 8.0);
  EXPECT_DOUBLE_EQ(retry_timeout(policy, rtt, 1, 0.0), 16.0);
  EXPECT_DOUBLE_EQ(retry_timeout(policy, rtt, 2, 0.0), 32.0);
  // Jitter stretches the timeout by at most `jitter` (25%).
  const SimTime jittered = retry_timeout(policy, rtt, 0, 0.999);
  EXPECT_GT(jittered, 8.0);
  EXPECT_LT(jittered, 8.0 * (1.0 + policy.jitter) + 1e-9);
  // The cap wins eventually (before jitter).
  EXPECT_LE(retry_timeout(policy, rtt, 20, 0.0), policy.max_timeout_ms);
}

TEST(SequenceWindow, AcceptsOnceAndBoundsMemory) {
  SequenceWindow w;
  EXPECT_TRUE(w.accept(0));
  EXPECT_FALSE(w.accept(0));  // duplicate
  EXPECT_TRUE(w.accept(2));   // ahead of the frontier
  EXPECT_FALSE(w.accept(2));
  EXPECT_TRUE(w.accept(1));   // fills the gap; frontier advances past 2
  EXPECT_FALSE(w.accept(1));
  EXPECT_FALSE(w.accept(2));
  EXPECT_TRUE(w.accept(3));
  EXPECT_EQ(w.duplicates_ignored(), 4u);
}

TEST(LevelBreaker, TripProbeRecoverCycle) {
  LevelBreaker b;
  EXPECT_FALSE(b.open());
  EXPECT_FALSE(b.ever_tripped());
  EXPECT_FALSE(b.probe_due(100.0));
  b.trip(10.0);
  EXPECT_TRUE(b.open());
  EXPECT_TRUE(b.ever_tripped());
  EXPECT_TRUE(b.probe_due(10.0));  // first probe may go immediately
  b.probe_sent(10.0, 50.0);
  EXPECT_FALSE(b.probe_due(59.9));
  EXPECT_TRUE(b.probe_due(60.0));
  b.close();
  EXPECT_FALSE(b.open());
  EXPECT_TRUE(b.ever_tripped());
  EXPECT_FALSE(b.probe_due(1000.0));
}

// ---- EventQueue run_until + event-count guard ----

TEST(EventQueue, RunUntilFiresPrefixAndAdvancesClock) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(1.0, [&] { fired.push_back(1); });
  q.schedule(2.0, [&] { fired.push_back(2); });
  q.schedule(5.0, [&] { fired.push_back(5); });
  EXPECT_EQ(q.run_until(2.0), 2u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(q.now(), 2.0);  // clock advances to t even mid-queue
  EXPECT_EQ(q.pending(), 1u);
  // Advancing past the last event drains it and still lands now() on t.
  EXPECT_EQ(q.run_until(100.0), 1u);
  EXPECT_DOUBLE_EQ(q.now(), 100.0);
  EXPECT_EQ(q.events_fired(), 3u);
}

TEST(EventQueueDeathTest, EventLimitAbortsRetryStorm) {
  ASSERT_DEATH(
      {
        EventQueue q;
        q.set_event_limit(100);
        // A "retry loop" that reschedules itself forever.
        std::function<void()> storm = [&] { q.schedule_in(1.0, storm); };
        storm();
        q.run();
      },
      "event-count limit exceeded");
}

// ---- fault-free byte parity with the legacy simulator ----

TEST(FaultSim, FaultFreeMatchesLegacySimulatorExactly) {
  const Trace t = proto_trace();
  const ProtocolConfig cfg = ProtocolConfig::paper_three_level({64, 64, 64});
  for (ProtocolScheme scheme : {ProtocolScheme::kUlc, ProtocolScheme::kUniLru,
                                ProtocolScheme::kIndLru}) {
    const ProtocolResult legacy = run_protocol_sim(scheme, cfg, t);
    for (bool checked : {true, false}) {
      FaultSimConfig fc;
      fc.protocol = cfg;
      fc.checked = checked;
      const FaultedProtocolResult f = run_faulted_protocol_sim(scheme, fc, t);
      const ProtocolResult& b = f.base;
      const char* name = protocol_scheme_name(scheme);
      EXPECT_EQ(legacy.stats.references, b.stats.references) << name;
      EXPECT_EQ(legacy.stats.level_hits, b.stats.level_hits) << name;
      EXPECT_EQ(legacy.stats.misses, b.stats.misses) << name;
      EXPECT_EQ(legacy.stats.demotions, b.stats.demotions) << name;
      EXPECT_TRUE(bitwise_equal(legacy.response_ms.mean(), b.response_ms.mean()))
          << name << " mean " << legacy.response_ms.mean() << " vs "
          << b.response_ms.mean();
      EXPECT_TRUE(bitwise_equal(legacy.response_ms.max(), b.response_ms.max()))
          << name;
      EXPECT_TRUE(bitwise_equal(legacy.elapsed_ms, b.elapsed_ms)) << name;
      EXPECT_TRUE(
          bitwise_equal(legacy.analytic_t_ave_ms, b.analytic_t_ave_ms))
          << name;
      EXPECT_TRUE(bitwise_equal(legacy.disk_utilization, b.disk_utilization))
          << name;
      for (std::size_t l = 0; l < legacy.link_down_utilization.size(); ++l) {
        EXPECT_TRUE(bitwise_equal(legacy.link_down_utilization[l],
                                  b.link_down_utilization[l]))
            << name;
        EXPECT_TRUE(bitwise_equal(legacy.link_up_utilization[l],
                                  b.link_up_utilization[l]))
            << name;
      }
      // The reliability layer never engaged.
      EXPECT_EQ(f.reliability.timeouts, 0u) << name;
      EXPECT_EQ(f.reliability.retries, 0u) << name;
      EXPECT_EQ(f.phase_references[static_cast<std::size_t>(FaultPhase::kNormal)],
                b.stats.references)
          << name;
    }
  }
}

// ---- faulted runs: zero invariant violations, visible recovery ----

FaultSimConfig faulted_config(double loss, bool with_crash) {
  FaultSimConfig fc;
  fc.protocol = ProtocolConfig::paper_three_level({64, 64, 64});
  fc.faults.loss = loss;
  fc.faults.seed = 5;
  if (with_crash) {
    // Mid-run restart of the server level, long enough to trip the breaker
    // (the retry budget at these link speeds exhausts within ~90ms).
    fc.crashes.push_back(CrashEvent{1, 40000.0, 1000.0});
  }
  fc.checked = true;  // throwing mode: a violation fails the test
  fc.context = "proto_faults_test";
  return fc;
}

TEST(FaultSim, FaultedRunKeepsEveryInvariant) {
  const Trace t = proto_trace();
  for (ProtocolScheme scheme : {ProtocolScheme::kUlc, ProtocolScheme::kUniLru,
                                ProtocolScheme::kIndLru}) {
    const FaultSimConfig fc = faulted_config(0.01, true);
    FaultedProtocolResult r;
    ASSERT_NO_THROW(r = run_faulted_protocol_sim(scheme, fc, t))
        << protocol_scheme_name(scheme);
    EXPECT_GT(r.reliability.messages_lost, 0u);
    EXPECT_GT(r.reliability.retries, 0u);
    // Stats reset at the end of warm-up; every post-warmup reference counts.
    const auto warmup = static_cast<std::uint64_t>(
        fc.protocol.warmup_fraction * static_cast<double>(t.size()));
    EXPECT_EQ(r.base.stats.references, t.size() - warmup);
  }
}

TEST(FaultSim, CrashTripsBreakerAndRecovers) {
  const Trace t = proto_trace();
  const FaultSimConfig fc = faulted_config(0.01, true);
  const FaultedProtocolResult r =
      run_faulted_protocol_sim(ProtocolScheme::kUlc, fc, t);
  const ReliabilityStats& rs = r.reliability;
  EXPECT_GT(rs.breaker_trips, 0u);
  EXPECT_GT(rs.probes, 0u);
  EXPECT_GT(rs.recoveries, 0u);
  // The epoch advance forced a directory purge, and degraded + recovered
  // phases are both visible in the per-phase accounting.
  EXPECT_GT(rs.resync_level_purges, 0u);
  EXPECT_GT(rs.resync_purged_entries, 0u);
  EXPECT_GT(
      r.phase_references[static_cast<std::size_t>(FaultPhase::kDegraded)], 0u);
  EXPECT_GT(
      r.phase_references[static_cast<std::size_t>(FaultPhase::kRecovered)], 0u);
  const std::uint64_t total =
      r.phase_references[0] + r.phase_references[1] + r.phase_references[2];
  EXPECT_EQ(total, r.base.stats.references);
}

TEST(FaultSim, SameSeedSameResultAcrossThreadCounts) {
  const Trace t = proto_trace(12000);
  const std::vector<double> losses = {0.0, 0.01, 0.03, 0.05};
  auto run_cells = [&](std::size_t threads) {
    std::vector<FaultedProtocolResult> out(losses.size());
    exp::parallel_for(out.size(), threads, [&](std::size_t i) {
      FaultSimConfig fc = faulted_config(losses[i], i % 2 == 1);
      out[i] = run_faulted_protocol_sim(ProtocolScheme::kUlc, fc, t);
    });
    return out;
  };
  const auto a = run_cells(1);
  const auto b = run_cells(4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(
        bitwise_equal(a[i].base.response_ms.mean(), b[i].base.response_ms.mean()))
        << "cell " << i;
    EXPECT_TRUE(bitwise_equal(a[i].end_ms, b[i].end_ms)) << "cell " << i;
    EXPECT_EQ(a[i].base.stats.level_hits, b[i].base.stats.level_hits)
        << "cell " << i;
    EXPECT_EQ(a[i].reliability.retries, b[i].reliability.retries)
        << "cell " << i;
    EXPECT_EQ(a[i].reliability.resync_drops, b[i].reliability.resync_drops)
        << "cell " << i;
  }
}

// ---- write-back journal and durability under faults ----

// A write-bearing twin of proto_trace with deterministic per-block sizes
// (variant 0: bimodal footprints, variant 1: heavy-tail).
Trace sized_write_trace(int variant) {
  auto src = make_zipf_source(0, 500, 0.9, true, 7);
  Trace t = with_writes(generate(*src, 20000, 9, "zw"), 0.2, 11);
  if (variant == 0) {
    stamp_sizes(t, assign_bimodal_sizes(0, 500, 1, 4, 0.25, 17));
  } else {
    stamp_sizes(t, assign_heavy_tail_sizes(0, 500, 1.1, 8, 19));
  }
  return t;
}

// Regression for the crash-during-demotion window: a demote issued against
// the sender's view of the target is refused (and the directory repaired)
// when the target restarted — a new epoch — before the data arrived.
// Without the epoch stamp the payload would land in the rebuilt level while
// the rest of the recovery machinery believes it was wiped.
TEST(FaultSim, CrashDuringDemotionIsDroppedCrossEpoch) {
  const Trace t = proto_trace();
  for (ProtocolScheme scheme :
       {ProtocolScheme::kUlc, ProtocolScheme::kUniLru}) {
    const FaultSimConfig fc = faulted_config(0.01, true);
    FaultedProtocolResult r;
    ASSERT_NO_THROW(r = run_faulted_protocol_sim(scheme, fc, t))
        << protocol_scheme_name(scheme);
    EXPECT_GE(r.reliability.cross_epoch_drops, 1u)
        << protocol_scheme_name(scheme);
  }
}

TEST(FaultSim, SizedWriteTracesUnderCrashesKeepDurabilityLaws) {
  for (int variant : {0, 1}) {
    const Trace t = sized_write_trace(variant);
    for (ProtocolScheme scheme : {ProtocolScheme::kUlc, ProtocolScheme::kUniLru,
                                  ProtocolScheme::kIndLru}) {
      FaultSimConfig fc = faulted_config(0.01, true);
      fc.context = std::string("sized durability v") + std::to_string(variant);
      FaultedProtocolResult r;
      // checked=true throwing mode: byte-budget conservation and the live
      // durability laws both gate the run.
      ASSERT_NO_THROW(r = run_faulted_protocol_sim(scheme, fc, t))
          << protocol_scheme_name(scheme) << " variant " << variant;
      const JournalStats& js = r.journal;
      EXPECT_GT(js.appended, 0u);
      // No acknowledged write is ever lost, under any crash schedule.
      EXPECT_EQ(js.lost_acked, 0u);
      // Byte conservation through the pipeline: every journaled byte either
      // reached storage and was acknowledged, or was wiped unacknowledged
      // by the crash (and is reported as such, not silently dropped).
      EXPECT_EQ(js.appended, js.acked + js.lost_unacked);
      EXPECT_EQ(js.appended_bytes, js.acked_bytes + js.lost_unacked_bytes);
    }
  }
}

TEST(FaultSim, NoAcknowledgedWriteLostUnderAnyCrashSchedule) {
  const Trace t = sized_write_trace(0);
  struct Schedule {
    const char* name;
    std::vector<CrashEvent> crashes;
  };
  const Schedule schedules[] = {
      {"mid-level long outage", {{1, 40000.0, 1000.0}}},
      {"mid-level blink", {{1, 40000.0, 2.0}}},
      {"server long outage", {{2, 40000.0, 1000.0}}},
      {"double crash", {{1, 30000.0, 500.0}, {2, 60000.0, 500.0}}},
  };
  for (const Schedule& s : schedules) {
    FaultSimConfig fc = faulted_config(0.01, false);
    fc.crashes = s.crashes;
    fc.context = std::string("crash schedule: ") + s.name;
    FaultedProtocolResult r;
    ASSERT_NO_THROW(r = run_faulted_protocol_sim(ProtocolScheme::kUlc, fc, t))
        << s.name;
    EXPECT_EQ(r.journal.lost_acked, 0u) << s.name;
    EXPECT_EQ(r.journal.appended, r.journal.acked + r.journal.lost_unacked)
        << s.name;
  }
}

TEST(FaultSim, JournalToggleKeepsFaultFreeParity) {
  // The journal rides a dedicated storage channel and draws no PRNG, so a
  // fault-free run is byte-identical with it on or off.
  const Trace t = sized_write_trace(0);
  FaultSimConfig on;
  on.protocol = ProtocolConfig::paper_three_level({64, 64, 64});
  FaultSimConfig off = on;
  off.journal = false;
  const FaultedProtocolResult a =
      run_faulted_protocol_sim(ProtocolScheme::kUlc, on, t);
  const FaultedProtocolResult b =
      run_faulted_protocol_sim(ProtocolScheme::kUlc, off, t);
  EXPECT_TRUE(bitwise_equal(a.base.response_ms.mean(), b.base.response_ms.mean()));
  EXPECT_TRUE(bitwise_equal(a.end_ms, b.end_ms));
  EXPECT_EQ(a.base.stats.level_hits, b.base.stats.level_hits);
  // With the journal on, every write-back completes the full pipeline.
  EXPECT_GT(a.journal.appended, 0u);
  EXPECT_EQ(a.journal.acked, a.journal.appended);
  EXPECT_EQ(a.journal.lost_unacked, 0u);
  EXPECT_EQ(b.journal.appended, 0u);  // off: nothing journaled
}

// ---- directory resync hooks ----

TEST(UlcClientResync, EvictDropsOnlyMatchingLevel) {
  UlcConfig cfg;
  cfg.capacities = {4, 6, 8};
  UlcClient client(cfg);
  for (BlockId b = 0; b < 40; ++b) client.access(b % 10);
  // Find a block the directory holds at level 1.
  BlockId victim = 0;
  bool found = false;
  for (BlockId b = 0; b < 10 && !found; ++b) {
    if (client.level_of(b) == 1) {
      victim = b;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  EXPECT_FALSE(client.resync_evict(victim, 2));  // wrong level: refused
  EXPECT_TRUE(client.resync_evict(victim, 1));
  EXPECT_EQ(client.level_of(victim), kLevelOut);
  EXPECT_FALSE(client.resync_evict(victim, 1));  // already gone
  EXPECT_EQ(client.stats().resync_drops, 1u);
}

TEST(UlcClientResync, WipeLevelDropsEveryEntry) {
  UlcConfig cfg;
  cfg.capacities = {4, 6, 8};
  UlcClient client(cfg);
  for (BlockId b = 0; b < 60; ++b) client.access(b % 12);
  std::size_t at_level1 = 0;
  for (BlockId b = 0; b < 12; ++b)
    if (client.level_of(b) == 1) ++at_level1;
  ASSERT_GT(at_level1, 0u);
  std::vector<BlockId> dropped;
  EXPECT_EQ(client.resync_wipe_level(1, &dropped), at_level1);
  EXPECT_EQ(dropped.size(), at_level1);
  for (BlockId b = 0; b < 12; ++b) EXPECT_NE(client.level_of(b), 1u);
  EXPECT_EQ(client.resync_wipe_level(1), 0u);  // idempotent
}

TEST(SchemeResync, CheckedResyncStaysViolationFree) {
  // Resync through the auditor: the narrated kLost events must keep the
  // shadow model in lock-step, so later accesses and the final sweep pass.
  auto src = make_zipf_source(0, 120, 0.9, true, 3);
  const Trace t = generate(*src, 4000, 4, "resync");
  CheckOptions opt;
  opt.sweep_interval = 16;
  opt.context = "scheme-resync";
  CheckedHierarchy checked(make_ulc({8, 12, 10}), opt);
  ASSERT_TRUE(checked.supports_resync());
  std::vector<std::size_t> levels;
  for (std::size_t i = 0; i < t.size(); ++i) {
    checked.access(t[i]);
    if (i == 1000 || i == 2500) {
      // Crash repair: purge every level-1 claim.
      (void)checked.resync_level(0, 1);
    }
    if (i == 2000) {
      // Single stale entry: find any block resident at level 2 and drop it.
      for (BlockId b = 0; b < 120; ++b) {
        levels.clear();
        checked.audit_resident_levels(0, b, levels);
        if (levels.size() == 1 && levels[0] == 2) {
          EXPECT_TRUE(checked.resync_drop(0, b, 2));
          levels.clear();
          checked.audit_resident_levels(0, b, levels);
          EXPECT_TRUE(levels.empty());
          break;
        }
      }
    }
  }
  ASSERT_NO_THROW(checked.final_check());
}

TEST(SchemeResync, MultiClientSharedLevelPurge) {
  CheckOptions opt;
  opt.sweep_interval = 16;
  opt.context = "multi-resync";
  CheckedHierarchy checked(make_ulc_multi(6, 18, 3), opt);
  ASSERT_TRUE(checked.supports_resync());
  auto sources = std::vector<PatternPtr>{};
  sources.push_back(make_zipf_source(0, 80, 0.9, true, 5));
  sources.push_back(make_zipf_source(0, 80, 0.8, true, 6));
  sources.push_back(make_loop_source(20, 40));
  const Trace t =
      generate_multi(std::move(sources), {1.0, 1.0, 1.0}, 6000, 11, "m");
  for (std::size_t i = 0; i < t.size(); ++i) {
    checked.access(t[i]);
    if (i == 3000) {
      const std::size_t purged = checked.resync_level(0, 1);
      EXPECT_GT(purged, 0u);
      EXPECT_EQ(checked.audit_level_size(0, 1), 0u);
    }
  }
  ASSERT_NO_THROW(checked.final_check());
}

TEST(Mutations, ResyncAmnesiaIsCaughtAsDrift) {
  // The mutant narrates the kLost (the shadow drops its copy) but forgets
  // to evict the directory entry; the next sweep sees the scheme still
  // claiming the copy -> drift.
  auto src = make_zipf_source(0, 120, 0.9, true, 3);
  const Trace t = generate(*src, 3000, 4, "amnesia");
  CheckOptions opt;
  opt.sweep_interval = 8;
  opt.context = "amnesia-test";
  CheckedHierarchy checked(make_mutant(make_ulc({8, 12, 10}), Mutation::kResyncAmnesia),
                           opt);
  std::optional<ViolationKind> kind;
  try {
    std::vector<std::size_t> levels;
    bool dropped = false;
    for (std::size_t i = 0; i < t.size(); ++i) {
      checked.access(t[i]);
      if (!dropped && i >= 1500) {
        for (BlockId b = 0; b < 120 && !dropped; ++b) {
          levels.clear();
          checked.audit_resident_levels(0, b, levels);
          if (levels.size() == 1 && levels[0] == 1) {
            (void)checked.resync_drop(0, b, 1);
            dropped = true;
          }
        }
      }
    }
    ASSERT_TRUE(dropped) << "no level-1 resident block found to drop";
    checked.final_check();
  } catch (const AuditViolation& v) {
    kind = v.kind;
  }
  ASSERT_TRUE(kind.has_value()) << "amnesia mutant went undetected";
  EXPECT_EQ(*kind, ViolationKind::kDrift);
}

}  // namespace
}  // namespace ulc
