// Tests for the observability layer (src/obs): histogram bucket math and
// exact-rank percentiles, merge determinism across sharded (multi-thread)
// accumulation, the metrics registry, the scope timer, the trace recorder's
// Chrome trace_event export (golden file), and the engine-level guarantees —
// published counters match the run's HierarchyStats and the response-time
// histogram's mean reproduces the analytic T_ave components it measures.
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "exp/experiment.h"
#include "hierarchy/hierarchy.h"
#include "hierarchy/runner.h"
#include "obs/metrics.h"
#include "obs/trace_recorder.h"
#include "util/prng.h"
#include "workloads/synthetic.h"

namespace ulc {
namespace {

Trace small_trace(std::uint64_t blocks, std::uint64_t refs, std::uint64_t seed) {
  auto src = make_zipf_source(0, blocks, 0.9, true, seed);
  return generate(*src, refs, seed, "obs");
}

// ---- LatencyHistogram ----

TEST(LatencyHistogram, EmptyReportsNulls) {
  obs::LatencyHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.to_json().dump(),
            "{\"count\":0,\"mean\":null,\"min\":null,\"max\":null,"
            "\"p50\":null,\"p95\":null,\"p99\":null}");
}

TEST(LatencyHistogram, PercentileOfEmptyAborts) {
  obs::LatencyHistogram h;
  EXPECT_DEATH(h.percentile(50.0), "empty histogram");
}

TEST(LatencyHistogram, ExtremaAreExactAndPercentilesClamped) {
  obs::LatencyHistogram h;
  for (double ms : {0.0, 0.2, 0.2, 1.0, 12.4}) h.record(ms);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 12.4);
  // p0/p100 are clamped to the exact observed extrema.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 12.4);
  // Rank 3 of 5 is the 0.2 sample; the answer is that bucket's upper edge,
  // within one bucket width (1/32) of the true order statistic.
  const double p50 = h.percentile(50.0);
  EXPECT_GE(p50, 0.2);
  EXPECT_LE(p50, 0.2 * (1.0 + 1.0 / obs::LatencyHistogram::kSubBuckets));
}

TEST(LatencyHistogram, NonPositiveSamplesShareTheZeroBucket) {
  obs::LatencyHistogram h;
  h.record(0.0);
  h.record(-3.5);  // clock-skew style input must not crash or misbucket
  h.record(0.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), -3.5);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  // All three land in the zero bucket whose upper edge is 0, so mid-range
  // percentiles report 0; only p0 recovers the exact (negative) minimum.
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), -3.5);
}

TEST(LatencyHistogram, BucketRelativeErrorBoundAcrossMagnitudes) {
  // One tiny and one huge sample so clamping cannot mask bucket error; the
  // p50 rank lands on v's bucket and must be within 1/kSubBuckets above v.
  for (double v = 1e-6; v < 1e7; v *= 3.7) {
    obs::LatencyHistogram h;
    h.record(v);
    h.record(1e9);
    const double p50 = h.percentile(50.0);
    EXPECT_GE(p50, v) << v;
    EXPECT_LE(p50, v * (1.0 + 1.0 / obs::LatencyHistogram::kSubBuckets)) << v;
  }
}

TEST(LatencyHistogram, ShardedMergeIsDeterministicAcrossThreadCounts) {
  Rng rng(42);
  std::vector<double> samples;
  for (int i = 0; i < 4000; ++i)
    samples.push_back(static_cast<double>(rng.next_below(1 << 20)) * 0.001);

  obs::LatencyHistogram sequential;
  for (double s : samples) sequential.record(s);

  // Shard deterministically, populate the shards concurrently (the engine's
  // worker pool), then merge in fixed shard order. The merge *shape* is
  // fixed, so the JSON must be byte-identical no matter how many threads
  // raced on the shards — that is the contract run_matrix relies on.
  std::string reference;
  for (std::size_t threads : {1, 3, 8}) {
    constexpr std::size_t kShards = 7;
    std::vector<obs::LatencyHistogram> shards(kShards);
    exp::parallel_for(kShards, threads, [&](std::size_t shard) {
      for (std::size_t i = shard; i < samples.size(); i += kShards)
        shards[shard].record(samples[i]);
    });
    obs::LatencyHistogram merged;
    for (const obs::LatencyHistogram& s : shards) merged.merge(s);
    if (reference.empty()) reference = merged.to_json().dump();
    EXPECT_EQ(merged.to_json().dump(), reference) << threads;

    // Against the sequential accumulation: the bucket contents are integers,
    // so count/extrema/percentiles agree exactly; only the Welford mean may
    // differ in the last bit because the merge tree reorders the additions.
    EXPECT_EQ(merged.count(), sequential.count());
    EXPECT_DOUBLE_EQ(merged.min(), sequential.min());
    EXPECT_DOUBLE_EQ(merged.max(), sequential.max());
    for (double p : {50.0, 95.0, 99.0})
      EXPECT_DOUBLE_EQ(merged.percentile(p), sequential.percentile(p)) << p;
    EXPECT_NEAR(merged.mean(), sequential.mean(), 1e-9 * sequential.mean());
  }
}

TEST(LatencyHistogram, ClearResetsToEmpty) {
  obs::LatencyHistogram h;
  h.record(1.0);
  h.clear();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.to_json().dump(), obs::LatencyHistogram().to_json().dump());
}

// ---- MetricsRegistry ----

TEST(MetricsRegistry, CountersGaugesHistogramsAndMerge) {
  obs::MetricsRegistry a;
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.counter("absent"), 0u);
  a.add_counter("hits.L0", 5);
  a.add_counter("hits.L0", 2);
  a.set_gauge("warmup", 0.1);
  a.histogram("response_ms").record(1.0);
  EXPECT_EQ(a.counter("hits.L0"), 7u);
  EXPECT_NE(a.find_histogram("response_ms"), nullptr);
  EXPECT_EQ(a.find_histogram("absent"), nullptr);

  obs::MetricsRegistry b;
  b.add_counter("hits.L0", 3);
  b.add_counter("misses", 1);
  b.set_gauge("warmup", 0.2);
  b.histogram("response_ms").record(2.0);

  a.merge(b);
  EXPECT_EQ(a.counter("hits.L0"), 10u);  // counters add
  EXPECT_EQ(a.counter("misses"), 1u);
  EXPECT_EQ(a.find_histogram("response_ms")->count(), 2u);  // histograms merge
  // Gauges take the merged-in value; keys serialize in lexicographic order.
  EXPECT_EQ(a.to_json().dump(),
            "{\"counters\":{\"hits.L0\":10,\"misses\":1},"
            "\"gauges\":{\"warmup\":0.2},"
            "\"histograms\":{\"response_ms\":" +
                a.find_histogram("response_ms")->to_json().dump() + "}}");
}

TEST(ScopeTimer, RecordsSimClockDeltaAndToleratesNulls) {
  obs::LatencyHistogram h;
  double clock = 10.0;
  {
    obs::ScopeTimer t(&h, &clock);
    clock = 13.5;
  }
  ASSERT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 3.5);
  {
    obs::ScopeTimer t(nullptr, &clock);  // no-op forms must not crash
    obs::ScopeTimer t2(&h, nullptr);
  }
  EXPECT_EQ(h.count(), 1u);
}

TEST(ObsGate, PassesPointersThroughWhenEnabled) {
  int x = 0;
  if (obs::enabled()) {
    EXPECT_EQ(obs::gate(&x), &x);
  } else {
    EXPECT_EQ(obs::gate(&x), nullptr);
  }
}

TEST(StatsToJson, EmptyEmitsNullsNotZeros) {
  OnlineStats s;
  EXPECT_EQ(obs::stats_to_json(s).dump(),
            "{\"count\":0,\"mean\":null,\"stddev\":null,"
            "\"min\":null,\"max\":null}");
  s.add(2.0);
  EXPECT_EQ(obs::stats_to_json(s).dump(),
            "{\"count\":1,\"mean\":2,\"stddev\":0,\"min\":2,\"max\":2}");
}

// ---- TraceRecorder ----

TEST(TraceRecorder, CapacityDropsAreCountedNotRecorded) {
  obs::TraceRecorder rec(2);
  rec.span("a", "access", 0.0, 1.0, obs::TraceRecorder::kClientTrack, 0);
  rec.instant("b", "fault", 1.0, obs::TraceRecorder::level_track(0), 0);
  rec.span("c", "access", 2.0, 1.0, obs::TraceRecorder::kClientTrack, 1);
  EXPECT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.dropped(), 1u);
  const std::string doc = rec.to_chrome_json().dump();
  EXPECT_NE(doc.find("\"dropped_events\":1"), std::string::npos) << doc;
  rec.clear();
  EXPECT_TRUE(rec.empty());
  EXPECT_EQ(rec.dropped(), 0u);
}

// The export schema is pinned by a golden file: chrome://tracing and Perfetto
// parse these documents, so field names, ph/ts/dur conventions and metadata
// ordering must not drift silently.
TEST(TraceRecorder, ChromeExportMatchesGoldenFile) {
  obs::TraceRecorder rec;
  rec.name_track(obs::TraceRecorder::kClientTrack, "client");
  rec.name_track(obs::TraceRecorder::level_track(1), "level L1");
  rec.span("hit L1", "access", 0.25, 1.5, obs::TraceRecorder::kClientTrack, 0,
           42);
  rec.span("demote L0->L1", "demote", 1.75, 0.5,
           obs::TraceRecorder::level_track(0), 0, 7);
  rec.instant("breaker trip L1", "phase", 2.5, obs::TraceRecorder::level_track(1),
              1);
  rec.span("miss", "access", 3.0, 12.0, obs::TraceRecorder::kClientTrack, 1);

  const std::string actual = rec.to_chrome_json().dump(2) + "\n";
  std::ifstream golden(std::string(ULC_GOLDEN_DIR) + "/trace_events.golden.json");
  ASSERT_TRUE(golden.is_open()) << "missing golden file";
  std::stringstream expected;
  expected << golden.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "Chrome trace schema changed; update "
         "tests/golden/trace_events.golden.json\nactual:\n"
      << actual;
}

// ---- run_scheme integration ----

TEST(RunSchemeObs, CountersMatchStatsAndHistogramMeanMatchesTave) {
  const Trace t = small_trace(512, 20000, 5);
  const CostModel model = CostModel::paper_three_level();
  auto scheme = make_ulc({64, 128, 256});
  obs::MetricsRegistry metrics;
  RunObservation observe;
  observe.metrics = &metrics;
  const RunResult r = run_scheme(*scheme, t, model, 0.1, observe);

  // Published counters are the run's HierarchyStats verbatim.
  for (std::size_t l = 0; l < r.stats.level_hits.size(); ++l)
    EXPECT_EQ(metrics.counter("hits.L" + std::to_string(l)),
              r.stats.level_hits[l]);
  EXPECT_EQ(metrics.counter("misses"), r.stats.misses);
  EXPECT_EQ(metrics.counter("references"), r.stats.references);
  for (std::size_t b = 0; b < r.stats.demotions.size(); ++b)
    EXPECT_EQ(metrics.counter("demote.L" + std::to_string(b)),
              r.stats.demotions[b]);

  // The response histogram samples exactly the per-reference terms of the
  // analytic model (hit + miss + demotion; reloads/writebacks are off the
  // read path), so its mean reproduces those T_ave components.
  const obs::LatencyHistogram* hist = metrics.find_histogram("response_ms");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), r.stats.references);
  const double expected =
      r.time.hit_component + r.time.miss_component + r.time.demotion_component;
  EXPECT_NEAR(hist->mean(), expected, 1e-9);
}

TEST(RunSchemeObs, InstrumentedRunMatchesBareRun) {
  const Trace t = small_trace(256, 8000, 9);
  const CostModel model = CostModel::paper_two_level();
  auto bare = make_uni_lru({32, 64});
  const RunResult plain = run_scheme(*bare, t, model, 0.1);

  auto observed = make_uni_lru({32, 64});
  obs::MetricsRegistry metrics;
  obs::TraceRecorder rec(1000);
  RunObservation observe;
  observe.metrics = &metrics;
  observe.events = &rec;
  const RunResult instrumented = run_scheme(*observed, t, model, 0.1, observe);

  // Observation is purely additive: identical stats and identical T_ave.
  EXPECT_EQ(plain.stats.level_hits, instrumented.stats.level_hits);
  EXPECT_EQ(plain.stats.misses, instrumented.stats.misses);
  EXPECT_EQ(plain.stats.demotions, instrumented.stats.demotions);
  EXPECT_DOUBLE_EQ(plain.t_ave_ms, instrumented.t_ave_ms);
  EXPECT_FALSE(rec.empty());
}

// Engine-level determinism of the new fields: per-cell registries merged in
// spec order make the counters and percentiles byte-identical no matter how
// many worker threads raced on the cells.
TEST(RunMatrixObs, MetricsIdenticalAcrossThreadCounts) {
  auto t = std::make_shared<const Trace>(small_trace(256, 10000, 3));
  auto make_specs = [&] {
    std::vector<exp::ExperimentSpec> specs;
    for (std::size_t cap : {16, 32, 64, 128}) {
      exp::ExperimentSpec spec;
      spec.factory = [cap](const Trace&) { return make_ulc({cap, 2 * cap}); };
      spec.trace_override = t;
      spec.model = CostModel::paper_two_level();
      specs.push_back(std::move(spec));
    }
    return specs;
  };

  exp::MatrixOptions one;
  one.threads = 1;
  const auto base = exp::run_matrix(make_specs(), one);

  exp::MatrixOptions eight;
  eight.threads = 8;
  const auto parallel = exp::run_matrix(make_specs(), eight);

  ASSERT_EQ(base.size(), parallel.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    ASSERT_TRUE(base[i].metrics && parallel[i].metrics);
    EXPECT_EQ(base[i].metrics->to_json().dump(),
              parallel[i].metrics->to_json().dump())
        << "cell " << i;
  }
}

}  // namespace
}  // namespace ulc
