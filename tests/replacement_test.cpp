#include <gtest/gtest.h>

#include <set>

#include "measures/next_use.h"
#include "replacement/cache_policy.h"
#include "workloads/synthetic.h"

namespace ulc {
namespace {

double run_policy(CachePolicy& policy, const Trace& t,
                  const std::vector<std::uint64_t>* next_use = nullptr) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    AccessContext ctx;
    ctx.time = i;
    if (next_use) ctx.next_use = (*next_use)[i];
    policy.access(t[i].block, ctx);
  }
  return policy.hit_ratio();
}

TEST(Lru, EvictsLeastRecentlyUsed) {
  auto lru = make_lru(2);
  EvictResult ev;
  EXPECT_FALSE(lru->access(1, {}, &ev));
  EXPECT_FALSE(lru->access(2, {}, &ev));
  EXPECT_TRUE(lru->access(1, {}, &ev));  // 1 now MRU
  EXPECT_FALSE(lru->access(3, {}, &ev));
  EXPECT_TRUE(ev.evicted);
  EXPECT_EQ(ev.victim, 2u);
  EXPECT_TRUE(lru->contains(1));
  EXPECT_TRUE(lru->contains(3));
  EXPECT_EQ(lru->size(), 2u);
}

TEST(Lru, EraseRemoves) {
  auto lru = make_lru(4);
  lru->access(1);
  lru->access(2);
  EXPECT_TRUE(lru->erase(1));
  EXPECT_FALSE(lru->erase(1));
  EXPECT_FALSE(lru->contains(1));
  EXPECT_EQ(lru->size(), 1u);
}

TEST(Fifo, IgnoresRecencyOnHit) {
  auto fifo = make_fifo(2);
  EvictResult ev;
  fifo->access(1, {}, &ev);
  fifo->access(2, {}, &ev);
  EXPECT_TRUE(fifo->access(1, {}, &ev));  // hit does not refresh
  fifo->access(3, {}, &ev);
  EXPECT_TRUE(ev.evicted);
  EXPECT_EQ(ev.victim, 1u);  // 1 is still the oldest insertion
}

TEST(Random, HitRateProportionalToSizeOnUniform) {
  auto src = make_uniform_source(0, 1000);
  const Trace t = generate(*src, 60000, 3, "u");
  auto policy = make_random(250, 7);
  const double hr = run_policy(*policy, t);
  EXPECT_NEAR(hr, 0.25, 0.03);
}

TEST(Opt, HandTrace) {
  // Belady on a classic example: capacity 3.
  Trace t("hand");
  for (BlockId b : {7, 0, 1, 2, 0, 3, 0, 4}) t.add(b);
  const auto nu = compute_next_use(t);
  auto opt = make_opt(3);
  std::vector<bool> hits;
  for (std::size_t i = 0; i < t.size(); ++i) {
    AccessContext ctx{i, nu[i]};
    hits.push_back(opt->access(t[i].block, ctx));
  }
  const std::vector<bool> expect = {false, false, false, false,
                                    true,  false, true,  false};
  EXPECT_EQ(hits, expect);
}

// OPT dominance: no on-line policy beats OPT on the same trace and size.
class OptDominanceTest
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(OptDominanceTest, OptIsUpperBound) {
  const auto [kind, capacity] = GetParam();
  PatternPtr src;
  switch (kind) {
    case 0:
      src = make_uniform_source(0, 300);
      break;
    case 1:
      src = make_zipf_source(0, 300, 1.0, true, 5);
      break;
    case 2:
      src = make_loop_source(0, 150);
      break;
    default:
      src = make_temporal_source(0, 300, 0.1, 4.0);
      break;
  }
  const Trace t = generate(*src, 20000, 77, "w");
  const auto nu = compute_next_use(t);
  auto opt = make_opt(capacity);
  const double opt_hr = run_policy(*opt, t, &nu);
  for (auto make : {make_lru, make_fifo}) {
    auto policy = make(capacity);
    EXPECT_LE(run_policy(*policy, t), opt_hr + 1e-9) << policy->name();
  }
  auto lirs = make_lirs(LirsConfig{capacity, 0.05});
  EXPECT_LE(run_policy(*lirs, t), opt_hr + 1e-9);
  auto mq = make_mq(MqConfig{capacity});
  EXPECT_LE(run_policy(*mq, t), opt_hr + 1e-9);
  auto two_q = make_two_q(TwoQConfig{capacity});
  EXPECT_LE(run_policy(*two_q, t), opt_hr + 1e-9);
  auto arc = make_arc(capacity);
  EXPECT_LE(run_policy(*arc, t), opt_hr + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, OptDominanceTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(std::size_t{32}, std::size_t{100})));

TEST(Mq, PrefersFrequentBlocks) {
  // Two frequency classes over a cache that fits only half the footprint:
  // the frequent half must hit much more often under MQ.
  std::vector<PatternPtr> sources;
  sources.push_back(make_uniform_source(0, 100));     // hot
  sources.push_back(make_uniform_source(1000, 900));  // cold, weak locality
  auto src = make_mixture_source(std::move(sources), {0.5, 0.5});
  const Trace t = generate(*src, 60000, 9, "freq");
  auto mq = make_mq(MqConfig{200});
  std::uint64_t hot_hits = 0, hot_refs = 0;
  for (const Request& r : t) {
    const bool hit = mq->access(r.block, {});
    if (r.block < 100) {
      ++hot_refs;
      hot_hits += hit ? 1 : 0;
    }
  }
  EXPECT_GT(static_cast<double>(hot_hits) / static_cast<double>(hot_refs), 0.9);
}

TEST(Mq, EvictsFromLowestQueueFirst) {
  MqConfig cfg;
  cfg.capacity = 2;
  cfg.queue_count = 4;
  cfg.life_time = 1000;
  auto mq = make_mq(cfg);
  for (int i = 0; i < 4; ++i) mq->access(1, {});  // frequent -> high queue
  mq->access(2, {});                              // cold -> Q0
  mq->access(3, {});                              // eviction needed
  EXPECT_TRUE(mq->contains(1));   // protected by its queue level
  EXPECT_FALSE(mq->contains(2));  // Q0 head was the victim
  EXPECT_TRUE(mq->contains(3));
}

TEST(Mq, LifetimeExpiryDemotesStaleFrequentBlocks) {
  MqConfig cfg;
  cfg.capacity = 3;
  cfg.queue_count = 4;
  cfg.life_time = 1;  // expire almost immediately when unreferenced
  cfg.ghost_capacity = 16;
  auto mq = make_mq(cfg);
  for (int i = 0; i < 4; ++i) mq->access(1, {});
  for (BlockId b = 10; b < 24; ++b) mq->access(b, {});
  // The once-frequent block expired, descended to Q0 and was evicted.
  EXPECT_FALSE(mq->contains(1));
}

TEST(Mq, LongLifetimeProtectsFrequentBlocks) {
  MqConfig cfg;
  cfg.capacity = 3;
  cfg.queue_count = 4;
  cfg.life_time = 100000;
  auto mq = make_mq(cfg);
  for (int i = 0; i < 4; ++i) mq->access(1, {});
  for (BlockId b = 10; b < 24; ++b) mq->access(b, {});
  EXPECT_TRUE(mq->contains(1));  // cold stream churns Q0 only
}

TEST(Mq, GhostFrequencyLiftsHitRate) {
  // Hot set slightly larger than the cache over a large cold stream: the
  // ghost directory lets re-admitted hot blocks resume their frequency and
  // climb out of Q0, so a real Qout must beat a crippled one.
  std::vector<PatternPtr> mk1, mk2;
  for (int v = 0; v < 2; ++v) {
    std::vector<PatternPtr> sources;
    sources.push_back(make_zipf_source(0, 150, 0.6, true, 3));  // hot-ish set
    sources.push_back(make_uniform_source(100000, 20000));      // cold stream
    (v == 0 ? mk1 : mk2)
        .push_back(make_mixture_source(std::move(sources), {0.5, 0.5}));
  }
  const Trace t = generate(*mk1[0], 80000, 21, "g");
  MqConfig with_ghost{/*capacity=*/100, /*queue_count=*/8, /*life_time=*/0,
                      /*ghost_capacity=*/800};
  MqConfig tiny_ghost{/*capacity=*/100, /*queue_count=*/8, /*life_time=*/0,
                      /*ghost_capacity=*/1};
  auto a = make_mq(with_ghost);
  auto b = make_mq(tiny_ghost);
  const double hr_ghost = run_policy(*a, t);
  const double hr_tiny = run_policy(*b, t);
  EXPECT_GT(hr_ghost, hr_tiny);
}

TEST(Mq, BeatsLruOnWeakLocalitySecondLevel) {
  // Second-level cache stream: strip L1 hits by filtering a zipf trace
  // through a small LRU first (the MQ paper's environment).
  auto src = make_zipf_source(0, 2000, 0.9, true, 11);
  const Trace t = generate(*src, 120000, 13, "z");
  auto l1 = make_lru(100);
  Trace filtered("l2");
  for (const Request& r : t) {
    if (!l1->access(r.block, {})) filtered.add(r.block);
  }
  auto mq = make_mq(MqConfig{400});
  auto lru = make_lru(400);
  const double mq_hr = run_policy(*mq, filtered);
  const double lru_hr = run_policy(*lru, filtered);
  EXPECT_GT(mq_hr, lru_hr);
}

TEST(TwoQ, AdmissionFilterResistsScans) {
  // Hot zipf set + one-touch scan stream: the scan churns A1in only; the
  // hot set stays in Am. Plain LRU loses the hot set to the scan.
  std::vector<PatternPtr> sources;
  sources.push_back(make_zipf_source(0, 150, 1.0, true, 3));
  sources.push_back(make_scan_source(100000, 50000));
  auto src = make_mixture_source(std::move(sources), {0.5, 0.5});
  const Trace t = generate(*src, 60000, 25, "scanmix");
  auto two_q = make_two_q(TwoQConfig{200});
  auto lru = make_lru(200);
  EXPECT_GT(run_policy(*two_q, t), run_policy(*lru, t));
}

TEST(TwoQ, GhostPromotionGoesToMainList) {
  TwoQConfig cfg{/*capacity=*/4, /*kin=*/0.5, /*kout=*/1.0};
  auto q = make_two_q(cfg);
  // Fill A1in (size 2) and push block 1 out into the ghost.
  q->access(1, {});
  q->access(2, {});
  q->access(3, {});
  q->access(4, {});
  q->access(5, {});  // someone leaves A1in for the ghost
  EXPECT_FALSE(q->contains(1));
  EXPECT_TRUE(q->access(1, {}) == false);  // ghost hit: miss, but promoted
  EXPECT_TRUE(q->contains(1));
}

TEST(Arc, AdaptsToScanThenRecency) {
  // ARC must beat LRU on a scan-polluted hot set (frequency protection)...
  std::vector<PatternPtr> sources;
  sources.push_back(make_zipf_source(0, 150, 1.0, true, 3));
  sources.push_back(make_scan_source(100000, 50000));
  auto src = make_mixture_source(std::move(sources), {0.5, 0.5});
  const Trace t = generate(*src, 60000, 27, "scanmix");
  auto arc = make_arc(200);
  auto lru = make_lru(200);
  EXPECT_GT(run_policy(*arc, t), run_policy(*lru, t));
}

TEST(Arc, MatchesLruOnPureRecencyTraffic) {
  // ...and stay within a whisker of LRU where LRU is optimal-ish.
  auto src = make_temporal_source(0, 800, 0.08, 5.0);
  const Trace t = generate(*src, 40000, 29, "t");
  auto arc = make_arc(300);
  auto lru = make_lru(300);
  EXPECT_GT(run_policy(*arc, t), run_policy(*lru, t) - 0.03);
}

TEST(Arc, SizeBounded) {
  auto src = make_zipf_source(0, 1000, 0.8, true, 31);
  const Trace t = generate(*src, 30000, 33, "z");
  auto arc = make_arc(100);
  for (const Request& r : t) {
    arc->access(r.block, {});
    ASSERT_LE(arc->size(), 100u);
  }
}

TEST(Lirs, BeatsLruOnLoopLargerThanCache) {
  auto src = make_loop_source(0, 120);
  const Trace t = generate(*src, 20000, 1, "loop");
  auto lirs = make_lirs(LirsConfig{100, 0.05});
  auto lru = make_lru(100);
  const double lirs_hr = run_policy(*lirs, t);
  const double lru_hr = run_policy(*lru, t);
  EXPECT_LT(lru_hr, 0.01);   // LRU thrashes the loop
  EXPECT_GT(lirs_hr, 0.5);   // LIRS retains a resident subset
}

TEST(Lirs, SizeNeverExceedsCapacity) {
  auto src = make_zipf_source(0, 500, 1.0, true, 17);
  const Trace t = generate(*src, 30000, 19, "z");
  auto lirs = make_lirs(LirsConfig{64, 0.1});
  for (const Request& r : t) {
    lirs->access(r.block, {});
    ASSERT_LE(lirs->size(), 64u);
  }
}

TEST(Policies, EraseOnAllPolicies) {
  std::vector<PolicyPtr> policies;
  policies.push_back(make_lru(8));
  policies.push_back(make_fifo(8));
  policies.push_back(make_random(8, 3));
  policies.push_back(make_opt(8));
  policies.push_back(make_mq(MqConfig{8}));
  policies.push_back(make_two_q(TwoQConfig{8}));
  policies.push_back(make_arc(8));
  policies.push_back(make_lirs(LirsConfig{8, 0.25}));
  for (auto& policy : policies) {
    for (BlockId b = 0; b < 8; ++b) policy->access(b, {0, kNever});
    ASSERT_TRUE(policy->contains(3)) << policy->name();
    EXPECT_TRUE(policy->erase(3)) << policy->name();
    EXPECT_FALSE(policy->contains(3)) << policy->name();
    EXPECT_FALSE(policy->erase(3)) << policy->name();
  }
}

// Regression for the slab/FlatMap port: a long mixed touch/insert/erase
// churn over a key universe far larger than the cache drives the block index
// through rehashes and tombstone purges and the slab through page carving
// and handle recycling — exactly the conditions under which a call site that
// kept a Value* or node reference across an index mutation would read a
// stale slot. The model tracks residency from EvictResult, so any aliased
// handle or missed index update shows up as a contains() disagreement.
TEST(Policies, ChurnKeepsIndexAndResidencyInAgreement) {
  struct Case {
    const char* label;
    PolicyPtr policy;
  };
  std::vector<Case> cases;
  cases.push_back({"lru", make_lru(64)});
  cases.push_back({"fifo", make_fifo(64)});
  cases.push_back({"random", make_random(64, 7)});
  cases.push_back({"mq", make_mq(MqConfig{64})});
  cases.push_back({"two_q", make_two_q(TwoQConfig{64})});
  cases.push_back({"arc", make_arc(64)});
  cases.push_back({"lirs", make_lirs(LirsConfig{64, 0.1})});
  for (auto& c : cases) {
    std::set<BlockId> resident;
    std::uint64_t state = 0x9e3779b97f4a7c15ull;
    auto next = [&state]() {
      state ^= state << 13;
      state ^= state >> 7;
      state ^= state << 17;
      return state;
    };
    for (std::uint64_t i = 0; i < 20000; ++i) {
      const BlockId b = next() % 4096;  // 64x the cache: constant eviction
      if (next() % 8 == 0) {
        const bool erased = c.policy->erase(b);
        EXPECT_EQ(erased, resident.count(b) != 0) << c.label << " @" << i;
        resident.erase(b);
        continue;
      }
      AccessContext ctx;
      ctx.time = i;
      // touch() hits exactly the resident set (ghost hits in 2Q/ARC/LIRS
      // report as misses and are admitted below like any other miss).
      const bool hit = c.policy->touch(b, ctx);
      EXPECT_EQ(hit, resident.count(b) != 0) << c.label << " @" << i;
      if (!hit && resident.count(b) == 0) {
        EvictResult ev = c.policy->insert(b, ctx);
        resident.insert(b);
        if (ev.evicted) {
          EXPECT_EQ(resident.erase(ev.victim), 1u) << c.label << " @" << i;
        }
      }
      EXPECT_LE(c.policy->size(), 64u) << c.label << " @" << i;
    }
    // Full sweep: the policy's view of residency must match the model's.
    for (BlockId b = 0; b < 4096; ++b) {
      ASSERT_EQ(c.policy->contains(b), resident.count(b) != 0)
          << c.label << " block " << b;
    }
    EXPECT_EQ(c.policy->size(), resident.size()) << c.label;
  }
}

}  // namespace
}  // namespace ulc
