// Differential oracle for the Section-2 measure analyzers: an O(n^2)
// model that literally maintains each measure's sorted list as a vector and
// recomputes ranks/segments from scratch, with no code shared with the
// incremental engines.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "measures/analyzers.h"
#include "measures/next_use.h"
#include "workloads/synthetic.h"

namespace ulc {
namespace {

struct OracleReport {
  std::vector<std::uint64_t> seg_refs = std::vector<std::uint64_t>(kSegments, 0);
  std::vector<std::uint64_t> crossings =
      std::vector<std::uint64_t>(kSegments - 1, 0);
  std::uint64_t cold = 0;
};

std::size_t count_distinct(const Trace& t) {
  std::vector<BlockId> blocks;
  for (const Request& r : t) blocks.push_back(r.block);
  std::sort(blocks.begin(), blocks.end());
  blocks.erase(std::unique(blocks.begin(), blocks.end()), blocks.end());
  return blocks.size();
}

// Shared oracle for the keyed measures (R, ND, NLD): keeps the sorted list
// as a plain vector of (key, tie, block) and recomputes everything per
// reference.
OracleReport keyed_oracle(const Trace& t, Measure measure) {
  const std::size_t n = count_distinct(t);
  std::vector<std::size_t> boundaries;
  for (std::size_t k = 1; k < kSegments; ++k) boundaries.push_back(k * n / 10);
  auto segment_of = [&](std::size_t rank) {
    std::size_t s = 0;
    while (s + 1 < kSegments && rank >= boundaries[s]) ++s;
    return s;
  };

  std::vector<std::uint64_t> next_use, stack_dist;
  if (measure != Measure::kR) next_use = compute_next_use(t);
  if (measure == Measure::kNLD) stack_dist = compute_stack_distances(t);

  struct Entry {
    std::uint64_t key;
    std::uint64_t tie;
    BlockId block;
  };
  std::vector<Entry> list;
  std::uint64_t tie_counter = 0;
  OracleReport rep;

  for (std::size_t i = 0; i < t.size(); ++i) {
    const BlockId b = t[i].block;
    std::uint64_t key = 0;
    switch (measure) {
      case Measure::kR:
        key = (kNever - 1) - i;
        break;
      case Measure::kND:
        key = next_use[i] == kNever ? kNever - 1 : next_use[i];
        break;
      case Measure::kNLD:
        key = next_use[i] == kNever ? kNever - 1 : stack_dist[next_use[i]];
        break;
      default:
        ADD_FAILURE() << "unsupported";
        return rep;
    }
    auto it = std::find_if(list.begin(), list.end(),
                           [&](const Entry& e) { return e.block == b; });
    if (it == list.end()) {
      ++rep.cold;
      const std::size_t size_before = list.size();
      Entry e{key, ++tie_counter, b};
      const auto pos = std::lower_bound(
          list.begin(), list.end(), e, [](const Entry& x, const Entry& y) {
            return std::pair(x.key, x.tie) < std::pair(y.key, y.tie);
          });
      const std::size_t r_new = static_cast<std::size_t>(pos - list.begin());
      list.insert(pos, e);
      for (std::size_t k = 0; k + 1 < kSegments; ++k) {
        if (boundaries[k] > r_new && boundaries[k] <= size_before)
          ++rep.crossings[k];
      }
    } else {
      const std::size_t r_old = static_cast<std::size_t>(it - list.begin());
      ++rep.seg_refs[segment_of(r_old)];
      if (it->key != key) {
        Entry e{key, ++tie_counter, b};
        list.erase(it);
        const auto pos = std::lower_bound(
            list.begin(), list.end(), e, [](const Entry& x, const Entry& y) {
              return std::pair(x.key, x.tie) < std::pair(y.key, y.tie);
            });
        const std::size_t r_new = static_cast<std::size_t>(pos - list.begin());
        list.insert(pos, e);
        const std::size_t lo = std::min(r_old, r_new);
        const std::size_t hi = std::max(r_old, r_new);
        for (std::size_t k = 0; k + 1 < kSegments; ++k) {
          if (boundaries[k] > lo && boundaries[k] <= hi) ++rep.crossings[k];
        }
      }
    }
  }
  return rep;
}

class MeasureOracleTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MeasureOracleTest, AnalyzerMatchesBruteForce) {
  const auto [workload, which] = GetParam();
  PatternPtr src;
  switch (workload) {
    case 0:
      src = make_uniform_source(0, 60);
      break;
    case 1:
      src = make_zipf_source(0, 60, 1.0, true, 5);
      break;
    case 2:
      src = make_loop_source(0, 40);
      break;
    default:
      src = make_temporal_source(0, 60, 0.2, 3.0);
      break;
  }
  const Trace t = generate(*src, 3000, 99, "o");
  const Measure m = which == 0   ? Measure::kR
                    : which == 1 ? Measure::kND
                                 : Measure::kNLD;
  const MeasureReport got = analyze_measure(t, m);
  const OracleReport want = keyed_oracle(t, m);

  const double total = static_cast<double>(t.size());
  ASSERT_EQ(got.cold_references, want.cold);
  for (std::size_t s = 0; s < kSegments; ++s) {
    ASSERT_NEAR(got.segment_ratio[s],
                static_cast<double>(want.seg_refs[s]) / total, 1e-12)
        << measure_name(m) << " segment " << s;
  }
  for (std::size_t b = 0; b + 1 < kSegments; ++b) {
    ASSERT_NEAR(got.movement_ratio[b],
                static_cast<double>(want.crossings[b]) / total, 1e-12)
        << measure_name(m) << " boundary " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MeasureOracleTest,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace ulc
