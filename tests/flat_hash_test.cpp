#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/flat_hash.h"

namespace ulc {
namespace {

TEST(FlatMap, EmptyAnswersEveryQuery) {
  FlatMap<std::uint64_t, std::uint32_t> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.bucket_count(), 0u);
  EXPECT_EQ(m.find(7), nullptr);
  EXPECT_FALSE(m.contains(7));
  EXPECT_FALSE(m.erase(7));
}

TEST(FlatMap, InsertFindEraseRoundTrip) {
  FlatMap<std::uint64_t, std::uint32_t> m;
  m.insert_new(1, 10);
  m.insert_new(2, 20);
  ASSERT_NE(m.find(1), nullptr);
  EXPECT_EQ(*m.find(1), 10u);
  EXPECT_EQ(*m.find(2), 20u);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.erase(1));
  EXPECT_EQ(m.find(1), nullptr);
  EXPECT_FALSE(m.erase(1));
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, PutOverwritesInPlace) {
  FlatMap<std::uint64_t, std::uint32_t> m;
  m.put(5, 1);
  m.put(5, 2);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(*m.find(5), 2u);
}

TEST(FlatMap, InsertNewOfPresentKeyDies) {
  FlatMap<std::uint64_t, std::uint32_t> m;
  m.insert_new(5, 1);
  EXPECT_DEATH(m.insert_new(5, 2), "insert_new of a present key");
}

// A slot freed by erase() must be reusable: steady-state erase/insert cycles
// (every cache eviction is one) may not grow the table without bound.
TEST(FlatMap, TombstoneSlotsAreReusedWithoutGrowth) {
  FlatMap<std::uint64_t, std::uint32_t> m;
  m.reserve(64);
  const std::size_t buckets = m.bucket_count();
  // Churn far more keys than the table has buckets through a bounded live
  // set; the tombstone purge on rehash keeps the table at its reserved size.
  for (std::uint64_t i = 0; i < 10000; ++i) {
    m.insert_new(i, static_cast<std::uint32_t>(i));
    if (i >= 32) {
      EXPECT_TRUE(m.erase(i - 32));
    }
  }
  EXPECT_EQ(m.size(), 32u);
  EXPECT_EQ(m.bucket_count(), buckets);
  for (std::uint64_t i = 10000 - 32; i < 10000; ++i) {
    ASSERT_NE(m.find(i), nullptr) << i;
    EXPECT_EQ(*m.find(i), static_cast<std::uint32_t>(i));
  }
}

TEST(FlatMap, GrowsAtHighLoadFactorAndKeepsEveryKey) {
  FlatMap<std::uint64_t, std::uint64_t> m;
  const std::uint64_t n = 5000;
  for (std::uint64_t i = 0; i < n; ++i) m.insert_new(i * 977, i);
  EXPECT_EQ(m.size(), n);
  // Power-of-two table under 7/8 load.
  const std::size_t b = m.bucket_count();
  EXPECT_EQ(b & (b - 1), 0u);
  EXPECT_LE((n + 1) * 8, b * 7 + 8);
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_NE(m.find(i * 977), nullptr) << i;
    EXPECT_EQ(*m.find(i * 977), i);
  }
  EXPECT_GT(m.rehashes(), 0u);
}

TEST(FlatMap, ReserveThenFillNeverRehashes) {
  FlatMap<std::uint64_t, std::uint32_t> m;
  m.reserve(1000);
  const std::size_t buckets = m.bucket_count();
  for (std::uint64_t i = 0; i < 1000; ++i) m.insert_new(i, 0);
  EXPECT_EQ(m.rehashes(), 0u);
  EXPECT_EQ(m.bucket_count(), buckets);
}

// The determinism contract: two maps over the same key set answer every
// query identically no matter the insertion/erasure history that built them.
// (FlatMap has no iteration API, so queries are the whole surface.)
TEST(FlatMap, QueriesAgreeAcrossInsertionOrders) {
  FlatMap<std::uint64_t, std::uint64_t> a;
  FlatMap<std::uint64_t, std::uint64_t> b;
  const std::uint64_t n = 512;
  for (std::uint64_t i = 0; i < n; ++i) a.insert_new(i * 31, i);
  // b: reverse order, with extra churn that ends at the same key set.
  for (std::uint64_t i = n; i-- > 0;) b.insert_new(i * 31, i);
  for (std::uint64_t i = 0; i < n; i += 2) EXPECT_TRUE(b.erase(i * 31));
  for (std::uint64_t i = 0; i < n; i += 2) b.insert_new(i * 31, i);
  EXPECT_EQ(a.size(), b.size());
  for (std::uint64_t k = 0; k < n * 31 + 7; ++k) {
    const std::uint64_t* va = a.find(k);
    const std::uint64_t* vb = b.find(k);
    ASSERT_EQ(va == nullptr, vb == nullptr) << k;
    if (va != nullptr) {
      EXPECT_EQ(*va, *vb);
    }
  }
}

TEST(FlatMap, ClearResetsToEmpty) {
  FlatMap<std::uint64_t, std::uint32_t> m;
  for (std::uint64_t i = 0; i < 100; ++i) m.insert_new(i, 1);
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.bucket_count(), 0u);
  EXPECT_EQ(m.rehashes(), 0u);
  EXPECT_FALSE(m.contains(3));
  m.insert_new(3, 9);
  EXPECT_EQ(*m.find(3), 9u);
}

TEST(SplitMix64, MixesAdjacentKeysApart) {
  // Not a statistical test — just pins that the finalizer is wired in (the
  // identity hash would map adjacent block ids to adjacent buckets).
  EXPECT_NE(splitmix64_mix(1) + 1, splitmix64_mix(2));
  EXPECT_NE(splitmix64_mix(0), 0u);
}

}  // namespace
}  // namespace ulc
