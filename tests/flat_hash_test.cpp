#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/flat_hash.h"

namespace ulc {
namespace {

TEST(FlatMap, EmptyAnswersEveryQuery) {
  FlatMap<std::uint64_t, std::uint32_t> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.bucket_count(), 0u);
  EXPECT_EQ(m.find(7), nullptr);
  EXPECT_FALSE(m.contains(7));
  EXPECT_FALSE(m.erase(7));
}

TEST(FlatMap, InsertFindEraseRoundTrip) {
  FlatMap<std::uint64_t, std::uint32_t> m;
  m.insert_new(1, 10);
  m.insert_new(2, 20);
  ASSERT_NE(m.find(1), nullptr);
  EXPECT_EQ(*m.find(1), 10u);
  EXPECT_EQ(*m.find(2), 20u);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.erase(1));
  EXPECT_EQ(m.find(1), nullptr);
  EXPECT_FALSE(m.erase(1));
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, PutOverwritesInPlace) {
  FlatMap<std::uint64_t, std::uint32_t> m;
  m.put(5, 1);
  m.put(5, 2);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(*m.find(5), 2u);
}

TEST(FlatMap, InsertNewOfPresentKeyDies) {
  FlatMap<std::uint64_t, std::uint32_t> m;
  m.insert_new(5, 1);
  EXPECT_DEATH(m.insert_new(5, 2), "insert_new of a present key");
}

// A slot freed by erase() must be reusable: steady-state erase/insert cycles
// (every cache eviction is one) may not grow the table without bound.
TEST(FlatMap, TombstoneSlotsAreReusedWithoutGrowth) {
  FlatMap<std::uint64_t, std::uint32_t> m;
  m.reserve(64);
  const std::size_t buckets = m.bucket_count();
  // Churn far more keys than the table has buckets through a bounded live
  // set; the tombstone purge on rehash keeps the table at its reserved size.
  for (std::uint64_t i = 0; i < 10000; ++i) {
    m.insert_new(i, static_cast<std::uint32_t>(i));
    if (i >= 32) {
      EXPECT_TRUE(m.erase(i - 32));
    }
  }
  EXPECT_EQ(m.size(), 32u);
  EXPECT_EQ(m.bucket_count(), buckets);
  for (std::uint64_t i = 10000 - 32; i < 10000; ++i) {
    ASSERT_NE(m.find(i), nullptr) << i;
    EXPECT_EQ(*m.find(i), static_cast<std::uint32_t>(i));
  }
}

TEST(FlatMap, GrowsAtHighLoadFactorAndKeepsEveryKey) {
  FlatMap<std::uint64_t, std::uint64_t> m;
  const std::uint64_t n = 5000;
  for (std::uint64_t i = 0; i < n; ++i) m.insert_new(i * 977, i);
  EXPECT_EQ(m.size(), n);
  // Power-of-two table under 7/8 load.
  const std::size_t b = m.bucket_count();
  EXPECT_EQ(b & (b - 1), 0u);
  EXPECT_LE((n + 1) * 8, b * 7 + 8);
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_NE(m.find(i * 977), nullptr) << i;
    EXPECT_EQ(*m.find(i * 977), i);
  }
  EXPECT_GT(m.rehashes(), 0u);
}

TEST(FlatMap, ReserveThenFillNeverRehashes) {
  FlatMap<std::uint64_t, std::uint32_t> m;
  m.reserve(1000);
  const std::size_t buckets = m.bucket_count();
  for (std::uint64_t i = 0; i < 1000; ++i) m.insert_new(i, 0);
  EXPECT_EQ(m.rehashes(), 0u);
  EXPECT_EQ(m.bucket_count(), buckets);
}

// The determinism contract: two maps over the same key set answer every
// query identically no matter the insertion/erasure history that built them.
// (FlatMap has no iteration API, so queries are the whole surface.)
TEST(FlatMap, QueriesAgreeAcrossInsertionOrders) {
  FlatMap<std::uint64_t, std::uint64_t> a;
  FlatMap<std::uint64_t, std::uint64_t> b;
  const std::uint64_t n = 512;
  for (std::uint64_t i = 0; i < n; ++i) a.insert_new(i * 31, i);
  // b: reverse order, with extra churn that ends at the same key set.
  for (std::uint64_t i = n; i-- > 0;) b.insert_new(i * 31, i);
  for (std::uint64_t i = 0; i < n; i += 2) EXPECT_TRUE(b.erase(i * 31));
  for (std::uint64_t i = 0; i < n; i += 2) b.insert_new(i * 31, i);
  EXPECT_EQ(a.size(), b.size());
  for (std::uint64_t k = 0; k < n * 31 + 7; ++k) {
    const std::uint64_t* va = a.find(k);
    const std::uint64_t* vb = b.find(k);
    ASSERT_EQ(va == nullptr, vb == nullptr) << k;
    if (va != nullptr) {
      EXPECT_EQ(*va, *vb);
    }
  }
}

TEST(FlatMap, ClearResetsToEmpty) {
  FlatMap<std::uint64_t, std::uint32_t> m;
  for (std::uint64_t i = 0; i < 100; ++i) m.insert_new(i, 1);
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.bucket_count(), 0u);
  EXPECT_EQ(m.rehashes(), 0u);
  EXPECT_FALSE(m.contains(3));
  m.insert_new(3, 9);
  EXPECT_EQ(*m.find(3), 9u);
}

// ---- Load-factor boundary pins ----
//
// The growth trigger fires pre-insert when (size + tombstones + 1) * 8 >
// buckets * 7; on a tombstone-free organic fill that is exactly size ==
// 7*buckets/8. Pinning the full growth chain keeps the SIMD rewrite honest
// about "same rehash points as the byte-probed original".
TEST(FlatMap, OrganicGrowthRehashesAtExactSevenEighthsBoundaries) {
  FlatMap<std::uint64_t, std::uint32_t> m;
  std::vector<std::size_t> growth_sizes;  // size() at the moment of a rehash
  std::uint64_t seen = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    m.insert_new(i * 2654435761ull, 0);
    if (m.rehashes() != seen) {
      seen = m.rehashes();
      growth_sizes.push_back(m.size() - 1);  // trigger fired pre-insert
    }
  }
  EXPECT_EQ(growth_sizes,
            (std::vector<std::size_t>{14, 28, 56, 112, 224, 448, 896}));
}

// reserve(n) followed by n inserts must never rehash, including exactly at
// the 7/8 trigger values n = 7*2^k/8 and one either side of them.
TEST(FlatMap, ReserveBoundaryValuesNeverRehash) {
  for (std::size_t cap = 16; cap <= 4096; cap <<= 1) {
    const std::size_t t = cap / 8 * 7;
    for (const std::size_t n : {t - 1, t, t + 1}) {
      FlatMap<std::uint64_t, std::uint32_t> m;
      m.reserve(n);
      const std::size_t buckets = m.bucket_count();
      for (std::uint64_t i = 0; i < n; ++i)
        m.insert_new(i * 0x9e3779b97f4a7c15ull, 1);
      EXPECT_EQ(m.rehashes(), 0u) << "cap=" << cap << " n=" << n;
      EXPECT_EQ(m.bucket_count(), buckets) << "cap=" << cap << " n=" << n;
      EXPECT_EQ(m.size(), n);
    }
  }
}

// ---- SIMD vs scalar differential fuzz ----
//
// The portable Group16Scalar loop is the reference semantics; the platform
// SIMD policy (Group16 — SSE2 here, NEON on AArch64, scalar again when
// forced) must reproduce every query answer AND every rehash point
// bit-for-bit under a tombstone-heavy seed-driven churn. Both instantiations
// live in this one binary, so the agreement is checked on every platform and
// under every sanitizer job, not just in the ULC_FORCE_SCALAR_GROUPS build.
template <typename Group>
using MapOf = FlatMap<std::uint64_t, std::uint64_t, Group>;

struct FuzzRng {
  std::uint64_t state;
  std::uint64_t next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 11;
  }
};

template <typename A, typename B>
void expect_maps_agree(A& a, B& b, std::uint64_t key_space,
                       const char* when) {
  ASSERT_EQ(a.size(), b.size()) << when;
  ASSERT_EQ(a.bucket_count(), b.bucket_count()) << when;
  ASSERT_EQ(a.rehashes(), b.rehashes()) << when;
  for (std::uint64_t k = 0; k < key_space; ++k) {
    const std::uint64_t* va = a.find(k);
    const std::uint64_t* vb = b.find(k);
    ASSERT_EQ(va == nullptr, vb == nullptr) << when << " key " << k;
    if (va != nullptr) ASSERT_EQ(*va, *vb) << when << " key " << k;
  }
}

TEST(FlatMapDifferential, SimdMatchesScalarUnderTombstoneHeavyChurn) {
  constexpr std::uint64_t kKeySpace = 512;
  // Three insertion orders for the initial fill: ascending, descending, and
  // a multiplicative shuffle — distinct probe-layout histories that must
  // all end bit-compatible.
  for (int order = 0; order < 3; ++order) {
    MapOf<Group16> simd;
    MapOf<Group16Scalar> scalar;
    for (std::uint64_t i = 0; i < kKeySpace / 2; ++i) {
      std::uint64_t k;
      switch (order) {
        case 0: k = i; break;
        case 1: k = kKeySpace / 2 - 1 - i; break;
        default: k = (i * 181) % (kKeySpace / 2);
      }
      simd.insert_new(k, k * 3);
      scalar.insert_new(k, k * 3);
    }
    expect_maps_agree(simd, scalar, kKeySpace, "after fill");

    // Churn: erase-biased mix keeps tombstones plentiful; put() overwrites
    // exercise the found path.
    FuzzRng rng{0xabcdef12u + static_cast<std::uint64_t>(order)};
    for (int step = 0; step < 20000; ++step) {
      const std::uint64_t k = rng.next() % kKeySpace;
      switch (rng.next() % 4) {
        case 0: {
          const bool ea = simd.erase(k);
          const bool eb = scalar.erase(k);
          ASSERT_EQ(ea, eb) << "erase step " << step;
          break;
        }
        case 1: {
          simd.put(k, static_cast<std::uint64_t>(step));
          scalar.put(k, static_cast<std::uint64_t>(step));
          break;
        }
        case 2: {
          if (simd.find(k) == nullptr) {
            simd.insert_new(k, k);
            scalar.insert_new(k, k);
          }
          break;
        }
        default: {
          const std::uint64_t* va = simd.find(k);
          const std::uint64_t* vb = scalar.find(k);
          ASSERT_EQ(va == nullptr, vb == nullptr) << "find step " << step;
          if (va != nullptr) ASSERT_EQ(*va, *vb) << "find step " << step;
        }
      }
      ASSERT_EQ(simd.rehashes(), scalar.rehashes()) << "step " << step;
    }
    expect_maps_agree(simd, scalar, kKeySpace, "after churn");
  }
}

TEST(FlatMapDifferential, ReserveAndClearAgree) {
  MapOf<Group16> simd;
  MapOf<Group16Scalar> scalar;
  simd.reserve(300);
  scalar.reserve(300);
  for (std::uint64_t i = 0; i < 300; ++i) {
    simd.insert_new(i * 7919, i);
    scalar.insert_new(i * 7919, i);
  }
  expect_maps_agree(simd, scalar, 300 * 7919 + 1, "reserved fill");
  simd.clear();
  scalar.clear();
  EXPECT_EQ(simd.bucket_count(), scalar.bucket_count());
  EXPECT_EQ(simd.size(), scalar.size());
}

TEST(SplitMix64, MixesAdjacentKeysApart) {
  // Not a statistical test — just pins that the finalizer is wired in (the
  // identity hash would map adjacent block ids to adjacent buckets).
  EXPECT_NE(splitmix64_mix(1) + 1, splitmix64_mix(2));
  EXPECT_NE(splitmix64_mix(0), 0u);
}

}  // namespace
}  // namespace ulc
