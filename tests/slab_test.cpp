#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/slab.h"

namespace ulc {
namespace {

struct TestNode {
  std::uint64_t value = 0;
  SlabHandle prev = kNullHandle;
  SlabHandle next = kNullHandle;
};

TEST(Slab, AllocHandsOutAscendingHandlesWithinAPage) {
  Slab<TestNode> s(/*page_size=*/8);
  for (SlabHandle want = 0; want < 16; ++want) {
    EXPECT_EQ(s.alloc(), want);
  }
  EXPECT_EQ(s.page_count(), 2u);
  EXPECT_EQ(s.live(), 16u);
}

// The documented recycling contract: free is LIFO, and a freed handle is the
// next one handed out. There is NO generation tag — a stale handle held
// across a free would silently alias the new occupant, which is why every
// owner drops all copies of a handle in the same operation that frees it.
TEST(Slab, FreeIsLifoRecycled) {
  Slab<TestNode> s(8);
  const SlabHandle a = s.alloc();
  const SlabHandle b = s.alloc();
  s[a].value = 1;
  s[b].value = 2;
  s.free(a);
  s.free(b);
  EXPECT_EQ(s.alloc(), b);  // most recently freed first
  EXPECT_EQ(s.alloc(), a);
  // The slot is handed back as-is: callers must assign every field.
  EXPECT_EQ(s[a].value, 1u);
  EXPECT_EQ(s.stats().allocs, 4u);
  EXPECT_EQ(s.stats().frees, 2u);
}

TEST(Slab, PointersStayValidAcrossPageCarving) {
  Slab<TestNode> s(4);
  const SlabHandle h = s.alloc();
  TestNode* p = s.get(h);
  p->value = 42;
  // Carve many more pages; the first page must not move.
  for (int i = 0; i < 100; ++i) s.alloc();
  EXPECT_EQ(s.get(h), p);
  EXPECT_EQ(p->value, 42u);
}

TEST(Slab, ReserveCarvesUpFront) {
  Slab<TestNode> s(16);
  s.reserve(40);
  EXPECT_EQ(s.page_count(), 3u);
  EXPECT_EQ(s.slot_count(), 48u);
  const auto carved = s.stats().pages_carved;
  s.reserve(40);  // no-op
  EXPECT_EQ(s.stats().pages_carved, carved);
}

TEST(Slab, ReleaseFreePagesNeedsMostlyEmptyArena) {
  Slab<TestNode> s(8);
  std::vector<SlabHandle> hs;
  for (int i = 0; i < 32; ++i) hs.push_back(s.alloc());  // 4 pages
  // Free half: live*4 == slot_count, still above the hysteresis threshold.
  for (int i = 16; i < 32; ++i) s.free(hs[i]);
  EXPECT_EQ(s.release_free_pages(), 0u);
  // Free down to a quarter minus one: threshold passes, and the trailing
  // three pages (all slots >= 8 are free) are released.
  for (int i = 8; i < 16; ++i) s.free(hs[i]);
  s.free(hs[7]);
  EXPECT_EQ(s.release_free_pages(), 3u);
  EXPECT_EQ(s.page_count(), 1u);
  EXPECT_EQ(s.stats().pages_released, 3u);
  // The survivors are untouched and the arena still allocates correctly.
  for (int i = 0; i < 7; ++i) EXPECT_EQ(s[hs[i]].value, 0u);
  const SlabHandle h = s.alloc();
  EXPECT_LT(h, s.slot_count());
}

TEST(Slab, ReleaseKeepsInteriorFreePages) {
  Slab<TestNode> s(4);
  std::vector<SlabHandle> hs;
  for (int i = 0; i < 16; ++i) hs.push_back(s.alloc());  // 4 pages
  // Empty pages 0 and 1 (interior relative to the live tail) and page 3's
  // occupants except one on page 3... keep page 3 live: free 0..7 and 12..14.
  for (int i = 0; i < 8; ++i) s.free(hs[i]);
  for (int i = 12; i < 15; ++i) s.free(hs[i]);
  // live = 5, slots = 16: 5*4 >= 16, blocked by hysteresis.
  EXPECT_EQ(s.release_free_pages(), 0u);
  s.free(hs[15]);
  s.free(hs[11]);
  s.free(hs[10]);
  s.free(hs[9]);
  // live = 1 (hs[8] on page 2): pages 3 is free and trailing, pages 0/1 are
  // free but interior — only page 3 could go, and one page is below the
  // two-page minimum.
  EXPECT_EQ(s.release_free_pages(), 0u);
  EXPECT_EQ(s.page_count(), 4u);
  s.free(hs[8]);
  // Now everything is free: all four pages are trailing-free.
  EXPECT_EQ(s.release_free_pages(), 4u);
  EXPECT_EQ(s.page_count(), 0u);
  EXPECT_EQ(s.live(), 0u);
}

TEST(Slab, ReleasedHandlesLeaveTheFreeStack) {
  Slab<TestNode> s(4);
  std::vector<SlabHandle> hs;
  for (int i = 0; i < 12; ++i) hs.push_back(s.alloc());  // 3 pages
  for (int i = 1; i < 12; ++i) s.free(hs[i]);
  EXPECT_EQ(s.release_free_pages(), 2u);
  EXPECT_EQ(s.slot_count(), 4u);
  // Every handle alloc() now returns must be inside the remaining page.
  for (int i = 0; i < 3; ++i) EXPECT_LT(s.alloc(), 4u);
  EXPECT_EQ(s.live(), 4u);
}

TEST(Slab, PageSizeMustBePowerOfTwo) {
  EXPECT_DEATH(Slab<TestNode> s(3), "power of two");
}

// The 32-bit handle-space guard is ULC_REQUIRE (always on): exhausting the
// arena budget aborts rather than aliasing handles.
TEST(SlabDeathTest, ArenaExhaustionDies) {
  Slab<TestNode> s(/*page_size=*/4, /*max_slots=*/8);
  for (int i = 0; i < 8; ++i) s.alloc();
  EXPECT_DEATH(s.alloc(), "handle space");
}

TEST(SlabList, PushEraseMaintainsOrder) {
  Slab<TestNode> s(8);
  SlabList<TestNode> l(&s);
  const SlabHandle a = s.alloc();
  const SlabHandle b = s.alloc();
  const SlabHandle c = s.alloc();
  l.push_front(b);
  l.push_front(a);  // a b
  l.push_back(c);   // a b c
  EXPECT_EQ(l.size(), 3u);
  EXPECT_EQ(l.front(), a);
  EXPECT_EQ(l.back(), c);
  EXPECT_EQ(l.next(a), b);
  EXPECT_EQ(l.prev(c), b);
  l.erase(b);
  EXPECT_EQ(l.next(a), c);
  EXPECT_EQ(l.prev(c), a);
  l.move_front(c);  // c a
  EXPECT_EQ(l.front(), c);
  EXPECT_EQ(l.back(), a);
  l.move_back(c);  // a c
  EXPECT_EQ(l.front(), a);
  EXPECT_EQ(l.back(), c);
  l.clear();
  EXPECT_TRUE(l.empty());
}

// One node on two lists at once via the member-pointer parameters — the
// LIRS stack/queue shape.
struct DualNode {
  std::uint64_t value = 0;
  SlabHandle s_prev = kNullHandle;
  SlabHandle s_next = kNullHandle;
  SlabHandle q_prev = kNullHandle;
  SlabHandle q_next = kNullHandle;
};

TEST(SlabList, DualMembershipViaMemberPointers) {
  Slab<DualNode> slab(8);
  SlabList<DualNode, &DualNode::s_prev, &DualNode::s_next> stack(&slab);
  SlabList<DualNode, &DualNode::q_prev, &DualNode::q_next> queue(&slab);
  const SlabHandle a = slab.alloc();
  const SlabHandle b = slab.alloc();
  stack.push_front(a);
  stack.push_front(b);  // stack: b a
  queue.push_back(a);   // queue: a
  EXPECT_EQ(stack.front(), b);
  EXPECT_EQ(queue.front(), a);
  // Erasing from one list must not disturb the other.
  stack.erase(a);
  EXPECT_EQ(queue.front(), a);
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(stack.size(), 1u);
}

}  // namespace
}  // namespace ulc
