// Unit tests for the ulc_lint library: lexer regressions (raw strings and
// the quote-R near-miss), symbol scanning, one firing plus one clean
// near-miss fixture per rule, and the suppression/baseline/JSON machinery.
//
// Fixtures are raw strings with a `__` delimiter so their contents — which
// deliberately include every forbidden construct — are opaque tokens when
// this file is itself linted.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <string>
#include <vector>

#include "lint/engine.h"
#include "lint/lexer.h"
#include "lint/symbols.h"

namespace ulc::lint {
namespace {

// ---------- helpers ---------------------------------------------------------

Report lint_source(const std::string& path, const std::string& text,
                   Options opts = {}) {
  Engine engine(std::move(opts));
  engine.add_source(path, text);
  return engine.run();
}

bool fires(const Report& report, const std::string& rule) {
  return std::any_of(report.findings.begin(), report.findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

bool fires(const std::string& path, const std::string& text,
           const std::string& rule, Options opts = {}) {
  return fires(lint_source(path, text, std::move(opts)), rule);
}

std::string write_temp(const std::string& name, const std::string& content) {
  std::ofstream out(name, std::ios::binary);
  out << content;
  return name;
}

std::vector<std::string> token_texts(const LexedFile& f) {
  std::vector<std::string> out;
  for (const Token& t : f.tokens) out.push_back(t.text);
  return out;
}

// ---------- lexer -----------------------------------------------------------

TEST(Lexer, TokensCarryLineAndColumn) {
  const LexedFile f = lex("a.cpp", "int x;\n  x = 1;\n");
  ASSERT_EQ(f.tokens.size(), 7u);
  EXPECT_EQ(f.tokens[0].text, "int");
  EXPECT_EQ(f.tokens[0].line, 1u);
  EXPECT_EQ(f.tokens[0].col, 1u);
  EXPECT_EQ(f.tokens[3].text, "x");
  EXPECT_EQ(f.tokens[3].line, 2u);
  EXPECT_EQ(f.tokens[3].col, 3u);
}

TEST(Lexer, CommentsAreKeptOutOfTheTokenStream) {
  const LexedFile f = lex("a.cpp",
                          "int a;  // rand() here is commentary\n"
                          "/* and rand() here\n   spans lines */ int b;\n");
  const auto texts = token_texts(f);
  EXPECT_EQ(std::count(texts.begin(), texts.end(), "rand"), 0);
  ASSERT_EQ(f.comments.size(), 2u);
  EXPECT_EQ(f.comments[1].line, 2u);
  // Tokens after the block comment land on the right line.
  EXPECT_EQ(f.tokens.back().line, 3u);
}

// The regression pinned here: analyzers.cpp returns measure names "R" and
// "LLD-R" as ordinary string literals. A naive raw-string detector sees the
// `"` + `R` sequence (or the R adjacent to a quote in "LLD-R") and treats
// the rest of the file as raw-string content, silencing every rule after
// that point. The leading quote must win: these are kString tokens and the
// statements after them still lex.
TEST(Lexer, QuoteRStringsFromAnalyzersAreNotRawStrings) {
  const LexedFile f = lex("measures/analyzers.cpp",
                          R"__(
const char* measure_name_r() { return "R"; }
const char* measure_name_lld() { return "LLD-R"; }
int after() { return rand(); }
)__");
  const auto texts = token_texts(f);
  ASSERT_NE(std::find(texts.begin(), texts.end(), "\"R\""), texts.end());
  ASSERT_NE(std::find(texts.begin(), texts.end(), "\"LLD-R\""), texts.end());
  // Lexing continued past them: the rand() call in after() is visible.
  EXPECT_NE(std::find(texts.begin(), texts.end(), "rand"), texts.end());
  for (const Token& t : f.tokens) EXPECT_NE(t.kind, TokKind::kRawString);
}

TEST(Lexer, EnsureMessageStringFromLirsStaysIntact) {
  const LexedFile f =
      lex("replacement/lirs.cpp",
          R"__(ULC_ENSURE(e.status == Status::kHir, "ghost must be HIR");)__");
  const auto texts = token_texts(f);
  EXPECT_NE(std::find(texts.begin(), texts.end(), "\"ghost must be HIR\""),
            texts.end());
}

TEST(Lexer, RawStringSwallowsForbiddenConstructs) {
  // The quote-paren inside the body must not close the literal: only the
  // delimiter sequence does.
  const LexedFile f = lex("a.cpp",
                          "const char* s = R\"x(rand() and a )\" inside)x\";\n"
                          "int y;\n");
  std::size_t raw = 0;
  for (const Token& t : f.tokens)
    if (t.kind == TokKind::kRawString) ++raw;
  EXPECT_EQ(raw, 1u);
  const auto texts = token_texts(f);
  EXPECT_EQ(std::count(texts.begin(), texts.end(), "rand"), 0);
  EXPECT_NE(std::find(texts.begin(), texts.end(), "y"), texts.end());
}

TEST(Lexer, RawStringPrefixesAndGluedIdentifiers) {
  const LexedFile f = lex("a.cpp",
                          "auto a = u8R\"(p)\";\n"
                          "auto b = LR\"(q)\";\n"
                          "auto c = FOO_R\"not raw\";\n");
  std::size_t raw = 0, plain = 0;
  for (const Token& t : f.tokens) {
    if (t.kind == TokKind::kRawString) ++raw;
    if (t.kind == TokKind::kString) ++plain;
  }
  EXPECT_EQ(raw, 2u);   // u8R"..." and LR"..."
  EXPECT_EQ(plain, 1u); // FOO_R is an identifier; "not raw" a plain string
}

TEST(Lexer, MultilineRawStringKeepsLineNumbers) {
  const LexedFile f = lex("a.cpp", "auto s = R\"(one\ntwo\nthree)\";\nint z;\n");
  EXPECT_EQ(f.tokens.back().line, 4u);  // the `;` after z
}

TEST(Lexer, PreprocessorDirectivesAreSingleTokens) {
  const LexedFile f = lex("a.h",
                          "#pragma once\n"
                          "#include \"trace/types.h\"  // tail comment\n"
                          "#define TWO \\\n  2\n"
                          "int x;\n");
  std::vector<std::string> pp;
  for (const Token& t : f.tokens)
    if (t.kind == TokKind::kPreprocessor) pp.push_back(t.text);
  ASSERT_EQ(pp.size(), 3u);
  EXPECT_EQ(pp[0], "#pragma once");
  EXPECT_EQ(pp[1], "#include \"trace/types.h\"");
  // Continuation joined into one token (interior spacing is not pinned).
  EXPECT_EQ(pp[2].rfind("#define TWO", 0), 0u);
  EXPECT_EQ(pp[2].back(), '2');
}

TEST(Lexer, UnterminatedStringStopsAtEndOfLine) {
  const LexedFile f = lex("a.cpp", "auto s = \"oops\nint x;\n");
  const auto texts = token_texts(f);
  EXPECT_NE(std::find(texts.begin(), texts.end(), "x"), texts.end());
}

TEST(Lexer, NumberClassification) {
  const LexedFile f = lex("a.cpp", "a = 1'000'000 + 1.5 + 1e9 + 0x1F + 10;");
  std::vector<Token> nums;
  for (const Token& t : f.tokens)
    if (t.kind == TokKind::kNumber) nums.push_back(t);
  ASSERT_EQ(nums.size(), 5u);
  EXPECT_EQ(nums[0].text, "1'000'000");
  EXPECT_FALSE(is_float_literal(nums[0]));
  EXPECT_TRUE(is_float_literal(nums[1]));
  EXPECT_TRUE(is_float_literal(nums[2]));
  EXPECT_FALSE(is_float_literal(nums[3]));  // hex is never "float"
  EXPECT_FALSE(is_float_literal(nums[4]));
}

// ---------- symbols ---------------------------------------------------------

TEST(Symbols, EnumWithInitializersAndUnderlyingType) {
  const LexedFile f = lex("a.h",
                          R"__(enum class Kind : std::uint8_t {
  kA = 1 << 2,
  kB = f(3, 4),
  kC,
};)__");
  const TuSymbols sym = scan(f);
  ASSERT_EQ(sym.enums.size(), 1u);
  EXPECT_EQ(sym.enums[0].name, "Kind");
  EXPECT_EQ(sym.enums[0].enumerators,
            (std::vector<std::string>{"kA", "kB", "kC"}));
}

TEST(Symbols, VariableDeclarationsRecordTypeHeads) {
  const LexedFile f = lex("a.cpp",
                          R"__(FlatMap<BlockId, SlabHandle> entries_;
Slab<Node> slab_;
std::unordered_map<int, int> scratch;
entries_.reserve(128);)__");
  const TuSymbols sym = scan(f);
  EXPECT_TRUE(sym.declared_as("entries_", "FlatMap"));
  EXPECT_TRUE(sym.declared_as("slab_", "Slab"));
  EXPECT_TRUE(sym.declared_as("scratch", "unordered_map"));
  EXPECT_EQ(sym.reserved_receivers.count("entries_"), 1u);
  EXPECT_EQ(sym.reserved_receivers.count("slab_"), 0u);
}

TEST(Symbols, FunctionBodiesAndConstness) {
  const LexedFile f = lex("a.cpp",
                          R"__(int Foo::size() const { return n_; }
void Foo::grow(int by) { n_ += by; }
int free_fn() { return 1; })__");
  const TuSymbols sym = scan(f);
  ASSERT_EQ(sym.functions.size(), 3u);
  EXPECT_EQ(sym.functions[0].name, "size");
  EXPECT_EQ(sym.functions[0].qualifier, "Foo");
  EXPECT_TRUE(sym.functions[0].is_const);
  EXPECT_FALSE(sym.functions[1].is_const);
  EXPECT_EQ(sym.functions[2].qualifier, "");
}

TEST(Symbols, ClassBasesAreRecorded) {
  const LexedFile f = lex("a.cpp",
                          R"__(class MyScheme final : public MultiLevelScheme {
 public:
  int x;
};)__");
  const TuSymbols sym = scan(f);
  ASSERT_EQ(sym.classes.size(), 1u);
  EXPECT_EQ(sym.classes[0].name, "MyScheme");
  ASSERT_EQ(sym.classes[0].bases.size(), 1u);
  EXPECT_EQ(sym.classes[0].bases[0], "MultiLevelScheme");
}

// ---------- ported rules: firing + clean near-miss --------------------------

TEST(Rules, DeterminismFires) {
  EXPECT_TRUE(fires("src/ulc/a.cpp", R"__(int f() { return rand(); })__",
                    "determinism"));
}

TEST(Rules, DeterminismNearMissClean) {
  // Identifiers containing "rand", and rand() in comments/strings, are fine.
  EXPECT_FALSE(fires("src/ulc/a.cpp",
                     R"__(int strand();
int f() { return strand(); }  // rand() would be bad
const char* s = "rand()";)__",
                     "determinism"));
}

TEST(Rules, WallClockFires) {
  EXPECT_TRUE(fires("src/obs/a.cpp",
                    R"__(auto t = std::chrono::steady_clock::now();)__",
                    "wall-clock"));
}

TEST(Rules, WallClockNearMissClean) {
  EXPECT_FALSE(fires("src/obs/a.cpp",
                     R"__(// steady_clock is banned outside util/wallclock.h
int steady_clock_like = 3;)__",
                     "wall-clock"));
}

TEST(Rules, UnorderedIterationFires) {
  EXPECT_TRUE(fires("src/exp/a.cpp",
                    R"__(std::unordered_map<int, int> m;
void f() { for (auto& kv : m) { use(kv); } })__",
                    "unordered-iteration"));
}

TEST(Rules, UnorderedIterationSortedAdapterClean) {
  EXPECT_FALSE(fires("src/exp/a.cpp",
                     R"__(std::unordered_map<int, int> m;
void f() { for (auto& kv : sorted(m)) { use(kv); } })__",
                     "unordered-iteration"));
}

TEST(Rules, EnsureMsgFires) {
  EXPECT_TRUE(fires("src/ulc/a.cpp", R"__(void f() { ULC_ENSURE(a == b, ""); })__",
                    "ensure-msg"));
}

TEST(Rules, EnsureMsgWithMessageClean) {
  EXPECT_FALSE(fires("src/ulc/a.cpp",
                     R"__(void f() { ULC_ENSURE(a == b, "a and b must agree"); })__",
                     "ensure-msg"));
}

TEST(Rules, PragmaOnceFiresOnHeaderWithoutIt) {
  EXPECT_TRUE(fires("src/util/a.h", "int x;\n", "pragma-once"));
}

TEST(Rules, PragmaOnceCleanWhenPresentAndInSources) {
  EXPECT_FALSE(fires("src/util/a.h", "#pragma once\nint x;\n", "pragma-once"));
  EXPECT_FALSE(fires("src/util/a.cpp", "int x;\n", "pragma-once"));
}

TEST(Rules, UsingNamespaceFiresInHeader) {
  EXPECT_TRUE(fires("src/util/a.h",
                    "#pragma once\nusing namespace std;\n", "using-namespace"));
}

TEST(Rules, UsingDeclarationClean) {
  EXPECT_FALSE(fires("src/util/a.h",
                     "#pragma once\nusing std::vector;\n", "using-namespace"));
}

TEST(Rules, FloatEqFires) {
  EXPECT_TRUE(
      fires("src/measures/a.cpp", R"__(bool b = x == 0.5;)__", "float-eq"));
}

TEST(Rules, FloatComparisonNearMissClean) {
  EXPECT_FALSE(fires("src/measures/a.cpp",
                     R"__(bool b = x <= 0.5; bool c = x == half();)__",
                     "float-eq"));
}

TEST(Rules, UnboundedRetryFires) {
  EXPECT_TRUE(fires("src/proto/a.cpp",
                    R"__(void pump() { while (true) { send(msg); } })__",
                    "unbounded-retry"));
}

TEST(Rules, BoundedRetryClean) {
  EXPECT_FALSE(fires("src/proto/a.cpp",
                     R"__(void pump() {
  while (true) {
    if (attempts >= policy.max_attempts) break;
    send(msg);
    ++attempts;
  }
})__",
                     "unbounded-retry"));
}

TEST(Rules, HotContainerFiresInHotDirectories) {
  EXPECT_TRUE(fires("src/replacement/a.cpp",
                    R"__(std::unordered_map<int, int> m;)__", "hot-container"));
  EXPECT_TRUE(fires("src/ulc/a.cpp", R"__(std::list<int> l;)__",
                    "hot-container"));
}

TEST(Rules, HotContainerCleanOutsideAndForFlatStructures) {
  EXPECT_FALSE(fires("src/exp/a.cpp", R"__(std::unordered_map<int, int> m;)__",
                     "hot-container"));
  EXPECT_FALSE(fires("src/replacement/a.cpp", R"__(std::vector<int> v;)__",
                     "hot-container"));
}

TEST(Rules, CountCapacityFires) {
  EXPECT_TRUE(fires("src/replacement/a.cpp",
                    R"__(bool full() { return q.size() >= cap_; })__",
                    "count-capacity"));
  EXPECT_TRUE(fires("src/hierarchy/a.cpp",
                    R"__(bool over() { return budget < q.size(); })__",
                    "count-capacity"));
}

TEST(Rules, CountCapacityNearMissClean) {
  // Byte-occupancy comparisons and genuinely count-bounded limits are fine.
  EXPECT_FALSE(fires("src/replacement/a.cpp",
                     R"__(bool full() { return used_bytes >= cap_; }
bool trim() { return ghosts.size() > max_ghosts_; })__",
                     "count-capacity"));
}

// ---------- dangling-slab-handle --------------------------------------------

TEST(Rules, DanglingHandleFiresOnFindThenErase) {
  EXPECT_TRUE(fires("src/replacement/a.cpp",
                    R"__(FlatMap<int, int> m;
void f() {
  int* p = m.find(1);
  m.erase(2);
  if (p != nullptr) use(*p);
})__",
                    "dangling-slab-handle"));
}

TEST(Rules, DanglingHandleFiresOnUnreservedInsert) {
  EXPECT_TRUE(fires("src/replacement/a.cpp",
                    R"__(FlatMap<int, int> m;
void f() {
  int* p = m.find(1);
  m.insert(2, 3);
  use(*p);
})__",
                    "dangling-slab-handle"));
}

TEST(Rules, DanglingHandleReservedInsertClean) {
  // reserve() pins the table: inserts cannot rehash, handles stay valid.
  EXPECT_FALSE(fires("src/replacement/a.cpp",
                     R"__(FlatMap<int, int> m;
void setup() { m.reserve(128); }
void f() {
  int* p = m.find(1);
  m.insert(2, 3);
  use(*p);
})__",
                     "dangling-slab-handle"));
}

TEST(Rules, DanglingHandleFiresOnSlabFree) {
  EXPECT_TRUE(fires("src/replacement/a.cpp",
                    R"__(Slab<Node> slab_;
void f(SlabHandle h, SlabHandle g) {
  Node* n = slab_.get(h);
  slab_.free(g);
  n->x = 1;
})__",
                    "dangling-slab-handle"));
}

TEST(Rules, DanglingHandleFiresTransitively) {
  // The LIRS ghost-trim shape: find, then a helper whose callee erases.
  EXPECT_TRUE(fires("src/replacement/a.cpp",
                    R"__(FlatMap<int, int> m;
void drop_entry(int k) { m.erase(k); }
void evict_one() { drop_entry(7); }
void f() {
  int* p = m.find(1);
  evict_one();
  use(*p);
})__",
                    "dangling-slab-handle"));
}

TEST(Rules, DanglingHandleReacquireAfterMutationClean) {
  // The fixed LIRS shape: mutate first, acquire the pointer afterwards.
  EXPECT_FALSE(fires("src/replacement/a.cpp",
                     R"__(FlatMap<int, int> m;
void evict_one() { m.erase(7); }
void f() {
  evict_one();
  int* p = m.find(1);
  if (p != nullptr) use(*p);
})__",
                     "dangling-slab-handle"));
}

TEST(Rules, DanglingHandleEarlyReturnBranchClean) {
  // Invalidation on a branch that returns cannot reach the later use.
  EXPECT_FALSE(fires("src/replacement/a.cpp",
                     R"__(FlatMap<int, int> m;
void f(bool ghost) {
  int* p = m.find(1);
  if (ghost) {
    m.erase(1);
    return;
  }
  use(*p);
})__",
                     "dangling-slab-handle"));
}

TEST(Rules, DanglingHandleUseInReturnExpressionStillFires) {
  EXPECT_TRUE(fires("src/replacement/a.cpp",
                    R"__(FlatMap<int, int> m;
int f() {
  int* p = m.find(1);
  m.erase(2);
  return *p;
})__",
                    "dangling-slab-handle"));
}

TEST(Rules, DanglingHandleValueCopyClean) {
  // Copying the value out before mutating is the sanctioned pattern.
  EXPECT_FALSE(fires("src/replacement/a.cpp",
                     R"__(FlatMap<int, int> m;
void f() {
  int v = *m.find(1);
  m.erase(2);
  use(v);
})__",
                     "dangling-slab-handle"));
}

// ---------- narration-completeness ------------------------------------------

TEST(Rules, NarrationFiresOnSilentMutation) {
  EXPECT_TRUE(fires("src/hierarchy/a.cpp",
                    R"__(class S : public MultiLevelScheme {
 public:
  void access(int b) { audit_emit(kGet, b); map_.insert(b, 1); }
  void silent_drop(int b) { map_.erase(b); }
 private:
  FlatMap<int, int> map_;
};)__",
                    "narration-completeness"));
}

TEST(Rules, NarrationThroughHelperClean) {
  // Reaching audit_emit through a sibling member call counts as narrating.
  EXPECT_FALSE(fires("src/hierarchy/a.cpp",
                     R"__(class S : public MultiLevelScheme {
 public:
  void access(int b) { audit_emit(kGet, b); map_.insert(b, 1); }
  void drop(int b) { map_.erase(b); narrate_drop(b); }
 private:
  void narrate_drop(int b) { audit_emit(kEvict, b); }
  FlatMap<int, int> map_;
};)__",
                     "narration-completeness"));
}

TEST(Rules, NarrationOptedOutSchemeClean) {
  // A scheme with no audit plumbing at all (the OPT reference layout) is
  // covered by the auditor's statistics checks instead.
  EXPECT_FALSE(fires("src/hierarchy/a.cpp",
                     R"__(class Ref : public MultiLevelScheme {
 public:
  void rebuild(int b) { map_.erase(b); map_.insert(b, 1); }
 private:
  FlatMap<int, int> map_;
};)__",
                     "narration-completeness"));
}

TEST(Rules, NarrationConstAndNonSchemeClean) {
  // Const members cannot mutate; classes outside the scheme hierarchy and
  // files outside src/hierarchy + src/ulc are out of scope.
  EXPECT_FALSE(fires("src/hierarchy/a.cpp",
                     R"__(class S : public MultiLevelScheme {
 public:
  void access(int b) { audit_emit(kGet, b); map_.insert(b, 1); }
  int peek(int b) const { return lookup(map_, b); }
 private:
  FlatMap<int, int> map_;
};)__",
                     "narration-completeness"));
  EXPECT_FALSE(fires("src/util/a.cpp",
                     R"__(class Plain {
 public:
  void drop(int b) { map_.erase(b); }
  FlatMap<int, int> map_;
};)__",
                     "narration-completeness"));
}

// ---------- dirty-drop ------------------------------------------------------

TEST(Rules, DirtyDropFiresOnSilentErase) {
  EXPECT_TRUE(fires("src/hierarchy/a.cpp",
                    R"__(class S : public MultiLevelScheme {
 public:
  void evict(int b) { dirty_.erase(b); map_.erase(b); }
 private:
  FlatSet<int> dirty_;
  FlatMap<int, int> map_;
};)__",
                    "dirty-drop"));
}

TEST(Rules, DirtyDropCounterMentionStillFires) {
  // Bumping the write-back counter is bookkeeping, not a write-back: only a
  // call into the machinery (or being the machinery) clears the member.
  EXPECT_TRUE(fires("src/hierarchy/a.cpp",
                    R"__(class S : public MultiLevelScheme {
 public:
  void evict(int b) { dirty_.erase(b); ++stats_.writebacks; }
 private:
  FlatSet<int> dirty_;
};)__",
                    "dirty-drop"));
}

TEST(Rules, DirtyDropThroughPipelineClean) {
  // The choke-point pattern: callers go through write_back_if_dirty (a
  // machinery name, and the call itself counts for them), and the helper
  // reaches journal_write_back.
  EXPECT_FALSE(fires("src/hierarchy/a.cpp",
                     R"__(class S : public MultiLevelScheme {
 public:
  void evict(int b) { write_back_if_dirty(b, 0); map_.erase(b); }
 private:
  bool write_back_if_dirty(int b, int from) {
    dirty_.erase(b);
    journal_write_back(b, from, 1);
    return true;
  }
  FlatSet<int> dirty_;
  FlatMap<int, int> map_;
};)__",
                     "dirty-drop"));
}

TEST(Rules, DirtyDropAllowMarkedClean) {
  // A provably clean drop (the data just went to disk by other means) can
  // be allow-marked in place.
  EXPECT_FALSE(fires("src/hierarchy/a.cpp",
                     R"__(class S : public MultiLevelScheme {
 public:
  void forget(int b) {
    dirty_.erase(b);  // ulc-lint: allow(dirty-drop)
  }
 private:
  FlatSet<int> dirty_;
};)__",
                     "dirty-drop"));
}

TEST(Rules, DirtyDropOutOfScopeClean) {
  // Outside src/hierarchy + src/ulc the member name carries no contract.
  EXPECT_FALSE(fires("src/runtime/a.cpp",
                     R"__(class C {
 public:
  void drop(int b) { dirty_.erase(b); }
 private:
  FlatSet<int> dirty_;
};)__",
                     "dirty-drop"));
}

// ---------- lock-order ------------------------------------------------------

TEST(Rules, LockOrderFiresOnNestedGuards) {
  EXPECT_TRUE(fires("src/runtime/a.cpp",
                    R"__(void Cache::move(int b) {
  std::lock_guard<std::mutex> a(from_.lock);
  std::lock_guard<std::mutex> c(to_.lock);
  transfer(b);
})__",
                    "lock-order"));
}

TEST(Rules, LockOrderOneGuardPerFunctionClean) {
  // The structural discipline: one guard per function, even across several
  // functions in one file, is exactly what the rule wants to see.
  EXPECT_FALSE(fires("src/runtime/a.cpp",
                     R"__(void Cache::read(int b) {
  std::lock_guard<std::mutex> guard(lock_);
  serve(b);
}
void Cache::write(int b) {
  std::unique_lock<std::mutex> guard(lock_);
  store(b);
})__",
                     "lock-order"));
}

TEST(Rules, LockOrderTypeMentionIsNotAConstruction) {
  // Naming the guard type (an alias, a template parameter) without
  // constructing one must not count toward the nesting.
  EXPECT_FALSE(fires("src/runtime/a.cpp",
                     R"__(using Guard = std::lock_guard;
void Cache::read(int b) {
  std::lock_guard<std::mutex> guard(lock_);
  serve(b);
})__",
                     "lock-order"));
}

TEST(Rules, LockOrderAllowMarkedWithOrderingComment) {
  // A documented global order is the sanctioned escape hatch.
  EXPECT_FALSE(fires("src/runtime/a.cpp",
                     R"__(void Cache::move(int b) {
  std::lock_guard<std::mutex> a(from_.lock);
  // Lock order: shards are always taken in ascending index order.
  std::lock_guard<std::mutex> c(to_.lock);  // ulc-lint: allow(lock-order)
  transfer(b);
})__",
                     "lock-order"));
}

TEST(Rules, LockOrderOutOfTreeClean) {
  // Only src/runtime carries the shard-lock discipline.
  EXPECT_FALSE(fires("src/proto/a.cpp",
                     R"__(void Sim::step() {
  std::lock_guard<std::mutex> a(x_);
  std::lock_guard<std::mutex> b(y_);
})__",
                     "lock-order"));
}

// ---------- raw-intrinsic ---------------------------------------------------

TEST(Rules, RawIntrinsicFiresOnSseOutsideSimdHeader) {
  EXPECT_TRUE(fires("src/util/flat_hash.h",
                    R"__(int mask(const unsigned char* p) {
  const __m128i g = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  return _mm_movemask_epi8(g);
})__",
                    "raw-intrinsic"));
}

TEST(Rules, RawIntrinsicFiresOnNeonAndPrefetchBuiltin) {
  EXPECT_TRUE(fires("src/ulc/uni_lru_stack.cpp",
                    R"__(void warm(const unsigned char* p) {
  uint8x16_t g = vld1q_u8(p);
  (void)g;
  __builtin_prefetch(p);
})__",
                    "raw-intrinsic"));
}

TEST(Rules, RawIntrinsicSimdHeaderIsTheSanctionedHome) {
  // util/simd.h owns the per-ISA policies; intrinsics there are the point.
  EXPECT_FALSE(fires("src/util/simd.h",
                     R"__(int mask(const unsigned char* p) {
  const __m128i g = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  return _mm_movemask_epi8(g);
})__",
                     "raw-intrinsic"));
}

TEST(Rules, RawIntrinsicNearMissIdentifiersClean) {
  // Wrapper names and NEON-shaped-but-ordinary identifiers stay clean: the
  // sanctioned prefetch_read wrapper, a lane-suffix lookalike without the
  // 'v' prefix, and a _t type without the MxN lane shape.
  EXPECT_FALSE(fires("src/ulc/ulc_client.cpp",
                     R"__(void touch(const void* p) {
  prefetch_read(p);
  int checksum_u32 = 0;
  uint_fast8_t small = 0;
  (void)checksum_u32;
  (void)small;
})__",
                     "raw-intrinsic"));
}

TEST(Rules, RawIntrinsicAllowMarkedClean) {
  EXPECT_FALSE(fires("src/util/slab.h",
                     R"__(void warm(const void* p) {
  __builtin_prefetch(p);  // ulc-lint: allow(raw-intrinsic)
})__",
                     "raw-intrinsic"));
}

// ---------- enum-switch -----------------------------------------------------

TEST(Rules, EnumSwitchFiresOnMissingEnumerator) {
  const Report r = lint_source("src/measures/a.cpp",
                               R"__(enum class Kind { kA, kB, kC };
const char* name(Kind k) {
  switch (k) {
    case Kind::kA: return "a";
    case Kind::kB: return "b";
  }
  return "?";
})__");
  ASSERT_TRUE(fires(r, "enum-switch"));
  // The message names what is missing.
  for (const Finding& f : r.findings)
    if (f.rule == "enum-switch")
      EXPECT_NE(f.message.find("kC"), std::string::npos);
}

TEST(Rules, EnumSwitchExhaustiveOrDefaultedClean) {
  EXPECT_FALSE(fires("src/measures/a.cpp",
                     R"__(enum class Kind { kA, kB };
int full(Kind k) {
  switch (k) {
    case Kind::kA: return 1;
    case Kind::kB: return 2;
  }
  return 0;
}
int defaulted(Kind k) {
  switch (k) {
    case Kind::kA: return 1;
    default: return 0;
  }
})__",
                     "enum-switch"));
}

TEST(Rules, EnumSwitchUnknownEnumClean) {
  // Switches over enums the linted set does not define make no claim.
  EXPECT_FALSE(fires("src/measures/a.cpp",
                     R"__(int f(std::errc e) {
  switch (e) {
    case std::errc::invalid_argument: return 1;
  }
  return 0;
})__",
                     "enum-switch"));
}

// ---------- include-layering ------------------------------------------------

class LayeringTest : public ::testing::Test {
 protected:
  Options opts_;
  void SetUp() override {
    opts_.layers_file = write_temp("lint_test_layers.txt",
                                   "util:\n"
                                   "trace: util\n"
                                   "tests: *\n");
  }
};

TEST_F(LayeringTest, FiresOnUndeclaredEdge) {
  EXPECT_TRUE(fires("src/util/b.h",
                    "#pragma once\n#include \"trace/types.h\"\n",
                    "include-layering", opts_));
}

TEST_F(LayeringTest, DeclaredEdgeAndSelfIncludeClean) {
  EXPECT_FALSE(fires("src/trace/t.h",
                     "#pragma once\n#include \"util/prng.h\"\n"
                     "#include \"trace/types.h\"\n",
                     "include-layering", opts_));
}

TEST_F(LayeringTest, WildcardModuleUnconstrained) {
  EXPECT_FALSE(fires("tests/a.cpp", "#include \"proto/reliable.h\"\n",
                     "include-layering", opts_));
}

TEST_F(LayeringTest, UnknownModuleIsItselfAFinding) {
  EXPECT_TRUE(fires("src/newmod/a.cpp", "int x;\n", "include-layering", opts_));
}

TEST(Rules, LayeringDisabledWithoutLayersFile) {
  EXPECT_FALSE(fires("src/util/b.h",
                     "#pragma once\n#include \"trace/types.h\"\n",
                     "include-layering"));
}

TEST(Layers, ParseRejectsMalformedLines) {
  std::vector<std::string> errors;
  const auto layers = parse_layers("util\ntrace: util\n", errors);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(layers.count("trace"), 1u);
}

// ---------- engine machinery ------------------------------------------------

TEST(Engine, SameLineAllowMarkerSuppresses) {
  const Report r = lint_source(
      "src/ulc/a.cpp",
      "int f() { return rand(); }  // ulc-lint: allow(determinism)\n");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed_count, 1u);
  EXPECT_TRUE(r.ok());
}

TEST(Engine, LineAboveAllowMarkerSuppresses) {
  const Report r = lint_source("src/ulc/a.cpp",
                               "// ulc-lint: allow(determinism)\n"
                               "int f() { return rand(); }\n");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed_count, 1u);
}

TEST(Engine, AllowMarkerListsSeveralRules) {
  const Report r = lint_source(
      "src/ulc/a.cpp",
      "int f() { return rand(); }  // ulc-lint: allow(wall-clock, determinism)\n");
  EXPECT_EQ(r.suppressed_count, 1u);
}

TEST(Engine, AllowMarkerForOtherRuleDoesNotSuppress) {
  const Report r = lint_source(
      "src/ulc/a.cpp",
      "int f() { return rand(); }  // ulc-lint: allow(float-eq)\n");
  EXPECT_EQ(r.error_count, 1u);
}

TEST(Engine, BaselineSuppressesAndReportsStaleEntries) {
  Options opts;
  opts.baseline_file = write_temp("lint_test_baseline.txt",
                                  "# known findings\n"
                                  "src/ulc/a.cpp:2:determinism\n"
                                  "src/ulc/a.cpp:99:float-eq\n");
  const Report r = lint_source("src/ulc/a.cpp",
                               "int before;\n"
                               "int f() { return rand(); }\n", opts);
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.baselined_count, 1u);
  ASSERT_EQ(r.unused_baseline.size(), 1u);
  EXPECT_EQ(r.unused_baseline[0], "src/ulc/a.cpp:99:float-eq");
}

TEST(Engine, WarnDemotionKeepsExitClean) {
  Options opts;
  opts.warn_rules.insert("determinism");
  const Report r =
      lint_source("src/ulc/a.cpp", "int f() { return rand(); }\n", opts);
  EXPECT_EQ(r.error_count, 0u);
  EXPECT_EQ(r.warning_count, 1u);
  EXPECT_TRUE(r.ok());
}

TEST(Engine, RootMakesPathsRelative) {
  Options opts;
  opts.root = "/fake/repo";
  const Report r = lint_source("/fake/repo/src/ulc/a.cpp",
                               "int f() { return rand(); }\n", opts);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].path, "src/ulc/a.cpp");
}

TEST(Engine, JsonOutputCarriesFindings) {
  const Report r =
      lint_source("src/ulc/a.cpp", "int f() { return rand(); }\n");
  const std::string doc = Engine::render_json(r);
  EXPECT_NE(doc.find("\"rule\": \"determinism\""), std::string::npos);
  EXPECT_NE(doc.find("\"path\": \"src/ulc/a.cpp\""), std::string::npos);
  EXPECT_NE(doc.find("\"errors\": 1"), std::string::npos);
}

TEST(Engine, JsonEscapesQuotesInMessages) {
  Finding f;
  f.path = "a\"b.cpp";
  f.line = 1;
  f.col = 1;
  f.rule = "determinism";
  f.message = "says \"hi\"\nnewline";
  Report r;
  r.findings.push_back(f);
  r.error_count = 1;
  const std::string doc = Engine::render_json(r);
  EXPECT_NE(doc.find("a\\\"b.cpp"), std::string::npos);
  EXPECT_NE(doc.find("\\\"hi\\\"\\nnewline"), std::string::npos);
}

TEST(Engine, SiblingHeaderTypesFeedUnorderedIteration) {
  // The container is declared in the header; the .cpp iterates it.
  Engine engine((Options()));
  engine.add_source("src/exp/pair.h",
                    "#pragma once\nstd::unordered_map<int, int> m;\n");
  engine.add_source("src/exp/pair.cpp",
                    "void f() { for (auto& kv : m) { use(kv); } }\n");
  const Report r = engine.run();
  EXPECT_TRUE(fires(r, "unordered-iteration"));
}

}  // namespace
}  // namespace ulc::lint
