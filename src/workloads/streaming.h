// Streaming-segment workload family: the natural sized-block stress case.
//
// A video catalogue of `n_titles` titles, each laid out contiguously as one
// small manifest block followed by a run of large media-segment blocks
// (Friedlander & Aggarwal's LRU generalization for video streaming treats
// exactly this shape; Beckmann et al. make granularity change a first-class
// caching dimension). A session picks a title by Zipf popularity, reads its
// manifest, then streams the segments sequentially — abandoning after each
// segment with a fixed probability, so most sessions watch a prefix and only
// popular titles see their tails. Title popularity churns: every
// `churn_period` sessions the rank-to-title mapping rotates, moving the hot
// set through the catalogue the way a front page rotates its promotions.
//
// The reference stream comes from make_streaming_source(); the matching
// per-block footprints (manifest vs segment sizes, id-stable) come from
// streaming_sizes() and are stamped onto a materialized trace with
// stamp_sizes().
#pragma once

#include <cstdint>

#include "trace/size_table.h"
#include "workloads/synthetic.h"

namespace ulc {

struct StreamingConfig {
  BlockId base = 0;
  std::uint64_t n_titles = 200;
  // Per-title segment-run length is drawn once from [min_segments,
  // max_segments] (deterministically from layout_seed).
  std::uint64_t min_segments = 8;
  std::uint64_t max_segments = 60;
  double zipf_theta = 0.9;   // title popularity skew
  double abandon_prob = 0.05;  // per-segment chance the viewer stops
  // Popularity churn: every `churn_period` sessions the ranking rotates by
  // `churn_step` titles. 0 disables churn.
  std::uint64_t churn_period = 0;
  std::uint64_t churn_step = 1;
  std::uint64_t layout_seed = 7;
  SizeUnits manifest_size = 1;  // each title's first block
  SizeUnits segment_size = 4;   // every media segment block
};

PatternPtr make_streaming_source(const StreamingConfig& config);

// Total number of blocks the catalogue layout occupies.
std::uint64_t streaming_footprint(const StreamingConfig& config);

// Per-block footprints for the catalogue layout: manifest blocks at
// manifest_size, segment blocks at segment_size.
SizeTable streaming_sizes(const StreamingConfig& config);

}  // namespace ulc
