// Named workload presets reproducing the access-pattern structure of every
// trace in the paper's evaluation (Sections 2 and 4).
//
// The original traces (BYU trace repository, HP OpenMail, Maryland SP2 runs)
// are not redistributable; DESIGN.md §5 documents, per trace, which generator
// stands in for it and why the substitution preserves the behaviour the
// paper's experiments depend on. Footprints (unique-block counts) follow the
// paper exactly; reference counts are the paper's scaled by `scale` so quick
// runs keep the same block/cache-size ratios.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace ulc {

// ---- Section 2 small-scale traces (Figures 2 and 3) ----
Trace preset_cs(std::uint64_t seed = 1);       // looping (cscope-like)
Trace preset_glimpse(std::uint64_t seed = 1);  // looping, multiple scopes
Trace preset_sprite(std::uint64_t seed = 1);   // temporally clustered (LRU-friendly)
Trace preset_random_small(std::uint64_t seed = 1);
Trace preset_zipf_small(std::uint64_t seed = 1);
Trace preset_multi(std::uint64_t seed = 1);    // sequential + looping + probabilistic

// ---- Section 4 single-client traces (Figure 6) ----
// Paper scale: random 65536 blocks / 65M refs; zipf 98304 blocks / 98M refs;
// httpd 524MB in 13457 files / ~1.5M file requests; dev1 ~600MB / ~100K refs;
// tpcc1 ~256MB / 3.9M refs.
Trace preset_random_large(double scale = 1.0, std::uint64_t seed = 1);
Trace preset_zipf_large(double scale = 1.0, std::uint64_t seed = 1);
Trace preset_httpd_single(double scale = 1.0, std::uint64_t seed = 1);
Trace preset_dev1(double scale = 1.0, std::uint64_t seed = 1);
Trace preset_tpcc1(double scale = 1.0, std::uint64_t seed = 1);

// ---- Section 4 multi-client traces (Figure 7) ----
Trace preset_httpd_multi(double scale = 1.0, std::uint64_t seed = 1);   // 7 clients
Trace preset_openmail(double scale = 1.0, std::uint64_t seed = 1);     // 6 clients
Trace preset_db2(double scale = 1.0, std::uint64_t seed = 1);          // 8 clients

// Factory by name ("cs", "glimpse", ..., "db2"); aborts on unknown names.
Trace make_preset(const std::string& name, double scale = 1.0, std::uint64_t seed = 1);
std::vector<std::string> preset_names();

}  // namespace ulc
