#include "workloads/synthetic.h"

#include <algorithm>
#include <cmath>

#include "util/ensure.h"

namespace ulc {

namespace {

class UniformSource final : public PatternSource {
 public:
  UniformSource(BlockId base, std::uint64_t n) : base_(base), n_(n) {
    ULC_REQUIRE(n > 0, "uniform source needs blocks");
  }
  BlockId next(Rng& rng) override { return base_ + rng.next_below(n_); }

 private:
  BlockId base_;
  std::uint64_t n_;
};

class ZipfSource final : public PatternSource {
 public:
  ZipfSource(BlockId base, std::uint64_t n, double theta, bool scramble,
             std::uint64_t scramble_seed)
      : base_(base), sampler_(n, theta) {
    if (scramble) {
      perm_.resize(static_cast<std::size_t>(n));
      for (std::uint64_t i = 0; i < n; ++i) perm_[static_cast<std::size_t>(i)] = i;
      Rng rng(scramble_seed);
      // Fisher-Yates with our deterministic RNG.
      for (std::uint64_t i = n; i > 1; --i) {
        const std::uint64_t j = rng.next_below(i);
        std::swap(perm_[static_cast<std::size_t>(i - 1)],
                  perm_[static_cast<std::size_t>(j)]);
      }
    }
  }

  BlockId next(Rng& rng) override {
    const std::uint64_t rank = sampler_.sample(rng);
    if (perm_.empty()) return base_ + rank;
    return base_ + perm_[static_cast<std::size_t>(rank)];
  }

 private:
  BlockId base_;
  ZipfSampler sampler_;
  std::vector<std::uint64_t> perm_;
};

class LoopSource final : public PatternSource {
 public:
  LoopSource(BlockId base, std::uint64_t n, std::uint64_t start)
      : base_(base), n_(n), pos_(start % n) {
    ULC_REQUIRE(n > 0, "loop source needs blocks");
  }
  BlockId next(Rng&) override {
    const BlockId b = base_ + pos_;
    pos_ = (pos_ + 1) % n_;
    return b;
  }

 private:
  BlockId base_;
  std::uint64_t n_;
  std::uint64_t pos_;
};

class NestedLoopSource final : public PatternSource {
 public:
  explicit NestedLoopSource(std::vector<LoopScope> scopes)
      : scopes_(std::move(scopes)) {
    ULC_REQUIRE(!scopes_.empty(), "nested loop source needs scopes");
    double sum = 0.0;
    for (const auto& s : scopes_) {
      ULC_REQUIRE(s.n_blocks > 0, "loop scope needs blocks");
      ULC_REQUIRE(s.weight > 0.0, "loop scope weight must be positive");
      sum += s.weight;
    }
    cum_.reserve(scopes_.size());
    double acc = 0.0;
    for (const auto& s : scopes_) {
      acc += s.weight / sum;
      cum_.push_back(acc);
    }
    cum_.back() = 1.0;
  }

  BlockId next(Rng& rng) override {
    if (remaining_ == 0) {
      const double u = rng.next_double();
      current_ = static_cast<std::size_t>(
          std::lower_bound(cum_.begin(), cum_.end(), u) - cum_.begin());
      remaining_ = scopes_[current_].n_blocks;
      pos_ = 0;
    }
    const BlockId b = scopes_[current_].base + pos_;
    ++pos_;
    --remaining_;
    return b;
  }

 private:
  std::vector<LoopScope> scopes_;
  std::vector<double> cum_;
  std::size_t current_ = 0;
  std::uint64_t remaining_ = 0;
  std::uint64_t pos_ = 0;
};

class TemporalSource final : public PatternSource {
 public:
  TemporalSource(BlockId base, std::uint64_t n, double p_new, double alpha)
      : base_(base), n_(n), p_new_(p_new), alpha_(alpha) {
    ULC_REQUIRE(n > 0, "temporal source needs blocks");
    ULC_REQUIRE(alpha > 0.0, "temporal alpha must be positive");
  }

  BlockId next(Rng& rng) override {
    if (stack_.empty() || (introduced_ < n_ && rng.next_bool(p_new_))) {
      const BlockId b = base_ + introduced_;
      introduced_ = (introduced_ + 1) % (n_ + 1);
      if (introduced_ == 0) introduced_ = n_;  // saturate: all blocks known
      stack_.push_back(0);                     // placeholder, fixed below
      // Move-to-front insert.
      for (std::size_t i = stack_.size() - 1; i > 0; --i) stack_[i] = stack_[i - 1];
      stack_[0] = b;
      return b;
    }
    // Truncated Pareto over stack depth [0, stack_.size()).
    const double u = rng.next_double();
    const double depth_f =
        static_cast<double>(stack_.size()) * (std::pow(1.0 - u, 1.0 / alpha_) *
                                              -1.0 + 1.0);
    std::size_t depth = static_cast<std::size_t>(depth_f);
    if (depth >= stack_.size()) depth = stack_.size() - 1;
    const BlockId b = stack_[depth];
    // Move to front.
    for (std::size_t i = depth; i > 0; --i) stack_[i] = stack_[i - 1];
    stack_[0] = b;
    return b;
  }

 private:
  BlockId base_;
  std::uint64_t n_;
  double p_new_;
  double alpha_;
  std::uint64_t introduced_ = 0;
  std::vector<BlockId> stack_;
};

class FileServerSource final : public PatternSource {
 public:
  explicit FileServerSource(const FileServerConfig& cfg)
      : sampler_(cfg.n_files, cfg.zipf_theta),
        drift_period_(cfg.drift_period),
        drift_step_(cfg.drift_step) {
    build_layout(cfg, starts_, sizes_);
  }

  BlockId next(Rng& rng) override {
    if (remaining_ == 0) {
      if (drift_period_ > 0 && ++requests_ % drift_period_ == 0) {
        offset_ = (offset_ + drift_step_) % starts_.size();
      }
      const std::uint64_t rank = sampler_.sample(rng);
      const std::size_t file =
          static_cast<std::size_t>((rank + offset_) % starts_.size());
      cursor_ = starts_[file];
      remaining_ = sizes_[file];
    }
    const BlockId b = cursor_;
    ++cursor_;
    --remaining_;
    return b;
  }

  static void build_layout(const FileServerConfig& cfg, std::vector<BlockId>& starts,
                           std::vector<std::uint64_t>& sizes) {
    ULC_REQUIRE(cfg.n_files > 0, "file server needs files");
    ULC_REQUIRE(cfg.mean_file_blocks >= 1.0, "files must have at least one block");
    starts.resize(static_cast<std::size_t>(cfg.n_files));
    sizes.resize(static_cast<std::size_t>(cfg.n_files));
    Rng rng(cfg.layout_seed);
    // Bounded lognormal-ish size: exp(N(mu, 0.8)) clamped to [1, max].
    const double mu = std::log(cfg.mean_file_blocks) - 0.32;  // e^{0.8^2/2} correction
    BlockId cursor = cfg.base;
    for (std::size_t i = 0; i < starts.size(); ++i) {
      // Box-Muller from two uniforms.
      const double u1 = std::max(rng.next_double(), 1e-12);
      const double u2 = rng.next_double();
      const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
      double size_f = std::exp(mu + 0.8 * z);
      std::uint64_t size = static_cast<std::uint64_t>(size_f);
      size = std::clamp<std::uint64_t>(size, 1, cfg.max_file_blocks);
      starts[i] = cursor;
      sizes[i] = size;
      cursor += size;
    }
  }

 private:
  ZipfSampler sampler_;
  std::uint64_t drift_period_;
  std::uint64_t drift_step_;
  std::vector<BlockId> starts_;
  std::vector<std::uint64_t> sizes_;
  BlockId cursor_ = 0;
  std::uint64_t remaining_ = 0;
  std::uint64_t requests_ = 0;
  std::uint64_t offset_ = 0;
};

class MixtureSource final : public PatternSource {
 public:
  MixtureSource(std::vector<PatternPtr> sources, std::vector<double> weights)
      : sources_(std::move(sources)) {
    ULC_REQUIRE(!sources_.empty(), "mixture needs sources");
    ULC_REQUIRE(sources_.size() == weights.size(), "mixture weights/sources mismatch");
    double sum = 0.0;
    for (double w : weights) {
      ULC_REQUIRE(w >= 0.0, "mixture weight must be non-negative");
      sum += w;
    }
    ULC_REQUIRE(sum > 0.0, "mixture weights must not all be zero");
    double acc = 0.0;
    for (double w : weights) {
      acc += w / sum;
      cum_.push_back(acc);
    }
    cum_.back() = 1.0;
  }

  BlockId next(Rng& rng) override {
    const double u = rng.next_double();
    const std::size_t i = static_cast<std::size_t>(
        std::lower_bound(cum_.begin(), cum_.end(), u) - cum_.begin());
    return sources_[i]->next(rng);
  }

 private:
  std::vector<PatternPtr> sources_;
  std::vector<double> cum_;
};

class PhaseSource final : public PatternSource {
 public:
  PhaseSource(std::vector<PatternPtr> sources, std::vector<std::uint64_t> lengths)
      : sources_(std::move(sources)), lengths_(std::move(lengths)) {
    ULC_REQUIRE(!sources_.empty(), "phase source needs sources");
    ULC_REQUIRE(sources_.size() == lengths_.size(), "phase lengths/sources mismatch");
    for (std::uint64_t l : lengths_) ULC_REQUIRE(l > 0, "phase length must be positive");
    remaining_ = lengths_[0];
  }

  BlockId next(Rng& rng) override {
    if (remaining_ == 0) {
      current_ = (current_ + 1) % sources_.size();
      remaining_ = lengths_[current_];
    }
    --remaining_;
    return sources_[current_]->next(rng);
  }

 private:
  std::vector<PatternPtr> sources_;
  std::vector<std::uint64_t> lengths_;
  std::size_t current_ = 0;
  std::uint64_t remaining_ = 0;
};

}  // namespace

PatternPtr make_uniform_source(BlockId base, std::uint64_t n_blocks) {
  return std::make_unique<UniformSource>(base, n_blocks);
}

PatternPtr make_zipf_source(BlockId base, std::uint64_t n_blocks, double theta,
                            bool scramble, std::uint64_t scramble_seed) {
  return std::make_unique<ZipfSource>(base, n_blocks, theta, scramble, scramble_seed);
}

PatternPtr make_loop_source(BlockId base, std::uint64_t n_blocks,
                            std::uint64_t start_offset) {
  return std::make_unique<LoopSource>(base, n_blocks, start_offset);
}

PatternPtr make_nested_loop_source(std::vector<LoopScope> scopes) {
  return std::make_unique<NestedLoopSource>(std::move(scopes));
}

PatternPtr make_temporal_source(BlockId base, std::uint64_t n_blocks, double p_new,
                                double alpha) {
  return std::make_unique<TemporalSource>(base, n_blocks, p_new, alpha);
}

PatternPtr make_scan_source(BlockId base, std::uint64_t n_blocks) {
  return std::make_unique<LoopSource>(base, n_blocks, 0);
}

PatternPtr make_file_server_source(const FileServerConfig& config) {
  return std::make_unique<FileServerSource>(config);
}

std::uint64_t file_server_footprint(const FileServerConfig& config) {
  std::vector<BlockId> starts;
  std::vector<std::uint64_t> sizes;
  FileServerSource::build_layout(config, starts, sizes);
  return (starts.back() + sizes.back()) - config.base;
}

PatternPtr make_mixture_source(std::vector<PatternPtr> sources,
                               std::vector<double> weights) {
  return std::make_unique<MixtureSource>(std::move(sources), std::move(weights));
}

PatternPtr make_phase_source(std::vector<PatternPtr> sources,
                             std::vector<std::uint64_t> lengths) {
  return std::make_unique<PhaseSource>(std::move(sources), std::move(lengths));
}

Trace generate(PatternSource& source, std::uint64_t n_refs, std::uint64_t seed,
               const std::string& name) {
  Trace trace(name);
  trace.reserve(static_cast<std::size_t>(n_refs));
  Rng rng(seed);
  for (std::uint64_t i = 0; i < n_refs; ++i) trace.add(source.next(rng), 0);
  return trace;
}

Trace generate_multi(std::vector<PatternPtr> client_sources,
                     const std::vector<double>& client_rates, std::uint64_t n_refs,
                     std::uint64_t seed, const std::string& name) {
  ULC_REQUIRE(!client_sources.empty(), "multi-client generation needs clients");
  ULC_REQUIRE(client_sources.size() == client_rates.size(),
              "client rates/sources mismatch");
  double sum = 0.0;
  for (double r : client_rates) {
    ULC_REQUIRE(r > 0.0, "client rate must be positive");
    sum += r;
  }
  std::vector<double> cum;
  double acc = 0.0;
  for (double r : client_rates) {
    acc += r / sum;
    cum.push_back(acc);
  }
  cum.back() = 1.0;

  Trace trace(name);
  trace.reserve(static_cast<std::size_t>(n_refs));
  Rng rng(seed);
  for (std::uint64_t i = 0; i < n_refs; ++i) {
    const double u = rng.next_double();
    const std::size_t c = static_cast<std::size_t>(
        std::lower_bound(cum.begin(), cum.end(), u) - cum.begin());
    trace.add(client_sources[c]->next(rng), static_cast<ClientId>(c));
  }
  return trace;
}

}  // namespace ulc
