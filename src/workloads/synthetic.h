// Composable synthetic block-reference pattern sources.
//
// The paper's evaluation traces (cs, glimpse, sprite, multi, httpd, dev1,
// tpcc1, openmail, db2) come from trace archives that are no longer
// distributable, so this module provides the generator vocabulary from which
// paper_presets.{h,cpp} synthesizes equivalents: uniform-random, Zipf,
// looping, temporally-clustered (LRU-friendly), sequential scans, whole-file
// server requests, and probabilistic mixtures of any of these. Every source
// is deterministic given a seed.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/trace.h"
#include "util/prng.h"

namespace ulc {

// A stateful stream of block references.
class PatternSource {
 public:
  virtual ~PatternSource() = default;
  // Produces the next referenced block id.
  virtual BlockId next(Rng& rng) = 0;
};

using PatternPtr = std::unique_ptr<PatternSource>;

// Uniformly random references over [base, base + n_blocks).
PatternPtr make_uniform_source(BlockId base, std::uint64_t n_blocks);

// Zipf(theta) over n_blocks. `scramble` decorrelates popularity rank from
// block id (a fixed pseudo-random permutation) so that popular blocks are not
// spatially adjacent, matching real file popularity.
PatternPtr make_zipf_source(BlockId base, std::uint64_t n_blocks, double theta,
                            bool scramble = true, std::uint64_t scramble_seed = 1);

// Endless sequential loop over [base, base + n_blocks): b, b+1, ..., wrap.
PatternPtr make_loop_source(BlockId base, std::uint64_t n_blocks,
                            std::uint64_t start_offset = 0);

// Several looping scopes; a scope is chosen with probability proportional to
// its weight and then scanned in full before the next choice (glimpse-style
// repeated whole-index scans of different sizes).
struct LoopScope {
  BlockId base = 0;
  std::uint64_t n_blocks = 0;
  double weight = 1.0;
};
PatternPtr make_nested_loop_source(std::vector<LoopScope> scopes);

// Temporally-clustered (LRU-friendly, sprite-like) references: with
// probability p_new touch a not-yet-referenced block, otherwise re-reference
// the block at an LRU stack depth drawn from a truncated Pareto with shape
// `alpha` (larger alpha = tighter clustering). Wraps to re-use old blocks
// once all n_blocks have been introduced.
PatternPtr make_temporal_source(BlockId base, std::uint64_t n_blocks, double p_new,
                                double alpha);

// One sequential pass over [base, base + n_blocks); after the pass it starts
// over (equivalent to loop but kept separate for mixture phase semantics).
PatternPtr make_scan_source(BlockId base, std::uint64_t n_blocks);

// Whole-file request stream: file popularity is Zipf(theta); each request
// reads all blocks of the chosen file sequentially. File sizes are drawn once
// (deterministically from `layout_seed`) from a bounded lognormal-like
// distribution with the given mean, and files are laid out contiguously from
// `base`.
struct FileServerConfig {
  BlockId base = 0;
  std::uint64_t n_files = 1000;
  double zipf_theta = 0.9;
  double mean_file_blocks = 5.0;
  std::uint64_t max_file_blocks = 64;
  std::uint64_t layout_seed = 7;
  // Popularity drift: every `drift_period` file requests the popularity
  // ranking rotates by `drift_step` files, so the hot set slowly moves
  // through the catalogue (day-long web traces change what is hot; this is
  // the pattern-change behaviour frequency-based caches are slow to track).
  // drift_period = 0 disables drift.
  std::uint64_t drift_period = 0;
  std::uint64_t drift_step = 1;
};
PatternPtr make_file_server_source(const FileServerConfig& config);
// Total number of blocks the file layout occupies (footprint).
std::uint64_t file_server_footprint(const FileServerConfig& config);

// Probabilistic mixture: each reference is drawn from source i with
// probability weight[i] / sum(weights). Multi-block sources (file scans,
// loops) keep their own state across interleaving.
PatternPtr make_mixture_source(std::vector<PatternPtr> sources,
                               std::vector<double> weights);

// Phase sequence: runs source i for lengths[i] references, then moves to the
// next, cycling (the `multi` trace's sequential-then-loop-then-random mix).
PatternPtr make_phase_source(std::vector<PatternPtr> sources,
                             std::vector<std::uint64_t> lengths);

// Materializes n_refs references from a source into a single-client trace.
Trace generate(PatternSource& source, std::uint64_t n_refs, std::uint64_t seed,
               const std::string& name);

// Materializes a multi-client trace: per-client sources, interleaved by
// choosing at each step a client with probability proportional to its rate.
Trace generate_multi(std::vector<PatternPtr> client_sources,
                     const std::vector<double>& client_rates, std::uint64_t n_refs,
                     std::uint64_t seed, const std::string& name);

}  // namespace ulc
