#include "workloads/paper_presets.h"

#include <algorithm>
#include <cmath>

#include "util/ensure.h"
#include "workloads/synthetic.h"

namespace ulc {

namespace {

std::uint64_t scaled(double scale, std::uint64_t full, std::uint64_t minimum) {
  ULC_REQUIRE(scale > 0.0, "scale must be positive");
  const double refs = scale * static_cast<double>(full);
  return std::max<std::uint64_t>(minimum, static_cast<std::uint64_t>(refs));
}

}  // namespace

// cs: a cscope-style source examination — one tight loop over the whole
// (small) code base, repeated. ~1300 blocks, ~130K references.
Trace preset_cs(std::uint64_t seed) {
  auto src = make_loop_source(0, 1300);
  return generate(*src, 130000, seed, "cs");
}

// glimpse: repeated whole-scans of several index scopes of different sizes,
// on the regular schedule a query batch produces — the small index is
// re-scanned most often, the full collection least. The regularity gives
// each block a stable re-scan distance (LLD), the property Figures 2 and 3
// exploit.
Trace preset_glimpse(std::uint64_t seed) {
  std::vector<PatternPtr> phases;
  std::vector<std::uint64_t> lengths;
  phases.push_back(make_loop_source(0, 300));      // small index, 3 passes
  lengths.push_back(900);
  phases.push_back(make_loop_source(300, 900));    // medium scope, 1 pass
  lengths.push_back(900);
  phases.push_back(make_loop_source(0, 300));      // small index again
  lengths.push_back(900);
  phases.push_back(make_loop_source(1200, 1800));  // full-collection scan
  lengths.push_back(1800);
  auto src = make_phase_source(std::move(phases), std::move(lengths));
  return generate(*src, 30000, seed, "glimpse");
}

// sprite: temporally-clustered client requests to a Sprite file server —
// the LRU-friendly pattern. ~7000 blocks, ~134K references.
Trace preset_sprite(std::uint64_t seed) {
  auto src = make_temporal_source(0, 7000, 0.055, 5.0);
  return generate(*src, 134000, seed, "sprite");
}

Trace preset_random_small(std::uint64_t seed) {
  auto src = make_uniform_source(0, 5000);
  return generate(*src, 100000, seed, "random");
}

Trace preset_zipf_small(std::uint64_t seed) {
  auto src = make_zipf_source(0, 5000, 1.0, /*scramble=*/true, 17);
  return generate(*src, 100000, seed, "zipf");
}

// multi: the paper describes it as "mixed with sequential, looping and
// probabilistic references" — modelled as cycling phases.
Trace preset_multi(std::uint64_t seed) {
  std::vector<PatternPtr> phases;
  std::vector<std::uint64_t> lengths;
  phases.push_back(make_scan_source(0, 2000));          // sequential
  lengths.push_back(2000);
  phases.push_back(make_loop_source(2000, 1200));       // looping
  lengths.push_back(4800);
  phases.push_back(make_zipf_source(3200, 2800, 0.9, true, 23));  // probabilistic
  lengths.push_back(5200);
  auto src = make_phase_source(std::move(phases), std::move(lengths));
  return generate(*src, 120000, seed, "multi");
}

// random (large): 512MB data set = 65536 blocks; ~65M references.
Trace preset_random_large(double scale, std::uint64_t seed) {
  auto src = make_uniform_source(0, 65536);
  return generate(*src, scaled(scale, 65000000, 650000), seed, "random");
}

// zipf (large): 768MB = 98304 blocks; ~98M references; P(i) ~ 1/i.
Trace preset_zipf_large(double scale, std::uint64_t seed) {
  auto src = make_zipf_source(0, 98304, 1.0, /*scramble=*/true, 29);
  return generate(*src, scaled(scale, 98000000, 980000), seed, "zipf");
}

namespace {

FileServerConfig httpd_config() {
  FileServerConfig cfg;
  cfg.base = 0;
  cfg.n_files = 13457;           // paper: 524MB in 13,457 files
  cfg.zipf_theta = 0.9;          // web-style skewed file popularity
  cfg.mean_file_blocks = 4.9;    // 65536 blocks / 13457 files
  cfg.max_file_blocks = 192;
  cfg.layout_seed = 101;
  // A 24-hour web trace: what is hot drifts through the catalogue over the
  // day (the pattern changes the paper says MQ is slow to follow).
  cfg.drift_period = 1000;
  cfg.drift_step = 37;
  return cfg;
}

// One web-server node's stream: Zipf file requests with daily popularity
// drift, plus crawler/mirror sweeps walking the whole site (each node at a
// different phase).
PatternPtr httpd_node_source(int node) {
  std::vector<PatternPtr> parts;
  std::vector<double> weights;
  parts.push_back(make_file_server_source(httpd_config()));
  weights.push_back(0.90);
  parts.push_back(make_loop_source(0, 65536, 9000ull * static_cast<unsigned>(node)));
  weights.push_back(0.10);
  return make_mixture_source(std::move(parts), std::move(weights));
}

}  // namespace

// httpd (single-client form): the 7 per-node request streams aggregated into
// one, as the paper does for the Figure 6 study. ~1.5M file requests at ~4.9
// blocks each is ~7.3M block references.
Trace preset_httpd_single(double scale, std::uint64_t seed) {
  std::vector<PatternPtr> nodes;
  std::vector<double> rates;
  for (int c = 0; c < 7; ++c) {
    nodes.push_back(httpd_node_source(c));
    rates.push_back(1.0);
  }
  auto src = make_mixture_source(std::move(nodes), std::move(rates));
  return generate(*src, scaled(scale, 7300000, 365000), seed, "httpd");
}

// dev1: a desktop Linux I/O trace — a drifting edited/compiled working set,
// with background sequential installs/scans and occasional random metadata
// touches. ~600MB (76800 blocks) footprint but only ~100K references.
Trace preset_dev1(double scale, std::uint64_t seed) {
  std::vector<PatternPtr> sources;
  std::vector<double> weights;
  // Active project working set: strongly clustered reuse.
  sources.push_back(make_temporal_source(0, 24000, 0.12, 3.0));
  weights.push_back(0.50);
  // Repeated build sweeps over the project + system headers: a loop larger
  // than the client cache but within the aggregate — reuse only a
  // coordinated hierarchy can serve.
  sources.push_back(make_loop_source(24000, 20000));
  weights.push_back(0.30);
  // Shorter IDE/indexer scans.
  std::vector<LoopScope> scans;
  scans.push_back({44000, 9000, 1.0});
  sources.push_back(make_nested_loop_source(std::move(scans)));
  weights.push_back(0.12);
  // Desktop noise across the rest of the disk.
  sources.push_back(make_uniform_source(53000, 23800));
  weights.push_back(0.08);
  auto src = make_mixture_source(std::move(sources), std::move(weights));
  return generate(*src, scaled(scale, 100000, 100000), seed, "dev1");
}

// tpcc1: TPC-C on Postgres. The paper identifies a looping access pattern
// whose loop distance falls beyond the first cache level — reproduced as a
// dominant table/index loop of ~12000 blocks (~94MB) inside a 32768-block
// (256MB) data set, plus sparse uniform excursions to the rest.
Trace preset_tpcc1(double scale, std::uint64_t seed) {
  std::vector<PatternPtr> sources;
  std::vector<double> weights;
  sources.push_back(make_loop_source(0, 12000));
  weights.push_back(0.98);
  sources.push_back(make_uniform_source(12000, 20768));
  weights.push_back(0.02);
  auto src = make_mixture_source(std::move(sources), std::move(weights));
  return generate(*src, scaled(scale, 3900000, 390000), seed, "tpcc1");
}

// httpd (multi-client form): the same file population served by 7 web-server
// nodes; every node sees the same Zipf popularity (high sharing), with
// node-local request streams.
Trace preset_httpd_multi(double scale, std::uint64_t seed) {
  std::vector<PatternPtr> clients;
  std::vector<double> rates;
  for (int c = 0; c < 7; ++c) {
    clients.push_back(httpd_node_source(c));
    rates.push_back(1.0);
  }
  return generate_multi(std::move(clients), rates, scaled(scale, 7300000, 365000),
                        seed, "httpd");
}

// openmail: 6 mail servers over an 18.6GB store. Per-client mailbox regions
// (no sharing) with light reuse of recent messages and long mailbox scans —
// weak per-client locality over a huge footprint.
Trace preset_openmail(double scale, std::uint64_t seed) {
  constexpr std::uint64_t kPerClient = 406323;  // ~6 x 406K blocks = 18.6GB
  std::vector<PatternPtr> clients;
  std::vector<double> rates;
  for (int c = 0; c < 6; ++c) {
    const BlockId base = static_cast<BlockId>(c) * kPerClient;
    std::vector<PatternPtr> sources;
    std::vector<double> weights;
    // Recently-delivered/read messages: clustered reuse over a region that
    // outgrows the 1GB client cache (131072 blocks) as the hour progresses.
    sources.push_back(make_temporal_source(base, 300000, 0.35, 2.0));
    weights.push_back(0.50);
    // Mailbox re-scans (folder opens): looping scopes around and beyond the
    // per-client cache share.
    std::vector<LoopScope> scans;
    scans.push_back({base + 300000, 40000, 2.0});
    scans.push_back({base + 340000, 66323, 1.0});
    sources.push_back(make_nested_loop_source(std::move(scans)));
    weights.push_back(0.42);
    // Cold lookups anywhere in the store.
    sources.push_back(make_uniform_source(base, kPerClient));
    weights.push_back(0.08);
    clients.push_back(make_mixture_source(std::move(sources), std::move(weights)));
    rates.push_back(1.0);
  }
  return generate_multi(std::move(clients), rates, scaled(scale, 6000000, 600000),
                        seed, "openmail");
}

// db2: 8 SP2 nodes running join/set/aggregation queries — per-node looping
// scans over partitioned tables (several looping scope sizes) plus a shared
// hot dictionary. 5.2GB total.
Trace preset_db2(double scale, std::uint64_t seed) {
  constexpr std::uint64_t kShared = 15360;      // shared catalog/dictionary
  constexpr std::uint64_t kPerClient = 80000;   // per-node partition
  std::vector<PatternPtr> clients;
  std::vector<double> rates;
  for (int c = 0; c < 8; ++c) {
    const BlockId base = kShared + static_cast<BlockId>(c) * kPerClient;
    std::vector<PatternPtr> sources;
    std::vector<double> weights;
    std::vector<LoopScope> loops;
    loops.push_back({base, 24000, 3.0});            // inner-table scan
    loops.push_back({base + 24000, 40000, 2.0});    // mid-size join scan
    loops.push_back({base, 80000, 1.0});            // full-partition scan
    sources.push_back(make_nested_loop_source(std::move(loops)));
    weights.push_back(0.85);
    sources.push_back(make_zipf_source(0, kShared, 0.9, true, 31));
    weights.push_back(0.15);
    clients.push_back(make_mixture_source(std::move(sources), std::move(weights)));
    rates.push_back(1.0);
  }
  return generate_multi(std::move(clients), rates, scaled(scale, 8000000, 800000),
                        seed, "db2");
}

Trace make_preset(const std::string& name, double scale, std::uint64_t seed) {
  if (name == "cs") return preset_cs(seed);
  if (name == "glimpse") return preset_glimpse(seed);
  if (name == "sprite") return preset_sprite(seed);
  if (name == "random-small") return preset_random_small(seed);
  if (name == "zipf-small") return preset_zipf_small(seed);
  if (name == "multi") return preset_multi(seed);
  if (name == "random") return preset_random_large(scale, seed);
  if (name == "zipf") return preset_zipf_large(scale, seed);
  if (name == "httpd") return preset_httpd_single(scale, seed);
  if (name == "dev1") return preset_dev1(scale, seed);
  if (name == "tpcc1") return preset_tpcc1(scale, seed);
  if (name == "httpd-multi") return preset_httpd_multi(scale, seed);
  if (name == "openmail") return preset_openmail(scale, seed);
  if (name == "db2") return preset_db2(scale, seed);
  ULC_REQUIRE(false, ("unknown preset: " + name).c_str());
  return Trace();
}

std::vector<std::string> preset_names() {
  return {"cs",    "glimpse", "sprite", "random-small", "zipf-small", "multi",
          "random", "zipf",   "httpd",  "dev1",         "tpcc1",
          "httpd-multi", "openmail", "db2"};
}

}  // namespace ulc
