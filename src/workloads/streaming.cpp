#include "workloads/streaming.h"

#include <vector>

#include "util/ensure.h"

namespace ulc {

namespace {

class StreamingSource final : public PatternSource {
 public:
  explicit StreamingSource(const StreamingConfig& cfg)
      : sampler_(cfg.n_titles, cfg.zipf_theta),
        abandon_prob_(cfg.abandon_prob),
        churn_period_(cfg.churn_period),
        churn_step_(cfg.churn_step) {
    build_layout(cfg, starts_, segments_);
  }

  BlockId next(Rng& rng) override {
    if (remaining_ == 0) {
      if (churn_period_ > 0 && ++sessions_ % churn_period_ == 0) {
        offset_ = (offset_ + churn_step_) % starts_.size();
      }
      const std::uint64_t rank = sampler_.sample(rng);
      const std::size_t title =
          static_cast<std::size_t>((rank + offset_) % starts_.size());
      session_start_ = starts_[title];
      cursor_ = session_start_;
      remaining_ = 1 + segments_[title];  // manifest + media segments
    }
    const BlockId b = cursor_;
    ++cursor_;
    --remaining_;
    // After each media segment (never after the manifest) the viewer may
    // walk away, so sessions mostly replay popular prefixes and only the
    // hottest titles see their tails referenced.
    if (remaining_ > 0 && b != session_start_ && rng.next_bool(abandon_prob_)) {
      remaining_ = 0;
    }
    return b;
  }

  static void build_layout(const StreamingConfig& cfg, std::vector<BlockId>& starts,
                           std::vector<std::uint64_t>& segments) {
    ULC_REQUIRE(cfg.n_titles > 0, "streaming catalogue needs titles");
    ULC_REQUIRE(cfg.min_segments >= 1, "titles need at least one segment");
    ULC_REQUIRE(cfg.max_segments >= cfg.min_segments,
                "segment-run bounds are inverted");
    ULC_REQUIRE(cfg.manifest_size >= 1 && cfg.segment_size >= 1,
                "block sizes are at least one unit");
    starts.resize(static_cast<std::size_t>(cfg.n_titles));
    segments.resize(static_cast<std::size_t>(cfg.n_titles));
    Rng rng(cfg.layout_seed);
    const std::uint64_t span = cfg.max_segments - cfg.min_segments + 1;
    BlockId cursor = cfg.base;
    for (std::size_t i = 0; i < starts.size(); ++i) {
      starts[i] = cursor;
      segments[i] = cfg.min_segments + rng.next_below(span);
      cursor += 1 + segments[i];
    }
  }

 private:
  ZipfSampler sampler_;
  double abandon_prob_;
  std::uint64_t churn_period_;
  std::uint64_t churn_step_;
  std::vector<BlockId> starts_;
  std::vector<std::uint64_t> segments_;
  BlockId session_start_ = 0;
  BlockId cursor_ = 0;
  std::uint64_t remaining_ = 0;
  std::uint64_t sessions_ = 0;
  std::uint64_t offset_ = 0;
};

}  // namespace

PatternPtr make_streaming_source(const StreamingConfig& config) {
  return std::make_unique<StreamingSource>(config);
}

std::uint64_t streaming_footprint(const StreamingConfig& config) {
  std::vector<BlockId> starts;
  std::vector<std::uint64_t> segments;
  StreamingSource::build_layout(config, starts, segments);
  return (starts.back() + 1 + segments.back()) - config.base;
}

SizeTable streaming_sizes(const StreamingConfig& config) {
  std::vector<BlockId> starts;
  std::vector<std::uint64_t> segments;
  StreamingSource::build_layout(config, starts, segments);
  SizeTable table;
  for (std::size_t i = 0; i < starts.size(); ++i) {
    table.set(starts[i], config.manifest_size);
    for (std::uint64_t s = 0; s < segments[i]; ++s) {
      table.set(starts[i] + 1 + s, config.segment_size);
    }
  }
  return table;
}

}  // namespace ulc
