#include "trace/trace_io.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>

namespace ulc {

namespace {

constexpr char kMagicV1[8] = {'U', 'L', 'C', 'T', 'R', 'C', '0', '1'};
constexpr char kMagicV2[8] = {'U', 'L', 'C', 'T', 'R', 'C', '0', '2'};
constexpr char kMagicV3[8] = {'U', 'L', 'C', 'T', 'R', 'C', '0', '3'};

bool any_sized(const Trace& trace) {
  for (const Request& r : trace) {
    if (r.size != 1) return true;
  }
  return false;
}

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void set_error(std::string* error, const std::string& msg) {
  if (error) *error = msg;
}

void put_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

bool save_trace_text(const Trace& trace, const std::string& path, std::string* error) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (!f) {
    set_error(error, "cannot open for writing: " + path);
    return false;
  }
  std::fprintf(f.get(), "# ULC trace: %s (%zu requests)\n", trace.name().c_str(),
               trace.size());
  std::fprintf(f.get(), "# format: <client> <block> [r|w] [size_units]\n");
  for (const Request& r : trace) {
    int rc;
    if (r.size != 1) {
      // The size column needs the op column before it to stay parseable.
      rc = std::fprintf(f.get(), "%" PRIu32 " %" PRIu64 " %c %" PRIu32 "\n",
                        r.client, r.block, r.op == Op::kWrite ? 'w' : 'r',
                        r.size);
    } else if (r.op == Op::kWrite) {
      rc = std::fprintf(f.get(), "%" PRIu32 " %" PRIu64 " w\n", r.client, r.block);
    } else {
      rc = std::fprintf(f.get(), "%" PRIu32 " %" PRIu64 "\n", r.client, r.block);
    }
    if (rc < 0) {
      set_error(error, "write failure: " + path);
      return false;
    }
  }
  return true;
}

std::optional<Trace> load_trace_text(const std::string& path, std::string* error) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (!f) {
    set_error(error, "cannot open for reading: " + path);
    return std::nullopt;
  }
  Trace trace(path);
  char line[256];
  std::size_t lineno = 0;
  while (std::fgets(line, sizeof(line), f.get())) {
    ++lineno;
    const char* p = line;
    while (*p == ' ' || *p == '\t') ++p;
    if (*p == '#' || *p == '\n' || *p == '\0') continue;
    std::uint32_t client = 0;
    std::uint64_t block = 0;
    char op_ch = 'r';
    std::uint32_t size = 1;
    const int fields = std::sscanf(p, "%" SCNu32 " %" SCNu64 " %c %" SCNu32,
                                   &client, &block, &op_ch, &size);
    if (fields < 2 ||
        (fields >= 3 && op_ch != 'r' && op_ch != 'w' && op_ch != 'R' &&
         op_ch != 'W') ||
        (fields == 4 && size == 0)) {
      set_error(error, path + ":" + std::to_string(lineno) + ": malformed line");
      return std::nullopt;
    }
    trace.add(block, client,
              (op_ch == 'w' || op_ch == 'W') ? Op::kWrite : Op::kRead,
              fields == 4 ? size : 1);
  }
  return trace;
}

bool save_trace_binary(const Trace& trace, const std::string& path, std::string* error) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) {
    set_error(error, "cannot open for writing: " + path);
    return false;
  }
  // v3 (with a per-record size field) only when any request needs it, so
  // unit-size caches stay readable by older readers byte for byte.
  const bool sized = any_sized(trace);
  const std::size_t record = sized ? 17 : 13;
  std::uint8_t header[16];
  std::memcpy(header, sized ? kMagicV3 : kMagicV2, 8);
  put_u64(header + 8, trace.size());
  if (std::fwrite(header, 1, sizeof(header), f.get()) != sizeof(header)) {
    set_error(error, "write failure: " + path);
    return false;
  }
  std::vector<std::uint8_t> buf;
  buf.reserve(record * 4096);
  for (const Request& r : trace) {
    std::uint8_t rec[17];
    put_u32(rec, r.client);
    put_u64(rec + 4, r.block);
    rec[12] = static_cast<std::uint8_t>(r.op);
    if (sized) put_u32(rec + 13, r.size);
    buf.insert(buf.end(), rec, rec + record);
    if (buf.size() >= record * 4096) {
      if (std::fwrite(buf.data(), 1, buf.size(), f.get()) != buf.size()) {
        set_error(error, "write failure: " + path);
        return false;
      }
      buf.clear();
    }
  }
  if (!buf.empty() && std::fwrite(buf.data(), 1, buf.size(), f.get()) != buf.size()) {
    set_error(error, "write failure: " + path);
    return false;
  }
  return true;
}

std::optional<Trace> load_trace_binary(const std::string& path, std::string* error) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) {
    set_error(error, "cannot open for reading: " + path);
    return std::nullopt;
  }
  std::uint8_t header[16];
  if (std::fread(header, 1, sizeof(header), f.get()) != sizeof(header)) {
    set_error(error, "not a ULC binary trace: " + path);
    return std::nullopt;
  }
  std::size_t record = 0;
  if (std::memcmp(header, kMagicV3, 8) == 0) {
    record = 17;  // v3: op + per-record size units
  } else if (std::memcmp(header, kMagicV2, 8) == 0) {
    record = 13;
  } else if (std::memcmp(header, kMagicV1, 8) == 0) {
    record = 12;  // v1: reads only
  } else {
    set_error(error, "not a ULC binary trace: " + path);
    return std::nullopt;
  }
  const std::uint64_t count = get_u64(header + 8);
  Trace trace(path);
  trace.reserve(static_cast<std::size_t>(count));
  std::vector<std::uint8_t> buf(record * 4096);
  std::uint64_t remaining = count;
  while (remaining > 0) {
    const std::size_t want =
        static_cast<std::size_t>(std::min<std::uint64_t>(remaining, 4096)) * record;
    if (std::fread(buf.data(), 1, want, f.get()) != want) {
      set_error(error, "truncated trace: " + path);
      return std::nullopt;
    }
    for (std::size_t off = 0; off < want; off += record) {
      const Op op = record >= 13 && buf[off + 12] == 1 ? Op::kWrite : Op::kRead;
      const std::uint32_t size = record == 17 ? get_u32(buf.data() + off + 13) : 1;
      if (size == 0) {
        set_error(error, "zero-size record in trace: " + path);
        return std::nullopt;
      }
      trace.add(get_u64(buf.data() + off + 4), get_u32(buf.data() + off), op, size);
    }
    remaining -= want / record;
  }
  return trace;
}

}  // namespace ulc
