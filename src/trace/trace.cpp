#include "trace/trace.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/prng.h"

namespace ulc {

Trace Trace::filter_client(ClientId client) const {
  Trace out(name_ + "/client" + std::to_string(client));
  for (const Request& r : requests_) {
    if (r.client == client) out.add(r.block, 0, r.op, r.size);
  }
  return out;
}

Trace Trace::prefix(std::size_t n) const {
  Trace out(name_);
  const std::size_t count = std::min(n, requests_.size());
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.add(requests_[i]);
  return out;
}

TraceStats compute_stats(const Trace& trace) {
  TraceStats stats;
  stats.references = trace.size();
  std::unordered_map<BlockId, ClientId> first_client;
  std::unordered_set<BlockId> shared;
  std::unordered_set<ClientId> clients;
  first_client.reserve(trace.size() / 4 + 16);
  for (const Request& r : trace) {
    stats.max_block = std::max(stats.max_block, r.block);
    clients.insert(r.client);
    stats.referenced_units += r.size;
    stats.max_size = std::max(stats.max_size, r.size);
    if (r.size != 1) stats.sized = true;
    auto [it, inserted] = first_client.emplace(r.block, r.client);
    if (inserted) stats.footprint_units += r.size;
    if (!inserted && it->second != r.client) shared.insert(r.block);
  }
  stats.unique_blocks = first_client.size();
  stats.clients = clients.size();
  stats.shared_blocks = shared.size();
  for (const Request& r : trace) stats.writes += r.op == Op::kWrite ? 1 : 0;
  return stats;
}

Trace with_writes(const Trace& trace, double fraction, std::uint64_t seed) {
  Trace out(trace.name());
  out.reserve(trace.size());
  Rng rng(seed);
  for (const Request& r : trace) {
    Request copy = r;
    copy.op = rng.next_bool(fraction) ? Op::kWrite : Op::kRead;
    out.add(copy);
  }
  return out;
}

}  // namespace ulc
