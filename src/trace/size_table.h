// Per-block size assignment for sized-trace experiments.
//
// Block sizes live beside the trace, not inside the simulator structures: a
// SizeTable maps block ids to sizes in SizeUnits (default 1), generators
// stamp those sizes onto the requests they emit, and every downstream
// consumer reads Request::size only. Unit size therefore stays the
// zero-overhead default — a trace that never touches a SizeTable is
// bit-identical to the pre-size-aware simulator.
//
// The assigners are deterministic given their seed and keyed to the block
// id, so the same block always gets the same size regardless of reference
// order (the accounting in the cache cores assumes a block's size is stable
// while it is resident).
#pragma once

#include <cstdint>

#include "trace/trace.h"
#include "util/flat_hash.h"

namespace ulc {

class SizeTable {
 public:
  SizeTable() = default;

  // Size of `block`; 1 when the block has no explicit entry.
  SizeUnits size_of(BlockId block) const {
    const SizeUnits* s = sizes_.find(block);
    return s == nullptr ? 1 : *s;
  }

  // Records an explicit size (overwrites any previous entry).
  void set(BlockId block, SizeUnits size);

  std::size_t entries() const { return sizes_.size(); }
  bool empty() const { return sizes_.size() == 0; }

 private:
  FlatMap<BlockId, SizeUnits> sizes_;
};

// Deterministic per-block size distributions over [0, n_blocks) block ids
// offset by `base`. Each returns the table it filled.

// Every block `small` units except a `large_fraction` of blocks (chosen by a
// seeded hash of the id) at `large` units — the CDN "manifest vs segment"
// shape.
SizeTable assign_bimodal_sizes(BlockId base, std::uint64_t n_blocks,
                               SizeUnits small, SizeUnits large,
                               double large_fraction, std::uint64_t seed);

// Bounded Pareto-like tail: size = min(max_size, 1 + floor(scale *
// (u^{-1/alpha} - 1))) with u drawn from a seeded hash of the id. Most
// blocks stay small; a heavy tail of blocks is much larger.
SizeTable assign_heavy_tail_sizes(BlockId base, std::uint64_t n_blocks,
                                  double alpha, SizeUnits max_size,
                                  std::uint64_t seed);

// Rewrites every request's size from the table (blocks absent from the
// table get size 1).
void stamp_sizes(Trace& trace, const SizeTable& table);

}  // namespace ulc
