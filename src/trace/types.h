// Fundamental identifiers of the trace-driven simulator.
#pragma once

#include <cstdint>

namespace ulc {

// A file block identifier. The paper's metadata is "8 bytes for file
// identifier and block offset"; we model that as one flat 64-bit id.
using BlockId = std::uint64_t;

// Identifies the client issuing a request in multi-client workloads.
using ClientId = std::uint32_t;

// Request kind. The paper's traces are reads and "writes would be handled
// identically for placement purposes" (§5); what writes add is dirty state:
// a dirty block leaving the hierarchy must be written back to disk instead
// of being discarded.
enum class Op : std::uint8_t { kRead = 0, kWrite = 1 };

// Size of a block in abstract size units. The paper's evaluation is
// unit-size (every block one buffer); size 1 remains the default so the
// original experiments are unchanged, while sized traces (CDN segments,
// file-server extents) carry per-block footprints that every capacity
// account in the stack charges in these units.
using SizeUnits = std::uint32_t;

// One block reference.
struct Request {
  BlockId block = 0;
  ClientId client = 0;
  Op op = Op::kRead;
  SizeUnits size = 1;

  friend bool operator==(const Request&, const Request&) = default;
};

}  // namespace ulc
