// Trace (de)serialization.
//
// Two formats:
//  * text:   one "<client> <block>" pair per line, '#' comments — convenient
//            for importing external traces and for eyeballing.
//  * binary: magic + little-endian u32 client / u64 block pairs — compact,
//            used to cache large synthesized traces between runs.
#pragma once

#include <optional>
#include <string>

#include "trace/trace.h"

namespace ulc {

// Returns false (and leaves *error set) on IO or format problems.
bool save_trace_text(const Trace& trace, const std::string& path, std::string* error = nullptr);
bool save_trace_binary(const Trace& trace, const std::string& path, std::string* error = nullptr);

std::optional<Trace> load_trace_text(const std::string& path, std::string* error = nullptr);
std::optional<Trace> load_trace_binary(const std::string& path, std::string* error = nullptr);

}  // namespace ulc
