#include "trace/size_table.h"

#include <algorithm>
#include <cmath>

#include "util/ensure.h"

namespace ulc {

void SizeTable::set(BlockId block, SizeUnits size) {
  ULC_REQUIRE(size >= 1, "block size must be at least one unit");
  sizes_.put(block, size);
}

namespace {

// Uniform double in [0, 1) from a seeded hash of the block id. Keyed to the
// id (not a stream position) so a block's size never depends on how many
// other blocks were assigned before it.
double unit_from_id(BlockId block, std::uint64_t seed) {
  const std::uint64_t h = splitmix64_mix(block ^ splitmix64_mix(seed));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

SizeTable assign_bimodal_sizes(BlockId base, std::uint64_t n_blocks,
                               SizeUnits small, SizeUnits large,
                               double large_fraction, std::uint64_t seed) {
  ULC_REQUIRE(small >= 1 && large >= 1, "sizes must be at least one unit");
  SizeTable table;
  for (std::uint64_t i = 0; i < n_blocks; ++i) {
    const BlockId b = base + i;
    const bool is_large = unit_from_id(b, seed) < large_fraction;
    table.set(b, is_large ? large : small);
  }
  return table;
}

SizeTable assign_heavy_tail_sizes(BlockId base, std::uint64_t n_blocks,
                                  double alpha, SizeUnits max_size,
                                  std::uint64_t seed) {
  ULC_REQUIRE(alpha > 0.0, "heavy-tail shape must be positive");
  ULC_REQUIRE(max_size >= 1, "max size must be at least one unit");
  SizeTable table;
  for (std::uint64_t i = 0; i < n_blocks; ++i) {
    const BlockId b = base + i;
    // u is bounded away from 0 so u^{-1/alpha} stays finite.
    const double u = std::max(unit_from_id(b, seed), 1e-12);
    const double raw = std::floor(std::pow(u, -1.0 / alpha) - 1.0);
    const double capped =
        std::min(raw, static_cast<double>(max_size - 1));
    table.set(b, static_cast<SizeUnits>(1.0 + std::max(capped, 0.0)));
  }
  return table;
}

void stamp_sizes(Trace& trace, const SizeTable& table) {
  for (Request& r : trace.mutable_requests()) r.size = table.size_of(r.block);
}

}  // namespace ulc
