// An in-memory block reference trace plus summary statistics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/types.h"

namespace ulc {

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::string name) : name_(std::move(name)) {}

  void reserve(std::size_t n) { requests_.reserve(n); }
  void add(BlockId block, ClientId client = 0, Op op = Op::kRead,
           SizeUnits size = 1) {
    requests_.push_back({block, client, op, size});
  }
  void add(const Request& r) { requests_.push_back(r); }

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  std::size_t size() const { return requests_.size(); }
  bool empty() const { return requests_.empty(); }
  const Request& operator[](std::size_t i) const { return requests_[i]; }
  const std::vector<Request>& requests() const { return requests_; }
  // In-place rewrites (size stamping); ordinary consumers use the const view.
  std::vector<Request>& mutable_requests() { return requests_; }

  auto begin() const { return requests_.begin(); }
  auto end() const { return requests_.end(); }

  // Returns a copy containing only requests of `client`, renumbered to
  // client 0 (useful for running a multi-client trace single-client).
  Trace filter_client(ClientId client) const;

  // Returns the trace truncated to at most n requests.
  Trace prefix(std::size_t n) const;

 private:
  std::string name_;
  std::vector<Request> requests_;
};

// Summary statistics computed in one pass.
struct TraceStats {
  std::size_t references = 0;
  std::size_t unique_blocks = 0;
  std::size_t clients = 0;           // number of distinct client ids
  BlockId max_block = 0;
  // Number of blocks referenced by more than one client (sharing degree).
  std::size_t shared_blocks = 0;
  std::size_t writes = 0;
  // Byte-accounted twins (sizes in SizeUnits). On a unit-size trace
  // referenced_units == references and footprint_units == unique_blocks.
  std::uint64_t referenced_units = 0;  // sum of request sizes
  std::uint64_t footprint_units = 0;   // sum of distinct-block sizes
  SizeUnits max_size = 0;              // largest request size seen (0 if empty)
  bool sized = false;                  // any request.size != 1
};

TraceStats compute_stats(const Trace& trace);

// Deterministically marks `fraction` of the requests as writes (the paper's
// traces do not distinguish; this lets write-back behaviour be studied on
// any workload).
Trace with_writes(const Trace& trace, double fraction, std::uint64_t seed = 1);

}  // namespace ulc
