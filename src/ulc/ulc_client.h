// The ULC protocol engine that runs at the first-level client (paper §3.2).
//
// Per reference the engine decides, from the block's position between the
// yardsticks of the uniLRUstack (its LLD at this access), which level the
// block is to be cached at, and emits the two protocol commands of §3.2.1:
//
//   Retrieve(b, i, j), i >= j : fetch b from level i, caching it at level j
//                               as it passes on the way to the client;
//   Demote(b, i, i+1)         : push level i's yardstick block down a level
//                               (the cascade that frees the slot at j).
//
// Lower levels execute these commands verbatim — they run no replacement
// policy of their own. The engine supports:
//   * fixed per-level capacities (single-client mode, any number of levels);
//   * *elastic* shared levels (multi-client mode, one or more): their sizes
//     are whatever the shared caches grant; the servers signal shrinks via
//     external_evict(), downward migrations via external_demote() (the
//     paper's piggybacked replacement notices, generalized in depth) and
//     fullness via set_elastic_full();
//   * an optional client-side tempLRU holding blocks that pass through the
//     client without being cached at L1 (paper footnote 3); disabled (size
//     0) by default to match the paper's simulation.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/types.h"
#include "ulc/uni_lru_stack.h"
#include "util/flat_hash.h"
#include "util/slab.h"

namespace ulc {

struct UlcConfig {
  std::vector<std::size_t> capacities;  // per level, level 0 = client cache
  bool last_level_elastic = false;      // multi-client shared server mode
  // Generalized multi-client mode: levels >= first_elastic_level are shared
  // caches whose sizes are granted by their servers (kLevelOut = none
  // elastic). last_level_elastic is shorthand for levels()-1.
  std::size_t first_elastic_level = kLevelOut;
  std::size_t temp_capacity = 0;        // client tempLRU; 0 = not modeled
};

struct RetrieveCmd {
  BlockId block = 0;
  std::size_t from_level = kLevelOut;  // kLevelOut = disk (below all caches)
  std::size_t cache_at = kLevelOut;    // kLevelOut = do not cache anywhere
  SizeUnits size = 1;                  // transfer size, in SizeUnits
};

struct DemoteCmd {
  BlockId block = 0;
  std::size_t from = 0;
  std::size_t to = kLevelOut;  // kLevelOut = evicted out of the hierarchy
  SizeUnits size = 1;          // transfer size, in SizeUnits
};

struct UlcAccess {
  // Where the block was served from: cache level, or kLevelOut for disk.
  std::size_t hit_level = kLevelOut;
  bool miss() const { return hit_level == kLevelOut && !temp_hit; }
  bool temp_hit = false;  // served from the client tempLRU (L1-speed)
  // Level the block is cached at after this access (kLevelOut = uncached).
  std::size_t placed_level = kLevelOut;
  RetrieveCmd retrieve;
  std::vector<DemoteCmd> demotions;  // cascade, top-down order
};

struct UlcStats {
  std::vector<std::uint64_t> level_hits;      // per level
  std::uint64_t temp_hits = 0;
  std::uint64_t misses = 0;
  std::vector<std::uint64_t> demotions;       // [i] = Demote(i -> i+1) count
  std::vector<std::uint64_t> demoted_units;   // [i] = units shipped over link i
  std::uint64_t evictions = 0;                // demotes out of the last level
  std::uint64_t external_evictions = 0;       // server-initiated (multi-client)
  std::uint64_t resync_drops = 0;             // directory entries dropped by
                                              // fault-recovery resync
  std::uint64_t references = 0;
};

class UlcClient {
 public:
  explicit UlcClient(const UlcConfig& config);

  // Processes one reference. The returned struct is reused across calls.
  // `size` is the block's size in SizeUnits (id-stable across references; a
  // resident block keeps the size it was first cached with). Per-level
  // capacities are byte budgets: placement only ranks a block into a level
  // whose budget can hold it, and the demotion cascade keeps demoting
  // yardsticks until the placed block fits.
  const UlcAccess& access(BlockId block, SizeUnits size = 1);

  // Multi-client: a shared level replaced `block` (this client owned it).
  // Must name a block this client currently has at an elastic level.
  void external_evict(BlockId block);
  // Multi-client, multiple shared levels: the shared level holding `block`
  // migrated it one level down (its own gLRU victim moved to the next shared
  // cache instead of being dropped). Updates the level status and counts.
  void external_demote(BlockId block);
  // Multi-client: once a shared level is full, cold blocks are no longer
  // auto-placed there (they become L_out as per the paper's full-caches rule).
  void set_elastic_full(bool full);
  void set_elastic_full(std::size_t level, bool full);

  // ---- Fault-recovery directory repair (proto/reliable.h) ----
  //
  // Unlike external_evict these accept any level (elastic or fixed): they
  // reconcile the directory with a reply that proved a copy is *gone*
  // (level crash, lost demote data), which can happen to any level.

  // Drops the directory entry claiming `block` is cached at `level`.
  // Returns false (and changes nothing) when no such claim exists.
  bool resync_evict(BlockId block, std::size_t level);
  // A level restarted empty: drops every directory entry at `level`,
  // appending the dropped blocks to `dropped` (if given). Returns the
  // number of entries dropped.
  std::size_t resync_wipe_level(std::size_t level,
                                std::vector<BlockId>* dropped = nullptr);

  // Prefetch pipeline hook (non-mutating; see MultiLevelScheme::prefetch):
  // pulls the hash group(s) a future access will probe plus the arena slot
  // a cold insert would claim.
  void prefetch_index(BlockId block) const {
    stack_.prefetch_index(block);
    if (temp_capacity_ > 0) temp_index_.prefetch(block);
  }

  const UlcStats& stats() const { return stats_; }
  const UniLruStack& stack() const { return stack_; }
  std::size_t levels() const { return capacities_.size(); }
  std::size_t level_size(std::size_t level) const { return stack_.level_size(level); }
  std::uint64_t level_bytes(std::size_t level) const {
    return stack_.level_bytes(level);
  }
  std::size_t capacity(std::size_t level) const { return capacities_[level]; }
  bool is_cached(BlockId block) const;
  // Level the engine believes `block` is cached at (kLevelOut if uncached or
  // unknown). Used by the multi-client driver to reconcile shared-block
  // takes by other clients before processing an access.
  std::size_t level_of(BlockId block) const;
  bool in_temp(BlockId block) const { return temp_index_.contains(block); }

  // Structural invariant validation (tests): stack consistency + capacities.
  bool check_consistency() const;

 private:
  std::vector<std::size_t> capacities_;
  std::size_t first_elastic_ = kLevelOut;
  std::vector<bool> elastic_full_;
  std::size_t temp_capacity_ = 0;

  UniLruStack stack_;
  UlcAccess out_;
  UlcStats stats_;

  // Client tempLRU (paper footnote 3): slab-backed intrusive LRU of the
  // blocks passing through the client uncached. Tiny (temp_capacity_ <=
  // a few buffers), but on the per-reference path, so it shares the
  // arena/FlatMap storage model of the main stack.
  struct TempNode {
    BlockId block = 0;
    SlabHandle prev = kNullHandle;
    SlabHandle next = kNullHandle;
  };
  Slab<TempNode> temp_slab_;
  SlabList<TempNode> temp_lru_{&temp_slab_};  // front = most recent
  FlatMap<BlockId, SlabHandle> temp_index_;

  bool is_elastic(std::size_t level) const { return level >= first_elastic_; }
  bool level_has_room(std::size_t level, SizeUnits size) const;
  std::size_t first_level_with_room(SizeUnits size) const;  // kLevelOut if none
  // First level >= from whose byte budget could ever hold `size` (elastic
  // levels always qualify); kLevelOut if none. The size-aware leg of the
  // yardstick placement rule.
  std::size_t first_feasible_level(std::size_t from, SizeUnits size) const;
  bool level_overflowed(std::size_t level) const;
  void run_demotion_cascade(std::size_t start_level);
  void touch_temp(BlockId block, bool cached_at_client);
};

}  // namespace ulc
