// uniLRUstack — the client-side metadata structure of the ULC protocol
// (paper §3.2, Figure 4).
//
// One node per recently-referenced block, ordered by recency (head = most
// recent). Each node carries the block's *level status*: the cache level the
// block is cached at (kLevelOut = not cached anywhere). Per cache level the
// stack tracks the *yardstick* Y_i — the level-L_i block with maximal
// recency, i.e. the bottom of the conceptual per-level stack LRU_i and the
// replacement victim of level i.
//
// Instead of storing the paper's per-block recency status R_i and updating
// it on every YardStickAdjustment pass, each node stores a monotone access
// sequence number; stack order is descending sequence, so
//   recency status of x  =  min { i : seq(x) >= seq(Y_i) }
// is computed in O(#levels) with no per-pass bookkeeping. This is exactly
// the paper's R_i whenever the yardsticks are stack-ordered (the steady
// state) and remains well defined in warm-up transients where they are not.
// YardStickAdjustment survives as the upward walk that locates the next
// level-L_i block when Y_i is demoted, evicted or re-referenced, and
// DemotionSearching as the O(1) sequence comparison that decides whether a
// demoted block becomes its new level's yardstick.
//
// Storage (DESIGN.md §8): nodes live in a paged Slab<Node> arena and link to
// each other through 32-bit slab handles; the block-id index is an
// open-addressing FlatMap. Slab pages never move, so the Node* values handed
// out by find()/head()/yard() stay valid for the node's whole residency —
// across any number of later push_top() calls — and the public API keeps its
// pointer shape. Neighbour navigation goes through next(n)/prev(n) (the
// handle⇄pointer accessors) because the links themselves are handles now.
//
// Only metadata lives here (the paper's ~17 bytes/block); block contents are
// never simulated.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/types.h"
#include "util/flat_hash.h"
#include "util/slab.h"

namespace ulc {

// Level indices are 0-based in code (paper's L1 = level 0).
inline constexpr std::size_t kLevelOut = static_cast<std::size_t>(-1);

class UniLruStack {
 public:
  // Deliberately initializer-free (trivially default-constructible): the
  // slab then hands out raw pages instead of memsetting them, and alloc()
  // assigns every field before a node is ever linked or indexed.
  struct Node {
    BlockId block;       // key
    std::uint64_t seq;   // last-access sequence; stack order = descending
    SizeUnits size;      // block size in SizeUnits (id-stable)
    std::size_t level;   // level status; kLevelOut = uncached
    SlabHandle prev;     // towards head (more recent)
    SlabHandle next;     // towards tail (less recent)
    SlabHandle self;     // this node's own slab handle
  };

  explicit UniLruStack(std::size_t levels);

  UniLruStack(const UniLruStack&) = delete;
  UniLruStack& operator=(const UniLruStack&) = delete;

  std::size_t levels() const { return level_count_.size(); }

  // Pre-sizes the block index and the node arena so `blocks` concurrent
  // residents never rehash the index or carve a page mid-run.
  void reserve(std::size_t blocks);

  // Lookup; nullptr if the block is not in the stack.
  Node* find(BlockId block);
  const Node* find(BlockId block) const;

  // Prefetch stage 1: pull the block's index hash group toward the cache,
  // plus the arena slot a cold insert would claim (cold pushes write a
  // whole fresh node). Pure prefetch instructions — never stalls, never
  // mutates. (The stack tail is deliberately NOT prefetched: prune() walks
  // it on every access, so it is already resident.)
  void prefetch_index(BlockId block) const {
    index_.prefetch(block);
    slab_.prefetch_next_alloc();
  }

  // Inserts an absent block at the stack top with the given level status
  // and size (charged to the level's byte occupancy).
  Node* push_top(BlockId block, std::size_t level, SizeUnits size = 1);

  // Moves a present node to the stack top (fresh sequence number). The
  // node's level status is unchanged; yardsticks are NOT adjusted (callers
  // fix the yardstick of n->level first via yardstick_departure()).
  void move_to_top(Node* n);

  // Changes a node's level status, maintaining per-level counts and
  // yardsticks (DemotionSearching: the node becomes the new yardstick of
  // `to` iff it is deeper than the current one). The *old* level's yardstick
  // must already have been fixed via yardstick_departure() if n was it.
  void set_level(Node* n, std::size_t to);

  // To be called when node `n` (currently holding level status `n->level`,
  // a real level) is about to leave that level (re-reference, demotion or
  // external eviction): if n is that level's yardstick, walks up from n to
  // the next node of the same level (the paper's YardStickAdjustment).
  // After this call yard(n->level) no longer points at n.
  void yardstick_departure(Node* n);

  // Removes a node from the stack entirely (its level must be kLevelOut).
  void remove(Node* n);

  // Drops kLevelOut nodes from the stack tail that lie below every
  // yardstick (they could never be re-ranked into a cache level), then lets
  // the slab hand emptied trailing pages back (bounded hysteresis; see
  // Slab::release_free_pages). Returns the number of nodes removed.
  std::size_t prune();

  // The paper's recency status, generalized: smallest level i whose
  // yardstick Y_i is at or below n (seq(n) >= seq(Y_i)); kLevelOut if none.
  std::size_t recency_status(const Node* n) const;

  Node* yard(std::size_t level) const { return ptr(yard_[level]); }
  std::size_t level_size(std::size_t level) const { return level_count_[level]; }
  // Byte occupancy of a level, in SizeUnits (== level_size at unit size).
  std::uint64_t level_bytes(std::size_t level) const { return level_bytes_[level]; }
  std::size_t stack_size() const { return index_.size(); }

  Node* head() const { return ptr(head_); }
  Node* tail() const { return ptr(tail_); }

  // Neighbour accessors (stack order): next = towards the tail (less
  // recent), prev = towards the head. nullptr past either end.
  Node* next(const Node* n) const { return ptr(n->next); }
  Node* prev(const Node* n) const { return ptr(n->prev); }

  // Arena footprint introspection (tests, throughput bench).
  std::size_t slab_pages() const { return slab_.page_count(); }
  const Slab<Node>::Stats& slab_stats() const { return slab_.stats(); }
  std::size_t index_buckets() const { return index_.bucket_count(); }
  std::uint64_t index_rehashes() const { return index_.rehashes(); }

  // O(n) validation of all structural invariants (DESIGN.md I1-I5, in their
  // transient-tolerant form); used by tests and debug checks. Capacities are
  // byte budgets: I4 checks level_bytes(i) <= capacities[i].
  bool check_consistency(const std::vector<std::size_t>* capacities = nullptr) const;

 private:
  std::vector<SlabHandle> yard_;
  // Shadow of the yardstick nodes' sequence numbers (valid where yard_ is
  // non-null). prune() and recency_status() run on every reference and only
  // need the seqs; reading them from this contiguous array instead of
  // chasing yard_ handles into the slab saves up to `levels` dependent
  // (frequently cache-missing) loads per access.
  std::vector<std::uint64_t> yard_seq_;
  std::vector<std::size_t> level_count_;
  std::vector<std::uint64_t> level_bytes_;
  SlabHandle head_ = kNullHandle;
  SlabHandle tail_ = kNullHandle;
  std::uint64_t next_seq_ = 1;
  mutable Slab<Node> slab_;
  FlatMap<BlockId, SlabHandle> index_;

  Node* ptr(SlabHandle h) const {
    return h == kNullHandle ? nullptr : slab_.get(h);
  }

  void unlink(Node* n);
  void link_front(Node* n);
  Node* alloc(BlockId block);
};

}  // namespace ulc
