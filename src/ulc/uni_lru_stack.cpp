#include "ulc/uni_lru_stack.h"

#include "util/ensure.h"

namespace ulc {

UniLruStack::UniLruStack(std::size_t levels)
    : yard_(levels, kNullHandle),
      yard_seq_(levels, 0),
      level_count_(levels, 0),
      level_bytes_(levels, 0) {
  ULC_REQUIRE(levels >= 1, "need at least one cache level");
}

void UniLruStack::reserve(std::size_t blocks) {
  index_.reserve(blocks);
  slab_.reserve(blocks);
}

UniLruStack::Node* UniLruStack::alloc(BlockId block) {
  const SlabHandle h = slab_.alloc();
  Node* n = slab_.get(h);
  n->block = block;
  n->level = kLevelOut;
  n->seq = 0;
  n->size = 1;
  n->prev = n->next = kNullHandle;
  n->self = h;
  return n;
}

void UniLruStack::unlink(Node* n) {
  if (n->prev != kNullHandle)
    slab_[n->prev].next = n->next;
  else
    head_ = n->next;
  if (n->next != kNullHandle)
    slab_[n->next].prev = n->prev;
  else
    tail_ = n->prev;
  n->prev = n->next = kNullHandle;
}

void UniLruStack::link_front(Node* n) {
  n->prev = kNullHandle;
  n->next = head_;
  if (head_ != kNullHandle) slab_[head_].prev = n->self;
  head_ = n->self;
  if (tail_ == kNullHandle) tail_ = n->self;
}

UniLruStack::Node* UniLruStack::find(BlockId block) {
  const SlabHandle* h = index_.find(block);
  return h == nullptr ? nullptr : slab_.get(*h);
}

const UniLruStack::Node* UniLruStack::find(BlockId block) const {
  const SlabHandle* h = index_.find(block);
  return h == nullptr ? nullptr : slab_.get(*h);
}

UniLruStack::Node* UniLruStack::push_top(BlockId block, std::size_t level,
                                         SizeUnits size) {
  ULC_REQUIRE(size >= 1, "block size must be at least one unit");
  Node* n = alloc(block);
  n->seq = next_seq_++;
  n->size = size;
  link_front(n);
  // insert_new REQUIREs absence internally, so presence is still rejected —
  // without a second full probe of the same key on every cold access.
  index_.insert_new(block, n->self);
  n->level = kLevelOut;
  if (level != kLevelOut) set_level(n, level);
  return n;
}

void UniLruStack::move_to_top(Node* n) {
  ULC_REQUIRE(n != nullptr, "move_to_top of null node");
  ULC_ENSURE(n->level == kLevelOut || yard_[n->level] != n->self ||
                 level_count_[n->level] == 1,
             "yardstick_departure must run before moving a yardstick "
             "(unless it is its level's only block)");
  unlink(n);
  n->seq = next_seq_++;
  link_front(n);
  // The exceptional case the ENSURE above admits: a level's only block is
  // its own yardstick and may move without a departure; its refreshed seq
  // must reach the shadow.
  if (n->level != kLevelOut && yard_[n->level] == n->self)
    yard_seq_[n->level] = n->seq;
}

void UniLruStack::set_level(Node* n, std::size_t to) {
  ULC_REQUIRE(n != nullptr, "set_level of null node");
  const std::size_t from = n->level;
  if (from == to) return;
  if (from != kLevelOut) {
    ULC_ENSURE(yard_[from] != n->self,
               "yardstick_departure must run before set_level");
    --level_count_[from];
    level_bytes_[from] -= n->size;
  }
  n->level = to;
  if (to != kLevelOut) {
    ++level_count_[to];
    level_bytes_[to] += n->size;
    // DemotionSearching, O(1): the node is the new yardstick iff it is the
    // deepest (smallest-sequence) block of its new level.
    if (yard_[to] == kNullHandle || n->seq < yard_seq_[to]) {
      yard_[to] = n->self;
      yard_seq_[to] = n->seq;
    }
  }
}

void UniLruStack::yardstick_departure(Node* n) {
  ULC_REQUIRE(n != nullptr && n->level != kLevelOut,
              "yardstick_departure needs a cached node");
  const std::size_t level = n->level;
  if (yard_[level] != n->self) return;
  if (level_count_[level] == 1) {
    yard_[level] = kNullHandle;
    return;
  }
  // YardStickAdjustment: walk towards the stack top to the next block with
  // the same level status. It must exist: every level-L block sits at or
  // above Y_L by construction (I2).
  Node* p = ptr(n->prev);
  while (p != nullptr && p->level != level) p = ptr(p->prev);
  ULC_ENSURE(p != nullptr, "no other block of a level with count >= 2 found above");
  yard_[level] = p->self;
  yard_seq_[level] = p->seq;
}

void UniLruStack::remove(Node* n) {
  ULC_REQUIRE(n != nullptr, "remove of null node");
  ULC_REQUIRE(n->level == kLevelOut, "only uncached nodes may be removed");
  index_.erase(n->block);
  unlink(n);
  slab_.free(n->self);
}

std::size_t UniLruStack::prune() {
  // Deepest yardstick = the smallest yardstick sequence number (read from
  // the contiguous shadow; no slab derefs on this per-access path).
  std::uint64_t min_seq = 0;
  bool have = false;
  for (std::size_t i = 0; i < yard_.size(); ++i) {
    if (yard_[i] == kNullHandle) continue;
    if (!have || yard_seq_[i] < min_seq) {
      min_seq = yard_seq_[i];
      have = true;
    }
  }
  std::size_t removed = 0;
  while (tail_ != kNullHandle) {
    Node* n = slab_.get(tail_);
    if (n->level != kLevelOut || (have && n->seq >= min_seq)) break;
    index_.erase(n->block);
    unlink(n);
    slab_.free(n->self);
    ++removed;
  }
  // Hand fully-emptied trailing pages back under the slab's hysteresis
  // band; live nodes are untouched (pages never move), so every Node* a
  // caller still holds stays valid.
  if (removed > 0) slab_.release_free_pages();
  return removed;
}

std::size_t UniLruStack::recency_status(const Node* n) const {
  ULC_REQUIRE(n != nullptr, "recency_status of null node");
  for (std::size_t i = 0; i < yard_.size(); ++i) {
    if (yard_[i] != kNullHandle && n->seq >= yard_seq_[i]) return i;
  }
  return kLevelOut;
}

bool UniLruStack::check_consistency(
    const std::vector<std::size_t>* capacities) const {
  std::vector<std::size_t> counts(level_count_.size(), 0);
  std::vector<std::uint64_t> bytes(level_count_.size(), 0);
  std::vector<SlabHandle> deepest(level_count_.size(), kNullHandle);
  std::size_t seen = 0;
  std::uint64_t prev_seq = ~0ULL;
  SlabHandle prev = kNullHandle;
  for (SlabHandle h = head_; h != kNullHandle; h = slab_[h].next) {
    const Node& n = slab_[h];
    if (n.prev != prev) return false;
    if (n.self != h) return false;  // handle <-> node self-link agreement
    if (n.seq >= prev_seq) return false;  // strictly descending
    if (n.size < 1) return false;
    prev_seq = n.seq;
    const SlabHandle* idx = index_.find(n.block);
    if (idx == nullptr || *idx != h) return false;
    if (n.level != kLevelOut) {
      if (n.level >= counts.size()) return false;
      ++counts[n.level];
      bytes[n.level] += n.size;
      deepest[n.level] = h;  // last seen = deepest
    }
    ++seen;
    prev = h;
  }
  if (prev != tail_) return false;
  if (seen != index_.size()) return false;
  if (seen != slab_.live()) return false;  // no leaked slab slots
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] != level_count_[i]) return false;
    if (bytes[i] != level_bytes_[i]) return false;
    if (yard_[i] != deepest[i]) return false;  // I3: yardstick = deepest
    // The seq shadow must agree with the node it mirrors.
    if (yard_[i] != kNullHandle && yard_seq_[i] != slab_[yard_[i]].seq)
      return false;
    if (capacities && bytes[i] > (*capacities)[i]) return false;  // I4 (bytes)
  }
  return true;
}

}  // namespace ulc
