#include "ulc/uni_lru_stack.h"

#include "util/ensure.h"

namespace ulc {

UniLruStack::UniLruStack(std::size_t levels)
    : yard_(levels, nullptr), level_count_(levels, 0) {
  ULC_REQUIRE(levels >= 1, "need at least one cache level");
}

UniLruStack::~UniLruStack() {
  Node* n = head_;
  while (n) {
    Node* next = n->next;
    delete n;
    n = next;
  }
  n = free_list_;
  while (n) {
    Node* next = n->next;
    delete n;
    n = next;
  }
}

UniLruStack::Node* UniLruStack::alloc(BlockId block) {
  Node* n;
  if (free_list_) {
    n = free_list_;
    free_list_ = n->next;
  } else {
    n = new Node();
  }
  n->block = block;
  n->level = kLevelOut;
  n->seq = 0;
  n->prev = n->next = nullptr;
  return n;
}

void UniLruStack::free_node(Node* n) {
  n->next = free_list_;
  free_list_ = n;
}

void UniLruStack::unlink(Node* n) {
  if (n->prev)
    n->prev->next = n->next;
  else
    head_ = n->next;
  if (n->next)
    n->next->prev = n->prev;
  else
    tail_ = n->prev;
  n->prev = n->next = nullptr;
}

void UniLruStack::link_front(Node* n) {
  n->prev = nullptr;
  n->next = head_;
  if (head_) head_->prev = n;
  head_ = n;
  if (!tail_) tail_ = n;
}

UniLruStack::Node* UniLruStack::find(BlockId block) {
  auto it = index_.find(block);
  return it == index_.end() ? nullptr : it->second;
}

const UniLruStack::Node* UniLruStack::find(BlockId block) const {
  auto it = index_.find(block);
  return it == index_.end() ? nullptr : it->second;
}

UniLruStack::Node* UniLruStack::push_top(BlockId block, std::size_t level) {
  ULC_REQUIRE(index_.find(block) == index_.end(), "push_top of present block");
  Node* n = alloc(block);
  n->seq = next_seq_++;
  link_front(n);
  index_.emplace(block, n);
  n->level = kLevelOut;
  if (level != kLevelOut) set_level(n, level);
  return n;
}

void UniLruStack::move_to_top(Node* n) {
  ULC_REQUIRE(n != nullptr, "move_to_top of null node");
  ULC_ENSURE(n->level == kLevelOut || yard_[n->level] != n || level_count_[n->level] == 1,
             "yardstick_departure must run before moving a yardstick "
             "(unless it is its level's only block)");
  unlink(n);
  n->seq = next_seq_++;
  link_front(n);
}

void UniLruStack::set_level(Node* n, std::size_t to) {
  ULC_REQUIRE(n != nullptr, "set_level of null node");
  const std::size_t from = n->level;
  if (from == to) return;
  if (from != kLevelOut) {
    ULC_ENSURE(yard_[from] != n, "yardstick_departure must run before set_level");
    --level_count_[from];
  }
  n->level = to;
  if (to != kLevelOut) {
    ++level_count_[to];
    // DemotionSearching, O(1): the node is the new yardstick iff it is the
    // deepest (smallest-sequence) block of its new level.
    if (yard_[to] == nullptr || n->seq < yard_[to]->seq) yard_[to] = n;
  }
}

void UniLruStack::yardstick_departure(Node* n) {
  ULC_REQUIRE(n != nullptr && n->level != kLevelOut,
              "yardstick_departure needs a cached node");
  const std::size_t level = n->level;
  if (yard_[level] != n) return;
  if (level_count_[level] == 1) {
    yard_[level] = nullptr;
    return;
  }
  // YardStickAdjustment: walk towards the stack top to the next block with
  // the same level status. It must exist: every level-L block sits at or
  // above Y_L by construction (I2).
  Node* p = n->prev;
  while (p && p->level != level) p = p->prev;
  ULC_ENSURE(p != nullptr, "no other block of a level with count >= 2 found above");
  yard_[level] = p;
}

void UniLruStack::remove(Node* n) {
  ULC_REQUIRE(n != nullptr, "remove of null node");
  ULC_REQUIRE(n->level == kLevelOut, "only uncached nodes may be removed");
  index_.erase(n->block);
  unlink(n);
  free_node(n);
}

std::size_t UniLruStack::prune() {
  // Deepest yardstick = the smallest yardstick sequence number.
  std::uint64_t min_seq = 0;
  bool have = false;
  for (const Node* y : yard_) {
    if (y && (!have || y->seq < min_seq)) {
      min_seq = y->seq;
      have = true;
    }
  }
  std::size_t removed = 0;
  while (tail_ && tail_->level == kLevelOut && (!have || tail_->seq < min_seq)) {
    Node* n = tail_;
    index_.erase(n->block);
    unlink(n);
    free_node(n);
    ++removed;
  }
  return removed;
}

std::size_t UniLruStack::recency_status(const Node* n) const {
  ULC_REQUIRE(n != nullptr, "recency_status of null node");
  for (std::size_t i = 0; i < yard_.size(); ++i) {
    if (yard_[i] && n->seq >= yard_[i]->seq) return i;
  }
  return kLevelOut;
}

bool UniLruStack::check_consistency(
    const std::vector<std::size_t>* capacities) const {
  std::vector<std::size_t> counts(level_count_.size(), 0);
  std::vector<const Node*> deepest(level_count_.size(), nullptr);
  std::size_t seen = 0;
  std::uint64_t prev_seq = ~0ULL;
  const Node* prev = nullptr;
  for (const Node* n = head_; n; n = n->next) {
    if (n->prev != prev) return false;
    if (n->seq >= prev_seq) return false;  // strictly descending
    prev_seq = n->seq;
    auto it = index_.find(n->block);
    if (it == index_.end() || it->second != n) return false;
    if (n->level != kLevelOut) {
      if (n->level >= counts.size()) return false;
      ++counts[n->level];
      deepest[n->level] = n;  // last seen = deepest
    }
    ++seen;
    prev = n;
  }
  if (prev != tail_) return false;
  if (seen != index_.size()) return false;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] != level_count_[i]) return false;
    if (yard_[i] != deepest[i]) return false;  // I3: yardstick = deepest
    if (capacities && counts[i] > (*capacities)[i]) return false;  // I4
  }
  return true;
}

}  // namespace ulc
