#include "ulc/ulc_client.h"

#include <algorithm>

#include "util/ensure.h"

namespace ulc {

UlcClient::UlcClient(const UlcConfig& config)
    : capacities_(config.capacities),
      first_elastic_(config.first_elastic_level),
      temp_capacity_(config.temp_capacity),
      stack_(config.capacities.size()) {
  ULC_REQUIRE(!capacities_.empty(), "ULC needs at least one level");
  if (config.last_level_elastic)
    first_elastic_ = std::min(first_elastic_, capacities_.size() - 1);
  ULC_REQUIRE(first_elastic_ >= 1, "the client cache itself cannot be elastic");
  elastic_full_.assign(capacities_.size(), false);
  for (std::size_t i = 0; i < capacities_.size(); ++i) {
    ULC_REQUIRE(capacities_[i] >= 1 || is_elastic(i),
                "level capacity must be >= 1");
  }
  stats_.level_hits.assign(capacities_.size(), 0);
  if (temp_capacity_ > 0) {
    // Sized once up front: the tempLRU never rehashes or carves pages while
    // references are being measured.
    temp_index_.reserve(temp_capacity_ + 1);
    temp_slab_.reserve(temp_capacity_ + 1);
  }
  // Non-emptiness is guaranteed by the ULC_REQUIRE above; boundary i covers
  // demotions crossing link i, so a single-level hierarchy has none and its
  // cascade only takes the kLevelOut discard path (which never indexes here).
  stats_.demotions.assign(capacities_.size() - 1, 0);
  stats_.demoted_units.assign(capacities_.size() - 1, 0);
  // Pre-size the stack to the largest fixed level's budget: a conservative
  // floor on the steady-state stack population (the full stack approaches
  // the *sum* of the levels, so this floor never overshoots the footprint
  // organic growth would reach) that moves the index's early growth-rehash
  // chain and the arena's page carving off the measured path. Capped so a
  // huge byte budget (units >> blocks) cannot pre-carve an absurd arena;
  // past the floor both structures still grow organically.
  std::uint64_t floor_units = 0;
  for (std::size_t i = 0; i < capacities_.size(); ++i)
    if (!is_elastic(i))
      floor_units = std::max<std::uint64_t>(floor_units, capacities_[i]);
  constexpr std::uint64_t kReserveCap = std::uint64_t{1} << 20;
  if (floor_units > 0)
    stack_.reserve(static_cast<std::size_t>(std::min(floor_units, kReserveCap)));
}

bool UlcClient::level_has_room(std::size_t level, SizeUnits size) const {
  if (is_elastic(level)) return !elastic_full_[level];
  return stack_.level_bytes(level) + size <= capacities_[level];
}

std::size_t UlcClient::first_level_with_room(SizeUnits size) const {
  for (std::size_t i = 0; i < capacities_.size(); ++i) {
    if (level_has_room(i, size)) return i;
  }
  return kLevelOut;
}

std::size_t UlcClient::first_feasible_level(std::size_t from,
                                            SizeUnits size) const {
  for (std::size_t i = from; i < capacities_.size(); ++i) {
    if (is_elastic(i) || size <= capacities_[i]) return i;
  }
  return kLevelOut;
}

bool UlcClient::level_overflowed(std::size_t level) const {
  if (is_elastic(level)) return false;  // the shared level's server decides
  return stack_.level_bytes(level) > capacities_[level];
}

void UlcClient::set_elastic_full(bool full) {
  for (std::size_t i = 0; i < capacities_.size(); ++i) {
    if (is_elastic(i)) elastic_full_[i] = full;
  }
}

void UlcClient::set_elastic_full(std::size_t level, bool full) {
  ULC_REQUIRE(level < capacities_.size() && is_elastic(level),
              "set_elastic_full on a non-elastic level");
  elastic_full_[level] = full;
}

void UlcClient::run_demotion_cascade(std::size_t start_level) {
  // Frees the slot taken by a placement at start_level by demoting each
  // overflowing level's yardstick one level down; stops at the first level
  // with room (at the latest, the level the accessed block vacated, or the
  // elastic server level).
  //
  // When the block just demoted into level k+1 is immediately level k+1's
  // replacement victim (its recency is worse than every resident there), the
  // two steps collapse into one Demote(b, k, k+2)-style command — the
  // paper's Demote(b, i, j) allows arbitrary i < j — so the block is shipped
  // once to its final destination; if that destination is "out", it is
  // simply discarded at its original level with no transfer at all.
  UniLruStack::Node* inflight = nullptr;
  std::size_t inflight_cmd = 0;  // index of inflight's DemoteCmd
  for (std::size_t k = start_level; k < capacities_.size(); ++k) {
    if (!level_overflowed(k)) break;
    // A sized placement can overflow a level by more than one block's worth,
    // so each level demotes yardsticks until its byte budget holds again (at
    // unit size: at most one victim per level, the classic cascade).
    while (level_overflowed(k)) {
      UniLruStack::Node* victim = stack_.yard(k);
      ULC_ENSURE(victim != nullptr, "overflowing level must have a yardstick");
      stack_.yardstick_departure(victim);
      const std::size_t next = (k + 1 < capacities_.size()) ? k + 1 : kLevelOut;
      stack_.set_level(victim, next);
      if (victim == inflight) {
        out_.demotions[inflight_cmd].to = next;  // extend the in-flight demotion
      } else {
        out_.demotions.push_back(DemoteCmd{victim->block, k, next, victim->size});
        inflight_cmd = out_.demotions.size() - 1;
      }
      inflight = (next == kLevelOut) ? nullptr : victim;
      if (next == kLevelOut) ++stats_.evictions;
    }
  }
  // Account block transfers: a demote from f to t crosses links f..t-1; a
  // demote to "out" is a local discard (no transfer).
  for (const DemoteCmd& d : out_.demotions) {
    if (d.to == kLevelOut) continue;
    for (std::size_t k = d.from; k < d.to; ++k) {
      ++stats_.demotions[k];
      stats_.demoted_units[k] += d.size;
    }
  }
}

const UlcAccess& UlcClient::access(BlockId block, SizeUnits size) {
  ULC_REQUIRE(size >= 1, "block size must be at least one unit");
  ++stats_.references;
  out_.hit_level = kLevelOut;
  out_.temp_hit = false;
  out_.placed_level = kLevelOut;
  out_.demotions.clear();

  if (temp_capacity_ > 0) {
    const SlabHandle* h = temp_index_.find(block);
    if (h != nullptr) {
      out_.temp_hit = true;
      ++stats_.temp_hits;
      temp_lru_.erase(*h);
      temp_slab_.free(*h);
      temp_index_.erase(block);
    }
  }

  UniLruStack::Node* n = stack_.find(block);
  if (n == nullptr) {
    // Cold (or long-ago-pruned) block: fill the first level with byte room,
    // or stay uncached when the whole hierarchy is full (paper §3.2.1). A
    // block larger than every level's budget is never cached.
    const std::size_t fill = first_level_with_room(size);
    n = stack_.push_top(block, fill, size);
    if (!out_.temp_hit) ++stats_.misses;
    out_.placed_level = fill;
    out_.retrieve = RetrieveCmd{block, kLevelOut, fill, size};
    stack_.prune();
    touch_temp(block, fill == 0);
    return out_;
  }

  const std::size_t i = n->level;
  const std::size_t r = stack_.recency_status(n);

  // Serve the block from where it is cached.
  if (i != kLevelOut) {
    out_.hit_level = i;
    ++stats_.level_hits[i];
  } else if (!out_.temp_hit) {
    ++stats_.misses;
  }

  // Placement level: its recency status (= its LLD band), weighed by size —
  // a band whose byte budget could never hold the block is skipped deeper
  // (it resides at i, so the search stops by i at the latest) — falling
  // back to the first level with room during warm-up, else uncached.
  std::size_t j = r;
  if (j != kLevelOut) j = first_feasible_level(j, n->size);
  if (j == kLevelOut) j = first_level_with_room(n->size);
  ULC_ENSURE(i == kLevelOut || j == kLevelOut || j <= i,
             "recency status deeper than level status (paper: i < j impossible)");

  if (j == i) {
    // Retrieve(b, i, i): stays where it is (or stays uncached).
    if (i != kLevelOut && stack_.level_size(i) > 1) stack_.yardstick_departure(n);
    stack_.move_to_top(n);
    out_.retrieve = RetrieveCmd{block, i, i, n->size};
    out_.placed_level = i;
  } else {
    // Retrieve(b, i, j), j < i (or i = out): move b to level j and free
    // room there via the demotion cascade.
    if (i != kLevelOut) stack_.yardstick_departure(n);
    stack_.move_to_top(n);
    stack_.set_level(n, j);
    out_.retrieve = RetrieveCmd{block, i, j, n->size};
    out_.placed_level = j;
    if (j != kLevelOut) run_demotion_cascade(j);
  }
  stack_.prune();
  touch_temp(block, out_.placed_level == 0);
  return out_;
}

void UlcClient::external_evict(BlockId block) {
  UniLruStack::Node* n = stack_.find(block);
  ULC_REQUIRE(n != nullptr && n->level != kLevelOut && is_elastic(n->level),
              "server evicted a block this client does not hold at a shared level");
  ++stats_.external_evictions;
  stack_.yardstick_departure(n);
  stack_.set_level(n, kLevelOut);
  stack_.prune();
}

bool UlcClient::resync_evict(BlockId block, std::size_t level) {
  UniLruStack::Node* n = stack_.find(block);
  if (n == nullptr || n->level != level || level == kLevelOut) return false;
  ++stats_.resync_drops;
  stack_.yardstick_departure(n);
  stack_.set_level(n, kLevelOut);
  stack_.prune();
  return true;
}

std::size_t UlcClient::resync_wipe_level(std::size_t level,
                                         std::vector<BlockId>* dropped) {
  ULC_REQUIRE(level != kLevelOut && level < capacities_.size(),
              "resync wipe needs a real cache level");
  std::vector<UniLruStack::Node*> victims;
  for (UniLruStack::Node* n = stack_.head(); n != nullptr; n = stack_.next(n)) {
    if (n->level == level) victims.push_back(n);
  }
  for (UniLruStack::Node* n : victims) {
    if (dropped != nullptr) dropped->push_back(n->block);
    stack_.yardstick_departure(n);
    stack_.set_level(n, kLevelOut);
  }
  stack_.prune();
  stats_.resync_drops += victims.size();
  return victims.size();
}

void UlcClient::external_demote(BlockId block) {
  UniLruStack::Node* n = stack_.find(block);
  ULC_REQUIRE(n != nullptr && n->level != kLevelOut && is_elastic(n->level),
              "server demoted a block this client does not hold at a shared level");
  ULC_REQUIRE(n->level + 1 < capacities_.size(),
              "cannot externally demote below the bottom level");
  stack_.yardstick_departure(n);
  stack_.set_level(n, n->level + 1);
  stack_.prune();
}

void UlcClient::touch_temp(BlockId block, bool cached_at_client) {
  if (temp_capacity_ == 0 || cached_at_client) return;
  // The block passed through the client without being cached at L1; it sits
  // in the small tempLRU until pushed out (paper footnote 3).
  const SlabHandle* existing = temp_index_.find(block);
  if (existing != nullptr) {
    temp_lru_.move_front(*existing);
    return;
  }
  const SlabHandle h = temp_slab_.alloc();
  temp_slab_[h].block = block;
  temp_lru_.push_front(h);
  temp_index_.insert_new(block, h);
  if (temp_lru_.size() > temp_capacity_) {
    const SlabHandle victim = temp_lru_.back();
    temp_index_.erase(temp_slab_[victim].block);
    temp_lru_.erase(victim);
    temp_slab_.free(victim);
  }
}

bool UlcClient::is_cached(BlockId block) const {
  const UniLruStack::Node* n = stack_.find(block);
  return n != nullptr && n->level != kLevelOut;
}

std::size_t UlcClient::level_of(BlockId block) const {
  const UniLruStack::Node* n = stack_.find(block);
  return n == nullptr ? kLevelOut : n->level;
}

bool UlcClient::check_consistency() const {
  std::vector<std::size_t> caps = capacities_;
  for (std::size_t i = 0; i < caps.size(); ++i) {
    if (is_elastic(i)) caps[i] = static_cast<std::size_t>(-1);
  }
  return stack_.check_consistency(&caps);
}

}  // namespace ulc
