// The shared-server side of the multi-client ULC protocol (paper §3.2.2).
//
// The server's buffers are allocated among clients by a global LRU stack,
// gLRU, ordered by the times clients last *required a block be cached* here
// (placements and Retrieve(b, s, s) refreshes — not plain pass-through
// reads). Each buffer records its owner: the client that most recently
// directed the block here. When a placement overflows the cache, the gLRU
// bottom is replaced and its owner must be told so it can shrink its view
// of its server share (yardstick adjustment); the notice is delayed and
// piggybacked on the next block retrieved by that owner.
//
// Storage: slab-backed intrusive LRU (util/slab.h) with a FlatMap block
// index, sized to capacity at construction — the per-placement path never
// touches the allocator or rehashes (DESIGN.md §8).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/types.h"
#include "util/flat_hash.h"
#include "util/slab.h"

namespace ulc {

class GlruServer {
 public:
  explicit GlruServer(std::size_t capacity);

  struct Victim {
    BlockId block = 0;
    ClientId owner = 0;
    SizeUnits size = 1;  // the victim's footprint (migrations reuse it)
  };

  struct PlaceResult {
    bool evicted = false;
    BlockId victim = 0;        // first victim (the only one at unit size)
    ClientId victim_owner = 0;
    SizeUnits victim_size = 1;
    // Victims after the first: a sized placement can replace several gLRU
    // bottoms at once. Empty at unit size (no allocation on that path).
    std::vector<Victim> more;
    // false: the block is larger than the whole server budget and was not
    // cached (nothing was evicted for it).
    bool admitted = true;

    std::size_t count() const {
      return (evicted ? 1 : 0) + more.size();
    }
    template <typename Fn>
    void for_each(Fn&& fn) const {
      if (evicted) fn(Victim{victim, victim_owner, victim_size});
      for (const Victim& v : more) fn(v);
    }
  };

  // Client `owner` directs `block` of `size` units to be cached here (a
  // fresh placement or a Demote(b, 1, 2)). If the block is already cached —
  // a shared block directed here by another client — its recency and owner
  // are refreshed (it keeps its original size). Otherwise gLRU bottoms are
  // replaced until the newcomer's bytes fit.
  PlaceResult place(BlockId block, ClientId owner, SizeUnits size = 1);

  // Retrieve(b, server, server): serve the block, keeping it cached;
  // refreshes gLRU recency and ownership. Returns false if absent.
  bool refresh(BlockId block, ClientId owner);

  // Retrieve(b, server, client-level): serve the block and drop the server
  // copy (the client now caches it; exclusive layout). Returns false if
  // absent.
  bool take(BlockId block);

  bool contains(BlockId block) const { return index_.contains(block); }
  // Stage-1 prefetch of the block's index group (non-mutating, never stalls).
  void prefetch(BlockId block) const { index_.prefetch(block); }
  // Owner of a cached block; block must be present.
  ClientId owner_of(BlockId block) const;

  std::size_t size() const { return lru_.size(); }
  std::uint64_t used_bytes() const { return used_; }
  std::size_t capacity() const { return capacity_; }
  bool full() const { return used_ >= capacity_; }

  // Number of blocks currently owned by `client`.
  std::size_t owned_by(ClientId client) const;

  // Fault recovery: the server restarted empty. Drops everything, appending
  // the dropped blocks (most- to least-recently directed) to `dropped` if
  // given. Returns the number of blocks dropped.
  std::size_t wipe(std::vector<BlockId>* dropped = nullptr);

  bool check_consistency() const;

 private:
  struct Entry {
    BlockId block = 0;
    ClientId owner = 0;
    SizeUnits size = 1;
    SlabHandle prev = kNullHandle;
    SlabHandle next = kNullHandle;
  };

  std::size_t capacity_;      // byte budget, in SizeUnits
  std::uint64_t used_ = 0;    // resident bytes
  Slab<Entry> slab_;
  SlabList<Entry> lru_{&slab_};  // front = most recently directed
  FlatMap<BlockId, SlabHandle> index_;
};

}  // namespace ulc
