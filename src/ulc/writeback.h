// The write-back contract between a cache hierarchy and durable storage.
//
// Dirty blocks never simply vanish: when one leaves a level (eviction,
// demotion to "out", discard), the scheme reports it to a WritebackSink
// before dropping the cached copy. The sink owns the durability story —
// the concrete journal in proto/journal.h stamps entries with the storage
// level's crash epoch, tracks the written -> acknowledged lifecycle, and
// exposes the durability laws the auditor checks live.
//
// The interface lives in the ulc layer (not proto) so every consumer —
// hierarchy schemes, the runtime block cache, the checked auditor — can
// name it without widening the layering DAG.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "trace/types.h"

namespace ulc {

class WritebackSink {
 public:
  virtual ~WritebackSink() = default;

  // A dirty block of `size` units is leaving level `level` for storage.
  // Returns the journal sequence number of the new entry.
  virtual std::uint64_t append(BlockId block, std::size_t level,
                               SizeUnits size) = 0;

  // The storage level finished writing entry `seq` (data durable, not yet
  // acknowledged to the client).
  virtual void mark_written(std::uint64_t seq) = 0;

  // The storage level acknowledged entry `seq` back to the client; only now
  // may the writer forget the block.
  virtual void ack(std::uint64_t seq) = 0;

  // A dirty block was destroyed *without* a write-back (crash wipe, resync
  // purge of a lost level). This is the data-loss event the fault harness
  // measures; it is legal under faults and a law violation without them.
  virtual void record_loss(BlockId block, std::size_t level,
                           SizeUnits size) = 0;

  // True when every durability law holds; on failure `why` names the first
  // broken law.
  virtual bool laws_hold(std::string& why) const = 0;
};

}  // namespace ulc
