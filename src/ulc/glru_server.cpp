#include "ulc/glru_server.h"

#include "util/ensure.h"

namespace ulc {

GlruServer::GlruServer(std::size_t capacity) : capacity_(capacity) {
  ULC_REQUIRE(capacity >= 1, "server capacity must be >= 1");
  // Sized to capacity up front: steady-state placements neither rehash the
  // index nor carve slab pages.
  index_.reserve(capacity_ + 1);
  slab_.reserve(capacity_ + 1);
}

GlruServer::PlaceResult GlruServer::place(BlockId block, ClientId owner,
                                          SizeUnits size) {
  ULC_REQUIRE(size >= 1, "block size must be at least one unit");
  PlaceResult result;
  result.more.clear();
  const SlabHandle* h = index_.find(block);
  if (h != nullptr) {
    // Shared block already cached: refresh recency, transfer ownership.
    slab_[*h].owner = owner;
    lru_.move_front(*h);
    return result;
  }
  if (size > capacity_) {
    result.admitted = false;  // larger than the whole server budget
    return result;
  }
  while (used_ + size > capacity_ && !lru_.empty()) {
    const SlabHandle vh = lru_.back();
    const Entry& victim = slab_[vh];
    if (!result.evicted) {
      result.evicted = true;
      result.victim = victim.block;
      result.victim_owner = victim.owner;
      result.victim_size = victim.size;
    } else {
      result.more.push_back(Victim{victim.block, victim.owner, victim.size});
    }
    used_ -= victim.size;
    index_.erase(victim.block);
    lru_.erase(vh);
    slab_.free(vh);
  }
  const SlabHandle nh = slab_.alloc();
  Entry& e = slab_[nh];
  e.block = block;
  e.owner = owner;
  e.size = size;
  used_ += size;
  lru_.push_front(nh);
  index_.insert_new(block, nh);
  return result;
}

bool GlruServer::refresh(BlockId block, ClientId owner) {
  const SlabHandle* h = index_.find(block);
  if (h == nullptr) return false;
  slab_[*h].owner = owner;
  lru_.move_front(*h);
  return true;
}

bool GlruServer::take(BlockId block) {
  const SlabHandle* h = index_.find(block);
  if (h == nullptr) return false;
  const SlabHandle vh = *h;
  used_ -= slab_[vh].size;
  index_.erase(block);
  lru_.erase(vh);
  slab_.free(vh);
  return true;
}

ClientId GlruServer::owner_of(BlockId block) const {
  const SlabHandle* h = index_.find(block);
  ULC_REQUIRE(h != nullptr, "owner_of absent block");
  return slab_[*h].owner;
}

std::size_t GlruServer::owned_by(ClientId client) const {
  std::size_t n = 0;
  for (SlabHandle h = lru_.front(); h != kNullHandle; h = lru_.next(h)) {
    if (slab_[h].owner == client) ++n;
  }
  return n;
}

std::size_t GlruServer::wipe(std::vector<BlockId>* dropped) {
  const std::size_t n = lru_.size();
  SlabHandle h = lru_.front();
  while (h != kNullHandle) {
    const SlabHandle next = lru_.next(h);
    if (dropped != nullptr) dropped->push_back(slab_[h].block);
    slab_.free(h);
    h = next;
  }
  lru_.clear();
  index_.clear();
  index_.reserve(capacity_ + 1);
  used_ = 0;
  return n;
}

bool GlruServer::check_consistency() const {
  if (index_.size() != lru_.size()) return false;
  if (used_ > capacity_) return false;  // the byte-capacity law
  std::size_t walked = 0;
  std::uint64_t bytes = 0;
  SlabHandle prev = kNullHandle;
  for (SlabHandle h = lru_.front(); h != kNullHandle; h = lru_.next(h)) {
    if (lru_.prev(h) != prev) return false;
    if (slab_[h].size < 1) return false;
    bytes += slab_[h].size;
    const SlabHandle* idx = index_.find(slab_[h].block);
    if (idx == nullptr || *idx != h) return false;
    prev = h;
    ++walked;
  }
  if (prev != lru_.back()) return false;
  if (walked != lru_.size()) return false;
  if (bytes != used_) return false;
  return true;
}

}  // namespace ulc
