#include "ulc/glru_server.h"

#include "util/ensure.h"

namespace ulc {

GlruServer::GlruServer(std::size_t capacity) : capacity_(capacity) {
  ULC_REQUIRE(capacity >= 1, "server capacity must be >= 1");
}

GlruServer::PlaceResult GlruServer::place(BlockId block, ClientId owner) {
  PlaceResult result;
  auto it = index_.find(block);
  if (it != index_.end()) {
    // Shared block already cached: refresh recency, transfer ownership.
    it->second->owner = owner;
    lru_.splice(lru_.begin(), lru_, it->second);
    return result;
  }
  if (lru_.size() >= capacity_) {
    const Entry& victim = lru_.back();
    result.evicted = true;
    result.victim = victim.block;
    result.victim_owner = victim.owner;
    index_.erase(victim.block);
    lru_.pop_back();
  }
  lru_.push_front(Entry{block, owner});
  index_[block] = lru_.begin();
  return result;
}

bool GlruServer::refresh(BlockId block, ClientId owner) {
  auto it = index_.find(block);
  if (it == index_.end()) return false;
  it->second->owner = owner;
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

bool GlruServer::take(BlockId block) {
  auto it = index_.find(block);
  if (it == index_.end()) return false;
  lru_.erase(it->second);
  index_.erase(it);
  return true;
}

ClientId GlruServer::owner_of(BlockId block) const {
  auto it = index_.find(block);
  ULC_REQUIRE(it != index_.end(), "owner_of absent block");
  return it->second->owner;
}

std::size_t GlruServer::owned_by(ClientId client) const {
  std::size_t n = 0;
  for (const Entry& e : lru_) {
    if (e.owner == client) ++n;
  }
  return n;
}

std::size_t GlruServer::wipe(std::vector<BlockId>* dropped) {
  const std::size_t n = lru_.size();
  if (dropped != nullptr) {
    for (const Entry& e : lru_) dropped->push_back(e.block);
  }
  lru_.clear();
  index_.clear();
  return n;
}

bool GlruServer::check_consistency() const {
  if (index_.size() != lru_.size()) return false;
  if (lru_.size() > capacity_) return false;
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    auto idx = index_.find(it->block);
    if (idx == index_.end() || idx->second != it) return false;
  }
  return true;
}

}  // namespace ulc
