// ARC — Megiddo & Modha, FAST 2003.
//
// Adaptive Replacement Cache: two LRU lists, T1 (seen once recently) and T2
// (seen at least twice recently), with ghost lists B1/B2 remembering recent
// evictions from each. The target size p of T1 adapts continuously: a hit in
// B1 says "recency was under-provisioned" (grow p), a hit in B2 the
// opposite. Included as the self-tuning single-level baseline: it shares
// ULC's "re-referenced blocks earn residency" instinct but tunes a split
// instead of ranking by re-reference distance.
//
// Storage: one slab node per tracked block (resident or ghost) tagged with
// the list it sits on; T1/T2/B1/B2 are four intrusive lists over the same
// slab. Transitions between lists (eviction into a ghost, ghost promotion)
// move the node rather than reallocating it, so the index entry stays put.
#include <algorithm>

#include "replacement/cache_policy.h"
#include "util/byte_budget.h"
#include "util/ensure.h"
#include "util/flat_hash.h"
#include "util/slab.h"

namespace ulc {

namespace {

// Byte accounting: T1/T2 residency is charged against the unit budget c_
// (t1_bytes_/t2_bytes_), and the adaptation target p becomes a byte target
// for T1. Ghost lists hold identities only, so the directory bounds — |B1|,
// |B2|, and the l1/l2 trims of case IV — stay count-based (allow-marked),
// exactly the paper's bookkeeping; at unit size counts equal bytes and the
// original algorithm is recovered verbatim.
class ArcPolicy final : public CachePolicy {
 public:
  explicit ArcPolicy(std::size_t capacity) : c_(capacity) {
    ULC_REQUIRE(capacity >= 2, "ARC needs capacity >= 2");
    // Residents (T1+T2 <= c) plus ghosts (B1+B2 <= c) bound the population.
    index_.reserve(2 * c_ + 2);
    slab_.reserve(2 * c_ + 2);
  }

  bool touch(BlockId block, const AccessContext&) override {
    const SlabHandle* f = index_.find(block);
    if (f == nullptr) return false;
    const SlabHandle h = *f;
    Node& e = slab_[h];
    if (e.where == Where::kT1) {
      // Second recent reference: promote to T2.
      t1_.erase(h);
      t1_bytes_ -= e.size;
      e.where = Where::kT2;
      t2_.push_front(h);
      t2_bytes_ += e.size;
      return true;
    }
    if (e.where == Where::kT2) {
      t2_.move_front(h);
      return true;
    }
    return false;  // ghost entries are not resident
  }

  EvictResult insert(BlockId block, const AccessContext& ctx) override {
    EvictResult ev;
    if (ctx.size > c_) {
      ev.admitted = false;  // larger than the whole budget
      return ev;
    }
    const SlabHandle* f = index_.find(block);
    const SlabHandle h = (f != nullptr) ? *f : kNullHandle;
    if (h != kNullHandle && slab_[h].where == Where::kB1) {
      // Case II: ghost hit in B1 -> favour recency.
      const std::size_t delta =
          b1_.size() >= b2_.size() ? 1 : (b2_.size() + b1_.size() - 1) / b1_.size();
      p_ = std::min(p_ + delta, c_);
      replace(/*in_b2=*/false, ctx.size, ev);
      b1_.erase(h);
      slab_[h].where = Where::kT2;
      slab_[h].size = ctx.size;
      t2_.push_front(h);
      t2_bytes_ += ctx.size;
      return ev;
    }
    if (h != kNullHandle && slab_[h].where == Where::kB2) {
      // Case III: ghost hit in B2 -> favour frequency.
      const std::size_t delta =
          b2_.size() >= b1_.size() ? 1 : (b1_.size() + b2_.size() - 1) / b2_.size();
      p_ = p_ > delta ? p_ - delta : 0;
      replace(/*in_b2=*/true, ctx.size, ev);
      b2_.erase(h);
      slab_[h].where = Where::kT2;
      slab_[h].size = ctx.size;
      t2_.push_front(h);
      t2_bytes_ += ctx.size;
      return ev;
    }
    ULC_REQUIRE(h == kNullHandle, "insert of resident block");

    // Case IV: brand-new block. The l1/directory trims are >=-loops rather
    // than the paper's == checks because a sized insert can retire several
    // residents at once, skipping past the exact boundary.
    const std::size_t l1 = t1_.size() + b1_.size();  // ulc-lint: allow(count-capacity)
    if (l1 >= c_) {  // ulc-lint: allow(count-capacity)
      if (!b1_.empty()) {
        // Drop the oldest B1 ghost(s) and replace.
        while (t1_.size() + b1_.size() >= c_ && !b1_.empty()) drop_ghost(b1_);  // ulc-lint: allow(count-capacity)
        replace(false, ctx.size, ev);
      } else {
        // T1 itself fills the cache: evict its LRU outright (no ghost).
        while (t1_bytes_ + t2_bytes_ + ctx.size > c_ && !t1_.empty()) {
          const SlabHandle vh = t1_.back();
          const BlockId victim = slab_[vh].block;
          t1_bytes_ -= slab_[vh].size;
          t1_.erase(vh);
          slab_.free(vh);
          index_.erase(victim);
          ev.add(victim);
        }
      }
    } else {
      const std::size_t directory =
          t1_.size() + t2_.size() + b1_.size() + b2_.size();
      if (directory >= c_) {  // ulc-lint: allow(count-capacity)
        std::size_t dir = directory;
        while (dir >= 2 * c_ && !b2_.empty()) {  // ulc-lint: allow(count-capacity)
          drop_ghost(b2_);
          --dir;
        }
      }
      replace(false, ctx.size, ev);
    }
    const SlabHandle nh = slab_.alloc();
    slab_[nh].block = block;
    slab_[nh].size = ctx.size;
    slab_[nh].where = Where::kT1;
    t1_.push_front(nh);
    t1_bytes_ += ctx.size;
    index_.insert_new(block, nh);
    return ev;
  }

  bool erase(BlockId block) override {
    const SlabHandle* f = index_.find(block);
    if (f == nullptr) return false;
    const SlabHandle h = *f;
    Node& e = slab_[h];
    if (e.where == Where::kT1) {
      t1_bytes_ -= e.size;
      t1_.erase(h);
    } else if (e.where == Where::kT2) {
      t2_bytes_ -= e.size;
      t2_.erase(h);
    } else {
      return false;  // ghost: not resident
    }
    slab_.free(h);
    index_.erase(block);
    return true;
  }

  bool contains(BlockId block) const override {
    const SlabHandle* f = index_.find(block);
    if (f == nullptr) return false;
    const Where w = slab_[*f].where;
    return w == Where::kT1 || w == Where::kT2;
  }
  std::size_t size() const override { return t1_.size() + t2_.size(); }
  std::size_t capacity() const override { return c_; }
  std::uint64_t used_bytes() const override { return t1_bytes_ + t2_bytes_; }
  const char* name() const override { return "ARC"; }

 private:
  enum class Where : std::uint8_t { kT1, kT2, kB1, kB2 };
  struct Node {
    BlockId block = 0;
    SizeUnits size = 1;
    SlabHandle prev = kNullHandle;
    SlabHandle next = kNullHandle;
    Where where = Where::kT1;
  };

  void drop_ghost(SlabList<Node>& ghosts) {
    const SlabHandle gh = ghosts.back();
    index_.erase(slab_[gh].block);
    ghosts.erase(gh);
    slab_.free(gh);
  }

  // The ARC REPLACE subroutine: evict from T1 or T2 per the target p,
  // remembering victims in the matching ghost lists, until an incoming
  // block of `incoming` units fits. The victims' nodes are moved, not
  // reallocated: their index entries remain valid.
  void replace(bool in_b2, SizeUnits incoming, EvictResult& ev) {
    while (t1_bytes_ + t2_bytes_ + incoming > c_ &&
           !(t1_.empty() && t2_.empty())) {
      const bool take_t1 =
          !t1_.empty() && (t1_bytes_ > p_ || (in_b2 && t1_bytes_ == p_));
      SlabHandle vh;
      if (take_t1) {
        vh = t1_.back();
        t1_bytes_ -= slab_[vh].size;
        t1_.erase(vh);
        slab_[vh].where = Where::kB1;
        b1_.push_front(vh);
      } else {
        ULC_ENSURE(!t2_.empty(), "ARC replace with empty T2");
        vh = t2_.back();
        t2_bytes_ -= slab_[vh].size;
        t2_.erase(vh);
        slab_[vh].where = Where::kB2;
        b2_.push_front(vh);
      }
      ev.add(slab_[vh].block);
    }
  }

  std::size_t c_;
  std::size_t p_ = 0;          // target T1 occupancy, in SizeUnits
  std::uint64_t t1_bytes_ = 0; // resident occupancy, in SizeUnits
  std::uint64_t t2_bytes_ = 0;
  Slab<Node> slab_;
  SlabList<Node> t1_{&slab_}, t2_{&slab_}, b1_{&slab_}, b2_{&slab_};
  FlatMap<BlockId, SlabHandle> index_;
};

}  // namespace

PolicyPtr make_arc(std::size_t capacity) {
  return std::make_unique<ArcPolicy>(capacity);
}

}  // namespace ulc
