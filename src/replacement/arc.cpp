// ARC — Megiddo & Modha, FAST 2003.
//
// Adaptive Replacement Cache: two LRU lists, T1 (seen once recently) and T2
// (seen at least twice recently), with ghost lists B1/B2 remembering recent
// evictions from each. The target size p of T1 adapts continuously: a hit in
// B1 says "recency was under-provisioned" (grow p), a hit in B2 the
// opposite. Included as the self-tuning single-level baseline: it shares
// ULC's "re-referenced blocks earn residency" instinct but tunes a split
// instead of ranking by re-reference distance.
#include <list>
#include <unordered_map>

#include "replacement/cache_policy.h"
#include "util/ensure.h"

namespace ulc {

namespace {

class ArcPolicy final : public CachePolicy {
 public:
  explicit ArcPolicy(std::size_t capacity) : c_(capacity) {
    ULC_REQUIRE(capacity >= 2, "ARC needs capacity >= 2");
  }

  bool touch(BlockId block, const AccessContext&) override {
    auto it = index_.find(block);
    if (it == index_.end()) return false;
    Entry& e = it->second;
    if (e.where == Where::kT1) {
      // Second recent reference: promote to T2.
      t1_.erase(e.pos);
      t2_.push_front(block);
      e = Entry{Where::kT2, t2_.begin()};
      return true;
    }
    if (e.where == Where::kT2) {
      t2_.splice(t2_.begin(), t2_, e.pos);
      return true;
    }
    return false;  // ghost entries are not resident
  }

  EvictResult insert(BlockId block, const AccessContext&) override {
    EvictResult ev;
    auto it = index_.find(block);
    if (it != index_.end() && it->second.where == Where::kB1) {
      // Case II: ghost hit in B1 -> favour recency.
      const std::size_t delta =
          b1_.size() >= b2_.size() ? 1 : (b2_.size() + b1_.size() - 1) / b1_.size();
      p_ = std::min(p_ + delta, c_);
      ev = replace(/*in_b2=*/false);
      b1_.erase(it->second.pos);
      t2_.push_front(block);
      index_[block] = Entry{Where::kT2, t2_.begin()};
      return ev;
    }
    if (it != index_.end() && it->second.where == Where::kB2) {
      // Case III: ghost hit in B2 -> favour frequency.
      const std::size_t delta =
          b2_.size() >= b1_.size() ? 1 : (b1_.size() + b2_.size() - 1) / b2_.size();
      p_ = p_ > delta ? p_ - delta : 0;
      ev = replace(/*in_b2=*/true);
      b2_.erase(it->second.pos);
      t2_.push_front(block);
      index_[block] = Entry{Where::kT2, t2_.begin()};
      return ev;
    }
    ULC_REQUIRE(it == index_.end(), "insert of resident block");

    // Case IV: brand-new block.
    const std::size_t l1 = t1_.size() + b1_.size();
    if (l1 == c_) {
      if (t1_.size() < c_) {
        // Drop the oldest B1 ghost and replace.
        index_.erase(b1_.back());
        b1_.pop_back();
        ev = replace(false);
      } else {
        // T1 itself fills the cache: evict its LRU outright (no ghost).
        const BlockId victim = t1_.back();
        t1_.pop_back();
        index_.erase(victim);
        ev = EvictResult{true, victim};
      }
    } else if (l1 < c_ && t1_.size() + t2_.size() + b1_.size() + b2_.size() >= c_) {
      if (t1_.size() + t2_.size() + b1_.size() + b2_.size() >= 2 * c_) {
        index_.erase(b2_.back());
        b2_.pop_back();
      }
      ev = replace(false);
    } else if (t1_.size() + t2_.size() >= c_) {
      ev = replace(false);
    }
    t1_.push_front(block);
    index_[block] = Entry{Where::kT1, t1_.begin()};
    return ev;
  }

  bool erase(BlockId block) override {
    auto it = index_.find(block);
    if (it == index_.end()) return false;
    Entry& e = it->second;
    if (e.where == Where::kT1) {
      t1_.erase(e.pos);
    } else if (e.where == Where::kT2) {
      t2_.erase(e.pos);
    } else {
      return false;  // ghost: not resident
    }
    index_.erase(it);
    return true;
  }

  bool contains(BlockId block) const override {
    auto it = index_.find(block);
    return it != index_.end() &&
           (it->second.where == Where::kT1 || it->second.where == Where::kT2);
  }
  std::size_t size() const override { return t1_.size() + t2_.size(); }
  std::size_t capacity() const override { return c_; }
  const char* name() const override { return "ARC"; }

 private:
  enum class Where { kT1, kT2, kB1, kB2 };
  struct Entry {
    Where where;
    std::list<BlockId>::iterator pos;
  };

  // The ARC REPLACE subroutine: evict from T1 or T2 per the target p,
  // remembering the victim in the matching ghost list.
  EvictResult replace(bool in_b2) {
    if (t1_.size() + t2_.size() < c_) return EvictResult{};
    EvictResult ev;
    const bool take_t1 =
        !t1_.empty() && (t1_.size() > p_ || (in_b2 && t1_.size() == p_));
    if (take_t1) {
      const BlockId victim = t1_.back();
      t1_.pop_back();
      b1_.push_front(victim);
      index_[victim] = Entry{Where::kB1, b1_.begin()};
      ev = EvictResult{true, victim};
    } else {
      ULC_ENSURE(!t2_.empty(), "ARC replace with empty T2");
      const BlockId victim = t2_.back();
      t2_.pop_back();
      b2_.push_front(victim);
      index_[victim] = Entry{Where::kB2, b2_.begin()};
      ev = EvictResult{true, victim};
    }
    return ev;
  }

  std::size_t c_;
  std::size_t p_ = 0;  // target size of T1
  std::list<BlockId> t1_, t2_, b1_, b2_;
  std::unordered_map<BlockId, Entry> index_;
};

}  // namespace

PolicyPtr make_arc(std::size_t capacity) {
  return std::make_unique<ArcPolicy>(capacity);
}

}  // namespace ulc
