// ARC — Megiddo & Modha, FAST 2003.
//
// Adaptive Replacement Cache: two LRU lists, T1 (seen once recently) and T2
// (seen at least twice recently), with ghost lists B1/B2 remembering recent
// evictions from each. The target size p of T1 adapts continuously: a hit in
// B1 says "recency was under-provisioned" (grow p), a hit in B2 the
// opposite. Included as the self-tuning single-level baseline: it shares
// ULC's "re-referenced blocks earn residency" instinct but tunes a split
// instead of ranking by re-reference distance.
//
// Storage: one slab node per tracked block (resident or ghost) tagged with
// the list it sits on; T1/T2/B1/B2 are four intrusive lists over the same
// slab. Transitions between lists (eviction into a ghost, ghost promotion)
// move the node rather than reallocating it, so the index entry stays put.
#include <algorithm>

#include "replacement/cache_policy.h"
#include "util/ensure.h"
#include "util/flat_hash.h"
#include "util/slab.h"

namespace ulc {

namespace {

class ArcPolicy final : public CachePolicy {
 public:
  explicit ArcPolicy(std::size_t capacity) : c_(capacity) {
    ULC_REQUIRE(capacity >= 2, "ARC needs capacity >= 2");
    // Residents (T1+T2 <= c) plus ghosts (B1+B2 <= c) bound the population.
    index_.reserve(2 * c_ + 2);
    slab_.reserve(2 * c_ + 2);
  }

  bool touch(BlockId block, const AccessContext&) override {
    const SlabHandle* f = index_.find(block);
    if (f == nullptr) return false;
    const SlabHandle h = *f;
    Node& e = slab_[h];
    if (e.where == Where::kT1) {
      // Second recent reference: promote to T2.
      t1_.erase(h);
      e.where = Where::kT2;
      t2_.push_front(h);
      return true;
    }
    if (e.where == Where::kT2) {
      t2_.move_front(h);
      return true;
    }
    return false;  // ghost entries are not resident
  }

  EvictResult insert(BlockId block, const AccessContext&) override {
    EvictResult ev;
    const SlabHandle* f = index_.find(block);
    const SlabHandle h = (f != nullptr) ? *f : kNullHandle;
    if (h != kNullHandle && slab_[h].where == Where::kB1) {
      // Case II: ghost hit in B1 -> favour recency.
      const std::size_t delta =
          b1_.size() >= b2_.size() ? 1 : (b2_.size() + b1_.size() - 1) / b1_.size();
      p_ = std::min(p_ + delta, c_);
      ev = replace(/*in_b2=*/false);
      b1_.erase(h);
      slab_[h].where = Where::kT2;
      t2_.push_front(h);
      return ev;
    }
    if (h != kNullHandle && slab_[h].where == Where::kB2) {
      // Case III: ghost hit in B2 -> favour frequency.
      const std::size_t delta =
          b2_.size() >= b1_.size() ? 1 : (b1_.size() + b2_.size() - 1) / b2_.size();
      p_ = p_ > delta ? p_ - delta : 0;
      ev = replace(/*in_b2=*/true);
      b2_.erase(h);
      slab_[h].where = Where::kT2;
      t2_.push_front(h);
      return ev;
    }
    ULC_REQUIRE(h == kNullHandle, "insert of resident block");

    // Case IV: brand-new block.
    const std::size_t l1 = t1_.size() + b1_.size();
    if (l1 == c_) {
      if (t1_.size() < c_) {
        // Drop the oldest B1 ghost and replace.
        drop_ghost(b1_);
        ev = replace(false);
      } else {
        // T1 itself fills the cache: evict its LRU outright (no ghost).
        const SlabHandle vh = t1_.back();
        const BlockId victim = slab_[vh].block;
        t1_.erase(vh);
        slab_.free(vh);
        index_.erase(victim);
        ev = EvictResult{true, victim};
      }
    } else if (l1 < c_ && t1_.size() + t2_.size() + b1_.size() + b2_.size() >= c_) {
      if (t1_.size() + t2_.size() + b1_.size() + b2_.size() >= 2 * c_) {
        drop_ghost(b2_);
      }
      ev = replace(false);
    } else if (t1_.size() + t2_.size() >= c_) {
      ev = replace(false);
    }
    const SlabHandle nh = slab_.alloc();
    slab_[nh].block = block;
    slab_[nh].where = Where::kT1;
    t1_.push_front(nh);
    index_.insert_new(block, nh);
    return ev;
  }

  bool erase(BlockId block) override {
    const SlabHandle* f = index_.find(block);
    if (f == nullptr) return false;
    const SlabHandle h = *f;
    Node& e = slab_[h];
    if (e.where == Where::kT1) {
      t1_.erase(h);
    } else if (e.where == Where::kT2) {
      t2_.erase(h);
    } else {
      return false;  // ghost: not resident
    }
    slab_.free(h);
    index_.erase(block);
    return true;
  }

  bool contains(BlockId block) const override {
    const SlabHandle* f = index_.find(block);
    if (f == nullptr) return false;
    const Where w = slab_[*f].where;
    return w == Where::kT1 || w == Where::kT2;
  }
  std::size_t size() const override { return t1_.size() + t2_.size(); }
  std::size_t capacity() const override { return c_; }
  const char* name() const override { return "ARC"; }

 private:
  enum class Where : std::uint8_t { kT1, kT2, kB1, kB2 };
  struct Node {
    BlockId block = 0;
    SlabHandle prev = kNullHandle;
    SlabHandle next = kNullHandle;
    Where where = Where::kT1;
  };

  void drop_ghost(SlabList<Node>& ghosts) {
    const SlabHandle gh = ghosts.back();
    index_.erase(slab_[gh].block);
    ghosts.erase(gh);
    slab_.free(gh);
  }

  // The ARC REPLACE subroutine: evict from T1 or T2 per the target p,
  // remembering the victim in the matching ghost list. The victim's node is
  // moved, not reallocated: its index entry remains valid.
  EvictResult replace(bool in_b2) {
    if (t1_.size() + t2_.size() < c_) return EvictResult{};
    const bool take_t1 =
        !t1_.empty() && (t1_.size() > p_ || (in_b2 && t1_.size() == p_));
    SlabHandle vh;
    if (take_t1) {
      vh = t1_.back();
      t1_.erase(vh);
      slab_[vh].where = Where::kB1;
      b1_.push_front(vh);
    } else {
      ULC_ENSURE(!t2_.empty(), "ARC replace with empty T2");
      vh = t2_.back();
      t2_.erase(vh);
      slab_[vh].where = Where::kB2;
      b2_.push_front(vh);
    }
    return EvictResult{true, slab_[vh].block};
  }

  std::size_t c_;
  std::size_t p_ = 0;  // target size of T1
  Slab<Node> slab_;
  SlabList<Node> t1_{&slab_}, t2_{&slab_}, b1_{&slab_}, b2_{&slab_};
  FlatMap<BlockId, SlabHandle> index_;
};

}  // namespace

PolicyPtr make_arc(std::size_t capacity) {
  return std::make_unique<ArcPolicy>(capacity);
}

}  // namespace ulc
