// Single-level cache replacement policies behind one interface.
//
// These serve three roles in the reproduction: building blocks of the
// independent-LRU baseline (one policy instance per level), the MQ server
// cache of Figure 7 (Zhou et al. 2001), and reference policies for tests
// (OPT dominance, RANDOM's size-proportional hit rate on uniform traces).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/types.h"

namespace ulc {

// Per-access side information. LRU/FIFO/RANDOM ignore it; OPT requires
// next_use (the trace position of the next reference to this block, or
// kNever) — supplied by the offline preprocessing in measures/next_use.h.
// `size` is the incoming block's footprint in SizeUnits; capacity is a
// byte budget in the same units (util/byte_budget.h), so inserting a
// size-s block may evict several smaller residents.
struct AccessContext {
  std::uint64_t time = 0;
  std::uint64_t next_use = 0;
  SizeUnits size = 1;
};

// Victims of one insert. With unit-size blocks at most one block leaves per
// insert and `more` stays empty (no allocation on the unit-size hot path);
// a sized insert may push out several residents — the first lands in
// `victim`, the rest in `more`, in eviction order.
struct EvictResult {
  bool evicted = false;
  BlockId victim = 0;
  // False when the policy declined to cache the block: OPT's farthest-out
  // bypass, or a sized block larger than the whole budget (which no amount
  // of eviction could fit). Unit-size inserts are always admitted.
  bool admitted = true;
  std::vector<BlockId> more;

  void clear() {
    evicted = false;
    victim = 0;
    admitted = true;
    more.clear();
  }
  void add(BlockId b) {
    if (!evicted) {
      evicted = true;
      victim = b;
    } else {
      more.push_back(b);
    }
  }
  std::size_t count() const { return evicted ? 1 + more.size() : 0; }
  // Applies `fn(BlockId)` to every victim in eviction order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (!evicted) return;
    fn(victim);
    for (BlockId b : more) fn(b);
  }
};

class CachePolicy {
 public:
  virtual ~CachePolicy() = default;

  // References a block that may or may not be cached; returns true on hit.
  // On miss the block is admitted (possibly evicting; see *evicted).
  bool access(BlockId block, const AccessContext& ctx = {},
              EvictResult* evicted = nullptr);

  // Updates recency/frequency state of a present block; false if absent.
  virtual bool touch(BlockId block, const AccessContext& ctx) = 0;
  // Admits an absent block, evicting if at capacity.
  virtual EvictResult insert(BlockId block, const AccessContext& ctx) = 0;
  // Removes a block (exclusive-caching reads); false if absent.
  virtual bool erase(BlockId block) = 0;

  // Pulls the cache lines a touch/insert of `block` would probe first
  // toward the core (index hash group, typically). Pure prefetch
  // instructions: never stalls, never changes observable state. Default
  // no-op so simple or cold policies need not care.
  virtual void prefetch(BlockId block) const { (void)block; }

  virtual bool contains(BlockId block) const = 0;
  virtual std::size_t size() const = 0;
  virtual std::size_t capacity() const = 0;
  // Occupancy in SizeUnits. Equals size() for unit-size workloads; policies
  // that track sized residents override this with their byte budget's usage.
  virtual std::uint64_t used_bytes() const { return size(); }
  virtual const char* name() const = 0;

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  double hit_ratio() const;

 protected:
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

using PolicyPtr = std::unique_ptr<CachePolicy>;

PolicyPtr make_lru(std::size_t capacity);
PolicyPtr make_fifo(std::size_t capacity);
PolicyPtr make_random(std::size_t capacity, std::uint64_t seed = 1);
// OPT (Belady): evicts the block whose next use is farthest in the future.
// Requires AccessContext::next_use on every touch/insert.
PolicyPtr make_opt(std::size_t capacity);

struct MqConfig {
  std::size_t capacity = 0;
  std::size_t queue_count = 8;
  // lifeTime: accesses a block may sit unreferenced in its queue before
  // being demoted one queue down. The MQ paper recommends the observed peak
  // temporal distance; a multiple of the cache size is a robust default.
  std::uint64_t life_time = 0;  // 0 -> 4 * capacity
  std::size_t ghost_capacity = 0;  // Qout entries; 0 -> 4 * capacity
};
PolicyPtr make_mq(const MqConfig& config);

struct TwoQConfig {
  std::size_t capacity = 0;
  // 2Q paper defaults: A1in ~25% of the cache, A1out remembers ~50% worth
  // of evicted identities.
  double kin_fraction = 0.25;
  double kout_fraction = 0.5;
};
PolicyPtr make_two_q(const TwoQConfig& config);

// ARC (Megiddo & Modha 2003): self-tuning recency/frequency split.
PolicyPtr make_arc(std::size_t capacity);

struct LirsConfig {
  std::size_t capacity = 0;
  // Fraction of the cache devoted to HIR resident blocks (LIRS paper: ~1%,
  // at least 2 blocks).
  double hir_fraction = 0.01;
};
PolicyPtr make_lirs(const LirsConfig& config);

}  // namespace ulc
