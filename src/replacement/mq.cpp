// Multi-Queue (MQ) replacement — Zhou, Philbin & Li, USENIX 2001.
//
// The paper's Figure 7 compares ULC against "LRU at the client + MQ at the
// server", MQ being the representative of the re-design-the-low-level-cache
// approach. MQ maintains `queue_count` LRU queues: a block with reference
// count f lives in queue floor(log2(f)) (capped), is moved to the tail of
// its queue on access with expireTime = now + lifeTime, and queue heads
// whose expireTime has passed are demoted one queue down. Victims come from
// the head of the lowest non-empty queue. Evicted blocks leave their
// reference count in a FIFO ghost directory (Qout) so a quick re-fetch
// resumes the old frequency.
//
// Storage: resident blocks live in one slab, the per-frequency queues are
// intrusive lists over it (a node is on exactly one queue); ghosts live in
// a second slab with their own FlatMap index (util/slab.h).
#include <vector>

#include "replacement/cache_policy.h"
#include "util/byte_budget.h"
#include "util/ensure.h"
#include "util/flat_hash.h"
#include "util/slab.h"

namespace ulc {

namespace {

class MqPolicy final : public CachePolicy {
 public:
  explicit MqPolicy(const MqConfig& cfg)
      : capacity_(cfg.capacity),
        budget_(cfg.capacity),
        life_time_(cfg.life_time ? cfg.life_time : 4 * cfg.capacity),
        ghost_capacity_(cfg.ghost_capacity ? cfg.ghost_capacity : 4 * cfg.capacity),
        queues_(cfg.queue_count, SlabList<Node>(&slab_)),
        ghost_lru_(&ghost_slab_) {
    ULC_REQUIRE(cfg.capacity > 0, "MQ capacity must be positive");
    ULC_REQUIRE(cfg.queue_count > 0, "MQ needs at least one queue");
    index_.reserve(capacity_ + 1);
    slab_.reserve(capacity_ + 1);
    ghost_index_.reserve(ghost_capacity_ + 1);
    ghost_slab_.reserve(ghost_capacity_ + 1);
  }

  // Both tables a miss path probes: the resident index first, then the
  // ghost directory for the remembered-frequency lookup.
  void prefetch(BlockId block) const override {
    index_.prefetch(block);
    ghost_index_.prefetch(block);
  }

  bool touch(BlockId block, const AccessContext&) override {
    ++now_;
    adjust();
    const SlabHandle* h = index_.find(block);
    if (h == nullptr) return false;
    Node& e = slab_[*h];
    queues_[e.queue].erase(*h);
    ++e.frequency;
    e.queue = queue_for(e.frequency);
    e.expire = now_ + life_time_;
    queues_[e.queue].push_back(*h);
    return true;
  }

  EvictResult insert(BlockId block, const AccessContext& ctx) override {
    ULC_REQUIRE(!index_.contains(block), "insert of present block");
    EvictResult ev;
    if (!budget_.can_ever_fit(ctx.size)) {
      ev.admitted = false;
      return ev;
    }
    while (budget_.needs_eviction(ctx.size) && !index_.empty()) {
      evict_one(ev);
    }
    std::uint64_t freq = 1;
    const SlabHandle* gh = ghost_index_.find(block);
    if (gh != nullptr) {
      freq = ghost_slab_[*gh].frequency + 1;
      ghost_lru_.erase(*gh);
      ghost_slab_.free(*gh);
      ghost_index_.erase(block);
    }
    const SlabHandle h = slab_.alloc();
    Node& e = slab_[h];
    e.block = block;
    e.size = ctx.size;
    e.frequency = freq;
    e.queue = queue_for(freq);
    e.expire = now_ + life_time_;
    queues_[e.queue].push_back(h);
    budget_.charge(ctx.size);
    index_.insert_new(block, h);
    return ev;
  }

  bool erase(BlockId block) override {
    const SlabHandle* h = index_.find(block);
    if (h == nullptr) return false;
    budget_.release(slab_[*h].size);
    queues_[slab_[*h].queue].erase(*h);
    slab_.free(*h);
    index_.erase(block);
    return true;
  }

  bool contains(BlockId block) const override { return index_.contains(block); }
  std::size_t size() const override { return index_.size(); }
  std::size_t capacity() const override { return capacity_; }
  std::uint64_t used_bytes() const override { return budget_.used(); }
  const char* name() const override { return "MQ"; }

 private:
  struct Node {
    BlockId block = 0;
    SizeUnits size = 1;
    std::uint64_t frequency = 0;
    std::uint64_t expire = 0;
    std::size_t queue = 0;
    SlabHandle prev = kNullHandle;
    SlabHandle next = kNullHandle;
  };
  struct GhostNode {
    BlockId block = 0;
    std::uint64_t frequency = 0;
    SlabHandle prev = kNullHandle;
    SlabHandle next = kNullHandle;
  };

  std::size_t queue_for(std::uint64_t frequency) const {
    std::size_t q = 0;
    while (frequency > 1 && q + 1 < queues_.size()) {
      frequency >>= 1;
      ++q;
    }
    return q;
  }

  // MQ's "Adjust": demote expired queue heads one level down.
  void adjust() {
    for (std::size_t q = queues_.size(); q-- > 1;) {
      if (queues_[q].empty()) continue;
      const SlabHandle head = queues_[q].front();
      Node& e = slab_[head];
      if (e.expire < now_) {
        queues_[q].erase(head);
        e.queue = q - 1;
        e.expire = now_ + life_time_;
        queues_[q - 1].push_back(head);
      }
    }
  }

  void evict_one(EvictResult& ev) {
    for (auto& queue : queues_) {
      if (queue.empty()) continue;
      const SlabHandle vh = queue.front();
      const BlockId victim = slab_[vh].block;
      const std::uint64_t freq = slab_[vh].frequency;
      budget_.release(slab_[vh].size);
      queue.erase(vh);
      slab_.free(vh);
      index_.erase(victim);
      // Remember the victim's frequency in the ghost directory. Ghosts hold
      // identities, not data: a count bound is the measure.
      const SlabHandle gh = ghost_slab_.alloc();
      ghost_slab_[gh].block = victim;
      ghost_slab_[gh].frequency = freq;
      ghost_lru_.push_back(gh);
      ghost_index_.insert_new(victim, gh);
      if (ghost_lru_.size() > ghost_capacity_) {  // ulc-lint: allow(count-capacity)
        const SlabHandle oldest = ghost_lru_.front();
        ghost_index_.erase(ghost_slab_[oldest].block);
        ghost_lru_.erase(oldest);
        ghost_slab_.free(oldest);
      }
      ev.add(victim);
      return;
    }
    ULC_ENSURE(false, "evict_one called on an empty cache");
  }

  std::size_t capacity_;
  ByteBudget budget_;
  std::uint64_t life_time_;
  std::size_t ghost_capacity_;
  std::uint64_t now_ = 0;
  Slab<Node> slab_;
  Slab<GhostNode> ghost_slab_;
  std::vector<SlabList<Node>> queues_;  // front = LRU end of each queue
  FlatMap<BlockId, SlabHandle> index_;
  SlabList<GhostNode> ghost_lru_;  // front = oldest ghost
  FlatMap<BlockId, SlabHandle> ghost_index_;
};

}  // namespace

PolicyPtr make_mq(const MqConfig& config) {
  return std::make_unique<MqPolicy>(config);
}

}  // namespace ulc
