// Multi-Queue (MQ) replacement — Zhou, Philbin & Li, USENIX 2001.
//
// The paper's Figure 7 compares ULC against "LRU at the client + MQ at the
// server", MQ being the representative of the re-design-the-low-level-cache
// approach. MQ maintains `queue_count` LRU queues: a block with reference
// count f lives in queue floor(log2(f)) (capped), is moved to the tail of
// its queue on access with expireTime = now + lifeTime, and queue heads
// whose expireTime has passed are demoted one queue down. Victims come from
// the head of the lowest non-empty queue. Evicted blocks leave their
// reference count in a FIFO ghost directory (Qout) so a quick re-fetch
// resumes the old frequency.
#include <list>
#include <unordered_map>
#include <vector>

#include "replacement/cache_policy.h"
#include "util/ensure.h"

namespace ulc {

namespace {

class MqPolicy final : public CachePolicy {
 public:
  explicit MqPolicy(const MqConfig& cfg)
      : capacity_(cfg.capacity),
        life_time_(cfg.life_time ? cfg.life_time : 4 * cfg.capacity),
        ghost_capacity_(cfg.ghost_capacity ? cfg.ghost_capacity : 4 * cfg.capacity),
        queues_(cfg.queue_count) {
    ULC_REQUIRE(cfg.capacity > 0, "MQ capacity must be positive");
    ULC_REQUIRE(cfg.queue_count > 0, "MQ needs at least one queue");
  }

  bool touch(BlockId block, const AccessContext&) override {
    ++now_;
    adjust();
    auto it = index_.find(block);
    if (it == index_.end()) return false;
    Entry& e = it->second;
    queues_[e.queue].erase(e.pos);
    ++e.frequency;
    e.queue = queue_for(e.frequency);
    e.expire = now_ + life_time_;
    queues_[e.queue].push_back(block);
    e.pos = std::prev(queues_[e.queue].end());
    return true;
  }

  EvictResult insert(BlockId block, const AccessContext&) override {
    ULC_REQUIRE(index_.find(block) == index_.end(), "insert of present block");
    EvictResult ev;
    if (index_.size() >= capacity_) {
      ev = evict_one();
    }
    std::uint64_t freq = 1;
    auto git = ghost_index_.find(block);
    if (git != ghost_index_.end()) {
      freq = git->second->frequency + 1;
      ghost_.erase(git->second);
      ghost_index_.erase(git);
    }
    Entry e;
    e.frequency = freq;
    e.queue = queue_for(freq);
    e.expire = now_ + life_time_;
    queues_[e.queue].push_back(block);
    e.pos = std::prev(queues_[e.queue].end());
    index_.emplace(block, e);
    return ev;
  }

  bool erase(BlockId block) override {
    auto it = index_.find(block);
    if (it == index_.end()) return false;
    queues_[it->second.queue].erase(it->second.pos);
    index_.erase(it);
    return true;
  }

  bool contains(BlockId block) const override { return index_.count(block) != 0; }
  std::size_t size() const override { return index_.size(); }
  std::size_t capacity() const override { return capacity_; }
  const char* name() const override { return "MQ"; }

 private:
  struct Entry {
    std::uint64_t frequency = 0;
    std::size_t queue = 0;
    std::uint64_t expire = 0;
    std::list<BlockId>::iterator pos;
  };
  struct GhostEntry {
    BlockId block;
    std::uint64_t frequency;
  };

  std::size_t queue_for(std::uint64_t frequency) const {
    std::size_t q = 0;
    while (frequency > 1 && q + 1 < queues_.size()) {
      frequency >>= 1;
      ++q;
    }
    return q;
  }

  // MQ's "Adjust": demote expired queue heads one level down.
  void adjust() {
    for (std::size_t q = queues_.size(); q-- > 1;) {
      if (queues_[q].empty()) continue;
      const BlockId head = queues_[q].front();
      Entry& e = index_.at(head);
      if (e.expire < now_) {
        queues_[q].pop_front();
        e.queue = q - 1;
        e.expire = now_ + life_time_;
        queues_[q - 1].push_back(head);
        e.pos = std::prev(queues_[q - 1].end());
      }
    }
  }

  EvictResult evict_one() {
    for (auto& queue : queues_) {
      if (queue.empty()) continue;
      const BlockId victim = queue.front();
      const Entry& e = index_.at(victim);
      queue.pop_front();
      // Remember the victim's frequency in the ghost directory.
      ghost_.push_back(GhostEntry{victim, e.frequency});
      ghost_index_[victim] = std::prev(ghost_.end());
      if (ghost_.size() > ghost_capacity_) {
        ghost_index_.erase(ghost_.front().block);
        ghost_.pop_front();
      }
      index_.erase(victim);
      return EvictResult{true, victim};
    }
    ULC_ENSURE(false, "evict_one called on an empty cache");
    return EvictResult{};
  }

  std::size_t capacity_;
  std::uint64_t life_time_;
  std::size_t ghost_capacity_;
  std::uint64_t now_ = 0;
  std::vector<std::list<BlockId>> queues_;  // front = LRU end of each queue
  std::unordered_map<BlockId, Entry> index_;
  std::list<GhostEntry> ghost_;
  std::unordered_map<BlockId, std::list<GhostEntry>::iterator> ghost_index_;
};

}  // namespace

PolicyPtr make_mq(const MqConfig& config) {
  return std::make_unique<MqPolicy>(config);
}

}  // namespace ulc
