#include "replacement/cache_policy.h"

namespace ulc {

bool CachePolicy::access(BlockId block, const AccessContext& ctx,
                         EvictResult* evicted) {
  if (touch(block, ctx)) {
    ++hits_;
    if (evicted) *evicted = EvictResult{};
    return true;
  }
  ++misses_;
  const EvictResult ev = insert(block, ctx);
  if (evicted) *evicted = ev;
  return false;
}

double CachePolicy::hit_ratio() const {
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
}

}  // namespace ulc
