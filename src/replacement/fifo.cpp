// First-In First-Out — a recency-free control policy used by tests to
// distinguish behaviour that depends on recency updates from behaviour that
// depends only on residency.
#include <list>
#include <unordered_map>

#include "replacement/cache_policy.h"
#include "util/ensure.h"

namespace ulc {

namespace {

class FifoPolicy final : public CachePolicy {
 public:
  explicit FifoPolicy(std::size_t capacity) : capacity_(capacity) {
    ULC_REQUIRE(capacity > 0, "FIFO capacity must be positive");
  }

  bool touch(BlockId block, const AccessContext&) override {
    return index_.find(block) != index_.end();  // no reordering on hit
  }

  EvictResult insert(BlockId block, const AccessContext&) override {
    ULC_REQUIRE(index_.find(block) == index_.end(), "insert of present block");
    EvictResult ev;
    if (list_.size() >= capacity_) {
      ev.evicted = true;
      ev.victim = list_.back();
      index_.erase(list_.back());
      list_.pop_back();
    }
    list_.push_front(block);
    index_[block] = list_.begin();
    return ev;
  }

  bool erase(BlockId block) override {
    auto it = index_.find(block);
    if (it == index_.end()) return false;
    list_.erase(it->second);
    index_.erase(it);
    return true;
  }

  bool contains(BlockId block) const override { return index_.count(block) != 0; }
  std::size_t size() const override { return list_.size(); }
  std::size_t capacity() const override { return capacity_; }
  const char* name() const override { return "FIFO"; }

 private:
  std::size_t capacity_;
  std::list<BlockId> list_;  // front = newest
  std::unordered_map<BlockId, std::list<BlockId>::iterator> index_;
};

}  // namespace

PolicyPtr make_fifo(std::size_t capacity) {
  return std::make_unique<FifoPolicy>(capacity);
}

}  // namespace ulc
