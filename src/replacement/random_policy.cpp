// RANDOM replacement — the paper's Section 2 reference point: on a spatially
// uniform trace no on-line policy can beat a hit rate proportional to the
// cache size, which is what RANDOM delivers.
#include <vector>

#include "replacement/cache_policy.h"
#include "util/ensure.h"
#include "util/flat_hash.h"
#include "util/prng.h"

namespace ulc {

namespace {

class RandomPolicy final : public CachePolicy {
 public:
  RandomPolicy(std::size_t capacity, std::uint64_t seed)
      : capacity_(capacity), rng_(seed) {
    ULC_REQUIRE(capacity > 0, "RANDOM capacity must be positive");
    slots_.reserve(capacity);
    index_.reserve(capacity + 1);
  }

  bool touch(BlockId block, const AccessContext&) override {
    return index_.contains(block);
  }

  EvictResult insert(BlockId block, const AccessContext&) override {
    ULC_REQUIRE(!index_.contains(block), "insert of present block");
    EvictResult ev;
    if (slots_.size() >= capacity_) {
      const std::size_t victim_slot =
          static_cast<std::size_t>(rng_.next_below(slots_.size()));
      ev.evicted = true;
      ev.victim = slots_[victim_slot];
      index_.erase(ev.victim);
      slots_[victim_slot] = block;
      index_.insert_new(block, victim_slot);
      return ev;
    }
    index_.insert_new(block, slots_.size());
    slots_.push_back(block);
    return ev;
  }

  bool erase(BlockId block) override {
    const std::size_t* found = index_.find(block);
    if (found == nullptr) return false;
    const std::size_t slot = *found;  // copy before mutating the map
    index_.erase(block);
    if (slot + 1 != slots_.size()) {
      slots_[slot] = slots_.back();
      index_.put(slots_[slot], slot);
    }
    slots_.pop_back();
    return true;
  }

  bool contains(BlockId block) const override { return index_.contains(block); }
  std::size_t size() const override { return slots_.size(); }
  std::size_t capacity() const override { return capacity_; }
  const char* name() const override { return "RANDOM"; }

 private:
  std::size_t capacity_;
  Rng rng_;
  std::vector<BlockId> slots_;
  FlatMap<BlockId, std::size_t> index_;
};

}  // namespace

PolicyPtr make_random(std::size_t capacity, std::uint64_t seed) {
  return std::make_unique<RandomPolicy>(capacity, seed);
}

}  // namespace ulc
