// RANDOM replacement — the paper's Section 2 reference point: on a spatially
// uniform trace no on-line policy can beat a hit rate proportional to the
// cache size, which is what RANDOM delivers.
#include <vector>

#include "replacement/cache_policy.h"
#include "util/byte_budget.h"
#include "util/ensure.h"
#include "util/flat_hash.h"
#include "util/prng.h"

namespace ulc {

namespace {

class RandomPolicy final : public CachePolicy {
 public:
  RandomPolicy(std::size_t capacity, std::uint64_t seed)
      : capacity_(capacity), budget_(capacity), rng_(seed) {
    ULC_REQUIRE(capacity > 0, "RANDOM capacity must be positive");
    slots_.reserve(capacity);
    sizes_.reserve(capacity);
    index_.reserve(capacity + 1);
  }

  bool touch(BlockId block, const AccessContext&) override {
    return index_.contains(block);
  }

  EvictResult insert(BlockId block, const AccessContext& ctx) override {
    ULC_REQUIRE(!index_.contains(block), "insert of present block");
    EvictResult ev;
    if (!budget_.can_ever_fit(ctx.size)) {
      ev.admitted = false;
      return ev;
    }
    while (budget_.needs_eviction(ctx.size) && !slots_.empty()) {
      const std::size_t victim_slot =
          static_cast<std::size_t>(rng_.next_below(slots_.size()));
      ev.add(slots_[victim_slot]);
      budget_.release(sizes_[victim_slot]);
      index_.erase(slots_[victim_slot]);
      if (budget_.fits(ctx.size)) {
        // Last victim needed: the newcomer takes its slot in place, which on
        // unit-size traces reproduces the original single-replacement
        // behaviour (and RNG stream) exactly.
        slots_[victim_slot] = block;
        sizes_[victim_slot] = ctx.size;
        budget_.charge(ctx.size);
        index_.insert_new(block, victim_slot);
        return ev;
      }
      remove_slot(victim_slot);
    }
    index_.insert_new(block, slots_.size());
    slots_.push_back(block);
    sizes_.push_back(ctx.size);
    budget_.charge(ctx.size);
    return ev;
  }

  bool erase(BlockId block) override {
    const std::size_t* found = index_.find(block);
    if (found == nullptr) return false;
    const std::size_t slot = *found;  // copy before mutating the map
    index_.erase(block);
    budget_.release(sizes_[slot]);
    remove_slot(slot);
    return true;
  }

  bool contains(BlockId block) const override { return index_.contains(block); }
  std::size_t size() const override { return slots_.size(); }
  std::size_t capacity() const override { return capacity_; }
  std::uint64_t used_bytes() const override { return budget_.used(); }
  const char* name() const override { return "RANDOM"; }

 private:
  // Swap-removes slot (the budget/index entries must already be gone).
  void remove_slot(std::size_t slot) {
    if (slot + 1 != slots_.size()) {
      slots_[slot] = slots_.back();
      sizes_[slot] = sizes_.back();
      index_.put(slots_[slot], slot);
    }
    slots_.pop_back();
    sizes_.pop_back();
  }

  std::size_t capacity_;
  ByteBudget budget_;
  Rng rng_;
  std::vector<BlockId> slots_;
  std::vector<SizeUnits> sizes_;  // parallel to slots_
  FlatMap<BlockId, std::size_t> index_;
};

}  // namespace

PolicyPtr make_random(std::size_t capacity, std::uint64_t seed) {
  return std::make_unique<RandomPolicy>(capacity, seed);
}

}  // namespace ulc
