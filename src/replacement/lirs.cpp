// LIRS — Jiang & Zhang, SIGMETRICS 2002.
//
// LIRS is the single-level ancestor of ULC: it ranks blocks by the recency
// at which they were last referenced (IRR, the same quantity the ULC paper
// calls LLD) instead of by raw recency. Included as the extension the
// paper's Related Work points to, and used by tests/benches to sanity-check
// that LLD-based ranking beats LRU on weak-locality (looping) workloads even
// in one level.
//
// Structures: stack S (LIR blocks, resident and non-resident HIR blocks,
// most recent on top) and queue Q (resident HIR blocks, FIFO). The stack
// bottom is always a LIR block (pruning). Non-resident HIR entries (ghosts)
// are bounded by `kGhostFactor` x capacity, trimmed oldest-first.
#include <list>
#include <unordered_map>

#include "replacement/cache_policy.h"
#include "util/ensure.h"

namespace ulc {

namespace {

constexpr std::size_t kGhostFactor = 3;

class LirsPolicy final : public CachePolicy {
 public:
  explicit LirsPolicy(const LirsConfig& cfg) : capacity_(cfg.capacity) {
    ULC_REQUIRE(cfg.capacity >= 2, "LIRS needs capacity >= 2");
    hir_capacity_ = static_cast<std::size_t>(
        static_cast<double>(cfg.capacity) * cfg.hir_fraction);
    if (hir_capacity_ < 2) hir_capacity_ = 2;
    if (hir_capacity_ > capacity_ - 1) hir_capacity_ = capacity_ - 1;
    lir_capacity_ = capacity_ - hir_capacity_;
  }

  bool touch(BlockId block, const AccessContext&) override {
    auto it = entries_.find(block);
    if (it == entries_.end() || !it->second.resident) return false;
    Entry& e = it->second;
    if (e.status == Status::kLir) {
      const bool was_bottom = (e.in_stack && stack_.back() == block);
      stack_move_top(block, e);
      if (was_bottom) prune();
      return true;
    }
    // Resident HIR hit.
    if (e.in_stack) {
      // Its recency beat the LIR bottom's recency: promote to LIR.
      stack_move_top(block, e);
      e.status = Status::kLir;
      queue_remove(block, e);
      ++lir_count_;
      demote_lir_excess();
    } else {
      stack_push_top(block, e);
      queue_move_tail(block, e);
    }
    return true;
  }

  EvictResult insert(BlockId block, const AccessContext&) override {
    auto it = entries_.find(block);
    ULC_REQUIRE(it == entries_.end() || !it->second.resident,
                "insert of resident block");
    EvictResult ev;
    if (resident_count_ >= capacity_) ev = evict_one();

    if (lir_count_ < lir_capacity_ && (it == entries_.end() || !it->second.in_stack)) {
      // Cold start: fill the LIR set first.
      Entry& e = (it == entries_.end()) ? entries_[block] : it->second;
      e.resident = true;
      e.status = Status::kLir;
      stack_push_top(block, e);
      ++lir_count_;
      ++resident_count_;
      return ev;
    }

    if (it != entries_.end() && it->second.in_stack) {
      // Ghost hit: the reuse distance was within the LIR recency scope.
      Entry& e = it->second;
      ULC_ENSURE(e.status == Status::kHir, "ghost must be HIR");
      e.resident = true;
      e.status = Status::kLir;
      --ghost_count_;
      stack_move_top(block, e);
      ++lir_count_;
      ++resident_count_;
      demote_lir_excess();
      return ev;
    }

    Entry& e = entries_[block];
    e.resident = true;
    e.status = Status::kHir;
    stack_push_top(block, e);
    queue_move_tail(block, e);
    ++resident_count_;
    return ev;
  }

  bool erase(BlockId block) override {
    auto it = entries_.find(block);
    if (it == entries_.end() || !it->second.resident) return false;
    Entry& e = it->second;
    if (e.status == Status::kLir) {
      --lir_count_;
      if (e.in_stack) stack_remove(block, e);
      --resident_count_;
      entries_.erase(it);
      prune();
      return true;
    }
    queue_remove(block, e);
    --resident_count_;
    if (e.in_stack) {
      e.resident = false;  // keep as ghost
      ++ghost_count_;
      trim_ghosts();
    } else {
      entries_.erase(it);
    }
    return true;
  }

  bool contains(BlockId block) const override {
    auto it = entries_.find(block);
    return it != entries_.end() && it->second.resident;
  }
  std::size_t size() const override { return resident_count_; }
  std::size_t capacity() const override { return capacity_; }
  const char* name() const override { return "LIRS"; }

 private:
  enum class Status { kLir, kHir };
  struct Entry {
    Status status = Status::kHir;
    bool resident = false;
    bool in_stack = false;
    bool in_queue = false;
    std::list<BlockId>::iterator stack_pos;
    std::list<BlockId>::iterator queue_pos;
  };

  void stack_push_top(BlockId block, Entry& e) {
    if (e.in_stack) {
      stack_.erase(e.stack_pos);
    }
    stack_.push_front(block);
    e.stack_pos = stack_.begin();
    e.in_stack = true;
  }
  void stack_move_top(BlockId block, Entry& e) { stack_push_top(block, e); }
  void stack_remove(BlockId, Entry& e) {
    ULC_ENSURE(e.in_stack, "stack_remove of non-stack entry");
    stack_.erase(e.stack_pos);
    e.in_stack = false;
  }

  void queue_move_tail(BlockId block, Entry& e) {
    if (e.in_queue) queue_.erase(e.queue_pos);
    queue_.push_back(block);
    e.queue_pos = std::prev(queue_.end());
    e.in_queue = true;
  }
  void queue_remove(BlockId, Entry& e) {
    if (!e.in_queue) return;
    queue_.erase(e.queue_pos);
    e.in_queue = false;
  }

  // Ensure the stack bottom is a LIR block; drop HIR entries off the bottom
  // (resident ones stay cached via Q; non-resident ones are forgotten).
  void prune() {
    while (!stack_.empty()) {
      const BlockId bottom = stack_.back();
      Entry& e = entries_.at(bottom);
      if (e.status == Status::kLir) return;
      stack_.pop_back();
      e.in_stack = false;
      if (!e.resident) {
        --ghost_count_;
        entries_.erase(bottom);
      }
    }
  }

  // If LIR overflows its target size, demote the stack-bottom LIR block to
  // resident HIR (tail of Q) and prune.
  void demote_lir_excess() {
    while (lir_count_ > lir_capacity_) {
      prune();
      ULC_ENSURE(!stack_.empty(), "LIR overflow with empty stack");
      const BlockId bottom = stack_.back();
      Entry& e = entries_.at(bottom);
      ULC_ENSURE(e.status == Status::kLir, "pruned stack bottom must be LIR");
      stack_.pop_back();
      e.in_stack = false;
      e.status = Status::kHir;
      --lir_count_;
      queue_move_tail(bottom, e);
      prune();
    }
  }

  EvictResult evict_one() {
    ULC_ENSURE(!queue_.empty(), "LIRS eviction with empty HIR queue");
    const BlockId victim = queue_.front();
    Entry& e = entries_.at(victim);
    queue_.pop_front();
    e.in_queue = false;
    e.resident = false;
    --resident_count_;
    if (e.in_stack) {
      ++ghost_count_;
      trim_ghosts();
    } else {
      entries_.erase(victim);
    }
    return EvictResult{true, victim};
  }

  void trim_ghosts() {
    // Bound metadata: forget the oldest (bottom-most) ghosts.
    if (ghost_count_ <= kGhostFactor * capacity_) return;
    for (auto it = std::prev(stack_.end());
         ghost_count_ > kGhostFactor * capacity_ && it != stack_.begin();) {
      const BlockId b = *it;
      Entry& e = entries_.at(b);
      auto prev = std::prev(it);
      if (e.status == Status::kHir && !e.resident) {
        stack_.erase(it);
        --ghost_count_;
        entries_.erase(b);
      }
      it = prev;
    }
  }

  std::size_t capacity_;
  std::size_t hir_capacity_;
  std::size_t lir_capacity_;
  std::size_t lir_count_ = 0;
  std::size_t resident_count_ = 0;
  std::size_t ghost_count_ = 0;
  std::list<BlockId> stack_;  // front = most recent
  std::list<BlockId> queue_;  // front = next HIR victim
  std::unordered_map<BlockId, Entry> entries_;
};

}  // namespace

PolicyPtr make_lirs(const LirsConfig& config) {
  return std::make_unique<LirsPolicy>(config);
}

}  // namespace ulc
