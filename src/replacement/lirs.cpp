// LIRS — Jiang & Zhang, SIGMETRICS 2002.
//
// LIRS is the single-level ancestor of ULC: it ranks blocks by the recency
// at which they were last referenced (IRR, the same quantity the ULC paper
// calls LLD) instead of by raw recency. Included as the extension the
// paper's Related Work points to, and used by tests/benches to sanity-check
// that LLD-based ranking beats LRU on weak-locality (looping) workloads even
// in one level.
//
// Structures: stack S (LIR blocks, resident and non-resident HIR blocks,
// most recent on top) and queue Q (resident HIR blocks, FIFO). The stack
// bottom is always a LIR block (pruning). Non-resident HIR entries (ghosts)
// are bounded by `kGhostFactor` x capacity, trimmed oldest-first.
//
// Storage: one slab node per tracked block carrying two intrusive link
// pairs — (s_prev, s_next) for S and (q_prev, q_next) for Q — so a resident
// HIR block sits on both lists through the same node (util/slab.h,
// SlabList's member-pointer parameters select the pair).
#include "replacement/cache_policy.h"
#include "util/ensure.h"
#include "util/flat_hash.h"
#include "util/slab.h"

namespace ulc {

namespace {

constexpr std::size_t kGhostFactor = 3;

// Byte accounting: the LIR/HIR split keeps its original formulas but is
// interpreted in SizeUnits — lir_bytes_ against lir_capacity_, total
// residency against capacity_. Ghost bookkeeping (stack entries without
// data) stays count-based. At unit size every byte quantity equals the
// original count, so the classic algorithm is recovered exactly.
class LirsPolicy final : public CachePolicy {
 public:
  explicit LirsPolicy(const LirsConfig& cfg) : capacity_(cfg.capacity) {
    ULC_REQUIRE(cfg.capacity >= 2, "LIRS needs capacity >= 2");
    hir_capacity_ = static_cast<std::size_t>(
        static_cast<double>(cfg.capacity) * cfg.hir_fraction);
    if (hir_capacity_ < 2) hir_capacity_ = 2;
    if (hir_capacity_ > capacity_ - 1) hir_capacity_ = capacity_ - 1;
    lir_capacity_ = capacity_ - hir_capacity_;
    // Residents plus the bounded ghost population.
    entries_.reserve((kGhostFactor + 1) * capacity_ + 2);
    slab_.reserve((kGhostFactor + 1) * capacity_ + 2);
  }

  bool touch(BlockId block, const AccessContext&) override {
    const SlabHandle* f = entries_.find(block);
    if (f == nullptr || !slab_[*f].resident) return false;
    const SlabHandle h = *f;
    Node& e = slab_[h];
    if (e.status == Status::kLir) {
      const bool was_bottom = (e.in_stack && stack_.back() == h);
      stack_move_top(h);
      if (was_bottom) prune();
      return true;
    }
    // Resident HIR hit.
    if (e.in_stack) {
      // Its recency beat the LIR bottom's recency: promote to LIR.
      stack_move_top(h);
      e.status = Status::kLir;
      queue_remove(h);
      ++lir_count_;
      lir_bytes_ += e.size;
      demote_lir_excess();
    } else {
      stack_push_top(h);
      queue_move_tail(h);
    }
    return true;
  }

  EvictResult insert(BlockId block, const AccessContext& ctx) override {
    ULC_REQUIRE(!contains(block), "insert of resident block");
    EvictResult ev;
    if (ctx.size > capacity_) {
      ev.admitted = false;  // larger than the whole budget
      return ev;
    }
    // Evict until the newcomer fits. The queue can run dry mid-loop on a
    // sized trace (a large block arriving into a LIR-heavy cache); then a
    // LIR block is force-demoted into Q and the loop continues. At unit
    // size this degenerates to the classic single evict_one().
    while (resident_bytes_ + ctx.size > capacity_) {
      if (queue_.empty()) {
        if (lir_count_ == 0) break;
        demote_lir_bottom();
        continue;
      }
      evict_one(ev);
    }
    // Look the block up only after evicting: evict_one()'s ghost trim can
    // drop this very block's ghost entry, which would dangle a handle read
    // up front (caught by Policies.ChurnKeepsIndexAndResidencyInAgreement).
    const SlabHandle* f = entries_.find(block);
    SlabHandle h = (f != nullptr) ? *f : kNullHandle;

    if (lir_bytes_ + ctx.size <= lir_capacity_ &&
        (h == kNullHandle || !slab_[h].in_stack)) {
      // Cold start: fill the LIR set first.
      if (h == kNullHandle) h = make_entry(block);
      Node& e = slab_[h];
      e.resident = true;
      e.status = Status::kLir;
      e.size = ctx.size;
      stack_push_top(h);
      ++lir_count_;
      lir_bytes_ += ctx.size;
      resident_bytes_ += ctx.size;
      ++resident_count_;
      return ev;
    }

    if (h != kNullHandle && slab_[h].in_stack) {
      // Ghost hit: the reuse distance was within the LIR recency scope.
      Node& e = slab_[h];
      ULC_ENSURE(e.status == Status::kHir, "ghost must be HIR");
      e.resident = true;
      e.status = Status::kLir;
      e.size = ctx.size;
      --ghost_count_;
      stack_move_top(h);
      ++lir_count_;
      lir_bytes_ += ctx.size;
      resident_bytes_ += ctx.size;
      ++resident_count_;
      demote_lir_excess();
      return ev;
    }

    if (h == kNullHandle) h = make_entry(block);
    Node& e = slab_[h];
    e.resident = true;
    e.status = Status::kHir;
    e.size = ctx.size;
    stack_push_top(h);
    queue_move_tail(h);
    resident_bytes_ += ctx.size;
    ++resident_count_;
    return ev;
  }

  bool erase(BlockId block) override {
    const SlabHandle* f = entries_.find(block);
    if (f == nullptr || !slab_[*f].resident) return false;
    const SlabHandle h = *f;
    Node& e = slab_[h];
    if (e.status == Status::kLir) {
      --lir_count_;
      lir_bytes_ -= e.size;
      if (e.in_stack) stack_remove(h);
      resident_bytes_ -= e.size;
      --resident_count_;
      drop_entry(h);
      prune();
      return true;
    }
    queue_remove(h);
    resident_bytes_ -= e.size;
    --resident_count_;
    if (e.in_stack) {
      e.resident = false;  // keep as ghost
      ++ghost_count_;
      trim_ghosts();
    } else {
      drop_entry(h);
    }
    return true;
  }

  bool contains(BlockId block) const override {
    const SlabHandle* f = entries_.find(block);
    return f != nullptr && slab_[*f].resident;
  }
  std::size_t size() const override { return resident_count_; }
  std::size_t capacity() const override { return capacity_; }
  std::uint64_t used_bytes() const override { return resident_bytes_; }
  const char* name() const override { return "LIRS"; }

 private:
  enum class Status : std::uint8_t { kLir, kHir };
  struct Node {
    BlockId block = 0;
    SizeUnits size = 1;
    SlabHandle s_prev = kNullHandle;
    SlabHandle s_next = kNullHandle;
    SlabHandle q_prev = kNullHandle;
    SlabHandle q_next = kNullHandle;
    Status status = Status::kHir;
    bool resident = false;
    bool in_stack = false;
    bool in_queue = false;
  };

  SlabHandle make_entry(BlockId block) {
    const SlabHandle h = slab_.alloc();
    Node& e = slab_[h];
    e.block = block;
    e.status = Status::kHir;
    e.resident = false;
    e.in_stack = false;
    e.in_queue = false;
    entries_.insert_new(block, h);
    return h;
  }

  void drop_entry(SlabHandle h) {
    entries_.erase(slab_[h].block);
    slab_.free(h);
  }

  void stack_push_top(SlabHandle h) {
    Node& e = slab_[h];
    if (e.in_stack) stack_.erase(h);
    stack_.push_front(h);
    e.in_stack = true;
  }
  void stack_move_top(SlabHandle h) { stack_push_top(h); }
  void stack_remove(SlabHandle h) {
    Node& e = slab_[h];
    ULC_ENSURE(e.in_stack, "stack_remove of non-stack entry");
    stack_.erase(h);
    e.in_stack = false;
  }

  void queue_move_tail(SlabHandle h) {
    Node& e = slab_[h];
    if (e.in_queue) queue_.erase(h);
    queue_.push_back(h);
    e.in_queue = true;
  }
  void queue_remove(SlabHandle h) {
    Node& e = slab_[h];
    if (!e.in_queue) return;
    queue_.erase(h);
    e.in_queue = false;
  }

  // Ensure the stack bottom is a LIR block; drop HIR entries off the bottom
  // (resident ones stay cached via Q; non-resident ones are forgotten).
  void prune() {
    while (!stack_.empty()) {
      const SlabHandle bottom = stack_.back();
      Node& e = slab_[bottom];
      if (e.status == Status::kLir) return;
      stack_.erase(bottom);
      e.in_stack = false;
      if (!e.resident) {
        --ghost_count_;
        drop_entry(bottom);
      }
    }
  }

  // Demote the stack-bottom LIR block to resident HIR (tail of Q) and prune.
  void demote_lir_bottom() {
    prune();
    ULC_ENSURE(!stack_.empty(), "LIR demotion with empty stack");
    const SlabHandle bottom = stack_.back();
    Node& e = slab_[bottom];
    ULC_ENSURE(e.status == Status::kLir, "pruned stack bottom must be LIR");
    stack_.erase(bottom);
    e.in_stack = false;
    e.status = Status::kHir;
    --lir_count_;
    lir_bytes_ -= e.size;
    queue_move_tail(bottom);
    prune();
  }

  // If LIR overflows its byte target, demote stack-bottom LIR blocks.
  void demote_lir_excess() {
    while (lir_bytes_ > lir_capacity_) demote_lir_bottom();
  }

  void evict_one(EvictResult& ev) {
    ULC_ENSURE(!queue_.empty(), "LIRS eviction with empty HIR queue");
    const SlabHandle vh = queue_.front();
    Node& e = slab_[vh];
    ev.add(e.block);
    queue_.erase(vh);
    e.in_queue = false;
    e.resident = false;
    resident_bytes_ -= e.size;
    --resident_count_;
    if (e.in_stack) {
      ++ghost_count_;
      trim_ghosts();
    } else {
      drop_entry(vh);
    }
  }

  void trim_ghosts() {
    // Bound metadata: ghosts hold identities, not data — a count bound.
    if (ghost_count_ <= kGhostFactor * capacity_) return;  // ulc-lint: allow(count-capacity)
    SlabHandle it = stack_.back();
    while (ghost_count_ > kGhostFactor * capacity_ && it != kNullHandle &&  // ulc-lint: allow(count-capacity)
           it != stack_.front()) {
      const SlabHandle prev = stack_.prev(it);
      Node& e = slab_[it];
      if (e.status == Status::kHir && !e.resident) {
        stack_.erase(it);
        --ghost_count_;
        drop_entry(it);
      }
      it = prev;
    }
  }

  std::size_t capacity_;       // byte budget, in SizeUnits
  std::size_t hir_capacity_;
  std::size_t lir_capacity_;   // byte budget for the LIR set
  std::size_t lir_count_ = 0;
  std::uint64_t lir_bytes_ = 0;
  std::size_t resident_count_ = 0;
  std::uint64_t resident_bytes_ = 0;
  std::size_t ghost_count_ = 0;
  Slab<Node> slab_;
  SlabList<Node, &Node::s_prev, &Node::s_next> stack_{&slab_};  // front = MRU
  SlabList<Node, &Node::q_prev, &Node::q_next> queue_{&slab_};  // front = victim
  FlatMap<BlockId, SlabHandle> entries_;
};

}  // namespace

PolicyPtr make_lirs(const LirsConfig& config) {
  return std::make_unique<LirsPolicy>(config);
}

}  // namespace ulc
