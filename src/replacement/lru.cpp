// Least Recently Used — the policy underlying almost all existing file
// systems (paper §5) and the per-level policy of the indLRU baseline.
//
// Slab-backed (util/slab.h): one arena node per resident block, FlatMap
// index sized to capacity at construction, so the steady-state access path
// performs no allocation and no rehash.
#include "replacement/cache_policy.h"
#include "util/byte_budget.h"
#include "util/ensure.h"
#include "util/flat_hash.h"
#include "util/slab.h"

namespace ulc {

namespace {

class LruPolicy final : public CachePolicy {
 public:
  explicit LruPolicy(std::size_t capacity) : capacity_(capacity), budget_(capacity) {
    ULC_REQUIRE(capacity > 0, "LRU capacity must be positive");
    index_.reserve(capacity_ + 1);
    slab_.reserve(capacity_ + 1);
  }

  void prefetch(BlockId block) const override { index_.prefetch(block); }

  bool touch(BlockId block, const AccessContext&) override {
    const SlabHandle* h = index_.find(block);
    if (h == nullptr) return false;
    list_.move_front(*h);
    return true;
  }

  EvictResult insert(BlockId block, const AccessContext& ctx) override {
    ULC_REQUIRE(!index_.contains(block), "insert of present block");
    EvictResult ev;
    if (!budget_.can_ever_fit(ctx.size)) {
      ev.admitted = false;  // larger than the whole budget: never cacheable
      return ev;
    }
    while (budget_.needs_eviction(ctx.size) && !list_.empty()) {
      const SlabHandle victim = list_.back();
      ev.add(slab_[victim].block);
      budget_.release(slab_[victim].size);
      index_.erase(slab_[victim].block);
      list_.erase(victim);
      slab_.free(victim);
    }
    const SlabHandle h = slab_.alloc();
    slab_[h].block = block;
    slab_[h].size = ctx.size;
    budget_.charge(ctx.size);
    list_.push_front(h);
    index_.insert_new(block, h);
    return ev;
  }

  bool erase(BlockId block) override {
    const SlabHandle* h = index_.find(block);
    if (h == nullptr) return false;
    budget_.release(slab_[*h].size);
    list_.erase(*h);
    slab_.free(*h);
    index_.erase(block);
    return true;
  }

  bool contains(BlockId block) const override { return index_.contains(block); }
  std::size_t size() const override { return list_.size(); }
  std::size_t capacity() const override { return capacity_; }
  std::uint64_t used_bytes() const override { return budget_.used(); }
  const char* name() const override { return "LRU"; }

 private:
  struct Node {
    BlockId block = 0;
    SizeUnits size = 1;
    SlabHandle prev = kNullHandle;
    SlabHandle next = kNullHandle;
  };

  std::size_t capacity_;
  ByteBudget budget_;
  Slab<Node> slab_;
  SlabList<Node> list_{&slab_};  // front = MRU
  FlatMap<BlockId, SlabHandle> index_;
};

}  // namespace

PolicyPtr make_lru(std::size_t capacity) {
  return std::make_unique<LruPolicy>(capacity);
}

}  // namespace ulc
