// 2Q — Johnson & Shasha, VLDB 1994 (the "full version" of the algorithm).
//
// Like LIRS and ULC, 2Q refuses to give a first-touch block the benefit of
// the doubt: new blocks enter a small FIFO (A1in); only blocks re-referenced
// after leaving it — their id still in the A1out ghost — are promoted to the
// main LRU (Am). Included as the classic admission-filter baseline against
// which ULC's Lout/second-touch behaviour can be compared at one level.
#include <list>
#include <unordered_map>

#include "replacement/cache_policy.h"
#include "util/ensure.h"

namespace ulc {

namespace {

class TwoQPolicy final : public CachePolicy {
 public:
  explicit TwoQPolicy(const TwoQConfig& cfg) : capacity_(cfg.capacity) {
    ULC_REQUIRE(cfg.capacity >= 2, "2Q needs capacity >= 2");
    kin_ = static_cast<std::size_t>(static_cast<double>(capacity_) * cfg.kin_fraction);
    if (kin_ < 1) kin_ = 1;
    if (kin_ > capacity_ - 1) kin_ = capacity_ - 1;
    kout_ =
        static_cast<std::size_t>(static_cast<double>(capacity_) * cfg.kout_fraction);
    if (kout_ < 1) kout_ = 1;
  }

  bool touch(BlockId block, const AccessContext&) override {
    auto it = index_.find(block);
    if (it == index_.end()) return false;
    Entry& e = it->second;
    switch (e.where) {
      case Where::kAm:
        am_.splice(am_.begin(), am_, e.pos);  // LRU bump
        return true;
      case Where::kA1in:
        return true;  // 2Q: hits in A1in do not reorder
      case Where::kA1out:
        return false;  // ghost: not resident
    }
    return false;
  }

  EvictResult insert(BlockId block, const AccessContext&) override {
    EvictResult ev;
    auto it = index_.find(block);
    if (it != index_.end() && it->second.where == Where::kA1out) {
      // Re-reference after FIFO eviction: this block has real reuse; promote
      // into the main LRU.
      a1out_.erase(it->second.pos);
      index_.erase(it);
      ev = reclaim_for(block);
      am_.push_front(block);
      index_[block] = Entry{Where::kAm, am_.begin()};
      return ev;
    }
    ULC_REQUIRE(it == index_.end(), "insert of resident block");
    ev = reclaim_for(block);
    a1in_.push_front(block);
    index_[block] = Entry{Where::kA1in, a1in_.begin()};
    return ev;
  }

  bool erase(BlockId block) override {
    auto it = index_.find(block);
    if (it == index_.end() || it->second.where == Where::kA1out) return false;
    if (it->second.where == Where::kAm) {
      am_.erase(it->second.pos);
    } else {
      a1in_.erase(it->second.pos);
    }
    index_.erase(it);
    return true;
  }

  bool contains(BlockId block) const override {
    auto it = index_.find(block);
    return it != index_.end() && it->second.where != Where::kA1out;
  }
  std::size_t size() const override { return am_.size() + a1in_.size(); }
  std::size_t capacity() const override { return capacity_; }
  const char* name() const override { return "2Q"; }

 private:
  enum class Where { kAm, kA1in, kA1out };
  struct Entry {
    Where where;
    std::list<BlockId>::iterator pos;
  };

  // Frees one slot if the cache is full (the 2Q "reclaimfor" procedure).
  EvictResult reclaim_for(BlockId) {
    EvictResult ev;
    if (size() < capacity_) return ev;
    if (a1in_.size() > kin_ || am_.empty()) {
      // Page out the A1in FIFO tail; remember its identity in A1out.
      const BlockId victim = a1in_.back();
      a1in_.pop_back();
      ev = EvictResult{true, victim};
      a1out_.push_front(victim);
      index_[victim] = Entry{Where::kA1out, a1out_.begin()};
      if (a1out_.size() > kout_) {
        index_.erase(a1out_.back());
        a1out_.pop_back();
      }
    } else {
      const BlockId victim = am_.back();
      am_.pop_back();
      index_.erase(victim);
      ev = EvictResult{true, victim};
    }
    return ev;
  }

  std::size_t capacity_;
  std::size_t kin_;
  std::size_t kout_;
  std::list<BlockId> am_;     // main LRU, front = MRU
  std::list<BlockId> a1in_;   // admission FIFO, front = newest
  std::list<BlockId> a1out_;  // ghost FIFO of evicted A1in ids
  std::unordered_map<BlockId, Entry> index_;
};

}  // namespace

PolicyPtr make_two_q(const TwoQConfig& config) {
  return std::make_unique<TwoQPolicy>(config);
}

}  // namespace ulc
