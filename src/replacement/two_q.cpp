// 2Q — Johnson & Shasha, VLDB 1994 (the "full version" of the algorithm).
//
// Like LIRS and ULC, 2Q refuses to give a first-touch block the benefit of
// the doubt: new blocks enter a small FIFO (A1in); only blocks re-referenced
// after leaving it — their id still in the A1out ghost — are promoted to the
// main LRU (Am). Included as the classic admission-filter baseline against
// which ULC's Lout/second-touch behaviour can be compared at one level.
//
// Storage: one slab node per tracked block (resident or ghost) with a
// `where` tag; Am/A1in/A1out are three intrusive lists over the same slab,
// and a node sits on exactly one of them at a time (util/slab.h).
#include "replacement/cache_policy.h"
#include "util/byte_budget.h"
#include "util/ensure.h"
#include "util/flat_hash.h"
#include "util/slab.h"

namespace ulc {

namespace {

class TwoQPolicy final : public CachePolicy {
 public:
  explicit TwoQPolicy(const TwoQConfig& cfg)
      : capacity_(cfg.capacity), budget_(cfg.capacity) {
    ULC_REQUIRE(cfg.capacity >= 2, "2Q needs capacity >= 2");
    kin_ = static_cast<std::size_t>(static_cast<double>(capacity_) * cfg.kin_fraction);
    if (kin_ < 1) kin_ = 1;
    if (kin_ > capacity_ - 1) kin_ = capacity_ - 1;
    kout_ =
        static_cast<std::size_t>(static_cast<double>(capacity_) * cfg.kout_fraction);
    if (kout_ < 1) kout_ = 1;
    // Residents plus ghosts bound the tracked population.
    index_.reserve(capacity_ + kout_ + 1);
    slab_.reserve(capacity_ + kout_ + 1);
  }

  bool touch(BlockId block, const AccessContext&) override {
    const SlabHandle* h = index_.find(block);
    if (h == nullptr) return false;
    switch (slab_[*h].where) {
      case Where::kAm:
        am_.move_front(*h);  // LRU bump
        return true;
      case Where::kA1in:
        return true;  // 2Q: hits in A1in do not reorder
      case Where::kA1out:
        return false;  // ghost: not resident
    }
    return false;
  }

  EvictResult insert(BlockId block, const AccessContext& ctx) override {
    EvictResult ev;
    if (!budget_.can_ever_fit(ctx.size)) {
      ev.admitted = false;
      return ev;
    }
    const SlabHandle* h = index_.find(block);
    if (h != nullptr && slab_[*h].where == Where::kA1out) {
      // Re-reference after FIFO eviction: this block has real reuse; promote
      // into the main LRU.
      const SlabHandle gh = *h;
      a1out_.erase(gh);
      slab_.free(gh);
      index_.erase(block);
      reclaim_for(ctx.size, ev);
      push_node(block, Where::kAm, ctx.size);
      return ev;
    }
    ULC_REQUIRE(h == nullptr, "insert of resident block");
    reclaim_for(ctx.size, ev);
    push_node(block, Where::kA1in, ctx.size);
    return ev;
  }

  bool erase(BlockId block) override {
    const SlabHandle* h = index_.find(block);
    if (h == nullptr || slab_[*h].where == Where::kA1out) return false;
    const SlabHandle nh = *h;
    budget_.release(slab_[nh].size);
    if (slab_[nh].where == Where::kAm) {
      am_.erase(nh);
    } else {
      a1in_bytes_ -= slab_[nh].size;
      a1in_.erase(nh);
    }
    slab_.free(nh);
    index_.erase(block);
    return true;
  }

  bool contains(BlockId block) const override {
    const SlabHandle* h = index_.find(block);
    return h != nullptr && slab_[*h].where != Where::kA1out;
  }
  std::size_t size() const override { return am_.size() + a1in_.size(); }
  std::size_t capacity() const override { return capacity_; }
  std::uint64_t used_bytes() const override { return budget_.used(); }
  const char* name() const override { return "2Q"; }

 private:
  enum class Where : std::uint8_t { kAm, kA1in, kA1out };
  struct Node {
    BlockId block = 0;
    SizeUnits size = 1;
    SlabHandle prev = kNullHandle;
    SlabHandle next = kNullHandle;
    Where where = Where::kAm;
  };

  void push_node(BlockId block, Where where, SizeUnits size) {
    const SlabHandle h = slab_.alloc();
    Node& n = slab_[h];
    n.block = block;
    n.size = size;
    n.where = where;
    switch (where) {
      case Where::kAm:
        budget_.charge(size);
        am_.push_front(h);
        break;
      case Where::kA1in:
        budget_.charge(size);
        a1in_bytes_ += size;
        a1in_.push_front(h);
        break;
      case Where::kA1out:
        // Ghost: identity only, no budget charge.
        a1out_.push_front(h);
        break;
    }
    index_.insert_new(block, h);
  }

  // Frees room for an incoming `size`-unit block (the 2Q "reclaimfor"
  // procedure, looped until the newcomer fits).
  void reclaim_for(SizeUnits size, EvictResult& ev) {
    while (budget_.needs_eviction(size) && !(a1in_.empty() && am_.empty())) {
      if ((a1in_bytes_ > kin_ || am_.empty()) && !a1in_.empty()) {
        // Page out the A1in FIFO tail; remember its identity in A1out.
        const SlabHandle vh = a1in_.back();
        const BlockId victim = slab_[vh].block;
        budget_.release(slab_[vh].size);
        a1in_bytes_ -= slab_[vh].size;
        a1in_.erase(vh);
        slab_.free(vh);
        index_.erase(victim);
        ev.add(victim);
        push_node(victim, Where::kA1out, 1);
        // Ghosts hold identities, not data: a count bound is the measure.
        if (a1out_.size() > kout_) {  // ulc-lint: allow(count-capacity)
          const SlabHandle gh = a1out_.back();
          index_.erase(slab_[gh].block);
          a1out_.erase(gh);
          slab_.free(gh);
        }
      } else {
        const SlabHandle vh = am_.back();
        const BlockId victim = slab_[vh].block;
        budget_.release(slab_[vh].size);
        am_.erase(vh);
        slab_.free(vh);
        index_.erase(victim);
        ev.add(victim);
      }
    }
  }

  std::size_t capacity_;
  ByteBudget budget_;     // Am + A1in residents
  std::uint64_t a1in_bytes_ = 0;
  std::size_t kin_;
  std::size_t kout_;
  Slab<Node> slab_;
  SlabList<Node> am_{&slab_};     // main LRU, front = MRU
  SlabList<Node> a1in_{&slab_};   // admission FIFO, front = newest
  SlabList<Node> a1out_{&slab_};  // ghost FIFO of evicted A1in ids
  FlatMap<BlockId, SlabHandle> index_;
};

}  // namespace

PolicyPtr make_two_q(const TwoQConfig& config) {
  return std::make_unique<TwoQPolicy>(config);
}

}  // namespace ulc
