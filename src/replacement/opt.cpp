// OPT (Belady's MIN, with bypass) — evicts the resident block whose next
// reference is farthest in the future, and declines to cache a fetched
// block that is itself the farthest. The criterion is the paper's ND
// measure; OPT is the upper bound every on-line policy is tested against.
#include <set>
#include <unordered_map>

#include "measures/next_use.h"
#include "replacement/cache_policy.h"
#include "util/byte_budget.h"
#include "util/ensure.h"

namespace ulc {

namespace {

class OptPolicy final : public CachePolicy {
 public:
  explicit OptPolicy(std::size_t capacity) : capacity_(capacity), budget_(capacity) {
    ULC_REQUIRE(capacity > 0, "OPT capacity must be positive");
  }

  bool touch(BlockId block, const AccessContext& ctx) override {
    auto it = index_.find(block);
    if (it == index_.end()) return false;
    queue_.erase({it->second.next_use, block});
    it->second.next_use = effective_next(ctx);
    queue_.insert({it->second.next_use, block});
    return true;
  }

  EvictResult insert(BlockId block, const AccessContext& ctx) override {
    ULC_REQUIRE(index_.find(block) == index_.end(), "insert of present block");
    EvictResult ev;
    const std::uint64_t nu = effective_next(ctx);
    if (!budget_.can_ever_fit(ctx.size)) {
      ev.admitted = false;
      return ev;
    }
    // Sized blocks make true offline optimality a knapsack problem; this
    // stays the farthest-next-use greedy, which coincides with Belady at
    // unit size and remains an aggressive (if no longer provably optimal)
    // clairvoyant reference for sized traces.
    while (budget_.needs_eviction(ctx.size) && !queue_.empty()) {
      const auto victim = *queue_.rbegin();
      // Bypass: caching a block whose next use is farther than every
      // resident's cannot help (file caches may decline to cache — the same
      // freedom ULC's L_out status uses).
      if (nu >= victim.first) {
        ev.admitted = false;
        return ev;
      }
      ev.add(victim.second);
      budget_.release(index_.at(victim.second).size);
      queue_.erase(victim);
      index_.erase(victim.second);
    }
    index_[block] = Resident{nu, ctx.size};
    budget_.charge(ctx.size);
    queue_.insert({nu, block});
    return ev;
  }

  bool erase(BlockId block) override {
    auto it = index_.find(block);
    if (it == index_.end()) return false;
    queue_.erase({it->second.next_use, block});
    budget_.release(it->second.size);
    index_.erase(it);
    return true;
  }

  bool contains(BlockId block) const override { return index_.count(block) != 0; }
  std::size_t size() const override { return index_.size(); }
  std::size_t capacity() const override { return capacity_; }
  std::uint64_t used_bytes() const override { return budget_.used(); }
  const char* name() const override { return "OPT"; }

 private:
  struct Resident {
    std::uint64_t next_use = 0;
    SizeUnits size = 1;
  };

  static std::uint64_t effective_next(const AccessContext& ctx) {
    // kNever sorts after every finite next use, so never-again blocks are
    // the first eviction candidates.
    return ctx.next_use;
  }

  std::size_t capacity_;
  ByteBudget budget_;
  // Offline oracle, not a hot path.
  std::unordered_map<BlockId, Resident> index_;  // ulc-lint: allow(hot-container)
  std::set<std::pair<std::uint64_t, BlockId>> queue_;
};

}  // namespace

PolicyPtr make_opt(std::size_t capacity) {
  return std::make_unique<OptPolicy>(capacity);
}

}  // namespace ulc
