// Drivers wiring the ULC client engine(s) into the simulated hierarchy.
//
// Single client (Figure 6): one UlcClient owns every level's placement; the
// lower levels have no decisions to make, so the driver only has to account
// hits, misses and Demote transfers.
//
// Multi client (Figure 7, §3.2.2): one UlcClient per client, each with an
// elastic second level, over one shared GlruServer. The driver plays the
// network: it forwards Retrieve/Demote commands, queues the server's
// replacement notices per owner, and delivers them before the owner's next
// request (the paper piggybacks them on the next retrieved block; delivery
// order is identical in a trace-driven simulation). Shared blocks taken to
// another client's L1 leave other clients' metadata stale; the driver
// reconciles that at access time (counted as stale_syncs).
#include <memory>
#include <vector>

#include "hierarchy/hierarchy.h"
#include "ulc/glru_server.h"
#include "ulc/ulc_client.h"
#include "util/flat_hash.h"
#include "util/ensure.h"

namespace ulc {

namespace {

namespace {

// tempLRU buffers are real client memory (paper footnote 3): carve them out
// of the client cache so cross-scheme comparisons stay fair.
std::vector<std::size_t> carve_temp(std::vector<std::size_t> caps,
                                    std::size_t temp_capacity) {
  ULC_REQUIRE(temp_capacity < caps[0],
              "tempLRU must be smaller than the client cache");
  caps[0] -= temp_capacity;
  return caps;
}

}  // namespace

namespace {

UlcConfig single_config(std::vector<std::size_t> caps, std::size_t temp_capacity) {
  UlcConfig cfg;
  cfg.capacities = carve_temp(std::move(caps), temp_capacity);
  cfg.temp_capacity = temp_capacity;
  return cfg;
}

}  // namespace

class UlcSingleScheme final : public MultiLevelScheme {
 public:
  UlcSingleScheme(std::vector<std::size_t> caps, std::size_t temp_capacity)
      : client_(single_config(std::move(caps), temp_capacity)),
        temp_capacity_(temp_capacity) {
    stats_.resize(client_.levels());
  }

  void access(const Request& request) override {
    ++stats_.references;
    const UlcAccess& a = client_.access(request.block, request.size);
    if (request.op == Op::kWrite) {
      if (a.placed_level != kLevelOut) {
        dirty_.put(request.block, request.size);
      } else {
        // Uncached write goes straight through to disk. The freshest data
        // is on disk now, so any older dirty marking (a stale copy another
        // client parked lower down) is superseded — writing it back later
        // would clobber this newer version.
        dirty_.erase(request.block);
        ++stats_.writebacks;
        journal_write_back(request.block, 0, request.size);
      }
    }
    if (a.temp_hit) {
      // Block served from the client's tempLRU buffers: L1-speed. If the
      // engine repositioned it at a lower level than where a copy already
      // sits, the client ships it down — costed like a demotion.
      stats_.count_hit(0, request.size);
      if (a.placed_level != kLevelOut && a.placed_level > 0 &&
          a.placed_level != a.hit_level) {
        for (std::size_t k = 0; k < a.placed_level; ++k)
          stats_.count_demote(k, a.retrieve.size);
      }
    } else if (a.hit_level != kLevelOut) {
      stats_.count_hit(a.hit_level, request.size);
    } else {
      stats_.count_miss(request.size);
    }
    for (const DemoteCmd& cmd : a.demotions) {
      // A demote to "out" discards the block at its source level — after a
      // write-back if it is dirty. Otherwise a multi-hop Demote(b, f, t)
      // crosses every link between f and t.
      if (cmd.to == kLevelOut) continue;
      for (std::size_t k = cmd.from; k < cmd.to; ++k)
        stats_.count_demote(k, cmd.size);
    }
    if (auditing()) emit_events(request.block, a);
    for (const DemoteCmd& cmd : a.demotions) {
      if (cmd.to == kLevelOut) write_back_if_dirty(cmd.block, cmd.from);
    }
  }

  // Stage-1 prefetch: the block's groups in the uniLRUstack index and the
  // dirty set — pure prefetch instructions, no dependent loads.
  void prefetch(const Request& request) const override {
    client_.prefetch_index(request.block);
    dirty_.prefetch(request.block);
  }

  // Pipelined loop over direct calls (the class is final, so access() and
  // prefetch() devirtualize): while access i runs, the group prefetches for
  // i+4 are already in flight — several slots ahead, because one access
  // (~70ns) is not enough to cover a DRAM miss; four gives margin without
  // risking eviction before use. A deeper stage that resolved the next
  // request's index entry and prefetched its node was tried and REGRESSED
  // ~8%: with the hash group already prefetched, the extra find per request
  // costs more than the node-line stall it hides. The audit-sink check is
  // hoisted to one test per batch: auditing runs (test-only) keep the plain
  // per-request loop.
  void access_batch(std::span<const Request> batch) override {
    if (auditing()) {
      MultiLevelScheme::access_batch(batch);
      return;
    }
    const std::size_t n = batch.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (i + 4 < n) prefetch(batch[i + 4]);
      access(batch[i]);
    }
  }

  const HierarchyStats& stats() const override { return stats_; }
  void reset_stats() override { stats_.clear(); }
  const char* name() const override { return "ULC"; }

  AuditTraits audit_traits() const override {
    AuditTraits t;
    // tempLRU copies live outside the uniLRUstack's residency model, so the
    // footnote-3 variant is stats-checked only.
    t.supported = temp_capacity_ == 0;
    t.exclusive = true;
    t.bottom_evict_only = true;
    for (std::size_t l = 0; l < client_.levels(); ++l)
      t.capacities.push_back(client_.capacity(l));
    return t;
  }

  void audit_resident_levels(ClientId, BlockId block,
                             std::vector<std::size_t>& out) const override {
    const std::size_t l = client_.level_of(block);
    if (l != kLevelOut) out.push_back(l);
  }

  std::size_t audit_level_size(ClientId, std::size_t level) const override {
    return client_.level_size(level);
  }

  std::uint64_t audit_level_bytes(ClientId, std::size_t level) const override {
    return client_.level_bytes(level);
  }

  bool audit_check_internal() const override { return client_.check_consistency(); }
  std::size_t audit_stack_count() const override { return 1; }
  const UniLruStack* audit_stack(std::size_t) const override {
    return &client_.stack();
  }

  // The directory *is* the residency model in single-client ULC, so a
  // resync both repairs the metadata and (conceptually) acknowledges the
  // lost copy — narrated as kLost so the shadow auditor drops it too.
  bool supports_resync() const override { return true; }

  bool resync_drop(ClientId, BlockId block, std::size_t level) override {
    if (!client_.resync_evict(block, level)) return false;
    // The copy (and any dirty data) is gone: measured as loss, not written
    // back.
    if (const SizeUnits* s = dirty_.find(block))
      journal_record_loss(block, level, *s);
    dirty_.erase(block);
    audit_emit(AuditEvent::Kind::kLost, block, level);
    return true;
  }

  std::size_t resync_level(ClientId, std::size_t level) override {
    std::vector<BlockId> lost;
    const std::size_t n = client_.resync_wipe_level(level, &lost);
    for (BlockId b : lost) {
      if (const SizeUnits* s = dirty_.find(b)) journal_record_loss(b, level, *s);
      dirty_.erase(b);
      audit_emit(AuditEvent::Kind::kLost, b, level);
    }
    return n;
  }

  const UlcClient& client() const { return client_; }

 private:
  // Narrates the access in physical process order: the Retrieve serve, then
  // the Demote cascade top-down — the order the client actually issues the
  // transfers on the wire (§3.2.1) — then the placement of the requested
  // block. Byte budgets are audited at end of access, so a transfer may
  // transiently land before the slot below it drains. A Demote(b, f, out) is
  // a discard at f with no transfer — the collapsed cascade through every
  // lower level — hence kEvict with through_bottom.
  void emit_events(BlockId block, const UlcAccess& a) {
    if (a.temp_hit) return;  // only with tempLRU, which is unsupported
    if (a.hit_level != kLevelOut && a.placed_level == a.hit_level) return;
    if (a.hit_level != kLevelOut)
      audit_emit(AuditEvent::Kind::kServe, block, a.hit_level);
    for (const DemoteCmd& cmd : a.demotions) {
      if (cmd.to == kLevelOut) {
        audit_emit(AuditEvent::Kind::kEvict, cmd.block, cmd.from, kAuditNoLevel,
                   0, /*through_bottom=*/true);
      } else {
        audit_emit(AuditEvent::Kind::kDemote, cmd.block, cmd.from, cmd.to);
      }
    }
    if (a.placed_level != kLevelOut)
      audit_emit(AuditEvent::Kind::kPlace, block, kAuditNoLevel, a.placed_level,
                 0, /*through_bottom=*/false, a.retrieve.size);
  }

  // Write-back choke point: drops the dirty marking only after the
  // write-back is narrated and journaled.
  bool write_back_if_dirty(BlockId b, std::size_t from) {
    const SizeUnits* size = dirty_.find(b);
    if (size == nullptr) return false;
    const SizeUnits bytes = *size;
    dirty_.erase(b);
    ++stats_.writebacks;
    journal_write_back(b, from, bytes);
    return true;
  }

  UlcClient client_;
  std::size_t temp_capacity_;
  FlatMap<BlockId, SizeUnits> dirty_;  // dirty block -> written size
  HierarchyStats stats_;
};

class UlcMultiScheme final : public MultiLevelScheme {
 public:
  UlcMultiScheme(std::size_t client_cap, std::size_t server_cap,
                 std::size_t n_clients, std::size_t temp_capacity)
      : server_(server_cap), temp_capacity_(temp_capacity) {
    ULC_REQUIRE(n_clients >= 1, "ULC-multi needs at least one client");
    UlcConfig cfg;
    cfg.capacities = carve_temp({client_cap, 0}, temp_capacity);
    cfg.last_level_elastic = true;
    cfg.temp_capacity = temp_capacity;
    for (std::size_t c = 0; c < n_clients; ++c)
      clients_.push_back(std::make_unique<UlcClient>(cfg));
    pending_notices_.resize(n_clients);
    stats_.resize(2);
  }

  void access(const Request& request) override {
    ULC_REQUIRE(request.client < clients_.size(), "client id out of range");
    ++stats_.references;
    const ClientId c = request.client;
    UlcClient& client = *clients_[c];

    deliver_notices(c);

    // Reconcile shared-block state: another client may have taken a block
    // this client still believes is at the server.
    if (client.level_of(request.block) == 1 && !server_.contains(request.block)) {
      ++stats_.stale_syncs;
      client.external_evict(request.block);
    }

    const UlcAccess& a = client.access(request.block, request.size);
    if (request.op == Op::kWrite) {
      if (a.placed_level != kLevelOut) {
        dirty_.put(request.block, request.size);
      } else {
        // Uncached write goes straight through to disk. The freshest data
        // is on disk now, so any older dirty marking (a stale copy another
        // client parked lower down) is superseded — writing it back later
        // would clobber this newer version.
        dirty_.erase(request.block);
        ++stats_.writebacks;
        journal_write_back(request.block, 0, request.size);
      }
    }

    if (a.temp_hit) {
      // Served from the client's tempLRU buffers at L1 speed. Server-side
      // bookkeeping still follows the engine's direction: a server copy is
      // kept (and refreshed on the piggybacked traffic) or dropped when the
      // block moved up to the client cache proper.
      stats_.count_hit(0, request.size);
      if (a.hit_level == 1) {
        if (a.retrieve.cache_at == 1) {
          server_.refresh(request.block, c);
        } else {
          take_respecting_owner(request.block, c);
        }
      } else if (a.retrieve.cache_at == 1) {
        // Uncached block directed to the server level: if another client
        // already placed a shared copy, just refresh it; otherwise ship the
        // local copy down (costed as a demotion transfer).
        if (server_.contains(request.block)) {
          server_.refresh(request.block, c);
        } else {
          stats_.count_demote(0, a.retrieve.size);
          if (!place_at_server(request.block, c, a.retrieve.size).admitted)
            unplace(request.block, c);
        }
      }
    } else if (a.hit_level == 0) {
      stats_.count_hit(0, request.size);
    } else if (a.hit_level == 1) {
      stats_.count_hit(1, request.size);
      if (a.retrieve.cache_at == 1) {
        const bool ok = server_.refresh(request.block, c);
        ULC_ENSURE(ok, "server lost a block the client was promised");
      } else {
        take_respecting_owner(request.block, c);
      }
    } else {
      // The engine believes the block is uncached, but a shared copy may sit
      // at the server, placed there under another client's direction.
      if (server_.contains(request.block)) {
        stats_.count_hit(1, request.size);
        if (a.retrieve.cache_at == 1) {
          server_.refresh(request.block, c);
        } else if (a.retrieve.cache_at == 0) {
          take_respecting_owner(request.block, c);
        }
        // cache_at == out: a pass-through read; gLRU order is driven by
        // cache requests only, so the server copy and its recency stay.
      } else {
        stats_.count_miss(request.size);
        if (a.retrieve.cache_at == 1) {
          if (place_at_server(request.block, c, a.retrieve.size).admitted) {
            audit_emit(AuditEvent::Kind::kPlace, request.block, kAuditNoLevel,
                       1, c, /*through_bottom=*/false, a.retrieve.size);
          } else {
            unplace(request.block, c);
          }
        }
      }
    }

    for (const DemoteCmd& d : a.demotions) {
      ULC_ENSURE(d.from == 0 && d.to == 1, "multi-client ULC demotes only L1->L2");
      stats_.count_demote(0, d.size);
      const PlaceOutcome r = place_at_server(d.block, c, d.size);
      if (!r.admitted) {
        // The transfer was attempted — the client has no server directory —
        // but the server cannot hold a block larger than its whole budget:
        // charge the link, then the block leaves through the bottom.
        audit_emit(AuditEvent::Kind::kCharge, d.block, 0, 1, c,
                   /*through_bottom=*/false, d.size);
        audit_emit(AuditEvent::Kind::kEvict, d.block, 0, kAuditNoLevel, c,
                   /*through_bottom=*/true);
        unplace(d.block, c);
      } else {
        audit_emit(r.merged ? AuditEvent::Kind::kDemoteMerge
                            : AuditEvent::Kind::kDemote,
                   d.block, 0, 1, c);
      }
    }
    // The requested block's own landing at this client's L1 goes last: the
    // demotion cascade above freed its slot.
    if (!a.temp_hit && a.placed_level == 0 && a.hit_level != 0)
      audit_emit(AuditEvent::Kind::kPlace, request.block, kAuditNoLevel, 0, c,
                 /*through_bottom=*/false, a.retrieve.size);
  }

  // Stage-1 prefetch: the owning client's stack index, the shared server's
  // index, and the dirty set — the three maps access() probes first.
  void prefetch(const Request& request) const override {
    if (request.client >= clients_.size()) return;
    clients_[request.client]->prefetch_index(request.block);
    server_.prefetch(request.block);
    dirty_.prefetch(request.block);
  }

  // Same pipelined loop as the single-client driver (and the same verdict
  // on a deeper resolve stage: measured as a regression, see there).
  void access_batch(std::span<const Request> batch) override {
    if (auditing()) {
      MultiLevelScheme::access_batch(batch);
      return;
    }
    const std::size_t n = batch.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (i + 4 < n) prefetch(batch[i + 4]);
      access(batch[i]);
    }
  }

  const HierarchyStats& stats() const override { return stats_; }
  void reset_stats() override { stats_.clear(); }
  const char* name() const override { return "ULC"; }

  AuditTraits audit_traits() const override {
    AuditTraits t;
    t.supported = temp_capacity_ == 0;
    t.bottom_evict_only = true;
    t.clients = clients_.size();
    t.capacities = {clients_[0]->capacity(0), server_.capacity()};
    return t;
  }

  void audit_resident_levels(ClientId client, BlockId block,
                             std::vector<std::size_t>& out) const override {
    // The engine's metadata is authoritative for the client's own cache;
    // server residency comes from the server itself (per-client views of it
    // are allowed to lag behind the piggybacked notices).
    if (clients_[client]->level_of(block) == 0) out.push_back(0);
    if (server_.contains(block)) out.push_back(1);
  }

  std::size_t audit_level_size(ClientId client, std::size_t level) const override {
    return level == 0 ? clients_[client]->level_size(0) : server_.size();
  }

  std::uint64_t audit_level_bytes(ClientId client, std::size_t level) const override {
    return level == 0 ? clients_[client]->level_bytes(0) : server_.used_bytes();
  }

  bool audit_check_internal() const override {
    for (const auto& cl : clients_) {
      if (!cl->check_consistency()) return false;
    }
    return server_.check_consistency();
  }

  std::size_t audit_stack_count() const override { return clients_.size(); }
  const UniLruStack* audit_stack(std::size_t index) const override {
    return &clients_[index]->stack();
  }

  bool supports_resync() const override { return true; }

  // kLost is narrated only when a *real* copy disappears (the server held
  // the block); dropping a client's stale level-1 claim is metadata-only —
  // the shadow never saw that copy, so no event.
  bool resync_drop(ClientId client, BlockId block, std::size_t level) override {
    if (level == 0) {
      if (!clients_[client]->resync_evict(block, 0)) return false;
      if (const SizeUnits* s = dirty_.find(block))
        journal_record_loss(block, 0, *s);
      dirty_.erase(block);
      audit_emit(AuditEvent::Kind::kLost, block, 0, kAuditNoLevel, client);
      return true;
    }
    const bool had = server_.contains(block);
    if (had) server_.take(block);
    bool claimed = false;
    for (auto& cl : clients_) {
      if (cl->resync_evict(block, 1)) claimed = true;
    }
    if (!had && !claimed) return false;
    if (had) {
      if (const SizeUnits* s = dirty_.find(block))
        journal_record_loss(block, 1, *s);
      dirty_.erase(block);
      audit_emit(AuditEvent::Kind::kLost, block, 1);
    }
    return true;
  }

  std::size_t resync_level(ClientId client, std::size_t level) override {
    std::vector<BlockId> lost;
    if (level == 0) {
      const std::size_t n = clients_[client]->resync_wipe_level(0, &lost);
      for (BlockId b : lost) {
        if (const SizeUnits* s = dirty_.find(b)) journal_record_loss(b, 0, *s);
        dirty_.erase(b);
        audit_emit(AuditEvent::Kind::kLost, b, 0, kAuditNoLevel, client);
      }
      return n;
    }
    const std::size_t n = server_.wipe(&lost);
    for (BlockId b : lost) {
      if (const SizeUnits* s = dirty_.find(b)) journal_record_loss(b, 1, *s);
      dirty_.erase(b);
      audit_emit(AuditEvent::Kind::kLost, b, 1);
    }
    for (auto& cl : clients_) cl->resync_wipe_level(1);
    return n;
  }

  const GlruServer& server() const { return server_; }
  const UlcClient& client(std::size_t c) const { return *clients_[c]; }

 private:
  // A client moving a block up to its own cache removes the server copy
  // only if it owns it there. A copy directed to the server by *another*
  // client stays — the paper's "cached on the highest level among all the
  // clients' direction" rule for shared blocks — so the remaining clients
  // keep their server hits while the taker holds a private copy.
  void take_respecting_owner(BlockId block, ClientId taker) {
    if (!server_.contains(block)) return;
    if (server_.owner_of(block) == taker) {
      audit_emit(AuditEvent::Kind::kServe, block, 1, kAuditNoLevel, taker);
      server_.take(block);
    }
  }

  void deliver_notices(ClientId c) {
    for (BlockId b : pending_notices_[c]) {
      // The block may have been re-placed (and so be live again) since the
      // notice was generated; deliver only if the eviction still stands.
      if (clients_[c]->level_of(b) == 1 && !server_.contains(b))
        clients_[c]->external_evict(b);
    }
    pending_notices_[c].clear();
  }

  struct PlaceOutcome {
    bool merged = false;    // the server already held a shared copy
    bool admitted = true;   // false: larger than the whole server budget
  };

  // Emits the evictions the placement forced (a sized placement can replace
  // several gLRU bottoms at once), so callers emitting the incoming block's
  // own event after the call keep the free-slot-before-fill order.
  PlaceOutcome place_at_server(BlockId block, ClientId owner, SizeUnits size) {
    PlaceOutcome out;
    out.merged = server_.contains(block);
    const GlruServer::PlaceResult r = server_.place(block, owner, size);
    out.admitted = r.admitted;
    if (server_.full() && !announced_full_) {
      announced_full_ = true;
      for (auto& cl : clients_) cl->set_elastic_full(true);
    }
    r.for_each([&](const GlruServer::Victim& v) {
      audit_emit(AuditEvent::Kind::kEvict, v.block, 1, kAuditNoLevel, v.owner);
      write_back_if_dirty(v.block, 1);
      ++stats_.eviction_notices;
      if (v.owner == owner) {
        // Local knowledge: the requester learns immediately.
        if (clients_[owner]->level_of(v.block) == 1)
          clients_[owner]->external_evict(v.block);
      } else {
        pending_notices_[v.owner].push_back(v.block);
      }
    });
    return out;
  }

  // Repairs the engine's claim after a declined server placement: the block
  // is not cached anywhere, so the level-1 directory entry goes and any
  // dirty data is written straight through to disk.
  void unplace(BlockId block, ClientId c) {
    if (clients_[c]->level_of(block) == 1) clients_[c]->external_evict(block);
    write_back_if_dirty(block, 0);
  }

  // Write-back choke point: drops the dirty marking only after the
  // write-back is narrated and journaled.
  bool write_back_if_dirty(BlockId b, std::size_t from) {
    const SizeUnits* size = dirty_.find(b);
    if (size == nullptr) return false;
    const SizeUnits bytes = *size;
    dirty_.erase(b);
    ++stats_.writebacks;
    journal_write_back(b, from, bytes);
    return true;
  }

  std::vector<std::unique_ptr<UlcClient>> clients_;
  FlatMap<BlockId, SizeUnits> dirty_;  // dirty block -> written size
  GlruServer server_;
  std::vector<std::vector<BlockId>> pending_notices_;
  bool announced_full_ = false;
  std::size_t temp_capacity_;
  HierarchyStats stats_;
};

}  // namespace

SchemePtr make_ulc(std::vector<std::size_t> caps, std::size_t temp_capacity) {
  return std::make_unique<UlcSingleScheme>(std::move(caps), temp_capacity);
}

SchemePtr make_ulc_multi(std::size_t client_cap, std::size_t server_cap,
                         std::size_t n_clients, std::size_t temp_capacity) {
  return std::make_unique<UlcMultiScheme>(client_cap, server_cap, n_clients,
                                          temp_capacity);
}

}  // namespace ulc
