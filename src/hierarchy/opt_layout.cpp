// OPT-layout — the offline upper bound for multi-level caching.
//
// At every instant, cache the aggregate-capacity blocks whose next
// references are nearest (Belady), and lay them out by that same ND order:
// the |L1| nearest at level 1, the next |L2| at level 2, and so on. No
// on-line scheme can beat its hit rates, and its per-boundary layout
// movement shows how much block shuffling even clairvoyant placement needs —
// the yardstick against which ULC's stability is judged (cf. the paper's
// Figure 3: ND distinguishes perfectly but moves constantly).
//
// Requires the trace up front (for next-use preprocessing); access() must
// replay exactly that trace.
#include <map>
#include <unordered_map>

#include "hierarchy/hierarchy.h"
#include "measures/next_use.h"
#include "order/order_statistic_list.h"
#include "util/ensure.h"

namespace ulc {

namespace {

class OptLayoutScheme final : public MultiLevelScheme {
 public:
  using Key = std::pair<std::uint64_t, BlockId>;  // (next use, block)

  OptLayoutScheme(std::vector<std::size_t> caps, const Trace& trace)
      : caps_(std::move(caps)), next_use_(compute_next_use(trace)), trace_(trace) {
    ULC_REQUIRE(!caps_.empty(), "OPT layout needs at least one level");
    std::size_t total = 0;
    for (std::size_t c : caps_) {
      ULC_REQUIRE(c >= 1, "level capacity must be >= 1");
      boundaries_.push_back(total + c);
      total += c;
    }
    aggregate_ = total;
    stats_.resize(caps_.size());
  }

  void access(const Request& request) override {
    ULC_REQUIRE(request.size == 1,
                "OPT-layout models unit-size blocks only (its stack positions "
                "are slot counts, not bytes)");
    ULC_REQUIRE(position_ < trace_.size() &&
                    trace_[position_].block == request.block,
                "OPT layout must replay its preprocessing trace in order");
    const std::uint64_t nu = next_use_[position_];
    ++position_;
    ++stats_.references;

    auto it = handles_.find(request.block);
    if (it != handles_.end()) {
      const std::size_t old_rank = list_.rank(it->second);
      stats_.count_hit(level_of_rank(old_rank), 1);
      // Re-key to the new next-use: remove and re-insert at the new rank.
      const Key key{nu, request.block};
      const std::size_t new_rank = rank_for(key, it->second);
      list_.move(it->second, new_rank);
      order_.erase(keys_.at(request.block));
      count_crossings(std::min(old_rank, new_rank), std::max(old_rank, new_rank));
      keys_[request.block] = key;
      order_[key] = it->second;
      return;
    }

    stats_.count_miss(1);
    if (nu == kNever) return;  // never referenced again: do not cache it
    if (list_.size() >= aggregate_) {
      // Bypass if the incoming block is itself the farthest-out; otherwise
      // evict the farthest-next-use resident (the list tail).
      auto last = std::prev(order_.end());
      if (Key{nu, request.block} >= last->first) return;
      const BlockId victim = list_.value(last->second);
      list_.erase(last->second);
      handles_.erase(victim);
      keys_.erase(victim);
      order_.erase(last);
    }
    const std::size_t size_before = list_.size();
    OrderStatisticList::Handle h = list_.insert_back(request.block);
    const Key key{nu, request.block};
    const std::size_t rank = rank_for(key, h);
    list_.move(h, rank);
    handles_[request.block] = h;
    keys_[request.block] = key;
    order_[key] = h;
    count_crossings(rank, size_before);
  }

  const HierarchyStats& stats() const override { return stats_; }
  void reset_stats() override { stats_.clear(); }
  const char* name() const override { return "OPT-layout"; }

 private:
  std::size_t level_of_rank(std::size_t rank) const {
    for (std::size_t l = 0; l < boundaries_.size(); ++l) {
      if (rank < boundaries_[l]) return l;
    }
    return boundaries_.size() - 1;
  }

  // Rank the block would occupy given its next-use key: number of cached
  // blocks with an earlier key ((next use, block) pairs are unique).
  std::size_t rank_for(const Key& key, OrderStatisticList::Handle self) {
    auto it = order_.lower_bound(key);
    if (it == order_.end()) return list_.size() - 1;
    ULC_ENSURE(it->second != self, "duplicate next-use key");
    const std::size_t r = list_.rank(it->second);
    // Inserting before `it`: if self currently sits above it, target is r-1
    // after removal; OrderStatisticList::move() interprets the position
    // post-removal, so compensate.
    return list_.rank(self) < r ? r - 1 : r;
  }

  // One block slides across each level boundary strictly inside (lo, hi].
  void count_crossings(std::size_t lo, std::size_t hi) {
    for (std::size_t l = 0; l + 1 < boundaries_.size(); ++l) {
      if (boundaries_[l] > lo && boundaries_[l] <= hi) stats_.count_demote(l, 1);
    }
  }

  std::vector<std::size_t> caps_;
  std::vector<std::size_t> boundaries_;
  std::size_t aggregate_ = 0;
  std::vector<std::uint64_t> next_use_;
  const Trace& trace_;
  std::size_t position_ = 0;

  OrderStatisticList list_;  // cached blocks, ascending next use
  // Offline OPT layout analysis, not a hot path.
  std::unordered_map<BlockId, OrderStatisticList::Handle> handles_;  // ulc-lint: allow(hot-container)
  std::unordered_map<BlockId, Key> keys_;  // ulc-lint: allow(hot-container)
  std::map<Key, OrderStatisticList::Handle> order_;

  HierarchyStats stats_;
};

}  // namespace

SchemePtr make_opt_layout(std::vector<std::size_t> caps, const Trace& trace) {
  return std::make_unique<OptLayoutScheme>(std::move(caps), trace);
}

}  // namespace ulc
