// Unified LRU (Wong & Wilkes 2002) — the paper's uniLRU baseline.
//
// Single client: one LRU stack over the aggregate cache; the first |L1|
// positions are the client cache, the next |L2| the server cache, and so
// on. Every reference moves the block to the stack top, so one block slides
// down across each boundary above the hit position — each slide is a DEMOTE
// (a real block transfer). Exclusive by construction and with the hit rate
// of a single aggregate-size LRU, but demotion traffic is unbounded by
// design: that is the weakness ULC attacks.
//
// Multi client: per-client exclusive LRU caches over one shared server
// cache. A block read from the server moves to the client (exclusive); the
// client's LRU-bottom overflow is demoted to the server, entering at a
// configurable insertion point (Wong & Wilkes' adaptive-insertion variants;
// the bench reports the best variant per workload, as the paper did).
#include <vector>

#include "hierarchy/hierarchy.h"
#include "order/order_statistic_list.h"
#include "order/segmented_list.h"
#include "replacement/cache_policy.h"
#include "util/ensure.h"
#include "util/flat_hash.h"

namespace ulc {

const char* uni_lru_insertion_name(UniLruInsertion policy) {
  switch (policy) {
    case UniLruInsertion::kMru:
      return "mru";
    case UniLruInsertion::kMiddle:
      return "mid";
    case UniLruInsertion::kLru:
      return "lru";
  }
  return "?";
}

namespace {

class UniLruScheme final : public MultiLevelScheme {
 public:
  explicit UniLruScheme(std::vector<std::size_t> caps) : list_(caps) {
    stats_.resize(caps.size());
  }

  void access(const Request& request) override {
    ++stats_.references;
    list_.access(request.block, result_, request.size);
    if (result_.hit) {
      stats_.count_hit(result_.old_segment, request.size);
    } else {
      stats_.count_miss(request.size);
    }
    if (request.op == Op::kWrite) dirty_.put(request.block, request.size);
    // Each boundary slide is one demotion transfer; the final evictions are
    // silent drops — unless a block is dirty, in which case it must be
    // written back to disk first.
    for (const SegmentedList::Crossing& c : result_.crossed)
      stats_.count_demote(c.from, c.size);
    if (auditing()) emit_events(request);
    for (BlockId victim : result_.evicted)
      write_back_if_dirty(victim, list_.segment_count() - 1);
  }

  // Only the dirty map exposes a prefetchable index; the segmented list's
  // node map (std::unordered_map) gives no stable bucket address to pull.
  void prefetch(const Request& request) const override {
    dirty_.prefetch(request.block);
  }

  void access_batch(std::span<const Request> batch) override {
    if (auditing()) {
      MultiLevelScheme::access_batch(batch);
      return;
    }
    const std::size_t n = batch.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (i + 4 < n) prefetch(batch[i + 4]);
      access(batch[i]);
    }
  }

  const HierarchyStats& stats() const override { return stats_; }
  void reset_stats() override { stats_.clear(); }
  const char* name() const override { return "uniLRU"; }

  AuditTraits audit_traits() const override {
    AuditTraits t;
    t.supported = true;
    t.exclusive = true;
    t.bottom_evict_only = true;
    for (std::size_t s = 0; s < list_.segment_count(); ++s)
      t.capacities.push_back(list_.segment_capacity(s));
    return t;
  }

  void audit_resident_levels(ClientId, BlockId block,
                             std::vector<std::size_t>& out) const override {
    const std::size_t s = list_.segment_of(block);
    if (s != SegmentedList::kNoSegment) out.push_back(s);
  }

  std::size_t audit_level_size(ClientId, std::size_t level) const override {
    return list_.segment_size(level);
  }

  std::uint64_t audit_level_bytes(ClientId, std::size_t level) const override {
    return list_.segment_bytes(level);
  }

 private:
  struct Slide {
    BlockId key = 0;
    std::size_t from = 0;
    std::size_t to = 0;
  };

  // A sized access can slide one block across several boundaries (it keeps
  // being its new segment's LRU-most member); collapse its crossings into a
  // single multi-hop move — kDemote(b, from, to) accounts one transfer per
  // link crossed, matching the per-crossing demotion counters.
  void collect_slides() {
    slides_.clear();
    for (const SegmentedList::Crossing& c : result_.crossed) {
      bool merged = false;
      for (Slide& s : slides_) {
        if (s.key == c.key) {
          s.to = c.from + 1;
          merged = true;
          break;
        }
      }
      if (!merged) slides_.push_back(Slide{c.key, c.from, c.from + 1});
    }
  }

  // Narrates one access in physical process order: the serve, the MRU
  // placement, each boundary slide, then the bottom evictions. With sized
  // blocks the byte occupancy may transiently overshoot a budget between a
  // slide and the evictions that make room — the auditor enforces byte
  // budgets at access end.
  void emit_events(const Request& request) {
    if (result_.hit && result_.old_segment == 0) return;  // pure touch
    const BlockId block = request.block;
    if (result_.hit) {
      audit_emit(AuditEvent::Kind::kServe, block, result_.old_segment);
    }
    audit_emit(AuditEvent::Kind::kPlace, block, kAuditNoLevel, 0, 0, false,
               request.size);
    collect_slides();
    for (const Slide& s : slides_)
      audit_emit(AuditEvent::Kind::kDemote, s.key, s.from, s.to);
    for (BlockId victim : result_.evicted)
      audit_emit(AuditEvent::Kind::kEvict, victim, list_.segment_count() - 1);
  }

  // Write-back choke point: drops the dirty marking only after the
  // write-back is narrated and journaled.
  bool write_back_if_dirty(BlockId b, std::size_t from) {
    const SizeUnits* size = dirty_.find(b);
    if (size == nullptr) return false;
    const SizeUnits bytes = *size;
    dirty_.erase(b);
    ++stats_.writebacks;
    journal_write_back(b, from, bytes);
    return true;
  }

  SegmentedList list_;
  SegmentedList::AccessResult result_;
  std::vector<Slide> slides_;
  FlatMap<BlockId, SizeUnits> dirty_;  // dirty block -> written size
  HierarchyStats stats_;
};

// Shared server cache with positional insertion, built on the
// order-statistic list (O(log n) insert-at-position for the kMiddle
// variant). Capacity is a byte budget in SizeUnits; the insertion position
// stays a *count* notion (half the resident blocks), as in Wong & Wilkes.
class ServerLru {
 public:
  explicit ServerLru(std::size_t capacity) : capacity_(capacity) {
    ULC_REQUIRE(capacity >= 1, "server capacity must be >= 1");
    index_.reserve(capacity_ + 1);
  }

  bool contains(BlockId b) const { return index_.contains(b); }

  // Exclusive read: remove and return presence.
  bool take(BlockId b) {
    const Entry* e = index_.find(b);
    if (e == nullptr) return false;
    used_ -= e->size;
    list_.erase(e->handle);
    index_.erase(b);
    return true;
  }

  // Insert a demoted block at the given policy's position, then evict from
  // the LRU end until the byte budget holds again. A block larger than the
  // whole budget is not admitted; with LRU-point insertion the entering
  // block itself can be the first overflow victim (the passthrough corner).
  EvictResult insert(BlockId b, UniLruInsertion policy, SizeUnits size) {
    ULC_REQUIRE(!index_.contains(b), "server insert of present block");
    EvictResult ev;
    if (size > capacity_) {
      ev.admitted = false;
      return ev;
    }
    std::size_t pos = 0;
    switch (policy) {
      case UniLruInsertion::kMru:
        pos = 0;
        break;
      case UniLruInsertion::kMiddle:
        pos = list_.size() / 2;
        break;
      case UniLruInsertion::kLru:
        pos = list_.size();
        break;
    }
    index_.insert_new(b, Entry{list_.insert_at(pos, b), size});
    used_ += size;
    while (used_ > capacity_) {
      auto victim = list_.at(list_.size() - 1);
      const BlockId v = list_.value(victim);
      used_ -= index_.find(v)->size;
      ev.add(v);
      index_.erase(v);
      list_.erase(victim);
    }
    return ev;
  }

  // A server hit for a block that stays (not used by exclusive uniLRU, but
  // by tests): refresh to MRU.
  void refresh(BlockId b) {
    const Entry* e = index_.find(b);
    ULC_REQUIRE(e != nullptr, "refresh of absent block");
    list_.move_to_front(e->handle);
  }

  std::size_t size() const { return list_.size(); }
  std::uint64_t used_bytes() const { return used_; }
  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    OrderStatisticList::Handle handle;
    SizeUnits size = 1;
  };

  std::size_t capacity_;
  std::uint64_t used_ = 0;
  OrderStatisticList list_;
  FlatMap<BlockId, Entry> index_;
};

class UniLruMultiScheme final : public MultiLevelScheme {
 public:
  UniLruMultiScheme(std::size_t client_cap, std::size_t server_cap,
                    std::size_t n_clients, UniLruInsertion insertion)
      : server_(server_cap), insertion_(insertion) {
    ULC_REQUIRE(n_clients >= 1, "uniLRU-multi needs at least one client");
    for (std::size_t c = 0; c < n_clients; ++c)
      clients_.push_back(make_lru(client_cap));
    stats_.resize(2);
    name_ = std::string("uniLRU-") + uni_lru_insertion_name(insertion);
  }

  void access(const Request& request) override {
    ULC_REQUIRE(request.client < clients_.size(), "client id out of range");
    ++stats_.references;
    CachePolicy& client = *clients_[request.client];
    const BlockId b = request.block;
    AccessContext ctx;
    ctx.size = request.size;
    size_of_.put(b, request.size);  // id-stable; needed when b is demoted

    if (request.op == Op::kWrite) dirty_.put(b, request.size);
    if (client.touch(b, ctx)) {
      stats_.count_hit(0, request.size);
      return;
    }
    if (server_.take(b)) {
      stats_.count_hit(1, request.size);  // served from server; exclusive move up
      audit_emit(AuditEvent::Kind::kServe, b, 1);
    } else {
      stats_.count_miss(request.size);  // disk read straight to the client (exclusive)
    }
    const EvictResult ev = client.insert(b, ctx);
    if (ev.admitted) {
      audit_emit(AuditEvent::Kind::kPlace, b, kAuditNoLevel, 0, request.client,
                 /*through_bottom=*/false, request.size);
    } else {
      // Uncacheable write: larger than the whole client budget, so the dirty
      // data goes straight to disk.
      write_back_if_dirty(b, 0);
    }
    // DEMOTE each client victim into the shared server cache, in eviction
    // order. With sized blocks one admission can push several victims out.
    ev.for_each([&](BlockId victim) { demote_to_server(victim, request.client); });
  }

  const HierarchyStats& stats() const override { return stats_; }
  void reset_stats() override { stats_.clear(); }
  const char* name() const override { return name_.c_str(); }

  AuditTraits audit_traits() const override {
    AuditTraits t;
    t.supported = true;
    t.bottom_evict_only = true;
    t.clients = clients_.size();
    t.capacities = {clients_[0]->capacity(), server_.capacity()};
    return t;
  }

  void audit_resident_levels(ClientId client, BlockId block,
                             std::vector<std::size_t>& out) const override {
    if (clients_[client]->contains(block)) out.push_back(0);
    if (server_.contains(block)) out.push_back(1);
  }

  std::size_t audit_level_size(ClientId client, std::size_t level) const override {
    return level == 0 ? clients_[client]->size() : server_.size();
  }

  std::uint64_t audit_level_bytes(ClientId client, std::size_t level) const override {
    return level == 0 ? clients_[client]->used_bytes() : server_.used_bytes();
  }

 private:
  // One client-victim demotion. Another client may have demoted its own copy
  // of a shared block already; the transfer still happens (the client has no
  // server directory), but the server keeps a single copy. A victim the
  // server cannot or will not hold (passthrough corner, or larger than the
  // whole server budget) still costs the transfer — kCharge — and then
  // leaves through the bottom.
  void demote_to_server(BlockId victim, ClientId owner) {
    const SizeUnits* sz = size_of_.find(victim);
    const SizeUnits victim_size = sz != nullptr ? *sz : 1;
    stats_.count_demote(0, victim_size);
    if (server_.contains(victim)) {
      server_.refresh(victim);
      audit_emit(AuditEvent::Kind::kDemoteMerge, victim, 0, 1, owner);
      return;
    }
    const EvictResult sev = server_.insert(victim, insertion_, victim_size);
    server_victims_.clear();
    sev.for_each([&](BlockId v) { server_victims_.push_back(v); });
    bool survived = sev.admitted;
    for (BlockId v : server_victims_)
      if (v == victim) survived = false;
    if (survived)
      audit_emit(AuditEvent::Kind::kDemote, victim, 0, 1, owner);
    for (BlockId v : server_victims_) {
      if (v == victim) {
        audit_emit(AuditEvent::Kind::kCharge, victim, 0, 1, owner,
                   /*through_bottom=*/false, victim_size);
        audit_emit(AuditEvent::Kind::kEvict, victim, 0, kAuditNoLevel, owner,
                   /*through_bottom=*/true);
      } else {
        audit_emit(AuditEvent::Kind::kEvict, v, 1);
      }
      write_back_if_dirty(v, v == victim ? 0 : 1);
    }
    if (!sev.admitted) {
      audit_emit(AuditEvent::Kind::kCharge, victim, 0, 1, owner,
                 /*through_bottom=*/false, victim_size);
      audit_emit(AuditEvent::Kind::kEvict, victim, 0, kAuditNoLevel, owner,
                 /*through_bottom=*/true);
      write_back_if_dirty(victim, 0);
    }
  }

  // Write-back choke point: drops the dirty marking only after the
  // write-back is narrated and journaled.
  bool write_back_if_dirty(BlockId b, std::size_t from) {
    const SizeUnits* size = dirty_.find(b);
    if (size == nullptr) return false;
    const SizeUnits bytes = *size;
    dirty_.erase(b);
    ++stats_.writebacks;
    journal_write_back(b, from, bytes);
    return true;
  }

  std::vector<PolicyPtr> clients_;
  ServerLru server_;
  UniLruInsertion insertion_;
  FlatMap<BlockId, SizeUnits> dirty_;    // dirty block -> written size
  FlatMap<BlockId, SizeUnits> size_of_;  // id-stable block footprints
  std::vector<BlockId> server_victims_;
  HierarchyStats stats_;
  std::string name_;
};

}  // namespace

SchemePtr make_uni_lru(std::vector<std::size_t> caps) {
  return std::make_unique<UniLruScheme>(std::move(caps));
}

SchemePtr make_uni_lru_multi(std::size_t client_cap, std::size_t server_cap,
                             std::size_t n_clients, UniLruInsertion insertion) {
  return std::make_unique<UniLruMultiScheme>(client_cap, server_cap, n_clients,
                                             insertion);
}

}  // namespace ulc
