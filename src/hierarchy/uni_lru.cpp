// Unified LRU (Wong & Wilkes 2002) — the paper's uniLRU baseline.
//
// Single client: one LRU stack over the aggregate cache; the first |L1|
// positions are the client cache, the next |L2| the server cache, and so
// on. Every reference moves the block to the stack top, so one block slides
// down across each boundary above the hit position — each slide is a DEMOTE
// (a real block transfer). Exclusive by construction and with the hit rate
// of a single aggregate-size LRU, but demotion traffic is unbounded by
// design: that is the weakness ULC attacks.
//
// Multi client: per-client exclusive LRU caches over one shared server
// cache. A block read from the server moves to the client (exclusive); the
// client's LRU-bottom overflow is demoted to the server, entering at a
// configurable insertion point (Wong & Wilkes' adaptive-insertion variants;
// the bench reports the best variant per workload, as the paper did).
#include <vector>

#include "hierarchy/hierarchy.h"
#include "order/order_statistic_list.h"
#include "order/segmented_list.h"
#include "replacement/cache_policy.h"
#include "util/ensure.h"
#include "util/flat_hash.h"

namespace ulc {

const char* uni_lru_insertion_name(UniLruInsertion policy) {
  switch (policy) {
    case UniLruInsertion::kMru:
      return "mru";
    case UniLruInsertion::kMiddle:
      return "mid";
    case UniLruInsertion::kLru:
      return "lru";
  }
  return "?";
}

namespace {

class UniLruScheme final : public MultiLevelScheme {
 public:
  explicit UniLruScheme(std::vector<std::size_t> caps) : list_(caps) {
    stats_.resize(caps.size());
  }

  void access(const Request& request) override {
    ++stats_.references;
    list_.access(request.block, result_);
    if (result_.hit) {
      ++stats_.level_hits[result_.old_segment];
    } else {
      ++stats_.misses;
    }
    if (request.op == Op::kWrite) dirty_.put(request.block, 1);
    // Each boundary slide is one demotion transfer; the final eviction is a
    // silent drop — unless the block is dirty, in which case it must be
    // written back to disk first.
    for (std::size_t b = 0; b < result_.crossed_count; ++b) ++stats_.demotions[b];
    const bool wrote_back = result_.evicted && dirty_.erase(result_.evicted_key);
    if (wrote_back) ++stats_.writebacks;
    if (auditing()) emit_events(request.block, wrote_back);
  }

  const HierarchyStats& stats() const override { return stats_; }
  void reset_stats() override { stats_.clear(); }
  const char* name() const override { return "uniLRU"; }

  AuditTraits audit_traits() const override {
    AuditTraits t;
    t.supported = true;
    t.exclusive = true;
    t.bottom_evict_only = true;
    for (std::size_t s = 0; s < list_.segment_count(); ++s)
      t.capacities.push_back(list_.segment_capacity(s));
    return t;
  }

  void audit_resident_levels(ClientId, BlockId block,
                             std::vector<std::size_t>& out) const override {
    const std::size_t s = list_.segment_of(block);
    if (s != SegmentedList::kNoSegment) out.push_back(s);
  }

  std::size_t audit_level_size(ClientId, std::size_t level) const override {
    return list_.segment_size(level);
  }

 private:
  // Narrates one access in demote-before-evict order: the serve (or bottom
  // eviction) opens a hole, the boundary slides fill it bottom-up, and the
  // MRU placement lands last, so occupancy never exceeds capacity.
  void emit_events(BlockId block, bool wrote_back) {
    if (result_.hit && result_.old_segment == 0) return;  // pure touch
    if (result_.hit) {
      audit_emit(AuditEvent::Kind::kServe, block, result_.old_segment);
    } else if (result_.evicted) {
      audit_emit(AuditEvent::Kind::kEvict, result_.evicted_key,
                 list_.segment_count() - 1);
      if (wrote_back) audit_emit(AuditEvent::Kind::kWriteback, result_.evicted_key);
    }
    for (std::size_t b = result_.crossed_count; b-- > 0;)
      audit_emit(AuditEvent::Kind::kDemote, result_.crossed[b], b, b + 1);
    audit_emit(AuditEvent::Kind::kPlace, block, kAuditNoLevel, 0);
  }

  SegmentedList list_;
  SegmentedList::AccessResult result_;
  FlatMap<BlockId, std::uint8_t> dirty_;  // set of dirty blocks
  HierarchyStats stats_;
};

// Shared server cache with positional insertion, built on the
// order-statistic list (O(log n) insert-at-position for the kMiddle
// variant).
class ServerLru {
 public:
  explicit ServerLru(std::size_t capacity) : capacity_(capacity) {
    ULC_REQUIRE(capacity >= 1, "server capacity must be >= 1");
    index_.reserve(capacity_ + 1);
  }

  bool contains(BlockId b) const { return index_.contains(b); }

  // Exclusive read: remove and return presence.
  bool take(BlockId b) {
    const OrderStatisticList::Handle* h = index_.find(b);
    if (h == nullptr) return false;
    list_.erase(*h);
    index_.erase(b);
    return true;
  }

  // Insert a demoted block at the given policy's position; returns the
  // evicted block if the server overflowed.
  EvictResult insert(BlockId b, UniLruInsertion policy) {
    ULC_REQUIRE(!index_.contains(b), "server insert of present block");
    std::size_t pos = 0;
    switch (policy) {
      case UniLruInsertion::kMru:
        pos = 0;
        break;
      case UniLruInsertion::kMiddle:
        pos = list_.size() / 2;
        break;
      case UniLruInsertion::kLru:
        pos = list_.size();
        break;
    }
    index_.insert_new(b, list_.insert_at(pos, b));
    EvictResult ev;
    if (list_.size() > capacity_) {
      auto victim = list_.at(list_.size() - 1);
      ev.evicted = true;
      ev.victim = list_.value(victim);
      index_.erase(ev.victim);
      list_.erase(victim);
    }
    return ev;
  }

  // A server hit for a block that stays (not used by exclusive uniLRU, but
  // by tests): refresh to MRU.
  void refresh(BlockId b) {
    const OrderStatisticList::Handle* h = index_.find(b);
    ULC_REQUIRE(h != nullptr, "refresh of absent block");
    list_.move_to_front(*h);
  }

  std::size_t size() const { return list_.size(); }
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  OrderStatisticList list_;
  FlatMap<BlockId, OrderStatisticList::Handle> index_;
};

class UniLruMultiScheme final : public MultiLevelScheme {
 public:
  UniLruMultiScheme(std::size_t client_cap, std::size_t server_cap,
                    std::size_t n_clients, UniLruInsertion insertion)
      : server_(server_cap), insertion_(insertion) {
    ULC_REQUIRE(n_clients >= 1, "uniLRU-multi needs at least one client");
    for (std::size_t c = 0; c < n_clients; ++c)
      clients_.push_back(make_lru(client_cap));
    stats_.resize(2);
    name_ = std::string("uniLRU-") + uni_lru_insertion_name(insertion);
  }

  void access(const Request& request) override {
    ULC_REQUIRE(request.client < clients_.size(), "client id out of range");
    ++stats_.references;
    CachePolicy& client = *clients_[request.client];
    const BlockId b = request.block;

    if (request.op == Op::kWrite) dirty_.put(b, 1);
    if (client.touch(b, {})) {
      ++stats_.level_hits[0];
      return;
    }
    if (server_.take(b)) {
      ++stats_.level_hits[1];  // served from server; exclusive move up
      audit_emit(AuditEvent::Kind::kServe, b, 1);
    } else {
      ++stats_.misses;  // disk read straight to the client (exclusive)
    }
    const EvictResult ev = client.insert(b, {});
    if (ev.evicted) {
      // DEMOTE the client's LRU bottom into the shared server cache. Another
      // client may have demoted its own copy of a shared block already; the
      // transfer still happens (the client has no server directory), but the
      // server keeps a single copy.
      ++stats_.demotions[0];
      if (server_.contains(ev.victim)) {
        server_.refresh(ev.victim);
        audit_emit(AuditEvent::Kind::kDemoteMerge, ev.victim, 0, 1,
                   request.client);
      } else {
        const EvictResult sev = server_.insert(ev.victim, insertion_);
        if (sev.evicted && sev.victim == ev.victim) {
          // LRU-point insertion corner: the demoted block entered at the
          // server's own bottom and was at once the overflow victim — it
          // passed straight through without ever being resident there.
          audit_emit(AuditEvent::Kind::kCharge, ev.victim, 0, 1, request.client);
          audit_emit(AuditEvent::Kind::kEvict, ev.victim, 0, kAuditNoLevel,
                     request.client, /*through_bottom=*/true);
          if (dirty_.erase(sev.victim)) {
            ++stats_.writebacks;
            audit_emit(AuditEvent::Kind::kWriteback, sev.victim);
          }
        } else {
          if (sev.evicted) {
            audit_emit(AuditEvent::Kind::kEvict, sev.victim, 1);
            if (dirty_.erase(sev.victim)) {
              ++stats_.writebacks;
              audit_emit(AuditEvent::Kind::kWriteback, sev.victim);
            }
          }
          audit_emit(AuditEvent::Kind::kDemote, ev.victim, 0, 1, request.client);
        }
      }
    }
    audit_emit(AuditEvent::Kind::kPlace, b, kAuditNoLevel, 0, request.client);
  }

  const HierarchyStats& stats() const override { return stats_; }
  void reset_stats() override { stats_.clear(); }
  const char* name() const override { return name_.c_str(); }

  AuditTraits audit_traits() const override {
    AuditTraits t;
    t.supported = true;
    t.bottom_evict_only = true;
    t.clients = clients_.size();
    t.capacities = {clients_[0]->capacity(), server_.capacity()};
    return t;
  }

  void audit_resident_levels(ClientId client, BlockId block,
                             std::vector<std::size_t>& out) const override {
    if (clients_[client]->contains(block)) out.push_back(0);
    if (server_.contains(block)) out.push_back(1);
  }

  std::size_t audit_level_size(ClientId client, std::size_t level) const override {
    return level == 0 ? clients_[client]->size() : server_.size();
  }

 private:
  std::vector<PolicyPtr> clients_;
  ServerLru server_;
  UniLruInsertion insertion_;
  FlatMap<BlockId, std::uint8_t> dirty_;  // set of dirty blocks
  HierarchyStats stats_;
  std::string name_;
};

}  // namespace

SchemePtr make_uni_lru(std::vector<std::size_t> caps) {
  return std::make_unique<UniLruScheme>(std::move(caps));
}

SchemePtr make_uni_lru_multi(std::size_t client_cap, std::size_t server_cap,
                             std::size_t n_clients, UniLruInsertion insertion) {
  return std::make_unique<UniLruMultiScheme>(client_cap, server_cap, n_clients,
                                             insertion);
}

}  // namespace ulc
