// Three-level multi-client ULC: per-client caches over a shared server
// cache over a shared disk-array cache — the paper's §3.2.2 protocol
// generalized to more than one shared level (its single-client protocol
// already handles arbitrary depth; this supplies the multi-client side).
//
// Each shared level runs its own gLRU with owners. The new wrinkle is what
// a full shared level does with its gLRU victim: the server *migrates* it
// down into the array (a server-directed demotion, charged as a transfer on
// the server/array link) rather than dropping it; the array, at the bottom,
// drops (with a write-back if dirty). Owners learn of migrations and
// evictions through the same piggybacked notices as in the two-level
// protocol, now carrying a moved-down/evicted kind.
#include <memory>
#include <vector>

#include "hierarchy/hierarchy.h"
#include "ulc/glru_server.h"
#include "ulc/ulc_client.h"
#include "util/flat_hash.h"
#include "util/ensure.h"

namespace ulc {

namespace {

class UlcMulti3Scheme final : public MultiLevelScheme {
 public:
  UlcMulti3Scheme(std::size_t client_cap, std::size_t server_cap,
                  std::size_t array_cap, std::size_t n_clients)
      : server_(server_cap), array_(array_cap) {
    ULC_REQUIRE(n_clients >= 1, "needs at least one client");
    UlcConfig cfg;
    cfg.capacities = {client_cap, 0, 0};
    cfg.first_elastic_level = 1;
    for (std::size_t c = 0; c < n_clients; ++c)
      clients_.push_back(std::make_unique<UlcClient>(cfg));
    pending_.resize(n_clients);
    stats_.resize(3);
  }

  void access(const Request& request) override {
    ULC_REQUIRE(request.client < clients_.size(), "client id out of range");
    ++stats_.references;
    const ClientId c = request.client;
    UlcClient& client = *clients_[c];

    // Deliver pending notices, then make sure the engine's view of the
    // requested block matches reality (shared blocks move underneath us).
    for (BlockId b : pending_[c]) sync(c, b);
    pending_[c].clear();
    if (sync(c, request.block)) ++stats_.stale_syncs;

    client.set_elastic_full(1, server_.full());
    client.set_elastic_full(2, array_.full());

    const UlcAccess& a = client.access(request.block, request.size);
    if (request.op == Op::kWrite) {
      if (a.placed_level != kLevelOut) {
        dirty_.put(request.block, request.size);
      } else {
        // Uncached write goes straight through to disk. The freshest data
        // is on disk now, so any older dirty marking (a stale copy another
        // client parked lower down) is superseded — writing it back later
        // would clobber this newer version.
        dirty_.erase(request.block);
        ++stats_.writebacks;
        journal_write_back(request.block, 0, request.size);
      }
    }

    serve(c, request.block, a);

    for (const DemoteCmd& d : a.demotions) {
      ULC_ENSURE(d.from == 0 && d.to == 1,
                 "client cascades stop at the first shared level");
      stats_.count_demote(0, d.size);
      const PlaceOutcome r = place_at_server(d.block, c, d.size);
      if (!r.admitted) {
        // The transfer happened but the server cannot hold a block larger
        // than its whole budget: charge the link, the block leaves through
        // the bottom.
        audit_emit(AuditEvent::Kind::kCharge, d.block, 0, 1, c,
                   /*through_bottom=*/false, d.size);
        audit_emit(AuditEvent::Kind::kEvict, d.block, 0, kAuditNoLevel, c,
                   /*through_bottom=*/true);
        unplace(d.block, c);
      } else {
        audit_emit(r.merged ? AuditEvent::Kind::kDemoteMerge
                            : AuditEvent::Kind::kDemote,
                   d.block, 0, 1, c);
      }
    }
    if (a.placed_level == 0 && a.hit_level != 0)
      audit_emit(AuditEvent::Kind::kPlace, request.block, kAuditNoLevel, 0, c,
                 /*through_bottom=*/false, a.retrieve.size);
  }

  void prefetch(const Request& request) const override {
    if (request.client >= clients_.size()) return;
    clients_[request.client]->prefetch_index(request.block);
    server_.prefetch(request.block);
    array_.prefetch(request.block);
    dirty_.prefetch(request.block);
  }

  void access_batch(std::span<const Request> batch) override {
    if (auditing()) {
      MultiLevelScheme::access_batch(batch);
      return;
    }
    const std::size_t n = batch.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (i + 4 < n) prefetch(batch[i + 4]);
      access(batch[i]);
    }
  }

  const HierarchyStats& stats() const override { return stats_; }
  void reset_stats() override { stats_.clear(); }
  const char* name() const override { return "ULC"; }

  AuditTraits audit_traits() const override {
    AuditTraits t;
    t.supported = true;
    t.bottom_evict_only = true;
    // Stale client metadata may legitimately serve from the array while
    // another client has since promoted a shared copy to the server, so the
    // reported hit level is a *member* of the resident set, not its top.
    t.exact_hit_level = false;
    t.clients = clients_.size();
    t.capacities = {clients_[0]->capacity(0), server_.capacity(),
                    array_.capacity()};
    return t;
  }

  void audit_resident_levels(ClientId client, BlockId block,
                             std::vector<std::size_t>& out) const override {
    if (clients_[client]->level_of(block) == 0) out.push_back(0);
    if (server_.contains(block)) out.push_back(1);
    if (array_.contains(block)) out.push_back(2);
  }

  std::size_t audit_level_size(ClientId client, std::size_t level) const override {
    if (level == 0) return clients_[client]->level_size(0);
    return level == 1 ? server_.size() : array_.size();
  }

  std::uint64_t audit_level_bytes(ClientId client, std::size_t level) const override {
    if (level == 0) return clients_[client]->level_bytes(0);
    return level == 1 ? server_.used_bytes() : array_.used_bytes();
  }

  bool audit_check_internal() const override {
    for (const auto& cl : clients_) {
      if (!cl->check_consistency()) return false;
    }
    return server_.check_consistency() && array_.check_consistency();
  }

  std::size_t audit_stack_count() const override { return clients_.size(); }
  const UniLruStack* audit_stack(std::size_t index) const override {
    return &clients_[index]->stack();
  }

  bool supports_resync() const override { return true; }

  // Mirrors UlcMultiScheme::resync_drop, generalized to the two shared
  // levels: kLost is narrated only when the shared cache really held the
  // block; dropping stale per-client claims is metadata-only.
  bool resync_drop(ClientId client, BlockId block, std::size_t level) override {
    if (level == 0) {
      if (!clients_[client]->resync_evict(block, 0)) return false;
      if (const SizeUnits* s = dirty_.find(block))
        journal_record_loss(block, 0, *s);
      dirty_.erase(block);
      audit_emit(AuditEvent::Kind::kLost, block, 0, kAuditNoLevel, client);
      return true;
    }
    GlruServer& shared = level == 1 ? server_ : array_;
    const bool had = shared.contains(block);
    if (had) shared.take(block);
    bool claimed = false;
    for (auto& cl : clients_) {
      if (cl->resync_evict(block, level)) claimed = true;
    }
    if (!had && !claimed) return false;
    if (had) {
      if (const SizeUnits* s = dirty_.find(block))
        journal_record_loss(block, level, *s);
      dirty_.erase(block);
      audit_emit(AuditEvent::Kind::kLost, block, level);
    }
    return true;
  }

  std::size_t resync_level(ClientId client, std::size_t level) override {
    std::vector<BlockId> lost;
    if (level == 0) {
      const std::size_t n = clients_[client]->resync_wipe_level(0, &lost);
      for (BlockId b : lost) {
        if (const SizeUnits* s = dirty_.find(b)) journal_record_loss(b, 0, *s);
        dirty_.erase(b);
        audit_emit(AuditEvent::Kind::kLost, b, 0, kAuditNoLevel, client);
      }
      return n;
    }
    GlruServer& shared = level == 1 ? server_ : array_;
    const std::size_t n = shared.wipe(&lost);
    for (BlockId b : lost) {
      if (const SizeUnits* s = dirty_.find(b)) journal_record_loss(b, level, *s);
      dirty_.erase(b);
      audit_emit(AuditEvent::Kind::kLost, b, level);
    }
    for (auto& cl : clients_) cl->resync_wipe_level(level);
    return n;
  }

  const GlruServer& server() const { return server_; }
  const GlruServer& array() const { return array_; }

 private:
  struct PlaceOutcome {
    bool merged = false;    // the shared cache already held the copy
    bool admitted = true;   // false: larger than that cache's whole budget
  };

  void serve(ClientId c, BlockId b, const UlcAccess& a) {
    const SizeUnits size = a.retrieve.size;
    if (a.hit_level == 0) {
      stats_.count_hit(0, size);
      return;
    }
    if (a.hit_level == 1) {
      stats_.count_hit(1, size);
      route_from_server(c, b, a.retrieve.cache_at, size);
      return;
    }
    if (a.hit_level == 2) {
      stats_.count_hit(2, size);
      route_from_array(c, b, a.retrieve.cache_at, size);
      return;
    }
    // Engine miss: a shared copy may still exist under another client's
    // direction.
    if (server_.contains(b)) {
      stats_.count_hit(1, size);
      if (a.retrieve.cache_at != kLevelOut)
        route_from_server(c, b, a.retrieve.cache_at, size);
      return;
    }
    if (array_.contains(b)) {
      stats_.count_hit(2, size);
      if (a.retrieve.cache_at != kLevelOut)
        route_from_array(c, b, a.retrieve.cache_at, size);
      return;
    }
    stats_.count_miss(size);
    if (a.retrieve.cache_at == 1) {
      if (place_at_server(b, c, size).admitted) {
        audit_emit(AuditEvent::Kind::kPlace, b, kAuditNoLevel, 1, c,
                   /*through_bottom=*/false, size);
      } else {
        unplace(b, c);
      }
    }
    if (a.retrieve.cache_at == 2) {
      if (place_at_array(b, c, size).admitted) {
        audit_emit(AuditEvent::Kind::kPlace, b, kAuditNoLevel, 2, c,
                   /*through_bottom=*/false, size);
      } else {
        unplace(b, c);
      }
    }
  }

  // The block is at the server; move/keep it per the client's direction.
  void route_from_server(ClientId c, BlockId b, std::size_t cache_at,
                         SizeUnits size) {
    if (cache_at >= 1 && cache_at != kLevelOut) {
      // Stays at the server level (cache_at == 1) or is directed to the
      // array (cache_at == 2: a block ranked down; ship it).
      if (cache_at == 1) {
        server_.refresh(b, c);
      } else {
        const bool took = server_.owner_of(b) == c;
        if (took) server_.take(b);
        stats_.count_demote(1, size);
        const PlaceOutcome r = place_at_array(b, c, size);
        // Narrations of one ship-down: a move (demote, merging or not) when
        // this client owned the server copy, otherwise the copy stays and
        // the transfer is pure accounting (kCharge) plus — if the array did
        // not already hold the shared copy — a fresh copy appearing. An
        // array that cannot hold the block at all turns the move into a
        // bottom eviction (and the charge-only case into a pure charge).
        if (took) {
          if (!r.admitted) {
            audit_emit(AuditEvent::Kind::kCharge, b, 1, 2, c,
                       /*through_bottom=*/false, size);
            audit_emit(AuditEvent::Kind::kEvict, b, 1, kAuditNoLevel, c,
                       /*through_bottom=*/true);
            unplace(b, c);
          } else {
            audit_emit(r.merged ? AuditEvent::Kind::kDemoteMerge
                                : AuditEvent::Kind::kDemote,
                       b, 1, 2, c);
          }
        } else {
          audit_emit(AuditEvent::Kind::kCharge, b, 1, 2, c,
                     /*through_bottom=*/false, size);
          if (r.admitted && !r.merged) {
            audit_emit(AuditEvent::Kind::kPlace, b, kAuditNoLevel, 2, c,
                       /*through_bottom=*/false, size);
          }
          // Declined and not taken: the other client's server copy stays
          // (dirty data and all); only this client's claim is stale.
          if (!r.admitted) drop_claim(b, c);
        }
      }
    } else if (cache_at == 0) {
      if (server_.owner_of(b) == c) {
        audit_emit(AuditEvent::Kind::kServe, b, 1, kAuditNoLevel, c);
        server_.take(b);
      }
    }
  }

  void route_from_array(ClientId c, BlockId b, std::size_t cache_at,
                        SizeUnits size) {
    if (cache_at == 2) {
      array_.refresh(b, c);
    } else if (cache_at == 1) {
      const bool took = array_.owner_of(b) == c;
      if (took) {
        audit_emit(AuditEvent::Kind::kServe, b, 2, kAuditNoLevel, c);
        array_.take(b);
      }
      const PlaceOutcome r = place_at_server(b, c, size);
      if (r.admitted && !r.merged) {
        audit_emit(AuditEvent::Kind::kPlace, b, kAuditNoLevel, 1, c,
                   /*through_bottom=*/false, size);
      }
      if (!r.admitted) {
        // If this client took the array copy, the block is gone entirely;
        // otherwise the other client's array copy (and dirty data) stays.
        if (took) unplace(b, c); else drop_claim(b, c);
      }
    } else if (cache_at == 0) {
      if (array_.owner_of(b) == c) {
        audit_emit(AuditEvent::Kind::kServe, b, 2, kAuditNoLevel, c);
        array_.take(b);
      }
    }
  }

  PlaceOutcome place_at_server(BlockId b, ClientId owner, SizeUnits size) {
    PlaceOutcome out;
    out.merged = server_.contains(b);
    const GlruServer::PlaceResult r = server_.place(b, owner, size);
    out.admitted = r.admitted;
    // Server-directed migration: each gLRU victim moves down to the array
    // instead of being dropped; its owner is told via a piggybacked notice.
    // A victim the array cannot hold at all is charged and dropped.
    r.for_each([&](const GlruServer::Victim& v) {
      stats_.count_demote(1, v.size);
      ++stats_.eviction_notices;
      queue_notice(v.owner, v.block);
      const PlaceOutcome vr = place_at_array(v.block, v.owner, v.size);
      if (!vr.admitted) {
        audit_emit(AuditEvent::Kind::kCharge, v.block, 1, 2, v.owner,
                   /*through_bottom=*/false, v.size);
        audit_emit(AuditEvent::Kind::kEvict, v.block, 1, kAuditNoLevel,
                   v.owner, /*through_bottom=*/true);
        write_back_if_dirty(v.block, 1);
      } else {
        audit_emit(vr.merged ? AuditEvent::Kind::kDemoteMerge
                             : AuditEvent::Kind::kDemote,
                   v.block, 1, 2, v.owner);
      }
    });
    return out;
  }

  PlaceOutcome place_at_array(BlockId b, ClientId owner, SizeUnits size) {
    PlaceOutcome out;
    out.merged = array_.contains(b);
    const GlruServer::PlaceResult r = array_.place(b, owner, size);
    out.admitted = r.admitted;
    r.for_each([&](const GlruServer::Victim& v) {
      audit_emit(AuditEvent::Kind::kEvict, v.block, 2, kAuditNoLevel, v.owner);
      write_back_if_dirty(v.block, 2);
      ++stats_.eviction_notices;
      queue_notice(v.owner, v.block);
    });
    return out;
  }

  // Repairs the engine's claim after a declined shared-cache placement.
  void drop_claim(BlockId b, ClientId c) {
    const std::size_t el = clients_[c]->level_of(b);
    if (el == 1 || el == 2) clients_[c]->external_evict(b);
  }

  // As drop_claim, for the case where no copy remains anywhere: any dirty
  // data is written straight through to disk.
  void unplace(BlockId b, ClientId c) {
    drop_claim(b, c);
    write_back_if_dirty(b, 0);
  }

  // Write-back choke point: drops the dirty marking only after the
  // write-back is narrated and journaled.
  bool write_back_if_dirty(BlockId b, std::size_t from) {
    const SizeUnits* size = dirty_.find(b);
    if (size == nullptr) return false;
    const SizeUnits bytes = *size;
    dirty_.erase(b);
    ++stats_.writebacks;
    journal_write_back(b, from, bytes);
    return true;
  }

  void queue_notice(ClientId owner, BlockId block) {
    // Self-notices apply immediately (local knowledge); others are delivered
    // before the owner's next request (piggybacked in the real protocol).
    if (owner < clients_.size()) {
      pending_[owner].push_back(block);
    }
  }

  // Repairs the engine's belief about `block` against the shared caches.
  // Returns true if anything had to change.
  bool sync(ClientId c, BlockId b) {
    UlcClient& client = *clients_[c];
    const std::size_t el = client.level_of(b);
    if (el == 1) {
      if (server_.contains(b)) return false;
      if (array_.contains(b)) {
        client.external_demote(b);
        return true;
      }
      client.external_evict(b);
      return true;
    }
    if (el == 2) {
      if (array_.contains(b)) return false;
      client.external_evict(b);
      return true;
    }
    return false;
  }

  std::vector<std::unique_ptr<UlcClient>> clients_;
  GlruServer server_;
  GlruServer array_;
  std::vector<std::vector<BlockId>> pending_;
  FlatMap<BlockId, SizeUnits> dirty_;  // dirty block -> written size
  HierarchyStats stats_;
};

}  // namespace

SchemePtr make_ulc_multi_three(std::size_t client_cap, std::size_t server_cap,
                               std::size_t array_cap, std::size_t n_clients) {
  return std::make_unique<UlcMulti3Scheme>(client_cap, server_cap, array_cap,
                                           n_clients);
}

}  // namespace ulc
