// Three-level multi-client ULC: per-client caches over a shared server
// cache over a shared disk-array cache — the paper's §3.2.2 protocol
// generalized to more than one shared level (its single-client protocol
// already handles arbitrary depth; this supplies the multi-client side).
//
// Each shared level runs its own gLRU with owners. The new wrinkle is what
// a full shared level does with its gLRU victim: the server *migrates* it
// down into the array (a server-directed demotion, charged as a transfer on
// the server/array link) rather than dropping it; the array, at the bottom,
// drops (with a write-back if dirty). Owners learn of migrations and
// evictions through the same piggybacked notices as in the two-level
// protocol, now carrying a moved-down/evicted kind.
#include <memory>
#include <vector>

#include "hierarchy/hierarchy.h"
#include "ulc/glru_server.h"
#include "ulc/ulc_client.h"
#include "util/flat_hash.h"
#include "util/ensure.h"

namespace ulc {

namespace {

class UlcMulti3Scheme final : public MultiLevelScheme {
 public:
  UlcMulti3Scheme(std::size_t client_cap, std::size_t server_cap,
                  std::size_t array_cap, std::size_t n_clients)
      : server_(server_cap), array_(array_cap) {
    ULC_REQUIRE(n_clients >= 1, "needs at least one client");
    UlcConfig cfg;
    cfg.capacities = {client_cap, 0, 0};
    cfg.first_elastic_level = 1;
    for (std::size_t c = 0; c < n_clients; ++c)
      clients_.push_back(std::make_unique<UlcClient>(cfg));
    pending_.resize(n_clients);
    stats_.resize(3);
  }

  void access(const Request& request) override {
    ULC_REQUIRE(request.client < clients_.size(), "client id out of range");
    ++stats_.references;
    const ClientId c = request.client;
    UlcClient& client = *clients_[c];

    // Deliver pending notices, then make sure the engine's view of the
    // requested block matches reality (shared blocks move underneath us).
    for (BlockId b : pending_[c]) sync(c, b);
    pending_[c].clear();
    if (sync(c, request.block)) ++stats_.stale_syncs;

    client.set_elastic_full(1, server_.full());
    client.set_elastic_full(2, array_.full());

    const UlcAccess& a = client.access(request.block);
    if (request.op == Op::kWrite) {
      if (a.placed_level != kLevelOut) {
        dirty_.put(request.block, 1);
      } else {
        ++stats_.writebacks;
        audit_emit(AuditEvent::Kind::kWriteback, request.block);
      }
    }

    serve(c, request.block, a);

    for (const DemoteCmd& d : a.demotions) {
      ULC_ENSURE(d.from == 0 && d.to == 1,
                 "client cascades stop at the first shared level");
      ++stats_.demotions[0];
      const bool merged = place_at_server(d.block, c);
      audit_emit(merged ? AuditEvent::Kind::kDemoteMerge : AuditEvent::Kind::kDemote,
                 d.block, 0, 1, c);
    }
    if (a.placed_level == 0 && a.hit_level != 0)
      audit_emit(AuditEvent::Kind::kPlace, request.block, kAuditNoLevel, 0, c);
  }

  const HierarchyStats& stats() const override { return stats_; }
  void reset_stats() override { stats_.clear(); }
  const char* name() const override { return "ULC"; }

  AuditTraits audit_traits() const override {
    AuditTraits t;
    t.supported = true;
    t.bottom_evict_only = true;
    // Stale client metadata may legitimately serve from the array while
    // another client has since promoted a shared copy to the server, so the
    // reported hit level is a *member* of the resident set, not its top.
    t.exact_hit_level = false;
    t.clients = clients_.size();
    t.capacities = {clients_[0]->capacity(0), server_.capacity(),
                    array_.capacity()};
    return t;
  }

  void audit_resident_levels(ClientId client, BlockId block,
                             std::vector<std::size_t>& out) const override {
    if (clients_[client]->level_of(block) == 0) out.push_back(0);
    if (server_.contains(block)) out.push_back(1);
    if (array_.contains(block)) out.push_back(2);
  }

  std::size_t audit_level_size(ClientId client, std::size_t level) const override {
    if (level == 0) return clients_[client]->level_size(0);
    return level == 1 ? server_.size() : array_.size();
  }

  bool audit_check_internal() const override {
    for (const auto& cl : clients_) {
      if (!cl->check_consistency()) return false;
    }
    return server_.check_consistency() && array_.check_consistency();
  }

  std::size_t audit_stack_count() const override { return clients_.size(); }
  const UniLruStack* audit_stack(std::size_t index) const override {
    return &clients_[index]->stack();
  }

  bool supports_resync() const override { return true; }

  // Mirrors UlcMultiScheme::resync_drop, generalized to the two shared
  // levels: kLost is narrated only when the shared cache really held the
  // block; dropping stale per-client claims is metadata-only.
  bool resync_drop(ClientId client, BlockId block, std::size_t level) override {
    if (level == 0) {
      if (!clients_[client]->resync_evict(block, 0)) return false;
      dirty_.erase(block);
      audit_emit(AuditEvent::Kind::kLost, block, 0, kAuditNoLevel, client);
      return true;
    }
    GlruServer& shared = level == 1 ? server_ : array_;
    const bool had = shared.contains(block);
    if (had) shared.take(block);
    bool claimed = false;
    for (auto& cl : clients_) {
      if (cl->resync_evict(block, level)) claimed = true;
    }
    if (!had && !claimed) return false;
    if (had) {
      dirty_.erase(block);
      audit_emit(AuditEvent::Kind::kLost, block, level);
    }
    return true;
  }

  std::size_t resync_level(ClientId client, std::size_t level) override {
    std::vector<BlockId> lost;
    if (level == 0) {
      const std::size_t n = clients_[client]->resync_wipe_level(0, &lost);
      for (BlockId b : lost) {
        dirty_.erase(b);
        audit_emit(AuditEvent::Kind::kLost, b, 0, kAuditNoLevel, client);
      }
      return n;
    }
    GlruServer& shared = level == 1 ? server_ : array_;
    const std::size_t n = shared.wipe(&lost);
    for (BlockId b : lost) {
      dirty_.erase(b);
      audit_emit(AuditEvent::Kind::kLost, b, level);
    }
    for (auto& cl : clients_) cl->resync_wipe_level(level);
    return n;
  }

  const GlruServer& server() const { return server_; }
  const GlruServer& array() const { return array_; }

 private:
  void serve(ClientId c, BlockId b, const UlcAccess& a) {
    if (a.hit_level == 0) {
      ++stats_.level_hits[0];
      return;
    }
    if (a.hit_level == 1) {
      ++stats_.level_hits[1];
      route_from_server(c, b, a.retrieve.cache_at);
      return;
    }
    if (a.hit_level == 2) {
      ++stats_.level_hits[2];
      route_from_array(c, b, a.retrieve.cache_at);
      return;
    }
    // Engine miss: a shared copy may still exist under another client's
    // direction.
    if (server_.contains(b)) {
      ++stats_.level_hits[1];
      if (a.retrieve.cache_at != kLevelOut) route_from_server(c, b, a.retrieve.cache_at);
      return;
    }
    if (array_.contains(b)) {
      ++stats_.level_hits[2];
      if (a.retrieve.cache_at != kLevelOut) route_from_array(c, b, a.retrieve.cache_at);
      return;
    }
    ++stats_.misses;
    if (a.retrieve.cache_at == 1) {
      place_at_server(b, c);
      audit_emit(AuditEvent::Kind::kPlace, b, kAuditNoLevel, 1, c);
    }
    if (a.retrieve.cache_at == 2) {
      place_at_array(b, c);
      audit_emit(AuditEvent::Kind::kPlace, b, kAuditNoLevel, 2, c);
    }
  }

  // The block is at the server; move/keep it per the client's direction.
  void route_from_server(ClientId c, BlockId b, std::size_t cache_at) {
    if (cache_at >= 1 && cache_at != kLevelOut) {
      // Stays at the server level (cache_at == 1) or is directed to the
      // array (cache_at == 2: a block ranked down; ship it).
      if (cache_at == 1) {
        server_.refresh(b, c);
      } else {
        const bool took = server_.owner_of(b) == c;
        if (took) server_.take(b);
        ++stats_.demotions[1];
        const bool merged = place_at_array(b, c);
        // Four narrations of one ship-down: a move (demote, merging or not)
        // when this client owned the server copy, otherwise the copy stays
        // and the transfer is pure accounting (kCharge) plus — if the array
        // did not already hold the shared copy — a fresh copy appearing.
        if (took) {
          audit_emit(merged ? AuditEvent::Kind::kDemoteMerge
                            : AuditEvent::Kind::kDemote,
                     b, 1, 2, c);
        } else {
          audit_emit(AuditEvent::Kind::kCharge, b, 1, 2, c);
          if (!merged) audit_emit(AuditEvent::Kind::kPlace, b, kAuditNoLevel, 2, c);
        }
      }
    } else if (cache_at == 0) {
      if (server_.owner_of(b) == c) {
        audit_emit(AuditEvent::Kind::kServe, b, 1, kAuditNoLevel, c);
        server_.take(b);
      }
    }
  }

  void route_from_array(ClientId c, BlockId b, std::size_t cache_at) {
    if (cache_at == 2) {
      array_.refresh(b, c);
    } else if (cache_at == 1) {
      const bool took = array_.owner_of(b) == c;
      if (took) {
        audit_emit(AuditEvent::Kind::kServe, b, 2, kAuditNoLevel, c);
        array_.take(b);
      }
      const bool merged = place_at_server(b, c);
      if (!merged)
        audit_emit(AuditEvent::Kind::kPlace, b, kAuditNoLevel, 1, c);
    } else if (cache_at == 0) {
      if (array_.owner_of(b) == c) {
        audit_emit(AuditEvent::Kind::kServe, b, 2, kAuditNoLevel, c);
        array_.take(b);
      }
    }
  }

  // Returns true if the server already held the (shared) copy.
  bool place_at_server(BlockId b, ClientId owner) {
    const bool merged = server_.contains(b);
    const GlruServer::PlaceResult r = server_.place(b, owner);
    if (!r.evicted) return merged;
    // Server-directed migration: the gLRU victim moves down to the array
    // instead of being dropped; its owner is told via a piggybacked notice.
    ++stats_.demotions[1];
    ++stats_.eviction_notices;
    queue_notice(r.victim_owner, r.victim);
    const bool victim_merged = place_at_array(r.victim, r.victim_owner);
    audit_emit(victim_merged ? AuditEvent::Kind::kDemoteMerge
                             : AuditEvent::Kind::kDemote,
               r.victim, 1, 2, r.victim_owner);
    return merged;
  }

  // Returns true if the array already held the (shared) copy.
  bool place_at_array(BlockId b, ClientId owner) {
    const bool merged = array_.contains(b);
    const GlruServer::PlaceResult r = array_.place(b, owner);
    if (!r.evicted) return merged;
    audit_emit(AuditEvent::Kind::kEvict, r.victim, 2, kAuditNoLevel,
               r.victim_owner);
    if (dirty_.erase(r.victim)) {
      ++stats_.writebacks;
      audit_emit(AuditEvent::Kind::kWriteback, r.victim);
    }
    ++stats_.eviction_notices;
    queue_notice(r.victim_owner, r.victim);
    return merged;
  }

  void queue_notice(ClientId owner, BlockId block) {
    // Self-notices apply immediately (local knowledge); others are delivered
    // before the owner's next request (piggybacked in the real protocol).
    if (owner < clients_.size()) {
      pending_[owner].push_back(block);
    }
  }

  // Repairs the engine's belief about `block` against the shared caches.
  // Returns true if anything had to change.
  bool sync(ClientId c, BlockId b) {
    UlcClient& client = *clients_[c];
    const std::size_t el = client.level_of(b);
    if (el == 1) {
      if (server_.contains(b)) return false;
      if (array_.contains(b)) {
        client.external_demote(b);
        return true;
      }
      client.external_evict(b);
      return true;
    }
    if (el == 2) {
      if (array_.contains(b)) return false;
      client.external_evict(b);
      return true;
    }
    return false;
  }

  std::vector<std::unique_ptr<UlcClient>> clients_;
  GlruServer server_;
  GlruServer array_;
  std::vector<std::vector<BlockId>> pending_;
  FlatMap<BlockId, std::uint8_t> dirty_;  // set of dirty blocks
  HierarchyStats stats_;
};

}  // namespace

SchemePtr make_ulc_multi_three(std::size_t client_cap, std::size_t server_cap,
                               std::size_t array_cap, std::size_t n_clients) {
  return std::make_unique<UlcMulti3Scheme>(client_cap, server_cap, array_cap,
                                           n_clients);
}

}  // namespace ulc
