// Independent LRU — the commonly deployed baseline (paper's indLRU).
//
// Every level runs its own LRU with no coordination. Caching is inclusive:
// a block served from level k (or disk) is inserted at every level above k
// on its way to the client, so the same block commonly occupies buffers on
// several levels at once — the undiscerning redundancy the paper's
// introduction criticizes. Evictions are silent drops (no transfers), hence
// no demotion cost; its weakness is the hit rate.
#include <vector>

#include "hierarchy/hierarchy.h"
#include "replacement/cache_policy.h"
#include "util/flat_hash.h"
#include "util/ensure.h"

namespace ulc {

namespace {

class IndLruScheme final : public MultiLevelScheme {
 public:
  IndLruScheme(std::vector<std::size_t> caps, std::size_t n_clients)
      : levels_(caps.size()) {
    ULC_REQUIRE(!caps.empty(), "indLRU needs at least one level");
    ULC_REQUIRE(n_clients >= 1, "indLRU needs at least one client");
    for (std::size_t c = 0; c < n_clients; ++c)
      client_caches_.push_back(make_lru(caps[0]));
    for (std::size_t l = 1; l < caps.size(); ++l)
      shared_caches_.push_back(make_lru(caps[l]));
    stats_.resize(levels_);
  }

  void access(const Request& request) override {
    ULC_REQUIRE(request.client < client_caches_.size(), "client id out of range");
    ++stats_.references;
    CachePolicy& client = *client_caches_[request.client];
    const BlockId b = request.block;
    AccessContext ctx;
    ctx.size = request.size;

    if (request.op == Op::kWrite) dirty_.put(b, request.size);
    if (client.touch(b, ctx)) {
      stats_.count_hit(0, request.size);
      return;
    }
    // Walk down the hierarchy; cache the block at every level it passes.
    std::size_t hit_level = kNoHit;
    for (std::size_t l = 1; l < levels_; ++l) {
      if (shared_caches_[l - 1]->touch(b, ctx)) {
        hit_level = l;
        break;
      }
    }
    if (hit_level == kNoHit) {
      stats_.count_miss(request.size);
      hit_level = levels_;  // disk
    } else {
      stats_.count_hit(hit_level, request.size);
    }
    // Dirty data lives at the client copy: write it back to disk when the
    // client evicts it (the deeper inclusive copies are stale). A sized
    // insert can push out several residents; a block too big for the level
    // is bypassed (not admitted) and evicts nothing.
    const EvictResult ev = client.insert(b, ctx);
    ev.for_each([&](BlockId victim) {
      audit_emit(AuditEvent::Kind::kEvict, victim, 0, kAuditNoLevel,
                 request.client);
      write_back_if_dirty(victim, 0);
    });
    if (ev.admitted) {
      audit_emit(AuditEvent::Kind::kPlace, b, kAuditNoLevel, 0, request.client,
                 false, request.size);
    } else {
      // Uncacheable write (block bigger than the client cache): straight
      // through to disk.
      write_back_if_dirty(b, 0);
    }
    for (std::size_t l = 1; l < hit_level && l < levels_; ++l) {
      const EvictResult sev = shared_caches_[l - 1]->insert(b, ctx);
      sev.for_each(
          [&](BlockId victim) { audit_emit(AuditEvent::Kind::kEvict, victim, l); });
      if (sev.admitted)
        audit_emit(AuditEvent::Kind::kPlace, b, kAuditNoLevel, l, 0, false,
                   request.size);
    }
  }

  // The lines the client-level probe touches (its LRU index and the dirty
  // map). Shared levels are only reached on a client miss, so their groups
  // are not worth the prefetch slots on the common path.
  void prefetch(const Request& request) const override {
    if (request.client >= client_caches_.size()) return;
    client_caches_[request.client]->prefetch(request.block);
    dirty_.prefetch(request.block);
  }

  void access_batch(std::span<const Request> batch) override {
    if (auditing()) {
      MultiLevelScheme::access_batch(batch);
      return;
    }
    const std::size_t n = batch.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (i + 4 < n) prefetch(batch[i + 4]);
      access(batch[i]);
    }
  }

  const HierarchyStats& stats() const override { return stats_; }
  void reset_stats() override { stats_.clear(); }
  const char* name() const override { return "indLRU"; }

  AuditTraits audit_traits() const override {
    AuditTraits t;
    t.supported = true;
    t.clients = client_caches_.size();
    t.capacities.push_back(client_caches_[0]->capacity());
    for (const PolicyPtr& s : shared_caches_) t.capacities.push_back(s->capacity());
    return t;
  }

  void audit_resident_levels(ClientId client, BlockId block,
                             std::vector<std::size_t>& out) const override {
    if (client_caches_[client]->contains(block)) out.push_back(0);
    for (std::size_t l = 1; l < levels_; ++l) {
      if (shared_caches_[l - 1]->contains(block)) out.push_back(l);
    }
  }

  std::size_t audit_level_size(ClientId client, std::size_t level) const override {
    return level == 0 ? client_caches_[client]->size()
                      : shared_caches_[level - 1]->size();
  }

  std::uint64_t audit_level_bytes(ClientId client, std::size_t level) const override {
    return level == 0 ? client_caches_[client]->used_bytes()
                      : shared_caches_[level - 1]->used_bytes();
  }

 private:
  static constexpr std::size_t kNoHit = static_cast<std::size_t>(-1);

  // Write-back choke point: drops the dirty marking only after the
  // write-back is narrated and journaled.
  bool write_back_if_dirty(BlockId b, std::size_t from) {
    const SizeUnits* size = dirty_.find(b);
    if (size == nullptr) return false;
    const SizeUnits bytes = *size;
    dirty_.erase(b);
    ++stats_.writebacks;
    journal_write_back(b, from, bytes);
    return true;
  }

  std::size_t levels_;
  std::vector<PolicyPtr> client_caches_;
  std::vector<PolicyPtr> shared_caches_;  // levels 1..n-1
  FlatMap<BlockId, SizeUnits> dirty_;     // dirty block -> written size
  HierarchyStats stats_;
};

}  // namespace

SchemePtr make_ind_lru(std::vector<std::size_t> caps, std::size_t n_clients) {
  return std::make_unique<IndLruScheme>(std::move(caps), n_clients);
}

}  // namespace ulc
