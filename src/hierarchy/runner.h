// Trace-driven simulation runner: warms the caches on the first fraction of
// the trace (the paper uses one tenth), measures the rest, and evaluates the
// cost model.
//
// This is the single-cell primitive of the experiment engine: exp::run_matrix
// (src/exp/experiment.h) executes one run_scheme call per (scheme, trace)
// cell on its worker pool and wraps the RunResult in timing + JSON. Harnesses
// should describe grids as ExperimentSpecs instead of looping over
// run_scheme themselves.
#pragma once

#include <string>
#include <vector>

#include "hierarchy/hierarchy.h"
#include "obs/metrics.h"
#include "obs/trace_recorder.h"
#include "trace/trace.h"

namespace ulc {

struct RunResult {
  std::string scheme;
  std::string trace;
  HierarchyStats stats;
  AccessTimeBreakdown time;
  double t_ave_ms = 0.0;
};

// Optional deterministic instrumentation for run_scheme. Either pointer may
// be null (and both default to null — the zero-cost path: the per-access
// bookkeeping is skipped entirely).
//
// With `metrics` set, the runner records one critical-path response-time
// sample per *measured* reference into metrics->histogram("response_ms"):
// the model hit/miss time of the access plus the demote transfers it
// triggered — exactly the terms of AccessTimeBreakdown::total(), so
// mean(response_ms) == t_ave_ms. Final per-level counters are also published
// into the registry ("hits.L<k>", "misses", "demote.L<k>", ...).
//
// With `events` set, each measured reference is recorded as a span on a
// closed-loop simulated clock (each access starts when the previous one
// completes) — never the wall clock.
struct RunObservation {
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* events = nullptr;
};

// Runs the whole trace through the scheme; statistics are reset after
// `warmup_fraction` of the references (paper §4.2: first one tenth).
RunResult run_scheme(MultiLevelScheme& scheme, const Trace& trace,
                     const CostModel& model, double warmup_fraction = 0.1,
                     RunObservation observe = RunObservation{});

}  // namespace ulc
