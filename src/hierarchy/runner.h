// Trace-driven simulation runner: warms the caches on the first fraction of
// the trace (the paper uses one tenth), measures the rest, and evaluates the
// cost model.
#pragma once

#include <string>
#include <vector>

#include "hierarchy/hierarchy.h"
#include "trace/trace.h"

namespace ulc {

struct RunResult {
  std::string scheme;
  std::string trace;
  HierarchyStats stats;
  AccessTimeBreakdown time;
  double t_ave_ms = 0.0;
};

// Runs the whole trace through the scheme; statistics are reset after
// `warmup_fraction` of the references (paper §4.2: first one tenth).
RunResult run_scheme(MultiLevelScheme& scheme, const Trace& trace,
                     const CostModel& model, double warmup_fraction = 0.1);

}  // namespace ulc
