// Trace-driven simulation runner: warms the caches on the first fraction of
// the trace (the paper uses one tenth), measures the rest, and evaluates the
// cost model.
//
// This is the single-cell primitive of the experiment engine: exp::run_matrix
// (src/exp/experiment.h) executes one run_scheme call per (scheme, trace)
// cell on its worker pool and wraps the RunResult in timing + JSON. Harnesses
// should describe grids as ExperimentSpecs instead of looping over
// run_scheme themselves.
#pragma once

#include <string>
#include <vector>

#include "hierarchy/hierarchy.h"
#include "trace/trace.h"

namespace ulc {

struct RunResult {
  std::string scheme;
  std::string trace;
  HierarchyStats stats;
  AccessTimeBreakdown time;
  double t_ave_ms = 0.0;
};

// Runs the whole trace through the scheme; statistics are reset after
// `warmup_fraction` of the references (paper §4.2: first one tenth).
RunResult run_scheme(MultiLevelScheme& scheme, const Trace& trace,
                     const CostModel& model, double warmup_fraction = 0.1);

}  // namespace ulc
