#include "hierarchy/cost_model.h"

#include "util/ensure.h"

namespace ulc {

CostModel CostModel::paper_three_level() { return CostModel{{1.0, 0.2, 10.0}}; }

CostModel CostModel::paper_two_level() { return CostModel{{1.0, 10.0}}; }

CostModel CostModel::sized(const CostModel& base, double ms_per_unit_scale) {
  ULC_REQUIRE(ms_per_unit_scale >= 0.0, "per-unit scale must be >= 0");
  CostModel m;
  m.link_ms = base.link_ms;
  m.link_ms_per_unit.reserve(base.link_ms.size());
  for (double l : base.link_ms) m.link_ms_per_unit.push_back(l * ms_per_unit_scale);
  return m;
}

double CostModel::hit_time(std::size_t level) const {
  ULC_REQUIRE(level < link_ms.size(), "hit_time level out of range");
  double t = 0.0;
  for (std::size_t i = 0; i < level; ++i) t += link_ms[i];
  return t;
}

double CostModel::miss_time() const {
  double t = 0.0;
  for (double l : link_ms) t += l;
  return t;
}

double CostModel::hit_time_per_unit(std::size_t level) const {
  if (!size_proportional()) return 0.0;
  ULC_REQUIRE(level < link_ms_per_unit.size(), "hit_time level out of range");
  double t = 0.0;
  for (std::size_t i = 0; i < level; ++i) t += link_ms_per_unit[i];
  return t;
}

double CostModel::miss_time_per_unit() const {
  double t = 0.0;
  for (double l : link_ms_per_unit) t += l;
  return t;
}

void HierarchyStats::resize(std::size_t levels) {
  level_hits.assign(levels, 0);
  demotions.assign(levels, 0);
  reloads.assign(levels, 0);
  level_hit_bytes.assign(levels, 0);
  demotion_bytes.assign(levels, 0);
  reload_bytes.assign(levels, 0);
}

void HierarchyStats::clear() {
  for (auto& v : level_hits) v = 0;
  for (auto& v : demotions) v = 0;
  for (auto& v : reloads) v = 0;
  for (auto& v : level_hit_bytes) v = 0;
  for (auto& v : demotion_bytes) v = 0;
  for (auto& v : reload_bytes) v = 0;
  misses = 0;
  miss_bytes = 0;
  references = 0;
  writebacks = 0;
  eviction_notices = 0;
  stale_syncs = 0;
  sized = false;
}

namespace {
void add_padded(std::vector<std::uint64_t>& into,
                const std::vector<std::uint64_t>& from) {
  if (from.size() > into.size()) into.resize(from.size(), 0);
  for (std::size_t i = 0; i < from.size(); ++i) into[i] += from[i];
}
}  // namespace

void HierarchyStats::merge_from(const HierarchyStats& other) {
  add_padded(level_hits, other.level_hits);
  add_padded(demotions, other.demotions);
  add_padded(reloads, other.reloads);
  add_padded(level_hit_bytes, other.level_hit_bytes);
  add_padded(demotion_bytes, other.demotion_bytes);
  add_padded(reload_bytes, other.reload_bytes);
  misses += other.misses;
  miss_bytes += other.miss_bytes;
  references += other.references;
  writebacks += other.writebacks;
  eviction_notices += other.eviction_notices;
  stale_syncs += other.stale_syncs;
  sized = sized || other.sized;
}

double HierarchyStats::hit_ratio(std::size_t level) const {
  if (references == 0) return 0.0;
  return static_cast<double>(level_hits[level]) / static_cast<double>(references);
}

double HierarchyStats::total_hit_ratio() const {
  if (references == 0) return 0.0;
  std::uint64_t h = 0;
  for (auto v : level_hits) h += v;
  return static_cast<double>(h) / static_cast<double>(references);
}

double HierarchyStats::miss_ratio() const {
  if (references == 0) return 0.0;
  return static_cast<double>(misses) / static_cast<double>(references);
}

double HierarchyStats::demotion_ratio(std::size_t boundary) const {
  if (references == 0) return 0.0;
  return static_cast<double>(demotions[boundary]) / static_cast<double>(references);
}

Json counters_to_json(const HierarchyStats& stats) {
  Json j = Json::object();
  Json hits = Json::array();
  for (auto v : stats.level_hits) hits.push(v);
  j.set("level_hits", std::move(hits));
  j.set("misses", stats.misses);
  Json dem = Json::array();
  for (auto v : stats.demotions) dem.push(v);
  j.set("demotions", std::move(dem));
  Json rel = Json::array();
  for (auto v : stats.reloads) rel.push(v);
  j.set("reloads", std::move(rel));
  j.set("references", stats.references);
  j.set("writebacks", stats.writebacks);
  if (stats.eviction_notices != 0) j.set("eviction_notices", stats.eviction_notices);
  if (stats.stale_syncs != 0) j.set("stale_syncs", stats.stale_syncs);
  if (stats.sized) {
    Json hb = Json::array();
    for (auto v : stats.level_hit_bytes) hb.push(v);
    j.set("level_hit_bytes", std::move(hb));
    j.set("miss_bytes", stats.miss_bytes);
    Json db = Json::array();
    for (auto v : stats.demotion_bytes) db.push(v);
    j.set("demotion_bytes", std::move(db));
    Json rb = Json::array();
    for (auto v : stats.reload_bytes) rb.push(v);
    j.set("reload_bytes", std::move(rb));
  }
  return j;
}

AccessTimeBreakdown compute_access_time(const HierarchyStats& stats,
                                        const CostModel& model) {
  ULC_REQUIRE(stats.level_hits.size() >= model.levels(),
              "stats/model level mismatch");
  AccessTimeBreakdown out;
  if (stats.references == 0) return out;
  const double n = static_cast<double>(stats.references);
  // Each component is its per-block term plus, in size-proportional mode,
  // the same sum weighted by the byte twins: N blocks of B total units over
  // link i cost N*link_ms[i] + B*link_ms_per_unit[i].
  for (std::size_t i = 0; i < model.levels(); ++i) {
    out.hit_component +=
        static_cast<double>(stats.level_hits[i]) / n * model.hit_time(i);
  }
  out.miss_component = static_cast<double>(stats.misses) / n * model.miss_time();
  for (std::size_t i = 0; i + 1 < model.levels(); ++i) {
    out.demotion_component +=
        static_cast<double>(stats.demotions[i]) / n * model.demote_cost(i);
  }
  if (model.size_proportional()) {
    ULC_REQUIRE(model.link_ms_per_unit.size() == model.link_ms.size(),
                "size-proportional mode needs one per-unit cost per link");
    ULC_REQUIRE(stats.level_hit_bytes.size() >= model.levels(),
                "stats/model level mismatch");
    for (std::size_t i = 0; i < model.levels(); ++i) {
      out.hit_component += static_cast<double>(stats.level_hit_bytes[i]) / n *
                           model.hit_time_per_unit(i);
    }
    out.miss_component +=
        static_cast<double>(stats.miss_bytes) / n * model.miss_time_per_unit();
    for (std::size_t i = 0; i + 1 < model.levels(); ++i) {
      out.demotion_component += static_cast<double>(stats.demotion_bytes[i]) /
                                n * model.demote_cost_per_unit(i);
    }
  }
  const double disk_link = model.link_ms.back();
  const double disk_per_unit =
      model.size_proportional() ? model.link_ms_per_unit.back() : 0.0;
  for (std::size_t i = 0; i < stats.reloads.size(); ++i) {
    out.reload_disk_ms += static_cast<double>(stats.reloads[i]) / n * disk_link;
    if (i < stats.reload_bytes.size()) {
      out.reload_disk_ms +=
          static_cast<double>(stats.reload_bytes[i]) / n * disk_per_unit;
    }
  }
  // Write-backs stay per-block: their byte twin is not tracked (the ISSUE's
  // conservation law covers hits/demotions/reloads).
  out.writeback_disk_ms = static_cast<double>(stats.writebacks) / n * disk_link;
  return out;
}

}  // namespace ulc
