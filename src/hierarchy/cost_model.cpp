#include "hierarchy/cost_model.h"

#include "util/ensure.h"

namespace ulc {

CostModel CostModel::paper_three_level() { return CostModel{{1.0, 0.2, 10.0}}; }

CostModel CostModel::paper_two_level() { return CostModel{{1.0, 10.0}}; }

double CostModel::hit_time(std::size_t level) const {
  ULC_REQUIRE(level < link_ms.size(), "hit_time level out of range");
  double t = 0.0;
  for (std::size_t i = 0; i < level; ++i) t += link_ms[i];
  return t;
}

double CostModel::miss_time() const {
  double t = 0.0;
  for (double l : link_ms) t += l;
  return t;
}

void HierarchyStats::resize(std::size_t levels) {
  level_hits.assign(levels, 0);
  demotions.assign(levels, 0);
  reloads.assign(levels, 0);
}

void HierarchyStats::clear() {
  for (auto& v : level_hits) v = 0;
  for (auto& v : demotions) v = 0;
  for (auto& v : reloads) v = 0;
  misses = 0;
  references = 0;
  writebacks = 0;
  eviction_notices = 0;
  stale_syncs = 0;
}

double HierarchyStats::hit_ratio(std::size_t level) const {
  if (references == 0) return 0.0;
  return static_cast<double>(level_hits[level]) / static_cast<double>(references);
}

double HierarchyStats::total_hit_ratio() const {
  if (references == 0) return 0.0;
  std::uint64_t h = 0;
  for (auto v : level_hits) h += v;
  return static_cast<double>(h) / static_cast<double>(references);
}

double HierarchyStats::miss_ratio() const {
  if (references == 0) return 0.0;
  return static_cast<double>(misses) / static_cast<double>(references);
}

double HierarchyStats::demotion_ratio(std::size_t boundary) const {
  if (references == 0) return 0.0;
  return static_cast<double>(demotions[boundary]) / static_cast<double>(references);
}

Json counters_to_json(const HierarchyStats& stats) {
  Json j = Json::object();
  Json hits = Json::array();
  for (auto v : stats.level_hits) hits.push(v);
  j.set("level_hits", std::move(hits));
  j.set("misses", stats.misses);
  Json dem = Json::array();
  for (auto v : stats.demotions) dem.push(v);
  j.set("demotions", std::move(dem));
  Json rel = Json::array();
  for (auto v : stats.reloads) rel.push(v);
  j.set("reloads", std::move(rel));
  j.set("references", stats.references);
  j.set("writebacks", stats.writebacks);
  if (stats.eviction_notices != 0) j.set("eviction_notices", stats.eviction_notices);
  if (stats.stale_syncs != 0) j.set("stale_syncs", stats.stale_syncs);
  return j;
}

AccessTimeBreakdown compute_access_time(const HierarchyStats& stats,
                                        const CostModel& model) {
  ULC_REQUIRE(stats.level_hits.size() >= model.levels(),
              "stats/model level mismatch");
  AccessTimeBreakdown out;
  if (stats.references == 0) return out;
  const double n = static_cast<double>(stats.references);
  for (std::size_t i = 0; i < model.levels(); ++i) {
    out.hit_component +=
        static_cast<double>(stats.level_hits[i]) / n * model.hit_time(i);
  }
  out.miss_component = static_cast<double>(stats.misses) / n * model.miss_time();
  for (std::size_t i = 0; i + 1 < model.levels(); ++i) {
    out.demotion_component +=
        static_cast<double>(stats.demotions[i]) / n * model.demote_cost(i);
  }
  const double disk_link = model.link_ms.back();
  for (std::size_t i = 0; i < stats.reloads.size(); ++i) {
    out.reload_disk_ms += static_cast<double>(stats.reloads[i]) / n * disk_link;
  }
  out.writeback_disk_ms = static_cast<double>(stats.writebacks) / n * disk_link;
  return out;
}

}  // namespace ulc
