#include "hierarchy/runner.h"

#include <string>

#include "util/ensure.h"

namespace ulc {

namespace {

// Per-access critical-path cost derived from the counter deltas of one
// scheme.access() call: hit/miss service time plus the demote transfers it
// triggered. Matches AccessTimeBreakdown::total() term by term, so the
// histogram mean equals t_ave_ms exactly.
class AccessCostObserver {
 public:
  AccessCostObserver(const MultiLevelScheme& scheme, const CostModel& model)
      : scheme_(scheme), model_(model) {
    snapshot();
  }

  // Must be called whenever scheme stats are reset mid-run (warmup end).
  void snapshot() {
    const HierarchyStats& s = scheme_.stats();
    prev_hits_ = s.level_hits;
    prev_demotions_ = s.demotions;
    prev_misses_ = s.misses;
  }

  // Cost in ms of the access performed since the last snapshot/observe call.
  double observe() {
    const HierarchyStats& s = scheme_.stats();
    double cost = 0.0;
    if (s.misses != prev_misses_) {
      cost += model_.miss_time();
      prev_misses_ = s.misses;
    } else {
      for (std::size_t i = 0; i < prev_hits_.size() && i < model_.levels(); ++i) {
        if (s.level_hits[i] != prev_hits_[i]) {
          cost += model_.hit_time(i);
          break;
        }
      }
    }
    for (std::size_t i = 0; i < prev_hits_.size(); ++i)
      prev_hits_[i] = s.level_hits[i];
    for (std::size_t i = 0; i + 1 < model_.levels() && i < prev_demotions_.size();
         ++i) {
      const std::uint64_t d = s.demotions[i] - prev_demotions_[i];
      cost += static_cast<double>(d) * model_.demote_cost(i);
    }
    for (std::size_t i = 0; i < prev_demotions_.size(); ++i)
      prev_demotions_[i] = s.demotions[i];
    return cost;
  }

 private:
  const MultiLevelScheme& scheme_;
  const CostModel& model_;
  std::vector<std::uint64_t> prev_hits_;
  std::vector<std::uint64_t> prev_demotions_;
  std::uint64_t prev_misses_ = 0;
};

void publish_counters(obs::MetricsRegistry& m, const HierarchyStats& s) {
  for (std::size_t i = 0; i < s.level_hits.size(); ++i)
    m.add_counter("hits.L" + std::to_string(i), s.level_hits[i]);
  m.add_counter("misses", s.misses);
  for (std::size_t i = 0; i < s.demotions.size(); ++i)
    m.add_counter("demote.L" + std::to_string(i), s.demotions[i]);
  for (std::size_t i = 0; i < s.reloads.size(); ++i)
    m.add_counter("reload.L" + std::to_string(i), s.reloads[i]);
  m.add_counter("references", s.references);
  m.add_counter("writebacks", s.writebacks);
}

}  // namespace

RunResult run_scheme(MultiLevelScheme& scheme, const Trace& trace,
                     const CostModel& model, double warmup_fraction,
                     RunObservation observe) {
  ULC_REQUIRE(warmup_fraction >= 0.0 && warmup_fraction < 1.0,
              "warmup fraction must be in [0, 1)");
  obs::MetricsRegistry* metrics = obs::gate(observe.metrics);
  obs::TraceRecorder* events = obs::gate(observe.events);
  RunResult result;
  result.scheme = scheme.name();
  result.trace = trace.name();
  if (trace.empty()) {
    // No references: return zeroed stats (sized to the scheme's levels)
    // instead of ratios computed from 0 references.
    scheme.reset_stats();
    result.stats = scheme.stats();
    result.time = compute_access_time(result.stats, model);
    result.t_ave_ms = result.time.total();
    if (metrics) publish_counters(*metrics, result.stats);
    return result;
  }
  // On tiny traces `warmup_fraction * size` can round to 0; the stats must
  // still be dropped exactly once, before the first measured reference.
  const std::size_t warmup =
      static_cast<std::size_t>(warmup_fraction * static_cast<double>(trace.size()));
  bool stats_reset = false;
  if (metrics || events) {
    AccessCostObserver cost(scheme, model);
    obs::LatencyHistogram* hist =
        metrics ? &metrics->histogram("response_ms") : nullptr;
    double clock_ms = 0.0;  // closed-loop simulated time
    for (std::size_t i = 0; i < trace.size(); ++i) {
      if (i >= warmup && !stats_reset) {
        scheme.reset_stats();
        stats_reset = true;
        cost.snapshot();
      }
      if (i + 1 < trace.size()) scheme.prefetch(trace[i + 1]);
      scheme.access(trace[i]);
      if (stats_reset) {
        const double ms = cost.observe();
        if (hist) hist->record(ms);
        if (events) {
          events->span("access", "access", clock_ms, ms,
                       obs::TraceRecorder::kClientTrack, i,
                       static_cast<std::int64_t>(trace[i].block));
        }
        clock_ms += ms;
      }
    }
  } else {
    // Batched path: one virtual dispatch per span instead of per reference,
    // and the hot schemes' access_batch overrides run their prefetch
    // pipeline inside. Splitting at the warmup boundary reproduces the
    // per-access loop's reset point exactly (reset fires before reference
    // `warmup`, which exists since warmup_fraction < 1).
    const std::span<const Request> all(trace.requests());
    scheme.access_batch(all.first(warmup));
    scheme.reset_stats();
    stats_reset = true;
    scheme.access_batch(all.subspan(warmup));
  }
  ULC_ENSURE(stats_reset, "warmup must end before the trace does");
  result.stats = scheme.stats();
  result.time = compute_access_time(result.stats, model);
  result.t_ave_ms = result.time.total();
  if (metrics) publish_counters(*metrics, result.stats);
  return result;
}

}  // namespace ulc
