#include "hierarchy/runner.h"

#include "util/ensure.h"

namespace ulc {

RunResult run_scheme(MultiLevelScheme& scheme, const Trace& trace,
                     const CostModel& model, double warmup_fraction) {
  ULC_REQUIRE(warmup_fraction >= 0.0 && warmup_fraction < 1.0,
              "warmup fraction must be in [0, 1)");
  const std::size_t warmup =
      static_cast<std::size_t>(warmup_fraction * static_cast<double>(trace.size()));
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i == warmup) scheme.reset_stats();
    scheme.access(trace[i]);
  }
  RunResult result;
  result.scheme = scheme.name();
  result.trace = trace.name();
  result.stats = scheme.stats();
  result.time = compute_access_time(result.stats, model);
  result.t_ave_ms = result.time.total();
  return result;
}

}  // namespace ulc
