#include "hierarchy/runner.h"

#include "util/ensure.h"

namespace ulc {

RunResult run_scheme(MultiLevelScheme& scheme, const Trace& trace,
                     const CostModel& model, double warmup_fraction) {
  ULC_REQUIRE(warmup_fraction >= 0.0 && warmup_fraction < 1.0,
              "warmup fraction must be in [0, 1)");
  RunResult result;
  result.scheme = scheme.name();
  result.trace = trace.name();
  if (trace.empty()) {
    // No references: return zeroed stats (sized to the scheme's levels)
    // instead of ratios computed from 0 references.
    scheme.reset_stats();
    result.stats = scheme.stats();
    result.time = compute_access_time(result.stats, model);
    result.t_ave_ms = result.time.total();
    return result;
  }
  // On tiny traces `warmup_fraction * size` can round to 0; the stats must
  // still be dropped exactly once, before the first measured reference.
  const std::size_t warmup =
      static_cast<std::size_t>(warmup_fraction * static_cast<double>(trace.size()));
  bool stats_reset = false;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i >= warmup && !stats_reset) {
      scheme.reset_stats();
      stats_reset = true;
    }
    scheme.access(trace[i]);
  }
  ULC_ENSURE(stats_reset, "warmup must end before the trace does");
  result.stats = scheme.stats();
  result.time = compute_access_time(result.stats, model);
  result.t_ave_ms = result.time.total();
  return result;
}

}  // namespace ulc
