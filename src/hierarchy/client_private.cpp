// N fully-private single-client hierarchies side by side: client c's
// references go to copy c, and no level is ever shared. This is the
// no-sharing baseline of the multi-client comparison — and, by construction,
// the one scheme family with zero cross-client state, so it is the legitimate
// carrier of supports_partitioned_replay(): replaying each client's request
// subsequence against a fresh instance and summing the per-client counters
// (integer addition, fixed client order) reproduces a serial replay exactly.
#include <functional>
#include <string>
#include <vector>

#include "hierarchy/hierarchy.h"
#include "util/ensure.h"

namespace ulc {

namespace {

class ClientPrivateScheme final : public MultiLevelScheme {
 public:
  explicit ClientPrivateScheme(std::vector<SchemePtr> subs)
      : subs_(std::move(subs)) {
    ULC_REQUIRE(!subs_.empty(), "client-private scheme needs >= 1 client");
    for (const SchemePtr& s : subs_)
      ULC_REQUIRE(s != nullptr, "client-private scheme got a null sub-scheme");
    name_ = std::string("private(") + subs_[0]->name() + ")";
  }

  void access(const Request& request) override {
    ULC_REQUIRE(request.client < subs_.size(),
                "request client id out of range for client-private scheme");
    Request r = request;
    r.client = 0;  // each copy is a single-client hierarchy
    subs_[request.client]->access(r);
  }

  void prefetch(const Request& request) const override {
    if (request.client >= subs_.size()) return;
    Request r = request;
    r.client = 0;
    subs_[request.client]->prefetch(r);
  }

  // Forwards maximal same-client runs to the owning copy's access_batch, so
  // a partitioned (single-client) replay runs the child's devirtualized
  // prefetch pipeline over the whole span. The run is copied once to rewrite
  // the client ids; scratch_ is reused across runs to avoid reallocating.
  void access_batch(std::span<const Request> batch) override {
    std::size_t i = 0;
    while (i < batch.size()) {
      const ClientId c = batch[i].client;
      ULC_REQUIRE(c < subs_.size(),
                  "request client id out of range for client-private scheme");
      std::size_t j = i + 1;
      while (j < batch.size() && batch[j].client == c) ++j;
      scratch_.assign(batch.begin() + static_cast<std::ptrdiff_t>(i),
                      batch.begin() + static_cast<std::ptrdiff_t>(j));
      for (Request& r : scratch_) r.client = 0;
      subs_[c]->access_batch(std::span<const Request>(scratch_));
      i = j;
    }
  }

  bool supports_partitioned_replay() const override { return true; }

  const HierarchyStats& stats() const override {
    merged_ = HierarchyStats{};
    // Fixed client order; all-integer, so the merge is exact regardless of
    // how the per-client stats were produced.
    for (const SchemePtr& s : subs_) merged_.merge_from(s->stats());
    return merged_;
  }

  void reset_stats() override {
    for (const SchemePtr& s : subs_) s->reset_stats();
  }

  const char* name() const override { return name_.c_str(); }

  // No narration: the copies would each narrate client 0, and re-tagging
  // interleaved events is not worth it for a baseline scheme. Default audit
  // traits already tell the auditor to fall back to conservation checks.

  void set_writeback_journal(WritebackSink* journal) override {
    for (const SchemePtr& s : subs_) s->set_writeback_journal(journal);
  }

 private:
  std::vector<SchemePtr> subs_;
  std::string name_;
  std::vector<Request> scratch_;
  mutable HierarchyStats merged_;
};

}  // namespace

SchemePtr make_client_private(const std::function<SchemePtr()>& per_client,
                              std::size_t n_clients) {
  ULC_REQUIRE(n_clients >= 1, "client-private scheme needs >= 1 client");
  std::vector<SchemePtr> subs;
  subs.reserve(n_clients);
  for (std::size_t c = 0; c < n_clients; ++c) subs.push_back(per_client());
  return std::make_unique<ClientPrivateScheme>(std::move(subs));
}

}  // namespace ulc
