// Common interface for the multi-level caching schemes of Section 4:
// indLRU, uniLRU (+ multi-client insertion variants), LRU+MQ, eviction-based
// reload, and ULC itself.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "hierarchy/audit.h"
#include "hierarchy/cost_model.h"
#include "replacement/cache_policy.h"
#include "trace/trace.h"
#include "trace/types.h"
#include "ulc/writeback.h"

namespace ulc {

class UniLruStack;

class MultiLevelScheme {
 public:
  virtual ~MultiLevelScheme() = default;

  // Processes one block reference from `request.client`.
  virtual void access(const Request& request) = 0;

  // Issues cache prefetches for the state `access(request)` will touch —
  // the block's hash group(s), nothing more. Strictly non-mutating and made
  // of pure prefetch instructions: it never stalls, never faults, and never
  // changes observable behaviour, so callers may invoke it for any future
  // request (or not at all) without affecting results. run_scheme calls it
  // one request ahead so the lines arrive while the current access runs.
  virtual void prefetch(const Request& request) const { (void)request; }

  // Processes a contiguous run of references. Semantically identical to
  // calling access() in order (the default does exactly that, interleaving
  // prefetch() one request ahead); hot schemes override it with a
  // devirtualized loop — the override's calls into a `final` class compile
  // to direct calls — plus a two-deep prefetch pipeline (DESIGN.md §11).
  virtual void access_batch(std::span<const Request> batch) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (i + 1 < batch.size()) prefetch(batch[i + 1]);
      access(batch[i]);
    }
  }

  // True when replaying the clients' request subsequences independently —
  // each against a fresh copy of this scheme — and merging the per-client
  // statistics reproduces a serial replay exactly. Only schemes with zero
  // cross-client state (no shared levels) can claim this; exp::run_matrix
  // uses it to split one oversized cell across worker threads.
  virtual bool supports_partitioned_replay() const { return false; }

  virtual const HierarchyStats& stats() const = 0;
  // Drops accumulated statistics (end of the warm-up period) without
  // touching cache contents.
  virtual void reset_stats() = 0;

  virtual const char* name() const = 0;

  // ---- Audit interface (src/check/checked_hierarchy.h) ----
  //
  // Schemes that support auditing narrate block movements into the sink
  // (see audit.h for the emission contract) and answer residency queries so
  // the auditor can detect drift between the narrated protocol and the real
  // cache contents. The default implementation supports nothing: the
  // auditor then falls back to statistics-conservation checks only.

  virtual AuditTraits audit_traits() const { return {}; }
  // Install (or clear, with nullptr) the event sink. Events are appended on
  // every access; the caller owns clearing the vector between accesses.
  virtual void set_audit_sink(std::vector<AuditEvent>* sink) { audit_sink_ = sink; }
  // Appends every level holding `block` to `out`; level 0 means client
  // `client`'s private cache, shared levels are reported for any client.
  virtual void audit_resident_levels(ClientId client, BlockId block,
                                     std::vector<std::size_t>& out) const {
    (void)client;
    (void)block;
    (void)out;
  }
  // Copies held at `level`; for level 0 the count of client `client`'s
  // private cache, for shared levels `client` is ignored.
  virtual std::size_t audit_level_size(ClientId client, std::size_t level) const {
    (void)client;
    (void)level;
    return 0;
  }
  // Occupied SizeUnits at `level` (same slot addressing as
  // audit_level_size). Defaults to the copy count — exact for schemes that
  // only ever see unit-size blocks; size-aware schemes override it with
  // their byte accounting.
  virtual std::uint64_t audit_level_bytes(ClientId client, std::size_t level) const {
    return audit_level_size(client, level);
  }
  // Scheme-internal structural validation (uniLRUstack consistency etc.).
  virtual bool audit_check_internal() const { return true; }
  // ULC schemes expose their clients' uniLRUstacks for the auditor's
  // yardstick checks; others report none.
  virtual std::size_t audit_stack_count() const { return 0; }
  virtual const UniLruStack* audit_stack(std::size_t index) const {
    (void)index;
    return nullptr;
  }

  // ---- Directory resync (src/proto recovery protocol) ----
  //
  // When a faulted run discovers that a level's reply contradicts the
  // client's directory — a stale hit after a level crash, a demote whose
  // data never arrived — the client repairs its metadata through these
  // hooks instead of asserting. Implementations narrate each dropped
  // directory entry as a kLost audit event so the shadow auditor stays in
  // lock-step with the repair. Schemes with no client directory (indLRU)
  // keep the default no-op: their per-level LRU state self-heals.

  virtual bool supports_resync() const { return false; }
  // Drops `client`'s directory claim that `block` lives at `level` (and any
  // matching real copy the scheme itself holds at that level). Returns
  // false when the directory holds no such claim.
  virtual bool resync_drop(ClientId client, BlockId block, std::size_t level) {
    (void)client;
    (void)block;
    (void)level;
    return false;
  }
  // A level restarted empty: drops every directory entry of `client` at
  // `level` (all clients' views for shared levels). Returns the number of
  // entries dropped.
  virtual std::size_t resync_level(ClientId client, std::size_t level) {
    (void)client;
    (void)level;
    return 0;
  }

  // ---- Write-back journal (ulc/writeback.h) ----
  //
  // Install (or clear, with nullptr) the durable-write sink. Schemes report
  // every dirty block leaving the hierarchy through journal_write_back();
  // with no sink installed the write-back is still narrated and counted,
  // matching the legacy fire-and-forget cost model exactly.
  virtual void set_writeback_journal(WritebackSink* journal) {
    journal_ = journal;
  }

 protected:
  bool auditing() const { return audit_sink_ != nullptr; }
  void audit_emit(AuditEvent::Kind kind, BlockId block,
                  std::size_t from = kAuditNoLevel, std::size_t to = kAuditNoLevel,
                  ClientId owner = 0, bool through_bottom = false,
                  SizeUnits size = 1) const {
    if (audit_sink_ != nullptr)
      audit_sink_->push_back(
          AuditEvent{kind, block, from, to, owner, through_bottom, size});
  }

  WritebackSink* writeback_journal() const { return journal_; }

  // The single choke point for dirty data leaving the hierarchy: narrate
  // the write-back (the auditor's D-laws key off this event) and enqueue it
  // to the journal.
  void journal_write_back(BlockId block, std::size_t from, SizeUnits size) const {
    audit_emit(AuditEvent::Kind::kWriteback, block, from, kAuditNoLevel, 0,
               false, size);
    if (journal_ != nullptr) journal_->append(block, from, size);
  }

  // A dirty copy destroyed without a write-back (crash resync): report the
  // loss so the fault harness can measure it.
  void journal_record_loss(BlockId block, std::size_t from, SizeUnits size) const {
    if (journal_ != nullptr) journal_->record_loss(block, from, size);
  }

 private:
  std::vector<AuditEvent>* audit_sink_ = nullptr;
  WritebackSink* journal_ = nullptr;
};

using SchemePtr = std::unique_ptr<MultiLevelScheme>;

// ---- Factories ----

// Independent LRU at every level. Inclusive: a block fetched from below is
// cached at every level it passes. caps[0] is per client; lower levels are
// shared by all clients.
SchemePtr make_ind_lru(std::vector<std::size_t> caps, std::size_t n_clients = 1);

// Wong & Wilkes unified LRU (DEMOTE), single client, any number of levels:
// one global LRU stack whose segments are the cache levels; every block
// sliding across a segment boundary is a demotion.
SchemePtr make_uni_lru(std::vector<std::size_t> caps);

// Multi-client unified LRU: per-client exclusive LRU caches over a shared
// server cache; demoted blocks enter the server at an insertion point.
enum class UniLruInsertion { kMru, kMiddle, kLru };
const char* uni_lru_insertion_name(UniLruInsertion policy);
SchemePtr make_uni_lru_multi(std::size_t client_cap, std::size_t server_cap,
                             std::size_t n_clients, UniLruInsertion insertion);

// LRU at the client(s), MQ at the shared server (Zhou et al.), inclusive.
SchemePtr make_mq_hierarchy(std::size_t client_cap, std::size_t server_cap,
                            std::size_t n_clients, std::size_t queue_count = 8,
                            std::uint64_t life_time = 0);

// Same structure with any server policy (LIRS/ARC/2Q/...): the whole
// "re-design the second level" family behind one factory.
SchemePtr make_policy_hierarchy(std::size_t client_cap, PolicyPtr server_policy,
                                std::size_t n_clients);

// Eviction-based placement (Chen et al. 2003): structurally uniLRU, but a
// block crossing a boundary is re-read from disk by the lower level instead
// of being demoted over the network (counted in stats().reloads).
SchemePtr make_reload_uni_lru(std::vector<std::size_t> caps);

// OPT-layout: the offline upper bound — Belady content with ND-ordered
// placement across the levels. Must replay exactly `trace` (kept by
// reference; it must outlive the scheme). stats().demotions counts layout
// movement across each boundary.
SchemePtr make_opt_layout(std::vector<std::size_t> caps, const Trace& trace);

// ULC, multiple clients over TWO shared levels (server + disk-array cache):
// the multi-client protocol generalized in depth. Shared-level overflow
// migrates the gLRU victim down (a server-directed demotion) instead of
// dropping it; owners learn via the same piggybacked notices.
SchemePtr make_ulc_multi_three(std::size_t client_cap, std::size_t server_cap,
                               std::size_t array_cap, std::size_t n_clients);

// ULC, single client, any number of levels. `temp_capacity` client buffers
// (carved out of caps[0]) hold pass-through blocks (paper footnote 3).
SchemePtr make_ulc(std::vector<std::size_t> caps, std::size_t temp_capacity = 0);

// N fully-private single-client hierarchies side by side (one `per_client()`
// instance per client, no shared levels): the no-sharing baseline. The only
// factory whose schemes claim supports_partitioned_replay() — zero
// cross-client state by construction, so exp::run_matrix may replay each
// client's subsequence independently and merge the counters exactly.
SchemePtr make_client_private(const std::function<SchemePtr()>& per_client,
                              std::size_t n_clients);

// ULC, multiple clients sharing one server (two levels): per-client engines
// with an elastic second level, gLRU allocation at the server, delayed
// (piggybacked) eviction notices. `temp_capacity` buffers per client hold
// pass-through blocks (paper footnote 3); they are carved out of client_cap
// so the comparison against the other schemes stays fair.
SchemePtr make_ulc_multi(std::size_t client_cap, std::size_t server_cap,
                         std::size_t n_clients, std::size_t temp_capacity = 0);

}  // namespace ulc
