// Common interface for the multi-level caching schemes of Section 4:
// indLRU, uniLRU (+ multi-client insertion variants), LRU+MQ, eviction-based
// reload, and ULC itself.
#pragma once

#include <memory>

#include "hierarchy/cost_model.h"
#include "replacement/cache_policy.h"
#include "trace/trace.h"
#include "trace/types.h"

namespace ulc {

class MultiLevelScheme {
 public:
  virtual ~MultiLevelScheme() = default;

  // Processes one block reference from `request.client`.
  virtual void access(const Request& request) = 0;

  virtual const HierarchyStats& stats() const = 0;
  // Drops accumulated statistics (end of the warm-up period) without
  // touching cache contents.
  virtual void reset_stats() = 0;

  virtual const char* name() const = 0;
};

using SchemePtr = std::unique_ptr<MultiLevelScheme>;

// ---- Factories ----

// Independent LRU at every level. Inclusive: a block fetched from below is
// cached at every level it passes. caps[0] is per client; lower levels are
// shared by all clients.
SchemePtr make_ind_lru(std::vector<std::size_t> caps, std::size_t n_clients = 1);

// Wong & Wilkes unified LRU (DEMOTE), single client, any number of levels:
// one global LRU stack whose segments are the cache levels; every block
// sliding across a segment boundary is a demotion.
SchemePtr make_uni_lru(std::vector<std::size_t> caps);

// Multi-client unified LRU: per-client exclusive LRU caches over a shared
// server cache; demoted blocks enter the server at an insertion point.
enum class UniLruInsertion { kMru, kMiddle, kLru };
const char* uni_lru_insertion_name(UniLruInsertion policy);
SchemePtr make_uni_lru_multi(std::size_t client_cap, std::size_t server_cap,
                             std::size_t n_clients, UniLruInsertion insertion);

// LRU at the client(s), MQ at the shared server (Zhou et al.), inclusive.
SchemePtr make_mq_hierarchy(std::size_t client_cap, std::size_t server_cap,
                            std::size_t n_clients, std::size_t queue_count = 8,
                            std::uint64_t life_time = 0);

// Same structure with any server policy (LIRS/ARC/2Q/...): the whole
// "re-design the second level" family behind one factory.
SchemePtr make_policy_hierarchy(std::size_t client_cap, PolicyPtr server_policy,
                                std::size_t n_clients);

// Eviction-based placement (Chen et al. 2003): structurally uniLRU, but a
// block crossing a boundary is re-read from disk by the lower level instead
// of being demoted over the network (counted in stats().reloads).
SchemePtr make_reload_uni_lru(std::vector<std::size_t> caps);

// OPT-layout: the offline upper bound — Belady content with ND-ordered
// placement across the levels. Must replay exactly `trace` (kept by
// reference; it must outlive the scheme). stats().demotions counts layout
// movement across each boundary.
SchemePtr make_opt_layout(std::vector<std::size_t> caps, const Trace& trace);

// ULC, multiple clients over TWO shared levels (server + disk-array cache):
// the multi-client protocol generalized in depth. Shared-level overflow
// migrates the gLRU victim down (a server-directed demotion) instead of
// dropping it; owners learn via the same piggybacked notices.
SchemePtr make_ulc_multi_three(std::size_t client_cap, std::size_t server_cap,
                               std::size_t array_cap, std::size_t n_clients);

// ULC, single client, any number of levels. `temp_capacity` client buffers
// (carved out of caps[0]) hold pass-through blocks (paper footnote 3).
SchemePtr make_ulc(std::vector<std::size_t> caps, std::size_t temp_capacity = 0);

// ULC, multiple clients sharing one server (two levels): per-client engines
// with an elastic second level, gLRU allocation at the server, delayed
// (piggybacked) eviction notices. `temp_capacity` buffers per client hold
// pass-through blocks (paper footnote 3); they are carved out of client_cap
// so the comparison against the other schemes stays fair.
SchemePtr make_ulc_multi(std::size_t client_cap, std::size_t server_cap,
                         std::size_t n_clients, std::size_t temp_capacity = 0);

}  // namespace ulc
