// Audit instrumentation types shared by every MultiLevelScheme.
//
// When a scheme is given an audit sink (set_audit_sink), it narrates each
// access as a sequence of block *movements* — the observable protocol
// actions of §3.2.1 (Retrieve serves, Demote transfers, placements,
// evictions) plus disk reloads and write-backs. The shadow-model auditor
// (src/check/checked_hierarchy.h) replays those events against an
// independently maintained residency model and cross-checks them per access
// against the scheme's own statistics, so a scheme whose internal state
// drifts from the protocol messages it claims to send is caught mechanically
// rather than by eyeballing hit-ratio tables.
//
// Emission contract (enforced by the auditor):
//   * events narrate the access's real block movements in process order;
//     the auditor tracks occupancy in SizeUnits and enforces every level's
//     byte budget once the access has fully replayed. (Mid-access occupancy
//     may transiently overshoot: at block granularity a sized demote can
//     land before the evictions that make room for it, so the paper's
//     demote-before-evict sequencing (§3.1) holds per access, not per
//     event.);
//   * kServe is emitted only for the requested block of the current access;
//   * a kDemote/kDemoteMerge crossing links [from, to) accounts for exactly
//     that many HierarchyStats::demotions increments, kReload for one
//     reloads increment, kWriteback for one writebacks increment.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/types.h"

namespace ulc {

// "Not a cache level" marker for AuditEvent endpoints (disk / out).
inline constexpr std::size_t kAuditNoLevel = static_cast<std::size_t>(-1);

// One observable block movement or accounting action.
struct AuditEvent {
  enum class Kind : std::uint8_t {
    kServe,        // copy leaves `from`, travelling up to the requester
    kPlace,        // copy appears at `to` (fetched from disk or the serve)
    kDemote,       // copy moves down from `from` to `to` (network transfer)
    kDemoteMerge,  // demote whose target already holds the shared copy:
                   // the transfer happens, the target keeps a single copy
    kReload,       // copy moves down by a disk re-read (eviction-based
                   // placement; no network transfer)
    kEvict,        // copy at `from` leaves the hierarchy (silent drop)
    kWriteback,    // dirty block written back to disk as it leaves
    kCharge,       // pure accounting: demote messages on links [from, to)
                   // that move no copy of their own (shared-block ship-downs
                   // whose source copy stays; any copy the transfer creates
                   // is narrated by a separate kPlace)
    kLost,         // directory resync: the copy at `from` was discovered to
                   // be gone (level crash, lost demote) and the directory
                   // entry is dropped to match reality. No transfer, no
                   // write-back; exempt from the bottom-evict-only rule —
                   // the copy did not "leave", it was found missing.
  };

  Kind kind = Kind::kPlace;
  BlockId block = 0;
  std::size_t from = kAuditNoLevel;  // level losing the copy
  std::size_t to = kAuditNoLevel;    // level gaining the copy
  ClientId owner = 0;                // owning client, for level-0 copies
  // kEvict only: the block conceptually cascaded through every level below
  // `from` before leaving (ULC's collapsed Demote(b, i, out), which discards
  // at the source with no transfer). Such evictions are legal under the
  // bottom-evict-only rule even when `from` is an interior level.
  bool through_bottom = false;
  // kPlace only: the appearing copy's footprint in SizeUnits. Movements of
  // existing copies (demotes, serves, evictions) reuse the size the shadow
  // model recorded at placement — sizes are id-stable (DESIGN.md §9).
  SizeUnits size = 1;
};

// What the auditor may assume about a scheme. Default-constructed traits
// (supported == false) restrict the auditor to statistics-conservation
// checks; schemes that implement the full audit interface return supported
// == true and accurate structural flags.
struct AuditTraits {
  bool supported = false;
  // At most one copy of a block exists hierarchy-wide (single-client
  // exclusive schemes: uniLRU, reloadLRU, single-client ULC). Multi-client
  // schemes deliberately duplicate shared blocks across a client cache and a
  // shared level (paper §3.2.2's shared-block rule), so they set this false
  // and rely on the per-level duplicate check instead.
  bool exclusive = false;
  // Copies leave the hierarchy only from the bottom level (demote-before-
  // evict schemes); interior kEvict events must carry through_bottom.
  bool bottom_evict_only = false;
  // The reported hit level always equals the topmost level holding a copy.
  // True for every scheme except three-level multi-client ULC, where stale
  // per-client metadata can legitimately serve from a deeper shared level.
  bool exact_hit_level = true;
  std::size_t clients = 1;
  // Per-level capacities; 0 = externally sized (elastic). Level 0 is a
  // per-client capacity in multi-client schemes.
  std::vector<std::size_t> capacities;
};

}  // namespace ulc
