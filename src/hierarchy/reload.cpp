// Eviction-based placement (Chen, Zhou & Li, USENIX 2003), discussed in the
// paper's Related Work: keep unified-LRU's exclusive layout, but instead of
// demoting a block over the network, drop it and have the lower level
// re-read it from disk. Cache contents — and therefore hit rates — are
// identical to uniLRU (tests assert this); the cost moves from the
// client/server links to the disk, off the critical path. The ablation
// bench uses this to probe when uniLRU's demotion traffic, not its layout,
// is the problem.
#include <vector>

#include "hierarchy/hierarchy.h"
#include "order/segmented_list.h"
#include "util/flat_hash.h"

namespace ulc {

namespace {

class ReloadUniLruScheme final : public MultiLevelScheme {
 public:
  explicit ReloadUniLruScheme(std::vector<std::size_t> caps) : list_(caps) {
    stats_.resize(caps.size());
  }

  void access(const Request& request) override {
    ++stats_.references;
    list_.access(request.block, result_);
    if (result_.hit) {
      ++stats_.level_hits[result_.old_segment];
    } else {
      ++stats_.misses;
    }
    if (request.op == Op::kWrite) dirty_.put(request.block, 1);
    // Boundary slides become disk reloads into the lower level rather than
    // network demotions. Note the catch for dirty blocks: a reload fetches
    // the *stale* on-disk copy, so dirty blocks must be written back before
    // their cached copy may be dropped.
    crossed_wrote_back_.assign(result_.crossed_count, false);
    for (std::size_t b = 0; b < result_.crossed_count; ++b) {
      ++stats_.reloads[b];
      if (dirty_.erase(result_.crossed[b])) {
        ++stats_.writebacks;
        crossed_wrote_back_[b] = true;
      }
    }
    const bool wrote_back =
        result_.evicted && dirty_.erase(result_.evicted_key);
    if (wrote_back) ++stats_.writebacks;
    if (auditing()) emit_events(request.block, wrote_back);
  }

  const HierarchyStats& stats() const override { return stats_; }
  void reset_stats() override { stats_.clear(); }
  const char* name() const override { return "reloadLRU"; }

  AuditTraits audit_traits() const override {
    AuditTraits t;
    t.supported = true;
    t.exclusive = true;
    t.bottom_evict_only = true;
    for (std::size_t s = 0; s < list_.segment_count(); ++s)
      t.capacities.push_back(list_.segment_capacity(s));
    return t;
  }

  void audit_resident_levels(ClientId, BlockId block,
                             std::vector<std::size_t>& out) const override {
    const std::size_t s = list_.segment_of(block);
    if (s != SegmentedList::kNoSegment) out.push_back(s);
  }

  std::size_t audit_level_size(ClientId, std::size_t level) const override {
    return list_.segment_size(level);
  }

 private:
  // Same layout narration as uniLRU, except boundary slides are kReload
  // (disk re-read) rather than kDemote, each preceded by the write-back the
  // stale-copy rule forces for dirty blocks.
  void emit_events(BlockId block, bool wrote_back) {
    if (result_.hit && result_.old_segment == 0) return;  // pure touch
    if (result_.hit) {
      audit_emit(AuditEvent::Kind::kServe, block, result_.old_segment);
    } else if (result_.evicted) {
      audit_emit(AuditEvent::Kind::kEvict, result_.evicted_key,
                 list_.segment_count() - 1);
      if (wrote_back) audit_emit(AuditEvent::Kind::kWriteback, result_.evicted_key);
    }
    for (std::size_t b = result_.crossed_count; b-- > 0;) {
      if (crossed_wrote_back_[b])
        audit_emit(AuditEvent::Kind::kWriteback, result_.crossed[b]);
      audit_emit(AuditEvent::Kind::kReload, result_.crossed[b], b, b + 1);
    }
    audit_emit(AuditEvent::Kind::kPlace, block, kAuditNoLevel, 0);
  }

  SegmentedList list_;
  SegmentedList::AccessResult result_;
  std::vector<bool> crossed_wrote_back_;
  FlatMap<BlockId, std::uint8_t> dirty_;  // set of dirty blocks
  HierarchyStats stats_;
};

}  // namespace

SchemePtr make_reload_uni_lru(std::vector<std::size_t> caps) {
  return std::make_unique<ReloadUniLruScheme>(std::move(caps));
}

}  // namespace ulc
