// Eviction-based placement (Chen, Zhou & Li, USENIX 2003), discussed in the
// paper's Related Work: keep unified-LRU's exclusive layout, but instead of
// demoting a block over the network, drop it and have the lower level
// re-read it from disk. Cache contents — and therefore hit rates — are
// identical to uniLRU (tests assert this); the cost moves from the
// client/server links to the disk, off the critical path. The ablation
// bench uses this to probe when uniLRU's demotion traffic, not its layout,
// is the problem.
#include <vector>

#include "hierarchy/hierarchy.h"
#include "order/segmented_list.h"
#include "util/flat_hash.h"

namespace ulc {

namespace {

class ReloadUniLruScheme final : public MultiLevelScheme {
 public:
  explicit ReloadUniLruScheme(std::vector<std::size_t> caps) : list_(caps) {
    stats_.resize(caps.size());
  }

  void access(const Request& request) override {
    ++stats_.references;
    list_.access(request.block, result_, request.size);
    if (result_.hit) {
      stats_.count_hit(result_.old_segment, request.size);
    } else {
      stats_.count_miss(request.size);
    }
    if (request.op == Op::kWrite) dirty_.put(request.block, request.size);
    // Boundary slides become disk reloads into the lower level rather than
    // network demotions. Note the catch for dirty blocks: a reload fetches
    // the *stale* on-disk copy, so dirty blocks must be written back before
    // their cached copy may be dropped.
    for (const SegmentedList::Crossing& c : result_.crossed)
      stats_.count_reload(c.from, c.size);
    if (auditing()) {
      emit_events(request);
    } else {
      collect_slides();
      for (const Slide& s : slides_) write_back_if_dirty(s.key, s.from);
    }
    for (BlockId victim : result_.evicted)
      write_back_if_dirty(victim, list_.segment_count() - 1);
  }

  const HierarchyStats& stats() const override { return stats_; }
  void reset_stats() override { stats_.clear(); }
  const char* name() const override { return "reloadLRU"; }

  AuditTraits audit_traits() const override {
    AuditTraits t;
    t.supported = true;
    t.exclusive = true;
    t.bottom_evict_only = true;
    for (std::size_t s = 0; s < list_.segment_count(); ++s)
      t.capacities.push_back(list_.segment_capacity(s));
    return t;
  }

  void audit_resident_levels(ClientId, BlockId block,
                             std::vector<std::size_t>& out) const override {
    const std::size_t s = list_.segment_of(block);
    if (s != SegmentedList::kNoSegment) out.push_back(s);
  }

  std::size_t audit_level_size(ClientId, std::size_t level) const override {
    return list_.segment_size(level);
  }

  std::uint64_t audit_level_bytes(ClientId, std::size_t level) const override {
    return list_.segment_bytes(level);
  }

 private:
  struct Slide {
    BlockId key = 0;
    std::size_t from = 0;
    std::size_t to = 0;
  };

  // Collapse a block's crossings into one multi-hop move (see uniLRU); the
  // write-back the stale-copy rule forces happens at most once per block.
  void collect_slides() {
    slides_.clear();
    for (const SegmentedList::Crossing& c : result_.crossed) {
      bool merged = false;
      for (Slide& s : slides_) {
        if (s.key == c.key) {
          s.to = c.from + 1;
          merged = true;
          break;
        }
      }
      if (!merged) slides_.push_back(Slide{c.key, c.from, c.from + 1});
    }
  }

  // Same physical-order narration as uniLRU, except boundary slides are
  // kReload (disk re-read) rather than kDemote, each preceded by the
  // write-back the stale-copy rule forces for dirty blocks (emitted from
  // the write-back choke point).
  void emit_events(const Request& request) {
    if (result_.hit && result_.old_segment == 0) return;  // pure touch
    const BlockId block = request.block;
    if (result_.hit) {
      audit_emit(AuditEvent::Kind::kServe, block, result_.old_segment);
    }
    audit_emit(AuditEvent::Kind::kPlace, block, kAuditNoLevel, 0, 0, false,
               request.size);
    collect_slides();
    for (const Slide& s : slides_) {
      write_back_if_dirty(s.key, s.from);
      audit_emit(AuditEvent::Kind::kReload, s.key, s.from, s.to);
    }
    for (BlockId victim : result_.evicted)
      audit_emit(AuditEvent::Kind::kEvict, victim, list_.segment_count() - 1);
  }

  // Write-back choke point: drops the dirty marking only after the
  // write-back is narrated and journaled.
  bool write_back_if_dirty(BlockId b, std::size_t from) {
    const SizeUnits* size = dirty_.find(b);
    if (size == nullptr) return false;
    const SizeUnits bytes = *size;
    dirty_.erase(b);
    ++stats_.writebacks;
    journal_write_back(b, from, bytes);
    return true;
  }

  SegmentedList list_;
  SegmentedList::AccessResult result_;
  std::vector<Slide> slides_;
  FlatMap<BlockId, SizeUnits> dirty_;  // dirty block -> written size
  HierarchyStats stats_;
};

}  // namespace

SchemePtr make_reload_uni_lru(std::vector<std::size_t> caps) {
  return std::make_unique<ReloadUniLruScheme>(std::move(caps));
}

}  // namespace ulc
