// Eviction-based placement (Chen, Zhou & Li, USENIX 2003), discussed in the
// paper's Related Work: keep unified-LRU's exclusive layout, but instead of
// demoting a block over the network, drop it and have the lower level
// re-read it from disk. Cache contents — and therefore hit rates — are
// identical to uniLRU (tests assert this); the cost moves from the
// client/server links to the disk, off the critical path. The ablation
// bench uses this to probe when uniLRU's demotion traffic, not its layout,
// is the problem.
#include <vector>

#include "hierarchy/hierarchy.h"
#include "order/segmented_list.h"
#include "util/flat_hash.h"

namespace ulc {

namespace {

class ReloadUniLruScheme final : public MultiLevelScheme {
 public:
  explicit ReloadUniLruScheme(std::vector<std::size_t> caps) : list_(caps) {
    stats_.resize(caps.size());
  }

  void access(const Request& request) override {
    ++stats_.references;
    list_.access(request.block, result_, request.size);
    if (result_.hit) {
      stats_.count_hit(result_.old_segment, request.size);
    } else {
      stats_.count_miss(request.size);
    }
    if (request.op == Op::kWrite) dirty_.put(request.block, 1);
    // Boundary slides become disk reloads into the lower level rather than
    // network demotions. Note the catch for dirty blocks: a reload fetches
    // the *stale* on-disk copy, so dirty blocks must be written back before
    // their cached copy may be dropped.
    crossed_wrote_back_.assign(result_.crossed.size(), false);
    for (std::size_t i = 0; i < result_.crossed.size(); ++i) {
      stats_.count_reload(result_.crossed[i].from, result_.crossed[i].size);
      if (dirty_.erase(result_.crossed[i].key)) {
        ++stats_.writebacks;
        crossed_wrote_back_[i] = true;
      }
    }
    evicted_wrote_back_.assign(result_.evicted.size(), false);
    for (std::size_t i = 0; i < result_.evicted.size(); ++i) {
      if (dirty_.erase(result_.evicted[i])) {
        ++stats_.writebacks;
        evicted_wrote_back_[i] = true;
      }
    }
    if (auditing()) emit_events(request);
  }

  const HierarchyStats& stats() const override { return stats_; }
  void reset_stats() override { stats_.clear(); }
  const char* name() const override { return "reloadLRU"; }

  AuditTraits audit_traits() const override {
    AuditTraits t;
    t.supported = true;
    t.exclusive = true;
    t.bottom_evict_only = true;
    for (std::size_t s = 0; s < list_.segment_count(); ++s)
      t.capacities.push_back(list_.segment_capacity(s));
    return t;
  }

  void audit_resident_levels(ClientId, BlockId block,
                             std::vector<std::size_t>& out) const override {
    const std::size_t s = list_.segment_of(block);
    if (s != SegmentedList::kNoSegment) out.push_back(s);
  }

  std::size_t audit_level_size(ClientId, std::size_t level) const override {
    return list_.segment_size(level);
  }

  std::uint64_t audit_level_bytes(ClientId, std::size_t level) const override {
    return list_.segment_bytes(level);
  }

 private:
  struct Slide {
    BlockId key = 0;
    std::size_t from = 0;
    std::size_t to = 0;
    bool wrote_back = false;
  };

  // Collapse a block's crossings into one multi-hop move (see uniLRU); the
  // write-back the stale-copy rule forces happens at most once per block.
  void collect_slides() {
    slides_.clear();
    for (std::size_t i = 0; i < result_.crossed.size(); ++i) {
      const SegmentedList::Crossing& c = result_.crossed[i];
      bool merged = false;
      for (Slide& s : slides_) {
        if (s.key == c.key) {
          s.to = c.from + 1;
          s.wrote_back = s.wrote_back || crossed_wrote_back_[i];
          merged = true;
          break;
        }
      }
      if (!merged)
        slides_.push_back(Slide{c.key, c.from, c.from + 1, crossed_wrote_back_[i]});
    }
  }

  // Same physical-order narration as uniLRU, except boundary slides are
  // kReload (disk re-read) rather than kDemote, each preceded by the
  // write-back the stale-copy rule forces for dirty blocks.
  void emit_events(const Request& request) {
    if (result_.hit && result_.old_segment == 0) return;  // pure touch
    const BlockId block = request.block;
    if (result_.hit) {
      audit_emit(AuditEvent::Kind::kServe, block, result_.old_segment);
    }
    audit_emit(AuditEvent::Kind::kPlace, block, kAuditNoLevel, 0, 0, false,
               request.size);
    collect_slides();
    for (const Slide& s : slides_) {
      if (s.wrote_back) audit_emit(AuditEvent::Kind::kWriteback, s.key);
      audit_emit(AuditEvent::Kind::kReload, s.key, s.from, s.to);
    }
    for (std::size_t i = 0; i < result_.evicted.size(); ++i) {
      audit_emit(AuditEvent::Kind::kEvict, result_.evicted[i],
                 list_.segment_count() - 1);
      if (evicted_wrote_back_[i])
        audit_emit(AuditEvent::Kind::kWriteback, result_.evicted[i]);
    }
  }

  SegmentedList list_;
  SegmentedList::AccessResult result_;
  std::vector<Slide> slides_;
  std::vector<bool> crossed_wrote_back_;
  std::vector<bool> evicted_wrote_back_;
  FlatMap<BlockId, std::uint8_t> dirty_;  // set of dirty blocks
  HierarchyStats stats_;
};

}  // namespace

SchemePtr make_reload_uni_lru(std::vector<std::size_t> caps) {
  return std::make_unique<ReloadUniLruScheme>(std::move(caps));
}

}  // namespace ulc
