// Eviction-based placement (Chen, Zhou & Li, USENIX 2003), discussed in the
// paper's Related Work: keep unified-LRU's exclusive layout, but instead of
// demoting a block over the network, drop it and have the lower level
// re-read it from disk. Cache contents — and therefore hit rates — are
// identical to uniLRU (tests assert this); the cost moves from the
// client/server links to the disk, off the critical path. The ablation
// bench uses this to probe when uniLRU's demotion traffic, not its layout,
// is the problem.
#include <unordered_set>

#include "hierarchy/hierarchy.h"
#include "order/segmented_list.h"

namespace ulc {

namespace {

class ReloadUniLruScheme final : public MultiLevelScheme {
 public:
  explicit ReloadUniLruScheme(std::vector<std::size_t> caps) : list_(caps) {
    stats_.resize(caps.size());
  }

  void access(const Request& request) override {
    ++stats_.references;
    list_.access(request.block, result_);
    if (result_.hit) {
      ++stats_.level_hits[result_.old_segment];
    } else {
      ++stats_.misses;
    }
    if (request.op == Op::kWrite) dirty_.insert(request.block);
    // Boundary slides become disk reloads into the lower level rather than
    // network demotions. Note the catch for dirty blocks: a reload fetches
    // the *stale* on-disk copy, so dirty blocks must be written back before
    // their cached copy may be dropped.
    for (std::size_t b = 0; b < result_.crossed_count; ++b) {
      ++stats_.reloads[b];
      if (dirty_.find(result_.crossed[b]) != dirty_.end()) {
        ++stats_.writebacks;
        dirty_.erase(result_.crossed[b]);
      }
    }
    if (result_.evicted && dirty_.erase(result_.evicted_key) > 0)
      ++stats_.writebacks;
  }

  const HierarchyStats& stats() const override { return stats_; }
  void reset_stats() override { stats_.clear(); }
  const char* name() const override { return "reloadLRU"; }

 private:
  SegmentedList list_;
  SegmentedList::AccessResult result_;
  std::unordered_set<BlockId> dirty_;
  HierarchyStats stats_;
};

}  // namespace

SchemePtr make_reload_uni_lru(std::vector<std::size_t> caps) {
  return std::make_unique<ReloadUniLruScheme>(std::move(caps));
}

}  // namespace ulc
