// LRU at the client(s) + a pluggable policy at the shared server — the
// "re-design the low level replacement" approach. MQ (Zhou et al. 2001) is
// the paper's Figure-7 representative; LIRS, ARC and 2Q servers are
// provided as extensions of the same family.
//
// The server policy runs over the stream of client misses (the environment
// these policies were designed for); caching is inclusive and there are no
// demotions.
#include <vector>

#include "hierarchy/hierarchy.h"
#include "replacement/cache_policy.h"
#include "util/flat_hash.h"
#include "util/ensure.h"

namespace ulc {

namespace {

class PolicyServerScheme final : public MultiLevelScheme {
 public:
  PolicyServerScheme(std::size_t client_cap, PolicyPtr server,
                     std::size_t n_clients, std::string name, bool auditable)
      : server_(std::move(server)), name_(std::move(name)), auditable_(auditable) {
    ULC_REQUIRE(n_clients >= 1, "needs at least one client");
    for (std::size_t c = 0; c < n_clients; ++c)
      clients_.push_back(make_lru(client_cap));
    stats_.resize(2);
  }

  void access(const Request& request) override {
    ULC_REQUIRE(request.client < clients_.size(), "client id out of range");
    ++stats_.references;
    CachePolicy& client = *clients_[request.client];
    const BlockId b = request.block;
    AccessContext ctx;
    ctx.size = request.size;

    if (request.op == Op::kWrite) dirty_.put(b, request.size);
    if (client.touch(b, ctx)) {
      stats_.count_hit(0, request.size);
      return;
    }
    EvictResult sev;
    if (server_->access(b, ctx, &sev)) {
      stats_.count_hit(1, request.size);
    } else {
      stats_.count_miss(request.size);  // server fetched it from disk and cached it (access()
                        // already inserted it into MQ)
      sev.for_each(
          [&](BlockId victim) { audit_emit(AuditEvent::Kind::kEvict, victim, 1); });
      if (sev.admitted)
        audit_emit(AuditEvent::Kind::kPlace, b, kAuditNoLevel, 1, 0, false,
                   request.size);
    }
    const EvictResult ev = client.insert(b, ctx);
    ev.for_each([&](BlockId victim) {
      audit_emit(AuditEvent::Kind::kEvict, victim, 0, kAuditNoLevel,
                 request.client);
      write_back_if_dirty(victim, 0);
    });
    if (ev.admitted) {
      audit_emit(AuditEvent::Kind::kPlace, b, kAuditNoLevel, 0, request.client,
                 false, request.size);
    } else {
      // Uncacheable write (block bigger than the client cache): straight
      // through to disk.
      write_back_if_dirty(b, 0);
    }
  }

  void prefetch(const Request& request) const override {
    if (request.client >= clients_.size()) return;
    clients_[request.client]->prefetch(request.block);
    server_->prefetch(request.block);
    dirty_.prefetch(request.block);
  }

  void access_batch(std::span<const Request> batch) override {
    if (auditing()) {
      MultiLevelScheme::access_batch(batch);
      return;
    }
    const std::size_t n = batch.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (i + 4 < n) prefetch(batch[i + 4]);
      access(batch[i]);
    }
  }

  const HierarchyStats& stats() const override { return stats_; }
  void reset_stats() override { stats_.clear(); }
  const char* name() const override { return name_.c_str(); }

  AuditTraits audit_traits() const override {
    AuditTraits t;
    // The audit contract additionally needs the server policy to change
    // residency only through insert()'s single EvictResult. LRU and MQ
    // satisfy that; LIRS-family policies shuffle residency on hits, so
    // make_policy_hierarchy builds a non-auditable scheme (stats-only
    // checks still apply).
    t.supported = auditable_;
    t.clients = clients_.size();
    t.capacities = {clients_[0]->capacity(), server_->capacity()};
    return t;
  }

  void audit_resident_levels(ClientId client, BlockId block,
                             std::vector<std::size_t>& out) const override {
    if (clients_[client]->contains(block)) out.push_back(0);
    if (server_->contains(block)) out.push_back(1);
  }

  std::size_t audit_level_size(ClientId client, std::size_t level) const override {
    return level == 0 ? clients_[client]->size() : server_->size();
  }

  std::uint64_t audit_level_bytes(ClientId client, std::size_t level) const override {
    return level == 0 ? clients_[client]->used_bytes() : server_->used_bytes();
  }

 private:
  // Write-back choke point: drops the dirty marking only after the
  // write-back is narrated and journaled.
  bool write_back_if_dirty(BlockId b, std::size_t from) {
    const SizeUnits* size = dirty_.find(b);
    if (size == nullptr) return false;
    const SizeUnits bytes = *size;
    dirty_.erase(b);
    ++stats_.writebacks;
    journal_write_back(b, from, bytes);
    return true;
  }

  std::vector<PolicyPtr> clients_;
  PolicyPtr server_;
  FlatMap<BlockId, SizeUnits> dirty_;  // dirty block -> written size
  HierarchyStats stats_;
  std::string name_;
  bool auditable_;
};

}  // namespace

SchemePtr make_mq_hierarchy(std::size_t client_cap, std::size_t server_cap,
                            std::size_t n_clients, std::size_t queue_count,
                            std::uint64_t life_time) {
  MqConfig cfg;
  cfg.capacity = server_cap;
  cfg.queue_count = queue_count;
  cfg.life_time = life_time;
  return std::make_unique<PolicyServerScheme>(client_cap, make_mq(cfg), n_clients,
                                              "LRU+MQ", /*auditable=*/true);
}

SchemePtr make_policy_hierarchy(std::size_t client_cap, PolicyPtr server_policy,
                                std::size_t n_clients) {
  const std::string name = std::string("LRU+") + server_policy->name();
  return std::make_unique<PolicyServerScheme>(client_cap, std::move(server_policy),
                                              n_clients, name, /*auditable=*/false);
}

}  // namespace ulc
