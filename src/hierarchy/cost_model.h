// The paper's analytical access-time model (§4.1):
//
//   T_ave = sum_i h_i * T_i  +  h_miss * T_m  +  sum_i h_di * T_di
//
// Levels are numbered from the client (level 0). link_ms[i] is the cost of
// moving one block across the link below level i (level i <-> level i+1;
// the last link is level n-1 <-> disk). Then a hit at level i costs the
// links above it, a miss costs every link, and a demotion from level i to
// i+1 costs link_ms[i]. Demotions are charged on the critical path, as the
// paper argues they must be (§4.1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.h"

namespace ulc {

struct CostModel {
  CostModel() = default;
  explicit CostModel(std::vector<double> link) : link_ms(std::move(link)) {}

  std::vector<double> link_ms;
  // Size-proportional mode: moving a block of s SizeUnits across link i
  // costs link_ms[i] + s * link_ms_per_unit[i] (a per-message latency floor
  // plus a bandwidth term). Empty — the default — is the paper's per-block
  // mode, where every block costs link_ms[i] regardless of size; when set it
  // must have one entry per link.
  std::vector<double> link_ms_per_unit;

  // The paper's three-level setting: client --1ms LAN-- server --0.2ms SAN--
  // disk-array cache --10ms-- disk (8KB blocks).
  static CostModel paper_three_level();
  // Two-level client/server setting used for Figure 7.
  static CostModel paper_two_level();
  // `base` with a per-unit bandwidth term added to every link: link i costs
  // link_ms[i] + s * ms_per_unit_scale * link_ms[i] for an s-unit block
  // (each link's bandwidth term proportional to its latency).
  static CostModel sized(const CostModel& base, double ms_per_unit_scale);

  std::size_t levels() const { return link_ms.size(); }
  bool size_proportional() const { return !link_ms_per_unit.empty(); }
  double hit_time(std::size_t level) const;
  double miss_time() const;
  double demote_cost(std::size_t boundary) const { return link_ms[boundary]; }
  // Per-unit twins of the three accessors above (0 in per-block mode).
  double hit_time_per_unit(std::size_t level) const;
  double miss_time_per_unit() const;
  double demote_cost_per_unit(std::size_t boundary) const {
    return size_proportional() ? link_ms_per_unit[boundary] : 0.0;
  }
};

// Raw event counts accumulated by a hierarchy scheme.
struct HierarchyStats {
  std::vector<std::uint64_t> level_hits;
  std::uint64_t misses = 0;
  // demotions[i]: block transfers from level i down to level i+1 (uniLRU
  // demotes, ULC Demote commands). The last entry counts demotes out of the
  // bottom level only for schemes that model them as transfers; plain
  // evictions (drops) are not demotions.
  std::vector<std::uint64_t> demotions;
  // reloads[i]: blocks re-read from disk into level i+1 instead of being
  // demoted (eviction-based placement, Chen et al. 2003). Off the critical
  // path but disk work nonetheless.
  std::vector<std::uint64_t> reloads;
  std::uint64_t references = 0;
  // Dirty blocks written back to disk when they left the hierarchy.
  std::uint64_t writebacks = 0;
  // Multi-client protocol accounting.
  std::uint64_t eviction_notices = 0;  // server -> owner piggybacked notices
  std::uint64_t stale_syncs = 0;       // shared-block metadata repairs

  // Byte-weighted twins of the transfer counters above, in SizeUnits: a hit
  // moves the served block's bytes up the links, a demotion moves the
  // victim's bytes down one link. At unit size each twin mirrors its count
  // exactly. `sized` flips the first time any counter is fed a size != 1 and
  // gates the byte fields out of the JSON schema, so unit-size runs keep the
  // pre-refactor reports byte-for-byte.
  std::vector<std::uint64_t> level_hit_bytes;
  std::uint64_t miss_bytes = 0;
  std::vector<std::uint64_t> demotion_bytes;
  std::vector<std::uint64_t> reload_bytes;
  bool sized = false;

  // Counter helpers: every scheme accounts hits/misses/transfers through
  // these so the count and its byte twin can never drift apart (the
  // auditor's conservation check verifies both against the narration).
  void count_hit(std::size_t level, std::uint64_t size) {
    ++level_hits[level];
    level_hit_bytes[level] += size;
    if (size != 1) sized = true;
  }
  void count_miss(std::uint64_t size) {
    ++misses;
    miss_bytes += size;
    if (size != 1) sized = true;
  }
  void count_demote(std::size_t link, std::uint64_t size) {
    ++demotions[link];
    demotion_bytes[link] += size;
    if (size != 1) sized = true;
  }
  void count_reload(std::size_t link, std::uint64_t size) {
    ++reloads[link];
    reload_bytes[link] += size;
    if (size != 1) sized = true;
  }

  void resize(std::size_t levels);
  void clear();
  // Element-wise counter sum (vectors padded to the longer operand). Pure
  // integer addition, so merging per-partition stats in any fixed order
  // reproduces a serial accumulation exactly — the foundation of
  // exp::run_matrix's partitioned replay.
  void merge_from(const HierarchyStats& other);

  double hit_ratio(std::size_t level) const;
  double total_hit_ratio() const;
  double miss_ratio() const;
  double demotion_ratio(std::size_t boundary) const;
};

// T_ave decomposition for reporting (all in ms per reference).
struct AccessTimeBreakdown {
  double hit_component = 0.0;
  double miss_component = 0.0;
  double demotion_component = 0.0;
  // Disk time spent on reloads, reported separately (not in total()).
  double reload_disk_ms = 0.0;
  // Disk time spent writing back dirty blocks (off-path, not in total()).
  double writeback_disk_ms = 0.0;
  double total() const { return hit_component + miss_component + demotion_component; }
};

AccessTimeBreakdown compute_access_time(const HierarchyStats& stats,
                                        const CostModel& model);

// Raw per-level counters as JSON ({"level_hits": [...], "misses": N,
// "demotions": [...], "reloads": [...], "references": N, "writebacks": N});
// the protocol-only counters (eviction_notices, stale_syncs) are included
// only when non-zero, and the byte twins (level_hit_bytes, miss_bytes,
// demotion_bytes, reload_bytes) only when the run saw a non-unit size.
// Shared by the experiment engine cells and the fault sweep rows so every
// bench JSON reports the same counter schema.
Json counters_to_json(const HierarchyStats& stats);

}  // namespace ulc
