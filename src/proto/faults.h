// Deterministic fault injection for the message-level protocol simulator.
//
// A FaultPlan, driven by the repo's seeded PRNG, decides the fate of every
// message crossing a SimLink — lost, duplicated, or delivered with extra
// delay — and carries a schedule of level-crash events (a cache level
// restarts empty at time T and is unreachable for an outage window). The
// whole plan is replayable from its seed: the same (spec, crashes, seed)
// produce bit-identical fault schedules, and a fault-free plan makes *zero*
// PRNG draws so it perturbs nothing.
//
// Reordering note: SimLink is store-and-forward FIFO per direction, so two
// frames on one link physically cannot swap. Reordering is therefore modeled
// as randomized *extra delay* applied after the link: with sequence-numbered
// idempotent receivers (proto/reliable.h) a delayed duplicate is
// indistinguishable from an out-of-order arrival, which is exactly the
// hazard the recovery protocol must absorb.
#pragma once

#include <cstdint>
#include <vector>

#include "proto/link.h"
#include "proto/reliable.h"
#include "util/prng.h"

namespace ulc {

// Message-level fault probabilities. All default to "no faults".
struct FaultSpec {
  double loss = 0.0;        // P(message silently dropped)
  double duplicate = 0.0;   // P(message delivered twice)
  double delay = 0.0;       // P(message held back by extra_delay_ms)
  SimTime delay_ms = 0.0;   // extra delay applied to a delayed message
  std::uint64_t seed = 1;   // PRNG seed for the fate stream

  bool any() const { return loss > 0.0 || duplicate > 0.0 || delay > 0.0; }
};

// A level restarts empty at `at_ms` and rejects all traffic until
// `at_ms + outage_ms` (crash-recovery with the fabric still up: the machine
// reboots with a cold cache; the client must detect the wipe and resync).
struct CrashEvent {
  std::size_t level = 1;    // which cache level (0 is the client itself)
  SimTime at_ms = 0.0;
  SimTime outage_ms = 0.0;
};

// The fate drawn for one message.
struct MessageFate {
  bool dropped = false;
  bool duplicated = false;
  SimTime extra_delay_ms = 0.0;
};

class FaultPlan {
 public:
  FaultPlan() = default;
  FaultPlan(const FaultSpec& spec, std::vector<CrashEvent> crashes);

  // True when the plan can affect nothing at all: no message faults and no
  // crashes. The reliability layer disarms entirely for such plans so a
  // fault-free faulted run reproduces the legacy simulator byte for byte.
  bool fault_free() const { return !spec_.any() && crashes_.empty(); }
  bool message_faults() const { return spec_.any(); }

  // Draws the fate of the next message. Makes no PRNG draws (and always
  // returns the no-fault fate) when message_faults() is false. Fates are
  // mutually exclusive by priority: dropped, else duplicated, else delayed.
  MessageFate next_fate();

  // One uniform draw in [0, 1) for timeout jitter, from the same seeded
  // stream (sequential simulator, so the draw order is deterministic).
  double jitter01() { return rng_.next_double(); }

  // Crash schedule queries. epoch_at counts the crashes of `level` with
  // at_ms <= t — the client tracks the last epoch it synchronized with and
  // treats any advance as "the level restarted empty". down_at is true
  // inside an outage window (the level answers nothing).
  std::uint64_t epoch_at(std::size_t level, SimTime t) const;
  bool down_at(std::size_t level, SimTime t) const;
  // Crash times of `level`, ascending (for lazy wipe of simulated contents).
  const std::vector<SimTime>& crash_times(std::size_t level) const;
  const std::vector<CrashEvent>& crashes() const { return crashes_; }

 private:
  FaultSpec spec_;
  std::vector<CrashEvent> crashes_;
  std::vector<std::vector<SimTime>> times_by_level_;
  std::vector<SimTime> no_times_;
  Rng rng_{1};
};

// A SimLink with a FaultPlan in front of its receiver. Traffic is charged
// to the link unconditionally (a dropped frame still occupied the wire);
// faults act on *delivery*: drops vanish after transmission, duplicates
// charge the link a second time, delays push the arrival out. The issue
// time is clamped up to last_send(direction) so interleaved traffic sources
// (retries, probes, demotions) can never violate the link's FIFO
// precondition — see SimLink::last_send() for why the clamp is exact.
class FaultyLink {
 public:
  FaultyLink(const LinkConfig& config, FaultPlan& plan, ReliabilityStats& stats)
      : link_(config), plan_(&plan), stats_(&stats) {}

  struct Delivery {
    bool arrived = true;
    SimTime at = 0.0;  // arrival time (meaningful even when dropped: the
                       // time the frame *would* have arrived)
  };

  Delivery transfer(int direction, std::size_t bytes, SimTime when);

  const SimLink& raw() const { return link_; }

 private:
  SimLink link_;
  FaultPlan* plan_;
  ReliabilityStats* stats_;
};

}  // namespace ulc
