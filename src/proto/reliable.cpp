#include "proto/reliable.h"

#include <algorithm>
#include <cmath>

#include "util/ensure.h"

namespace ulc {

SimTime retry_timeout(const RetryPolicy& policy, SimTime base_rtt_ms,
                      std::size_t attempt, double jitter01) {
  ULC_REQUIRE(base_rtt_ms > 0.0, "retry timeout needs a positive base RTT");
  ULC_REQUIRE(jitter01 >= 0.0 && jitter01 < 1.0,
              "timeout jitter draw must lie in [0, 1)");
  double timeout = policy.rtt_multiplier * base_rtt_ms *
                   std::pow(policy.backoff, static_cast<double>(attempt));
  timeout = std::min(timeout, policy.max_timeout_ms);
  return timeout * (1.0 + policy.jitter * jitter01);
}

bool SequenceWindow::accept(std::uint64_t seq) {
  if (seq < next_ || ahead_.count(seq) != 0) {
    ++duplicates_;
    return false;
  }
  if (seq == next_) {
    ++next_;
    while (ahead_.erase(next_) != 0) ++next_;
  } else {
    ahead_.insert(seq);
  }
  return true;
}

}  // namespace ulc
