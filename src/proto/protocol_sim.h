// Message-level protocol simulation of the cache hierarchy.
//
// The analytic model of §4.1 charges every demotion a fixed link cost. This
// simulator instead *plays the messages*: read requests, block replies and
// demotion transfers are serialized over store-and-forward links with
// latency and finite bandwidth, and disk reads serialize at the disk. A
// demoted block occupies the downlink and delays the read requests queued
// behind it, so schemes with heavy demotion traffic (uniLRU at ~1 demotion
// per reference) measure *worse* than their analytic T_ave once links are
// slow — the effect Chen et al. [15] reported and the paper leans on when
// it refuses to assume demotions can be hidden.
//
// The client is closed-loop (one outstanding request, the trace-driven
// regime of the paper); demotion transfers are issued asynchronously after
// the triggering reference completes and contend with later traffic.
#pragma once

#include <cstdint>
#include <vector>

#include "hierarchy/cost_model.h"
#include "obs/metrics.h"
#include "obs/trace_recorder.h"
#include "proto/link.h"
#include "trace/trace.h"
#include "util/stats.h"

namespace ulc {

enum class ProtocolScheme { kUlc, kUniLru, kIndLru };

const char* protocol_scheme_name(ProtocolScheme scheme);

struct ProtocolConfig {
  std::vector<std::size_t> caps;      // cache levels, client first
  std::vector<LinkConfig> links;      // one per adjacent level pair
  SimTime disk_service_ms = 10.0;     // per block read at the disk
  double warmup_fraction = 0.1;

  // The paper's three-level setting: ~1ms LAN, ~0.2ms SAN, 10ms disk.
  static ProtocolConfig paper_three_level(std::vector<std::size_t> caps);
};

struct ProtocolResult {
  ProtocolScheme scheme = ProtocolScheme::kUlc;
  // Measured response time per reference (after warm-up).
  OnlineStats response_ms;
  // Same samples, log-bucketed for percentiles (p50/p95/p99). Keyed to sim
  // time only; adding it does not perturb the simulation.
  obs::LatencyHistogram response_hist;
  // Event counts (hits per level, misses, demotions) as in the trace runner.
  HierarchyStats stats;
  // Per-link utilization over the measured period: busy transmission time /
  // elapsed time, down and up directions.
  std::vector<double> link_down_utilization;
  std::vector<double> link_up_utilization;
  double disk_utilization = 0.0;
  // What the analytic model of §4.1 predicts for the same run (same counts,
  // per-link cost = latency + one block transmission). The gap between this
  // and response_ms.mean() is pure queueing.
  double analytic_t_ave_ms = 0.0;
  // Wall-clock span of the measured period (ms of simulated time).
  double elapsed_ms = 0.0;
};

// Runs the trace through the protocol simulator. The trace must be
// single-client. caps.size() >= 1; links.size() == caps.size() - 1... plus
// the disk behind the last level. A non-null `events` recorder captures the
// message timeline (reference spans on the client track, Demote transfer
// spans on the level tracks) in simulated time; it never changes the run.
ProtocolResult run_protocol_sim(ProtocolScheme scheme, const ProtocolConfig& config,
                                const Trace& trace,
                                obs::TraceRecorder* events = nullptr);

// The §4.1 analytic prediction for the given event counts under `config`:
// per-hop cost = link latency + one block transmission, disk behind the
// last level. Shared by the fault-free and faulted simulators.
double protocol_analytic_t_ave(const ProtocolConfig& config,
                               const HierarchyStats& stats);

}  // namespace ulc
