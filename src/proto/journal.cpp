#include "proto/journal.h"

#include <algorithm>

#include "util/ensure.h"

namespace ulc {

JournalEntry* WritebackJournal::find(std::uint64_t seq) {
  if (seq == 0 || seq > entries_.size()) return nullptr;
  return &entries_[seq - 1];
}

std::uint64_t WritebackJournal::append(BlockId block, std::size_t level,
                                       SizeUnits size) {
  JournalEntry e;
  e.seq = entries_.size() + 1;
  e.block = block;
  e.level = level;
  e.size = size;
  e.epoch = epoch_;
  entries_.push_back(e);
  ++stats_.appended;
  stats_.appended_bytes += size;
  if (mode_ == Mode::kSynchronous) {
    mark_written(e.seq);
    ack(e.seq);
  }
  return e.seq;
}

void WritebackJournal::mark_written(std::uint64_t seq) {
  JournalEntry* e = find(seq);
  ULC_REQUIRE(e != nullptr, "mark_written of an unknown journal entry");
  if (e->state == JournalEntryState::kPending) {
    e->state = JournalEntryState::kWritten;
  }
}

void WritebackJournal::ack(std::uint64_t seq) {
  JournalEntry* e = find(seq);
  ULC_REQUIRE(e != nullptr, "ack of an unknown journal entry");
  if (e->state == JournalEntryState::kLost) {
    // The crash destroyed the entry before storage wrote it; a straggling
    // acknowledgement for it is a protocol violation.
    ++stats_.ack_before_write;
    return;
  }
  if (e->state == JournalEntryState::kPending) ++stats_.ack_before_write;
  if (e->state == JournalEntryState::kAcked) return;
  if (seq < last_acked_seq_) ++stats_.replay_reorders;
  last_acked_seq_ = seq;
  e->state = JournalEntryState::kAcked;
  e->ack_index = next_ack_index_++;
  ++stats_.acked;
  stats_.acked_bytes += e->size;
}

void WritebackJournal::record_loss(BlockId block, std::size_t level,
                                   SizeUnits size) {
  (void)block;
  (void)level;
  ++stats_.dirty_lost;
  stats_.dirty_lost_bytes += size;
}

WritebackJournal::WipeResult WritebackJournal::crash_wipe(std::size_t level) {
  WipeResult wiped;
  for (JournalEntry& e : entries_) {
    if (e.level != level || e.state != JournalEntryState::kPending) continue;
    e.state = JournalEntryState::kLost;
    ++wiped.entries;
    wiped.bytes += e.size;
  }
  stats_.lost_unacked += wiped.entries;
  stats_.lost_unacked_bytes += wiped.bytes;
  ++epoch_;
  return wiped;
}

std::vector<JournalEntry> WritebackJournal::replay() const {
  std::vector<JournalEntry> acked;
  for (const JournalEntry& e : entries_) {
    if (e.state == JournalEntryState::kAcked) acked.push_back(e);
  }
  // Acknowledgement order is the recovery order. laws_hold() separately
  // certifies it matches the append order (prefix property).
  std::sort(acked.begin(), acked.end(),
            [](const JournalEntry& a, const JournalEntry& b) {
              return a.ack_index < b.ack_index;
            });
  return acked;
}

JournalEntryState WritebackJournal::state_of(std::uint64_t seq) const {
  ULC_REQUIRE(seq >= 1 && seq <= entries_.size(),
              "state_of of an unknown journal entry");
  return entries_[seq - 1].state;
}

std::size_t WritebackJournal::pending() const {
  std::size_t n = 0;
  for (const JournalEntry& e : entries_) {
    if (e.state == JournalEntryState::kPending ||
        e.state == JournalEntryState::kWritten) {
      ++n;
    }
  }
  return n;
}

bool WritebackJournal::laws_hold(std::string& why) const {
  if (stats_.ack_before_write != 0) {
    why = "an entry was acknowledged before storage wrote it";
    return false;
  }
  if (stats_.replay_reorders != 0) {
    why = "acknowledgements arrived out of append order";
    return false;
  }
  if (stats_.lost_acked != 0) {
    why = "an acknowledged write was lost";
    return false;
  }
  return true;
}

}  // namespace ulc
