#include "proto/protocol_sim.h"

#include <algorithm>
#include <memory>

#include "order/segmented_list.h"
#include "replacement/cache_policy.h"
#include "ulc/ulc_client.h"
#include "util/ensure.h"

namespace ulc {

const char* protocol_scheme_name(ProtocolScheme scheme) {
  switch (scheme) {
    case ProtocolScheme::kUlc:
      return "ULC";
    case ProtocolScheme::kUniLru:
      return "uniLRU";
    case ProtocolScheme::kIndLru:
      return "indLRU";
  }
  return "?";
}

ProtocolConfig ProtocolConfig::paper_three_level(std::vector<std::size_t> caps) {
  ProtocolConfig cfg;
  cfg.caps = std::move(caps);
  ULC_REQUIRE(cfg.caps.size() == 3, "paper_three_level needs three levels");
  // latency + one 8KB transmission == the paper's per-hop cost:
  //   LAN: 0.5ms + 8KB @ 16MB/s (~0.49ms) ~= 1.0ms
  //   SAN: 0.1ms + 8KB @ 80MB/s (~0.10ms) ~= 0.2ms
  cfg.links = {LinkConfig{0.5, 16.0}, LinkConfig{0.1, 80.0}};
  cfg.disk_service_ms = 10.0;
  return cfg;
}

namespace {

struct Transfer {
  std::size_t from;
  std::size_t to;
};

struct Decision {
  std::size_t hit_level = kLevelOut;  // kLevelOut = disk
  std::vector<Transfer> demotions;    // data transfers from -> to (real levels)
  bool client_directed = false;       // demote commands originate at the client
};

// Adapters present every scheme as "where was it served + which block
// transfers go down afterwards".
class SchemeAdapter {
 public:
  virtual ~SchemeAdapter() = default;
  virtual void access(BlockId block, Decision& out) = 0;
};

namespace {
UlcConfig plain_config(const std::vector<std::size_t>& caps) {
  UlcConfig cfg;
  cfg.capacities = caps;
  return cfg;
}
}  // namespace

class UlcAdapter final : public SchemeAdapter {
 public:
  explicit UlcAdapter(const std::vector<std::size_t>& caps)
      : client_(plain_config(caps)) {}

  void access(BlockId block, Decision& out) override {
    const UlcAccess& a = client_.access(block);
    out.hit_level = a.hit_level;
    out.demotions.clear();
    out.client_directed = true;
    for (const DemoteCmd& d : a.demotions) {
      if (d.to == kLevelOut) continue;  // discard: no transfer
      out.demotions.push_back(Transfer{d.from, d.to});
    }
  }

 private:
  UlcClient client_;
};

class UniLruAdapter final : public SchemeAdapter {
 public:
  explicit UniLruAdapter(const std::vector<std::size_t>& caps) : list_(caps) {}

  void access(BlockId block, Decision& out) override {
    list_.access(block, result_);
    out.hit_level = result_.hit ? result_.old_segment : kLevelOut;
    out.demotions.clear();
    out.client_directed = false;  // each level demotes its own overflow
    for (const SegmentedList::Crossing& c : result_.crossed)
      out.demotions.push_back(Transfer{c.from, c.from + 1});
  }

 private:
  SegmentedList list_;
  SegmentedList::AccessResult result_;
};

class IndLruAdapter final : public SchemeAdapter {
 public:
  explicit IndLruAdapter(const std::vector<std::size_t>& caps) {
    for (std::size_t c : caps) levels_.push_back(make_lru(c));
  }

  void access(BlockId block, Decision& out) override {
    out.demotions.clear();
    out.client_directed = false;
    out.hit_level = kLevelOut;
    for (std::size_t l = 0; l < levels_.size(); ++l) {
      if (levels_[l]->touch(block, {})) {
        out.hit_level = l;
        break;
      }
    }
    const std::size_t upper =
        out.hit_level == kLevelOut ? levels_.size() : out.hit_level;
    for (std::size_t l = 0; l < upper; ++l) levels_[l]->insert(block, {});
  }

 private:
  std::vector<PolicyPtr> levels_;
};

std::unique_ptr<SchemeAdapter> make_adapter(ProtocolScheme scheme,
                                            const std::vector<std::size_t>& caps) {
  switch (scheme) {
    case ProtocolScheme::kUlc:
      return std::make_unique<UlcAdapter>(caps);
    case ProtocolScheme::kUniLru:
      return std::make_unique<UniLruAdapter>(caps);
    case ProtocolScheme::kIndLru:
      return std::make_unique<IndLruAdapter>(caps);
  }
  return nullptr;
}

}  // namespace

ProtocolResult run_protocol_sim(ProtocolScheme scheme, const ProtocolConfig& config,
                                const Trace& trace, obs::TraceRecorder* events) {
  events = obs::gate(events);
  ULC_REQUIRE(!config.caps.empty(), "protocol sim needs at least one level");
  ULC_REQUIRE(config.links.size() + 1 == config.caps.size(),
              "need one link per adjacent level pair");
  ULC_REQUIRE(config.warmup_fraction >= 0.0 && config.warmup_fraction < 1.0,
              "warmup fraction must be in [0, 1)");

  auto adapter = make_adapter(scheme, config.caps);
  std::vector<SimLink> links;
  links.reserve(config.links.size());
  for (const LinkConfig& lc : config.links) links.emplace_back(lc);

  ProtocolResult result;
  result.scheme = scheme;
  result.stats.resize(config.caps.size());

  SimTime now = 0.0;
  SimTime disk_busy_until = 0.0;
  SimTime disk_busy_total = 0.0;

  const std::size_t warmup = static_cast<std::size_t>(
      config.warmup_fraction * static_cast<double>(trace.size()));
  SimTime measure_start = 0.0;
  std::vector<SimTime> busy_down_at_start(links.size(), 0.0);
  std::vector<SimTime> busy_up_at_start(links.size(), 0.0);
  SimTime disk_busy_at_start = 0.0;

  Decision d;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i == warmup) {
      result.stats.clear();
      result.response_ms = OnlineStats{};
      result.response_hist.clear();
      measure_start = now;
      for (std::size_t l = 0; l < links.size(); ++l) {
        busy_down_at_start[l] = links[l].busy_ms(0);
        busy_up_at_start[l] = links[l].busy_ms(1);
      }
      disk_busy_at_start = disk_busy_total;
    }
    ++result.stats.references;
    adapter->access(trace[i].block, d);

    // --- the read path ---
    SimTime completion = now;
    if (d.hit_level != 0) {
      const std::size_t served_from =
          d.hit_level == kLevelOut ? config.caps.size() : d.hit_level;
      SimTime at = now;
      // Request hops down to the serving level (or to the bottom, for disk).
      for (std::size_t l = 0; l < served_from && l < links.size(); ++l)
        at = links[l].deliver_at(0, kControlBytes, at);
      if (d.hit_level == kLevelOut) {
        const SimTime start = std::max(at, disk_busy_until);
        disk_busy_until = start + config.disk_service_ms;
        disk_busy_total += config.disk_service_ms;
        at = disk_busy_until;
      }
      // The block travels up, store-and-forward across every link.
      const std::size_t top_link = std::min(served_from, links.size());
      for (std::size_t l = top_link; l-- > 0;)
        at = links[l].deliver_at(1, kBlockBytes, at);
      completion = at;
    }
    if (d.hit_level == kLevelOut) {
      ++result.stats.misses;
    } else {
      ++result.stats.level_hits[d.hit_level];
    }
    result.response_ms.add(completion - now);
    result.response_hist.record(completion - now);
    if (events) {
      const std::string name =
          d.hit_level == kLevelOut ? "miss"
                                   : "hit L" + std::to_string(d.hit_level);
      events->span(name, "access", now, completion - now,
                   obs::TraceRecorder::kClientTrack, i,
                   static_cast<std::int64_t>(trace[i].block));
    }

    // --- demotion transfers, issued after the reference completes ---
    for (const Transfer& tr : d.demotions) {
      SimTime at = completion;
      if (d.client_directed && tr.from > 0) {
        // ULC: the Demote command itself travels from the client down to the
        // level holding the block.
        for (std::size_t l = 0; l < tr.from; ++l)
          at = links[l].deliver_at(0, kControlBytes, at);
      }
      const SimTime demote_start = at;
      for (std::size_t l = tr.from; l < tr.to && l < links.size(); ++l) {
        at = links[l].deliver_at(0, kBlockBytes, at);
        ++result.stats.demotions[l];
      }
      if (events) {
        events->span("demote L" + std::to_string(tr.from) + "->L" +
                         std::to_string(tr.to),
                     "demote", demote_start, at - demote_start,
                     obs::TraceRecorder::level_track(tr.from), i);
      }
    }
    now = completion;
  }

  const SimTime elapsed = std::max(now - measure_start, 1e-9);
  result.elapsed_ms = elapsed;
  result.link_down_utilization.resize(links.size());
  result.link_up_utilization.resize(links.size());
  for (std::size_t l = 0; l < links.size(); ++l) {
    result.link_down_utilization[l] =
        (links[l].busy_ms(0) - busy_down_at_start[l]) / elapsed;
    result.link_up_utilization[l] =
        (links[l].busy_ms(1) - busy_up_at_start[l]) / elapsed;
  }
  result.disk_utilization = (disk_busy_total - disk_busy_at_start) / elapsed;

  result.analytic_t_ave_ms = protocol_analytic_t_ave(config, result.stats);
  return result;
}

double protocol_analytic_t_ave(const ProtocolConfig& config,
                               const HierarchyStats& stats) {
  // Per-hop cost = latency + one block transmission, for the given counts.
  CostModel model;
  for (const LinkConfig& lc : config.links) {
    // Reconstruct the per-hop block cost from the link itself.
    model.link_ms.push_back(SimLink(lc).transmission_ms(kBlockBytes) + 0.0);
  }
  for (std::size_t l = 0; l < config.links.size(); ++l)
    model.link_ms[l] += config.links[l].latency_ms;
  model.link_ms.push_back(config.disk_service_ms);
  return compute_access_time(stats, model).total();
}

}  // namespace ulc
