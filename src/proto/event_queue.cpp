#include "proto/event_queue.h"

#include "util/ensure.h"

namespace ulc {

void EventQueue::schedule(SimTime at, Action action) {
  ULC_REQUIRE(at >= now_, "cannot schedule into the past");
  heap_.push(Entry{at, next_seq_++, std::move(action)});
}

bool EventQueue::run_one() {
  if (heap_.empty()) return false;
  ULC_REQUIRE(event_limit_ == 0 || events_fired_ < event_limit_,
              "event-count limit exceeded: a fault/retry storm is not "
              "converging (raise set_event_limit or fix the feedback loop)");
  ++events_fired_;
  // priority_queue::top() is const; move the action out via const_cast on
  // the known-mutable element (standard pattern; the entry is popped
  // immediately after).
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  ULC_ENSURE(entry.at >= now_, "event queue time went backwards");
  now_ = entry.at;
  entry.action();
  return true;
}

std::size_t EventQueue::run(std::size_t limit) {
  std::size_t fired = 0;
  while (fired < limit && run_one()) ++fired;
  return fired;
}

std::size_t EventQueue::run_until(SimTime t) {
  std::size_t fired = 0;
  while (!heap_.empty() && heap_.top().at <= t && run_one()) ++fired;
  if (now_ < t) now_ = t;
  return fired;
}

}  // namespace ulc
