// Event-driven multi-client protocol simulation (the [15] scenario).
//
// N closed-loop clients share one LAN segment to the storage server and one
// disk behind it. Every client runs its own request stream; caching
// decisions come from a MultiLevelScheme (ULC, uniLRU, LRU+MQ, indLRU — the
// same objects the trace-driven runner uses), while this simulator plays the
// network: 64-byte requests and 8KB blocks serialize FIFO on the shared
// segment, disk reads serialize at the disk, and demotion transfers contend
// with everyone's requests. This is where unified-LRU's demote-per-reference
// behaviour turns into measured response-time collapse: seven clients'
// demotions saturate the shared downlink long before the reads do.
//
// Unlike the trace-driven runner, the interleaving of clients is *emergent*:
// a client issues its next reference only when the previous one completes,
// so slow schemes see their request streams stretch out.
#pragma once

#include <memory>
#include <vector>

#include "hierarchy/hierarchy.h"
#include "obs/metrics.h"
#include "obs/trace_recorder.h"
#include "proto/link.h"
#include "util/stats.h"
#include "workloads/synthetic.h"

namespace ulc {

struct MultiProtocolConfig {
  std::size_t refs_per_client = 10000;
  double warmup_fraction = 0.1;   // of each client's references
  LinkConfig shared_lan{0.5, 16.0};  // ~1ms per 8KB block
  SimTime disk_service_ms = 10.0;
  SimTime think_time_ms = 0.05;   // client work between references
  std::uint64_t seed = 1;
  // Optional message-timeline recorder (one lane per client); never changes
  // the simulation.
  obs::TraceRecorder* events = nullptr;
};

struct MultiProtocolResult {
  std::string scheme;
  // Response time per reference across all clients, after per-client warmup.
  OnlineStats response_ms;
  // Same samples, log-bucketed for percentiles (p50/p95/p99).
  obs::LatencyHistogram response_hist;
  HierarchyStats stats;  // post-warmup event counts
  double lan_down_utilization = 0.0;
  double lan_up_utilization = 0.0;
  double disk_utilization = 0.0;
  double elapsed_ms = 0.0;  // simulated makespan
  // Completed references per simulated second (system throughput).
  double throughput_per_s = 0.0;
  // §4.1 analytic prediction for the same event counts.
  double analytic_t_ave_ms = 0.0;
};

// Runs the simulation: client c draws references from sources[c]. The scheme
// must be a two-level hierarchy built for sources.size() clients. Sources
// are consumed.
MultiProtocolResult run_multi_protocol_sim(MultiLevelScheme& scheme,
                                           std::vector<PatternPtr> sources,
                                           const MultiProtocolConfig& config);

}  // namespace ulc
