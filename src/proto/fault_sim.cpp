#include "proto/fault_sim.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <unordered_map>

#include "check/checked_hierarchy.h"
#include "hierarchy/hierarchy.h"
#include "ulc/uni_lru_stack.h"
#include "util/ensure.h"

namespace ulc {

const char* fault_phase_name(FaultPhase phase) {
  switch (phase) {
    case FaultPhase::kNormal:
      return "normal";
    case FaultPhase::kDegraded:
      return "degraded";
    case FaultPhase::kRecovered:
      return "recovered";
  }
  return "?";
}

namespace {

SchemePtr make_scheme(ProtocolScheme scheme, const std::vector<std::size_t>& caps) {
  switch (scheme) {
    case ProtocolScheme::kUlc:
      return make_ulc(caps);
    case ProtocolScheme::kUniLru:
      return make_uni_lru(caps);
    case ProtocolScheme::kIndLru:
      return make_ind_lru(caps, 1);
  }
  return nullptr;
}

// What the scheme's narration says this access intends on the wire.
struct Narration {
  bool served = false;                    // kServe of the requested block
  std::vector<std::size_t> place_levels;  // kPlace targets
  std::vector<AuditEvent> transfers;      // demote-ish events, in the legacy
                                          // simulator's (top-down) order
  std::vector<AuditEvent> evicts;         // kEvict events (no traffic)
};

Narration parse_narration(const std::vector<AuditEvent>& events, BlockId block) {
  Narration n;
  for (const AuditEvent& e : events) {
    switch (e.kind) {
      case AuditEvent::Kind::kServe:
        if (e.block == block) n.served = true;
        break;
      case AuditEvent::Kind::kPlace:
        n.place_levels.push_back(e.to);
        break;
      case AuditEvent::Kind::kDemote:
      case AuditEvent::Kind::kDemoteMerge:
      case AuditEvent::Kind::kCharge:
        n.transfers.push_back(e);
        break;
      case AuditEvent::Kind::kEvict:
        n.evicts.push_back(e);
        break;
      default:
        break;
    }
  }
  // Schemes narrate the demote cascade in physical process order — top-down,
  // the order the client issues the transfers on the wire — which is exactly
  // the order the simulator must put them on the links (the per-message loss
  // stream is order-sensitive).
  return n;
}

// The simulator's model of what one level *actually* holds, alongside the
// client-side recovery state for it.
struct LevelActual {
  std::unordered_map<BlockId, SimTime> present;  // block -> arrival time
  std::size_t wiped_through = 0;                 // crash times applied
  std::uint64_t known_epoch = 0;  // last epoch the client synced with
  LevelBreaker breaker;
  SimTime recovery_at = -1.0;     // successful probe reply in flight
  std::uint64_t recovery_epoch = 0;
};

// Outcome of one reliable fetch (request down, serve/NACK up).
struct FetchOutcome {
  bool served = false;           // data arrived within some deadline
  bool nack = false;             // level answered without the block
  SimTime at = 0.0;              // completion (reply arrival or give-up)
  std::uint64_t epoch = 0;       // epoch stamped on the reply
  std::vector<SimTime> leg_at;   // reply arrival per link (block at level l)
  SimTime source_at = 0.0;       // serve/disk completion at the source
};

}  // namespace

FaultedProtocolResult run_faulted_protocol_sim(ProtocolScheme scheme_kind,
                                               const FaultSimConfig& config,
                                               const Trace& trace) {
  const ProtocolConfig& proto = config.protocol;
  ULC_REQUIRE(!proto.caps.empty(), "protocol sim needs at least one level");
  ULC_REQUIRE(proto.links.size() + 1 == proto.caps.size(),
              "need one link per adjacent level pair");
  ULC_REQUIRE(proto.warmup_fraction >= 0.0 && proto.warmup_fraction < 1.0,
              "warmup fraction must be in [0, 1)");
  ULC_REQUIRE(config.retry.max_attempts > 0, "retry policy needs >= 1 attempt");

  const std::size_t nlevels = proto.caps.size();
  const std::size_t nlinks = proto.links.size();

  FaultedProtocolResult result;
  result.base.scheme = scheme_kind;
  result.base.stats.resize(nlevels);
  ReliabilityStats& rel = result.reliability;

  FaultPlan plan(config.faults, config.crashes);
  const bool armed = !plan.fault_free();

  // Timeline recording is read-only with respect to the simulation: every
  // event is stamped with times the run computed anyway.
  obs::TraceRecorder* rec = obs::gate(config.events);
  std::uint64_t current_access = 0;  // for stamping events from the lambdas

  std::vector<FaultyLink> links;
  links.reserve(nlinks);
  for (const LinkConfig& lc : proto.links) links.emplace_back(lc, plan, rel);

  SchemePtr inner = make_scheme(scheme_kind, proto.caps);
  ULC_REQUIRE(inner != nullptr, "unknown protocol scheme");
  std::vector<AuditEvent> sink;
  std::unique_ptr<CheckedHierarchy> checked;
  MultiLevelScheme* scheme = nullptr;
  if (config.checked) {
    CheckOptions opts;
    opts.abort_on_violation = config.abort_on_violation;
    opts.context = config.context;
    checked = std::make_unique<CheckedHierarchy>(std::move(inner), opts);
    ULC_REQUIRE(checked->event_checks_active(),
                "fault sim needs the scheme's event narration");
    scheme = checked.get();
  } else {
    scheme = inner.get();
    scheme->set_audit_sink(&sink);
  }
  const auto events = [&]() -> const std::vector<AuditEvent>& {
    return config.checked ? checked->last_events() : sink;
  };

  // Write-back journal: the scheme appends an entry per dirty block it
  // writes back; the simulator plays the storage side on a dedicated
  // channel (one disk_service_ms per block, FIFO), marking each entry
  // written and acknowledging it in append order when its write lands.
  // Deliberately off the read path and PRNG-free: with journaling on or
  // off, fault-free runs stay byte-identical to run_protocol_sim.
  WritebackJournal journal(WritebackJournal::Mode::kManual);
  if (config.journal) scheme->set_writeback_journal(&journal);
  struct QueuedWrite {
    std::uint64_t seq = 0;
    SimTime at = 0.0;  // storage completion time
  };
  std::deque<QueuedWrite> wb_queue;
  std::size_t journal_seen = 0;
  SimTime wb_busy_until = 0.0;
  // Complete every queued write that lands by `t`: mark written, then ack.
  // Entries a crash already wiped (kLost) are skipped — their data never
  // reached storage.
  const auto drain_writebacks = [&](SimTime t) {
    while (!wb_queue.empty() && wb_queue.front().at <= t) {
      const QueuedWrite w = wb_queue.front();
      wb_queue.pop_front();
      if (journal.state_of(w.seq) == JournalEntryState::kLost) continue;
      journal.mark_written(w.seq);
      journal.ack(w.seq);
    }
  };

  // Zero-load round trips for the timeout budgets. base_rtt[t] is the RTT of
  // a read served by level t (t == nlevels: the disk path); ctrl_rtt[t] the
  // RTT of a pure control exchange with level t.
  std::vector<SimTime> base_rtt(nlevels + 1, 0.0);
  std::vector<SimTime> ctrl_rtt(nlevels, 0.0);
  for (std::size_t t = 1; t <= nlevels; ++t) {
    SimTime rtt = 0.0;
    SimTime ctrl = 0.0;
    for (std::size_t l = 0; l < t && l < nlinks; ++l) {
      const SimLink link(proto.links[l]);
      rtt += 2.0 * proto.links[l].latency_ms + link.transmission_ms(kControlBytes) +
             link.transmission_ms(kBlockBytes);
      ctrl += 2.0 * (proto.links[l].latency_ms + link.transmission_ms(kControlBytes));
    }
    if (t == nlevels) rtt += proto.disk_service_ms;
    base_rtt[t] = rtt;
    if (t < nlevels) ctrl_rtt[t] = ctrl;
  }

  std::vector<LevelActual> levels(nlevels);
  SimTime disk_busy_until = 0.0;
  SimTime disk_busy_total = 0.0;

  const auto jitter = [&]() { return armed ? plan.jitter01() : 0.0; };

  const auto present_at = [&](std::size_t level, BlockId b, SimTime t) {
    const auto it = levels[level].present.find(b);
    return it != levels[level].present.end() && it->second <= t;
  };

  // Lazy crash wipes: a level restart erases every copy that had arrived
  // before the crash; copies still in flight (arrival after the crash)
  // survive and land in the freshly restarted cache.
  const auto apply_wipes = [&](SimTime now) {
    for (std::size_t l = 1; l < nlevels; ++l) {
      const std::vector<SimTime>& times = plan.crash_times(l);
      LevelActual& st = levels[l];
      while (st.wiped_through < times.size() && times[st.wiped_through] <= now) {
        const SimTime when = times[st.wiped_through];
        if (rec)
          rec->instant("crash L" + std::to_string(l), "fault", when,
                       obs::TraceRecorder::level_track(l), current_access);
        if (config.journal) {
          // Writes that completed before the crash are safely acknowledged;
          // whatever the level had not acknowledged by then is gone.
          drain_writebacks(when);
          journal.crash_wipe(l);
        }
        for (auto it = st.present.begin(); it != st.present.end();) {
          // Erase-all sweep: the surviving set is order-independent.
          if (it->second < when) {
            it = st.present.erase(it);
          } else {
            ++it;
          }
        }
        ++st.wiped_through;
      }
    }
  };

  std::vector<std::size_t> resident_scratch;
  const auto claims_level = [&](BlockId b, std::size_t l) {
    resident_scratch.clear();
    scheme->audit_resident_levels(0, b, resident_scratch);
    return std::find(resident_scratch.begin(), resident_scratch.end(), l) !=
           resident_scratch.end();
  };

  const auto resync_drop = [&](BlockId b, std::size_t l) {
    if (!scheme->supports_resync()) return;
    if (scheme->resync_drop(0, b, l)) ++rel.resync_drops;
  };

  // Resync inventory exchange: the level discards every copy the client's
  // directory no longer tracks (sorted sweep — nothing depends on hash
  // order).
  const auto inventory_sync = [&](std::size_t l, SimTime t) {
    std::vector<BlockId> keys;
    keys.reserve(levels[l].present.size());
    for (const auto& kv : levels[l].present) {
      if (kv.second <= t) keys.push_back(kv.first);
    }
    std::sort(keys.begin(), keys.end());
    for (BlockId b : keys) {
      if (!claims_level(b, l)) {
        levels[l].present.erase(b);
        ++rel.stale_copies_reclaimed;
      }
    }
  };

  // The reply's epoch stamp told the client the level restarted since it
  // last synced: purge the directory's claims for the level and run the
  // inventory exchange.
  const auto resync_after_epoch = [&](std::size_t l, std::uint64_t epoch,
                                      SimTime t) {
    if (epoch == levels[l].known_epoch) return;
    levels[l].known_epoch = epoch;
    if (scheme->supports_resync()) {
      const std::size_t purged = scheme->resync_level(0, l);
      ++rel.resync_level_purges;
      rel.resync_purged_entries += purged;
    }
    inventory_sync(l, t);
  };

  const auto send_probe = [&](std::size_t l, SimTime now) {
    levels[l].breaker.probe_sent(now, config.retry.probe_interval_ms);
    ++rel.probes;
    if (rec)
      rec->instant("probe L" + std::to_string(l), "phase", now,
                   obs::TraceRecorder::level_track(l), current_access);
    SimTime t = now;
    for (std::size_t k = 0; k < l && k < nlinks; ++k) {
      const FaultyLink::Delivery d = links[k].transfer(0, kControlBytes, t);
      if (!d.arrived) return;
      t = d.at;
    }
    if (plan.down_at(l, t)) return;  // no reply; the next probe will retry
    const std::uint64_t epoch = plan.epoch_at(l, t);
    SimTime rt = t;
    for (std::size_t k = std::min(l, nlinks); k-- > 0;) {
      const FaultyLink::Delivery d = links[k].transfer(1, kControlBytes, rt);
      if (!d.arrived) return;
      rt = d.at;
    }
    LevelActual& st = levels[l];
    if (st.recovery_at < 0.0 || rt < st.recovery_at) {
      st.recovery_at = rt;
      st.recovery_epoch = epoch;
    }
  };

  // One reliable fetch: request down to `target` (nlevels = disk), reply up,
  // bounded retries with backoff. With a fault-free plan this is exactly one
  // attempt with no deadline — the legacy simulator's arithmetic, verbatim.
  const auto fetch = [&](std::size_t target, BlockId block, SimTime issue,
                         FetchOutcome& out) {
    out = FetchOutcome{};
    const bool disk = target >= nlevels;
    const std::size_t down = std::min(target, nlinks);
    const std::size_t attempts = armed ? config.retry.max_attempts : 1;
    SimTime t_issue = issue;
    for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
      const SimTime deadline =
          armed ? t_issue + retry_timeout(config.retry,
                                          base_rtt[std::min(target, nlevels)],
                                          attempt, jitter())
                : 0.0;
      SimTime t = t_issue;
      bool alive = true;
      for (std::size_t l = 0; l < down; ++l) {
        const FaultyLink::Delivery d = links[l].transfer(0, kControlBytes, t);
        t = d.at;
        if (!d.arrived) {
          alive = false;
          break;
        }
      }
      if (alive && !disk && armed && plan.down_at(target, t)) alive = false;
      if (alive) {
        bool has = true;
        std::uint64_t epoch = 0;
        if (disk) {
          const SimTime start = std::max(t, disk_busy_until);
          disk_busy_until = start + proto.disk_service_ms;
          disk_busy_total += proto.disk_service_ms;
          t = disk_busy_until;
        } else {
          epoch = plan.epoch_at(target, t);
          has = !armed || present_at(target, block, t);
        }
        std::vector<SimTime> leg(down, 0.0);
        SimTime rt = t;
        bool reply_ok = true;
        for (std::size_t l = down; l-- > 0;) {
          const FaultyLink::Delivery d =
              links[l].transfer(1, has ? kBlockBytes : kControlBytes, rt);
          rt = d.at;
          leg[l] = rt;
          if (!d.arrived) {
            reply_ok = false;
            break;
          }
        }
        if (reply_ok) {
          if (!armed || rt <= deadline) {
            out.served = has;
            out.nack = !has;
            out.at = rt;
            out.epoch = epoch;
            out.leg_at = std::move(leg);
            out.source_at = t;
            return;
          }
          ++rel.late_replies;  // the data arrived, but past the deadline
        }
      }
      ++rel.timeouts;
      t_issue = deadline;
      if (attempt + 1 < attempts) ++rel.retries;
    }
    out.at = t_issue;  // gave up at the final deadline
  };

  // When the winning reply carried the block past level `pl`, it arrived
  // there at leg_at[pl] (the bottom level of a disk fetch sees it at the
  // disk completion itself).
  const auto plant_time = [&](std::size_t pl, const FetchOutcome& fo) {
    if (pl == 0) return fo.at;
    if (pl < fo.leg_at.size()) return fo.leg_at[pl];
    return fo.source_at;
  };

  const auto plant_copy = [&](std::size_t pl, SimTime t, BlockId b) {
    if (pl > 0 && armed && plan.down_at(pl, t)) {
      ++rel.dead_placements;
      resync_drop(b, pl);  // the client directed a placement into a dead
                           // level; forget the claim instead of leaking it
      return;
    }
    levels[pl].present[b] = t;
  };

  // One demotion transfer in the legacy order: the ULC Demote command hops
  // from the client down to the source (reliable, bounded retries), then
  // the data crosses links [from, to) (delete-after-send at the source;
  // bounded retries from the sender's buffer).
  const auto process_demote = [&](const AuditEvent& tr, SimTime at0) {
    const bool charge_only = tr.kind == AuditEvent::Kind::kCharge;
    // The sender stamps the transfer with its view of the target's epoch;
    // a receiver that restarted in the meantime refuses the cross-epoch
    // delivery (it cannot trust pre-crash directory state), closing the
    // crash-during-demotion window where stale data landed in a freshly
    // restarted cache.
    const std::uint64_t expected_epoch = levels[tr.to].known_epoch;
    SimTime at = at0;
    if (scheme_kind == ProtocolScheme::kUlc && tr.from > 0) {
      bool delivered = false;
      const std::size_t attempts = armed ? config.retry.max_attempts : 1;
      SimTime t_issue = at;
      for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
        const SimTime deadline =
            armed ? t_issue + retry_timeout(config.retry, ctrl_rtt[tr.from],
                                            attempt, jitter())
                  : 0.0;
        SimTime t = t_issue;
        bool alive = true;
        for (std::size_t l = 0; l < tr.from; ++l) {
          const FaultyLink::Delivery d = links[l].transfer(0, kControlBytes, t);
          t = d.at;
          if (!d.arrived) {
            alive = false;
            break;
          }
        }
        if (alive) {
          delivered = true;
          at = t;
          break;
        }
        ++rel.timeouts;
        t_issue = deadline;
        if (attempt + 1 < attempts) ++rel.retries;
      }
      if (!delivered) {
        // The source never heard the command: the directory moved the block
        // down, but the data stays where it was (reclaimed by the next
        // inventory exchange).
        ++rel.demote_drops;
        resync_drop(tr.block, tr.to);
        return;
      }
    }
    if (!charge_only) levels[tr.from].present.erase(tr.block);
    const SimTime demote_start = at;
    SimTime one_way = 0.0;
    for (std::size_t l = tr.from; l < tr.to && l < nlinks; ++l) {
      one_way += proto.links[l].latency_ms +
                 SimLink(proto.links[l]).transmission_ms(kBlockBytes);
    }
    const std::size_t attempts = armed ? config.retry.max_attempts : 1;
    SimTime t_issue = at;
    for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
      const SimTime deadline =
          armed ? t_issue + retry_timeout(config.retry, 2.0 * one_way, attempt,
                                          jitter())
                : 0.0;
      SimTime t = t_issue;
      bool alive = true;
      for (std::size_t l = tr.from; l < tr.to && l < nlinks; ++l) {
        const FaultyLink::Delivery d = links[l].transfer(0, kBlockBytes, t);
        ++result.base.stats.demotions[l];  // counted at send, like the
                                           // legacy simulator (and real
                                           // wire traffic: retries recount)
        t = d.at;
        if (!d.arrived) {
          alive = false;
          break;
        }
      }
      if (alive && armed && plan.down_at(tr.to, t)) alive = false;
      if (alive && armed && plan.epoch_at(tr.to, t) != expected_epoch) {
        ++rel.cross_epoch_drops;
        if (rec)
          rec->instant("demote cross-epoch L" + std::to_string(tr.from) +
                           "->L" + std::to_string(tr.to),
                       "fault", t, obs::TraceRecorder::level_track(tr.to),
                       current_access, static_cast<std::int64_t>(tr.block));
        if (!charge_only) resync_drop(tr.block, tr.to);
        return;
      }
      if (alive) {
        if (!charge_only) levels[tr.to].present[tr.block] = t;
        if (rec)
          rec->span("demote L" + std::to_string(tr.from) + "->L" +
                        std::to_string(tr.to),
                    "demote", demote_start, t - demote_start,
                    obs::TraceRecorder::level_track(tr.from), current_access,
                    static_cast<std::int64_t>(tr.block));
        return;
      }
      ++rel.timeouts;
      t_issue = deadline;
      if (attempt + 1 < attempts) ++rel.retries;
    }
    ++rel.demote_drops;
    if (rec)
      rec->instant("demote lost L" + std::to_string(tr.from) + "->L" +
                       std::to_string(tr.to),
                   "fault", demote_start,
                   obs::TraceRecorder::level_track(tr.from), current_access,
                   static_cast<std::int64_t>(tr.block));
    if (!charge_only) resync_drop(tr.block, tr.to);
  };

  // ---- main closed loop (structure mirrors run_protocol_sim) ----
  const std::size_t warmup = static_cast<std::size_t>(
      proto.warmup_fraction * static_cast<double>(trace.size()));
  SimTime now = 0.0;
  SimTime measure_start = 0.0;
  std::vector<SimTime> busy_down_at_start(nlinks, 0.0);
  std::vector<SimTime> busy_up_at_start(nlinks, 0.0);
  SimTime disk_busy_at_start = 0.0;
  bool ever_tripped = false;

  for (std::size_t i = 0; i < trace.size(); ++i) {
    ULC_REQUIRE(trace[i].client == 0, "fault sim takes a single-client trace");
    if (i == warmup) {
      result.base.stats.clear();
      result.base.response_ms = OnlineStats{};
      result.base.response_hist.clear();
      for (OnlineStats& s : result.phase_response_ms) s = OnlineStats{};
      for (obs::LatencyHistogram& h : result.phase_hist) h.clear();
      result.phase_references = {};
      measure_start = now;
      for (std::size_t l = 0; l < nlinks; ++l) {
        busy_down_at_start[l] = links[l].raw().busy_ms(0);
        busy_up_at_start[l] = links[l].raw().busy_ms(1);
      }
      disk_busy_at_start = disk_busy_total;
    }

    // Storage side of the journal: complete every write-back due by now.
    if (config.journal) drain_writebacks(now);

    // Recovery machinery (all of it no-ops on a fault-free plan).
    FaultPhase phase = FaultPhase::kNormal;
    if (armed) {
      apply_wipes(now);
      bool any_open = false;
      for (std::size_t l = 1; l < nlevels; ++l) {
        LevelActual& st = levels[l];
        if (st.breaker.open() && st.recovery_at >= 0.0 && st.recovery_at <= now) {
          st.breaker.close();
          ++rel.recoveries;
          if (rec)
            rec->instant("breaker close L" + std::to_string(l), "phase",
                         st.recovery_at, obs::TraceRecorder::level_track(l), i);
          resync_after_epoch(l, st.recovery_epoch, now);
          inventory_sync(l, now);  // also reclaims pure-loss stale copies
          st.recovery_at = -1.0;
        }
        if (st.breaker.probe_due(now)) send_probe(l, now);
        any_open = any_open || st.breaker.open();
      }
      phase = any_open ? FaultPhase::kDegraded
                       : (ever_tripped ? FaultPhase::kRecovered
                                       : FaultPhase::kNormal);
    }
    const std::size_t phase_idx = static_cast<std::size_t>(phase);
    current_access = i;

    ++result.base.stats.references;
    ++result.phase_references[phase_idx];

    const BlockId block = trace[i].block;
    const HierarchyStats pre = scheme->stats();
    // The unchecked path owns the sink: drop the previous access's narration
    // (and any resync kLost events emitted since) before this access writes
    // its own. CheckedHierarchy clears its internal buffer itself.
    sink.clear();
    scheme->access(trace[i]);
    const HierarchyStats& post = scheme->stats();
    std::size_t claimed = kLevelOut;
    for (std::size_t l = 0; l < nlevels; ++l) {
      if (post.level_hits[l] != pre.level_hits[l]) {
        claimed = l;
        break;
      }
    }
    const Narration narr = parse_narration(events(), block);

    // --- the read path ---
    SimTime completion = now;
    bool to_disk = false;       // take the disk path
    bool heal_plant = false;    // plant per directory claims, not narration
    SimTime disk_issue = now;
    FetchOutcome fo;

    if (claimed == 0) {
      if (armed && !present_at(0, block, now)) {
        ++rel.stale_reads;  // the client's own copy was lost earlier
        if (phase == FaultPhase::kRecovered) ++rel.post_recovery_stale_reads;
        to_disk = true;
        heal_plant = true;
      } else {
        ++result.base.stats.level_hits[0];
      }
    } else if (claimed != kLevelOut) {
      if (armed && levels[claimed].breaker.open()) {
        ++rel.bypassed_reads;  // degraded mode: route around the dead level
        to_disk = true;
        heal_plant = true;
        resync_drop(block, claimed);
      } else {
        fetch(claimed, block, now, fo);
        if (fo.served) {
          completion = fo.at;
          ++result.base.stats.level_hits[claimed];
          if (armed) resync_after_epoch(claimed, fo.epoch, fo.at);
          if (narr.served) levels[claimed].present.erase(block);
          for (std::size_t pl : narr.place_levels)
            plant_copy(pl, plant_time(pl, fo), block);
        } else if (fo.nack) {
          ++rel.nacks;
          ++rel.stale_reads;
          if (phase == FaultPhase::kRecovered) ++rel.post_recovery_stale_reads;
          const std::uint64_t before_epoch = levels[claimed].known_epoch;
          resync_after_epoch(claimed, fo.epoch, fo.at);
          if (fo.epoch == before_epoch) resync_drop(block, claimed);
          to_disk = true;
          heal_plant = true;
          disk_issue = fo.at;
        } else {
          // Retry budget exhausted: trip the breaker, enter degraded mode.
          levels[claimed].breaker.trip(fo.at);
          ever_tripped = true;
          ++rel.breaker_trips;
          if (rec)
            rec->instant("breaker trip L" + std::to_string(claimed), "phase",
                         fo.at, obs::TraceRecorder::level_track(claimed), i);
          to_disk = true;
          heal_plant = true;
          disk_issue = fo.at;
        }
      }
    } else {
      to_disk = true;  // the ordinary miss path
    }

    if (to_disk) {
      fetch(nlevels, block, disk_issue, fo);
      ++result.base.stats.misses;
      if (fo.served) {
        completion = fo.at;
        if (heal_plant) {
          // The directory (post-access, post-resync) is the contract of
          // where the block should now live; the disk reply passed every
          // level, so replant it there.
          resident_scratch.clear();
          scheme->audit_resident_levels(0, block, resident_scratch);
          std::sort(resident_scratch.begin(), resident_scratch.end());
          for (std::size_t pl : resident_scratch)
            plant_copy(pl, plant_time(pl, fo), block);
        } else {
          for (std::size_t pl : narr.place_levels)
            plant_copy(pl, plant_time(pl, fo), block);
        }
      } else {
        // Even the disk path exhausted its budget: the read fails. Nothing
        // was cached anywhere, so drop the directory's placement claims.
        ++rel.failed_reads;
        completion = fo.at;
        for (std::size_t pl : narr.place_levels) resync_drop(block, pl);
      }
    }

    result.base.response_ms.add(completion - now);
    result.base.response_hist.record(completion - now);
    result.phase_response_ms[phase_idx].add(completion - now);
    result.phase_hist[phase_idx].record(completion - now);
    if (rec) {
      const std::string name =
          to_disk ? std::string("miss") : "hit L" + std::to_string(claimed);
      rec->span(name, fault_phase_name(phase), now, completion - now,
                obs::TraceRecorder::kClientTrack, i,
                static_cast<std::int64_t>(block));
    }

    // --- demotion transfers, issued after the reference completes ---
    for (const AuditEvent& tr : narr.transfers) process_demote(tr, completion);
    for (const AuditEvent& ev : narr.evicts)
      levels[ev.from].present.erase(ev.block);

    // Schedule the storage writes for every journal entry this access
    // appended: FIFO on the dedicated write-back channel, one service time
    // per block.
    if (config.journal) {
      const std::vector<JournalEntry>& entries = journal.entries();
      for (; journal_seen < entries.size(); ++journal_seen) {
        const SimTime t_write =
            std::max(completion, wb_busy_until) + proto.disk_service_ms;
        wb_busy_until = t_write;
        wb_queue.push_back(QueuedWrite{entries[journal_seen].seq, t_write});
      }
    }

    now = completion;
  }

  // Let the write-back channel finish: every scheduled write that no crash
  // wiped completes and is acknowledged.
  if (config.journal) drain_writebacks(wb_busy_until);
  result.journal = journal.stats();

  if (checked != nullptr) checked->final_check();
  // Detach before the journal (declared after the scheme) goes away.
  if (config.journal) scheme->set_writeback_journal(nullptr);

  const SimTime elapsed = std::max(now - measure_start, 1e-9);
  result.base.elapsed_ms = elapsed;
  result.base.link_down_utilization.resize(nlinks);
  result.base.link_up_utilization.resize(nlinks);
  for (std::size_t l = 0; l < nlinks; ++l) {
    result.base.link_down_utilization[l] =
        (links[l].raw().busy_ms(0) - busy_down_at_start[l]) / elapsed;
    result.base.link_up_utilization[l] =
        (links[l].raw().busy_ms(1) - busy_up_at_start[l]) / elapsed;
  }
  result.base.disk_utilization = (disk_busy_total - disk_busy_at_start) / elapsed;
  result.base.analytic_t_ave_ms =
      protocol_analytic_t_ave(proto, result.base.stats);
  result.measure_start_ms = measure_start;
  result.end_ms = now;
  return result;
}

void publish_fault_metrics(obs::MetricsRegistry& metrics,
                           const FaultedProtocolResult& result) {
  const JournalStats& js = result.journal;
  metrics.add_counter("durability.writebacks_journaled", js.appended);
  metrics.add_counter("durability.writebacks_acked", js.acked);
  metrics.add_counter("durability.lost_unacked", js.lost_unacked);
  metrics.add_counter("durability.lost_unacked_bytes", js.lost_unacked_bytes);
  metrics.add_counter("durability.lost_acked", js.lost_acked);
  metrics.add_counter("durability.dirty_lost", js.dirty_lost);
  metrics.add_counter("durability.dirty_lost_bytes", js.dirty_lost_bytes);
  const ReliabilityStats& rs = result.reliability;
  metrics.add_counter("staleness.stale_reads", rs.stale_reads);
  metrics.add_counter("staleness.post_recovery_stale_reads",
                      rs.post_recovery_stale_reads);
  metrics.add_counter("staleness.cross_epoch_drops", rs.cross_epoch_drops);
}

}  // namespace ulc
