// A simulated network/bus link: fixed propagation latency plus a serial
// transmission server per direction (store-and-forward FIFO). This is what
// turns demotion traffic into *contention*: a demoted 8KB block occupies
// the downlink and delays the read requests queued behind it — the effect
// Chen et al. [15] measured and the ULC paper uses to argue that demotion
// costs cannot be assumed hidden.
#pragma once

#include <cstdint>

#include "proto/event_queue.h"

namespace ulc {

struct LinkConfig {
  SimTime latency_ms = 0.2;       // propagation + protocol overhead
  double bandwidth_mb_s = 10.0;   // serial transmission rate
};

class SimLink {
 public:
  explicit SimLink(const LinkConfig& config);
  SimLink(EventQueue& queue, const LinkConfig& config);

  // Sends `bytes` in the given direction (0 = down, 1 = up); `deliver` runs
  // at the arrival time. Messages in one direction serialize FIFO; the two
  // directions are independent (full duplex). Requires an EventQueue.
  void send(int direction, std::size_t bytes, EventQueue::Action deliver);

  // Synchronous form for sequential (closed-loop) simulations: enqueues the
  // message at time `when` and returns its arrival time. Calls in one
  // direction must have non-decreasing `when` (FIFO).
  SimTime deliver_at(int direction, std::size_t bytes, SimTime when);

  // Transmission time of a payload at this link's bandwidth.
  SimTime transmission_ms(std::size_t bytes) const;

  // Total busy transmission time accumulated per direction (utilization).
  SimTime busy_ms(int direction) const { return busy_total_[direction]; }
  std::uint64_t messages(int direction) const { return messages_[direction]; }

  // Issue time of the most recent send in `direction`. The FIFO precondition
  // of deliver_at() (non-decreasing `when` per direction — enforced with
  // ULC_REQUIRE in enqueue()) means callers that interleave traffic sources
  // (retries, probes, demotions) must clamp their issue time up to this.
  // The clamp is provably harmless: busy_until_ >= last_send_ always holds
  // (each send sets busy_until_ = max(when, busy_until_) + tx), so raising
  // `when` to last_send_ never changes max(when, busy_until_) and therefore
  // never changes any arrival time.
  SimTime last_send(int direction) const { return last_send_[direction]; }

 private:
  EventQueue* queue_ = nullptr;
  LinkConfig config_;
  SimTime busy_until_[2] = {0.0, 0.0};
  SimTime busy_total_[2] = {0.0, 0.0};
  SimTime last_send_[2] = {0.0, 0.0};
  std::uint64_t messages_[2] = {0, 0};

  SimTime enqueue(int direction, std::size_t bytes, SimTime when);
};

// Standard message sizes.
inline constexpr std::size_t kBlockBytes = 8192;   // one file block
inline constexpr std::size_t kControlBytes = 64;   // request/command header

}  // namespace ulc
