#include "proto/link.h"

#include <algorithm>

#include "util/ensure.h"

namespace ulc {

SimLink::SimLink(const LinkConfig& config) : config_(config) {
  ULC_REQUIRE(config.bandwidth_mb_s > 0.0, "link bandwidth must be positive");
  ULC_REQUIRE(config.latency_ms >= 0.0, "link latency must be non-negative");
}

SimLink::SimLink(EventQueue& queue, const LinkConfig& config) : SimLink(config) {
  queue_ = &queue;
}

SimTime SimLink::transmission_ms(std::size_t bytes) const {
  // bandwidth in MB/s = bytes/ms * 1000/2^20; transmission = bytes / rate.
  const double bytes_per_ms = config_.bandwidth_mb_s * 1048576.0 / 1000.0;
  return static_cast<double>(bytes) / bytes_per_ms;
}

SimTime SimLink::enqueue(int direction, std::size_t bytes, SimTime when) {
  ULC_REQUIRE(direction == 0 || direction == 1, "link direction must be 0 or 1");
  ULC_REQUIRE(when >= last_send_[direction],
              "per-direction sends must be issued in time order (FIFO)");
  last_send_[direction] = when;
  const SimTime start = std::max(when, busy_until_[direction]);
  const SimTime tx = transmission_ms(bytes);
  busy_until_[direction] = start + tx;
  busy_total_[direction] += tx;
  ++messages_[direction];
  return start + tx + config_.latency_ms;
}

void SimLink::send(int direction, std::size_t bytes, EventQueue::Action deliver) {
  ULC_REQUIRE(queue_ != nullptr, "send() needs an EventQueue; use deliver_at()");
  const SimTime arrival = enqueue(direction, bytes, queue_->now());
  queue_->schedule(arrival, std::move(deliver));
}

SimTime SimLink::deliver_at(int direction, std::size_t bytes, SimTime when) {
  return enqueue(direction, bytes, when);
}

}  // namespace ulc
