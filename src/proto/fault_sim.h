// Faulted protocol simulation: the legacy message-level simulator
// (proto/protocol_sim.h) replayed under a FaultPlan, with the client-side
// recovery protocol (proto/reliable.h) handling what the plan breaks.
//
// The simulator drives the *real* hierarchy schemes (hierarchy/hierarchy.h,
// optionally wrapped in the CheckedHierarchy auditor) instead of the legacy
// decision adapters, reads each access's narrated audit events to learn
// which protocol messages the scheme intends, and plays those messages over
// FaultyLinks. Alongside the scheme's directory it tracks what each level
// *actually* holds (copies arrive only when their transfer survives, crash
// wipes erase them), so a lost demote or a level restart makes the
// directory provably stale — and the recovery protocol (timeouts, bounded
// retries, circuit breaker + degraded mode, directory resync) has to earn
// every hit the run reports.
//
// With a fault-free plan the reliability layer disarms completely and the
// run reproduces run_protocol_sim byte for byte (tested): same traffic in
// the same order, same arithmetic, zero PRNG draws.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "proto/faults.h"
#include "proto/journal.h"
#include "proto/protocol_sim.h"
#include "proto/reliable.h"

namespace ulc {

struct FaultSimConfig {
  ProtocolConfig protocol;
  FaultSpec faults;                  // message-level fates (seeded)
  std::vector<CrashEvent> crashes;   // level restarts
  RetryPolicy retry;
  // Wrap the scheme in the CheckedHierarchy auditor (invariant checking on
  // every access and resync).
  bool checked = true;
  bool abort_on_violation = false;   // auditor aborts instead of throwing
  // Attach an epoch-stamped write-back journal: dirty blocks leaving the
  // hierarchy are queued on a dedicated storage channel, marked written when
  // the device completes them and acknowledged back in append order; a level
  // crash wipes the entries it had not yet acknowledged. Draws no PRNG and
  // never touches the read path, so fault-free parity holds either way.
  bool journal = true;
  std::string context;               // replay context for violation reports
  // Optional message-timeline recorder (reference spans, Demote transfers,
  // crash wipes, breaker trips/closes, probes). Purely additive: recording
  // never changes the run, so the fault-free byte-for-byte parity with
  // run_protocol_sim holds with or without it.
  obs::TraceRecorder* events = nullptr;
};

// Recovery phase a reference starts in: kNormal until the first breaker
// trips, kDegraded while any breaker is open, kRecovered after every
// breaker has closed again.
enum class FaultPhase : std::size_t { kNormal = 0, kDegraded = 1, kRecovered = 2 };
inline constexpr std::size_t kFaultPhases = 3;
const char* fault_phase_name(FaultPhase phase);

struct FaultedProtocolResult {
  ProtocolResult base;
  ReliabilityStats reliability;  // whole-run totals (not reset at warmup)
  JournalStats journal;          // write-back pipeline + data-loss accounting
  // Response time split by the phase each reference started in (reset at
  // warmup like base.response_ms).
  std::array<OnlineStats, kFaultPhases> phase_response_ms;
  // The same split, log-bucketed for tail percentiles (p50/p95/p99) — the
  // degraded-mode tail the mean hides.
  std::array<obs::LatencyHistogram, kFaultPhases> phase_hist;
  std::array<std::uint64_t, kFaultPhases> phase_references{};
  SimTime measure_start_ms = 0.0;
  SimTime end_ms = 0.0;  // final simulated time (for placing crashes)
};

// Runs `trace` (single-client) through the faulted simulator.
FaultedProtocolResult run_faulted_protocol_sim(ProtocolScheme scheme,
                                               const FaultSimConfig& config,
                                               const Trace& trace);

// Publishes the run's data-loss and staleness accounting as named obs
// counters ("durability.*", "staleness.*") so dashboards that scrape the
// registry see the fault story next to the performance counters.
void publish_fault_metrics(obs::MetricsRegistry& metrics,
                           const FaultedProtocolResult& result);

}  // namespace ulc
