#include "proto/faults.h"

#include <algorithm>

#include "util/ensure.h"

namespace ulc {

FaultPlan::FaultPlan(const FaultSpec& spec, std::vector<CrashEvent> crashes)
    : spec_(spec), crashes_(std::move(crashes)), rng_(spec.seed) {
  ULC_REQUIRE(spec.loss >= 0.0 && spec.loss <= 1.0 && spec.duplicate >= 0.0 &&
                  spec.duplicate <= 1.0 && spec.delay >= 0.0 && spec.delay <= 1.0,
              "fault probabilities must lie in [0, 1]");
  ULC_REQUIRE(spec.delay_ms >= 0.0, "fault extra delay must be non-negative");
  std::size_t max_level = 0;
  for (const CrashEvent& c : crashes_) {
    ULC_REQUIRE(c.level > 0, "level 0 is the client itself; it cannot crash");
    ULC_REQUIRE(c.at_ms >= 0.0 && c.outage_ms >= 0.0,
                "crash times and outages must be non-negative");
    max_level = std::max(max_level, c.level);
  }
  times_by_level_.resize(max_level + 1);
  for (const CrashEvent& c : crashes_) times_by_level_[c.level].push_back(c.at_ms);
  for (std::vector<SimTime>& times : times_by_level_)
    std::sort(times.begin(), times.end());
}

MessageFate FaultPlan::next_fate() {
  MessageFate fate;
  if (!message_faults()) return fate;
  // Three draws per message regardless of which probabilities are zero, so
  // the fate stream for a given seed is stable across spec tweaks within a
  // sweep cell. Fates are applied with priority drop > duplicate > delay.
  const bool drop = rng_.next_bool(spec_.loss);
  const bool dup = rng_.next_bool(spec_.duplicate);
  const bool delay = rng_.next_bool(spec_.delay);
  if (drop) {
    fate.dropped = true;
  } else if (dup) {
    fate.duplicated = true;
  } else if (delay) {
    fate.extra_delay_ms = spec_.delay_ms * rng_.next_double();
  }
  return fate;
}

std::uint64_t FaultPlan::epoch_at(std::size_t level, SimTime t) const {
  if (level >= times_by_level_.size()) return 0;
  const std::vector<SimTime>& times = times_by_level_[level];
  return static_cast<std::uint64_t>(
      std::upper_bound(times.begin(), times.end(), t) - times.begin());
}

bool FaultPlan::down_at(std::size_t level, SimTime t) const {
  for (const CrashEvent& c : crashes_) {
    if (c.level == level && t >= c.at_ms && t < c.at_ms + c.outage_ms) return true;
  }
  return false;
}

const std::vector<SimTime>& FaultPlan::crash_times(std::size_t level) const {
  if (level >= times_by_level_.size()) return no_times_;
  return times_by_level_[level];
}

FaultyLink::Delivery FaultyLink::transfer(int direction, std::size_t bytes,
                                          SimTime when) {
  // FIFO clamp: see SimLink::last_send() for the proof this is exact.
  const SimTime issue = std::max(when, link_.last_send(direction));
  Delivery d;
  d.at = link_.deliver_at(direction, bytes, issue);
  if (!plan_->message_faults()) return d;
  const MessageFate fate = plan_->next_fate();
  if (fate.dropped) {
    d.arrived = false;
    ++stats_->messages_lost;
  } else if (fate.duplicated) {
    // The second copy occupies the wire too; the receiver's SequenceWindow
    // suppresses it, so only the first arrival matters for timing.
    link_.deliver_at(direction, bytes, link_.last_send(direction));
    ++stats_->messages_duplicated;
    ++stats_->duplicates_ignored;
  } else if (fate.extra_delay_ms > 0.0) {
    d.at += fate.extra_delay_ms;
    ++stats_->messages_delayed;
  }
  return d;
}

}  // namespace ulc
