// Epoch-stamped write-back journal: the durable half of the write-back
// pipeline (ulc/writeback.h is the scheme-facing interface).
//
// Every dirty block leaving a cache level is appended as a journal entry;
// the storage level then writes it (kPending -> kWritten) and acknowledges
// it back to the client (kWritten -> kAcked). A crash of the source level
// destroys the entries it had not yet pushed to storage (kPending ->
// kLost) and bumps the journal epoch, so post-crash appends are
// distinguishable from pre-crash ones. Recovery replays exactly the
// acknowledged prefix, in acknowledgement order.
//
// The laws the journal enforces (checked live by CheckedHierarchy):
//   D-ack   an entry is acknowledged only after it was written,
//   D-order acknowledgements arrive in append order (replay is a prefix),
//   D-keep  an acknowledged write is never lost.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ulc/writeback.h"

namespace ulc {

enum class JournalEntryState : std::uint8_t {
  kPending,  // appended, not yet written by storage
  kWritten,  // durable at storage, not yet acknowledged
  kAcked,    // acknowledged to the client; replayed on recovery
  kLost,     // destroyed by a crash before storage wrote it
};

struct JournalEntry {
  std::uint64_t seq = 0;
  BlockId block = 0;
  std::size_t level = 0;      // level the dirty block left
  SizeUnits size = 1;
  std::uint64_t epoch = 0;    // journal epoch at append time
  JournalEntryState state = JournalEntryState::kPending;
  std::uint64_t ack_index = 0;  // position in the acknowledgement order
};

// Counter snapshot for benchmarks and the fault harness. `lost_acked` and
// the two protocol-order counters must stay zero on every run — they are
// law violations, not statistics.
struct JournalStats {
  std::uint64_t appended = 0;
  std::uint64_t appended_bytes = 0;
  std::uint64_t acked = 0;
  std::uint64_t acked_bytes = 0;
  std::uint64_t lost_unacked = 0;        // crash-wiped journal entries
  std::uint64_t lost_unacked_bytes = 0;
  std::uint64_t lost_acked = 0;          // law D-keep violations
  std::uint64_t ack_before_write = 0;    // law D-ack violations
  std::uint64_t replay_reorders = 0;     // law D-order violations
  std::uint64_t dirty_lost = 0;          // dirty copies destroyed un-journaled
  std::uint64_t dirty_lost_bytes = 0;
};

class WritebackJournal final : public WritebackSink {
 public:
  // kSynchronous models the legacy cost-model write-back: storage writes
  // and acknowledges in the same instant the entry is appended (fault-free
  // runs stay byte-identical). kManual leaves every transition to the
  // caller — the fault simulator drives written/acked against its own
  // clock and crash schedule.
  enum class Mode { kSynchronous, kManual };

  explicit WritebackJournal(Mode mode = Mode::kSynchronous) : mode_(mode) {}

  std::uint64_t append(BlockId block, std::size_t level,
                       SizeUnits size) override;
  void mark_written(std::uint64_t seq) override;
  void ack(std::uint64_t seq) override;
  void record_loss(BlockId block, std::size_t level, SizeUnits size) override;
  bool laws_hold(std::string& why) const override;

  // A crash of `level`: every entry that level appended but storage has not
  // written yet is destroyed, and the journal epoch advances so post-crash
  // appends carry a fresh stamp.
  struct WipeResult {
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;
  };
  WipeResult crash_wipe(std::size_t level);

  // Recovery contract: the replayable image is the acknowledged entries in
  // acknowledgement order (laws_hold() certifies that order is the append
  // prefix order).
  std::vector<JournalEntry> replay() const;

  JournalEntryState state_of(std::uint64_t seq) const;
  const std::vector<JournalEntry>& entries() const { return entries_; }
  std::size_t pending() const;
  std::uint64_t epoch() const { return epoch_; }
  const JournalStats& stats() const { return stats_; }

 private:
  JournalEntry* find(std::uint64_t seq);

  Mode mode_;
  std::vector<JournalEntry> entries_;  // seq == index + 1, append-ordered
  JournalStats stats_;
  std::uint64_t epoch_ = 0;
  std::uint64_t next_ack_index_ = 0;
  std::uint64_t last_acked_seq_ = 0;
};

}  // namespace ulc
