// Deterministic discrete-event scheduler for the message-level protocol
// simulation. Events fire in (time, insertion-sequence) order, so equal-time
// events run in the order they were scheduled and every run is replayable.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace ulc {

using SimTime = double;  // milliseconds

class EventQueue {
 public:
  using Action = std::function<void()>;

  // Schedules `action` at absolute time `at` (>= now()).
  void schedule(SimTime at, Action action);
  // Schedules `action` `delay` after now().
  void schedule_in(SimTime delay, Action action) { schedule(now_ + delay, std::move(action)); }

  // Runs the next event; returns false when the queue is empty.
  bool run_one();
  // Runs until the queue drains or `limit` events have fired.
  std::size_t run(std::size_t limit = static_cast<std::size_t>(-1));

  SimTime now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ulc
