// Deterministic discrete-event scheduler for the message-level protocol
// simulation. Events fire in (time, insertion-sequence) order, so equal-time
// events run in the order they were scheduled and every run is replayable.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace ulc {

using SimTime = double;  // milliseconds

class EventQueue {
 public:
  using Action = std::function<void()>;

  // Schedules `action` at absolute time `at` (>= now()).
  void schedule(SimTime at, Action action);
  // Schedules `action` `delay` after now().
  void schedule_in(SimTime delay, Action action) { schedule(now_ + delay, std::move(action)); }

  // Runs the next event; returns false when the queue is empty.
  bool run_one();
  // Runs until the queue drains or `limit` events have fired.
  std::size_t run(std::size_t limit = static_cast<std::size_t>(-1));
  // Fires every event with at <= t, then advances now() to at least t even
  // if the queue drained earlier. Returns the number of events fired.
  std::size_t run_until(SimTime t);

  // Aborts with a diagnostic once `limit` events have fired in total over
  // the queue's lifetime (0 = unlimited, the default). A retry storm that
  // keeps rescheduling itself then terminates with a message instead of
  // spinning forever.
  void set_event_limit(std::uint64_t limit) { event_limit_ = limit; }
  std::uint64_t events_fired() const { return events_fired_; }

  SimTime now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t event_limit_ = 0;
  std::uint64_t events_fired_ = 0;
};

}  // namespace ulc
